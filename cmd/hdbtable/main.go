// hdbtable writes, inspects and scans chunked columnar table files
// (internal/store): the persistent format behind hierdb's
// RegisterTableFile.
//
// Usage:
//
//	hdbtable write -o table.hdb [-chunk N] -csv data.csv
//	hdbtable write -o table.hdb [-chunk N] -synth -seed S -nrel R -rel I
//	hdbtable inspect table.hdb [-zones]
//	hdbtable scan table.hdb [-col I -op OP -val V]
//
// write builds a table file from a CSV (header row names the columns;
// cells parse as int, then float, then bool, empty meaning null) or
// from one relation of a querygen-synthesized differential case (the
// same deterministic tables internal/difftest cross-checks the engine
// on). inspect dumps the footer: schema, per-chunk directory and zone
// maps. scan registers the file on a throwaway DB, runs a Scan (with
// an optional single predicate) and reports the row count plus the
// disk-scan counters — chunks scanned, chunks skipped by zone-map
// pruning, bytes read.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"hierdb"
	"hierdb/internal/difftest"
	"hierdb/internal/store"
	"hierdb/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hdbtable: ")
	if len(os.Args) < 2 {
		log.Fatalf("usage: hdbtable write|inspect|scan ... (run a subcommand with -h for flags)")
	}
	switch os.Args[1] {
	case "write":
		cmdWrite(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "scan":
		cmdScan(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want write, inspect or scan)", os.Args[1])
	}
}

func cmdWrite(args []string) {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	out := fs.String("o", "", "output table file (required; must not exist)")
	chunk := fs.Int("chunk", 0, "rows per chunk (0 = default)")
	csvPath := fs.String("csv", "", "CSV input with a header row")
	synth := fs.Bool("synth", false, "write a querygen-synthesized relation instead of CSV")
	seed := fs.Uint64("seed", 42, "synthesis seed (with -synth)")
	nrel := fs.Int("nrel", 3, "relations in the synthesized case (with -synth)")
	rel := fs.Int("rel", 0, "which relation of the case to write (with -synth)")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("write: -o is required")
	}
	var cols []string
	var rows []vec.Row
	switch {
	case *synth && *csvPath != "":
		log.Fatal("write: -csv and -synth are mutually exclusive")
	case *synth:
		c := difftest.Synthesize(*seed, "synth", *nrel)
		if *rel < 0 || *rel >= len(c.Tables) {
			log.Fatalf("write: -rel %d out of range (case has %d relations)", *rel, len(c.Tables))
		}
		t := c.Tables[*rel]
		cols, rows = t.Cols, t.Rows
	case *csvPath != "":
		var err error
		if cols, rows, err = readCSV(*csvPath); err != nil {
			log.Fatalf("write: %v", err)
		}
	default:
		log.Fatal("write: one of -csv or -synth is required")
	}
	if err := store.WriteTable(*out, cols, *chunk, rows); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("wrote %s: %d rows, %d columns\n", *out, len(rows), len(cols))
}

// readCSV loads a header-row CSV, parsing each cell as int, then
// float, then bool, with the empty cell meaning null. Mixed columns
// are legal — the table format resolves them to a boxed schema kind.
func readCSV(path string) ([]string, []vec.Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(recs) == 0 {
		return nil, nil, fmt.Errorf("%s: empty CSV (need a header row)", path)
	}
	cols := recs[0]
	rows := make([]vec.Row, 0, len(recs)-1)
	for ri, rec := range recs[1:] {
		if len(rec) != len(cols) {
			return nil, nil, fmt.Errorf("%s: row %d has %d cells, header has %d", path, ri+1, len(rec), len(cols))
		}
		row := make(vec.Row, len(rec))
		for i, cell := range rec {
			row[i] = parseCell(cell)
		}
		rows = append(rows, row)
	}
	return cols, rows, nil
}

func parseCell(s string) any {
	if s == "" {
		return nil
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return int(v)
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseBool(s); err == nil {
		return v
	}
	return s
}

func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	zones := fs.Bool("zones", false, "dump per-chunk zone maps")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("inspect: exactly one table file")
	}
	t, err := store.Open(fs.Arg(0))
	if err != nil {
		log.Fatalf("inspect: %v", err)
	}
	defer t.Close()
	fmt.Printf("%s: %d rows, %d chunks\n", t.Path(), t.NumRows(), t.NumChunks())
	fmt.Println("schema:")
	for i, name := range t.Cols() {
		fmt.Printf("  [%d] %-16s %s\n", i, name, t.Kinds()[i])
	}
	fmt.Println("chunks:")
	for i := 0; i < t.NumChunks(); i++ {
		ch := t.Chunk(i)
		fmt.Printf("  [%3d] off=%-10d len=%-8d rows=%d\n", i, ch.Off, ch.Len, ch.Rows)
		if !*zones {
			continue
		}
		for ci, z := range ch.Zones {
			fmt.Printf("        col %d: %s\n", ci, zoneString(&z))
		}
	}
}

func zoneString(z *store.ZoneMap) string {
	s := fmt.Sprintf("kind=%s", z.Kind)
	if z.HasNulls {
		s += " nulls"
	}
	if !z.HasNonNull {
		return s + " all-null"
	}
	if z.HasNaN {
		s += " nan"
	}
	if z.HasRange {
		switch {
		case z.Kind == vec.String:
			s += fmt.Sprintf(" range=[%q, %q]", z.MinStr, z.MaxStr)
		case z.Kind == vec.Float64:
			s += fmt.Sprintf(" range=[%g, %g]", z.MinF64, z.MaxF64)
		case z.Kind == vec.Uint64:
			s += fmt.Sprintf(" range=[%d, %d]", uint64(z.MinI64), uint64(z.MaxI64))
		default:
			s += fmt.Sprintf(" range=[%d, %d]", z.MinI64, z.MaxI64)
		}
	}
	return s
}

func cmdScan(args []string) {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	col := fs.Int("col", -1, "predicate column index (-1 = no predicate)")
	opName := fs.String("op", "eq", "predicate operator: eq ne lt le gt ge isnull notnull")
	val := fs.String("val", "", "predicate constant (parsed like a CSV cell)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("scan: exactly one table file")
	}
	db := hierdb.Open()
	defer db.Close()
	if err := db.RegisterTableFile("t", fs.Arg(0)); err != nil {
		log.Fatalf("scan: %v", err)
	}
	q := db.Scan("t")
	if *col >= 0 {
		op, ok := map[string]hierdb.CmpOp{
			"eq": hierdb.Eq, "ne": hierdb.Ne, "lt": hierdb.Lt, "le": hierdb.Le,
			"gt": hierdb.Gt, "ge": hierdb.Ge, "isnull": hierdb.IsNull, "notnull": hierdb.NotNull,
		}[*opName]
		if !ok {
			log.Fatalf("scan: unknown operator %q", *opName)
		}
		q = q.Where(hierdb.Pred{Col: *col, Op: op, Val: parseCell(*val)})
	}
	rows, err := q.Run(context.Background())
	if err != nil {
		log.Fatalf("scan: %v", err)
	}
	defer rows.Close()
	count := 0
	for rows.Next() {
		count++
	}
	if err := rows.Err(); err != nil {
		log.Fatalf("scan: %v", err)
	}
	st := rows.Stats()
	fmt.Printf("rows=%d chunks scanned=%d skipped=%d disk bytes=%d\n",
		count, st.ChunksScanned, st.ChunksSkipped, st.DiskBytesRead)
}
