package main

// Integration tests driving the real `go vet -vettool` protocol end to
// end: hdbvet is built once, then pointed at throwaway modules — a
// deliberately broken one that must fail the vet run with named
// diagnostics, and a clean one that must pass.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildHdbvet compiles the vettool into a temp dir and returns its path.
func buildHdbvet(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	bin := filepath.Join(t.TempDir(), "hdbvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hdbvet: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a throwaway single-package module.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runVet(t *testing.T, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestHdbvetFailsOnBrokenModule(t *testing.T) {
	tool := buildHdbvet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module broken\n\ngo 1.24\n",
		"broken.go": `package broken

import (
	"fmt"
	"sync"
)

type coord struct {
	mu sync.Mutex //hierdb:lock mq
}

type sched struct {
	mu sync.Mutex //hierdb:lock pool
}

// Inverted acquisition: pool is held while taking mq.
func inversion(c *coord, s *sched) {
	s.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	s.mu.Unlock()
}

//hierdb:hotpath
func hot(v int) string {
	return fmt.Sprintf("%d", v)
}
`,
	})
	out, err := runVet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet succeeded on the broken module; output:\n%s", out)
	}
	for _, wanted := range []string{
		"(lockorder)",
		`acquires "mq" lock while holding "pool" lock`,
		"(hotpath)",
		"fmt.Sprintf",
	} {
		if !strings.Contains(out, wanted) {
			t.Errorf("vet output missing %q; got:\n%s", wanted, out)
		}
	}
}

func TestHdbvetPassesOnCleanModule(t *testing.T) {
	tool := buildHdbvet(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module clean\n\ngo 1.24\n",
		"clean.go": `package clean

import "sync"

type coord struct {
	mu sync.Mutex //hierdb:lock mq
}

type sched struct {
	mu sync.Mutex //hierdb:lock pool
}

func ordered(c *coord, s *sched) {
	c.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	c.mu.Unlock()
}

//hierdb:hotpath
func hot(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
`,
	})
	out, err := runVet(t, tool, dir)
	if err != nil {
		t.Fatalf("go vet failed on the clean module: %v\n%s", err, out)
	}
}
