// Command hdbvet is the project's static-analysis vettool. It bundles
// the four engine-invariant analyzers — lockorder, hotpath,
// rowslifecycle and ctxflow — behind the `go vet -vettool` protocol:
//
//	go install ./cmd/hdbvet
//	go vet -vettool="$(go env GOPATH)/bin/hdbvet" ./...
//
// or, via the Makefile: make vet-hdb. See the README's "Static
// analysis" section for what each analyzer enforces and how to annotate
// code (//hierdb:lock, //hierdb:hotpath, //hierdb:ctx-in-struct,
// //hierdb:ignore).
package main

import (
	"hierdb/internal/analysis/ctxflow"
	"hierdb/internal/analysis/hotpath"
	"hierdb/internal/analysis/lockorder"
	"hierdb/internal/analysis/rowslifecycle"
	"hierdb/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		lockorder.Analyzer,
		hotpath.Analyzer,
		rowslifecycle.Analyzer,
		ctxflow.Analyzer,
	)
}
