// hdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	hdbench [-fig all|6|7|8|9|10|transfer|params] [-scale bench|paper]
//	        [-parallel N] [-v]
//
// -scale paper reproduces §5 at full magnitude (20 queries x 2 bushy trees
// over 12 relations, 30-60 virtual-minute sequential gate) and takes a
// while; -scale bench (default) keeps every experiment's shape in seconds.
//
// Independent simulation runs fan out across all processors by default;
// -parallel bounds the worker pool. Figure output is bit-for-bit identical
// at any parallelism level.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"hierdb"
)

func main() {
	fig := flag.String("fig", "all", "which artifact to regenerate: all, 6, 7, 8, 9, 10, transfer, params, or the extensions ext|shapes|placement|chains")
	scaleName := flag.String("scale", "bench", "experiment scale: bench or paper")
	queries := flag.Int("queries", 0, "override the scale's query count (0 = scale default); smaller counts trade averaging breadth for speed")
	parallel := flag.Int("parallel", 0, "worker pool size for independent simulation runs (0 = all processors); output is identical at any setting")
	verbose := flag.Bool("v", false, "print per-run progress")
	flag.Parse()

	var scale hierdb.Scale
	switch *scaleName {
	case "bench":
		scale = hierdb.BenchScale()
	case "paper":
		scale = hierdb.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	if *queries > 0 {
		scale.Queries = *queries
	}
	if *parallel < 0 {
		log.Fatalf("-parallel must be >= 0, got %d", *parallel)
	}
	scale.Parallelism = *parallel

	var prog hierdb.Progress
	if *verbose {
		prog = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	type driver struct {
		id  string
		run func() *hierdb.Figure
	}
	drivers := []driver{
		{"6", func() *hierdb.Figure { return hierdb.Fig6(scale, prog) }},
		{"7", func() *hierdb.Figure { return hierdb.Fig7(scale, prog) }},
		{"8", func() *hierdb.Figure { return hierdb.Fig8(scale, prog) }},
		{"9", func() *hierdb.Figure { return hierdb.Fig9(scale, prog) }},
		{"transfer", func() *hierdb.Figure { return hierdb.Transfer(scale, prog) }},
		{"10", func() *hierdb.Figure { return hierdb.Fig10(scale, prog) }},
		// Extensions beyond the paper's artifacts (excluded from "all"
		// unless explicitly requested with -fig ext or by id).
		{"shapes", func() *hierdb.Figure { return hierdb.Shapes(scale, prog) }},
		{"placement", func() *hierdb.Figure { return hierdb.PlacementSkew(scale, prog) }},
		{"chains", func() *hierdb.Figure { return hierdb.ConcurrentChains(scale, prog) }},
	}
	extensions := map[string]bool{"shapes": true, "placement": true, "chains": true}

	want := strings.Split(*fig, ",")
	selected := func(id string) bool {
		for _, w := range want {
			if w == id {
				return true
			}
			if w == "all" && !extensions[id] {
				return true
			}
			if w == "ext" && extensions[id] {
				return true
			}
		}
		return false
	}

	if selected("params") {
		fmt.Print(hierdb.ParamTables())
		fmt.Println()
	}
	for _, d := range drivers {
		if !selected(d.id) {
			continue
		}
		start := time.Now()
		f := d.run()
		f.Render(os.Stdout)
		fmt.Printf("(regenerated in %v at %s scale)\n\n", time.Since(start).Round(time.Millisecond), scale.Name)
	}
}
