// hdbsim executes one plan of the generated workload under one strategy
// on one topology and prints the full measurement record — the tool for
// poking at individual executions.
//
// Usage:
//
//	hdbsim [-scale bench|paper] [-plan i] [-strategy DP|FP|SP]
//	       [-nodes N] [-procs P] [-skew z] [-errrate r] [-chain ops]
package main

import (
	"flag"
	"fmt"
	"log"

	"hierdb"
)

func main() {
	scaleName := flag.String("scale", "bench", "experiment scale: bench or paper")
	planIdx := flag.Int("plan", 0, "plan index in the generated workload")
	strategy := flag.String("strategy", "DP", "DP, FP or SP")
	nodes := flag.Int("nodes", 1, "SM-nodes")
	procs := flag.Int("procs", 8, "processors per SM-node")
	skew := flag.Float64("skew", 0, "redistribution skew (Zipf factor)")
	errRate := flag.Float64("errrate", 0, "FP cost-model error rate (e.g. 0.2)")
	chain := flag.Int("chain", 0, "if > 0, run the §5.3 chain micro-benchmark with this many operators instead of a workload plan")
	flag.Parse()

	var scale hierdb.Scale
	switch *scaleName {
	case "bench":
		scale = hierdb.BenchScale()
	case "paper":
		scale = hierdb.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	var tree *hierdb.Plan
	if *chain > 0 {
		tree = hierdb.ChainPlan(*chain, *nodes, scale.CardDivisor)
	} else {
		w := hierdb.GenerateWorkload(scale, *nodes)
		if *planIdx < 0 || *planIdx >= len(w.Plans) {
			log.Fatalf("plan %d out of range (%d plans)", *planIdx, len(w.Plans))
		}
		tree = w.Plans[*planIdx]
	}
	cfg := hierdb.DefaultConfig(*nodes, *procs)
	mutate := func(o *hierdb.SimOptions) { o.RedistributionSkew = *skew }

	var run *hierdb.Run
	var err error
	switch *strategy {
	case "DP":
		run, err = hierdb.ExecuteDP(tree, cfg, mutate)
	case "FP":
		run, err = hierdb.ExecuteFP(tree, cfg, *errRate, 1, mutate)
	case "SP":
		run, err = hierdb.ExecuteSP(tree, cfg)
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plan      %s\n", run.Plan)
	fmt.Printf("strategy  %s on %s\n", run.Strategy, run.Config)
	fmt.Printf("response  %v\n", run.ResponseTime)
	fmt.Printf("busy      %v\n", run.Busy)
	fmt.Printf("io wait   %v\n", run.IOWait)
	fmt.Printf("idle      %v\n", run.Idle)
	fmt.Printf("results   %d tuples\n", run.ResultTuples)
	fmt.Printf("queue ops %d, suspensions %d\n", run.QueueOps, run.Suspensions)
	fmt.Printf("steals    %d rounds, %d succeeded, %d activations\n",
		run.StealRounds, run.StealsSucceeded, run.StolenActivations)
	fmt.Printf("traffic   pipeline %d B (%d msgs), control %d B (%d msgs), balance %d B (%d msgs)\n",
		run.PipelineBytes, run.PipelineMsgs, run.ControlBytes, run.ControlMsgs, run.BalanceBytes, run.BalanceMsgs)
}
