// hdbsim executes plans of the generated workload under one strategy on
// one topology and prints the full measurement record — the tool for
// poking at individual executions.
//
// Usage:
//
//	hdbsim [-scale bench|paper] [-plan i|all] [-strategy DP|FP|SP]
//	       [-nodes N] [-procs P] [-skew z] [-errrate r] [-chain ops]
//	       [-parallel N]
//
// -plan all executes every plan of the workload; independent runs fan out
// across all processors by default (-parallel bounds the pool), and the
// records print in plan order regardless of completion order.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"

	"hierdb"
)

func main() {
	scaleName := flag.String("scale", "bench", "experiment scale: bench or paper")
	planSel := flag.String("plan", "0", "plan index in the generated workload, or \"all\"")
	strategy := flag.String("strategy", "DP", "DP, FP or SP")
	nodes := flag.Int("nodes", 1, "SM-nodes")
	procs := flag.Int("procs", 8, "processors per SM-node")
	skew := flag.Float64("skew", 0, "redistribution skew (Zipf factor)")
	errRate := flag.Float64("errrate", 0, "FP cost-model error rate (e.g. 0.2)")
	chain := flag.Int("chain", 0, "if > 0, run the §5.3 chain micro-benchmark with this many operators instead of a workload plan")
	parallel := flag.Int("parallel", 0, "worker pool size for -plan all (0 = all processors)")
	flag.Parse()

	var scale hierdb.Scale
	switch *scaleName {
	case "bench":
		scale = hierdb.BenchScale()
	case "paper":
		scale = hierdb.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	if *parallel < 0 {
		log.Fatalf("-parallel must be >= 0, got %d", *parallel)
	}
	scale.Parallelism = *parallel

	var trees []*hierdb.Plan
	if *chain > 0 {
		trees = []*hierdb.Plan{hierdb.ChainPlan(*chain, *nodes, scale.CardDivisor)}
	} else {
		w := hierdb.GenerateWorkload(scale, *nodes)
		if *planSel == "all" {
			trees = w.Plans
		} else {
			idx, err := strconv.Atoi(*planSel)
			if err != nil {
				log.Fatalf("bad -plan %q: want an index or \"all\"", *planSel)
			}
			if idx < 0 || idx >= len(w.Plans) {
				log.Fatalf("plan %d out of range (%d plans)", idx, len(w.Plans))
			}
			trees = []*hierdb.Plan{w.Plans[idx]}
		}
	}
	cfg := hierdb.DefaultConfig(*nodes, *procs)
	mutate := func(o *hierdb.SimOptions) { o.RedistributionSkew = *skew }

	execute := func(tree *hierdb.Plan) (*hierdb.Run, error) {
		switch *strategy {
		case "DP":
			return hierdb.ExecuteDP(tree, cfg, mutate)
		case "FP":
			return hierdb.ExecuteFP(tree, cfg, *errRate, 1, mutate)
		case "SP":
			return hierdb.ExecuteSP(tree, cfg)
		}
		log.Fatalf("unknown strategy %q", *strategy)
		return nil, nil
	}

	// Fan the independent runs across the experiments' bounded pool;
	// results collect into a plan-indexed slice so output order never
	// depends on scheduling.
	runs := make([]*hierdb.Run, len(trees))
	errs := make([]error, len(trees))
	hierdb.RunMatrix(scale.Parallelism, len(trees), func(i int) {
		runs[i], errs[i] = execute(trees[i])
	})

	for i, run := range runs {
		if errs[i] != nil {
			log.Fatal(errs[i])
		}
		if i > 0 {
			fmt.Println()
		}
		printRun(run)
	}
}

func printRun(run *hierdb.Run) {
	fmt.Printf("plan      %s\n", run.Plan)
	fmt.Printf("strategy  %s on %s\n", run.Strategy, run.Config)
	fmt.Printf("response  %v\n", run.ResponseTime)
	fmt.Printf("busy      %v\n", run.Busy)
	fmt.Printf("io wait   %v\n", run.IOWait)
	fmt.Printf("idle      %v\n", run.Idle)
	fmt.Printf("results   %d tuples\n", run.ResultTuples)
	fmt.Printf("queue ops %d, suspensions %d\n", run.QueueOps, run.Suspensions)
	fmt.Printf("steals    %d rounds, %d succeeded, %d activations\n",
		run.StealRounds, run.StealsSucceeded, run.StolenActivations)
	fmt.Printf("traffic   pipeline %d B (%d msgs), control %d B (%d msgs), balance %d B (%d msgs)\n",
		run.PipelineBytes, run.PipelineMsgs, run.ControlBytes, run.ControlMsgs, run.BalanceBytes, run.BalanceMsgs)
}
