// hdbgen generates and inspects the experimental workload of §5.1.2:
// random multi-join queries, optimized into bushy parallel execution
// plans with operator scheduling and pipeline chains.
//
// Usage:
//
//	hdbgen [-scale bench|paper] [-nodes N] [-plan i]
package main

import (
	"flag"
	"fmt"
	"log"

	"hierdb"
)

func main() {
	scaleName := flag.String("scale", "bench", "experiment scale: bench or paper")
	nodes := flag.Int("nodes", 1, "number of SM-nodes the relations are partitioned across")
	planIdx := flag.Int("plan", -1, "print the full operator tree of one plan (index); -1 lists all")
	flag.Parse()

	var scale hierdb.Scale
	switch *scaleName {
	case "bench":
		scale = hierdb.BenchScale()
	case "paper":
		scale = hierdb.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	w := hierdb.GenerateWorkload(scale, *nodes)
	if *planIdx >= 0 {
		if *planIdx >= len(w.Plans) {
			log.Fatalf("plan %d out of range (%d plans)", *planIdx, len(w.Plans))
		}
		fmt.Print(w.Plans[*planIdx].String())
		return
	}
	fmt.Printf("%d plans (%d queries x %d trees, %d relations each, %d nodes):\n",
		len(w.Plans), scale.Queries, scale.TreesPerQuery, scale.Relations, *nodes)
	var totalBytes int64
	for i, p := range w.Plans {
		var base int64
		for _, op := range p.Ops {
			if op.Rel != nil {
				base += op.Rel.Bytes()
			}
		}
		totalBytes += base
		fmt.Printf("  [%2d] %-10s %2d ops %2d joins %2d chains  base=%6.1f MB  input tuples=%d\n",
			i, p.Name, len(p.Ops), p.Joins, len(p.Chains), float64(base)/(1<<20), p.TotalInputTuples())
	}
	fmt.Printf("total base data: %.2f GB\n", float64(totalBytes)/(1<<30))
}
