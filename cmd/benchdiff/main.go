// Command benchdiff is the CI bench-regression gate: it parses `go test
// -bench` output, compares ns/op and allocs/op per benchmark against the
// committed baselines (BENCH_kernel.json / BENCH_engine.json), fails on
// any regression beyond the tolerance, and writes the fresh numbers as a
// JSON artifact for upload.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem ./... | tee bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_kernel.json -baseline BENCH_engine.json \
//	    -in bench.txt -out bench-fresh.json [-tolerance 0.25]
//
// Baseline schema: {"benchmarks": {"BenchmarkName": {..., "baseline":
// {"ns_op": N, "allocs_op": N}}}}; entries carrying a before/after pair
// (BENCH_kernel.json) gate against "after". Wall-clock (ns/op) moves
// with hardware — the committed numbers come from the CI host class and
// the tolerance absorbs run-to-run noise; allocs/op is deterministic and
// is the sharper gate. A benchmark present in a baseline file but absent
// from the input fails the gate (a silently renamed benchmark must not
// weaken it); pass -skip-missing to relax that when gating a subset.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's fresh numbers.
type benchResult struct {
	NsOp     float64            `json:"ns_op"`
	AllocsOp float64            `json:"allocs_op"`
	BytesOp  float64            `json:"bytes_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// baseline is one benchmark's gated expectations.
type baseline struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Tolerance, when > 0, overrides the global -tolerance for this
	// benchmark (e.g. a scheduling-dependent multi-node benchmark whose
	// allocations scale with how often steals fire on the host).
	Tolerance float64 `json:"tolerance"`
}

// baselineEntry matches both BENCH schemas: a plain {"baseline": ...}
// and a before/after pair, where "after" is the current expectation.
type baselineEntry struct {
	Baseline *baseline `json:"baseline"`
	After    *baseline `json:"after"`
}

type baselineFile struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

// parseBench reads `go test -bench` output. Benchmark names are stripped
// of the trailing -GOMAXPROCS suffix; repeated runs of one benchmark
// keep the minimum of each quantity (noise only ever adds).
func parseBench(r io.Reader) (map[string]*benchResult, error) {
	out := make(map[string]*benchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := trimProcs(f[0])
		fresh := &benchResult{NsOp: -1, AllocsOp: -1, BytesOp: -1}
		// f[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q for %s", f[i], name)
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				fresh.NsOp = v
			case "allocs/op":
				fresh.AllocsOp = v
			case "B/op":
				fresh.BytesOp = v
			default:
				if fresh.Metrics == nil {
					fresh.Metrics = make(map[string]float64)
				}
				fresh.Metrics[unit] = v
			}
		}
		if prev, ok := out[name]; ok {
			merge(prev, fresh)
		} else {
			out[name] = fresh
		}
	}
	return out, sc.Err()
}

// merge folds repeated runs of one benchmark: the gated quantities
// (ns/op, allocs/op, B/op) keep their minimum — noise only ever adds to
// those — while custom metrics are taken wholesale from the fastest run
// (minima would be wrong for throughput units like rows/s, and mixing
// runs per metric would record an internally inconsistent artifact).
func merge(dst, src *benchResult) {
	if src.NsOp >= 0 && (dst.NsOp < 0 || src.NsOp < dst.NsOp) && src.Metrics != nil {
		dst.Metrics = src.Metrics
	}
	lo := func(a, b float64) float64 {
		if a < 0 {
			return b
		}
		if b < 0 || a < b {
			return a
		}
		return b
	}
	dst.NsOp = lo(dst.NsOp, src.NsOp)
	dst.AllocsOp = lo(dst.AllocsOp, src.AllocsOp)
	dst.BytesOp = lo(dst.BytesOp, src.BytesOp)
}

// trimProcs strips the -N GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// loadBaselines merges the gated expectations of every baseline file.
func loadBaselines(paths []string) (map[string]baseline, error) {
	out := make(map[string]baseline)
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var bf baselineFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
		}
		for name, e := range bf.Benchmarks {
			b := e.Baseline
			if e.After != nil {
				b = e.After
			}
			if b == nil {
				return nil, fmt.Errorf("benchdiff: %s: %s has neither baseline nor after", path, name)
			}
			if _, dup := out[name]; dup {
				return nil, fmt.Errorf("benchdiff: duplicate baseline for %s", name)
			}
			out[name] = *b
		}
	}
	return out, nil
}

// compare gates fresh numbers against the baselines, returning one line
// per problem. A quantity regresses when it exceeds the baseline by more
// than the tolerance fraction (improvements always pass).
func compare(base map[string]baseline, fresh map[string]*benchResult, tol float64, skipMissing bool) []string {
	var problems []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			if !skipMissing {
				problems = append(problems, fmt.Sprintf("%s: in baseline but not in bench output", name))
			}
			continue
		}
		btol := tol
		if b.Tolerance > 0 {
			btol = b.Tolerance
		}
		check := func(quantity string, got, want float64) {
			if got < 0 || want <= 0 && got <= 0 {
				return
			}
			if got > want*(1+btol) {
				problems = append(problems, fmt.Sprintf("%s: %s regressed: %.6g > %.6g (+%.0f%% tolerance)",
					name, quantity, got, want, btol*100))
			}
		}
		check("ns/op", f.NsOp, b.NsOp)
		check("allocs/op", f.AllocsOp, b.AllocsOp)
	}
	return problems
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var baselines multiFlag
	in := flag.String("in", "-", "bench output file (- = stdin)")
	out := flag.String("out", "", "write fresh numbers as a JSON artifact")
	tol := flag.Float64("tolerance", 0.25, "allowed regression fraction for ns/op and allocs/op")
	skipMissing := flag.Bool("skip-missing", false, "ignore baselines absent from the bench output")
	flag.Var(&baselines, "baseline", "baseline JSON file (repeatable)")
	flag.Parse()
	if len(baselines) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: at least one -baseline is required")
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	fresh, err := parseBench(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	base, err := loadBaselines(baselines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	if *out != "" {
		artifact := struct {
			GoVersion  string                  `json:"go"`
			GOOS       string                  `json:"goos"`
			GOARCH     string                  `json:"goarch"`
			Tolerance  float64                 `json:"tolerance"`
			Benchmarks map[string]*benchResult `json:"benchmarks"`
		}{runtime.Version(), runtime.GOOS, runtime.GOARCH, *tol, fresh}
		raw, err := json.MarshalIndent(artifact, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}

	gated := 0
	for name := range base {
		if _, ok := fresh[name]; ok {
			gated++
		}
	}
	fmt.Printf("benchdiff: %d benchmarks parsed, %d gated against %d baselines (tolerance ±%.0f%%)\n",
		len(fresh), gated, len(base), *tol*100)
	if problems := compare(base, fresh, *tol, *skipMissing); len(problems) > 0 {
		for _, p := range problems {
			fmt.Println("REGRESSION:", p)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}
