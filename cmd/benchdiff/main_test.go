package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: hierdb
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernelDelay-4        	78090435	        14.03 ns/op	       0 B/op	       0 allocs/op
BenchmarkMultiNodeSkew/steal-4	      20	  32868772 ns/op	   3650936 rows/s	        22.40 steals/op	20037969 B/op	    8433 allocs/op
BenchmarkMultiNodeSkew/steal-4	      20	  30000000 ns/op	   3650936 rows/s	        21.00 steals/op	20037969 B/op	    8500 allocs/op
PASS
ok  	hierdb	1.745s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	kd := got["BenchmarkKernelDelay"]
	if kd == nil || kd.NsOp != 14.03 || kd.AllocsOp != 0 {
		t.Fatalf("KernelDelay parsed as %+v", kd)
	}
	ms := got["BenchmarkMultiNodeSkew/steal"]
	if ms == nil {
		t.Fatal("sub-benchmark name not parsed")
	}
	// Repeated runs keep the minimum of each quantity independently.
	if ms.NsOp != 30000000 || ms.AllocsOp != 8433 {
		t.Fatalf("merged repeat = %+v, want min ns 3e7 and min allocs 8433", ms)
	}
	// Custom metrics come wholesale from the fastest (min ns/op) run —
	// the second one here.
	if ms.Metrics["rows/s"] != 3650936 || ms.Metrics["steals/op"] != 21 {
		t.Fatalf("custom metrics should follow the fastest run: %v", ms.Metrics)
	}
}

func TestLoadBaselinesBothSchemas(t *testing.T) {
	dir := t.TempDir()
	kernel := filepath.Join(dir, "kernel.json")
	engine := filepath.Join(dir, "engine.json")
	os.WriteFile(kernel, []byte(`{"benchmarks": {
		"BenchmarkKernelDelay": {"before": {"ns_op": 599, "allocs_op": 2}, "after": {"ns_op": 14, "allocs_op": 0}}
	}}`), 0o644)
	os.WriteFile(engine, []byte(`{"benchmarks": {
		"BenchmarkMultiNodeSkew/steal": {"baseline": {"ns_op": 32868772, "allocs_op": 8433}}
	}}`), 0o644)
	base, err := loadBaselines([]string{kernel, engine})
	if err != nil {
		t.Fatal(err)
	}
	if b := base["BenchmarkKernelDelay"]; b.NsOp != 14 || b.AllocsOp != 0 {
		t.Fatalf("kernel baseline gates against %+v, want the after numbers", b)
	}
	if b := base["BenchmarkMultiNodeSkew/steal"]; b.NsOp != 32868772 {
		t.Fatalf("engine baseline = %+v", b)
	}
}

func TestCompareGate(t *testing.T) {
	base := map[string]baseline{
		"BenchmarkA":    {NsOp: 1000, AllocsOp: 100},
		"BenchmarkZero": {NsOp: 10, AllocsOp: 0},
		"BenchmarkGone": {NsOp: 10, AllocsOp: 1},
	}
	fresh := map[string]*benchResult{
		"BenchmarkA":    {NsOp: 1249, AllocsOp: 125}, // within ±25%
		"BenchmarkZero": {NsOp: 9, AllocsOp: 0},
	}
	probs := compare(base, fresh, 0.25, false)
	if len(probs) != 1 || !strings.Contains(probs[0], "BenchmarkGone") {
		t.Fatalf("want only the missing-benchmark failure, got %v", probs)
	}
	if probs := compare(base, fresh, 0.25, true); len(probs) != 0 {
		t.Fatalf("skip-missing still failed: %v", probs)
	}

	// ns/op and allocs/op regressions beyond tolerance fail; a zero-alloc
	// baseline fails on any allocation at all.
	fresh["BenchmarkA"].NsOp = 1300
	fresh["BenchmarkZero"].AllocsOp = 1
	probs = compare(base, fresh, 0.25, true)
	if len(probs) != 2 {
		t.Fatalf("want ns and zero-alloc regressions, got %v", probs)
	}
	if !strings.Contains(probs[0], "ns/op regressed") || !strings.Contains(probs[1], "allocs/op regressed") {
		t.Fatalf("unexpected problems: %v", probs)
	}

	// Improvements never fail.
	fresh["BenchmarkA"] = &benchResult{NsOp: 10, AllocsOp: 1}
	fresh["BenchmarkZero"] = &benchResult{NsOp: 1, AllocsOp: 0}
	if probs := compare(base, fresh, 0.25, true); len(probs) != 0 {
		t.Fatalf("improvement flagged: %v", probs)
	}

	// A per-entry tolerance overrides the global one (scheduling-
	// dependent benchmarks like the multi-node steal run).
	base["BenchmarkWide"] = baseline{NsOp: 100, AllocsOp: 100, Tolerance: 1.0}
	fresh["BenchmarkWide"] = &benchResult{NsOp: 199, AllocsOp: 190}
	if probs := compare(base, fresh, 0.25, true); len(probs) != 0 {
		t.Fatalf("per-entry tolerance not applied: %v", probs)
	}
	fresh["BenchmarkWide"].AllocsOp = 201
	if probs := compare(base, fresh, 0.25, true); len(probs) != 1 {
		t.Fatalf("per-entry tolerance too lax: %v", probs)
	}
}
