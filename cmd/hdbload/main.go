// Command hdbload is an open-loop latency harness for the real-data
// engine's admission path: it fires a fixed-rate arrival schedule of
// mixed queries (point lookups, the difftest multi-join, a grouped
// aggregation) at one resident DB handle and reports per-kind latency
// percentiles, admission waits, queue-full rejections, and spill
// counters.
//
// Open-loop means arrivals do not wait for completions: each query's
// latency is measured from its *scheduled* arrival time, so time spent
// parked in the admission queue (or waiting behind a slow engine) is
// charged to the query rather than silently stretching the schedule —
// the coordinated-omission-free view of tail latency.
//
// Usage:
//
//	go run ./cmd/hdbload -rate 100 -duration 5s -maxq 4 -queue 32 \
//	    -memory 65536 -broker -tenants 2 -mix point=0.5,join=0.3,group=0.2
//
// The table set is a seeded difftest case (identical across runs with
// the same -seed), so latency shifts between configurations reflect the
// engine, not the data.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hierdb"
	"hierdb/internal/difftest"
	"hierdb/internal/xrand"
)

// queryKind indexes the workload mix.
type queryKind int

const (
	kindPoint queryKind = iota
	kindJoin
	kindGroup
	numKinds
)

var kindNames = [numKinds]string{"point", "join", "group"}

// result is one completed arrival.
type result struct {
	kind     queryKind
	latency  time.Duration // completion - scheduled arrival
	admit    time.Duration // time parked in the admission queue
	rejected bool          // ErrAdmissionQueueFull
	err      error         // any other failure
	spillPar int64
	spillByt int64
}

func main() {
	rate := flag.Float64("rate", 50, "arrival rate in queries/sec (open loop)")
	duration := flag.Duration("duration", 5*time.Second, "length of the arrival schedule")
	nodes := flag.Int("nodes", 1, "engine nodes")
	workers := flag.Int("workers", 0, "workers per node (0 = engine default)")
	memory := flag.Int64("memory", 0, "per-node memory budget in bytes (0 = ungoverned)")
	broker := flag.Bool("broker", false, "lease memory from the per-node broker instead of a fixed per-query split (requires -memory)")
	maxq := flag.Int("maxq", 4, "admission slots (0 = unbounded, no queue)")
	queue := flag.Int("queue", 0, "admission queue capacity (0 = 8x slots)")
	tenants := flag.Int("tenants", 1, "tenant labels cycled across arrivals (admission fairness)")
	relations := flag.Int("relations", 5, "relations in the synthesized join case")
	seed := flag.Uint64("seed", 1, "workload seed (tables and arrival kinds)")
	mix := flag.String("mix", "point=0.5,join=0.3,group=0.2", "arrival mix weights")
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		log.Fatalf("hdbload: %v", err)
	}
	if *rate <= 0 || *duration <= 0 {
		log.Fatal("hdbload: -rate and -duration must be positive")
	}
	if *broker && *memory <= 0 {
		log.Fatal("hdbload: -broker requires a -memory budget")
	}

	c := difftest.Synthesize(*seed, "load", *relations)

	opts := []hierdb.Option{hierdb.WithNodes(*nodes)}
	if *workers > 0 {
		opts = append(opts, hierdb.WithWorkers(*workers))
	}
	if *memory > 0 {
		opts = append(opts, hierdb.WithMemory(*memory), hierdb.WithSpillDir(os.TempDir()))
	}
	if *broker {
		opts = append(opts, hierdb.WithMemoryBroker(true))
	}
	if *maxq > 0 {
		opts = append(opts, hierdb.WithMaxConcurrentQueries(*maxq))
	}
	if *queue > 0 {
		opts = append(opts, hierdb.WithAdmissionQueue(*queue))
	}
	db := hierdb.Open(opts...)
	defer db.Close()
	if err := c.Register(db); err != nil {
		log.Fatalf("hdbload: register: %v", err)
	}

	// One unmeasured warm-up query per kind, so first-touch costs (lazy
	// allocations, file-system metadata for spill dirs) stay out of the
	// measured tail.
	r := xrand.New(*seed)
	for k := queryKind(0); k < numKinds; k++ {
		if _, _, err := buildQuery(db, c, k, r, *tenants).Collect(context.Background()); err != nil {
			log.Fatalf("hdbload: warm-up %s: %v", kindNames[k], err)
		}
	}

	n := int(*rate * duration.Seconds())
	if n < 1 {
		n = 1
	}
	interval := time.Duration(float64(time.Second) / *rate)
	fmt.Printf("hdbload: %d arrivals @ %.0f/s over %s; nodes=%d maxq=%d queue=%s broker=%v memory=%d tenants=%d\n",
		n, *rate, *duration, *nodes, *maxq, queueLabel(*maxq, *queue), *broker, *memory, *tenants)

	results := make([]result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		kind := drawKind(r, weights)
		q := buildQuery(db, c, kind, r, *tenants)
		wg.Add(1)
		go func(i int, kind queryKind, q *hierdb.Query, scheduled time.Time) {
			defer wg.Done()
			_, st, err := q.Collect(context.Background())
			res := result{kind: kind, latency: time.Since(scheduled)}
			switch {
			case errors.Is(err, hierdb.ErrAdmissionQueueFull):
				res.rejected = true
			case err != nil:
				res.err = err
			default:
				res.admit = st.AdmissionWait
				res.spillPar = st.SpilledPartitions
				res.spillByt = st.SpilledBytes
			}
			results[i] = res
		}(i, kind, q, scheduled)
	}
	wg.Wait()
	report(results)
}

// buildQuery assembles one arrival's plan. Point lookups probe a random
// row id on the first relation; joins run the case's full left-deep
// chain; group-bys fold the largest relation by its first join key.
func buildQuery(db *hierdb.DB, c *difftest.Case, kind queryKind, r *xrand.Rand, tenants int) *hierdb.Query {
	var q *hierdb.Query
	switch kind {
	case kindPoint:
		t := c.Tables[0]
		q = db.Scan(t.Name).Where(hierdb.Pred{Col: 0, Op: hierdb.Eq, Val: r.Intn(len(t.Rows))})
	case kindJoin:
		q = c.Plan(db)
	default:
		t := c.Tables[0]
		for _, tb := range c.Tables[1:] {
			if len(tb.Rows) > len(t.Rows) {
				t = tb
			}
		}
		// Column 1 is the first join-key column (column 0 is the row id).
		q = db.Scan(t.Name).GroupBy(hierdb.KeyCol(1), hierdb.Aggregation{Func: hierdb.Count})
	}
	if tenants > 1 {
		q = q.WithTenant(fmt.Sprintf("t%d", r.Intn(tenants)))
	}
	return q
}

func drawKind(r *xrand.Rand, weights [numKinds]float64) queryKind {
	x := r.Float64() * (weights[0] + weights[1] + weights[2])
	for k := queryKind(0); k < numKinds-1; k++ {
		if x < weights[k] {
			return k
		}
		x -= weights[k]
	}
	return numKinds - 1
}

func parseMix(s string) ([numKinds]float64, error) {
	var w [numKinds]float64
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return w, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || v < 0 {
			return w, fmt.Errorf("bad -mix weight %q", part)
		}
		switch kv[0] {
		case "point":
			w[kindPoint] = v
		case "join":
			w[kindJoin] = v
		case "group":
			w[kindGroup] = v
		default:
			return w, fmt.Errorf("unknown -mix kind %q (want point, join, group)", kv[0])
		}
	}
	if w[0]+w[1]+w[2] <= 0 {
		return w, fmt.Errorf("-mix weights sum to zero")
	}
	return w, nil
}

func queueLabel(maxq, queue int) string {
	if maxq <= 0 {
		return "-"
	}
	if queue <= 0 {
		return strconv.Itoa(8 * maxq)
	}
	return strconv.Itoa(queue)
}

// report prints per-kind and overall latency percentiles plus admission
// and spill counters.
func report(results []result) {
	fmt.Printf("%-6s %7s %7s %8s %9s %9s %9s %9s %9s\n",
		"kind", "ok", "reject", "failed", "p50", "p99", "p999", "max", "admit-p99")
	for k := queryKind(0); k <= numKinds; k++ {
		var lats, admits []time.Duration
		var ok, rejected, failed int
		for _, res := range results {
			if k < numKinds && res.kind != k {
				continue
			}
			switch {
			case res.rejected:
				rejected++
			case res.err != nil:
				failed++
			default:
				ok++
				lats = append(lats, res.latency)
				admits = append(admits, res.admit)
			}
		}
		name := "all"
		if k < numKinds {
			name = kindNames[k]
		}
		if ok+rejected+failed == 0 {
			continue
		}
		fmt.Printf("%-6s %7d %7d %8d %9s %9s %9s %9s %9s\n",
			name, ok, rejected, failed,
			fmtDur(pct(lats, 0.50)), fmtDur(pct(lats, 0.99)),
			fmtDur(pct(lats, 0.999)), fmtDur(pct(lats, 1.0)),
			fmtDur(pct(admits, 0.99)))
	}
	var spillPar, spillByt int64
	var failed int
	for _, res := range results {
		spillPar += res.spillPar
		spillByt += res.spillByt
		if res.err != nil {
			failed++
		}
	}
	fmt.Printf("spill: partitions=%d bytes=%d\n", spillPar, spillByt)
	if failed > 0 {
		for _, res := range results {
			if res.err != nil {
				fmt.Printf("first failure: %v\n", res.err)
				break
			}
		}
		os.Exit(1)
	}
}

// pct returns the p-quantile of ds by sorted rank (nearest-rank, p=1.0
// is the max). Empty input reports zero.
func pct(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(time.Second))
	}
}
