package hierdb

// BenchmarkSpillJoin prices memory governance: the same fact-dim join
// streamed through Rows once with an unlimited budget (the ungoverned
// in-memory hash join) and once under a WithMemory budget far below the
// build side, forcing the full Grace-style cycle — partition build and
// probe inputs to spill files, then join the partitions one at a time.
// Baselines live in BENCH_engine.json and gate in cmd/benchdiff; the
// spilled-bytes metric documents the disk traffic the budget buys.

import (
	"context"
	"fmt"
	"testing"
)

const (
	spillBenchDim  = 10_000
	spillBenchFact = 40_000
)

func spillBenchDB(b *testing.B, opts ...Option) *DB {
	b.Helper()
	dim := &Table{Name: "dim", Cols: []string{"k", "v"}}
	for i := 0; i < spillBenchDim; i++ {
		dim.Rows = append(dim.Rows, Row{i, fmt.Sprintf("d%d", i)})
	}
	fact := &Table{Name: "fact", Cols: []string{"k", "v"}}
	for i := 0; i < spillBenchFact; i++ {
		fact.Rows = append(fact.Rows, Row{i % spillBenchDim, i})
	}
	db := Open(opts...)
	b.Cleanup(func() { db.Close() })
	for _, tb := range []*Table{dim, fact} {
		if err := db.RegisterTable(tb); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func runSpillBench(b *testing.B, db *DB, wantSpill bool) {
	b.Helper()
	b.ResetTimer()
	var spilledBytes, phases int64
	for n := 0; n < b.N; n++ {
		rows, err := db.Scan("fact").Join(db.Scan("dim"), KeyCol(0), KeyCol(0)).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		got := 0
		for rows.Next() {
			got++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		rows.Close()
		if got != spillBenchFact {
			b.Fatalf("streamed %d rows, want %d", got, spillBenchFact)
		}
		st := rows.Stats()
		spilledBytes += st.SpilledBytes
		phases += st.SpillPhases
	}
	b.StopTimer()
	if wantSpill && phases == 0 {
		b.Fatal("governed benchmark leg never spilled")
	}
	if !wantSpill && spilledBytes != 0 {
		b.Fatal("ungoverned benchmark leg spilled")
	}
	b.ReportMetric(float64(spillBenchFact*b.N)/b.Elapsed().Seconds(), "rows/s")
	b.ReportMetric(float64(spilledBytes)/float64(b.N), "spilled_B/op")
	b.ReportMetric(float64(phases)/float64(b.N), "phases/op")
}

func BenchmarkSpillJoin(b *testing.B) {
	b.Run("inmem", func(b *testing.B) {
		runSpillBench(b, spillBenchDB(b, WithWorkers(4)), false)
	})
	b.Run("spill", func(b *testing.B) {
		runSpillBench(b, spillBenchDB(b, WithWorkers(4), WithMemory(128<<10), WithSpillDir(b.TempDir())), true)
	})
}
