package hierdb

// Facade tests for the admission controller and memory broker options:
// queue-full rejection and prompt ErrClosed through Run, admission-wait
// stats with tenant labels, and option validation.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hierdb/internal/leaktest"
)

// bigSelfJoinDB opens a DB with the given options plus one 300k-row
// table whose self-join is large enough that an undrained Run stays in
// flight on sink backpressure (holding its admission slot).
func bigSelfJoinDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db := Open(append([]Option{WithWorkers(2)}, opts...)...)
	t.Cleanup(func() { db.Close() })
	tab := &Table{Name: "big", Cols: []string{"k"}}
	for i := 0; i < 300_000; i++ {
		tab.Rows = append(tab.Rows, Row{i})
	}
	if err := db.RegisterTable(tab); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAdmissionQueueFullAndCloseWakesParked drives the whole admission
// story through the facade: with one slot and a one-deep queue, an
// undrained query holds the slot, a parked Run waits in the queue, an
// over-capacity Run is rejected with ErrAdmissionQueueFull, and Close
// promptly fails the parked Run with ErrClosed — the regression the
// admission controller exists for (the old channel semaphore left a
// context.Background() Run parked forever).
func TestAdmissionQueueFullAndCloseWakesParked(t *testing.T) {
	leaktest.Check(t, 2)
	db := bigSelfJoinDB(t, WithMaxConcurrentQueries(1), WithAdmissionQueue(1))

	rows, err := db.Scan("big").Join(db.Scan("big"), KeyCol(0), KeyCol(0)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}

	// The parked Run retries on queue-full (it can race the probe loop
	// below for the single queue slot) and reports its terminal error.
	type outcome struct {
		err error
		at  time.Time
	}
	parked := make(chan outcome, 1)
	go func() {
		for {
			_, err := db.Scan("big").WithTenant("parked").Run(context.Background())
			if errors.Is(err, ErrAdmissionQueueFull) {
				continue
			}
			parked <- outcome{err: err, at: time.Now()}
			return
		}
	}()

	// Probe with a pre-cancelled context until the queue reports full:
	// a probe that finds queue space parks, sees its dead context and
	// removes itself (context.Canceled); one that finds the queue full
	// is rejected before parking — proof the parked Run is in the queue.
	probeCtx, cancel := context.WithCancel(context.Background())
	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := db.Scan("big").WithTenant("probe").Run(probeCtx)
		if errors.Is(err, ErrAdmissionQueueFull) {
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("probe Run = %v, want context.Canceled or ErrAdmissionQueueFull", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("parked Run never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	closedAt := time.Now()
	go db.Close()
	select {
	case o := <-parked:
		if !errors.Is(o.err, ErrClosed) {
			t.Fatalf("parked Run returned %v, want ErrClosed", o.err)
		}
		if d := o.at.Sub(closedAt); d > 100*time.Millisecond {
			t.Fatalf("parked Run took %v after Close, want <= 100ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked Run still blocked 5s after Close — the hang this test guards against")
	}
	rows.Close()
}

// TestAdmissionWaitReported checks a Run that parked and was then
// granted reports the time parked in EngineStats.AdmissionWait.
func TestAdmissionWaitReported(t *testing.T) {
	leaktest.Check(t, 2)
	db := bigSelfJoinDB(t, WithMaxConcurrentQueries(1))

	rows, err := db.Scan("big").Join(db.Scan("big"), KeyCol(0), KeyCol(0)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	type waited struct {
		st  *EngineStats
		err error
	}
	done := make(chan waited, 1)
	go func() {
		_, st, err := db.Scan("big").Where(Pred{Col: 0, Op: Lt, Val: 10}).
			WithTenant("b").Collect(context.Background())
		done <- waited{st: st, err: err}
	}()
	// Give the second Run time to park, then free the slot by draining.
	time.Sleep(200 * time.Millisecond)
	if _, err := rows.Collect(); err != nil {
		t.Fatal(err)
	}
	w := <-done
	if w.err != nil {
		t.Fatal(w.err)
	}
	if w.st.AdmissionWait <= 0 {
		t.Fatalf("AdmissionWait = %v, want > 0 for a Run that parked", w.st.AdmissionWait)
	}
}

// TestMemoryBrokerRequiresBudget checks WithMemoryBroker without a
// WithMemory budget is rejected at Open (surfaced on first use).
func TestMemoryBrokerRequiresBudget(t *testing.T) {
	leaktest.Check(t, 2)
	db := Open(WithMemoryBroker(true))
	defer db.Close()
	if _, err := db.Scan("t").Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "WithMemoryBroker requires") {
		t.Fatalf("Run on broker-without-memory DB = %v, want the Open error", err)
	}
}
