module hierdb

go 1.24
