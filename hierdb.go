// Package hierdb reproduces "Dynamic Load Balancing in Hierarchical
// Parallel Database Systems" (Bouganim, Florescu, Valduriez; INRIA
// RR-2815 / VLDB 1996) as a Go library.
//
// It exposes two layers:
//
//   - A simulation of the paper's execution models on a configurable
//     hierarchical machine (SM-nodes of processors and disks connected by
//     a network), faithful to §5.1's methodology: the execution model runs
//     for real, operators/disks/network are simulated in virtual time.
//     Use GenerateWorkload + ExecuteDP/ExecuteFP/ExecuteSP, or the
//     per-figure drivers (Fig6..Fig10, Transfer) to regenerate the paper's
//     evaluation.
//
//   - A real-data, in-memory parallel hash-join engine whose scheduler is
//     the paper's DP model on goroutines: self-contained activations in
//     per-operator queues, any worker may run any operator, primary-queue
//     affinity, pipeline chains one at a time. Open a resident DB, register
//     tables, and run fluently built queries (Scan/Join/GroupBy) that
//     stream through Rows — all concurrent queries share the handle's
//     worker pools, which balance load across them at execution time.
//     WithNodes makes the handle hierarchical — several node-local pools
//     over hash-partitioned tables, with the paper's global activation
//     stealing (starving nodes acquire remote probe queues and cache the
//     hash-table buckets they ship) balancing load between nodes.
//     WithMemory adds the paper's memory constraint: each node governs a
//     byte budget, and hash joins whose build side exceeds it switch to
//     Grace-style partitioned execution over spill files, with results
//     identical to the unlimited run. Static mode gives the FP baseline
//     for comparison; Execute and ExecuteGroupBy remain as one-shot
//     wrappers over a throwaway pool.
package hierdb

import (
	"context"
	"runtime"

	"hierdb/internal/baseline"
	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/core"
	"hierdb/internal/exec"
	"hierdb/internal/experiments"
	"hierdb/internal/metrics"
	"hierdb/internal/plan"
	"hierdb/internal/vec"
)

// ---------------------------------------------------------------------
// Simulation layer
// ---------------------------------------------------------------------

// Config describes the hierarchical machine (SM-nodes x processors, with
// the paper's disk and network parameter tables).
type Config = cluster.Config

// DefaultConfig returns the paper's machine parameters for the given
// topology, e.g. DefaultConfig(4, 8) for the "4x8" configuration.
func DefaultConfig(nodes, procsPerNode int) Config {
	return cluster.DefaultConfig(nodes, procsPerNode)
}

// Plan is a parallel execution plan (operator tree + scheduling + homes).
type Plan = plan.Tree

// Run is the measurement record of one simulated execution.
type Run = metrics.Run

// SimOptions tunes the DP/FP execution models (granularities, degree of
// fragmentation, flow control, skew, global load balancing, ablations).
type SimOptions = core.Options

// Scale selects experiment magnitude. Its Parallelism field bounds the
// worker pool the figure drivers fan their independent simulation runs
// across (0 = one worker per available processor); figure output is
// bit-for-bit identical at any setting.
type Scale = experiments.Scale

// Workload is a generated plan set.
type Workload = experiments.Workload

// Figure is a regenerated table or figure.
type Figure = experiments.Figure

// Progress receives progress lines from long experiment drivers. Lines
// are serialized (the callback is never invoked concurrently) and carry
// an aggregated [completed/total] prefix.
type Progress = experiments.Progress

// PaperScale returns the full §5 experiment configuration (20 queries x 2
// bushy trees over 12 relations, 30-60 virtual-minute sequential gate).
func PaperScale() Scale { return experiments.PaperScale() }

// BenchScale returns a reduced configuration that keeps every experiment's
// shape while running in seconds.
func BenchScale() Scale { return experiments.BenchScale() }

// PlanSchedule selects the optimizer scheduling heuristics of §2.2
// (hash-tables-ready and one-chain-at-a-time).
type PlanSchedule = plan.Schedule

// DefaultSchedule matches the paper's experiments: chains one-at-a-time.
func DefaultSchedule() PlanSchedule { return plan.DefaultSchedule() }

// FullParallelSchedule disables both heuristics, executing all pipeline
// chains concurrently — the [Wilshut95]-style strategy §3.2 discusses as a
// way to give load balancing more concurrent operators.
func FullParallelSchedule() PlanSchedule { return PlanSchedule{} }

// RunMatrix executes jobs 0..n-1 on a bounded worker pool — the driver
// behind the figure regenerators, exposed for callers fanning out their
// own independent simulation runs. do(i) must write its result only to
// storage addressed by i; jobs may complete in any order, and a panicking
// job is re-raised deterministically (lowest index wins) after the pool
// drains. workers <= 0 means one worker per available processor.
func RunMatrix(workers, n int, do func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	experiments.RunMatrix(workers, n, do)
}

// GenerateWorkload builds the §5.1.2 plan set for a topology of the given
// number of SM-nodes, deterministically in (scale.Seed, nodes).
func GenerateWorkload(s Scale, nodes int) *Workload {
	return experiments.BuildWorkload(s, nodes)
}

// GenerateWorkloadSchedule is GenerateWorkload with explicit scheduling
// heuristics. Note the FP baseline requires the one-chain-at-a-time
// schedule; use alternate schedules with ExecuteDP only.
func GenerateWorkloadSchedule(s Scale, nodes int, sched PlanSchedule) *Workload {
	return experiments.BuildWorkloadSchedule(s, nodes, sched)
}

// ChainPlan builds the §5.3 micro-benchmark: one pipeline chain of ops
// operators on the given number of nodes (cardDiv scales the relations
// down; use 1 for paper scale).
func ChainPlan(ops, nodes int, cardDiv int64) *Plan {
	return experiments.ChainPlan(ops, nodes, cardDiv)
}

// ExecuteDP runs a plan under the paper's dynamic-processing model.
// mutate, if non-nil, adjusts the default options (skew, ablations, ...).
func ExecuteDP(tree *Plan, cfg Config, mutate func(*SimOptions)) (*Run, error) {
	return baseline.RunDP(tree, cfg, mutate)
}

// ExecuteFP runs a plan under the fixed-processing baseline with the given
// cost-model error rate (0 = exact estimates) and distortion seed.
func ExecuteFP(tree *Plan, cfg Config, errRate float64, distortSeed uint64, mutate func(*SimOptions)) (*Run, error) {
	return baseline.RunFP(tree, cfg, errRate, distortSeed, mutate)
}

// ExecuteSP runs a plan under synchronous pipelining (single SM-node
// only, as in the paper).
func ExecuteSP(tree *Plan, cfg Config) (*Run, error) {
	return baseline.RunSP(tree, cfg, baseline.DefaultSPOptions())
}

// Fig6 regenerates Figure 6 (relative performance of SP, DP, FP).
func Fig6(s Scale, p Progress) *Figure { return experiments.Fig6(s, p) }

// Fig7 regenerates Figure 7 (impact of cost-model errors on FP).
func Fig7(s Scale, p Progress) *Figure { return experiments.Fig7(s, p) }

// Fig8 regenerates Figure 8 (speedup of SP, FP, DP).
func Fig8(s Scale, p Progress) *Figure { return experiments.Fig8(s, p) }

// Fig9 regenerates Figure 9 (impact of redistribution skew on DP).
func Fig9(s Scale, p Progress) *Figure { return experiments.Fig9(s, p) }

// Fig10 regenerates Figure 10 (FP vs DP on hierarchical configurations).
func Fig10(s Scale, p Progress) *Figure { return experiments.Fig10(s, p) }

// Transfer regenerates the §5.3 in-text load-balancing data-volume
// comparison (paper: FP ~9 MB vs DP ~2.5 MB).
func Transfer(s Scale, p Progress) *Figure { return experiments.Transfer(s, p) }

// ParamTables renders the §5.1.1 network and disk parameter tables.
func ParamTables() string { return experiments.ParamTables() }

// Shapes compares DP across join-tree shapes (extension, motivated by
// §2.2's discussion of left-deep/right-deep/zigzag/bushy trees).
func Shapes(s Scale, p Progress) *Figure { return experiments.Shapes(s, p) }

// PlacementSkew measures DP under tuple-placement skew ([Walton91];
// extension).
func PlacementSkew(s Scale, p Progress) *Figure { return experiments.PlacementSkew(s, p) }

// ConcurrentChains compares one-chain-at-a-time with the §3.2
// full-parallel schedule under DP (extension).
func ConcurrentChains(s Scale, p Progress) *Figure { return experiments.ConcurrentChains(s, p) }

// ---------------------------------------------------------------------
// Real-data engine
// ---------------------------------------------------------------------

// Row is one tuple of the real-data engine.
type Row = exec.Row

// Table is an in-memory relation.
type Table = exec.Table

// ScanNode reads a table (optionally filtered).
type ScanNode = exec.Scan

// Pred is a single-column scan predicate (column index, comparison
// operator, constant). Unlike a row Filter closure, predicates are
// evaluated inside the columnar scan kernel as tight per-column loops
// that only shrink the selection vector — no row materialization. A
// null column value satisfies only IsNull; a constant outside the
// column's type family matches no rows.
type Pred = vec.Pred

// CmpOp is a predicate comparison operator.
type CmpOp = vec.CmpOp

// Predicate comparison operators. IsNull/NotNull ignore the constant;
// bools support Eq/Ne only.
const (
	Eq      = vec.Eq
	Ne      = vec.Ne
	Lt      = vec.Lt
	Le      = vec.Le
	Gt      = vec.Gt
	Ge      = vec.Ge
	IsNull  = vec.IsNull
	NotNull = vec.NotNull
)

// JoinNode is a hash equi-join of two sub-plans.
type JoinNode = exec.Join

// KeyFunc extracts a comparable join key from a row.
type KeyFunc = exec.KeyFunc

// KeyCol returns a KeyFunc selecting column i.
func KeyCol(i int) KeyFunc { return exec.KeyCol(i) }

// EngineOptions tunes the real-data engine (workers, morsel/batch
// granularity, hash-table striping, Static = FP baseline, per-node
// memory budget and spill directory).
type EngineOptions = exec.Options

// EngineStats reports per-execution counters, including per-worker load,
// memory-governance spill counters, per-operator row production
// (OpRows, what Explain's Actualize reads), and, on a multi-node DB,
// per-node breakdowns and steal counters.
//
// ResultRows counts the rows delivered to the caller. On a plain query
// that is the root join's output; on a GroupBy query it counts the
// aggregation's OUTPUT rows — one per group — not the rows folded into
// it (the fold's input volume is the root join's OpRows entry).
type EngineStats = exec.Stats

// TableStats is one table's Analyze result: cardinality, average row
// bytes, and per-column distinct/null estimates. See DB.Analyze.
type TableStats = catalog.TableStats

// ColStats is one column's share of a TableStats.
type ColStats = catalog.ColStats

// NodeStats is one SM-node's share of a multi-node query's counters
// (see EngineStats.Nodes).
type NodeStats = exec.NodeStats

// Admission errors of a DB opened with WithMaxConcurrentQueries, for
// errors.Is on a failed Run. ErrClosed also reports in-flight queries
// a Close aborted.
var (
	// ErrClosed is returned by Run when the DB closes — including a Run
	// parked in the admission queue, which Close fails promptly.
	ErrClosed = exec.ErrClosed
	// ErrAdmissionQueueFull rejects a Run immediately when every
	// admission slot is taken and the wait queue is at capacity; see
	// WithAdmissionQueue.
	ErrAdmissionQueueFull = exec.ErrAdmissionQueueFull
)

// Execute runs a real-data plan under the DP scheduler and returns the
// joined rows. It is a one-shot wrapper over a throwaway single-query
// worker pool; services running concurrent queries should Open a
// resident DB and use the Scan/Join/GroupBy builder with Run instead.
func Execute(ctx context.Context, root exec.Node, opt EngineOptions) ([]Row, *EngineStats, error) {
	return exec.Execute(ctx, root, opt)
}

// GroupBy describes a grouped aggregation over a plan's output.
type GroupBy = exec.GroupBy

// Aggregation is one aggregate function application.
type Aggregation = exec.Aggregation

// Aggregate functions for GroupBy.
const (
	Count = exec.Count
	Sum   = exec.Sum
	Min   = exec.Min
	Max   = exec.Max
)

// ExecuteGroupBy runs a real-data plan and folds its output through a
// parallel partial aggregation, one row per group. Like Execute it is a
// one-shot wrapper; prefer Query.GroupBy on a resident DB.
func ExecuteGroupBy(ctx context.Context, root exec.Node, gb *GroupBy, opt EngineOptions) ([]Row, *EngineStats, error) {
	return exec.ExecuteGroupBy(ctx, root, gb, opt)
}
