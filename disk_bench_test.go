package hierdb

// BenchmarkDiskScan prices persistent-table streaming: the same
// filtered scan over a resident table (/resident), over a chunked
// table file streamed from disk (/disk), and over the file with a
// zone-map-prunable range predicate (/disk-pruned) — the pruned leg's
// chunks_skipped/op and disk_B/op metrics document the I/O the zone
// maps save. BenchmarkDiskJoinSpill is the governed acceptance shape
// as a benchmark: a self-join over a table file roughly 10x the
// WithMemory budget, streaming chunks in while Grace-partitioning
// build and probe out. Baselines live in BENCH_engine.json and gate in
// cmd/benchdiff.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"hierdb/internal/store"
	"hierdb/internal/vec"
)

const (
	diskBenchRows  = 100_000
	diskBenchChunk = 4096
	// diskBenchLo/Hi select ~5% of the key space: with 4096-row chunks
	// over a sorted id column, zone maps prune all but 2-3 chunks.
	diskBenchLo = 50_000
	diskBenchHi = 55_000
)

func diskBenchRowsData() ([]string, []vec.Row) {
	rows := make([]vec.Row, diskBenchRows)
	for i := range rows {
		rows[i] = vec.Row{i, i % 1000, fmt.Sprintf("payload-%06d", i)}
	}
	return []string{"id", "m", "payload"}, rows
}

func diskBenchFile(b *testing.B, chunkRows int) string {
	b.Helper()
	cols, rows := diskBenchRowsData()
	path := filepath.Join(b.TempDir(), "bench.hdb")
	if err := store.WriteTable(path, cols, chunkRows, rows); err != nil {
		b.Fatal(err)
	}
	return path
}

func runDiskScan(b *testing.B, db *DB, pruned bool) {
	b.Helper()
	q := db.Scan("t").Where(Pred{Col: 0, Op: Ge, Val: diskBenchLo}, Pred{Col: 0, Op: Lt, Val: diskBenchHi})
	b.ResetTimer()
	var scanned, skipped, diskB int64
	for n := 0; n < b.N; n++ {
		rows, err := q.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		got := 0
		for rows.Next() {
			got++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		rows.Close()
		if got != diskBenchHi-diskBenchLo {
			b.Fatalf("scanned %d rows, want %d", got, diskBenchHi-diskBenchLo)
		}
		st := rows.Stats()
		scanned += st.ChunksScanned
		skipped += st.ChunksSkipped
		diskB += st.DiskBytesRead
	}
	b.StopTimer()
	if pruned && skipped == 0 {
		b.Fatal("prunable disk scan never skipped a chunk")
	}
	b.ReportMetric(float64(diskBenchRows*b.N)/b.Elapsed().Seconds(), "rows/s")
	b.ReportMetric(float64(scanned)/float64(b.N), "chunks/op")
	b.ReportMetric(float64(skipped)/float64(b.N), "chunks_skipped/op")
	b.ReportMetric(float64(diskB)/float64(b.N), "disk_B/op")
}

func BenchmarkDiskScan(b *testing.B) {
	b.Run("resident", func(b *testing.B) {
		cols, data := diskBenchRowsData()
		tb := &Table{Name: "t", Cols: cols}
		for _, r := range data {
			tb.Rows = append(tb.Rows, Row(r))
		}
		db := Open(WithWorkers(4))
		b.Cleanup(func() { db.Close() })
		if err := db.RegisterTable(tb); err != nil {
			b.Fatal(err)
		}
		runDiskScan(b, db, false)
	})
	// The disk legs differ only in chunk geometry: /disk streams every
	// chunk (the predicate range straddles all of them because the
	// whole table is one chunk), /disk-pruned uses the default 4096-row
	// chunks so the sorted id column's zone maps skip ~97% of the file.
	b.Run("disk", func(b *testing.B) {
		path := diskBenchFile(b, diskBenchRows) // one chunk: nothing prunable
		db := Open(WithWorkers(4))
		b.Cleanup(func() { db.Close() })
		if err := db.RegisterTableFile("t", path); err != nil {
			b.Fatal(err)
		}
		runDiskScan(b, db, false)
	})
	b.Run("disk-pruned", func(b *testing.B) {
		path := diskBenchFile(b, diskBenchChunk)
		db := Open(WithWorkers(4))
		b.Cleanup(func() { db.Close() })
		if err := db.RegisterTableFile("t", path); err != nil {
			b.Fatal(err)
		}
		runDiskScan(b, db, true)
	})
}

// BenchmarkDiskJoinSpill joins a chunk-streamed table file against
// itself under a memory budget ~10x smaller than the file: every run
// decodes chunks under the budget charge and executes the full Grace
// cycle over the spilled partitions.
func BenchmarkDiskJoinSpill(b *testing.B) {
	cols := []string{"id", "k", "payload"}
	const n = 40_000
	rows := make([]vec.Row, n)
	for i := range rows {
		rows[i] = vec.Row{i, i % (n / 2), fmt.Sprintf("payload-%08d", i)}
	}
	path := filepath.Join(b.TempDir(), "join.hdb")
	if err := store.WriteTable(path, cols, diskBenchChunk, rows); err != nil {
		b.Fatal(err)
	}
	// ~880KB file => 88KB budget (10x), far under the 40k-row build side.
	db := Open(WithWorkers(4), WithMemory(88<<10), WithSpillDir(b.TempDir()))
	b.Cleanup(func() { db.Close() })
	if err := db.RegisterTableFile("t", path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var phases, spilled, diskB int64
	for bi := 0; bi < b.N; bi++ {
		rs, err := db.Scan("t").Join(db.Scan("t"), KeyCol(1), KeyCol(1)).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		got := 0
		for rs.Next() {
			got++
		}
		if err := rs.Err(); err != nil {
			b.Fatal(err)
		}
		rs.Close()
		if got != 2*n {
			b.Fatalf("streamed %d rows, want %d", got, 2*n)
		}
		st := rs.Stats()
		phases += st.SpillPhases
		spilled += st.SpilledBytes
		diskB += st.DiskBytesRead
	}
	b.StopTimer()
	if phases == 0 {
		b.Fatal("10x-over-budget disk join never spilled")
	}
	b.ReportMetric(float64(2*n*b.N)/b.Elapsed().Seconds(), "rows/s")
	b.ReportMetric(float64(phases)/float64(b.N), "phases/op")
	b.ReportMetric(float64(spilled)/float64(b.N), "spilled_B/op")
	b.ReportMetric(float64(diskB)/float64(b.N), "disk_B/op")
}
