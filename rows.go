package hierdb

// Streaming result iteration. Rows is fed by the engine's bounded sink:
// workers block when the consumer lags (backpressure), so a result set
// is never materialized unless the caller asks for it with Collect.
//
// The engine streams columnar batches; Rows is the row boundary. Row
// materialization is lazy — Next only advances a cursor, and a caller
// that skips Row() for a batch never pays for boxing it into rows.

import (
	"hierdb/internal/exec"
	"hierdb/internal/vec"
)

// Rows streams a running query's results:
//
//	rows, err := q.Run(ctx)
//	...
//	defer rows.Close()
//	for rows.Next() {
//		use(rows.Row())
//	}
//	err = rows.Err()
//
// Rows is not safe for concurrent use. Abandoning an un-Closed,
// partially consumed Rows blocks the pool workers feeding it — always
// drain it or Close.
type Rows struct {
	h      *exec.Handle
	batch  *vec.Batch
	i      int // next logical row of batch
	cur    Row
	arena  vec.Arena
	err    error
	closed bool
}

// Next advances to the next row, blocking for the engine as needed. It
// returns false at end of stream, on query error, or after Close; check
// Err to tell the first two apart.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	r.cur = nil
	for {
		if r.batch != nil && r.i < r.batch.N {
			r.i++
			return true
		}
		batch, ok := <-r.h.Out()
		if !ok {
			if r.err == nil {
				r.err = r.h.Err()
			}
			return false
		}
		r.batch, r.i = batch, 0
	}
}

// Row returns the current row, materialized from the columnar batch on
// first call. Valid after a true Next until the next call; the engine
// does not reuse row storage, so retaining rows is safe.
func (r *Rows) Row() Row {
	if r.cur == nil && r.batch != nil && r.i > 0 {
		r.cur = r.batch.ReadRow(r.i-1, r.arena.Anys(len(r.batch.Cols)))
	}
	return r.cur
}

// Err returns the query's terminal error once Next has returned false
// (nil on clean completion or when iteration was ended by Close).
func (r *Rows) Err() error { return r.err }

// Close cancels the query if it is still running, drains the stream so
// the pool's workers release promptly, and returns any error already
// observed by Next. Idempotent; safe after full iteration.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	r.batch, r.i, r.cur = nil, 0, nil
	r.h.Cancel()
	for range r.h.Out() {
	}
	return r.err
}

// Collect drains the remaining stream into a slice, batch-wise.
func (r *Rows) Collect() ([]Row, error) {
	var out []Row
	if !r.closed {
		// Buffer the remaining batches, then carve the row slice once at
		// the exact total — no growslice churn on large results.
		partial, start := r.batch, r.i
		r.batch, r.i = nil, 0
		var batches []*vec.Batch
		total := 0
		if partial != nil {
			total += partial.N - start
		}
		for batch := range r.h.Out() {
			batches = append(batches, batch)
			total += batch.N
		}
		out = make([]Row, 0, total)
		if partial != nil {
			for i := start; i < partial.N; i++ {
				out = append(out, partial.ReadRow(i, r.arena.Anys(len(partial.Cols))))
			}
		}
		for _, batch := range batches {
			out = batch.AppendRows(out, &r.arena)
		}
		if r.err == nil {
			r.err = r.h.Err()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

// Stats returns the query's per-query counters (activation counts,
// per-worker load on the shared pool, result rows). It blocks until the
// query retires, so call it after iteration completes or after Close.
func (r *Rows) Stats() *EngineStats { return r.h.Stats() }
