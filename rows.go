package hierdb

// Streaming result iteration. Rows is fed by the engine's bounded sink:
// workers block when the consumer lags (backpressure), so a result set
// is never materialized unless the caller asks for it with Collect.

import "hierdb/internal/exec"

// Rows streams a running query's results:
//
//	rows, err := q.Run(ctx)
//	...
//	defer rows.Close()
//	for rows.Next() {
//		use(rows.Row())
//	}
//	err = rows.Err()
//
// Rows is not safe for concurrent use. Abandoning an un-Closed,
// partially consumed Rows blocks the pool workers feeding it — always
// drain it or Close.
type Rows struct {
	h      *exec.Handle
	batch  []Row
	i      int
	cur    Row
	err    error
	closed bool
}

// Next advances to the next row, blocking for the engine as needed. It
// returns false at end of stream, on query error, or after Close; check
// Err to tell the first two apart.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	for {
		if r.i < len(r.batch) {
			r.cur = r.batch[r.i]
			r.i++
			return true
		}
		batch, ok := <-r.h.Out()
		if !ok {
			if r.err == nil {
				r.err = r.h.Err()
			}
			return false
		}
		r.batch, r.i = batch, 0
	}
}

// Row returns the current row. Valid after a true Next until the next
// call; the engine does not reuse row storage, so retaining rows is safe.
func (r *Rows) Row() Row { return r.cur }

// Err returns the query's terminal error once Next has returned false
// (nil on clean completion or when iteration was ended by Close).
func (r *Rows) Err() error { return r.err }

// Close cancels the query if it is still running, drains the stream so
// the pool's workers release promptly, and returns any error already
// observed by Next. Idempotent; safe after full iteration.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	r.batch, r.i = nil, 0
	r.h.Cancel()
	for range r.h.Out() {
	}
	return r.err
}

// Collect drains the remaining stream into a slice, batch-wise.
func (r *Rows) Collect() ([]Row, error) {
	var out []Row
	if !r.closed {
		if r.i < len(r.batch) {
			out = append(out, r.batch[r.i:]...)
			r.batch, r.i = nil, 0
		}
		for batch := range r.h.Out() {
			out = append(out, batch...)
		}
		if r.err == nil {
			r.err = r.h.Err()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

// Stats returns the query's per-query counters (activation counts,
// per-worker load on the shared pool, result rows). It blocks until the
// query retires, so call it after iteration completes or after Close.
func (r *Rows) Stats() *EngineStats { return r.h.Stats() }
