package hierdb

// Explain: the structured description of the plan Run would execute,
// produced without executing it. An ExplainPlan carries the tree shape
// (join order, build sides, chosen strategies) with the planner's
// cardinality estimates; after running the same query, Actualize pairs
// the plan with the run's EngineStats to put actual per-operator row
// counts next to the estimates.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"hierdb/internal/exec"
)

// ExplainNode is one operator of an explained plan: kind, table,
// estimated and actual rows, chosen strategy, and children (joins list
// [probe, build]).
type ExplainNode = exec.ExplainNode

// ExplainPlan is the planner's report for one query.
type ExplainPlan struct {
	// Mode is the optimizer mode that produced the plan: "off", "hints",
	// or "full".
	Mode string
	// Reordered reports that the full optimizer replaced the builder's
	// literal join order with the DP optimum.
	Reordered bool
	// Reason, under the full optimizer, says why the literal order was
	// kept (empty when the plan was reordered or the mode stops short of
	// full).
	Reason string
	// EstCost is the calibrated single-threaded cost estimate of the
	// plan (see the exec cost constants); comparable across plans of the
	// same query, not a wall-clock prediction.
	EstCost time.Duration
	// Root is the plan tree.
	Root *ExplainNode
}

// Explain plans the query exactly as Run would under the DB's optimizer
// mode and returns the structured plan without executing anything.
// Actual row counts start at -1; run the query and call Actualize with
// the run's stats to fill them.
func (q *Query) Explain(ctx context.Context) (*ExplainPlan, error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.db == nil {
		return nil, fmt.Errorf("hierdb: query without a DB")
	}
	if q.db.err != nil {
		return nil, q.db.err
	}
	q.db.mu.RLock()
	closed := q.db.closed
	q.db.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("hierdb: database closed")
	}
	if q.node == nil {
		return nil, fmt.Errorf("hierdb: empty query")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pc := exec.Optimize(q.node, q.db.mode, q.db.statsFor)
	root, err := pc.Describe(q.gb, q.db.opt, q.db.eng.NodeCount())
	if err != nil {
		return nil, err
	}
	return &ExplainPlan{
		Mode:      optimizerModeName(q.db.mode),
		Reordered: pc.Reordered,
		Reason:    pc.Reason,
		EstCost:   time.Duration(root.EstimateCostNs()),
		Root:      root,
	}, nil
}

// Actualize fills the plan's actual row counts from a finished run's
// stats: per-operator production counters for scans and joins (see
// EngineStats.OpRows), delivered result rows for a group-by. The run
// must be of the same query under the same optimizer mode for operator
// ids to line up.
func (p *ExplainPlan) Actualize(st *EngineStats) {
	if p == nil {
		return
	}
	p.Root.Actualize(st)
}

// IntermediateRows sums the actual output rows of every join below the
// root join — the intermediate-result volume the DP search minimizes.
// It returns 0 for plans with at most one join and -1 before Actualize.
func (p *ExplainPlan) IntermediateRows() int64 {
	root := p.Root
	if root == nil {
		return -1
	}
	if root.Kind == "groupby" && len(root.Children) == 1 {
		root = root.Children[0]
	}
	sum := int64(0)
	known := true
	var walk func(n *ExplainNode, isRoot bool)
	walk = func(n *ExplainNode, isRoot bool) {
		if n.Kind != "join" {
			return
		}
		if !isRoot {
			if n.ActRows < 0 {
				known = false
			} else {
				sum += n.ActRows
			}
		}
		for _, c := range n.Children {
			walk(c, false)
		}
	}
	walk(root, true)
	if !known {
		return -1
	}
	return sum
}

// String renders the plan in a stable indented text form (deterministic
// for a given query, statistics, and mode — suitable for golden tests).
func (p *ExplainPlan) String() string {
	var sb strings.Builder
	sb.WriteString("mode=")
	sb.WriteString(p.Mode)
	if p.Reordered {
		sb.WriteString(" reordered")
	}
	if p.Reason != "" {
		sb.WriteString(" kept: ")
		sb.WriteString(p.Reason)
	}
	sb.WriteByte('\n')
	if p.Root != nil {
		sb.WriteString(p.Root.String())
	}
	return sb.String()
}

func optimizerModeName(m OptimizerMode) string {
	switch m {
	case OptimizerHints:
		return "hints"
	case OptimizerFull:
		return "full"
	}
	return "off"
}
