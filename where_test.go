package hierdb

import (
	"context"
	"strings"
	"testing"

	"hierdb/internal/leaktest"
)

// TestWherePredicates covers the columnar scan-predicate surface: typed
// comparisons, null semantics, AND composition, interplay with a row
// Filter, and builder-clone isolation.
func TestWherePredicates(t *testing.T) {
	leaktest.Check(t, 2)
	db := Open(WithWorkers(2))
	defer db.Close()

	tb := &Table{Name: "t", Cols: []string{"k", "s", "f"}}
	for i := 0; i < 1000; i++ {
		var s any = "odd"
		if i%2 == 0 {
			s = "even"
		}
		if i%100 == 0 {
			s = nil // null string every 100 rows
		}
		tb.Rows = append(tb.Rows, Row{i, s, float64(i) / 10})
	}
	if err := db.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}

	collect := func(t *testing.T, q *Query) []Row {
		t.Helper()
		rows, _, err := q.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}

	t.Run("IntRange", func(t *testing.T) {
		got := collect(t, db.Scan("t").Where(Pred{Col: 0, Op: Ge, Val: 100}, Pred{Col: 0, Op: Lt, Val: 200}))
		if len(got) != 100 {
			t.Fatalf("got %d rows, want 100", len(got))
		}
		for _, r := range got {
			if k := r[0].(int); k < 100 || k >= 200 {
				t.Fatalf("row %v escaped the range", r)
			}
		}
	})

	t.Run("StringEqSkipsNulls", func(t *testing.T) {
		// 500 even rows minus the 10 nulled ones (i%100==0 rows are even).
		got := collect(t, db.Scan("t").Where(Pred{Col: 1, Op: Eq, Val: "even"}))
		if len(got) != 490 {
			t.Fatalf("got %d rows, want 490", len(got))
		}
	})

	t.Run("IsNull", func(t *testing.T) {
		got := collect(t, db.Scan("t").Where(Pred{Col: 1, Op: IsNull}))
		if len(got) != 10 {
			t.Fatalf("got %d rows, want 10", len(got))
		}
	})

	t.Run("NotNull", func(t *testing.T) {
		got := collect(t, db.Scan("t").Where(Pred{Col: 1, Op: NotNull}))
		if len(got) != 990 {
			t.Fatalf("got %d rows, want 990", len(got))
		}
	})

	t.Run("FloatCompare", func(t *testing.T) {
		got := collect(t, db.Scan("t").Where(Pred{Col: 2, Op: Gt, Val: 99.8}))
		if len(got) != 1 { // only i=999 has f=99.9
			t.Fatalf("got %d rows, want 1", len(got))
		}
	})

	t.Run("WrongTypeMatchesNothing", func(t *testing.T) {
		got := collect(t, db.Scan("t").Where(Pred{Col: 0, Op: Eq, Val: "7"}))
		if len(got) != 0 {
			t.Fatalf("got %d rows, want 0", len(got))
		}
	})

	t.Run("ComposesWithFilterAndJoin", func(t *testing.T) {
		dim := &Table{Name: "dim", Cols: []string{"k", "name"}}
		for i := 0; i < 1000; i++ {
			dim.Rows = append(dim.Rows, Row{i, i * 2})
		}
		if err := db.RegisterTable(dim); err != nil {
			t.Fatal(err)
		}
		q := db.Scan("t", func(r Row) bool { return r[0].(int)%2 == 1 }).
			Where(Pred{Col: 0, Op: Lt, Val: 100}).
			Join(db.Scan("dim"), KeyCol(0), KeyCol(0))
		got := collect(t, q)
		if len(got) != 50 { // odd rows below 100
			t.Fatalf("got %d rows, want 50", len(got))
		}
	})

	t.Run("CloneIsolation", func(t *testing.T) {
		base := db.Scan("t")
		narrowed := base.Where(Pred{Col: 0, Op: Lt, Val: 10})
		if got := collect(t, narrowed); len(got) != 10 {
			t.Fatalf("narrowed query got %d rows, want 10", len(got))
		}
		if got := collect(t, base); len(got) != 1000 {
			t.Fatalf("base query mutated by Where: %d rows, want 1000", len(got))
		}
	})

	t.Run("WhereWithoutScan", func(t *testing.T) {
		q := db.Scan("t").Join(db.Scan("t"), KeyCol(0), KeyCol(0)).Where(Pred{Col: 0, Op: Eq, Val: 1})
		if _, _, err := q.Collect(context.Background()); err == nil ||
			!strings.Contains(err.Error(), "Where must immediately follow Scan") {
			t.Fatalf("Where after Join reported %v", err)
		}
	})
}
