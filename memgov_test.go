package hierdb

// Facade tests for memory-governed execution (WithMemory/WithSpillDir):
// the acceptance contract that a join whose build side exceeds the
// budget completes with results identical to the unlimited-memory run —
// single- and multi-node, streaming and Collect — plus the mid-spill
// abort guarantees (Rows.Close and ctx-cancel abort promptly, delete
// all spill temp files, and leak no goroutines).

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"hierdb/internal/leaktest"
)

const (
	spillBuildRows = 6_000
	spillProbeRows = 24_000
	spillBudget    = 16 << 10 // far below the ~6000-row build side
)

// spillDB opens a DB with the given options and registers a fact/dim
// pair whose dim (build) side dwarfs spillBudget.
func spillDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db := Open(opts...)
	t.Cleanup(func() { db.Close() })
	dim := &Table{Name: "dim", Cols: []string{"k", "v"}}
	for i := 0; i < spillBuildRows; i++ {
		dim.Rows = append(dim.Rows, Row{i, fmt.Sprintf("d%d", i)})
	}
	fact := &Table{Name: "fact", Cols: []string{"k", "v"}}
	for i := 0; i < spillProbeRows; i++ {
		fact.Rows = append(fact.Rows, Row{i % spillBuildRows, i})
	}
	for _, tb := range []*Table{dim, fact} {
		if err := db.RegisterTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func spillQuery(db *DB) *Query {
	return db.Scan("fact").Join(db.Scan("dim"), KeyCol(0), KeyCol(0))
}

// TestDBWithMemorySpillMatchesUnlimited is the facade acceptance test:
// under WithMemory far below the build side, every configuration —
// single- and multi-node, streamed row by row and Collected — returns
// exactly the unlimited-memory result, and Stats reports the spill.
func TestDBWithMemorySpillMatchesUnlimited(t *testing.T) {
	leaktest.Check(t, 2)
	ref := spillDB(t, WithWorkers(4))
	want, st, err := spillQuery(ref).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.SpillPhases != 0 || st.SpilledBytes != 0 {
		t.Fatalf("unlimited run spilled: %+v", st)
	}
	wantCanon := canonRows(want)

	configs := []struct {
		name string
		opts []Option
	}{
		{"single", []Option{WithWorkers(4), WithMemory(spillBudget)}},
		{"multi", []Option{WithNodes(3), WithWorkers(2), WithMemory(spillBudget)}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			db := spillDB(t, append(cfg.opts, WithSpillDir(t.TempDir()))...)

			// Collect leg.
			got, st, err := spillQuery(db).Collect(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			gotCanon := canonRows(got)
			if len(gotCanon) != len(wantCanon) {
				t.Fatalf("Collect: %d rows, want %d", len(gotCanon), len(wantCanon))
			}
			for i := range gotCanon {
				if gotCanon[i] != wantCanon[i] {
					t.Fatalf("Collect row %d: %s vs %s", i, gotCanon[i], wantCanon[i])
				}
			}
			if st.SpillPhases == 0 || st.SpilledPartitions == 0 || st.SpilledBytes == 0 {
				t.Fatalf("governed run did not spill: %+v", st)
			}

			// Streaming leg: row by row through Rows.Next.
			rows, err := spillQuery(db).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			var streamed []Row
			for rows.Next() {
				streamed = append(streamed, rows.Row())
			}
			if err := rows.Err(); err != nil {
				t.Fatal(err)
			}
			if err := rows.Close(); err != nil {
				t.Fatal(err)
			}
			sc := canonRows(streamed)
			for i := range sc {
				if sc[i] != wantCanon[i] {
					t.Fatalf("streamed row %d: %s vs %s", i, sc[i], wantCanon[i])
				}
			}
			if len(sc) != len(wantCanon) {
				t.Fatalf("streamed %d rows, want %d", len(sc), len(wantCanon))
			}
		})
	}
}

// TestDBWithMemoryGroupBySpill: governed group-by over a spilled join
// through the facade matches the unlimited aggregation.
func TestDBWithMemoryGroupBySpill(t *testing.T) {
	leaktest.Check(t, 2)
	agg := func(db *DB) []Row {
		t.Helper()
		out, _, err := spillQuery(db).
			GroupBy(KeyCol(0), Aggregation{Func: Count}, Aggregation{Func: Sum, Arg: func(r Row) float64 { return float64(r[1].(int)) }}).
			Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := agg(spillDB(t, WithWorkers(4)))
	got := agg(spillDB(t, WithWorkers(4), WithMemory(spillBudget), WithSpillDir(t.TempDir())))
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for i := range got {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestDBSpillAbortCleansUp: Rows.Close and ctx-cancel mid-spill abort
// promptly, delete all spill temp files, and leak no goroutines — on
// both the single-node pool and the hierarchical engine.
func TestDBSpillAbortCleansUp(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts []Option
	}{
		{"single", []Option{WithWorkers(4)}},
		{"multi", []Option{WithNodes(2), WithWorkers(2)}},
	} {
		for _, way := range []string{"close", "cancel"} {
			t.Run(cfg.name+"/"+way, func(t *testing.T) {
				leaktest.Check(t, 2)
				dir := t.TempDir()
				db := spillDB(t, append(cfg.opts, WithMemory(spillBudget), WithSpillDir(dir))...)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				rows, err := spillQuery(db).Run(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !rows.Next() {
					t.Fatalf("no first row: %v", rows.Err())
				}
				start := time.Now()
				switch way {
				case "close":
					if err := rows.Close(); err != nil {
						t.Fatal(err)
					}
				case "cancel":
					cancel()
					for rows.Next() {
					}
					if err := rows.Err(); !errors.Is(err, context.Canceled) {
						t.Fatalf("cancelled query reported %v", err)
					}
					rows.Close()
				}
				if elapsed := time.Since(start); elapsed > 5*time.Second {
					t.Fatalf("mid-spill abort took %v", elapsed)
				}
				// Rows.Close/the drain returned only after the query fully
				// retired, and retirement removes the per-query spill dir.
				ents, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				if len(ents) != 0 {
					t.Fatalf("spill temp files leaked after %s: %d entries", way, len(ents))
				}
				// Pool-idle check: a fresh governed query on the same DB
				// completes and cleans up after itself too.
				out, st, err := spillQuery(db).Collect(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if len(out) != spillProbeRows || st.SpillPhases == 0 {
					t.Fatalf("post-abort query: %d rows, stats %+v", len(out), st)
				}
				if ents, _ := os.ReadDir(dir); len(ents) != 0 {
					t.Fatalf("spill temp files leaked after clean completion")
				}
			})
		}
	}
}

// TestWithMemoryValidation: negative budgets surface as descriptive
// Run-time errors, per the facade's validate-don't-panic contract.
func TestWithMemoryValidation(t *testing.T) {
	db := spillDB(t, WithMemory(-1))
	_, err := spillQuery(db).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "MemoryPerNode") {
		t.Fatalf("WithMemory(-1) Run = %v", err)
	}
}
