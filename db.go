package hierdb

// The resident database handle: a named-table catalog plus one
// long-lived DP worker pool whose workers serve activations from every
// in-flight query. This is the paper's execution model promoted to an
// engine-as-a-service surface — load balances itself across concurrent
// queries at execution time, not just within one.

import (
	"fmt"
	"sync"

	"hierdb/internal/exec"
)

// dbConfig collects Open-time options.
type dbConfig struct {
	workers int
	stripes int
	morsel  int
	batch   int
	maxq    int
	static  bool
}

// Option configures a DB at Open time.
type Option func(*dbConfig)

// WithWorkers sets the resident pool's worker-goroutine count (one per
// processor in the paper's model). 0 means the default (4); negative
// values are rejected, reported by Run/RegisterTable-time validation.
func WithWorkers(n int) Option { return func(c *dbConfig) { c.workers = n } }

// WithStripes sets the per-join hash-table lock-stripe count (the degree
// of fragmentation). 0 means 8x workers.
func WithStripes(n int) Option { return func(c *dbConfig) { c.stripes = n } }

// WithMorsel sets the scan granularity in rows (trigger-activation
// granularity). 0 means 1024.
func WithMorsel(n int) Option { return func(c *dbConfig) { c.morsel = n } }

// WithBatch sets the pipeline granularity in rows (data-activation
// granularity). 0 means 256.
func WithBatch(n int) Option { return func(c *dbConfig) { c.batch = n } }

// WithStatic binds each worker to one operator per pipeline chain (the
// FP baseline) instead of the dynamic any-worker-any-operator model.
func WithStatic(static bool) Option { return func(c *dbConfig) { c.static = static } }

// WithMaxConcurrentQueries bounds the number of in-flight queries on the
// pool; Run blocks (respecting its context) until a slot frees. 0 means
// unlimited.
func WithMaxConcurrentQueries(n int) Option { return func(c *dbConfig) { c.maxq = n } }

// DB is a resident database handle. Open one, register tables, build
// queries with Scan/Join/GroupBy, execute them concurrently with Run —
// all queries share the handle's single DP worker pool, whose fair
// cross-query scheduling keeps one heavy join from starving the others.
// Close releases the workers, aborting any in-flight queries.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	closed bool

	pool *exec.Pool
	opt  EngineOptions
	err  error // deferred Open-time validation error, surfaced by Run
}

// Open creates a resident DB. Invalid options do not panic: the error is
// deferred and returned by the first Run (per the engine's
// validate-don't-panic contract), so Open itself stays fluent.
func Open(opts ...Option) *DB {
	var cfg dbConfig
	for _, o := range opts {
		o(&cfg)
	}
	db := &DB{
		tables: make(map[string]*Table),
		opt: EngineOptions{
			Stripes: cfg.stripes,
			Morsel:  cfg.morsel,
			Batch:   cfg.batch,
			Static:  cfg.static,
		},
	}
	pool, err := exec.NewPool(cfg.workers, cfg.maxq)
	if err != nil {
		db.err = err
		return db
	}
	db.pool = pool
	return db
}

// RegisterTable adds a named in-memory relation to the catalog. The
// table's rows must not be mutated while queries over it are in flight.
func (db *DB) RegisterTable(t *Table) error {
	if t == nil {
		return fmt.Errorf("hierdb: nil table")
	}
	if t.Name == "" {
		return fmt.Errorf("hierdb: table without a name")
	}
	if db.err != nil {
		return db.err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("hierdb: database closed")
	}
	if _, dup := db.tables[t.Name]; dup {
		return fmt.Errorf("hierdb: table %q already registered", t.Name)
	}
	db.tables[t.Name] = t
	return nil
}

// Table returns a registered table by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Workers returns the resident pool's worker count.
func (db *DB) Workers() int {
	if db.pool == nil {
		return 0
	}
	return db.pool.Workers()
}

// Close releases the resident worker pool, aborting in-flight queries
// (their Rows report the abort). Idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	if db.pool != nil {
		db.pool.Close()
	}
	return nil
}
