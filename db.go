package hierdb

// The resident database handle: a named-table catalog plus long-lived
// DP worker pools whose workers serve activations from every in-flight
// query. This is the paper's execution model promoted to an
// engine-as-a-service surface — load balances itself across concurrent
// queries at execution time, not just within one. WithNodes adds the
// paper's second level: several node-local pools over hash-partitioned
// tables, with starving nodes acquiring remote probe queues (global
// activation stealing, §3.2/§4).

import (
	"fmt"
	"sync"

	"hierdb/internal/catalog"
	"hierdb/internal/exec"
	"hierdb/internal/store"
)

// dbConfig collects Open-time options.
type dbConfig struct {
	nodes      int
	workers    int
	stripes    int
	morsel     int
	batch      int
	maxq       int
	admitQueue int
	broker     bool
	static     bool
	noSteal    bool
	memory     int64
	spillDir   string
	optimizer  OptimizerMode
}

// Option configures a DB at Open time.
type Option func(*dbConfig)

// WithNodes sets the number of SM-nodes of the paper's hierarchical
// architecture: each node gets its own worker pool, tables are
// hash-partitioned across nodes at registration, and a query executes
// as per-node plan fragments with key-routed redistribution between
// operators. 0 or 1 (the default) is exactly the previous single-pool
// behavior; negative values are rejected, reported by
// Run/RegisterTable-time validation. See also WithStealing.
func WithNodes(n int) Option { return func(c *dbConfig) { c.nodes = n } }

// WithWorkers sets the worker-goroutine count per node (one per
// processor in the paper's model). 0 means the default (4); negative
// values are rejected, reported by Run/RegisterTable-time validation.
func WithWorkers(n int) Option { return func(c *dbConfig) { c.workers = n } }

// WithStealing enables or disables the global activation-stealing layer
// on a multi-node DB (default enabled): a starving node solicits offers
// from its peers and acquires the best remote probe queue together with
// the hash-table buckets it needs, cached node-locally so repeated
// steals are cheap. No effect with a single node.
func WithStealing(enabled bool) Option { return func(c *dbConfig) { c.noSteal = !enabled } }

// WithStripes sets the per-join hash-table lock-stripe count (the degree
// of fragmentation). 0 means 8x workers.
func WithStripes(n int) Option { return func(c *dbConfig) { c.stripes = n } }

// WithMorsel sets the scan granularity in rows (trigger-activation
// granularity). 0 means 1024.
func WithMorsel(n int) Option { return func(c *dbConfig) { c.morsel = n } }

// WithBatch sets the pipeline granularity in rows (data-activation
// granularity). 0 means 256.
func WithBatch(n int) Option { return func(c *dbConfig) { c.batch = n } }

// WithStatic binds each worker to one operator per pipeline chain (the
// FP baseline) instead of the dynamic any-worker-any-operator model.
func WithStatic(static bool) Option { return func(c *dbConfig) { c.static = static } }

// WithMaxConcurrentQueries bounds the number of in-flight queries on
// the engine. A Run beyond the bound parks in a bounded FIFO admission
// queue (see WithAdmissionQueue) until a slot frees, dequeued
// round-robin across WithTenant labels; it fails promptly with
// ErrClosed if the DB closes while parked, with ErrAdmissionQueueFull
// if the queue itself is at capacity, or with ctx.Err() if the Run
// context fires first. 0 means unlimited.
func WithMaxConcurrentQueries(n int) Option { return func(c *dbConfig) { c.maxq = n } }

// WithAdmissionQueue caps how many Runs may park waiting for an
// admission slot; one more is rejected immediately with
// ErrAdmissionQueueFull (load shedding instead of unbounded queueing).
// 0 (the default) means 8 waiters per slot; negative values are
// rejected, reported by Run-time validation. Only meaningful together
// with WithMaxConcurrentQueries.
func WithAdmissionQueue(n int) Option { return func(c *dbConfig) { c.admitQueue = n } }

// WithMemoryBroker switches WithMemory's governance from a fixed
// per-query split to a shared per-node broker: the WithMemory budget
// becomes one pool per node that all in-flight query fragments lease
// bytes from, so idle memory flows to whichever query can use it, and
// a fragment denied a top-up spills exactly as it would on a private
// budget — results are identical in both modes. Requires WithMemory;
// enabling it without a budget is rejected, reported by Run-time
// validation.
func WithMemoryBroker(enabled bool) Option { return func(c *dbConfig) { c.broker = enabled } }

// WithMemory gives each node a memory budget in bytes for every query's
// hash-join tables and group-by partials. A join whose build side would
// exceed the budget switches to Grace-style partitioned execution:
// build and probe inputs are hash-partitioned to per-query spill files
// and the partitions joined one at a time within the budget (recursing
// on still-oversized partitions), with results identical to the
// unlimited run. 0 (the default) means unlimited and keeps the engine's
// ungoverned hot path; negative values are rejected, reported by
// Run-time validation. Governed queries spill rows to disk, so their
// columns must be of spill-encodable types (nil, bool, int, int32,
// int64, uint64, float64, string); see also WithSpillDir and the
// SpilledPartitions/SpilledBytes/SpillPhases counters on EngineStats.
func WithMemory(bytes int64) Option { return func(c *dbConfig) { c.memory = bytes } }

// WithSpillDir sets the directory WithMemory's spill files are created
// under (one temp subdirectory per query, removed at query retirement).
// Empty (the default) means the system temp directory.
func WithSpillDir(dir string) Option { return func(c *dbConfig) { c.spillDir = dir } }

// OptimizerMode selects how much cost-based planning Run applies; see
// WithOptimizer.
type OptimizerMode = exec.OptimizeMode

const (
	// OptimizerOff (the default) executes the literal builder plan,
	// byte-identical to a DB opened without WithOptimizer.
	OptimizerOff = exec.OptimizeOff
	// OptimizerHints keeps the builder's join order and shape but fills
	// scheduling estimates (hash-table presizing, static allocation) from
	// ANALYZE statistics and Hint calls. Results are identical to
	// OptimizerOff.
	OptimizerHints = exec.OptimizeHints
	// OptimizerFull additionally lets the DP search (the paper's
	// optimizer stage) reorder joins and choose build sides, minimizing
	// estimated intermediate rows. Plans it cannot prove safe to reorder
	// — a Combine that rewrites rows, a computed join key, a NoReorder
	// hint, mixed-type columns — keep their literal order with the hints
	// pass applied; Explain reports why. Results are always identical to
	// OptimizerOff (a reordered plan that would permute output columns
	// gets a restoring projection).
	OptimizerFull = exec.OptimizeFull
)

// WithOptimizer sets the DB's optimizer mode (default OptimizerOff).
// Out-of-range modes are rejected, reported by Run-time validation.
// Statistics come from Analyze (or Register's WithStats option);
// unanalyzed tables plan with default selectivities.
func WithOptimizer(m OptimizerMode) Option { return func(c *dbConfig) { c.optimizer = m } }

// DB is a resident database handle. Open one, register tables, build
// queries with Scan/Join/GroupBy, execute them concurrently with Run —
// all queries share the handle's DP worker pools, whose fair
// cross-query scheduling keeps one heavy join from starving the others.
// With WithNodes(n > 1) the handle is a hierarchical engine: n
// node-local pools over hash-partitioned tables, queries fanned out as
// node-local fragments, and a global stealing layer that rebalances
// probe work between nodes. Close releases the workers, aborting any
// in-flight queries.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	files  []*store.TableFile             // open table files (FromFile sources), closed with the DB
	stats  map[string]*catalog.TableStats // Analyze results by table name
	closed bool

	eng  *exec.Nodes
	opt  EngineOptions
	mode OptimizerMode
	err  error // deferred Open-time validation error, surfaced by Run
}

// Open creates a resident DB. Invalid options do not panic: the error is
// deferred and returned by the first Run (per the engine's
// validate-don't-panic contract), so Open itself stays fluent.
func Open(opts ...Option) *DB {
	var cfg dbConfig
	for _, o := range opts {
		o(&cfg)
	}
	db := &DB{
		tables: make(map[string]*Table),
		mode:   cfg.optimizer,
		opt: EngineOptions{
			Stripes:         cfg.stripes,
			Morsel:          cfg.morsel,
			Batch:           cfg.batch,
			Static:          cfg.static,
			DisableStealing: cfg.noSteal,
			MemoryPerNode:   cfg.memory,
			SpillDir:        cfg.spillDir,
		},
	}
	if cfg.optimizer < OptimizerOff || cfg.optimizer > OptimizerFull {
		db.err = fmt.Errorf("hierdb: invalid optimizer mode %d", cfg.optimizer)
		return db
	}
	if cfg.broker && cfg.memory <= 0 {
		db.err = fmt.Errorf("hierdb: WithMemoryBroker requires a WithMemory budget")
		return db
	}
	ec := exec.EngineConfig{
		Nodes:                cfg.nodes,
		Workers:              cfg.workers,
		MaxConcurrentQueries: cfg.maxq,
		AdmissionQueue:       cfg.admitQueue,
	}
	if cfg.broker {
		ec.BrokerMemory = cfg.memory
	}
	eng, err := exec.NewNodesConfig(ec)
	if err != nil {
		db.err = err
		return db
	}
	db.eng = eng
	return db
}

// TableSource names where Register's table comes from: FromTable for a
// resident in-memory relation, FromFile for a chunked columnar table
// file on disk.
type TableSource struct {
	table *Table
	path  string
}

// FromTable sources Register from a resident in-memory relation.
func FromTable(t *Table) TableSource { return TableSource{table: t} }

// FromFile sources Register from a chunked columnar table file on disk
// (written by cmd/hdbtable or internal/store).
func FromFile(path string) TableSource { return TableSource{path: path} }

// RegisterOption configures one Register call.
type RegisterOption func(*registerConfig)

type registerConfig struct{ analyze bool }

// WithStats runs Analyze right after registration, so the cost-based
// planner has this table's statistics from the first query on.
func WithStats() RegisterOption { return func(c *registerConfig) { c.analyze = true } }

// Register adds a named table to the catalog from either source kind.
// For FromTable sources an empty t.Name is set to name; a non-empty
// t.Name must equal name. RegisterTable and RegisterTableFile are thin
// wrappers over this method.
func (db *DB) Register(name string, src TableSource, opts ...RegisterOption) error {
	var cfg registerConfig
	for _, o := range opts {
		o(&cfg)
	}
	if name == "" {
		return fmt.Errorf("hierdb: table without a name")
	}
	var err error
	switch {
	case src.table != nil:
		t := src.table
		if t.Name == "" {
			t.Name = name
		} else if t.Name != name {
			return fmt.Errorf("hierdb: Register name %q conflicts with table name %q", name, t.Name)
		}
		err = db.registerMemTable(t)
	case src.path != "":
		err = db.registerFileTable(name, src.path)
	default:
		return fmt.Errorf("hierdb: Register with an empty source (use FromTable or FromFile)")
	}
	if err != nil {
		return err
	}
	if cfg.analyze {
		if _, aerr := db.Analyze(name); aerr != nil {
			return aerr
		}
	}
	return nil
}

// RegisterTable adds a named in-memory relation to the catalog:
// Register(t.Name, FromTable(t)). The table's rows must not be mutated
// after registration: a multi-node DB hash-partitions the rows right
// here, and queries read the partitions — later appends would be
// silently invisible to them (on a single-node DB the boundary is the
// first query over the table).
func (db *DB) RegisterTable(t *Table) error {
	if t == nil {
		return fmt.Errorf("hierdb: nil table")
	}
	return db.Register(t.Name, FromTable(t))
}

func (db *DB) registerMemTable(t *Table) error {
	if db.err != nil {
		return db.err
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return fmt.Errorf("hierdb: database closed")
	}
	if _, dup := db.tables[t.Name]; dup {
		db.mu.Unlock()
		return fmt.Errorf("hierdb: table %q already registered", t.Name)
	}
	db.tables[t.Name] = t
	db.mu.Unlock()
	// Hash-partition the table across the nodes now — outside db.mu, so
	// a large registration does not stall concurrent queries — and the
	// first query does not pay the declustering cost (no-op on a single
	// node).
	db.eng.Partition(t)
	return nil
}

// RegisterTableFile opens a chunked columnar table file and registers
// it under name: Register(name, FromFile(path)). Queries over a
// file-backed table stream its row-group chunks from disk lazily — the
// table is never resident as a whole — with Where predicates consulting
// each chunk's zone maps to skip chunks that provably match no row
// before any I/O (see the ChunksScanned / ChunksSkipped / DiskBytesRead
// counters on EngineStats). Under WithMemory, decoded chunks are
// charged against the node budget while in flight, so joins over files
// much larger than the budget spill exactly like their in-memory
// counterparts. On a multi-node DB, chunks are assigned to node
// fragments positionally, mirroring RegisterTable's hash partitioning.
// The file handle stays open until Close.
func (db *DB) RegisterTableFile(name, path string) error {
	return db.Register(name, FromFile(path))
}

func (db *DB) registerFileTable(name, path string) error {
	if db.err != nil {
		return db.err
	}
	f, err := store.Open(path)
	if err != nil {
		return err
	}
	t := &Table{Name: name, Cols: append([]string(nil), f.Cols()...), File: f}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		f.Close()
		return fmt.Errorf("hierdb: database closed")
	}
	if _, dup := db.tables[name]; dup {
		db.mu.Unlock()
		f.Close()
		return fmt.Errorf("hierdb: table %q already registered", name)
	}
	db.tables[name] = t
	db.files = append(db.files, f)
	db.mu.Unlock()
	return nil
}

// Analyze scans a registered table once and stores its statistics in
// the catalog for the cost-based planner: cardinality, average row
// bytes, and per-column distinct and null counts (linear-counting
// estimates). File-backed tables are analyzed chunk at a time from the
// store file, never materialized as a whole. Re-running Analyze after a
// table file changes replaces the stored statistics. The statistics are
// returned; they only influence planning when the DB was opened
// WithOptimizer(OptimizerHints) or WithOptimizer(OptimizerFull).
func (db *DB) Analyze(table string) (*TableStats, error) {
	if db.err != nil {
		return nil, db.err
	}
	db.mu.RLock()
	t, ok := db.tables[table]
	closed := db.closed
	db.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("hierdb: database closed")
	}
	if !ok {
		return nil, fmt.Errorf("hierdb: table %q not registered", table)
	}
	st, err := exec.Analyze(t)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	if db.stats == nil {
		db.stats = make(map[string]*catalog.TableStats)
	}
	db.stats[table] = st
	db.mu.Unlock()
	return st, nil
}

// statsFor adapts the DB's Analyze cache to the planner's StatsFunc.
func (db *DB) statsFor(t *exec.Table) *catalog.TableStats {
	db.mu.RLock()
	st := db.stats[t.Name]
	db.mu.RUnlock()
	return st
}

// Table returns a registered table by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Workers returns the worker count per node.
func (db *DB) Workers() int {
	if db.eng == nil {
		return 0
	}
	return db.eng.Workers()
}

// Nodes returns the number of SM-nodes (1 unless opened WithNodes).
func (db *DB) Nodes() int {
	if db.eng == nil {
		return 0
	}
	return db.eng.NodeCount()
}

// Close releases every node's worker pool, aborting in-flight queries
// (their Rows report the abort). Idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	files := db.files
	db.files = nil
	db.mu.Unlock()
	if db.eng != nil {
		// Engine close first: it blocks until every worker goroutine has
		// exited, so no ReadChunk can race the file closes below.
		db.eng.Close()
	}
	var err error
	for _, f := range files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
