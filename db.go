package hierdb

// The resident database handle: a named-table catalog plus long-lived
// DP worker pools whose workers serve activations from every in-flight
// query. This is the paper's execution model promoted to an
// engine-as-a-service surface — load balances itself across concurrent
// queries at execution time, not just within one. WithNodes adds the
// paper's second level: several node-local pools over hash-partitioned
// tables, with starving nodes acquiring remote probe queues (global
// activation stealing, §3.2/§4).

import (
	"fmt"
	"sync"

	"hierdb/internal/exec"
	"hierdb/internal/store"
)

// dbConfig collects Open-time options.
type dbConfig struct {
	nodes    int
	workers  int
	stripes  int
	morsel   int
	batch    int
	maxq     int
	static   bool
	noSteal  bool
	memory   int64
	spillDir string
}

// Option configures a DB at Open time.
type Option func(*dbConfig)

// WithNodes sets the number of SM-nodes of the paper's hierarchical
// architecture: each node gets its own worker pool, tables are
// hash-partitioned across nodes at registration, and a query executes
// as per-node plan fragments with key-routed redistribution between
// operators. 0 or 1 (the default) is exactly the previous single-pool
// behavior; negative values are rejected, reported by
// Run/RegisterTable-time validation. See also WithStealing.
func WithNodes(n int) Option { return func(c *dbConfig) { c.nodes = n } }

// WithWorkers sets the worker-goroutine count per node (one per
// processor in the paper's model). 0 means the default (4); negative
// values are rejected, reported by Run/RegisterTable-time validation.
func WithWorkers(n int) Option { return func(c *dbConfig) { c.workers = n } }

// WithStealing enables or disables the global activation-stealing layer
// on a multi-node DB (default enabled): a starving node solicits offers
// from its peers and acquires the best remote probe queue together with
// the hash-table buckets it needs, cached node-locally so repeated
// steals are cheap. No effect with a single node.
func WithStealing(enabled bool) Option { return func(c *dbConfig) { c.noSteal = !enabled } }

// WithStripes sets the per-join hash-table lock-stripe count (the degree
// of fragmentation). 0 means 8x workers.
func WithStripes(n int) Option { return func(c *dbConfig) { c.stripes = n } }

// WithMorsel sets the scan granularity in rows (trigger-activation
// granularity). 0 means 1024.
func WithMorsel(n int) Option { return func(c *dbConfig) { c.morsel = n } }

// WithBatch sets the pipeline granularity in rows (data-activation
// granularity). 0 means 256.
func WithBatch(n int) Option { return func(c *dbConfig) { c.batch = n } }

// WithStatic binds each worker to one operator per pipeline chain (the
// FP baseline) instead of the dynamic any-worker-any-operator model.
func WithStatic(static bool) Option { return func(c *dbConfig) { c.static = static } }

// WithMaxConcurrentQueries bounds the number of in-flight queries on the
// pool; Run blocks (respecting its context) until a slot frees. 0 means
// unlimited.
func WithMaxConcurrentQueries(n int) Option { return func(c *dbConfig) { c.maxq = n } }

// WithMemory gives each node a memory budget in bytes for every query's
// hash-join tables and group-by partials. A join whose build side would
// exceed the budget switches to Grace-style partitioned execution:
// build and probe inputs are hash-partitioned to per-query spill files
// and the partitions joined one at a time within the budget (recursing
// on still-oversized partitions), with results identical to the
// unlimited run. 0 (the default) means unlimited and keeps the engine's
// ungoverned hot path; negative values are rejected, reported by
// Run-time validation. Governed queries spill rows to disk, so their
// columns must be of spill-encodable types (nil, bool, int, int32,
// int64, uint64, float64, string); see also WithSpillDir and the
// SpilledPartitions/SpilledBytes/SpillPhases counters on EngineStats.
func WithMemory(bytes int64) Option { return func(c *dbConfig) { c.memory = bytes } }

// WithSpillDir sets the directory WithMemory's spill files are created
// under (one temp subdirectory per query, removed at query retirement).
// Empty (the default) means the system temp directory.
func WithSpillDir(dir string) Option { return func(c *dbConfig) { c.spillDir = dir } }

// DB is a resident database handle. Open one, register tables, build
// queries with Scan/Join/GroupBy, execute them concurrently with Run —
// all queries share the handle's DP worker pools, whose fair
// cross-query scheduling keeps one heavy join from starving the others.
// With WithNodes(n > 1) the handle is a hierarchical engine: n
// node-local pools over hash-partitioned tables, queries fanned out as
// node-local fragments, and a global stealing layer that rebalances
// probe work between nodes. Close releases the workers, aborting any
// in-flight queries.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	files  []*store.TableFile // open table files (RegisterTableFile), closed with the DB
	closed bool

	eng *exec.Nodes
	opt EngineOptions
	err error // deferred Open-time validation error, surfaced by Run
}

// Open creates a resident DB. Invalid options do not panic: the error is
// deferred and returned by the first Run (per the engine's
// validate-don't-panic contract), so Open itself stays fluent.
func Open(opts ...Option) *DB {
	var cfg dbConfig
	for _, o := range opts {
		o(&cfg)
	}
	db := &DB{
		tables: make(map[string]*Table),
		opt: EngineOptions{
			Stripes:         cfg.stripes,
			Morsel:          cfg.morsel,
			Batch:           cfg.batch,
			Static:          cfg.static,
			DisableStealing: cfg.noSteal,
			MemoryPerNode:   cfg.memory,
			SpillDir:        cfg.spillDir,
		},
	}
	eng, err := exec.NewNodes(cfg.nodes, cfg.workers, cfg.maxq)
	if err != nil {
		db.err = err
		return db
	}
	db.eng = eng
	return db
}

// RegisterTable adds a named in-memory relation to the catalog. The
// table's rows must not be mutated after registration: a multi-node DB
// hash-partitions the rows right here, and queries read the partitions
// — later appends would be silently invisible to them (on a single-node
// DB the boundary is the first query over the table).
func (db *DB) RegisterTable(t *Table) error {
	if t == nil {
		return fmt.Errorf("hierdb: nil table")
	}
	if t.Name == "" {
		return fmt.Errorf("hierdb: table without a name")
	}
	if db.err != nil {
		return db.err
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return fmt.Errorf("hierdb: database closed")
	}
	if _, dup := db.tables[t.Name]; dup {
		db.mu.Unlock()
		return fmt.Errorf("hierdb: table %q already registered", t.Name)
	}
	db.tables[t.Name] = t
	db.mu.Unlock()
	// Hash-partition the table across the nodes now — outside db.mu, so
	// a large registration does not stall concurrent queries — and the
	// first query does not pay the declustering cost (no-op on a single
	// node).
	db.eng.Partition(t)
	return nil
}

// RegisterTableFile opens a chunked columnar table file (written by
// cmd/hdbtable or internal/store) and registers it under name. Queries
// over a file-backed table stream its row-group chunks from disk
// lazily — the table is never resident as a whole — with Where
// predicates consulting each chunk's zone maps to skip chunks that
// provably match no row before any I/O (see the ChunksScanned /
// ChunksSkipped / DiskBytesRead counters on EngineStats). Under
// WithMemory, decoded chunks are charged against the node budget while
// in flight, so joins over files much larger than the budget spill
// exactly like their in-memory counterparts. On a multi-node DB,
// chunks are assigned to node fragments positionally, mirroring
// RegisterTable's hash partitioning. The file handle stays open until
// Close.
func (db *DB) RegisterTableFile(name, path string) error {
	if name == "" {
		return fmt.Errorf("hierdb: table without a name")
	}
	if db.err != nil {
		return db.err
	}
	f, err := store.Open(path)
	if err != nil {
		return err
	}
	t := &Table{Name: name, Cols: append([]string(nil), f.Cols()...), File: f}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		f.Close()
		return fmt.Errorf("hierdb: database closed")
	}
	if _, dup := db.tables[name]; dup {
		db.mu.Unlock()
		f.Close()
		return fmt.Errorf("hierdb: table %q already registered", name)
	}
	db.tables[name] = t
	db.files = append(db.files, f)
	db.mu.Unlock()
	return nil
}

// Table returns a registered table by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Workers returns the worker count per node.
func (db *DB) Workers() int {
	if db.eng == nil {
		return 0
	}
	return db.eng.Workers()
}

// Nodes returns the number of SM-nodes (1 unless opened WithNodes).
func (db *DB) Nodes() int {
	if db.eng == nil {
		return 0
	}
	return db.eng.NodeCount()
}

// Close releases every node's worker pool, aborting in-flight queries
// (their Rows report the abort). Idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	files := db.files
	db.files = nil
	db.mu.Unlock()
	if db.eng != nil {
		// Engine close first: it blocks until every worker goroutine has
		// exited, so no ReadChunk can race the file closes below.
		db.eng.Close()
	}
	var err error
	for _, f := range files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
