package hierdb

// Equivalence tests for the deprecated builder wrappers: the variadic
// Scan filter and the Selectivity method must route through exactly the
// same execution (and planning) paths as their replacements, Where and
// Hint, so code still on the old surface keeps the new behavior.

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"hierdb/internal/leaktest"
)

// TestDeprecatedScanFilterMatchesWhere runs the same predicate as a
// deprecated Scan closure and as a Where predicate and requires
// identical row multisets — the closure path and the columnar-kernel
// path converge on the same scan node.
func TestDeprecatedScanFilterMatchesWhere(t *testing.T) {
	leaktest.Check(t, 2)
	db := testDB(t, WithWorkers(2))

	old, _, err := db.Scan("orders", func(r Row) bool { return r[0].(int) < 10 }).
		Join(db.Scan("lines"), KeyCol(0), KeyCol(0)).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	niu, _, err := db.Scan("orders").Where(Pred{Col: 0, Op: Lt, Val: 10}).
		Join(db.Scan("lines"), KeyCol(0), KeyCol(0)).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(old) == 0 {
		t.Fatal("filter matched no rows — the test proves nothing")
	}
	a, b := canonRows(old), canonRows(niu)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("deprecated Scan filter and Where diverge: %d vs %d rows", len(a), len(b))
	}
}

// TestDeprecatedSelectivityMatchesHint plans the same join once through
// the deprecated Selectivity method and once through Hint{Selectivity}
// and requires the identical Explain plan (same estimates, same shape)
// plus identical results — the wrapper is a pure alias.
func TestDeprecatedSelectivityMatchesHint(t *testing.T) {
	leaktest.Check(t, 2)
	db := testDB(t, WithWorkers(2), WithOptimizer(OptimizerHints))

	base := func() *Query {
		return db.Scan("orders").Join(db.Scan("lines"), KeyCol(0), KeyCol(0))
	}
	old := base().Selectivity(0.25)
	niu := base().Hint(Hint{Selectivity: 0.25})

	oldPlan, err := old.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	newPlan, err := niu.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if oldPlan.String() != newPlan.String() {
		t.Fatalf("plans diverge:\n--- Selectivity ---\n%s\n--- Hint ---\n%s", oldPlan, newPlan)
	}
	oldRows, _, err := old.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	newRows, _, err := niu.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonRows(oldRows), canonRows(newRows)
	sort.Strings(a)
	sort.Strings(b)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("results diverge: %d vs %d rows", len(a), len(b))
	}
}
