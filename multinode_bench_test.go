// BenchmarkMultiNodeSkew measures the hierarchical engine under the
// paper's worst case for static placement: every join key owned by one
// node, so redistribution funnels all probe work there while the other
// nodes' pools starve. /steal runs the full two-level protocol (starving
// nodes acquire the hot node's probe queues plus the hash-table buckets
// they need, cached locally); /nosteal pins the backlog on the hot node;
// /1node is the flat single-pool reference. Baselines live in
// BENCH_engine.json; CI's bench-regression gate compares against them.
package hierdb

import (
	"context"
	"fmt"
	"testing"
)

const (
	skewNodes    = 4
	skewWorkers  = 2
	skewStripes  = 32 // per node
	skewDimRows  = 500
	skewFactRows = 120_000
)

func skewBenchTables(b *testing.B) (fact, dim *Table) {
	hot := skewedKeys(b, skewNodes, skewStripes, skewDimRows)
	dim = &Table{Name: "dim", Cols: []string{"k", "v"}}
	for i, k := range hot {
		dim.Rows = append(dim.Rows, Row{k, fmt.Sprintf("d%d", i)})
	}
	fact = &Table{Name: "fact", Cols: []string{"k", "v"}}
	for i := 0; i < skewFactRows; i++ {
		fact.Rows = append(fact.Rows, Row{hot[i%skewDimRows], i})
	}
	return fact, dim
}

func BenchmarkMultiNodeSkew(b *testing.B) {
	fact, dim := skewBenchTables(b)
	run := func(b *testing.B, opts ...Option) {
		db := Open(opts...)
		defer db.Close()
		if err := db.RegisterTable(fact); err != nil {
			b.Fatal(err)
		}
		if err := db.RegisterTable(dim); err != nil {
			b.Fatal(err)
		}
		q := db.Scan("fact").Join(db.Scan("dim"), KeyCol(0), KeyCol(0))
		b.ResetTimer()
		var steals, stolen int64
		for n := 0; n < b.N; n++ {
			rows, err := q.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			cnt := 0
			for rows.Next() {
				cnt++
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
			rows.Close()
			if cnt != skewFactRows {
				b.Fatalf("streamed %d rows, want %d", cnt, skewFactRows)
			}
			st := rows.Stats()
			steals += st.Steals
			stolen += st.StolenActivations
		}
		b.ReportMetric(float64(skewFactRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
		b.ReportMetric(float64(stolen)/float64(b.N), "stolen-acts/op")
	}
	b.Run("steal", func(b *testing.B) {
		run(b, WithNodes(skewNodes), WithWorkers(skewWorkers), WithStripes(skewStripes))
	})
	b.Run("nosteal", func(b *testing.B) {
		run(b, WithNodes(skewNodes), WithWorkers(skewWorkers), WithStripes(skewStripes), WithStealing(false))
	})
	b.Run("1node", func(b *testing.B) {
		run(b, WithWorkers(skewWorkers), WithStripes(skewStripes))
	})
}
