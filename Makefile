# Mirrors .github/workflows/ci.yml so contributors can run the exact CI
# gates locally: `make ci` is the whole pipeline, individual targets run
# one job. staticcheck/govulncheck run when installed and are skipped
# with a hint otherwise (CI always runs them).

GO        ?= go
BENCH_OUT ?= bench.txt
FRESH     ?= bench-fresh.json

# pipefail so `go test ... | tee` fails the target when the tests fail.
SHELL       := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: ci lint test determinism bench benchdiff clean

ci: lint test determinism benchdiff

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; fi

test:
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run 'ZeroAlloc|Amortized|AllocBound' -v ./internal/simtime/ ./internal/core/ ./internal/exec/
	$(GO) test -run '^$$' -fuzz FuzzJoinEquivalence -fuzztime 30s ./internal/difftest/
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

determinism:
	@set -e; for p in 1 2 8; do for g in 1 4; do \
		echo "== -parallel $$p GOMAXPROCS=$$g"; \
		GOMAXPROCS=$$g $(GO) test -count=1 -run TestFigureDeterminismAcrossParallelism -parallel $$p ./internal/experiments/; \
	done; done

bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkKernel' -benchmem ./internal/simtime/; \
	  $(GO) test -run '^$$' -bench 'Churn|MultiNode' -benchmem ./internal/core/; \
	  $(GO) test -run '^$$' -bench 'BenchmarkFig6$$|BenchmarkEngineJoinDP$$|ConcurrentQueries|StreamingSink|MultiNodeSkew|SpillJoin' -benchtime 10x -benchmem .; \
	} | tee $(BENCH_OUT)

benchdiff: bench
	$(GO) run ./cmd/benchdiff -baseline BENCH_kernel.json -baseline BENCH_engine.json -in $(BENCH_OUT) -out $(FRESH)

clean:
	rm -f $(BENCH_OUT) $(FRESH) *.test *.prof *.pprof
