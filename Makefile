# Mirrors .github/workflows/ci.yml so contributors can run the exact CI
# gates locally: `make ci` is the whole pipeline, individual targets run
# one job. staticcheck/govulncheck run when installed and are skipped
# with a hint otherwise (CI always runs them).

GO        ?= go
BENCH_OUT ?= bench.txt
FRESH     ?= bench-fresh.json

# pipefail so `go test ... | tee` fails the target when the tests fail.
SHELL       := /bin/bash
.SHELLFLAGS := -o pipefail -c

# External analyzer versions, pinned to match ci.yml exactly.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: ci lint vet-hdb tools test determinism bench benchdiff clean

ci: lint test determinism benchdiff

lint: vet-hdb
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed, skipping (make tools)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed, skipping (make tools)"; fi

# The module's own analyzers (lockorder, hotpath, rowslifecycle,
# ctxflow), built from the tree and run through go vet's -vettool
# protocol. Needs no network: the tool lives in ./cmd/hdbvet.
vet-hdb:
	$(GO) build -o bin/hdbvet ./cmd/hdbvet
	$(GO) vet -vettool=$(CURDIR)/bin/hdbvet ./...

# Install the lint tools: hdbvet from the tree, the external ones at
# the exact versions CI uses.
tools:
	$(GO) install ./cmd/hdbvet
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

test:
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run 'ZeroAlloc|Amortized|AllocBound' -v ./internal/simtime/ ./internal/core/ ./internal/exec/
	$(GO) test -run '^$$' -fuzz FuzzJoinEquivalence -fuzztime 30s ./internal/difftest/
	$(GO) test -run '^$$' -fuzz FuzzTableFileRoundTrip -fuzztime 30s ./internal/difftest/
	$(GO) build -o bin/hdbtable ./cmd/hdbtable
	@rm -f /tmp/hdb-smoke.hdb; \
	./bin/hdbtable write -o /tmp/hdb-smoke.hdb -chunk 64 -synth -seed 7 -nrel 3 -rel 0 && \
	./bin/hdbtable inspect -zones /tmp/hdb-smoke.hdb >/dev/null && \
	out=$$(./bin/hdbtable scan -col 0 -op lt -val 5 /tmp/hdb-smoke.hdb); echo "$$out"; \
	case "$$out" in *"skipped=0"*) echo "zone-map pruning skipped no chunks"; exit 1;; esac; \
	rm -f /tmp/hdb-smoke.hdb
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) build -o bin/hdbload ./cmd/hdbload
	./bin/hdbload -rate 200 -duration 1s -maxq 2 -queue 4 -memory 65536 -broker -tenants 2 -seed 7

determinism:
	@set -e; for p in 1 2 8; do for g in 1 4; do \
		echo "== -parallel $$p GOMAXPROCS=$$g"; \
		GOMAXPROCS=$$g $(GO) test -count=1 -run TestFigureDeterminismAcrossParallelism -parallel $$p ./internal/experiments/; \
	done; done

bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkKernel' -benchmem ./internal/simtime/; \
	  $(GO) test -run '^$$' -bench 'Churn|MultiNode' -benchmem ./internal/core/; \
	  $(GO) test -run '^$$' -bench 'BenchmarkFig6$$|BenchmarkEngineJoinDP$$|ConcurrentQueries|StreamingSink|MultiNodeSkew|SpillJoin|DiskScan|DiskJoinSpill|OptimizeOverhead' -benchtime 10x -benchmem .; \
	  $(GO) test -run '^$$' -bench 'BenchmarkAdmission|BenchmarkBrokerLease' -benchmem ./internal/exec/; \
	} | tee $(BENCH_OUT)

benchdiff: bench
	$(GO) run ./cmd/benchdiff -baseline BENCH_kernel.json -baseline BENCH_engine.json -in $(BENCH_OUT) -out $(FRESH)

clean:
	rm -f $(BENCH_OUT) $(FRESH) *.test *.prof *.pprof
	rm -rf bin
