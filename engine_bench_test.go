// Benchmarks for the real-data engine's resident-DB surface: concurrent
// multi-query execution on one shared DP pool vs sequential one-shot
// Execute calls, and the streaming-sink path. Baselines are recorded in
// BENCH_engine.json; CI runs these once as a smoke test.
package hierdb

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

const (
	benchQueries   = 8
	benchFactRows  = 60_000
	benchDimRows   = 1_000
	benchBenchWrks = 8
)

func benchTables() (fact, dim *Table) {
	fact = &Table{Name: "fact", Cols: []string{"k", "v"}}
	for i := 0; i < benchFactRows; i++ {
		fact.Rows = append(fact.Rows, Row{i % benchDimRows, i})
	}
	dim = &Table{Name: "dim", Cols: []string{"k", "v"}}
	for i := 0; i < benchDimRows; i++ {
		dim.Rows = append(dim.Rows, Row{i, fmt.Sprintf("d%d", i)})
	}
	return fact, dim
}

// benchFilter gives each of the 8 queries a distinct slice of the fact
// table, so the concurrent queries are genuinely different.
func benchFilter(i int) func(Row) bool {
	return func(r Row) bool { return r[1].(int)%benchQueries == i }
}

// BenchmarkConcurrentQueries/shared runs 8 distinct queries concurrently
// on one resident pool; /sequential runs the same 8 queries one at a
// time, each on a throwaway one-shot pool (the old Execute surface). The
// shared pool must be at least as fast: its workers drain all 8 queries'
// activation queues at once.
func BenchmarkConcurrentQueries(b *testing.B) {
	fact, dim := benchTables()

	b.Run("shared", func(b *testing.B) {
		db := Open(WithWorkers(benchBenchWrks))
		defer db.Close()
		if err := db.RegisterTable(fact); err != nil {
			b.Fatal(err)
		}
		if err := db.RegisterTable(dim); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			var wg sync.WaitGroup
			for i := 0; i < benchQueries; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					rows, _, err := db.Scan("fact", benchFilter(i)).
						Join(db.Scan("dim"), KeyCol(0), KeyCol(0)).
						Collect(context.Background())
					if err != nil {
						b.Error(err)
					}
					if len(rows) != benchFactRows/benchQueries {
						b.Errorf("query %d: %d rows", i, len(rows))
					}
				}(i)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(benchQueries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})

	b.Run("sequential", func(b *testing.B) {
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			for i := 0; i < benchQueries; i++ {
				plan := &JoinNode{
					Build:    &ScanNode{Table: dim},
					Probe:    &ScanNode{Table: fact, Filter: benchFilter(i)},
					BuildKey: KeyCol(0),
					ProbeKey: KeyCol(0),
				}
				rows, _, err := Execute(context.Background(), plan, EngineOptions{Workers: benchBenchWrks})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != benchFactRows/benchQueries {
					b.Fatalf("query %d: %d rows", i, len(rows))
				}
			}
		}
		b.ReportMetric(float64(benchQueries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkStreamingSink measures the streaming iteration path end to
// end on a resident DB: a probe-heavy join consumed row by row through
// Rows, never materialized.
func BenchmarkStreamingSink(b *testing.B) {
	fact, dim := benchTables()
	db := Open(WithWorkers(4))
	defer db.Close()
	if err := db.RegisterTable(fact); err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterTable(dim); err != nil {
		b.Fatal(err)
	}
	q := db.Scan("fact").Join(db.Scan("dim"), KeyCol(0), KeyCol(0))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		rows, err := q.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		cnt := 0
		for rows.Next() {
			cnt++
		}
		if err := rows.Err(); err != nil {
			b.Fatal(err)
		}
		rows.Close()
		if cnt != benchFactRows {
			b.Fatalf("streamed %d rows", cnt)
		}
	}
	b.ReportMetric(float64(benchFactRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
