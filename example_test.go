package hierdb_test

import (
	"context"
	"fmt"
	"log"

	"hierdb"
)

// ExampleExecute joins two tables on the DP-scheduled engine.
func ExampleExecute() {
	users := &hierdb.Table{
		Name: "users",
		Cols: []string{"id", "name"},
		Rows: []hierdb.Row{{1, "ada"}, {2, "grace"}},
	}
	logins := &hierdb.Table{
		Name: "logins",
		Cols: []string{"user_id", "day"},
		Rows: []hierdb.Row{{1, "mon"}, {2, "tue"}, {1, "wed"}},
	}
	plan := &hierdb.JoinNode{
		Build:    &hierdb.ScanNode{Table: users},
		Probe:    &hierdb.ScanNode{Table: logins},
		BuildKey: hierdb.KeyCol(0),
		ProbeKey: hierdb.KeyCol(0),
	}
	rows, _, err := hierdb.Execute(context.Background(), plan, hierdb.EngineOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(rows), "joined rows")
	// Output: 3 joined rows
}

// ExampleExecuteGroupBy aggregates a join result in parallel.
func ExampleExecuteGroupBy() {
	items := &hierdb.Table{
		Name: "items",
		Cols: []string{"sku", "price"},
		Rows: []hierdb.Row{{1, 10.0}, {2, 20.0}},
	}
	sales := &hierdb.Table{
		Name: "sales",
		Cols: []string{"sku"},
		Rows: []hierdb.Row{{1}, {1}, {2}},
	}
	plan := &hierdb.JoinNode{
		Build:    &hierdb.ScanNode{Table: items},
		Probe:    &hierdb.ScanNode{Table: sales},
		BuildKey: hierdb.KeyCol(0),
		ProbeKey: hierdb.KeyCol(0),
	}
	gb := &hierdb.GroupBy{
		Key: hierdb.KeyCol(0), // sku
		Aggs: []hierdb.Aggregation{
			{Func: hierdb.Count},
			{Func: hierdb.Sum, Arg: func(r hierdb.Row) float64 { return r[2].(float64) }},
		},
	}
	rows, _, err := hierdb.ExecuteGroupBy(context.Background(), plan, gb, hierdb.EngineOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("sku=%v count=%v revenue=%v\n", r[0], r[1], r[2])
	}
	// Output:
	// sku=1 count=2 revenue=20
	// sku=2 count=1 revenue=20
}

// ExampleExecuteDP simulates one generated plan on the paper's machine.
func ExampleExecuteDP() {
	s := hierdb.BenchScale()
	s.Queries = 1
	w := hierdb.GenerateWorkload(s, 1)
	r, err := hierdb.ExecuteDP(w.Plans[0], hierdb.DefaultConfig(1, 8), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Strategy, "produced", r.ResultTuples > 0)
	// Output: DP produced true
}
