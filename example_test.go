package hierdb_test

import (
	"context"
	"fmt"
	"log"

	"hierdb"
)

// ExampleOpen runs a streaming join on a resident DB: register tables
// once, build queries fluently, iterate results through Rows. All
// queries submitted to the handle share its single DP worker pool.
func ExampleOpen() {
	db := hierdb.Open(hierdb.WithWorkers(2))
	defer db.Close()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(db.RegisterTable(&hierdb.Table{
		Name: "users",
		Cols: []string{"id", "name"},
		Rows: []hierdb.Row{{1, "ada"}, {2, "grace"}},
	}))
	must(db.RegisterTable(&hierdb.Table{
		Name: "logins",
		Cols: []string{"user_id", "day"},
		Rows: []hierdb.Row{{1, "mon"}, {2, "tue"}, {1, "wed"}},
	}))

	rows, err := db.Scan("logins").
		Join(db.Scan("users"), hierdb.KeyCol(0), hierdb.KeyCol(0)).
		Run(context.Background())
	must(err)
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	must(rows.Err())
	fmt.Println(n, "joined rows")
	// Output: 3 joined rows
}

// ExampleQuery_GroupBy aggregates a join result with the builder: the
// group-by folds in parallel on the pool's workers as batches stream.
func ExampleQuery_GroupBy() {
	db := hierdb.Open(hierdb.WithWorkers(2))
	defer db.Close()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(db.RegisterTable(&hierdb.Table{
		Name: "items",
		Cols: []string{"sku", "price"},
		Rows: []hierdb.Row{{1, 10.0}, {2, 20.0}},
	}))
	must(db.RegisterTable(&hierdb.Table{
		Name: "sales",
		Cols: []string{"sku"},
		Rows: []hierdb.Row{{1}, {1}, {2}},
	}))

	report, _, err := db.Scan("sales").
		Join(db.Scan("items"), hierdb.KeyCol(0), hierdb.KeyCol(0)).
		GroupBy(hierdb.KeyCol(0), // sku
			hierdb.Aggregation{Func: hierdb.Count},
			hierdb.Aggregation{Func: hierdb.Sum, Arg: func(r hierdb.Row) float64 { return r[2].(float64) }},
		).
		Collect(context.Background())
	must(err)
	for _, r := range report {
		fmt.Printf("sku=%v count=%v revenue=%v\n", r[0], r[1], r[2])
	}
	// Output:
	// sku=1 count=2 revenue=20
	// sku=2 count=1 revenue=20
}

// ExampleExecute is the legacy one-shot surface: a hand-built plan run
// on a throwaway single-query pool. New code should Open a DB instead.
func ExampleExecute() {
	users := &hierdb.Table{
		Name: "users",
		Cols: []string{"id", "name"},
		Rows: []hierdb.Row{{1, "ada"}, {2, "grace"}},
	}
	logins := &hierdb.Table{
		Name: "logins",
		Cols: []string{"user_id", "day"},
		Rows: []hierdb.Row{{1, "mon"}, {2, "tue"}, {1, "wed"}},
	}
	plan := &hierdb.JoinNode{
		Build:    &hierdb.ScanNode{Table: users},
		Probe:    &hierdb.ScanNode{Table: logins},
		BuildKey: hierdb.KeyCol(0),
		ProbeKey: hierdb.KeyCol(0),
	}
	rows, _, err := hierdb.Execute(context.Background(), plan, hierdb.EngineOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(rows), "joined rows")
	// Output: 3 joined rows
}

// ExampleExecuteDP simulates one generated plan on the paper's machine.
func ExampleExecuteDP() {
	s := hierdb.BenchScale()
	s.Queries = 1
	w := hierdb.GenerateWorkload(s, 1)
	r, err := hierdb.ExecuteDP(w.Plans[0], hierdb.DefaultConfig(1, 8), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Strategy, "produced", r.ResultTuples > 0)
	// Output: DP produced true
}
