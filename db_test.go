package hierdb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"hierdb/internal/exec"
	"hierdb/internal/leaktest"
)

func testDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db := Open(opts...)
	t.Cleanup(func() { db.Close() })
	reg := func(name string, n int, key func(i int) any, payload func(i int) any) {
		tb := &Table{Name: name, Cols: []string{"k", "v"}}
		for i := 0; i < n; i++ {
			tb.Rows = append(tb.Rows, Row{key(i), payload(i)})
		}
		if err := db.RegisterTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	reg("orders", 900, func(i int) any { return i % 30 }, func(i int) any { return i })
	reg("lines", 30, func(i int) any { return i }, func(i int) any { return fmt.Sprintf("l%d", i) })
	reg("regions", 30, func(i int) any { return i }, func(i int) any { return fmt.Sprintf("r%d", i%5) })
	return db
}

func canonRows(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint([]any(r))
	}
	sort.Strings(out)
	return out
}

func TestDBQueryBuilder(t *testing.T) {
	leaktest.Check(t, 2)
	db := testDB(t, WithWorkers(4))

	// Streaming join through Rows.
	q := db.Scan("orders").Join(db.Scan("lines"), KeyCol(0), KeyCol(0))
	rows, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		if len(rows.Row()) != 4 {
			t.Fatalf("row width %d", len(rows.Row()))
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 900 {
		t.Fatalf("streamed %d rows, want 900", n)
	}
	st := rows.Stats()
	if st.ResultRows != 900 || st.Activations == 0 {
		t.Fatalf("stats %+v", st)
	}

	// The same logical query through the legacy one-shot surface.
	lines, _ := db.Table("lines")
	ordersTab, _ := db.Table("orders")
	legacy, _, err := Execute(context.Background(), &JoinNode{
		Build:    &ScanNode{Table: lines},
		Probe:    &ScanNode{Table: ordersTab},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	}, EngineOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := q.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g, w := canonRows(got), canonRows(legacy)
	if len(g) != len(w) {
		t.Fatalf("builder %d rows vs legacy %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d: %s vs %s", i, g[i], w[i])
		}
	}
}

func TestDBFilterCombineGroupBy(t *testing.T) {
	leaktest.Check(t, 2)
	db := testDB(t)
	report, _, err := db.Scan("orders").Where(Pred{Col: 0, Op: Lt, Val: 10}).
		Join(db.Scan("regions"), KeyCol(0), KeyCol(0)).
		Combine(func(order, region Row) Row { return Row{region[1], order[1]} }).
		GroupBy(KeyCol(0), Aggregation{Func: Count}, Aggregation{Func: Sum, Arg: func(r Row) float64 { return float64(r[1].(int)) }}).
		Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Keys 0..9 map onto regions r0..r4, two keys each, 30 orders per
	// pair of keys.
	if len(report) != 5 {
		t.Fatalf("%d groups, want 5", len(report))
	}
	var total int64
	for _, r := range report {
		total += r[1].(int64)
	}
	if total != 300 {
		t.Fatalf("group counts sum to %d, want 300", total)
	}
}

// TestDBConcurrentQueries runs distinct queries from many goroutines on
// one handle and checks results and stats stay isolated (the facade leg
// of the engine's -race concurrency check).
func TestDBConcurrentQueries(t *testing.T) {
	leaktest.Check(t, 2)
	db := testDB(t, WithWorkers(4))
	const n = 8
	want := make([][]string, n)
	queries := make([]*Query, n)
	for i := 0; i < n; i++ {
		lo := i
		queries[i] = db.Scan("orders").Where(Pred{Col: 0, Op: Ge, Val: lo}).
			Join(db.Scan("lines"), KeyCol(0), KeyCol(0))
		ref, _, err := queries[i].Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want[i] = canonRows(ref)
	}
	var wg sync.WaitGroup
	got := make([][]string, n)
	stats := make([]*EngineStats, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, st, err := queries[i].Collect(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			got[i], stats[i] = canonRows(rows), st
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 0; i < n; i++ {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("query %d: %d rows concurrent vs %d alone", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("query %d row %d differs", i, j)
			}
		}
		if stats[i].ResultRows != int64(len(got[i])) {
			t.Fatalf("query %d stats not isolated: %d vs %d rows", i, stats[i].ResultRows, len(got[i]))
		}
	}
}

// TestCombineClonesJoin: Combine/Selectivity must not mutate the shared
// join node — two refinements of one base query stay independent, and
// the base keeps the default combiner.
func TestCombineClonesJoin(t *testing.T) {
	leaktest.Check(t, 2)
	db := testDB(t)
	base := db.Scan("orders").Join(db.Scan("lines"), KeyCol(0), KeyCol(0))
	narrow := base.Combine(func(p, b Row) Row { return Row{p[0]} })
	wide := base.Combine(func(p, b Row) Row { return Row{p[0], p[1], b[1]} })
	for q, width := range map[*Query]int{base: 4, narrow: 1, wide: 3} {
		rows, _, err := q.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 900 || len(rows[0]) != width {
			t.Fatalf("got %d rows of width %d, want 900 of %d", len(rows), len(rows[0]), width)
		}
	}
}

func TestDBValidationErrors(t *testing.T) {
	db := testDB(t)
	ctx := context.Background()
	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"unregistered table", func() error {
			_, err := db.Scan("nosuch").Run(ctx)
			return err
		}, `table "nosuch" not registered`},
		{"unregistered build side", func() error {
			_, err := db.Scan("orders").Join(db.Scan("nosuch"), KeyCol(0), KeyCol(0)).Run(ctx)
			return err
		}, `table "nosuch" not registered`},
		{"nil probe key", func() error {
			_, err := db.Scan("orders").Join(db.Scan("lines"), nil, KeyCol(0)).Run(ctx)
			return err
		}, "nil probe KeyFunc"},
		{"nil build key", func() error {
			_, err := db.Scan("orders").Join(db.Scan("lines"), KeyCol(0), nil).Run(ctx)
			return err
		}, "nil build KeyFunc"},
		{"group-by not last", func() error {
			gq := db.Scan("orders").GroupBy(KeyCol(0), Aggregation{Func: Count})
			_, err := gq.Join(db.Scan("lines"), KeyCol(0), KeyCol(0)).Run(ctx)
			return err
		}, "GroupBy must be the final step"},
		{"nil group-by key", func() error {
			_, err := db.Scan("orders").GroupBy(nil).Run(ctx)
			return err
		}, "nil KeyFunc"},
		{"sum without Arg", func() error {
			_, err := db.Scan("orders").GroupBy(KeyCol(0), Aggregation{Func: Sum}).Run(ctx)
			return err
		}, "without Arg"},
		{"combine before join", func() error {
			_, err := db.Scan("orders").Combine(func(p, b Row) Row { return p }).Run(ctx)
			return err
		}, "Combine without a preceding Join"},
		{"cross-DB join", func() error {
			other := Open()
			defer other.Close()
			if err := other.RegisterTable(&Table{Name: "t", Cols: []string{"k"}, Rows: []Row{{1}}}); err != nil {
				return err
			}
			_, err := db.Scan("orders").Join(other.Scan("t"), KeyCol(0), KeyCol(0)).Run(ctx)
			return err
		}, "different DB handles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestOpenOptionErrorsDeferred(t *testing.T) {
	db := Open(WithWorkers(-3))
	defer db.Close()
	if err := db.RegisterTable(&Table{Name: "t", Cols: []string{"k"}, Rows: []Row{{1}}}); err == nil ||
		!strings.Contains(err.Error(), "negative Workers") {
		t.Fatalf("RegisterTable on invalid DB = %v", err)
	}
	if _, err := db.Scan("t").Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "negative Workers") {
		t.Fatalf("Run on invalid DB = %v", err)
	}
	bad := Open(WithNodes(-2))
	defer bad.Close()
	if _, err := bad.Scan("t").Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "negative Nodes") {
		t.Fatalf("Run on negative-nodes DB = %v", err)
	}
}

func TestRegisterTableErrors(t *testing.T) {
	db := Open()
	defer db.Close()
	if err := db.RegisterTable(nil); err == nil {
		t.Fatal("nil table accepted")
	}
	if err := db.RegisterTable(&Table{}); err == nil {
		t.Fatal("unnamed table accepted")
	}
	tab := &Table{Name: "t", Cols: []string{"k"}}
	if err := db.RegisterTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable(tab); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestRowsCloseEarlyReleasesPool(t *testing.T) {
	leaktest.Check(t, 2)
	db := Open(WithWorkers(2))
	defer db.Close()
	big := &Table{Name: "big", Cols: []string{"k"}}
	for i := 0; i < 300_000; i++ {
		big.Rows = append(big.Rows, Row{i})
	}
	if err := db.RegisterTable(big); err != nil {
		t.Fatal(err)
	}
	q := db.Scan("big").Join(db.Scan("big"), KeyCol(0), KeyCol(0))
	rows, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("Next after Close")
	}
	// The abandoned query must not wedge the resident pool.
	n := 0
	small, err := db.Scan("big").Where(Pred{Col: 0, Op: Lt, Val: 100}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for small.Next() {
		n++
	}
	if err := small.Err(); err != nil || n != 100 {
		t.Fatalf("post-Close query: %d rows, err %v", n, err)
	}
}

func TestDBClosedErrors(t *testing.T) {
	db := testDB(t)
	q := db.Scan("orders")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Run on closed DB = %v", err)
	}
	if err := db.RegisterTable(&Table{Name: "x", Cols: []string{"k"}}); err == nil {
		t.Fatal("RegisterTable on closed DB accepted")
	}
	if err := db.Close(); err != nil {
		t.Fatal("Close not idempotent")
	}
}

func TestMaxConcurrentQueriesOption(t *testing.T) {
	leaktest.Check(t, 2)
	db := Open(WithWorkers(2), WithMaxConcurrentQueries(1))
	defer db.Close()
	tab := &Table{Name: "t", Cols: []string{"k"}}
	for i := 0; i < 50_000; i++ {
		tab.Rows = append(tab.Rows, Row{i})
	}
	if err := db.RegisterTable(tab); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Scan("t").Join(db.Scan("t"), KeyCol(0), KeyCol(0)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The single admission slot is held: a second Run must respect ctx.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Scan("t").Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("admission-blocked Run = %v", err)
	}
	if _, err := rows.Collect(); err != nil {
		t.Fatal(err)
	}
	// Slot free again.
	if _, _, err := db.Scan("t").Where(Pred{Col: 0, Op: Lt, Val: 5}).Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDBMultiNodeSkewedMatchesSingleNode is the facade acceptance test
// for the hierarchical engine: a skewed workload on WithNodes(4) must
// produce exactly the single-node result, with steal counters > 0 in
// Stats; with WithStealing(false) the same workload reports zero steals
// and still the same rows.
func TestDBMultiNodeSkewedMatchesSingleNode(t *testing.T) {
	leaktest.Check(t, 2)
	const (
		nodes    = 4
		stripes  = 32 // per node; global buckets = nodes*stripes
		dimRows  = 400
		factRows = 60_000
	)
	// All join keys owned by node 0: scans stay balanced (partitioning
	// is positional) but every probe batch routes to node 0, starving
	// the other three nodes.
	hot := skewedKeys(t, nodes, stripes, dimRows)
	dim := &Table{Name: "dim", Cols: []string{"k", "v"}}
	for i, k := range hot {
		dim.Rows = append(dim.Rows, Row{k, fmt.Sprintf("d%d", i)})
	}
	fact := &Table{Name: "fact", Cols: []string{"k", "v"}}
	for i := 0; i < factRows; i++ {
		fact.Rows = append(fact.Rows, Row{hot[i%dimRows], i})
	}

	run := func(db *DB) ([]string, *EngineStats) {
		t.Helper()
		if err := db.RegisterTable(fact); err != nil {
			t.Fatal(err)
		}
		if err := db.RegisterTable(dim); err != nil {
			t.Fatal(err)
		}
		rows, st, err := db.Scan("fact").Join(db.Scan("dim"), KeyCol(0), KeyCol(0)).
			Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return canonRows(rows), st
	}

	single := Open(WithWorkers(2), WithStripes(stripes))
	defer single.Close()
	want, _ := run(single)
	if len(want) != factRows {
		t.Fatalf("single-node reference has %d rows, want %d", len(want), factRows)
	}

	var st *EngineStats
	var got []string
	for attempt := 0; attempt < 5; attempt++ {
		multi := Open(WithNodes(nodes), WithWorkers(2), WithStripes(stripes))
		got, st = run(multi)
		multi.Close()
		if st.Steals > 0 {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("WithNodes(%d): %d rows vs single-node %d", nodes, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: %s vs %s", i, got[i], want[i])
		}
	}
	if st.Steals == 0 || st.StolenActivations == 0 {
		t.Fatalf("skewed 4-node workload fired no steals: %+v", st)
	}
	if len(st.Nodes) != nodes {
		t.Fatalf("Stats.Nodes has %d entries, want %d", len(st.Nodes), nodes)
	}

	noSteal := Open(WithNodes(nodes), WithWorkers(2), WithStripes(stripes), WithStealing(false))
	defer noSteal.Close()
	got, st = run(noSteal)
	if len(got) != len(want) {
		t.Fatalf("WithStealing(false): %d rows vs %d", len(got), len(want))
	}
	if st.Steals != 0 || st.StealRounds != 0 {
		t.Fatalf("WithStealing(false) still stole: %+v", st)
	}
}

// skewedKeys picks count int keys the multi-node engine's routing
// assigns to node 0 (via the engine's published owner rule).
func skewedKeys(t testing.TB, nodes, stripes, count int) []int {
	t.Helper()
	keys := make([]int, 0, count)
	for k := 0; len(keys) < count; k++ {
		if exec.OwnerNode(k, nodes, stripes) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestStaticModeOnDB(t *testing.T) {
	leaktest.Check(t, 2)
	dyn := testDB(t, WithWorkers(4))
	st := testDB(t, WithWorkers(4), WithStatic(true))
	q := func(db *DB) []string {
		rows, _, err := db.Scan("orders").Join(db.Scan("lines"), KeyCol(0), KeyCol(0)).Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return canonRows(rows)
	}
	a, b := q(dyn), q(st)
	if len(a) != len(b) {
		t.Fatalf("dynamic %d rows vs static %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between scheduling modes", i)
		}
	}
}
