package hierdb

import (
	"context"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end the way a library
// user would.

func TestPublicSimulationAPI(t *testing.T) {
	s := BenchScale()
	s.Queries = 1
	w := GenerateWorkload(s, 1)
	if len(w.Plans) != 1 {
		t.Fatalf("%d plans", len(w.Plans))
	}
	cfg := DefaultConfig(1, 4)
	sp, err := ExecuteSP(w.Plans[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := ExecuteDP(w.Plans[0], cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ExecuteFP(w.Plans[0], cfg, 0.1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Run{sp, dp, fp} {
		if r.ResponseTime <= 0 || r.ResultTuples <= 0 {
			t.Fatalf("bad run %+v", r)
		}
	}
	if dp.Relative(sp) < 0.9 {
		t.Fatalf("DP dramatically beat SP (%v vs %v): simulation shape broken", dp.ResponseTime, sp.ResponseTime)
	}
}

func TestPublicHierarchicalAPI(t *testing.T) {
	chain := ChainPlan(5, 2, 10)
	cfg := DefaultConfig(2, 2)
	r, err := ExecuteDP(chain, cfg, func(o *SimOptions) { o.RedistributionSkew = 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	if r.PipelineBytes == 0 {
		t.Fatal("no pipeline traffic on a 2-node run")
	}
}

func TestPublicEngineAPI(t *testing.T) {
	left := &Table{Name: "l", Cols: []string{"k"}, Rows: []Row{{1}, {2}, {3}}}
	right := &Table{Name: "r", Cols: []string{"k"}, Rows: []Row{{2}, {3}, {4}}}
	plan := &JoinNode{
		Build:    &ScanNode{Table: left},
		Probe:    &ScanNode{Table: right},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	}
	rows, stats, err := Execute(context.Background(), plan, EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if stats.ResultRows != 2 {
		t.Fatalf("stats.ResultRows = %d", stats.ResultRows)
	}
}

func TestParamTablesPublic(t *testing.T) {
	out := ParamTables()
	if !strings.Contains(out, "network parameters") || !strings.Contains(out, "disk parameters") {
		t.Fatalf("param tables missing sections:\n%s", out)
	}
}

func TestFigureDriversSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure drivers covered by benchmarks")
	}
	s := BenchScale()
	s.Queries = 1
	s.Fig6Procs = []int{4}
	fig := Fig6(s, nil)
	if fig.ID != "fig6" || len(fig.Series) != 3 {
		t.Fatalf("bad fig6: %+v", fig)
	}
}
