// Warehouse: the decision-support workload the paper's introduction
// motivates — a multi-join star query over a resident DB, executed on
// the real-data engine with the DP scheduler. It shows the three things
// the resident API adds over one-shot execution: a registered catalog
// with fluent multi-join queries, concurrent queries sharing one worker
// pool, and the dynamic-vs-static (DP vs FP) scheduling comparison.
//
//	go run ./examples/warehouse
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"hierdb"
)

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// buildTables generates the synthetic star schema once; the tables are
// read-only afterwards, so every DB handle can register the same ones.
func buildTables() []*hierdb.Table {
	const (
		nSales     = 400_000
		nProducts  = 2_000
		nStores    = 200
		nSuppliers = 500
	)
	rng := uint64(42)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}

	products := &hierdb.Table{Name: "products", Cols: []string{"id", "category"}}
	for i := 0; i < nProducts; i++ {
		products.Rows = append(products.Rows, hierdb.Row{i, fmt.Sprintf("cat%d", i%17)})
	}
	stores := &hierdb.Table{Name: "stores", Cols: []string{"id", "region"}}
	for i := 0; i < nStores; i++ {
		stores.Rows = append(stores.Rows, hierdb.Row{i, fmt.Sprintf("region%d", i%7)})
	}
	suppliers := &hierdb.Table{Name: "suppliers", Cols: []string{"id", "country"}}
	for i := 0; i < nSuppliers; i++ {
		suppliers.Rows = append(suppliers.Rows, hierdb.Row{i, fmt.Sprintf("country%d", i%11)})
	}
	sales := &hierdb.Table{Name: "sales", Cols: []string{"product", "store", "supplier", "amount"}}
	for i := 0; i < nSales; i++ {
		sales.Rows = append(sales.Rows, hierdb.Row{next(nProducts), next(nStores), next(nSuppliers), 1 + next(500)})
	}
	return []*hierdb.Table{products, stores, suppliers, sales}
}

func register(db *hierdb.DB, tables []*hierdb.Table) {
	for _, t := range tables {
		check(db.RegisterTable(t))
	}
}

// starQuery builds sales x products x stores x suppliers. After three
// joins the row layout is sales ++ product ++ store ++ supplier columns.
func starQuery(db *hierdb.DB) *hierdb.Query {
	return db.Scan("sales").
		Join(db.Scan("products"), hierdb.KeyCol(0), hierdb.KeyCol(0)). // sales.product
		Join(db.Scan("stores"), hierdb.KeyCol(1), hierdb.KeyCol(0)).   // sales.store
		Join(db.Scan("suppliers"), hierdb.KeyCol(2), hierdb.KeyCol(0)) // sales.supplier
}

func main() {
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4 // keep the scheduling comparison meaningful on tiny hosts
	}
	tables := buildTables()
	db := hierdb.Open(hierdb.WithWorkers(workers))
	defer db.Close()
	register(db, tables)

	// Revenue by region: stream the 3-join star through a group-by on
	// the store's region (column 4+2+1 = 7 of the joined row).
	report, _, err := starQuery(db).
		GroupBy(hierdb.KeyCol(7),
			hierdb.Aggregation{Func: hierdb.Count},
			hierdb.Aggregation{Func: hierdb.Sum, Arg: func(r hierdb.Row) float64 { return float64(r[3].(int)) }},
		).
		Collect(context.Background())
	check(err)
	fmt.Println("revenue by region:")
	for _, r := range report {
		fmt.Printf("  %-10v %8d sales  %12.0f revenue\n", r[0], r[1], r[2])
	}
	fmt.Println()

	// Concurrent traffic: per-category revenue queries for 8 categories,
	// all in flight at once on the handle's single worker pool.
	start := time.Now()
	var wg sync.WaitGroup
	results := make([]int64, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cat := fmt.Sprintf("cat%d", i)
			rows, _, err := db.Scan("sales").
				Join(db.Scan("products").Where(hierdb.Pred{Col: 1, Op: hierdb.Eq, Val: cat}),
					hierdb.KeyCol(0), hierdb.KeyCol(0)).
				GroupBy(hierdb.KeyCol(5), hierdb.Aggregation{Func: hierdb.Count}).
				Collect(context.Background())
			check(err)
			for _, r := range rows {
				results[i] += r[1].(int64)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("8 concurrent category queries on one shared pool: %v\n", time.Since(start).Round(time.Millisecond))
	for i, n := range results {
		fmt.Printf("  cat%-3d %8d sales\n", i, n)
	}
	fmt.Println()

	// DP vs FP on the same star query: dynamic any-worker-any-operator
	// scheduling against static worker-to-operator binding.
	for _, mode := range []struct {
		label  string
		static bool
	}{
		{"DP (dynamic, any worker any operator)", false},
		{"FP (static worker-to-operator binding)", true},
	} {
		mdb := hierdb.Open(hierdb.WithWorkers(workers), hierdb.WithStatic(mode.static))
		register(mdb, tables)
		start := time.Now()
		rows, stats, err := starQuery(mdb).Collect(context.Background())
		check(err)
		fmt.Printf("%-40s %8d rows  %8v  imbalance %.2f  per-worker %v\n",
			mode.label, len(rows), time.Since(start).Round(time.Millisecond),
			stats.Imbalance(), stats.PerWorker)
		mdb.Close()
	}
}
