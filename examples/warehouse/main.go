// Warehouse: the decision-support workload the paper's introduction
// motivates — a multi-join query over a star-ish schema, executed on the
// real-data engine with the DP scheduler, comparing dynamic scheduling
// against the static (FP-style) baseline.
//
//	go run ./examples/warehouse
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"hierdb"
)

func main() {
	const (
		nSales     = 400_000
		nProducts  = 2_000
		nStores    = 200
		nSuppliers = 500
	)
	rng := uint64(42)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}

	products := &hierdb.Table{Name: "products", Cols: []string{"id", "category"}}
	for i := 0; i < nProducts; i++ {
		products.Rows = append(products.Rows, hierdb.Row{i, fmt.Sprintf("cat%d", i%17)})
	}
	stores := &hierdb.Table{Name: "stores", Cols: []string{"id", "region"}}
	for i := 0; i < nStores; i++ {
		stores.Rows = append(stores.Rows, hierdb.Row{i, fmt.Sprintf("region%d", i%7)})
	}
	suppliers := &hierdb.Table{Name: "suppliers", Cols: []string{"id", "country"}}
	for i := 0; i < nSuppliers; i++ {
		suppliers.Rows = append(suppliers.Rows, hierdb.Row{i, fmt.Sprintf("country%d", i%11)})
	}
	sales := &hierdb.Table{Name: "sales", Cols: []string{"product", "store", "supplier", "amount"}}
	for i := 0; i < nSales; i++ {
		sales.Rows = append(sales.Rows, hierdb.Row{next(nProducts), next(nStores), next(nSuppliers), 1 + next(500)})
	}

	// sales x products x stores x suppliers.
	plan := &hierdb.JoinNode{
		Build: &hierdb.ScanNode{Table: suppliers},
		Probe: &hierdb.JoinNode{
			Build: &hierdb.ScanNode{Table: stores},
			Probe: &hierdb.JoinNode{
				Build:    &hierdb.ScanNode{Table: products},
				Probe:    &hierdb.ScanNode{Table: sales},
				BuildKey: hierdb.KeyCol(0),
				ProbeKey: hierdb.KeyCol(0), // sales.product
			},
			BuildKey: hierdb.KeyCol(0),
			ProbeKey: hierdb.KeyCol(1), // sales.store survives in column 1
		},
		BuildKey: hierdb.KeyCol(0),
		ProbeKey: hierdb.KeyCol(2), // sales.supplier survives in column 2
	}

	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4 // keep the scheduling comparison meaningful on tiny hosts
	}

	// Revenue by region: group the joined rows on the store's region
	// (after three joins the row layout is sales ++ product ++ store ++
	// supplier columns; region is at index 4+2+1 = 7).
	gb := &hierdb.GroupBy{
		Key: hierdb.KeyCol(7),
		Aggs: []hierdb.Aggregation{
			{Func: hierdb.Count},
			{Func: hierdb.Sum, Arg: func(r hierdb.Row) float64 { return float64(r[3].(int)) }},
		},
	}
	report, _, err := hierdb.ExecuteGroupBy(context.Background(), plan, gb, hierdb.EngineOptions{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue by region:")
	for _, r := range report {
		fmt.Printf("  %-10v %8d sales  %12.0f revenue\n", r[0], r[1], r[2])
	}
	fmt.Println()

	for _, mode := range []struct {
		label  string
		static bool
	}{
		{"DP (dynamic, any worker any operator)", false},
		{"FP (static worker-to-operator binding)", true},
	} {
		start := time.Now()
		rows, stats, err := hierdb.Execute(context.Background(), plan,
			hierdb.EngineOptions{Workers: workers, Static: mode.static})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s %8d rows  %8v  imbalance %.2f  per-worker %v\n",
			mode.label, len(rows), time.Since(start).Round(time.Millisecond),
			stats.Imbalance(), stats.PerWorker)
	}
}
