// Skewdemo: the effect the paper's Figure 9 studies, on real data — a join
// whose probe keys follow a Zipf distribution. Dynamic scheduling (DP)
// keeps workers evenly loaded; static binding (FP) strands them.
//
//	go run ./examples/skewdemo
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"hierdb"
)

func main() {
	const (
		nBuild = 50_000
		nProbe = 600_000
		theta  = 0.9 // high Zipf skew
	)
	// Zipf CDF over nBuild ranks.
	weights := make([]float64, nBuild)
	sum := 0.0
	for i := range weights {
		w := 1 / math.Pow(float64(i+1), theta)
		weights[i] = w
		sum += w
	}
	cdf := make([]float64, nBuild)
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		cdf[i] = acc
	}
	rng := uint64(7)
	uniform := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / (1 << 53)
	}
	draw := func() int {
		u := uniform()
		lo, hi := 0, nBuild-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	build := &hierdb.Table{Name: "dim", Cols: []string{"id", "payload"}}
	for i := 0; i < nBuild; i++ {
		build.Rows = append(build.Rows, hierdb.Row{i, i})
	}
	probe := &hierdb.Table{Name: "fact", Cols: []string{"dim_id", "v"}}
	for i := 0; i < nProbe; i++ {
		probe.Rows = append(probe.Rows, hierdb.Row{draw(), i})
	}

	plan := &hierdb.JoinNode{
		Build:    &hierdb.ScanNode{Table: build},
		Probe:    &hierdb.ScanNode{Table: probe},
		BuildKey: hierdb.KeyCol(0),
		ProbeKey: hierdb.KeyCol(0),
	}

	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4 // keep the scheduling comparison meaningful on tiny hosts
	}
	fmt.Printf("probe keys Zipf(theta=%.1f) over %d build keys, %d probe rows, %d workers\n\n",
		theta, nBuild, nProbe, workers)
	for _, mode := range []struct {
		label  string
		static bool
	}{
		{"DP", false},
		{"FP", true},
	} {
		start := time.Now()
		rows, stats, err := hierdb.Execute(context.Background(), plan,
			hierdb.EngineOptions{Workers: workers, Static: mode.static})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s %8d rows  %8v  worker imbalance %.2f\n",
			mode.label, len(rows), time.Since(start).Round(time.Millisecond), stats.Imbalance())
	}
}
