// Simulate: drive the paper's simulation programmatically — generate a
// workload, execute one plan under SP, DP and FP on a shared-memory node,
// then run the §5.3 transfer micro-benchmark on a 4-node hierarchy.
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"log"

	"hierdb"
)

func main() {
	scale := hierdb.BenchScale()

	// Shared memory: one SM-node of 8 processors.
	w := hierdb.GenerateWorkload(scale, 1)
	tree := w.Plans[0]
	cfg := hierdb.DefaultConfig(1, 8)
	fmt.Printf("plan %s on %v:\n", tree.Name, cfg)

	sp, err := hierdb.ExecuteSP(tree, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := hierdb.ExecuteDP(tree, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fp, err := hierdb.ExecuteFP(tree, cfg, 0, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []*hierdb.Run{sp, dp, fp} {
		fmt.Printf("  %-3s rt=%-10v busy=%-10v idle=%-10v results=%d\n",
			r.Strategy, r.ResponseTime, r.Busy, r.Idle, r.ResultTuples)
	}
	fmt.Printf("  DP/SP = %.3f, FP/SP = %.3f\n\n", dp.Relative(sp), fp.Relative(sp))

	// Hierarchical: the 5-operator chain of §5.3 on 4 SM-nodes, skewed.
	chain := hierdb.ChainPlan(5, 4, 10)
	hcfg := hierdb.DefaultConfig(4, 2)
	dpH, err := hierdb.ExecuteDP(chain, hcfg, func(o *hierdb.SimOptions) { o.RedistributionSkew = 0.8 })
	if err != nil {
		log.Fatal(err)
	}
	fpH, err := hierdb.ExecuteFP(chain, hcfg, 0, 1, func(o *hierdb.SimOptions) { o.RedistributionSkew = 0.8 })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5-operator chain on %v, skew 0.8:\n", hcfg)
	fmt.Printf("  DP rt=%v lbBytes=%d idle=%v\n", dpH.ResponseTime, dpH.BalanceBytes, dpH.Idle)
	fmt.Printf("  FP rt=%v lbBytes=%d idle=%v\n", fpH.ResponseTime, fpH.BalanceBytes, fpH.Idle)
}
