// Quickstart: open a resident DB, register two tables, and stream a
// join built with the fluent query API through the DP-scheduled
// parallel hash-join engine.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hierdb"
)

func main() {
	db := hierdb.Open(hierdb.WithWorkers(4))
	defer db.Close()

	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	check(db.RegisterTable(&hierdb.Table{
		Name: "customers",
		Cols: []string{"id", "name"},
		Rows: []hierdb.Row{
			{1, "ada"}, {2, "grace"}, {3, "edsger"}, {4, "barbara"},
		},
	}))
	check(db.RegisterTable(&hierdb.Table{
		Name: "orders",
		Cols: []string{"customer_id", "item"},
		Rows: []hierdb.Row{
			{1, "disk"}, {2, "cpu"}, {2, "ram"}, {4, "nic"}, {4, "rack"}, {4, "tape"},
		},
	}))

	// orders JOIN customers ON orders.customer_id = customers.id.
	// The receiver is the probe side; the argument builds the hash table.
	rows, err := db.Scan("orders").
		Join(db.Scan("customers"), hierdb.KeyCol(0), hierdb.KeyCol(0)).
		Combine(func(order, customer hierdb.Row) hierdb.Row {
			return hierdb.Row{customer[1], order[1]}
		}).
		Run(context.Background())
	check(err)
	defer rows.Close()

	fmt.Println("order lines:")
	for rows.Next() {
		r := rows.Row()
		fmt.Printf("  %-8v bought %v\n", r[0], r[1])
	}
	check(rows.Err())
	stats := rows.Stats()
	fmt.Printf("rows=%d activations=%d per-worker=%v\n",
		stats.ResultRows, stats.Activations, stats.PerWorker)
}
