// Quickstart: join two in-memory tables with the DP-scheduled parallel
// hash-join engine.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hierdb"
)

func main() {
	customers := &hierdb.Table{
		Name: "customers",
		Cols: []string{"id", "name"},
		Rows: []hierdb.Row{
			{1, "ada"}, {2, "grace"}, {3, "edsger"}, {4, "barbara"},
		},
	}
	orders := &hierdb.Table{
		Name: "orders",
		Cols: []string{"customer_id", "item"},
		Rows: []hierdb.Row{
			{1, "disk"}, {2, "cpu"}, {2, "ram"}, {4, "nic"}, {4, "rack"}, {4, "tape"},
		},
	}

	// orders JOIN customers ON orders.customer_id = customers.id.
	// The smaller side builds the hash table; the larger side probes.
	plan := &hierdb.JoinNode{
		Build:    &hierdb.ScanNode{Table: customers},
		Probe:    &hierdb.ScanNode{Table: orders},
		BuildKey: hierdb.KeyCol(0),
		ProbeKey: hierdb.KeyCol(0),
		Combine: func(order, customer hierdb.Row) hierdb.Row {
			return hierdb.Row{customer[1], order[1]}
		},
	}

	rows, stats, err := hierdb.Execute(context.Background(), plan, hierdb.EngineOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d order lines:\n", len(rows))
	for _, r := range rows {
		fmt.Printf("  %-8v bought %v\n", r[0], r[1])
	}
	fmt.Printf("activations=%d, per-worker=%v\n", stats.Activations, stats.PerWorker)
}
