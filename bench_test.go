// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5) at bench scale, plus ablations of the design decisions
// DESIGN.md calls out. Custom metrics report the interesting simulated
// quantities; wall-clock ns/op measures harness cost only.
//
// Run everything:
//
//	go test -bench=. -benchmem
package hierdb

import (
	"context"
	"fmt"
	"testing"
)

func tinyScale() Scale {
	s := BenchScale()
	s.Queries = 2
	return s
}

// BenchmarkParamsTables regenerates the §5.1.1 parameter tables (T1, T2).
func BenchmarkParamsTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ParamTables() == "" {
			b.Fatal("empty tables")
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (relative performance of SP, DP, FP).
func BenchmarkFig6(b *testing.B) {
	s := tinyScale()
	s.Fig6Procs = []int{4, 8}
	var fig *Figure
	for i := 0; i < b.N; i++ {
		fig = Fig6(s, nil)
	}
	report(b, fig, map[string]int{"dp_rel_vs_sp": 1, "fp_rel_vs_sp": 2})
}

// BenchmarkFig7 regenerates Figure 7 (cost-model errors on FP).
func BenchmarkFig7(b *testing.B) {
	s := tinyScale()
	s.Fig7Procs = []int{8}
	s.Fig7Rates = []float64{0, 0.30}
	var fig *Figure
	for i := 0; i < b.N; i++ {
		fig = Fig7(s, nil)
	}
	if fig != nil && len(fig.Series) > 0 {
		ys := fig.Series[0].Y
		b.ReportMetric(ys[len(ys)-1]/ys[0], "fp_degradation_30pct")
	}
}

// BenchmarkFig8 regenerates Figure 8 (speedup of SP, FP, DP).
func BenchmarkFig8(b *testing.B) {
	s := tinyScale()
	s.Fig8Procs = []int{1, 8}
	var fig *Figure
	for i := 0; i < b.N; i++ {
		fig = Fig8(s, nil)
	}
	if fig != nil {
		for _, series := range fig.Series {
			b.ReportMetric(series.Y[len(series.Y)-1], "speedup8_"+series.Label)
		}
	}
}

// BenchmarkFig9 regenerates Figure 9 (skew impact on DP).
func BenchmarkFig9(b *testing.B) {
	s := tinyScale()
	s.Fig9Skews = []float64{0, 1}
	s.Fig9Procs = 8
	var fig *Figure
	for i := 0; i < b.N; i++ {
		fig = Fig9(s, nil)
	}
	if fig != nil {
		ys := fig.Series[0].Y
		b.ReportMetric(ys[len(ys)-1], "dp_rel_at_zipf1")
	}
}

// BenchmarkTransferVolume regenerates the §5.3 in-text data-volume table.
func BenchmarkTransferVolume(b *testing.B) {
	s := BenchScale()
	var fig *Figure
	for i := 0; i < b.N; i++ {
		fig = Transfer(s, nil)
	}
	if fig != nil {
		dp, fp := fig.Series[0].Y[0], fig.Series[0].Y[1]
		b.ReportMetric(dp, "dp_lb_bytes")
		b.ReportMetric(fp, "fp_lb_bytes")
		if dp > 0 {
			b.ReportMetric(fp/dp, "fp_over_dp")
		}
	}
}

// BenchmarkFig10 regenerates Figure 10 (hierarchical FP vs DP).
func BenchmarkFig10(b *testing.B) {
	s := tinyScale()
	s.Fig10PPN = []int{2}
	var fig *Figure
	for i := 0; i < b.N; i++ {
		fig = Fig10(s, nil)
	}
	if fig != nil && len(fig.Series) == 2 {
		b.ReportMetric(fig.Series[1].Y[0], "fp_rel_vs_dp")
	}
}

func report(b *testing.B, fig *Figure, series map[string]int) {
	if fig == nil {
		return
	}
	for name, idx := range series {
		if idx < len(fig.Series) {
			ys := fig.Series[idx].Y
			b.ReportMetric(ys[len(ys)-1], name)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation benches (DESIGN.md §5): each reports the simulated response
// time of one DP run with a design decision toggled.
// ---------------------------------------------------------------------

func ablationPlan(b *testing.B) (*Plan, Config) {
	b.Helper()
	s := tinyScale()
	w := GenerateWorkload(s, 1)
	return w.Plans[0], DefaultConfig(1, 8)
}

func runAblation(b *testing.B, tree *Plan, cfg Config, mutate func(*SimOptions)) {
	b.Helper()
	var rt float64
	for i := 0; i < b.N; i++ {
		r, err := ExecuteDP(tree, cfg, mutate)
		if err != nil {
			b.Fatal(err)
		}
		rt = r.ResponseTime.Seconds()
	}
	b.ReportMetric(rt, "vrt_seconds")
}

func BenchmarkAblationBaselineDP(b *testing.B) {
	tree, cfg := ablationPlan(b)
	runAblation(b, tree, cfg, nil)
}

func BenchmarkAblationQueuePerThread(b *testing.B) {
	tree, cfg := ablationPlan(b)
	runAblation(b, tree, cfg, func(o *SimOptions) { o.QueuePerThread = false })
}

func BenchmarkAblationPrimaryQueues(b *testing.B) {
	tree, cfg := ablationPlan(b)
	runAblation(b, tree, cfg, func(o *SimOptions) { o.PrimaryQueues = false })
}

func BenchmarkAblationFragmentation(b *testing.B) {
	tree, cfg := ablationPlan(b)
	for _, factor := range []int{1, 8, 32} {
		factor := factor
		b.Run(fmt.Sprintf("factor%d", factor), func(b *testing.B) {
			runAblation(b, tree, cfg, func(o *SimOptions) { o.FragmentationFactor = factor })
		})
	}
}

func BenchmarkAblationGranularity(b *testing.B) {
	tree, cfg := ablationPlan(b)
	for _, pages := range []int{1, 4, 16} {
		pages := pages
		b.Run(fmt.Sprintf("pages%d", pages), func(b *testing.B) {
			runAblation(b, tree, cfg, func(o *SimOptions) { o.PagesPerTrigger = pages })
		})
	}
}

func BenchmarkAblationConcurrentChains(b *testing.B) {
	// §3.2: executing more pipeline chains concurrently gives load
	// balancing more options at the price of memory.
	s := tinyScale()
	for _, mode := range []struct {
		label string
		sched PlanSchedule
	}{
		{"oneAtATime", DefaultSchedule()},
		{"fullParallel", FullParallelSchedule()},
	} {
		mode := mode
		b.Run(mode.label, func(b *testing.B) {
			w := GenerateWorkloadSchedule(s, 1, mode.sched)
			cfg := DefaultConfig(1, 8)
			var rt float64
			for i := 0; i < b.N; i++ {
				r, err := ExecuteDP(w.Plans[0], cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				rt = r.ResponseTime.Seconds()
			}
			b.ReportMetric(rt, "vrt_seconds")
		})
	}
}

func BenchmarkAblationNoGlobalLB(b *testing.B) {
	tree := ChainPlan(5, 4, 10)
	cfg := DefaultConfig(4, 2)
	for _, lb := range []bool{true, false} {
		lb := lb
		b.Run(fmt.Sprintf("globalLB=%v", lb), func(b *testing.B) {
			var rt float64
			for i := 0; i < b.N; i++ {
				r, err := ExecuteDP(tree, cfg, func(o *SimOptions) {
					o.RedistributionSkew = 0.8
					o.GlobalLB = lb
				})
				if err != nil {
					b.Fatal(err)
				}
				rt = r.ResponseTime.Seconds()
			}
			b.ReportMetric(rt, "vrt_seconds")
		})
	}
}

func BenchmarkAblationStealCache(b *testing.B) {
	tree := ChainPlan(5, 4, 10)
	cfg := DefaultConfig(4, 2)
	for _, cache := range []bool{true, false} {
		cache := cache
		b.Run(fmt.Sprintf("cache=%v", cache), func(b *testing.B) {
			var bytes float64
			for i := 0; i < b.N; i++ {
				r, err := ExecuteDP(tree, cfg, func(o *SimOptions) {
					o.RedistributionSkew = 0.8
					o.StealCache = cache
				})
				if err != nil {
					b.Fatal(err)
				}
				bytes = float64(r.BalanceBytes)
			}
			b.ReportMetric(bytes, "lb_bytes")
		})
	}
}

// ---------------------------------------------------------------------
// Real-data engine benches
// ---------------------------------------------------------------------

func buildBenchTables(n int) (*Table, *Table) {
	build := &Table{Name: "dim", Cols: []string{"k", "v"}}
	for i := 0; i < n/10; i++ {
		build.Rows = append(build.Rows, Row{i, i})
	}
	probe := &Table{Name: "fact", Cols: []string{"k", "v"}}
	for i := 0; i < n; i++ {
		probe.Rows = append(probe.Rows, Row{i % (n / 10), i})
	}
	return build, probe
}

func BenchmarkEngineJoinDP(b *testing.B) {
	build, probe := buildBenchTables(100_000)
	plan := &JoinNode{Build: &ScanNode{Table: build}, Probe: &ScanNode{Table: probe},
		BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := Execute(context.Background(), plan, EngineOptions{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 100_000 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

func BenchmarkEngineJoinStatic(b *testing.B) {
	build, probe := buildBenchTables(100_000)
	plan := &JoinNode{Build: &ScanNode{Table: build}, Probe: &ScanNode{Table: probe},
		BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := Execute(context.Background(), plan, EngineOptions{Workers: 4, Static: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 100_000 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}
