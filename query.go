package hierdb

// Fluent query building over a DB's catalog. A Query is a logical plan
// under construction; building never panics — malformed steps (unknown
// table, nil key, GroupBy in the middle) record an error that Run
// returns. Build methods return new Query values, so intermediates are
// freely reusable as inputs to several queries.

import (
	"context"
	"fmt"

	"hierdb/internal/exec"
)

// Query is a logical plan under construction, bound to a DB. Execute it
// with Run (streaming) or Collect (materialized).
type Query struct {
	db     *DB
	node   exec.Node
	top    *exec.Join // join introduced by this builder step, for Combine/Selectivity
	gb     *exec.GroupBy
	tenant string // admission-fairness label, set by WithTenant
	err    error
}

// Scan starts a query reading a registered table.
//
// Deprecated: the variadic filter parameter. Prefer Where with column
// predicates — they run inside the columnar scan kernel and the planner
// can estimate them; a closure is opaque to both. Scan("t", f) is
// equivalent to Scan("t").Filter-wise but kept for compatibility.
func (db *DB) Scan(table string, filter ...func(Row) bool) *Query {
	q := &Query{db: db}
	if db.err != nil {
		q.err = db.err
		return q
	}
	if len(filter) > 1 {
		q.err = fmt.Errorf("hierdb: Scan takes at most one filter (got %d)", len(filter))
		return q
	}
	db.mu.RLock()
	t, ok := db.tables[table]
	closed := db.closed
	db.mu.RUnlock()
	if closed {
		q.err = fmt.Errorf("hierdb: database closed")
		return q
	}
	if !ok {
		q.err = fmt.Errorf("hierdb: table %q not registered", table)
		return q
	}
	s := &exec.Scan{Table: t}
	if len(filter) == 1 {
		s.Filter = filter[0]
	}
	q.node = s
	return q
}

// Where narrows the scan started by the immediately preceding Scan
// step with single-column predicates, ANDed together (and with any row
// Filter closure, which runs after them). Predicates execute inside
// the columnar scan kernel as per-column loops that only shrink the
// selection vector — prefer them over a Filter closure when the
// condition is column-vs-constant. The scan node is cloned, so the
// receiver — and any query already running over it — is unaffected.
func (q *Query) Where(preds ...Pred) *Query {
	out := &Query{db: q.db, tenant: q.tenant, err: q.err}
	if out.err != nil {
		return out
	}
	s, ok := q.node.(*exec.Scan)
	if !ok || q.gb != nil {
		out.err = fmt.Errorf("hierdb: Where must immediately follow Scan")
		return out
	}
	ns := *s
	ns.Preds = append(append([]Pred(nil), ns.Preds...), preds...)
	out.node = &ns
	return out
}

// Join hash-joins the receiver (probe side, streamed) with build
// (materialized into a striped hash table) on probeKey = buildKey.
// Output rows are probe columns then build columns unless Combine is
// set on the result.
func (q *Query) Join(build *Query, probeKey, buildKey KeyFunc) *Query {
	out := &Query{db: q.db, tenant: q.tenant}
	switch {
	case q.err != nil:
		out.err = q.err
	case build == nil:
		out.err = fmt.Errorf("hierdb: Join with nil build query")
	case build.err != nil:
		out.err = build.err
	case build.db != q.db:
		out.err = fmt.Errorf("hierdb: Join across different DB handles")
	case q.gb != nil || build.gb != nil:
		out.err = fmt.Errorf("hierdb: GroupBy must be the final step of a query")
	case probeKey == nil:
		out.err = fmt.Errorf("hierdb: Join with nil probe KeyFunc")
	case buildKey == nil:
		out.err = fmt.Errorf("hierdb: Join with nil build KeyFunc")
	default:
		j := &exec.Join{Build: build.node, Probe: q.node, BuildKey: buildKey, ProbeKey: probeKey}
		out.node, out.top = j, j
	}
	return out
}

// Combine sets the output-row merger of the join introduced by the
// immediately preceding Join step (default: probe then build columns).
// The join node is cloned, so the receiver — and any query already
// running over it — is unaffected.
func (q *Query) Combine(fn func(probe, build Row) Row) *Query {
	return q.withTop(func(j *exec.Join) { j.Combine = fn }, "Combine")
}

// Selectivity hints the output-to-input ratio of the join introduced by
// the immediately preceding Join step, for scheduling estimates. Like
// Combine it clones the join node rather than mutating the receiver.
//
// Deprecated: use Hint(Hint{Selectivity: s}), which also carries row
// counts and order pins for the cost-based planner.
func (q *Query) Selectivity(s float64) *Query {
	return q.withTop(func(j *exec.Join) { j.Selectivity = s }, "Selectivity")
}

// Hint attaches planner knowledge to the current builder step.
// Following a Join (or Combine) step it applies to that join, subsuming
// Selectivity; immediately following Scan or Where it applies to the
// scan. Zero-valued fields are left unset; the step's node is cloned,
// so the receiver is unaffected.
type Hint struct {
	// Selectivity is the join's output rows per probe-input row, exactly
	// the deprecated Selectivity method (joins only).
	Selectivity float64
	// Rows pins the step's estimated output rows, taking precedence over
	// Selectivity and over statistics-derived estimates.
	Rows int64
	// NoReorder pins the builder's literal join order: a full optimizer
	// leaves any plan containing such a join untouched (joins only).
	NoReorder bool
}

// Hint applies h to the current builder step; see the Hint type.
// Negative fields, scan-inapplicable fields on a scan step, and steps
// that take no hints (GroupBy) record an error returned by Run.
func (q *Query) Hint(h Hint) *Query {
	if q.err == nil && (h.Selectivity < 0 || h.Rows < 0) {
		out := &Query{db: q.db, tenant: q.tenant, err: fmt.Errorf("hierdb: negative Hint field")}
		return out
	}
	if q.top != nil {
		return q.withTop(func(j *exec.Join) {
			if h.Selectivity > 0 {
				j.Selectivity = h.Selectivity
			}
			if h.Rows > 0 {
				j.RowsHint = h.Rows
			}
			if h.NoReorder {
				j.NoReorder = true
			}
		}, "Hint")
	}
	out := &Query{db: q.db, tenant: q.tenant, err: q.err}
	if out.err != nil {
		return out
	}
	s, ok := q.node.(*exec.Scan)
	if !ok || q.gb != nil {
		out.err = fmt.Errorf("hierdb: Hint must follow Scan, Where, Join, or Combine")
		return out
	}
	if h.Selectivity > 0 || h.NoReorder {
		out.err = fmt.Errorf("hierdb: Selectivity and NoReorder hints apply to join steps")
		return out
	}
	ns := *s
	if h.Rows > 0 {
		ns.RowsHint = h.Rows
	}
	out.node = &ns
	return out
}

func (q *Query) withTop(set func(*exec.Join), step string) *Query {
	out := &Query{db: q.db, tenant: q.tenant, err: q.err}
	if out.err != nil {
		return out
	}
	if q.top == nil {
		out.err = fmt.Errorf("hierdb: %s without a preceding Join", step)
		return out
	}
	j := *q.top
	set(&j)
	out.node, out.top = &j, &j
	return out
}

// GroupBy folds the query's output through a grouped aggregation; output
// rows are [key, agg0, agg1, ...] ordered deterministically by formatted
// key. It must be the final builder step.
func (q *Query) GroupBy(key KeyFunc, aggs ...Aggregation) *Query {
	out := &Query{db: q.db, node: q.node, tenant: q.tenant}
	switch {
	case q.err != nil:
		out.err = q.err
	case q.gb != nil:
		out.err = fmt.Errorf("hierdb: GroupBy applied twice")
	case key == nil:
		out.err = fmt.Errorf("hierdb: GroupBy with nil KeyFunc")
	default:
		out.gb = &exec.GroupBy{Key: key, Aggs: aggs}
	}
	return out
}

// WithTenant labels the query for admission fairness on a DB opened
// with WithMaxConcurrentQueries: queries parked in the admission queue
// are dequeued round-robin across tenant labels (FIFO within one), so
// one tenant's backlog cannot starve another's. The label survives
// later builder steps; without it the query belongs to the default
// (empty) tenant. No effect on an unbounded DB.
func (q *Query) WithTenant(id string) *Query {
	out := &Query{db: q.db, node: q.node, top: q.top, gb: q.gb, tenant: id, err: q.err}
	return out
}

// Run submits the query to the DB's resident pool and returns a
// streaming Rows. The query executes concurrently with any other
// in-flight queries on the handle; result batches flow through a bounded
// sink, so iterate promptly or Close to release the workers. On a DB
// opened with WithMaxConcurrentQueries, Run may park in the admission
// queue until a slot frees — failing promptly with ErrClosed if the DB
// closes, with ErrAdmissionQueueFull if the queue is at capacity, or
// with ctx.Err() if the context fires first; EngineStats.AdmissionWait
// reports the time parked.
func (q *Query) Run(ctx context.Context) (*Rows, error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.db == nil {
		return nil, fmt.Errorf("hierdb: query without a DB")
	}
	if q.db.err != nil {
		return nil, q.db.err
	}
	q.db.mu.RLock()
	closed := q.db.closed
	q.db.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("hierdb: database closed")
	}
	if q.node == nil {
		return nil, fmt.Errorf("hierdb: empty query")
	}
	node := q.node
	if q.db.mode != OptimizerOff {
		// The cost-based planning bridge: clone the literal plan with
		// statistics-derived estimates and, in full mode, the DP-chosen
		// join order. Results are identical in every mode.
		node = exec.Optimize(node, q.db.mode, q.db.statsFor).Root
	}
	opt := q.db.opt
	opt.Tenant = q.tenant
	var (
		h   *exec.Handle
		err error
	)
	if q.gb != nil {
		h, err = q.db.eng.SubmitGroupBy(ctx, node, q.gb, opt)
	} else {
		h, err = q.db.eng.Submit(ctx, node, opt)
	}
	if err != nil {
		return nil, err
	}
	return &Rows{h: h}, nil
}

// Collect runs the query and materializes every result row — a
// convenience for small results; prefer Run for large ones.
func (q *Query) Collect(ctx context.Context) ([]Row, *EngineStats, error) {
	rows, err := q.Run(ctx)
	if err != nil {
		return nil, nil, err
	}
	out, err := rows.Collect()
	if err != nil {
		return nil, nil, err
	}
	return out, rows.Stats(), nil
}
