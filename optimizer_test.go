package hierdb

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hierdb/internal/exec"
	"hierdb/internal/store"
)

// optTables builds the skewed 3-relation fixture: a large fact, a
// mid-size relation on the same key domain, and a tiny dim covering
// only a fifth of it — so the literal fact⋈mid-first order is
// deliberately bad and the optimizer should join dim early.
func optTables() []*Table {
	fact := &Table{Name: "fact", Cols: []string{"id", "k", "s"}}
	for i := 0; i < 2000; i++ {
		fact.Rows = append(fact.Rows, Row{i, i % 100, "f"})
	}
	mid := &Table{Name: "mid", Cols: []string{"id", "k", "s"}}
	for i := 0; i < 400; i++ {
		mid.Rows = append(mid.Rows, Row{i, i % 100, "m"})
	}
	dim := &Table{Name: "dim", Cols: []string{"id", "k", "s"}}
	for i := 0; i < 20; i++ {
		dim.Rows = append(dim.Rows, Row{i, i, "d"})
	}
	return []*Table{fact, mid, dim}
}

// optDB opens a DB over fresh fixture tables, analyzed at registration.
func optDB(t testing.TB, opts ...Option) *DB {
	db := Open(opts...)
	t.Cleanup(func() { db.Close() })
	for _, tb := range optTables() {
		if err := db.Register(tb.Name, FromTable(tb), WithStats()); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// badFixtureQuery is the literal worst order: (fact ⋈ mid) ⋈ dim.
func badFixtureQuery(db *DB) *Query {
	return db.Scan("fact").
		Join(db.Scan("mid"), KeyCol(1), KeyCol(1)).
		Join(db.Scan("dim"), KeyCol(1), KeyCol(1))
}

func TestWithOptimizerInvalidMode(t *testing.T) {
	db := Open(WithOptimizer(OptimizerMode(7)))
	defer db.Close()
	if _, err := db.Scan("x").Run(context.Background()); err == nil || !strings.Contains(err.Error(), "optimizer mode") {
		t.Fatalf("err = %v, want invalid optimizer mode", err)
	}
}

// TestOptimizerModesIdenticalResults: every mode must return the exact
// same rows — including column order — as the literal plan.
func TestOptimizerModesIdenticalResults(t *testing.T) {
	ctx := context.Background()
	collect := func(mode OptimizerMode) []string {
		db := optDB(t, WithWorkers(4), WithOptimizer(mode))
		rows, _, err := badFixtureQuery(db).Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return canonRows(rows)
	}
	off := collect(OptimizerOff)
	if len(off) == 0 {
		t.Fatal("empty fixture result")
	}
	for _, mode := range []OptimizerMode{OptimizerHints, OptimizerFull} {
		got := collect(mode)
		if len(got) != len(off) {
			t.Fatalf("mode %d: %d rows vs %d", mode, len(got), len(off))
		}
		for i := range got {
			if got[i] != off[i] {
				t.Fatalf("mode %d row %d: %s vs %s", mode, i, got[i], off[i])
			}
		}
	}
}

func TestHintSemantics(t *testing.T) {
	ctx := context.Background()
	db := optDB(t, WithWorkers(2))

	// Scan-step row hint: legal, results unchanged.
	rows, _, err := db.Scan("dim").Hint(Hint{Rows: 3}).Collect(ctx)
	if err != nil || len(rows) != 20 {
		t.Fatalf("scan hint: %d rows, err %v", len(rows), err)
	}
	// Join-step hint subsumes Selectivity and carries the order pin.
	q := db.Scan("fact").Join(db.Scan("dim"), KeyCol(1), KeyCol(1)).
		Hint(Hint{Selectivity: 0.2, Rows: 400, NoReorder: true})
	if _, _, err := q.Collect(ctx); err != nil {
		t.Fatalf("join hint: %v", err)
	}
	// Errors: negative fields, join-only fields on a scan, hint after
	// GroupBy.
	for name, bad := range map[string]*Query{
		"negative-rows":       db.Scan("dim").Hint(Hint{Rows: -1}),
		"negative-sel":        db.Scan("fact").Join(db.Scan("dim"), KeyCol(1), KeyCol(1)).Hint(Hint{Selectivity: -0.5}),
		"scan-selectivity":    db.Scan("dim").Hint(Hint{Selectivity: 0.5}),
		"scan-noreorder":      db.Scan("dim").Hint(Hint{NoReorder: true}),
		"hint-after-group-by": db.Scan("dim").GroupBy(KeyCol(1), Aggregation{Func: Count}).Hint(Hint{Rows: 5}),
	} {
		if _, err := bad.Run(ctx); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}

// TestHintNoReorderPinsOrder: a NoReorder hint must keep the bad
// literal order even under the full optimizer.
func TestHintNoReorderPinsOrder(t *testing.T) {
	db := optDB(t, WithWorkers(2), WithOptimizer(OptimizerFull))
	q := db.Scan("fact").
		Join(db.Scan("mid"), KeyCol(1), KeyCol(1)).Hint(Hint{NoReorder: true}).
		Join(db.Scan("dim"), KeyCol(1), KeyCol(1))
	p, err := q.Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p.Reordered {
		t.Fatal("NoReorder plan was reordered")
	}
	if !strings.Contains(p.Reason, "NoReorder") {
		t.Fatalf("Reason = %q", p.Reason)
	}
}

func TestRegisterUnified(t *testing.T) {
	ctx := context.Background()
	db := Open(WithWorkers(2), WithOptimizer(OptimizerFull))
	defer db.Close()

	// FromTable with an empty table name takes the registration name.
	unnamed := &Table{Cols: []string{"k"}, Rows: []Row{{1}, {2}}}
	if err := db.Register("anon", FromTable(unnamed)); err != nil {
		t.Fatal(err)
	}
	if unnamed.Name != "anon" {
		t.Fatalf("table name = %q, want anon", unnamed.Name)
	}
	if rows, _, err := db.Scan("anon").Collect(ctx); err != nil || len(rows) != 2 {
		t.Fatalf("anon scan: %d rows, err %v", len(rows), err)
	}
	// Conflicting names are rejected.
	if err := db.Register("other", FromTable(&Table{Name: "named", Cols: []string{"k"}})); err == nil {
		t.Fatal("name conflict accepted")
	}
	// Empty name and empty source are rejected.
	if err := db.Register("", FromTable(unnamed)); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := db.Register("empty", TableSource{}); err == nil {
		t.Fatal("empty source accepted")
	}
	// FromFile with WithStats: registers and analyzes the table file.
	tb := &Table{Name: "ondisk", Cols: []string{"id", "k"}}
	for i := 0; i < 200; i++ {
		tb.Rows = append(tb.Rows, Row{i, i % 10})
	}
	path := filepath.Join(t.TempDir(), "ondisk.hdb")
	if err := store.WriteTable(path, tb.Cols, 64, tb.Rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("ondisk", FromFile(path), WithStats()); err != nil {
		t.Fatal(err)
	}
	st, err := db.Analyze("ondisk")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 200 || st.Cols[1].Distinct != 10 {
		t.Fatalf("file stats: %+v", st)
	}
	// The deprecated wrappers still behave.
	if err := db.RegisterTable(nil); err == nil || !strings.Contains(err.Error(), "nil table") {
		t.Fatalf("RegisterTable(nil): %v", err)
	}
	if err := db.RegisterTable(unnamed); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	// Analyze of unregistered tables fails.
	if _, err := db.Analyze("ghost"); err == nil {
		t.Fatal("Analyze of unregistered table succeeded")
	}
}

// TestGroupByResultRowsCountsOutputRows pins the documented EngineStats
// semantics: on a GroupBy query, ResultRows counts the aggregation's
// output rows (one per group), not the rows folded into it.
func TestGroupByResultRowsCountsOutputRows(t *testing.T) {
	db := Open(WithWorkers(2))
	defer db.Close()
	tb := &Table{Name: "t", Cols: []string{"k", "v"}}
	for i := 0; i < 100; i++ {
		tb.Rows = append(tb.Rows, Row{i % 5, i})
	}
	if err := db.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	rows, st, err := db.Scan("t").GroupBy(KeyCol(0), Aggregation{Func: Count}).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d groups, want 5", len(rows))
	}
	if st.ResultRows != 5 {
		t.Fatalf("ResultRows = %d, want 5 (output rows, not the 100 folded)", st.ResultRows)
	}
}

// TestExplainGolden pins the stable text rendering under every mode;
// parallel subtests double as the stability-under--parallel check.
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name string
		mode OptimizerMode
		want string
	}{
		{"off", OptimizerOff, goldenExplainOff},
		{"hints", OptimizerHints, goldenExplainHints},
		{"full", OptimizerFull, goldenExplainFull},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			db := optDB(t, WithWorkers(4), WithOptimizer(tc.mode))
			p, err := badFixtureQuery(db).Explain(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := p.String(); got != tc.want {
				t.Fatalf("explain diverged:\n--- got ---\n%s\n--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// Off mode plans without statistics (the unique-key default makes the
// no-stats join estimates tiny); hints and full read the Analyze'd
// distinct counts (~100 keys), and full flips dim ahead of mid.
const goldenExplainOff = `mode=off
join est=4 act=- [hash]
├─ probe: join est=400 act=- [hash]
│  ├─ probe: scan fact est=2000 act=-
│  └─ build: scan mid est=400 act=-
└─ build: scan dim est=20 act=-`

const goldenExplainHints = `mode=hints
join est=1600 act=- [hash]
├─ probe: join est=8000 act=- [hash]
│  ├─ probe: scan fact est=2000 act=-
│  └─ build: scan mid est=400 act=-
└─ build: scan dim est=20 act=-`

const goldenExplainFull = `mode=full reordered
join est=1600 act=- [hash]
├─ probe: join est=400 act=- [hash]
│  ├─ probe: scan fact est=2000 act=-
│  └─ build: scan dim est=20 act=-
└─ build: scan mid est=400 act=-`

// TestExplainActualize runs the explained query (group-by, multi-node)
// and checks estimated-vs-actual pairing.
func TestExplainActualize(t *testing.T) {
	ctx := context.Background()
	db := optDB(t, WithNodes(2), WithWorkers(2), WithOptimizer(OptimizerFull))
	q := badFixtureQuery(db).GroupBy(KeyCol(1), Aggregation{Func: Count})
	p, err := q.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Kind != "groupby" {
		t.Fatalf("root kind = %q", p.Root.Kind)
	}
	if p.IntermediateRows() != -1 {
		t.Fatal("intermediate rows known before the run")
	}
	rows, st, err := q.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p.Actualize(st)
	if p.Root.ActRows != int64(len(rows)) || p.Root.ActRows != st.ResultRows {
		t.Fatalf("groupby ActRows = %d, want %d", p.Root.ActRows, len(rows))
	}
	join := p.Root.Children[0]
	if join.Kind != "join" || join.ActRows < 0 {
		t.Fatalf("root join not actualized: %+v", join)
	}
	if ir := p.IntermediateRows(); ir < 0 {
		t.Fatalf("IntermediateRows = %d after Actualize", ir)
	}
	if p.EstCost <= 0 {
		t.Fatalf("EstCost = %v", p.EstCost)
	}
}

// TestOptimizeOverheadWithinBudget gates planning cost: optimizing the
// 3-join fixture must cost no more than 5% of actually running it.
func TestOptimizeOverheadWithinBudget(t *testing.T) {
	ctx := context.Background()
	db := optDB(t, WithWorkers(4), WithOptimizer(OptimizerFull))
	q := badFixtureQuery(db)
	// Warm the columnization caches planning shares with execution.
	if _, _, err := q.Collect(ctx); err != nil {
		t.Fatal(err)
	}
	const iters = 200
	start := time.Now()
	for i := 0; i < iters; i++ {
		if pc := exec.Optimize(q.node, OptimizerFull, db.statsFor); !pc.Reordered {
			t.Fatal("fixture plan no longer reorders")
		}
	}
	planNs := time.Since(start) / iters
	run := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		s := time.Now()
		if _, _, err := q.Collect(ctx); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(s); d < run {
			run = d
		}
	}
	t.Logf("plan %v, run %v (%.2f%%)", planNs, run, 100*float64(planNs)/float64(run))
	if planNs*20 > run {
		t.Fatalf("planning %v exceeds 5%% of query runtime %v", planNs, run)
	}
}

// BenchmarkOptimizeOverhead measures the per-query planning path alone
// — graph extraction, estimation, DP search, tree rebuild — on the
// analyzed 3-join fixture (the unit Run adds on top of execution when
// the optimizer is on).
func BenchmarkOptimizeOverhead(b *testing.B) {
	db := optDB(b, WithWorkers(4), WithOptimizer(OptimizerFull))
	q := badFixtureQuery(db)
	if pc := exec.Optimize(q.node, OptimizerFull, db.statsFor); !pc.Reordered {
		b.Fatal("fixture plan no longer reorders")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Optimize(q.node, OptimizerFull, db.statsFor)
	}
}
