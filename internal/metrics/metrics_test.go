package metrics

import (
	"strings"
	"testing"

	"hierdb/internal/simtime"
)

func TestSpeedupAndRelative(t *testing.T) {
	base := &Run{ResponseTime: 10 * simtime.Second}
	fast := &Run{ResponseTime: 2 * simtime.Second}
	if s := fast.Speedup(base); s != 5 {
		t.Fatalf("speedup = %v", s)
	}
	if r := fast.Relative(base); r != 0.2 {
		t.Fatalf("relative = %v", r)
	}
}

func TestZeroGuards(t *testing.T) {
	zero := &Run{}
	other := &Run{ResponseTime: simtime.Second}
	if zero.Speedup(other) != 0 {
		t.Fatal("speedup of zero run")
	}
	if other.Relative(zero) != 0 {
		t.Fatal("relative vs zero reference")
	}
}

func TestTotalBytes(t *testing.T) {
	r := &Run{PipelineBytes: 1, ControlBytes: 2, BalanceBytes: 4}
	if r.TotalBytes() != 7 {
		t.Fatalf("total = %d", r.TotalBytes())
	}
}

func TestString(t *testing.T) {
	r := &Run{Strategy: "DP", Plan: "p", Config: "1x4", ResponseTime: simtime.Second}
	s := r.String()
	for _, want := range []string{"DP", "p", "1x4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q: %s", want, s)
		}
	}
}
