// Package metrics defines the measurement record every execution produces.
// The experiments of §5 are computed from these records: response times
// (always used as ratios between comparable executions, per the paper's
// methodology in §5.1.3), processor busy/idle breakdowns, and inter-node
// traffic split into pipeline, control and load-balancing classes.
package metrics

import (
	"fmt"

	"hierdb/internal/simtime"
)

// Run is the outcome of executing one plan under one strategy on one
// configuration.
type Run struct {
	// Strategy is "DP", "FP" or "SP".
	Strategy string
	// Plan names the executed plan.
	Plan string
	// Config is the topology label ("1x64", "4x8", ...).
	Config string

	// ResponseTime is the virtual time from query start to global
	// termination of the root operator.
	ResponseTime simtime.Duration

	// Busy is CPU time spent executing operator work and overheads,
	// summed over all worker threads.
	Busy simtime.Duration
	// IOWait is time worker threads spent stalled on disk pages with no
	// other work available.
	IOWait simtime.Duration
	// Idle is time worker threads spent asleep with nothing to do
	// (the quantity §5.3 reports as "processor idle time").
	Idle simtime.Duration

	// QueueOps counts activation enqueues and dequeues.
	QueueOps int64
	// Suspensions counts activation suspensions (the paper's
	// procedure-call execution switching).
	Suspensions int64

	// StealRounds counts starving episodes that led to a request for
	// remote work; StealsSucceeded those that shipped activations.
	StealRounds, StealsSucceeded int64
	// StolenActivations counts activations acquired through global load
	// balancing.
	StolenActivations int64

	// PipelineMsgs/PipelineBytes is tuple redistribution between nodes.
	PipelineMsgs, PipelineBytes int64
	// ControlMsgs/ControlBytes is protocol traffic.
	ControlMsgs, ControlBytes int64
	// BalanceMsgs/BalanceBytes is load-sharing payload (stolen
	// activations plus shipped hash tables) — the quantity compared in
	// §5.3 (FP ≈ 9 MB vs DP ≈ 2.5 MB).
	BalanceMsgs, BalanceBytes int64

	// ResultTuples is the number of tuples the root operator produced.
	ResultTuples int64
}

// TotalBytes returns all inter-node bytes.
func (r *Run) TotalBytes() int64 {
	return r.PipelineBytes + r.ControlBytes + r.BalanceBytes
}

// String summarizes the run on one line.
func (r *Run) String() string {
	return fmt.Sprintf("%s %s on %s: rt=%v busy=%v idle=%v iowait=%v results=%d lbBytes=%d",
		r.Strategy, r.Plan, r.Config, r.ResponseTime, r.Busy, r.Idle, r.IOWait, r.ResultTuples, r.BalanceBytes)
}

// Speedup returns base/this as a ratio of response times (e.g. 1-processor
// time over p-processor time).
func (r *Run) Speedup(base *Run) float64 {
	if r.ResponseTime == 0 {
		return 0
	}
	return float64(base.ResponseTime) / float64(r.ResponseTime)
}

// Relative returns this run's response time divided by the reference run's
// (the paper's "relative performance", e.g. versus SP).
func (r *Run) Relative(ref *Run) float64 {
	if ref.ResponseTime == 0 {
		return 0
	}
	return float64(r.ResponseTime) / float64(ref.ResponseTime)
}
