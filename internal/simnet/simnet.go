// Package simnet models the interconnection network of the hierarchical
// system with the parameters of §5.1.1 of the paper: infinite bandwidth, a
// fixed end-to-end transmission delay, and a per-8KB CPU cost on both the
// sending and the receiving side.
//
// The CPU costs are returned as instruction counts so that the caller (a
// simulated thread or scheduler) charges them to the right processor; the
// network itself only delays delivery and keeps traffic statistics.
package simnet

import (
	"fmt"

	"hierdb/internal/simtime"
)

// Params are the network parameters. The defaults mirror the paper's table.
type Params struct {
	// Delay is the end-to-end transmission delay (paper: 0.5 ms).
	Delay simtime.Duration
	// SendInstrPer8KB is the CPU cost, in instructions, of sending 8 KB
	// (paper: 10000).
	SendInstrPer8KB int64
	// RecvInstrPer8KB is the CPU cost, in instructions, of receiving 8 KB
	// (paper: 10000).
	RecvInstrPer8KB int64
}

// DefaultParams returns the paper's network parameter table.
func DefaultParams() Params {
	return Params{
		Delay:           simtime.Millisecond / 2,
		SendInstrPer8KB: 10000,
		RecvInstrPer8KB: 10000,
	}
}

// Class labels traffic so experiments can separate ordinary pipeline
// redistribution from load-balancing transfers (§5.3 measures only the
// latter) and control messages.
type Class int

const (
	// Pipeline is tuple redistribution between pipelined operators.
	Pipeline Class = iota
	// Control is protocol traffic (end-of-operator detection, starving
	// messages, credits).
	Control
	// Balance is load-sharing payload: stolen activations and shipped
	// hash-table buckets.
	Balance
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Pipeline:
		return "pipeline"
	case Control:
		return "control"
	case Balance:
		return "balance"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Traffic accumulates message and byte counts for one class.
type Traffic struct {
	Messages int64
	Bytes    int64
}

// Network delivers messages between SM-nodes with the configured delay.
type Network struct {
	k       *simtime.Kernel
	params  Params
	traffic [numClasses]Traffic
}

// New returns a network attached to k.
func New(k *simtime.Kernel, p Params) *Network {
	return &Network{k: k, params: p}
}

// Params returns the configured parameters.
func (n *Network) Params() Params { return n.params }

// SendInstr returns the CPU instructions the sender must charge for a
// message of the given size. Cost scales with ceil(bytes/8KB), with a
// minimum of one unit, matching the per-8KB accounting of the paper.
func (n *Network) SendInstr(bytes int64) int64 {
	return n.params.SendInstrPer8KB * chunks8K(bytes)
}

// RecvInstr returns the CPU instructions the receiver must charge.
func (n *Network) RecvInstr(bytes int64) int64 {
	return n.params.RecvInstrPer8KB * chunks8K(bytes)
}

func chunks8K(bytes int64) int64 {
	if bytes <= 0 {
		return 1
	}
	return (bytes + 8191) / 8192
}

// Send records a message of the given class and size and schedules deliver
// to run after the end-to-end delay. The caller is responsible for charging
// SendInstr to the sending processor before calling Send and RecvInstr to
// the receiving processor inside deliver.
func (n *Network) Send(class Class, bytes int64, deliver func()) {
	n.traffic[class].Messages++
	n.traffic[class].Bytes += bytes
	n.k.After(n.params.Delay, deliver)
}

// TrafficFor returns the accumulated traffic for a class.
func (n *Network) TrafficFor(c Class) Traffic { return n.traffic[c] }

// TotalTraffic returns the sum over all classes.
func (n *Network) TotalTraffic() Traffic {
	var t Traffic
	for _, c := range n.traffic {
		t.Messages += c.Messages
		t.Bytes += c.Bytes
	}
	return t
}
