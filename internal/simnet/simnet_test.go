package simnet

import (
	"testing"

	"hierdb/internal/simtime"
)

func TestDefaultParamsMatchPaperTable(t *testing.T) {
	p := DefaultParams()
	if p.Delay != simtime.Millisecond/2 {
		t.Errorf("Delay = %v, want 0.5ms", p.Delay)
	}
	if p.SendInstrPer8KB != 10000 || p.RecvInstrPer8KB != 10000 {
		t.Errorf("CPU costs = %d/%d, want 10000/10000", p.SendInstrPer8KB, p.RecvInstrPer8KB)
	}
}

func TestDeliveryDelay(t *testing.T) {
	k := simtime.NewKernel()
	n := New(k, DefaultParams())
	var deliveredAt simtime.Time
	k.After(simtime.Second, func() {
		n.Send(Pipeline, 100, func() { deliveredAt = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := simtime.Second + simtime.Millisecond/2
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestCPUCostScalesWith8KChunks(t *testing.T) {
	n := New(simtime.NewKernel(), DefaultParams())
	cases := []struct {
		bytes int64
		want  int64
	}{
		{0, 10000},
		{1, 10000},
		{8192, 10000},
		{8193, 20000},
		{3 * 8192, 30000},
	}
	for _, c := range cases {
		if got := n.SendInstr(c.bytes); got != c.want {
			t.Errorf("SendInstr(%d) = %d, want %d", c.bytes, got, c.want)
		}
		if got := n.RecvInstr(c.bytes); got != c.want {
			t.Errorf("RecvInstr(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestTrafficAccounting(t *testing.T) {
	k := simtime.NewKernel()
	n := New(k, DefaultParams())
	n.Send(Pipeline, 1000, func() {})
	n.Send(Pipeline, 2000, func() {})
	n.Send(Balance, 500, func() {})
	n.Send(Control, 64, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if tr := n.TrafficFor(Pipeline); tr.Messages != 2 || tr.Bytes != 3000 {
		t.Errorf("pipeline traffic = %+v", tr)
	}
	if tr := n.TrafficFor(Balance); tr.Messages != 1 || tr.Bytes != 500 {
		t.Errorf("balance traffic = %+v", tr)
	}
	tot := n.TotalTraffic()
	if tot.Messages != 4 || tot.Bytes != 3564 {
		t.Errorf("total = %+v", tot)
	}
}

func TestClassString(t *testing.T) {
	if Pipeline.String() != "pipeline" || Control.String() != "control" || Balance.String() != "balance" {
		t.Error("bad class names")
	}
	if Class(99).String() == "" {
		t.Error("unknown class empty")
	}
}

func TestMessagesPreserveOrderPerDelay(t *testing.T) {
	k := simtime.NewKernel()
	n := New(k, DefaultParams())
	var order []int
	n.Send(Control, 1, func() { order = append(order, 1) })
	n.Send(Control, 1, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}
