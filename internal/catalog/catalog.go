// Package catalog models base relations and their physical placement.
//
// Relations are horizontally partitioned across SM-nodes, and within each
// node across disks, by hashing a partitioning attribute (§2.1). For the
// experiments the paper assumes every relation is fully partitioned across
// all SM-nodes (§5.1.2); the catalog supports arbitrary homes so the plan
// layer can also express Figure 2-style placements.
package catalog

import (
	"fmt"

	"hierdb/internal/xrand"
)

// SizeClass is the paper's three relation-size categories (§5.1.2).
type SizeClass int

const (
	// Small relations have 10K-20K tuples.
	Small SizeClass = iota
	// Medium relations have 100K-200K tuples.
	Medium
	// Large relations have 1M-2M tuples.
	Large
)

// String implements fmt.Stringer.
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return fmt.Sprintf("SizeClass(%d)", int(s))
}

// Bounds returns the inclusive cardinality range of the class.
func (s SizeClass) Bounds() (lo, hi int64) {
	switch s {
	case Small:
		return 10_000, 20_000
	case Medium:
		return 100_000, 200_000
	case Large:
		return 1_000_000, 2_000_000
	}
	panic("catalog: unknown size class")
}

// DefaultTupleBytes is the tuple width used throughout the reproduction.
// The paper does not state one; 100 bytes makes its 12-relation workloads
// total ≈1.3 GB of base data as reported in §5.1.2.
const DefaultTupleBytes = 100

// Relation is a base relation.
type Relation struct {
	// Name identifies the relation in plans and traces.
	Name string
	// Cardinality is the number of tuples.
	Cardinality int64
	// TupleBytes is the width of one tuple in bytes.
	TupleBytes int64
	// Home is the set of SM-node IDs storing partitions (§2.1). Order is
	// not significant but is kept deterministic.
	Home []int
	// PlacementSkew is the Zipf factor of tuple-placement skew across the
	// home nodes: 0 means perfectly uniform partitions (the default),
	// higher values concentrate tuples on the first home nodes
	// ([Walton91] attribute-value / tuple-placement skew).
	PlacementSkew float64
}

// Bytes returns the total size of the relation in bytes.
func (r *Relation) Bytes() int64 { return r.Cardinality * r.TupleBytes }

// Pages returns the number of pages of the given size the relation
// occupies, rounding up.
func (r *Relation) Pages(pageSize int64) int64 {
	if pageSize <= 0 {
		panic("catalog: non-positive page size")
	}
	return (r.Bytes() + pageSize - 1) / pageSize
}

// TuplesPerPage returns how many tuples fit in one page (at least 1).
func (r *Relation) TuplesPerPage(pageSize int64) int64 {
	n := pageSize / r.TupleBytes
	if n < 1 {
		n = 1
	}
	return n
}

// PartitionCards returns the per-home-node tuple counts. With zero
// placement skew the split is as even as largest-remainder rounding allows;
// otherwise the counts follow a Zipf distribution over the home nodes.
func (r *Relation) PartitionCards() []int64 {
	if len(r.Home) == 0 {
		return nil
	}
	z := xrand.NewZipf(len(r.Home), r.PlacementSkew)
	return z.Apportion(r.Cardinality)
}

// Validate checks the relation for obvious mistakes.
func (r *Relation) Validate() error {
	switch {
	case r.Name == "":
		return fmt.Errorf("catalog: relation without a name")
	case r.Cardinality <= 0:
		return fmt.Errorf("catalog: %s: cardinality %d", r.Name, r.Cardinality)
	case r.TupleBytes <= 0:
		return fmt.Errorf("catalog: %s: tuple bytes %d", r.Name, r.TupleBytes)
	case len(r.Home) == 0:
		return fmt.Errorf("catalog: %s: empty home", r.Name)
	case r.PlacementSkew < 0:
		return fmt.Errorf("catalog: %s: negative placement skew", r.Name)
	}
	seen := make(map[int]bool)
	for _, n := range r.Home {
		if n < 0 {
			return fmt.Errorf("catalog: %s: negative node id %d", r.Name, n)
		}
		if seen[n] {
			return fmt.Errorf("catalog: %s: duplicate home node %d", r.Name, n)
		}
		seen[n] = true
	}
	return nil
}

// AllNodes returns the home [0, 1, ..., n-1] used by the paper's
// experiments (relations fully partitioned across all SM-nodes).
func AllNodes(n int) []int {
	home := make([]int, n)
	for i := range home {
		home[i] = i
	}
	return home
}

// Random draws a relation of the given class using r, named name, homed on
// home.
func Random(r *xrand.Rand, name string, class SizeClass, home []int) *Relation {
	lo, hi := class.Bounds()
	return &Relation{
		Name:        name,
		Cardinality: r.Int64Range(lo, hi),
		TupleBytes:  DefaultTupleBytes,
		Home:        home,
	}
}
