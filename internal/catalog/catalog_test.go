package catalog

import (
	"testing"
	"testing/quick"

	"hierdb/internal/xrand"
)

func TestSizeClassBounds(t *testing.T) {
	cases := []struct {
		c      SizeClass
		lo, hi int64
	}{
		{Small, 10_000, 20_000},
		{Medium, 100_000, 200_000},
		{Large, 1_000_000, 2_000_000},
	}
	for _, c := range cases {
		lo, hi := c.c.Bounds()
		if lo != c.lo || hi != c.hi {
			t.Errorf("%v bounds = %d..%d", c.c, lo, hi)
		}
	}
}

func TestSizeClassString(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Error("bad class names")
	}
}

func TestPagesRoundUp(t *testing.T) {
	r := &Relation{Name: "r", Cardinality: 81, TupleBytes: 100, Home: []int{0}}
	// 8100 bytes over 8192-byte pages = 1 page.
	if p := r.Pages(8192); p != 1 {
		t.Errorf("Pages = %d", p)
	}
	r.Cardinality = 82 // 8200 bytes -> 2 pages
	if p := r.Pages(8192); p != 2 {
		t.Errorf("Pages = %d", p)
	}
}

func TestTuplesPerPage(t *testing.T) {
	r := &Relation{Name: "r", Cardinality: 1, TupleBytes: 100, Home: []int{0}}
	if n := r.TuplesPerPage(8192); n != 81 {
		t.Errorf("TuplesPerPage = %d", n)
	}
	r.TupleBytes = 10000 // wider than a page
	if n := r.TuplesPerPage(8192); n != 1 {
		t.Errorf("TuplesPerPage = %d", n)
	}
}

func TestPartitionCardsUniform(t *testing.T) {
	r := &Relation{Name: "r", Cardinality: 100, TupleBytes: 100, Home: AllNodes(4)}
	parts := r.PartitionCards()
	var sum int64
	for _, p := range parts {
		if p != 25 {
			t.Errorf("uniform partition = %v", parts)
		}
		sum += p
	}
	if sum != 100 {
		t.Errorf("sum = %d", sum)
	}
}

func TestPartitionCardsSkewed(t *testing.T) {
	r := &Relation{Name: "r", Cardinality: 10000, TupleBytes: 100, Home: AllNodes(4), PlacementSkew: 1}
	parts := r.PartitionCards()
	if parts[0] <= parts[3] {
		t.Errorf("skewed partitions not decreasing: %v", parts)
	}
	var sum int64
	for _, p := range parts {
		sum += p
	}
	if sum != 10000 {
		t.Errorf("sum = %d", sum)
	}
}

func TestPartitionCardsSumQuick(t *testing.T) {
	f := func(card uint32, nodesRaw uint8, skewRaw uint8) bool {
		nodes := int(nodesRaw%8) + 1
		r := &Relation{
			Name:          "q",
			Cardinality:   int64(card%1_000_000) + 1,
			TupleBytes:    100,
			Home:          AllNodes(nodes),
			PlacementSkew: float64(skewRaw%11) / 10,
		}
		parts := r.PartitionCards()
		var sum int64
		for _, p := range parts {
			if p < 0 {
				return false
			}
			sum += p
		}
		return sum == r.Cardinality && len(parts) == nodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	good := &Relation{Name: "g", Cardinality: 10, TupleBytes: 100, Home: []int{0, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Relation{
		{Cardinality: 10, TupleBytes: 100, Home: []int{0}},
		{Name: "b", Cardinality: 0, TupleBytes: 100, Home: []int{0}},
		{Name: "b", Cardinality: 10, TupleBytes: 0, Home: []int{0}},
		{Name: "b", Cardinality: 10, TupleBytes: 100},
		{Name: "b", Cardinality: 10, TupleBytes: 100, Home: []int{0, 0}},
		{Name: "b", Cardinality: 10, TupleBytes: 100, Home: []int{-1}},
		{Name: "b", Cardinality: 10, TupleBytes: 100, Home: []int{0}, PlacementSkew: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, r)
		}
	}
}

func TestRandomRespectsClass(t *testing.T) {
	r := xrand.New(1)
	for i := 0; i < 100; i++ {
		rel := Random(r, "x", Medium, AllNodes(2))
		if rel.Cardinality < 100_000 || rel.Cardinality > 200_000 {
			t.Fatalf("medium cardinality %d", rel.Cardinality)
		}
		if err := rel.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllNodes(t *testing.T) {
	h := AllNodes(3)
	if len(h) != 3 || h[0] != 0 || h[1] != 1 || h[2] != 2 {
		t.Fatalf("AllNodes = %v", h)
	}
}
