package catalog

// Table statistics for the cost-based planning bridge: the real-data
// engine's ANALYZE output, consumed by the optimizer when it estimates
// scan and join cardinalities for resident queries. The simulation side
// keeps using Relation directly; TableStats is how a real table gets
// promoted into a Relation the DP search can cost.

import (
	"math"
	"math/bits"
)

// ColStats summarizes one column of an analyzed table.
type ColStats struct {
	// Name is the column name.
	Name string
	// Distinct is the estimated number of distinct non-null values
	// (linear-counting estimate; exact for small cardinalities).
	Distinct int64
	// Nulls counts null values.
	Nulls int64
}

// TableStats is the ANALYZE summary of one table: cardinality, average
// tuple width, and per-column distinct counts. The optimizer divides by
// Distinct to estimate equality selectivities ([Selinger79]'s 1/V(A,R)),
// and multiplies Rows by AvgRowBytes to size hash-table builds against
// the WithMemory budget.
type TableStats struct {
	// Table is the analyzed table's registered name.
	Table string
	// Rows is the exact cardinality at analysis time.
	Rows int64
	// AvgRowBytes is the mean decoded tuple width in bytes.
	AvgRowBytes float64
	// Cols has one entry per table column, in schema order.
	Cols []ColStats
}

// DistinctOf returns the distinct-count estimate of column i, or 0 when
// the column was not analyzed.
func (s *TableStats) DistinctOf(i int) int64 {
	if s == nil || i < 0 || i >= len(s.Cols) {
		return 0
	}
	return s.Cols[i].Distinct
}

// distinctBits is the linear-counting bitmap size (8 KiB per column).
// Linear counting stays within a few percent up to loads of ~10x the
// bitmap size, far past the cardinalities a CI-scale table reaches.
const distinctBits = 1 << 16

// DistinctCounter estimates the number of distinct values in a stream
// of 64-bit hashes by linear counting ([Whang90]): hash into a fixed
// bitmap and estimate n = -m ln(zeros/m).
type DistinctCounter struct {
	bits [distinctBits / 64]uint64
	// adds counts hashes offered, bounding the estimate from above.
	adds int64
}

// Add offers one value hash.
func (d *DistinctCounter) Add(h uint64) {
	i := h & (distinctBits - 1)
	d.bits[i>>6] |= 1 << (i & 63)
	d.adds++
}

// Estimate returns the distinct-count estimate (at least 1 once any
// value was added).
func (d *DistinctCounter) Estimate() int64 {
	if d.adds == 0 {
		return 0
	}
	zeros := 0
	for _, w := range d.bits {
		zeros += 64 - bits.OnesCount64(w)
	}
	est := d.adds
	if zeros > 0 {
		est = int64(distinctBits*math.Log(distinctBits/float64(zeros)) + 0.5)
	}
	if est > d.adds {
		est = d.adds
	}
	if est < 1 {
		est = 1
	}
	return est
}
