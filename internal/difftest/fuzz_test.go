package difftest

import (
	"context"
	"fmt"
	"testing"

	"hierdb"
	"hierdb/internal/xrand"
)

// FuzzJoinEquivalence fuzzes the engine's configuration space on a
// two-table join: key distribution (domain size and a hot-key skew
// knob), batch/morsel granularities, and the memory budget. Every
// configuration must return the reference multiset. The committed seed
// corpus under testdata/fuzz pins the interesting regimes (tiny budgets
// that force deep re-partitioning, hot keys that defeat partitioning,
// batch sizes of 1, null-heavy and mixed-type key columns); CI
// additionally runs a short -fuzztime smoke.
//
// Two high seed bits steer the key-column shape (so the historical
// corpus, whose seeds never set them, is unaffected): bit 40 makes the
// key column null-heavy (the columnar kernels must route nulls through
// bitmaps, side lists and the spill codec's null sections), bit 41
// mixes int and string keys in one column (defeating typed indexing and
// typed spill encoding — the boxed Any paths must agree with them).
func FuzzJoinEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint8(0), uint8(0), uint8(0), uint32(0))            // defaults, unlimited memory
	f.Add(uint64(2), uint16(8), uint8(128), uint8(4), uint8(16), uint32(2048))       // small domain, mild skew, tiny budget
	f.Add(uint64(3), uint16(1), uint8(255), uint8(1), uint8(1), uint32(512))         // one giant key: recursion hits the depth cap
	f.Add(uint64(4), uint16(500), uint8(0), uint8(255), uint8(255), uint32(65535))   // large batches/morsels, spill at the margin
	f.Add(uint64(0xbeef), uint16(97), uint8(30), uint8(7), uint8(3), uint32(12345))  // odd granularities
	f.Add(uint64(1)<<40|7, uint16(16), uint8(0), uint8(0), uint8(0), uint32(1024))   // null-heavy key column under a tiny budget
	f.Add(uint64(3)<<40|11, uint16(32), uint8(64), uint8(8), uint8(8), uint32(4096)) // mixed int/string keys with nulls, skewed
	f.Fuzz(func(t *testing.T, seed uint64, keyDomain uint16, skew, batch, morsel uint8, memBudget uint32) {
		dom := int(keyDomain)%512 + 1
		nullHeavy := seed&(1<<40) != 0
		mixedKeys := seed&(1<<41) != 0
		r := xrand.New(seed)
		drawKey := func() any {
			if nullHeavy && r.Intn(4) == 0 {
				return nil // null key (matches only other nulls)
			}
			k := r.Intn(dom)
			if skew > 0 && r.Intn(256) < int(skew) {
				k = 0 // hot key
			}
			if mixedKeys && k%3 == 0 {
				return fmt.Sprintf("s%d", k) // string key sharing the column with ints
			}
			return k
		}
		build := &hierdb.Table{Name: "b", Cols: []string{"k", "v"}}
		for i := 0; i < 100+int(seed%200); i++ {
			build.Rows = append(build.Rows, hierdb.Row{drawKey(), fmt.Sprintf("b%d", i)})
		}
		probe := &hierdb.Table{Name: "p", Cols: []string{"k", "v"}}
		for i := 0; i < 200+int(seed%400); i++ {
			probe.Rows = append(probe.Rows, hierdb.Row{drawKey(), i})
		}

		run := func(opts ...hierdb.Option) map[string]int {
			db := hierdb.Open(opts...)
			defer db.Close()
			for _, tb := range []*hierdb.Table{build, probe} {
				if err := db.RegisterTable(tb); err != nil {
					t.Fatal(err)
				}
			}
			rows, _, err := db.Scan("p").Join(db.Scan("b"), hierdb.KeyCol(0), hierdb.KeyCol(0)).
				Collect(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			return Multiset(rows)
		}

		ref := run(hierdb.WithWorkers(4))
		budget := int64(memBudget) // 0 = unlimited leg degenerates to the reference config
		gran := []hierdb.Option{
			hierdb.WithBatch(int(batch)),
			hierdb.WithMorsel(int(morsel) * 16),
			hierdb.WithMemory(budget),
			hierdb.WithSpillDir(t.TempDir()),
		}
		for name, opts := range map[string][]hierdb.Option{
			"governed":       append([]hierdb.Option{hierdb.WithWorkers(3)}, gran...),
			"governed-2node": append([]hierdb.Option{hierdb.WithNodes(2), hierdb.WithWorkers(2)}, gran...),
		} {
			if err := DiffMultisets(name, "reference", run(opts...), ref); err != nil {
				t.Fatalf("seed=%d dom=%d skew=%d batch=%d morsel=%d budget=%d: %v",
					seed, dom, skew, batch, morsel, budget, err)
			}
		}
	})
}
