// Package difftest is a querygen-driven differential test harness for
// the real-data engine: random multi-join queries (the §5.1.2 /
// [Shekita93] generation methodology already driving the simulation's
// workloads) are materialized as seeded synthetic tables, executed
// under every interesting engine configuration — single-node,
// multi-node, static (FP) scheduling, stealing disabled, and a tiny
// WithMemory budget that forces Grace-style spilling — and the row
// multisets of all legs are required to be identical.
//
// The generated query supplies the structure (a random acyclic
// connected predicate graph over relations of three size classes, with
// per-edge selectivities targeting 0.5-1.5x the larger operand);
// materialization scales the paper's 10K-2M cardinalities down by
// three orders of magnitude so a full differential run fits in a CI
// test, while preserving the class ratios and per-edge join
// selectivities.
package difftest

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"hierdb"
	"hierdb/internal/querygen"
	"hierdb/internal/store"
	"hierdb/internal/xrand"
)

// Case is one materialized differential query: synthetic tables plus a
// plan builder over them.
type Case struct {
	// Name identifies the case (from the generated query).
	Name string
	// Tables are the materialized relations (column 0 is a row id, then
	// one int key column per incident join edge, then a string payload).
	Tables []*hierdb.Table
	// Joins is the number of join predicates.
	Joins int

	q *querygen.Query
	// keyCol[rel][edge] is the column index of rel's key for that edge.
	keyCol []map[int]int
	// order is the BFS join order; attachEdge[i] connects order[i] to the
	// already-joined prefix (unused for i == 0).
	order      []int
	attachEdge []int
}

// cardDivisor scales the paper's cardinalities (10K-2M) into CI range.
const cardDivisor = 1000

// Synthesize generates one differential case: a random nrel-relation
// query (structure from internal/querygen) with deterministically
// seeded synthetic tables. The same seed always yields the same case.
func Synthesize(seed uint64, name string, nrel int) *Case {
	r := xrand.New(seed)
	q := querygen.Generate(r, name, querygen.Params{Relations: nrel, Nodes: 1})
	c := &Case{Name: name, q: q, Joins: q.NumJoins()}

	// Scaled cardinalities and per-edge key domains. The edge's
	// selectivity encodes the paper's result-size draw: result =
	// ratio * max(|A|,|B|) with ratio = sel * |A| * |B| / max. A shared
	// key domain of size D = min/ratio over uniformly drawn keys
	// reproduces that expectation at the scaled cardinalities.
	cards := make([]int, nrel)
	for i, rel := range q.Relations {
		card := int(rel.Cardinality / cardDivisor)
		if card < 10 {
			card = 10
		}
		cards[i] = card
	}
	domains := make([]int, len(q.Edges))
	for ei, e := range q.Edges {
		a, b := float64(q.Relations[e.A].Cardinality), float64(q.Relations[e.B].Cardinality)
		max := a
		if b > max {
			max = b
		}
		ratio := e.Selectivity * a * b / max // the §5.1.2 [0.5,1.5] draw
		min, maxc := cards[e.A], cards[e.B]
		if maxc < min {
			min, maxc = maxc, min
		}
		d := int(float64(min) / ratio)
		// Bound the per-row join fan-out at 2 from either side, so
		// left-deep intermediates cannot compound past CI scale (the
		// paper gates its queries on response time for the same reason).
		if d < (maxc+1)/2 {
			d = (maxc + 1) / 2
		}
		if d < 1 {
			d = 1
		}
		domains[ei] = d
	}

	// Column layout and table materialization, seeded per relation.
	c.keyCol = make([]map[int]int, nrel)
	incident := make([][]int, nrel)
	for ei, e := range q.Edges {
		incident[e.A] = append(incident[e.A], ei)
		incident[e.B] = append(incident[e.B], ei)
	}
	for i := 0; i < nrel; i++ {
		c.keyCol[i] = make(map[int]int)
		cols := []string{"id"}
		for _, ei := range incident[i] {
			c.keyCol[i][ei] = len(cols)
			cols = append(cols, fmt.Sprintf("k%d", ei))
		}
		cols = append(cols, "payload")
		tr := r.Split(uint64(i) + 1)
		tb := &hierdb.Table{Name: fmt.Sprintf("%s_r%d", name, i), Cols: cols}
		for row := 0; row < cards[i]; row++ {
			vals := make(hierdb.Row, 0, len(cols))
			vals = append(vals, row)
			for _, ei := range incident[i] {
				vals = append(vals, tr.Intn(domains[ei]))
			}
			vals = append(vals, fmt.Sprintf("r%d-%d", i, row))
			tb.Rows = append(tb.Rows, vals)
		}
		c.Tables = append(c.Tables, tb)
	}

	// Left-deep join order: BFS over the predicate tree from relation 0.
	adj := make([][][2]int, nrel) // (neighbor, edge)
	for ei, e := range q.Edges {
		adj[e.A] = append(adj[e.A], [2]int{e.B, ei})
		adj[e.B] = append(adj[e.B], [2]int{e.A, ei})
	}
	seen := make([]bool, nrel)
	c.order = []int{0}
	c.attachEdge = []int{-1}
	seen[0] = true
	for qi := 0; qi < len(c.order); qi++ {
		v := c.order[qi]
		for _, ne := range adj[v] {
			if !seen[ne[0]] {
				seen[ne[0]] = true
				c.order = append(c.order, ne[0])
				c.attachEdge = append(c.attachEdge, ne[1])
			}
		}
	}
	return c
}

// Build registers the case's tables on db and assembles the left-deep
// plan with the facade's query builder. The accumulated (probe) side
// streams against each newly attached relation's build table.
func (c *Case) Build(db *hierdb.DB) (*hierdb.Query, error) {
	if err := c.Register(db); err != nil {
		return nil, err
	}
	return c.Plan(db), nil
}

// Register registers the case's tables on db without building a plan.
// Call it once per DB; drivers that submit the same case repeatedly
// (cmd/hdbload) pair one Register with many Plan calls, since
// registering twice on the same handle is an error.
func (c *Case) Register(db *hierdb.DB) error {
	for _, tb := range c.Tables {
		if err := db.RegisterTable(tb); err != nil {
			return err
		}
	}
	return nil
}

// Plan assembles the case's left-deep join chain over tables already
// registered on db (by Register or a prior Build).
func (c *Case) Plan(db *hierdb.DB) *hierdb.Query {
	return c.plan(db)
}

// BuildDisk writes every relation to a chunked columnar table file
// under dir (cleaned up by the caller; tests pass t.TempDir) and
// registers the files instead of the in-memory tables, then assembles
// the same left-deep plan. Queries over the resulting DB stream
// chunks from disk, so cross-checking a BuildDisk leg against a Build
// leg is the end-to-end proof that persistence is invisible to query
// semantics.
func (c *Case) BuildDisk(db *hierdb.DB, dir string, chunkRows int) (*hierdb.Query, error) {
	for _, tb := range c.Tables {
		path := filepath.Join(dir, tb.Name+".hdb")
		if err := store.WriteTable(path, tb.Cols, chunkRows, tb.Rows); err != nil {
			return nil, err
		}
		if err := db.RegisterTableFile(tb.Name, path); err != nil {
			return nil, err
		}
	}
	return c.plan(db), nil
}

// BuildBad registers the case's tables and assembles a deliberately
// poor left-deep plan: greedy largest-cardinality-first over the
// predicate tree — the adversarial input for the optimizer's
// intermediate-rows acceptance test.
func (c *Case) BuildBad(db *hierdb.DB) (*hierdb.Query, error) {
	for _, tb := range c.Tables {
		if err := db.RegisterTable(tb); err != nil {
			return nil, err
		}
	}
	order, attach := c.badOrder()
	return c.planOrder(db, order, attach), nil
}

// badOrder computes the greedy largest-first left-deep order (each step
// still attaches along a predicate edge, so the plan has no cross
// products — just bad intermediates).
func (c *Case) badOrder() (order, attach []int) {
	nrel := len(c.Tables)
	adj := make([][][2]int, nrel) // (neighbor, edge)
	for ei, e := range c.q.Edges {
		adj[e.A] = append(adj[e.A], [2]int{e.B, ei})
		adj[e.B] = append(adj[e.B], [2]int{e.A, ei})
	}
	start := 0
	for i := 1; i < nrel; i++ {
		if len(c.Tables[i].Rows) > len(c.Tables[start].Rows) {
			start = i
		}
	}
	seen := make([]bool, nrel)
	seen[start] = true
	order, attach = []int{start}, []int{-1}
	for len(order) < nrel {
		best, bestEdge := -1, -1
		for _, v := range order {
			for _, ne := range adj[v] {
				if !seen[ne[0]] && (best < 0 || len(c.Tables[ne[0]].Rows) > len(c.Tables[best].Rows)) {
					best, bestEdge = ne[0], ne[1]
				}
			}
		}
		seen[best] = true
		order = append(order, best)
		attach = append(attach, bestEdge)
	}
	return order, attach
}

// AnalyzeAll runs Analyze over every one of the case's registered
// tables, so optimizer legs plan from real statistics.
func (c *Case) AnalyzeAll(db *hierdb.DB) error {
	for _, tb := range c.Tables {
		if _, err := db.Analyze(tb.Name); err != nil {
			return err
		}
	}
	return nil
}

// plan assembles the case's left-deep join chain, assuming every
// relation is already registered under its table name.
func (c *Case) plan(db *hierdb.DB) *hierdb.Query {
	return c.planOrder(db, c.order, c.attachEdge)
}

// planOrder assembles a left-deep join chain following the given join
// order and attach edges.
func (c *Case) planOrder(db *hierdb.DB, order, attach []int) *hierdb.Query {
	offsets := make([]int, len(c.Tables)) // column offset of each relation in the accumulated row
	acc := db.Scan(c.Tables[order[0]].Name)
	width := len(c.Tables[order[0]].Cols)
	for i := 1; i < len(order); i++ {
		rel := order[i]
		ei := attach[i]
		e := c.q.Edges[ei]
		prev := e.A
		if prev == rel {
			prev = e.B
		}
		probeCol := offsets[prev] + c.keyCol[prev][ei]
		buildCol := c.keyCol[rel][ei]
		acc = acc.Join(db.Scan(c.Tables[rel].Name), hierdb.KeyCol(probeCol), hierdb.KeyCol(buildCol))
		offsets[rel] = width
		width += len(c.Tables[rel].Cols)
	}
	return acc
}

// Reference evaluates the case with a naive row-at-a-time interpreter —
// no batches, no selection vectors, no arenas — and returns the result
// multiset. It is the semantic anchor the columnar engine legs are
// cross-checked against: a left-deep chain of map-backed hash joins over
// the raw table rows, with the engine's output convention (probe columns
// then build columns) and its key semantics (keys compare as boxed
// interface values, so nil==nil matches and cross-type keys do not).
func (c *Case) Reference() map[string]int {
	acc := make([]hierdb.Row, 0, len(c.Tables[c.order[0]].Rows))
	for _, r := range c.Tables[c.order[0]].Rows {
		acc = append(acc, r)
	}
	offsets := make([]int, len(c.Tables))
	width := len(c.Tables[c.order[0]].Cols)
	for i := 1; i < len(c.order); i++ {
		rel := c.order[i]
		ei := c.attachEdge[i]
		e := c.q.Edges[ei]
		prev := e.A
		if prev == rel {
			prev = e.B
		}
		probeCol := offsets[prev] + c.keyCol[prev][ei]
		buildCol := c.keyCol[rel][ei]
		ht := make(map[any][]hierdb.Row)
		for _, br := range c.Tables[rel].Rows {
			ht[br[buildCol]] = append(ht[br[buildCol]], br)
		}
		var next []hierdb.Row
		for _, pr := range acc {
			for _, br := range ht[pr[probeCol]] {
				row := make(hierdb.Row, 0, len(pr)+len(br))
				row = append(append(row, pr...), br...)
				next = append(next, row)
			}
		}
		acc = next
		offsets[rel] = width
		width += len(c.Tables[rel].Cols)
	}
	return Multiset(acc)
}

// RunLeg executes the case on a fresh DB opened with the given options
// and returns the result multiset (formatted row -> count) plus stats.
func (c *Case) RunLeg(ctx context.Context, opts ...hierdb.Option) (map[string]int, *hierdb.EngineStats, error) {
	db := hierdb.Open(opts...)
	defer db.Close()
	q, err := c.Build(db)
	if err != nil {
		return nil, nil, err
	}
	rows, st, err := q.Collect(ctx)
	if err != nil {
		return nil, nil, err
	}
	return Multiset(rows), st, nil
}

// RunAnalyzedLeg is RunLeg with an Analyze pass over every table before
// execution — the configuration the optimizer legs run under.
func (c *Case) RunAnalyzedLeg(ctx context.Context, opts ...hierdb.Option) (map[string]int, *hierdb.EngineStats, error) {
	db := hierdb.Open(opts...)
	defer db.Close()
	q, err := c.Build(db)
	if err != nil {
		return nil, nil, err
	}
	if err := c.AnalyzeAll(db); err != nil {
		return nil, nil, err
	}
	rows, st, err := q.Collect(ctx)
	if err != nil {
		return nil, nil, err
	}
	return Multiset(rows), st, nil
}

// RunDiskLeg is RunLeg with the case's tables streamed from chunked
// table files written under dir instead of resident rows.
func (c *Case) RunDiskLeg(ctx context.Context, dir string, chunkRows int, opts ...hierdb.Option) (map[string]int, *hierdb.EngineStats, error) {
	db := hierdb.Open(opts...)
	defer db.Close()
	q, err := c.BuildDisk(db, dir, chunkRows)
	if err != nil {
		return nil, nil, err
	}
	rows, st, err := q.Collect(ctx)
	if err != nil {
		return nil, nil, err
	}
	return Multiset(rows), st, nil
}

// Multiset formats rows into a multiset map for order-insensitive
// comparison.
func Multiset(rows []hierdb.Row) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[fmt.Sprint([]any(r))]++
	}
	return m
}

// DiffMultisets returns a descriptive error if two row multisets
// differ (nil when identical).
func DiffMultisets(name, refName string, got, want map[string]int) error {
	if len(got) == len(want) {
		same := true
		for k, n := range want {
			if got[k] != n {
				same = false
				break
			}
		}
		if same {
			return nil
		}
	}
	// Build a compact sample of differences.
	var diffs []string
	for k, n := range want {
		if got[k] != n {
			diffs = append(diffs, fmt.Sprintf("%s: %d in %s vs %d in %s", k, n, refName, got[k], name))
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("%s: %d only in %s", k, n, name))
		}
	}
	sort.Strings(diffs)
	if len(diffs) > 5 {
		diffs = append(diffs[:5], fmt.Sprintf("... and %d more", len(diffs)-5))
	}
	return fmt.Errorf("leg %s diverges from %s:\n  %s", name, refName, strings.Join(diffs, "\n  "))
}
