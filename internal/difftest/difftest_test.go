package difftest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hierdb"
	"hierdb/internal/leaktest"
	"hierdb/internal/store"
	"hierdb/internal/xrand"
)

// tinyBudget forces Grace-style spilling on essentially every build
// side the harness generates.
const tinyBudget = 16 << 10

// legs are the engine configurations every generated query is
// cross-checked across. The first leg is the reference.
func legs(t *testing.T) []struct {
	name    string
	analyze bool
	opts    []hierdb.Option
} {
	return []struct {
		name    string
		analyze bool
		opts    []hierdb.Option
	}{
		{"1node", false, []hierdb.Option{hierdb.WithNodes(1), hierdb.WithWorkers(4)}},
		{"4node", false, []hierdb.Option{hierdb.WithNodes(4), hierdb.WithWorkers(2)}},
		{"static", false, []hierdb.Option{hierdb.WithWorkers(4), hierdb.WithStatic(true)}},
		{"nosteal", false, []hierdb.Option{hierdb.WithNodes(2), hierdb.WithWorkers(2), hierdb.WithStealing(false)}},
		{"tinymem", false, []hierdb.Option{hierdb.WithWorkers(4), hierdb.WithMemory(tinyBudget), hierdb.WithSpillDir(t.TempDir())}},
		{"tinymem-4node", false, []hierdb.Option{hierdb.WithNodes(4), hierdb.WithWorkers(2), hierdb.WithMemory(tinyBudget), hierdb.WithSpillDir(t.TempDir())}},
		// The broker legs: the same tiny budget, but leased from the
		// per-node memory broker instead of split per fragment. A
		// fragment denied a top-up takes exactly the fixed-split spill
		// path, so multiset identity against the fixed-split legs is the
		// proof the broker never changes results — single-node and on
		// four governed nodes.
		{"broker-tinymem", false, []hierdb.Option{hierdb.WithWorkers(4), hierdb.WithMemory(tinyBudget), hierdb.WithMemoryBroker(true), hierdb.WithSpillDir(t.TempDir())}},
		{"broker-4node", false, []hierdb.Option{hierdb.WithNodes(4), hierdb.WithWorkers(2), hierdb.WithMemory(tinyBudget), hierdb.WithMemoryBroker(true), hierdb.WithSpillDir(t.TempDir())}},
		// The columnar-kernel legs: tiny batches force constant batch
		// boundaries, padding and selection-vector churn through the vec
		// pipeline, on one node and on four governed nodes. Both are
		// additionally cross-checked against the naive row-at-a-time
		// Reference interpreter (not just the engine reference leg).
		{"vec-1node", false, []hierdb.Option{hierdb.WithWorkers(4), hierdb.WithBatch(16), hierdb.WithMorsel(64)}},
		{"vec-4node-tinymem", false, []hierdb.Option{hierdb.WithNodes(4), hierdb.WithWorkers(2), hierdb.WithBatch(16), hierdb.WithMorsel(64), hierdb.WithMemory(tinyBudget), hierdb.WithSpillDir(t.TempDir())}},
		// The optimizer legs: every table Analyze'd, full cost-based
		// planning on. The DP search may reorder every join, so multiset
		// identity against the literal-order reference leg is the proof
		// that planning never changes results — single-node and on four
		// governed nodes.
		{"opt-1node", true, []hierdb.Option{hierdb.WithWorkers(4), hierdb.WithOptimizer(hierdb.OptimizerFull)}},
		{"opt-4node-tinymem", true, []hierdb.Option{hierdb.WithNodes(4), hierdb.WithWorkers(2), hierdb.WithOptimizer(hierdb.OptimizerFull), hierdb.WithMemory(tinyBudget), hierdb.WithSpillDir(t.TempDir())}},
	}
}

// diskLegs are the disk-backed engine configurations: table files
// streamed chunk-by-chunk under the same tiny budget the in-memory
// tinymem legs run with.
func diskLegs(t *testing.T) []struct {
	name string
	opts []hierdb.Option
} {
	return []struct {
		name string
		opts []hierdb.Option
	}{
		{"disk-tinymem", []hierdb.Option{hierdb.WithWorkers(4), hierdb.WithMemory(tinyBudget), hierdb.WithSpillDir(t.TempDir())}},
		{"disk-4node", []hierdb.Option{hierdb.WithNodes(4), hierdb.WithWorkers(2), hierdb.WithMemory(tinyBudget), hierdb.WithSpillDir(t.TempDir())}},
	}
}

// TestDifferentialQueries is the CI differential run: >= 25 generated
// multi-join queries, each executed under every leg and required to
// return identical row multisets. Seeds are fixed, so a failure is
// reproducible by name.
func TestDifferentialQueries(t *testing.T) {
	leaktest.Check(t, 2)
	const queries = 26
	ctx := context.Background()
	spilled := false
	ran := 0
	for qi := 0; qi < queries; qi++ {
		// 3-5 relations: deep enough for chained redistribution and
		// multiple governed builds, small enough for a tight CI loop.
		nrel := 3 + qi%3
		name := fmt.Sprintf("Q%02d", qi)
		t.Run(name, func(t *testing.T) {
			ran++
			c := Synthesize(0xD1FF+uint64(qi)*7919, name, nrel)
			ls := legs(t)
			ref, _, err := c.RunLeg(ctx, ls[0].opts...)
			if err != nil {
				t.Fatalf("%s reference leg: %v", name, err)
			}
			if len(ref) == 0 {
				t.Logf("%s: empty result (legal but uninformative)", name)
			}
			// The engine reference leg must agree with the naive
			// row-at-a-time interpreter before the engine legs are
			// compared among themselves: this anchors the whole columnar
			// pipeline to row semantics, not just to its own consistency.
			if err := DiffMultisets(ls[0].name, "row-reference", ref, c.Reference()); err != nil {
				t.Fatal(err)
			}
			for _, leg := range ls[1:] {
				run := c.RunLeg
				if leg.analyze {
					run = c.RunAnalyzedLeg
				}
				got, st, err := run(ctx, leg.opts...)
				if err != nil {
					t.Fatalf("%s leg %s: %v", name, leg.name, err)
				}
				if err := DiffMultisets(leg.name, ls[0].name, got, ref); err != nil {
					t.Fatal(err)
				}
				if st.SpillPhases > 0 {
					spilled = true
				}
			}
			// Disk-backed legs: the same case streamed from chunked table
			// files under a tiny budget, single-node and 4-node. 64-row
			// chunks make even these CI-scale relations span many chunks,
			// so chunk boundaries land mid-join everywhere.
			for _, leg := range diskLegs(t) {
				got, st, err := c.RunDiskLeg(ctx, t.TempDir(), 64, leg.opts...)
				if err != nil {
					t.Fatalf("%s leg %s: %v", name, leg.name, err)
				}
				if err := DiffMultisets(leg.name, ls[0].name, got, ref); err != nil {
					t.Fatal(err)
				}
				if st.ChunksScanned == 0 {
					t.Fatalf("%s leg %s: no chunks scanned — the leg did not stream from disk", name, leg.name)
				}
				if st.SpillPhases > 0 {
					spilled = true
				}
			}
		})
	}
	// Not every generated query is big enough to spill, so the
	// must-have-spilled assertion is aggregate — and only meaningful when
	// the full set ran (a -run filter selecting single subtests must not
	// trip it).
	if ran == queries && !spilled {
		t.Fatal("no differential leg ever spilled: the tiny-memory legs are not exercising governance")
	}
}

// TestOptimizerBeatsBadOrder is the cost-based planner's acceptance
// gate: over the differential corpus rebuilt with a deliberately bad
// (greedy largest-first) join order, the full optimizer must return the
// identical row multiset on every query and, on at least one, produce
// strictly fewer intermediate rows than the literal bad order — both
// measured from the run's per-operator Stats via Explain/Actualize.
func TestOptimizerBeatsBadOrder(t *testing.T) {
	leaktest.Check(t, 2)
	ctx := context.Background()
	const queries = 26
	improved := 0
	for qi := 0; qi < queries; qi++ {
		nrel := 3 + qi%3
		name := fmt.Sprintf("B%02d", qi)
		c := Synthesize(0xD1FF+uint64(qi)*7919, name, nrel)
		runBad := func(analyze bool, opts ...hierdb.Option) (map[string]int, int64) {
			t.Helper()
			db := hierdb.Open(opts...)
			defer db.Close()
			q, err := c.BuildBad(db)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if analyze {
				if err := c.AnalyzeAll(db); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
			p, err := q.Explain(ctx)
			if err != nil {
				t.Fatalf("%s explain: %v", name, err)
			}
			rows, st, err := q.Collect(ctx)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			p.Actualize(st)
			ir := p.IntermediateRows()
			if ir < 0 {
				t.Fatalf("%s: intermediate rows unknown after Actualize", name)
			}
			return Multiset(rows), ir
		}
		off, offIR := runBad(false, hierdb.WithWorkers(4))
		full, fullIR := runBad(true, hierdb.WithWorkers(4), hierdb.WithOptimizer(hierdb.OptimizerFull))
		if err := DiffMultisets("opt-full-bad", "off-bad", full, off); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fullIR < offIR {
			improved++
		} else if fullIR > offIR {
			t.Logf("%s: optimizer chose a worse order (%d vs %d intermediate rows)", name, fullIR, offIR)
		}
	}
	if improved == 0 {
		t.Fatal("the optimizer never reduced intermediate rows against the bad-order corpus")
	}
	t.Logf("optimizer reduced intermediate rows on %d/%d bad-order queries", improved, queries)
}

// TestSynthesizeDeterministic: the same seed must materialize identical
// tables and plans (the harness's reproducibility contract).
func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(42, "Q", 4)
	b := Synthesize(42, "Q", 4)
	if len(a.Tables) != len(b.Tables) {
		t.Fatalf("table counts differ: %d vs %d", len(a.Tables), len(b.Tables))
	}
	for i := range a.Tables {
		if len(a.Tables[i].Rows) != len(b.Tables[i].Rows) {
			t.Fatalf("table %d cardinality differs", i)
		}
		for j := range a.Tables[i].Rows {
			if fmt.Sprint(a.Tables[i].Rows[j]) != fmt.Sprint(b.Tables[i].Rows[j]) {
				t.Fatalf("table %d row %d differs", i, j)
			}
		}
	}
	got, _, err := a.RunLeg(context.Background(), hierdb.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := b.RunLeg(context.Background(), hierdb.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffMultisets("rerun", "first", got, want); err != nil {
		t.Fatal(err)
	}
}

// TestDiskJoinLargerThanMemory is the acceptance gate for governed
// disk streaming: a self-join over a table file at least 10x the
// node's memory budget must spill (SpillPhases > 0) and return the
// identical multiset to the ungoverned in-memory run, on one node and
// on four.
func TestDiskJoinLargerThanMemory(t *testing.T) {
	leaktest.Check(t, 2)
	const n = 30_000
	cols := []string{"id", "k", "payload"}
	tb := &hierdb.Table{Name: "fact", Cols: cols}
	r := xrand.New(0xD15C)
	for i := 0; i < n; i++ {
		tb.Rows = append(tb.Rows, hierdb.Row{i, r.Intn(n / 2), fmt.Sprintf("payload-%08d", i)})
	}
	path := filepath.Join(t.TempDir(), "fact.hdb")
	if err := store.WriteTable(path, cols, 1024, tb.Rows); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	budget := fi.Size() / 10
	t.Logf("file %d bytes, budget %d bytes", fi.Size(), budget)

	ctx := context.Background()
	selfJoin := func(db *hierdb.DB, governed bool) map[string]int {
		t.Helper()
		rows, st, err := db.Scan("fact").Join(db.Scan("fact"), hierdb.KeyCol(1), hierdb.KeyCol(1)).Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if governed {
			if st.SpillPhases == 0 {
				t.Fatalf("10x-over-budget join never spilled: %+v", st)
			}
			if st.DiskBytesRead == 0 {
				t.Fatalf("file-backed join read no chunk bytes: %+v", st)
			}
		}
		return Multiset(rows)
	}

	memDB := hierdb.Open(hierdb.WithWorkers(4))
	defer memDB.Close()
	if err := memDB.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	want := selfJoin(memDB, false)

	for _, leg := range []struct {
		name string
		opts []hierdb.Option
	}{
		{"disk-1node", []hierdb.Option{hierdb.WithWorkers(4)}},
		{"disk-4node", []hierdb.Option{hierdb.WithNodes(4), hierdb.WithWorkers(2)}},
	} {
		t.Run(leg.name, func(t *testing.T) {
			opts := append(leg.opts, hierdb.WithMemory(budget), hierdb.WithSpillDir(t.TempDir()))
			db := hierdb.Open(opts...)
			defer db.Close()
			if err := db.RegisterTableFile("fact", path); err != nil {
				t.Fatal(err)
			}
			if err := DiffMultisets(leg.name, "in-memory", selfJoin(db, true), want); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiffMultisetsReportsDivergence: the comparator itself must catch
// and describe differences (count drift, missing and extra rows).
func TestDiffMultisetsReportsDivergence(t *testing.T) {
	want := map[string]int{"[1 a]": 2, "[2 b]": 1}
	if err := DiffMultisets("x", "ref", map[string]int{"[1 a]": 2, "[2 b]": 1}, want); err != nil {
		t.Fatalf("identical multisets diverged: %v", err)
	}
	cases := []map[string]int{
		{"[1 a]": 1, "[2 b]": 1},              // count drift
		{"[1 a]": 2},                          // missing row
		{"[1 a]": 2, "[2 b]": 1, "[3 c]": 1},  // extra row
		{"[1 a]": 2, "[2 b]": 1, "[3 c]": -1}, // corrupt count
	}
	for i, got := range cases {
		if err := DiffMultisets("x", "ref", got, want); err == nil {
			t.Fatalf("case %d: divergence undetected", i)
		}
	}
}
