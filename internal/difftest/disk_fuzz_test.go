package difftest

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"hierdb"
	"hierdb/internal/leaktest"
	"hierdb/internal/store"
	"hierdb/internal/xrand"
)

// FuzzTableFileRoundTrip writes a randomly shaped relation — random
// column kinds (including constant columns, whose every chunk has
// min==max zones, and all-null columns), random null density, random
// chunk size — to a table file, streams it back through the engine,
// and requires the multiset to match the source rows exactly. A
// second scan applies a random range predicate to both the file and
// an in-memory twin: any zone map that over-prunes diverges here.
func FuzzTableFileRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(100), uint8(4), uint8(16), uint8(30))      // mixed kinds, modest chunks, some nulls
	f.Add(uint64(2), uint16(1), uint8(1), uint8(1), uint8(0))          // single row: every chunk zone has min==max
	f.Add(uint64(3), uint16(200), uint8(3), uint8(64), uint8(255))     // null-saturated: all-null columns and chunks
	f.Add(uint64(0xC0457), uint16(500), uint8(6), uint8(7), uint8(40)) // odd chunk size, null-heavy
	f.Add(uint64(5)<<32|9, uint16(300), uint8(2), uint8(64), uint8(0)) // constant columns across many chunks
	f.Fuzz(func(t *testing.T, seed uint64, nrows16 uint16, ncols8, chunk8, nullDen uint8) {
		leaktest.Check(t, 2)
		nrows := int(nrows16) % 2000
		ncols := int(ncols8)%6 + 1
		chunkRows := int(chunk8)%512 + 1
		r := xrand.New(seed)

		// Per-column value generators; kind 3 is a constant column
		// (min==max in every chunk zone), kind 4 is all-null, kind 5
		// mixes ints and strings so the column degrades to a boxed kind.
		kinds := make([]int, ncols)
		cols := make([]string, ncols)
		for i := range kinds {
			kinds[i] = r.Intn(6)
			cols[i] = fmt.Sprintf("c%d", i)
		}
		cell := func(ci int) any {
			if kinds[ci] != 3 && kinds[ci] != 4 && nullDen > 0 && r.Intn(256) < int(nullDen) {
				return nil
			}
			switch kinds[ci] {
			case 0:
				return r.Intn(1000) - 500
			case 1:
				if r.Intn(64) == 0 {
					return math.NaN()
				}
				return float64(r.Intn(4000))/8 - 250
			case 2:
				return fmt.Sprintf("v%03d", r.Intn(500))
			case 3:
				return 42
			case 4:
				return nil
			default:
				if r.Intn(2) == 0 {
					return r.Intn(100)
				}
				return fmt.Sprintf("m%02d", r.Intn(100))
			}
		}
		rows := make([]hierdb.Row, nrows)
		for i := range rows {
			row := make(hierdb.Row, ncols)
			for ci := range row {
				row[ci] = cell(ci)
			}
			rows[i] = row
		}

		path := filepath.Join(t.TempDir(), "fuzz.hdb")
		if err := store.WriteTable(path, cols, chunkRows, rows); err != nil {
			t.Fatal(err)
		}
		db := hierdb.Open(hierdb.WithWorkers(2))
		defer db.Close()
		if err := db.RegisterTableFile("f", path); err != nil {
			t.Fatal(err)
		}
		mem := &hierdb.Table{Name: "m", Cols: cols, Rows: rows}
		if err := db.RegisterTable(mem); err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()

		got, _, err := db.Scan("f").Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := DiffMultisets("file-scan", "source-rows", Multiset(got), Multiset(rows)); err != nil {
			t.Fatal(err)
		}

		// Random range predicate on a random column: the file scan may
		// prune chunks, the in-memory scan cannot — the multisets must
		// still agree (zone-map soundness under every generated shape).
		pc := r.Intn(ncols)
		preds := []hierdb.Pred{
			{Col: pc, Op: hierdb.Ge, Val: r.Intn(1000) - 500},
			{Col: pc, Op: hierdb.NotNull},
		}
		if kinds[pc] == 2 || kinds[pc] == 5 {
			preds[0] = hierdb.Pred{Col: pc, Op: hierdb.Lt, Val: fmt.Sprintf("v%03d", r.Intn(500))}
		}
		fGot, _, err := db.Scan("f").Where(preds...).Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		mGot, _, err := db.Scan("m").Where(preds...).Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := DiffMultisets("file-pred-scan", "memory-pred-scan", Multiset(fGot), Multiset(mGot)); err != nil {
			t.Fatal(err)
		}
	})
}
