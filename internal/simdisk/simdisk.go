// Package simdisk models the disks of an SM-node with the parameters of
// §5.1.1 of the paper: one disk per processor, 17 ms latency, 5 ms seek,
// 6 MB/s transfer rate, a 5000-instruction asynchronous-I/O initiation cost
// and an 8-page I/O cache.
//
// The interface is poll-based to match the paper's asynchronous-I/O code
// sketch (§4 Activation Execution): a thread initiates a multi-page read and
// then repeatedly calls TryRead; while a page is not yet available the
// thread processes other activations instead of blocking.
package simdisk

import "hierdb/internal/simtime"

// Params are the disk parameters. Defaults mirror the paper's table.
type Params struct {
	// Seek is the seek time charged once per request (paper: 5 ms).
	Seek simtime.Duration
	// Latency is the rotational latency charged once per request
	// (paper: 17 ms).
	Latency simtime.Duration
	// TransferRate is the sustained transfer rate in bytes per virtual
	// second (paper: 6 MB/s).
	TransferRate int64
	// InitInstr is the CPU cost, in instructions, of initiating an
	// asynchronous I/O (paper: 5000). Charged by the caller.
	InitInstr int64
	// CachePages is the size of the per-request I/O cache (prefetch
	// window) in pages (paper: 8).
	CachePages int
	// PageSize is the page size in bytes (8 KB, implied by the network
	// cost table).
	PageSize int64
}

// DefaultParams returns the paper's disk parameter table.
func DefaultParams() Params {
	return Params{
		Seek:         5 * simtime.Millisecond,
		Latency:      17 * simtime.Millisecond,
		TransferRate: 6 << 20,
		InitInstr:    5000,
		CachePages:   8,
		PageSize:     8192,
	}
}

// PageTransfer returns the time to transfer one page.
func (p Params) PageTransfer() simtime.Duration {
	return simtime.Duration(p.PageSize * int64(simtime.Second) / p.TransferRate)
}

// Stats accumulates per-disk counters.
type Stats struct {
	Requests  int64
	PagesRead int64
	// Busy is the total time the disk arm/channel was occupied.
	Busy simtime.Duration
}

// Disk is a single simulated disk unit. Requests are serialized in FIFO
// order on the disk (busyUntil): a request issued while the disk is busy
// starts when the previous transfers complete.
type Disk struct {
	k         *simtime.Kernel
	params    Params
	busyUntil simtime.Time
	stats     Stats
}

// New returns a disk attached to k.
func New(k *simtime.Kernel, p Params) *Disk {
	return &Disk{k: k, params: p}
}

// Params returns the disk parameters.
func (d *Disk) Params() Params { return d.params }

// Stats returns a copy of the accumulated counters.
func (d *Disk) Stats() Stats { return d.stats }

// Request is an in-flight asynchronous multi-page read.
type Request struct {
	disk  *Disk
	pages int
	// ready[i] is the earliest virtual time page i can be consumed,
	// before accounting for the prefetch window.
	ready []simtime.Time
	// consumedAt[i] is when page i was consumed (for the window).
	consumedAt []simtime.Time
	consumed   int
}

// StartRead initiates an asynchronous read of pages pages. The caller must
// separately charge Params().InitInstr of CPU to the issuing processor.
// pages must be positive.
func (d *Disk) StartRead(pages int) *Request {
	if pages <= 0 {
		panic("simdisk: StartRead with non-positive page count")
	}
	now := d.k.Now()
	start := d.busyUntil
	if start < now {
		start = now
	}
	pt := d.params.PageTransfer()
	r := &Request{
		disk:       d,
		pages:      pages,
		ready:      make([]simtime.Time, pages),
		consumedAt: make([]simtime.Time, pages),
	}
	first := start + d.params.Seek + d.params.Latency
	for i := 0; i < pages; i++ {
		r.ready[i] = first + simtime.Duration(i+1)*pt
	}
	d.busyUntil = r.ready[pages-1]
	d.stats.Requests++
	d.stats.PagesRead += int64(pages)
	d.stats.Busy += d.busyUntil - start
	return r
}

// availableAt returns the earliest time the next unconsumed page can be
// read, folding in the prefetch-window constraint: the disk cannot be more
// than CachePages ahead of the consumer, so page i only becomes available
// one page-transfer after page i-CachePages was consumed.
func (r *Request) availableAt() simtime.Time {
	i := r.consumed
	t := r.ready[i]
	if w := r.disk.params.CachePages; i >= w {
		stall := r.consumedAt[i-w] + r.disk.params.PageTransfer()
		if stall > t {
			t = stall
		}
	}
	return t
}

// TryRead consumes the next page if it is available at the current virtual
// time. It returns true when a page was consumed, false when the page is
// not ready yet or the request is complete (check Done to distinguish).
func (r *Request) TryRead() bool {
	if r.Done() {
		return false
	}
	now := r.disk.k.Now()
	if r.availableAt() > now {
		return false
	}
	r.consumedAt[r.consumed] = now
	r.consumed++
	return true
}

// NextReadyAt returns the virtual time at which the next page becomes
// available. It panics if the request is already complete.
func (r *Request) NextReadyAt() simtime.Time {
	if r.Done() {
		panic("simdisk: NextReadyAt on completed request")
	}
	return r.availableAt()
}

// Done reports whether every page has been consumed.
func (r *Request) Done() bool { return r.consumed >= r.pages }

// Pages returns the request size in pages.
func (r *Request) Pages() int { return r.pages }

// Consumed returns how many pages have been consumed so far.
func (r *Request) Consumed() int { return r.consumed }
