package simdisk

import (
	"testing"

	"hierdb/internal/simtime"
)

func TestDefaultParamsMatchPaperTable(t *testing.T) {
	p := DefaultParams()
	if p.Seek != 5*simtime.Millisecond {
		t.Errorf("Seek = %v", p.Seek)
	}
	if p.Latency != 17*simtime.Millisecond {
		t.Errorf("Latency = %v", p.Latency)
	}
	if p.TransferRate != 6<<20 {
		t.Errorf("TransferRate = %d", p.TransferRate)
	}
	if p.InitInstr != 5000 {
		t.Errorf("InitInstr = %d", p.InitInstr)
	}
	if p.CachePages != 8 {
		t.Errorf("CachePages = %d", p.CachePages)
	}
}

func TestSinglePageTiming(t *testing.T) {
	k := simtime.NewKernel()
	d := New(k, DefaultParams())
	var readAt simtime.Time
	k.Spawn("reader", func(p *simtime.Proc) {
		r := d.StartRead(1)
		for !r.TryRead() {
			p.Delay(r.NextReadyAt() - p.Now())
		}
		readAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 5*simtime.Millisecond + 17*simtime.Millisecond + DefaultParams().PageTransfer()
	if readAt != want {
		t.Fatalf("first page at %v, want %v", readAt, want)
	}
}

func TestFIFOSerialization(t *testing.T) {
	k := simtime.NewKernel()
	d := New(k, DefaultParams())
	r1 := d.StartRead(4)
	r2 := d.StartRead(1)
	// r2's page must come after all of r1's transfers.
	if r2.NextReadyAt() <= r1.ready[3] {
		t.Fatalf("second request overlaps first: %v <= %v", r2.NextReadyAt(), r1.ready[3])
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchWindowStallsSlowConsumer(t *testing.T) {
	p := DefaultParams()
	p.CachePages = 2
	k := simtime.NewKernel()
	d := New(k, p)
	var times []simtime.Time
	k.Spawn("slow", func(pr *simtime.Proc) {
		r := d.StartRead(6)
		for !r.Done() {
			for !r.TryRead() {
				pr.Delay(r.NextReadyAt() - pr.Now())
			}
			times = append(times, pr.Now())
			pr.Delay(50 * simtime.Millisecond) // much slower than the disk
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 6 {
		t.Fatalf("read %d pages", len(times))
	}
	// With a window of 2 and a 50ms consumer, page i (i>=2) cannot be
	// available before page i-2 was consumed.
	for i := 2; i < 6; i++ {
		if times[i] < times[i-2]+p.PageTransfer() {
			t.Fatalf("page %d at %v violates window (page %d consumed at %v)",
				i, times[i], i-2, times[i-2])
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	k := simtime.NewKernel()
	d := New(k, DefaultParams())
	d.StartRead(3)
	d.StartRead(2)
	s := d.Stats()
	if s.Requests != 2 || s.PagesRead != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Busy <= 0 {
		t.Fatalf("busy = %v", s.Busy)
	}
}

func TestTryReadBeforeReady(t *testing.T) {
	k := simtime.NewKernel()
	d := New(k, DefaultParams())
	done := false
	k.Spawn("p", func(pr *simtime.Proc) {
		r := d.StartRead(1)
		if r.TryRead() {
			t.Error("TryRead succeeded at time 0")
		}
		pr.Delay(r.NextReadyAt() - pr.Now())
		if !r.TryRead() {
			t.Error("TryRead failed at ready time")
		}
		if !r.Done() {
			t.Error("request not done after last page")
		}
		if r.TryRead() {
			t.Error("TryRead succeeded on completed request")
		}
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("proc did not finish")
	}
}

func TestStartReadPanicsOnZeroPages(t *testing.T) {
	k := simtime.NewKernel()
	d := New(k, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.StartRead(0)
}
