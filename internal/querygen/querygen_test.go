package querygen

import (
	"testing"
	"testing/quick"

	"hierdb/internal/xrand"
)

func TestGenerateValid(t *testing.T) {
	r := xrand.New(17)
	for i := 0; i < 50; i++ {
		q := Generate(r, "q", DefaultParams(4))
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		if len(q.Relations) != 12 || len(q.Edges) != 11 {
			t.Fatalf("query %d shape: %d relations, %d edges", i, len(q.Relations), len(q.Edges))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	q1 := Generate(xrand.New(5), "q", DefaultParams(2))
	q2 := Generate(xrand.New(5), "q", DefaultParams(2))
	for i := range q1.Relations {
		if q1.Relations[i].Cardinality != q2.Relations[i].Cardinality {
			t.Fatal("cardinalities differ across identical seeds")
		}
	}
	for i := range q1.Edges {
		if q1.Edges[i] != q2.Edges[i] {
			t.Fatal("edges differ across identical seeds")
		}
	}
}

func TestSelectivityMakesBoundedResults(t *testing.T) {
	r := xrand.New(23)
	q := Generate(r, "q", DefaultParams(1))
	for _, e := range q.Edges {
		ra, rb := q.Relations[e.A], q.Relations[e.B]
		max := ra.Cardinality
		if rb.Cardinality > max {
			max = rb.Cardinality
		}
		result := e.Selectivity * float64(ra.Cardinality) * float64(rb.Cardinality)
		lo, hi := 0.5*float64(max), 1.5*float64(max)
		if result < lo-1 || result > hi+1 {
			t.Fatalf("edge result %.0f outside [%.0f, %.0f]", result, lo, hi)
		}
	}
}

func TestGraphIsTreeQuick(t *testing.T) {
	f := func(seed uint64, relsRaw uint8) bool {
		p := DefaultParams(2)
		p.Relations = int(relsRaw%11) + 2
		q := Generate(xrand.New(seed), "q", p)
		return q.Validate() == nil && q.NumJoins() == p.Relations-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBrokenQueries(t *testing.T) {
	r := xrand.New(3)
	q := Generate(r, "q", DefaultParams(1))

	disconnected := *q
	disconnected.Edges = append([]Edge(nil), q.Edges...)
	disconnected.Edges[0] = disconnected.Edges[1] // duplicate edge, leaves a vertex unreached
	if err := disconnected.Validate(); err == nil {
		t.Error("disconnected graph accepted")
	}

	badSel := *q
	badSel.Edges = append([]Edge(nil), q.Edges...)
	badSel.Edges[0].Selectivity = 0
	if err := badSel.Validate(); err == nil {
		t.Error("zero selectivity accepted")
	}

	tooFew := &Query{Name: "x"}
	if err := tooFew.Validate(); err == nil {
		t.Error("empty query accepted")
	}
}

func TestClassWeightsBias(t *testing.T) {
	p := DefaultParams(1)
	p.ClassWeights = [3]float64{1, 0, 0} // all small
	q := Generate(xrand.New(9), "q", p)
	for _, rel := range q.Relations {
		if rel.Cardinality > 20_000 {
			t.Fatalf("non-small relation with small-only weights: %d", rel.Cardinality)
		}
	}
}

func TestGenerateGatedAccepts(t *testing.T) {
	r := xrand.New(31)
	calls := 0
	q := GenerateGated(r, "q", DefaultParams(1), 10, func(q *Query) (bool, float64) {
		calls++
		return calls == 3, 1
	})
	if calls != 3 {
		t.Fatalf("accept called %d times", calls)
	}
	if q == nil {
		t.Fatal("nil query")
	}
}

func TestGenerateGatedFallsBackToClosest(t *testing.T) {
	r := xrand.New(31)
	best := 0
	q := GenerateGated(r, "q", DefaultParams(1), 5, func(q *Query) (bool, float64) {
		best++
		return false, float64(10 - best) // last is closest
	})
	if q == nil {
		t.Fatal("nil query on fallback")
	}
}
