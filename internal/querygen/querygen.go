// Package querygen generates random multi-join queries following the
// methodology of §5.1.2 of the paper, which in turn follows [Shekita93]:
//
//   - the predicate connection graph is a random acyclic connected graph
//     (multi-join queries in practice have simple predicates);
//   - each relation's cardinality is drawn from one of the small, medium or
//     large ranges;
//   - the join selectivity of each edge (R,S) is drawn so that the join
//     result has between 0.5x and 1.5x the cardinality of the larger
//     operand;
//   - queries are kept only if their estimated sequential response time
//     falls inside a window (the paper uses 30-60 minutes).
package querygen

import (
	"fmt"

	"hierdb/internal/catalog"
	"hierdb/internal/xrand"
)

// Edge is one join predicate between two relations, identified by their
// indices in Query.Relations.
type Edge struct {
	A, B int
	// Selectivity is the join selectivity factor: |R join S| =
	// Selectivity * |R| * |S|.
	Selectivity float64
}

// Query is a multi-join query: relations plus an acyclic connected
// predicate graph.
type Query struct {
	// Name identifies the query in reports (Q01, Q02, ...).
	Name      string
	Relations []*catalog.Relation
	Edges     []Edge
}

// NumJoins returns the number of join predicates.
func (q *Query) NumJoins() int { return len(q.Edges) }

// Validate checks structural invariants: the graph must be connected and
// acyclic (exactly n-1 edges reaching every relation), selectivities
// positive, relations valid.
func (q *Query) Validate() error {
	n := len(q.Relations)
	if n < 2 {
		return fmt.Errorf("querygen: %s: %d relations", q.Name, n)
	}
	for _, r := range q.Relations {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	if len(q.Edges) != n-1 {
		return fmt.Errorf("querygen: %s: %d edges for %d relations (graph must be a tree)", q.Name, len(q.Edges), n)
	}
	adj := make([][]int, n)
	for i, e := range q.Edges {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n || e.A == e.B {
			return fmt.Errorf("querygen: %s: edge %d joins %d,%d", q.Name, i, e.A, e.B)
		}
		if e.Selectivity <= 0 {
			return fmt.Errorf("querygen: %s: edge %d selectivity %g", q.Name, i, e.Selectivity)
		}
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	if count != n {
		return fmt.Errorf("querygen: %s: graph not connected (%d of %d reachable)", q.Name, count, n)
	}
	return nil
}

// Params controls generation.
type Params struct {
	// Relations is the number of relations per query (paper: 12).
	Relations int
	// Nodes is the number of SM-nodes every relation is partitioned
	// across.
	Nodes int
	// ClassWeights gives the relative probability of drawing each size
	// class, indexed by catalog.SizeClass. The zero value means uniform.
	ClassWeights [3]float64
}

// DefaultParams matches the paper: 12 relations, uniform class mix.
func DefaultParams(nodes int) Params {
	return Params{Relations: 12, Nodes: nodes}
}

// Generate draws one random query. Determinism: the result depends only on
// r's state and p.
func Generate(r *xrand.Rand, name string, p Params) *Query {
	if p.Relations < 2 {
		panic("querygen: need at least two relations")
	}
	if p.Nodes < 1 {
		panic("querygen: need at least one node")
	}
	w := p.ClassWeights
	if w[0] == 0 && w[1] == 0 && w[2] == 0 {
		w = [3]float64{1, 1, 1}
	}
	home := catalog.AllNodes(p.Nodes)
	q := &Query{Name: name}
	for i := 0; i < p.Relations; i++ {
		class := drawClass(r, w)
		rel := catalog.Random(r, fmt.Sprintf("%s_R%02d", name, i), class, home)
		q.Relations = append(q.Relations, rel)
	}
	// Random spanning tree: attach each new vertex to a uniformly chosen
	// earlier vertex, then relabel with a random permutation so the tree
	// shape is unbiased with respect to relation sizes.
	perm := r.Perm(p.Relations)
	for i := 1; i < p.Relations; i++ {
		j := r.Intn(i)
		a, b := perm[i], perm[j]
		ra, rb := q.Relations[a], q.Relations[b]
		max := ra.Cardinality
		if rb.Cardinality > max {
			max = rb.Cardinality
		}
		// Result cardinality uniform in [0.5, 1.5] x the larger operand
		// (§5.1.2).
		sel := r.Range(0.5, 1.5) * float64(max) / (float64(ra.Cardinality) * float64(rb.Cardinality))
		q.Edges = append(q.Edges, Edge{A: a, B: b, Selectivity: sel})
	}
	return q
}

func drawClass(r *xrand.Rand, w [3]float64) catalog.SizeClass {
	total := w[0] + w[1] + w[2]
	u := r.Float64() * total
	switch {
	case u < w[0]:
		return catalog.Small
	case u < w[0]+w[1]:
		return catalog.Medium
	default:
		return catalog.Large
	}
}

// Estimator computes an estimated sequential response time for a query, in
// arbitrary but consistent units. It is supplied by the optimizer package
// (kept as an interface here to avoid an import cycle).
type Estimator interface {
	SequentialCost(q *Query) float64
}

// GenerateGated draws queries until accept returns true, or maxAttempts is
// reached, in which case the closest-to-accepted query drawn is returned.
// The paper gates on sequential response time between 30 and 60 minutes.
func GenerateGated(r *xrand.Rand, name string, p Params, maxAttempts int, accept func(*Query) (ok bool, distance float64)) *Query {
	var best *Query
	bestDist := 0.0
	for i := 0; i < maxAttempts; i++ {
		q := Generate(r, name, p)
		ok, dist := accept(q)
		if ok {
			return q
		}
		if best == nil || dist < bestDist {
			best, bestDist = q, dist
		}
	}
	return best
}
