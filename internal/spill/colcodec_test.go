package spill

import (
	"reflect"
	"sync"
	"testing"

	"hierdb/internal/vec"
)

func colFile(t *testing.T) *File {
	t.Helper()
	f, err := Create(t.TempDir(), "cols")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func materialize(t *testing.T, b *vec.Batch) []Row {
	t.Helper()
	var a vec.Arena
	return b.AppendRows(nil, &a)
}

func TestColCodecRoundTrip(t *testing.T) {
	cases := [][]Row{
		{{1, "a", 1.5, true, int64(-9), uint64(7), int32(3)}, {2, "b", 2.5, false, int64(8), uint64(0), int32(-1)}},
		{{nil, "x"}, {4, nil}, {nil, nil}},
		{{1}, {2, "ragged"}, {3}},
		{{"only"}, {"strings"}, {""}},
		{{true}, {nil}, {false}},
		{{1, 2.5}, {"mixed", true}}, // Any columns
	}
	f := colFile(t)
	var refs []Ref
	for _, rows := range cases {
		ref, err := f.AppendCols(vec.FromRows(rows))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	for i, rows := range cases {
		got, err := f.ReadCols(refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(materialize(t, got), rows) {
			t.Fatalf("case %d: got %v want %v", i, materialize(t, got), rows)
		}
	}
}

func TestColCodecHonorsSelection(t *testing.T) {
	rows := []Row{{0, "a"}, {1, "b"}, {2, "c"}, {3, "d"}}
	b := vec.FromRows(rows)
	var a vec.Arena
	view := vec.Select(b, []int32{3, 1}, &a)
	f := colFile(t)
	ref, err := f.AppendCols(view)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadCols(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{3, "d"}, {1, "b"}}
	if !reflect.DeepEqual(materialize(t, got), want) {
		t.Fatalf("got %v want %v", materialize(t, got), want)
	}
}

func TestColCodecKindsSurvive(t *testing.T) {
	rows := []Row{{1, "a", 2.5, true, uint64(9)}, {nil, "b", nil, nil, uint64(1)}}
	f := colFile(t)
	ref, err := f.AppendCols(vec.FromRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadCols(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := []vec.Kind{vec.Int, vec.String, vec.Float64, vec.Bool, vec.Uint64}
	for i, k := range want {
		if got.Cols[i].Kind != k {
			t.Fatalf("col %d: kind %v want %v", i, got.Cols[i].Kind, k)
		}
	}
	if !got.Cols[0].NullAt(1) || got.Cols[0].NullAt(0) {
		t.Fatal("null bitmap lost in round trip")
	}
}

func TestColCodecUnsupportedType(t *testing.T) {
	f := colFile(t)
	_, err := f.AppendCols(vec.FromRows([]Row{{struct{ X int }{1}}}))
	if err == nil {
		t.Fatal("expected unsupported-type error")
	}
}

// TestColCodecConcurrentReads exercises the Ref/ReadAt contract: once
// appends stop, any number of readers may decode any batch in parallel.
func TestColCodecConcurrentReads(t *testing.T) {
	f := colFile(t)
	var batches [][]Row
	var refs []Ref
	for i := 0; i < 16; i++ {
		var rows []Row
		for j := 0; j < 64; j++ {
			rows = append(rows, Row{i*64 + j, "p", float64(j) / 2})
		}
		ref, err := f.AppendCols(vec.FromRows(rows))
		if err != nil {
			t.Fatal(err)
		}
		batches, refs = append(batches, rows), append(refs, ref)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, ref := range refs {
				got, err := f.ReadCols(ref)
				if err != nil {
					errs <- err
					return
				}
				var a vec.Arena
				if !reflect.DeepEqual(got.AppendRows(nil, &a), batches[i]) {
					errs <- errMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = errBatch("columnar batch mismatch under concurrent reads")

type errBatch string

func (e errBatch) Error() string { return string(e) }
