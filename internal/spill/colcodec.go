// Columnar spill codec: the per-batch encoding used by the vectorized
// engine. Where the row codec (Append/ReadBatch) spends one type tag
// per value, this codec spends one kind byte per column per batch —
// a typed column's values are encoded back to back with no per-value
// framing beyond the varint payloads themselves, and nulls are hoisted
// into one packed bitmap per column. Batches written with AppendCols
// must be read with ReadCols (and vice versa); the engine never mixes
// codecs within one file.
//
// Per-batch layout:
//
//	uvarint nrows, uvarint ncols
//	per column:
//	  kind byte (vec.Kind numeric value — part of the on-disk format)
//	  null byte (0/1); if 1, packed little-endian bitmap of ceil(n/8)
//	    bytes over logical row order
//	  payload, non-null rows only, in logical order:
//	    int family  varint     (uint64 as uvarint of the bit pattern)
//	    float64     8 bytes LE
//	    bool        packed bitmap, ceil(count/8) bytes
//	    string      uvarint length + bytes
//	    any         row-codec value tags (plus tagAbsent for ragged
//	                padding), one per value
package spill

import (
	"encoding/binary"
	"fmt"
	"math"
	"path/filepath"

	"hierdb/internal/vec"
)

// tagAbsent marks ragged-row padding inside an Any column payload. It
// extends the row-codec tag space and is only valid in columnar
// batches.
const tagAbsent = 9

// EncodeCols appends the columnar encoding of one batch (logical rows,
// honoring each column's selection vector) to buf and returns the
// extended slice. It is the byte-level half of AppendCols, exported so
// other on-disk formats (internal/store's table files) can embed the
// identical chunk encoding without going through a spill File.
func EncodeCols(buf []byte, b *vec.Batch) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(b.N))
	buf = binary.AppendUvarint(buf, uint64(len(b.Cols)))
	var err error
	for ci := range b.Cols {
		if buf, err = appendCol(buf, &b.Cols[ci], b.N); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeCols decodes one EncodeCols-encoded batch of the given row
// count into a dense columnar batch. The byte-level half of ReadCols,
// exported for the same reason as EncodeCols. Trailing bytes after the
// batch are an error — a chunk boundary is exact.
func DecodeCols(buf []byte, rows int) (*vec.Batch, error) {
	if rows == 0 {
		return &vec.Batch{}, nil
	}
	n, w := binary.Uvarint(buf)
	if w <= 0 || n != uint64(rows) {
		return nil, fmt.Errorf("corrupt batch header (got %d rows, expected %d)", n, rows)
	}
	buf = buf[w:]
	ncols, w := binary.Uvarint(buf)
	if w <= 0 || ncols > uint64(len(buf)) {
		return nil, fmt.Errorf("corrupt column count")
	}
	buf = buf[w:]
	b := &vec.Batch{Cols: make([]vec.Col, ncols), N: rows}
	for ci := range b.Cols {
		var err error
		if buf, err = decodeCol(buf, &b.Cols[ci], rows); err != nil {
			return nil, err
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after batch", len(buf))
	}
	return b, nil
}

// AppendCols encodes one columnar batch (logical rows, honoring each
// column's selection vector) and writes it to the file, returning its
// Ref. Safe for concurrent callers.
func (s *File) AppendCols(b *vec.Batch) (Ref, error) {
	if b == nil || b.N == 0 {
		return Ref{}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, err := EncodeCols(s.buf[:0], b)
	if err != nil {
		return Ref{}, err
	}
	s.buf = buf
	if _, err := s.f.Write(buf); err != nil {
		return Ref{}, fmt.Errorf("spill: write %s: %w", filepath.Base(s.path), err)
	}
	ref := Ref{Off: s.off, Len: int64(len(buf)), Rows: b.N}
	s.refs = append(s.refs, ref)
	s.off += ref.Len
	s.rows += int64(b.N)
	return ref, nil
}

//hierdb:hotpath
func appendCol(buf []byte, c *vec.Col, n int) ([]byte, error) {
	buf = append(buf, byte(c.Kind))
	// Null bitmap over logical rows (the column's own bitmap is over
	// storage positions; re-project through the selection).
	nulls := false
	for i := 0; i < n; i++ {
		if c.NullAt(c.Pos(i)) {
			nulls = true
			break
		}
	}
	if nulls {
		buf = append(buf, 1)
		base := len(buf)
		for i := 0; i < (n+7)/8; i++ {
			buf = append(buf, 0)
		}
		for i := 0; i < n; i++ {
			if c.NullAt(c.Pos(i)) {
				buf[base+i/8] |= 1 << (uint(i) & 7)
			}
		}
	} else {
		buf = append(buf, 0)
	}
	switch c.Kind {
	case vec.Int, vec.Int32, vec.Int64:
		for i := 0; i < n; i++ {
			pos := c.Pos(i)
			if !c.NullAt(pos) {
				buf = binary.AppendVarint(buf, c.I64[pos])
			}
		}
	case vec.Uint64:
		for i := 0; i < n; i++ {
			pos := c.Pos(i)
			if !c.NullAt(pos) {
				buf = binary.AppendUvarint(buf, uint64(c.I64[pos]))
			}
		}
	case vec.Float64:
		for i := 0; i < n; i++ {
			pos := c.Pos(i)
			if !c.NullAt(pos) {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.F64[pos]))
			}
		}
	case vec.Bool:
		base := len(buf)
		cnt := 0
		for i := 0; i < n; i++ {
			pos := c.Pos(i)
			if c.NullAt(pos) {
				continue
			}
			if cnt%8 == 0 {
				buf = append(buf, 0)
			}
			if c.B[pos] {
				buf[base+cnt/8] |= 1 << (uint(cnt) & 7)
			}
			cnt++
		}
	case vec.String:
		for i := 0; i < n; i++ {
			pos := c.Pos(i)
			if !c.NullAt(pos) {
				s := c.Str[pos]
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
		}
	case vec.Any:
		var err error
		for i := 0; i < n; i++ {
			v := c.Box[c.Pos(i)]
			if v == nil {
				continue // carried by the bitmap
			}
			if vec.IsAbsent(v) {
				buf = append(buf, tagAbsent)
				continue
			}
			if buf, err = appendValue(buf, v); err != nil {
				return nil, err
			}
		}
	default:
		//hierdb:ignore hotpath cold error path, only reached on a corrupt in-memory batch
		return nil, fmt.Errorf("spill: unknown column kind %d", c.Kind)
	}
	return buf, nil
}

// appendValue encodes one boxed value with a row-codec tag — the Any
// column payload shares the row codec's value encoding.
func appendValue(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case bool:
		if x {
			buf = append(buf, tagTrue)
		} else {
			buf = append(buf, tagFalse)
		}
	case int:
		buf = append(buf, tagInt)
		buf = binary.AppendVarint(buf, int64(x))
	case int32:
		buf = append(buf, tagInt32)
		buf = binary.AppendVarint(buf, int64(x))
	case int64:
		buf = append(buf, tagInt64)
		buf = binary.AppendVarint(buf, x)
	case uint64:
		buf = append(buf, tagUint64)
		buf = binary.AppendUvarint(buf, x)
	case float64:
		buf = append(buf, tagFloat64)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	case string:
		buf = append(buf, tagString)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		buf = append(buf, x...)
	default:
		return nil, fmt.Errorf("spill: unsupported column type %T (supported: nil, bool, int, int32, int64, uint64, float64, string)", v)
	}
	return buf, nil
}

// ReadCols decodes a batch written by AppendCols into a dense columnar
// batch. Safe for concurrent callers once appends have stopped.
func (s *File) ReadCols(ref Ref) (*vec.Batch, error) {
	if ref.Rows == 0 {
		return &vec.Batch{}, nil
	}
	buf := make([]byte, ref.Len)
	if _, err := s.f.ReadAt(buf, ref.Off); err != nil {
		return nil, fmt.Errorf("spill: read %s: %w", filepath.Base(s.path), err)
	}
	b, err := DecodeCols(buf, ref.Rows)
	if err != nil {
		return nil, fmt.Errorf("spill: %s: %w", filepath.Base(s.path), err)
	}
	return b, nil
}

// decodeCol is deliberately not a //hierdb:hotpath function: decoding
// rebuilds the authoritative Box mirror, and that re-boxing is a
// sanctioned allocation site (like the vec→Row boundary) — the codec's
// hot invariants are enforced on the encode side instead.
func decodeCol(buf []byte, c *vec.Col, n int) ([]byte, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("truncated column header")
	}
	c.Kind = vec.Kind(buf[0])
	hasNulls := buf[1] == 1
	buf = buf[2:]
	var nulls []byte
	if hasNulls {
		nb := (n + 7) / 8
		if len(buf) < nb {
			return nil, fmt.Errorf("truncated null bitmap")
		}
		nulls = buf[:nb]
		buf = buf[nb:]
	}
	isNull := func(i int) bool {
		return nulls != nil && nulls[i/8]&(1<<(uint(i)&7)) != 0
	}
	c.Box = make([]any, n)
	switch c.Kind {
	case vec.Int, vec.Int32, vec.Int64, vec.Uint64:
		c.I64 = make([]int64, n)
	case vec.Float64:
		c.F64 = make([]float64, n)
	case vec.Bool:
		c.B = make([]bool, n)
	case vec.String:
		c.Str = make([]string, n)
	case vec.Any:
	default:
		return nil, fmt.Errorf("unknown column kind %d", c.Kind)
	}
	boolCnt := 0
	var boolBits []byte
	if c.Kind == vec.Bool {
		// The bool payload is one contiguous bitmap; count the non-null
		// rows to slice it off before scanning.
		cnt := 0
		for i := 0; i < n; i++ {
			if !isNull(i) {
				cnt++
			}
		}
		nb := (cnt + 7) / 8
		if len(buf) < nb {
			return nil, fmt.Errorf("truncated bool payload")
		}
		boolBits = buf[:nb]
		buf = buf[nb:]
	}
	for i := 0; i < n; i++ {
		if isNull(i) {
			setNull(c, i, n)
			continue
		}
		switch c.Kind {
		case vec.Int, vec.Int32, vec.Int64:
			v, w := binary.Varint(buf)
			if w <= 0 {
				return nil, fmt.Errorf("truncated varint")
			}
			buf = buf[w:]
			c.I64[i] = v
			switch c.Kind {
			case vec.Int:
				c.Box[i] = int(v)
			case vec.Int32:
				c.Box[i] = int32(v)
			default:
				c.Box[i] = v
			}
		case vec.Uint64:
			v, w := binary.Uvarint(buf)
			if w <= 0 {
				return nil, fmt.Errorf("truncated uvarint")
			}
			buf = buf[w:]
			c.I64[i] = int64(v)
			c.Box[i] = v
		case vec.Float64:
			if len(buf) < 8 {
				return nil, fmt.Errorf("truncated float64")
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(buf))
			buf = buf[8:]
			c.F64[i] = v
			c.Box[i] = v
		case vec.Bool:
			v := boolBits[boolCnt/8]&(1<<(uint(boolCnt)&7)) != 0
			boolCnt++
			c.B[i] = v
			c.Box[i] = v
		case vec.String:
			ln, w := binary.Uvarint(buf)
			if w <= 0 || uint64(len(buf)-w) < ln {
				return nil, fmt.Errorf("truncated string")
			}
			v := string(buf[w : w+int(ln)])
			buf = buf[w+int(ln):]
			c.Str[i] = v
			c.Box[i] = v
		case vec.Any:
			var err error
			if c.Box[i], buf, err = decodeValue(buf); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// setNull marks logical row i null in a freshly decoded dense column
// (storage position == logical row).
func setNull(c *vec.Col, i, n int) {
	if c.Kind == vec.Any {
		return // Box[i] stays nil
	}
	if c.Null == nil {
		c.Null = make([]uint64, (n+63)/64)
	}
	c.Null[i>>6] |= 1 << (uint(i) & 63)
}

// decodeValue decodes one tagged value of an Any column payload.
func decodeValue(buf []byte) (any, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, fmt.Errorf("truncated value")
	}
	tag := buf[0]
	buf = buf[1:]
	switch tag {
	case tagAbsent:
		return vec.Absent, buf, nil
	case tagNil:
		return nil, buf, nil
	case tagFalse:
		return false, buf, nil
	case tagTrue:
		return true, buf, nil
	case tagInt, tagInt32, tagInt64:
		v, w := binary.Varint(buf)
		if w <= 0 {
			return nil, nil, fmt.Errorf("truncated varint")
		}
		buf = buf[w:]
		switch tag {
		case tagInt:
			return int(v), buf, nil
		case tagInt32:
			return int32(v), buf, nil
		}
		return v, buf, nil
	case tagUint64:
		v, w := binary.Uvarint(buf)
		if w <= 0 {
			return nil, nil, fmt.Errorf("truncated uvarint")
		}
		return v, buf[w:], nil
	case tagFloat64:
		if len(buf) < 8 {
			return nil, nil, fmt.Errorf("truncated float64")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf)), buf[8:], nil
	case tagString:
		ln, w := binary.Uvarint(buf)
		if w <= 0 || uint64(len(buf)-w) < ln {
			return nil, nil, fmt.Errorf("truncated string")
		}
		return string(buf[w : w+int(ln)]), buf[w+int(ln):], nil
	}
	return nil, nil, fmt.Errorf("unknown value tag %d", tag)
}
