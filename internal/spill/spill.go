// Package spill is the disk format of the engine's memory governance:
// batches of rows encoded to per-partition temp files when a hash-join
// build side (or a group-by partial) exceeds its node's memory budget,
// and decoded back one batch at a time during the partition-wise join
// phases. The format is append-only and batch-granular — every Append
// returns a Ref, and ReadBatch(Ref) is safe for concurrent readers via
// ReadAt — so spill-phase activations can decode independent batches in
// parallel without coordination.
//
// Values are encoded with a one-byte type tag per column. The supported
// set (nil, bool, int, int32, int64, uint64, float64, string) covers the
// engine's comparable join keys and typical payloads; a row carrying any
// other type fails the Append with a descriptive error, which the engine
// surfaces as the query's terminal error rather than silently corrupting
// the spill.
package spill

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// Row is one tuple, positionally indexed. It is a type alias so the
// executor's row type ([]any throughout the module) interchanges with it
// without copying.
type Row = []any

// Value type tags. The tag order is part of the on-disk format.
const (
	tagNil = iota
	tagFalse
	tagTrue
	tagInt
	tagInt32
	tagInt64
	tagUint64
	tagFloat64
	tagString
)

// Ref addresses one appended batch inside a File.
type Ref struct {
	// Off is the batch's byte offset in the file.
	Off int64
	// Len is the encoded length in bytes.
	Len int64
	// Rows is the number of rows in the batch.
	Rows int
}

// File is one spill partition: an append-only temp file of encoded row
// batches. Appends are serialized internally (concurrent producer
// workers share a partition); reads go through ReadAt and may run
// concurrently with each other, but not with appends — the engine's
// chain barrier separates the write phase from the read phase.
type File struct {
	mu   sync.Mutex //hierdb:lock spillfile
	f    *os.File
	path string
	buf  []byte // encode scratch, reused across Appends
	refs []Ref
	off  int64
	rows int64
}

// Create opens a new spill file in dir. The file is created eagerly so
// an unwritable spill directory fails at spill time with a clear error,
// not at first read.
func Create(dir, name string) (*File, error) {
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: create %s: %w", name, err)
	}
	return &File{f: f, path: path}, nil
}

// Append encodes one batch and writes it to the file, returning its Ref.
// Safe for concurrent callers.
func (s *File) Append(rows []Row) (Ref, error) {
	if len(rows) == 0 {
		return Ref{}, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := s.buf[:0]
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	var err error
	for _, r := range rows {
		if buf, err = appendRow(buf, r); err != nil {
			return Ref{}, err
		}
	}
	s.buf = buf
	if _, err := s.f.Write(buf); err != nil {
		return Ref{}, fmt.Errorf("spill: write %s: %w", filepath.Base(s.path), err)
	}
	ref := Ref{Off: s.off, Len: int64(len(buf)), Rows: len(rows)}
	s.refs = append(s.refs, ref)
	s.off += ref.Len
	s.rows += int64(len(rows))
	return ref, nil
}

func appendRow(buf []byte, r Row) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		switch x := v.(type) {
		case nil:
			buf = append(buf, tagNil)
		case bool:
			if x {
				buf = append(buf, tagTrue)
			} else {
				buf = append(buf, tagFalse)
			}
		case int:
			buf = append(buf, tagInt)
			buf = binary.AppendVarint(buf, int64(x))
		case int32:
			buf = append(buf, tagInt32)
			buf = binary.AppendVarint(buf, int64(x))
		case int64:
			buf = append(buf, tagInt64)
			buf = binary.AppendVarint(buf, x)
		case uint64:
			buf = append(buf, tagUint64)
			buf = binary.AppendUvarint(buf, x)
		case float64:
			buf = append(buf, tagFloat64)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		case string:
			buf = append(buf, tagString)
			buf = binary.AppendUvarint(buf, uint64(len(x)))
			buf = append(buf, x...)
		default:
			return nil, fmt.Errorf("spill: unsupported column type %T (supported: nil, bool, int, int32, int64, uint64, float64, string)", v)
		}
	}
	return buf, nil
}

// ReadBatch decodes the batch a Ref addresses. Safe for concurrent
// callers once appends have stopped.
func (s *File) ReadBatch(ref Ref) ([]Row, error) {
	if ref.Rows == 0 {
		return nil, nil
	}
	buf := make([]byte, ref.Len)
	if _, err := s.f.ReadAt(buf, ref.Off); err != nil {
		return nil, fmt.Errorf("spill: read %s: %w", filepath.Base(s.path), err)
	}
	n, w := binary.Uvarint(buf)
	if w <= 0 || n != uint64(ref.Rows) {
		return nil, fmt.Errorf("spill: corrupt batch header in %s (got %d rows, ref says %d)", filepath.Base(s.path), n, ref.Rows)
	}
	buf = buf[w:]
	rows := make([]Row, 0, ref.Rows)
	for i := 0; i < ref.Rows; i++ {
		var (
			r   Row
			err error
		)
		if r, buf, err = decodeRow(buf); err != nil {
			return nil, fmt.Errorf("spill: %s: %w", filepath.Base(s.path), err)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

func decodeRow(buf []byte) (Row, []byte, error) {
	ncols, w := binary.Uvarint(buf)
	if w <= 0 || ncols > uint64(len(buf)) {
		return nil, nil, fmt.Errorf("corrupt row header")
	}
	buf = buf[w:]
	r := make(Row, 0, ncols)
	for c := uint64(0); c < ncols; c++ {
		if len(buf) == 0 {
			return nil, nil, fmt.Errorf("truncated row")
		}
		tag := buf[0]
		buf = buf[1:]
		switch tag {
		case tagNil:
			r = append(r, nil)
		case tagFalse:
			r = append(r, false)
		case tagTrue:
			r = append(r, true)
		case tagInt, tagInt32, tagInt64:
			v, w := binary.Varint(buf)
			if w <= 0 {
				return nil, nil, fmt.Errorf("truncated varint")
			}
			buf = buf[w:]
			switch tag {
			case tagInt:
				r = append(r, int(v))
			case tagInt32:
				r = append(r, int32(v))
			default:
				r = append(r, v)
			}
		case tagUint64:
			v, w := binary.Uvarint(buf)
			if w <= 0 {
				return nil, nil, fmt.Errorf("truncated uvarint")
			}
			buf = buf[w:]
			r = append(r, v)
		case tagFloat64:
			if len(buf) < 8 {
				return nil, nil, fmt.Errorf("truncated float64")
			}
			r = append(r, math.Float64frombits(binary.LittleEndian.Uint64(buf)))
			buf = buf[8:]
		case tagString:
			n, w := binary.Uvarint(buf)
			if w <= 0 || uint64(len(buf)-w) < n {
				return nil, nil, fmt.Errorf("truncated string")
			}
			r = append(r, string(buf[w:w+int(n)]))
			buf = buf[w+int(n):]
		default:
			return nil, nil, fmt.Errorf("unknown value tag %d", tag)
		}
	}
	return r, buf, nil
}

// Refs returns the refs of every appended batch, in append order. Call
// only after appends have stopped.
func (s *File) Refs() []Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs
}

// Bytes returns the total encoded bytes appended so far.
func (s *File) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.off
}

// Rows returns the total rows appended so far.
func (s *File) Rows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// Close closes and deletes the file. Idempotent.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	if rmErr := os.Remove(s.path); err == nil {
		err = rmErr
	}
	return err
}
