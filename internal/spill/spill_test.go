package spill

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
)

func TestRoundTripAllTypes(t *testing.T) {
	f, err := Create(t.TempDir(), "p0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	batch := []Row{
		{nil, true, false},
		{42, int32(-7), int64(1 << 40), uint64(1 << 60)},
		{3.25, "hello", ""},
		{-1, "utf8 ✓ bytes", 0.0},
	}
	ref, err := f.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadBatch(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("round trip:\n got %#v\nwant %#v", got, batch)
	}
}

func TestUnsupportedTypeFailsDescriptively(t *testing.T) {
	f, err := Create(t.TempDir(), "p0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Append([]Row{{struct{ X int }{1}}})
	if err == nil {
		t.Fatal("Append of a struct column succeeded")
	}
	if want := "unsupported column type"; !contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestConcurrentAppendsThenParallelReads mirrors the engine's usage:
// producer workers append batches concurrently during the write phase,
// then spill-phase activations decode independent refs in parallel.
func TestConcurrentAppendsThenParallelReads(t *testing.T) {
	f, err := Create(t.TempDir(), "p0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const writers, batches, rowsPer = 4, 25, 17
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]Row, rowsPer)
				for i := range batch {
					batch[i] = Row{w, b, fmt.Sprintf("w%d-b%d-r%d", w, b, i)}
				}
				if _, err := f.Append(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	refs := f.Refs()
	if len(refs) != writers*batches {
		t.Fatalf("%d refs, want %d", len(refs), writers*batches)
	}
	if f.Rows() != writers*batches*rowsPer {
		t.Fatalf("%d rows, want %d", f.Rows(), writers*batches*rowsPer)
	}
	seen := make([]map[string]bool, writers)
	var mu sync.Mutex
	for w := range seen {
		seen[w] = make(map[string]bool)
	}
	for r := 0; r < 3; r++ { // parallel readers over all refs
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, ref := range refs {
				rows, err := f.ReadBatch(ref)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				for _, row := range rows {
					seen[row[0].(int)][row[2].(string)] = true
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for w := range seen {
		if len(seen[w]) != batches*rowsPer {
			t.Fatalf("writer %d: %d distinct rows read back, want %d", w, len(seen[w]), batches*rowsPer)
		}
	}
}

func TestCloseRemovesFile(t *testing.T) {
	dir := t.TempDir()
	f, err := Create(dir, "p0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append([]Row{{1}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after Close: %v", ents)
	}
}

func TestEmptyAppendIsNoop(t *testing.T) {
	f, err := Create(t.TempDir(), "p0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ref, err := f.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rows != 0 || f.Bytes() != 0 || len(f.Refs()) != 0 {
		t.Fatalf("empty append left state: ref %+v bytes %d refs %d", ref, f.Bytes(), len(f.Refs()))
	}
	rows, err := f.ReadBatch(ref)
	if err != nil || rows != nil {
		t.Fatalf("ReadBatch of empty ref = %v, %v", rows, err)
	}
}
