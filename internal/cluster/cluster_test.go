package cluster

import (
	"testing"
	"testing/quick"

	"hierdb/internal/simtime"
)

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(4, 8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MIPS != 40 {
		t.Errorf("MIPS = %d", c.MIPS)
	}
	if c.TotalProcs() != 32 {
		t.Errorf("TotalProcs = %d", c.TotalProcs())
	}
	if c.String() != "4x8" {
		t.Errorf("String = %q", c.String())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Nodes: 0, ProcsPerNode: 1, MIPS: 40, MemoryPerNode: 1},
		{Nodes: 1, ProcsPerNode: 0, MIPS: 40, MemoryPerNode: 1},
		{Nodes: 1, ProcsPerNode: 1, MIPS: 0, MemoryPerNode: 1},
		{Nodes: 1, ProcsPerNode: 1, MIPS: 40, MemoryPerNode: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestInstrTimeAt40MIPS(t *testing.T) {
	c := DefaultConfig(1, 1)
	// 40 MIPS = 25 ns per instruction.
	if d := c.InstrTime(1); d != 25*simtime.Nanosecond {
		t.Errorf("InstrTime(1) = %v", d)
	}
	if d := c.InstrTime(40_000_000); d != simtime.Second {
		t.Errorf("InstrTime(40M) = %v, want 1s", d)
	}
	if d := c.InstrTime(0); d != 0 {
		t.Errorf("InstrTime(0) = %v", d)
	}
	if d := c.InstrTime(-5); d != 0 {
		t.Errorf("InstrTime(-5) = %v", d)
	}
}

func TestInstrTimeMonotoneQuick(t *testing.T) {
	c := DefaultConfig(1, 1)
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return c.InstrTime(x) <= c.InstrTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewBuildsTopology(t *testing.T) {
	k := simtime.NewKernel()
	c := New(k, DefaultConfig(3, 4))
	if len(c.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if len(n.Disks) != 4 {
			t.Errorf("node %d has %d disks", i, len(n.Disks))
		}
	}
	if c.Net == nil {
		t.Fatal("no network")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(simtime.NewKernel(), Config{})
}

func TestDiskStatsAggregate(t *testing.T) {
	k := simtime.NewKernel()
	c := New(k, DefaultConfig(2, 2))
	c.Nodes[0].Disks[0].StartRead(3)
	c.Nodes[1].Disks[1].StartRead(2)
	s := c.DiskStats()
	if s.Requests != 2 || s.PagesRead != 5 {
		t.Fatalf("stats = %+v", s)
	}
}
