// Package cluster assembles the hierarchical architecture of §2.1 of the
// paper: a shared-nothing collection of SM-nodes, each a shared-memory
// multiprocessor with one disk unit per processor, connected by a
// message-passing network. It owns the processor-speed accounting (the
// paper's KSR1 processors run at 40 MIPS).
package cluster

import (
	"fmt"

	"hierdb/internal/simdisk"
	"hierdb/internal/simnet"
	"hierdb/internal/simtime"
)

// Config describes a hierarchical configuration, e.g. 4 SM-nodes of 8
// processors each (written "4x8" in the paper's figures).
type Config struct {
	// Nodes is the number of SM-nodes.
	Nodes int
	// ProcsPerNode is the number of processors (and execution threads,
	// and disks) per SM-node.
	ProcsPerNode int
	// MIPS is the processor speed in millions of instructions per second
	// (paper: 40).
	MIPS int
	// MemoryPerNode is the shared memory available per SM-node in bytes,
	// used to bound load-sharing acquisitions (condition (i) of §3.2).
	MemoryPerNode int64
	// Disk and Net are the device parameter tables.
	Disk simdisk.Params
	Net  simnet.Params
}

// DefaultConfig returns a configuration with the paper's parameter tables
// and the given topology.
func DefaultConfig(nodes, procsPerNode int) Config {
	return Config{
		Nodes:         nodes,
		ProcsPerNode:  procsPerNode,
		MIPS:          40,
		MemoryPerNode: 512 << 20,
		Disk:          simdisk.DefaultParams(),
		Net:           simnet.DefaultParams(),
	}
}

// Validate checks the configuration for obvious mistakes.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes = %d, must be positive", c.Nodes)
	case c.ProcsPerNode <= 0:
		return fmt.Errorf("cluster: ProcsPerNode = %d, must be positive", c.ProcsPerNode)
	case c.MIPS <= 0:
		return fmt.Errorf("cluster: MIPS = %d, must be positive", c.MIPS)
	case c.MemoryPerNode <= 0:
		return fmt.Errorf("cluster: MemoryPerNode = %d, must be positive", c.MemoryPerNode)
	}
	return nil
}

// TotalProcs returns Nodes * ProcsPerNode.
func (c Config) TotalProcs() int { return c.Nodes * c.ProcsPerNode }

// String formats the topology the way the paper labels its figures.
func (c Config) String() string {
	return fmt.Sprintf("%dx%d", c.Nodes, c.ProcsPerNode)
}

// InstrTime converts an instruction count to virtual time at the configured
// processor speed.
func (c Config) InstrTime(instr int64) simtime.Duration {
	if instr <= 0 {
		return 0
	}
	// ns = instr * 1000 / MIPS; with MIPS=40 this is instr*25 ns.
	return simtime.Duration(instr * 1000 / int64(c.MIPS))
}

// Node is one SM-node: shared memory, ProcsPerNode processors, one disk per
// processor.
type Node struct {
	ID    int
	Disks []*simdisk.Disk
}

// Cluster is an instantiated hierarchical machine bound to a simulation
// kernel.
type Cluster struct {
	Cfg   Config
	K     *simtime.Kernel
	Net   *simnet.Network
	Nodes []*Node
}

// New instantiates the machine on kernel k. It panics if cfg is invalid;
// use Config.Validate to check beforehand.
func New(k *simtime.Kernel, cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{
		Cfg: cfg,
		K:   k,
		Net: simnet.New(k, cfg.Net),
	}
	for n := 0; n < cfg.Nodes; n++ {
		node := &Node{ID: n}
		for p := 0; p < cfg.ProcsPerNode; p++ {
			node.Disks = append(node.Disks, simdisk.New(k, cfg.Disk))
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// DiskStats sums the counters of every disk in the cluster.
func (c *Cluster) DiskStats() simdisk.Stats {
	var s simdisk.Stats
	for _, n := range c.Nodes {
		for _, d := range n.Disks {
			ds := d.Stats()
			s.Requests += ds.Requests
			s.PagesRead += ds.PagesRead
			s.Busy += ds.Busy
		}
	}
	return s
}
