package simtime

// Microbenchmarks and allocation-regression gates for the kernel hot
// path. The tentpole claim — scheduling a Delay, a Signal wakeup or a
// process dispatch allocates nothing — is pinned with
// testing.AllocsPerRun so it cannot silently rot.

import "testing"

// BenchmarkKernelDelay measures one Proc.Delay round trip: push the
// dispatch event, park the process, pop the event and resume.
func BenchmarkKernelDelay(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	k.Spawn("delayer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelSignalWait measures a Cond ping-pong between two
// processes: each iteration is one Signal plus one Wait on each side.
func BenchmarkKernelSignalWait(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	ping := k.NewCond("ping")
	pong := k.NewCond("pong")
	// The waiter spawns first so its Wait precedes the first Signal.
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			pong.Wait(p)
			ping.Signal()
		}
	})
	k.Spawn("signaler", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			pong.Signal()
			ping.Wait(p)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelAfter measures the general timed-callback path (the
// only scheduling path that may allocate, for the caller's closure).
func BenchmarkKernelAfter(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		if n < b.N {
			n++
			k.After(Microsecond, tick)
		}
	}
	k.After(0, tick)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestDelaySchedulingZeroAlloc pins the Proc.Delay scheduling path
// (dispatchAt: event construction plus heap push) at zero allocations
// once the event heap has grown to capacity.
func TestDelaySchedulingZeroAlloc(t *testing.T) {
	k := NewKernel()
	p := &Proc{k: k, name: "x"}
	k.events = make(eventHeap, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			k.dispatchAt(k.now+Duration(i), p)
		}
		k.events = k.events[:0]
	})
	if allocs != 0 {
		t.Fatalf("Delay scheduling path allocates %.1f times per run, want 0", allocs)
	}
}

// TestSignalSchedulingZeroAlloc pins the Cond.Signal wakeup path (waiter
// dequeue plus dispatch scheduling) at zero allocations.
func TestSignalSchedulingZeroAlloc(t *testing.T) {
	k := NewKernel()
	c := k.NewCond("gate")
	p := &Proc{k: k, name: "x"}
	buf := make([]*Proc, 0, 8)
	k.events = make(eventHeap, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		c.waiters = append(buf[:0], p, p, p, p)
		c.Signal()
		c.Signal()
		c.Broadcast()
		k.events = k.events[:0]
	})
	if allocs != 0 {
		t.Fatalf("Signal/Broadcast scheduling path allocates %.1f times per run, want 0", allocs)
	}
}

// TestKernelRunAmortizedAllocs is the end-to-end gate: a full kernel run
// with 1000 delays must stay within the fixed setup cost (process spawn,
// channels, first heap growth). Before the value-typed heap this run cost
// one event plus one closure allocation per delay (>2000 allocations).
func TestKernelRunAmortizedAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(5, func() {
		k := NewKernel()
		k.Spawn("delayer", func(p *Proc) {
			for i := 0; i < 1000; i++ {
				p.Delay(Microsecond)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 100 {
		t.Fatalf("kernel run with 1000 delays allocates %.0f times, want <= 100 (setup only)", allocs)
	}
}
