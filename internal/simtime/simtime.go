// Package simtime implements the discrete-event simulation kernel on which
// the whole reproduction runs.
//
// The paper implemented its execution model on real KSR1 threads and
// simulated operator work, disks and the network (§5.1). This package plays
// the role of the KSR1: each simulated processor-thread is a goroutine, but
// goroutines never run concurrently — the kernel resumes exactly one process
// at a time and advances a virtual clock, so all simulated shared state is
// race-free by construction and every run is bit-for-bit deterministic.
//
// Processes express the passage of simulated time with Proc.Delay (e.g. CPU
// instructions being executed) and coordination with Cond (e.g. waiting for
// an activation queue to drain). Timed callbacks (After/At) model message
// deliveries and I/O completions.
package simtime

import (
	"fmt"
	"sort"
)

// Time is a point in virtual time, in nanoseconds.
type Time int64

// Duration aliases Time for readability when a length of time is meant.
type Duration = Time

// Convenient virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch abs := max64(t, -t); {
	case abs == 0:
		return "0s"
	case abs < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case abs < Millisecond:
		return fmt.Sprintf("%.3gus", float64(t)/float64(Microsecond))
	case abs < Second:
		return fmt.Sprintf("%.3gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

func max64(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// event is a value-typed heap entry carrying a tagged payload: the dominant
// case (Delay, Cond.Signal, Spawn) dispatches proc directly, so scheduling
// allocates nothing; the general case (After/At) runs fn.
type event struct {
	at   Time
	seq  uint64
	proc *Proc  // when non-nil, dispatch this process
	fn   func() // otherwise, run fn in kernel context
}

func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a min-heap of events ordered by (at, seq), stored by value so
// push/pop never touch the allocator beyond amortized slice growth.
type eventHeap []event

//hierdb:hotpath
func (h *eventHeap) push(e event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

//hierdb:hotpath
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release fn/proc references
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && s[l].before(s[least]) {
			least = l
		}
		if r < n && s[r].before(s[least]) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	*h = s
	return top
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; call NewKernel.
//
// Control migrates between process goroutines: whichever goroutine is
// executing simulated code also drives the event loop when it parks, so a
// process that resumes itself (the dominant Delay case) costs no goroutine
// switch at all and a cross-process transfer costs exactly one.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc
	live   int
	ran    bool
	// mainCh wakes Run when a driver drains the event heap.
	mainCh chan struct{}
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{mainCh: make(chan struct{}, 1)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// After schedules fn to run in kernel context after d has elapsed.
// It panics if d is negative.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic("simtime: negative delay")
	}
	k.at(k.now+d, fn)
}

// At schedules fn to run in kernel context at absolute time t, which must
// not be in the past.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic("simtime: event scheduled in the past")
	}
	k.at(t, fn)
}

func (k *Kernel) at(t Time, fn func()) {
	k.seq++
	k.events.push(event{at: t, seq: k.seq, fn: fn})
}

// dispatchAt schedules a direct dispatch of p at absolute time t. This is
// the allocation-free fast path behind Delay, Spawn, Cond.Signal and
// Cond.Broadcast.
//
//hierdb:hotpath
func (k *Kernel) dispatchAt(t Time, p *Proc) {
	k.seq++
	k.events.push(event{at: t, seq: k.seq, proc: p})
}

// Proc is a simulated sequential process (one per simulated processor-thread
// in the reproduction). All Proc methods must be called from the process's
// own body function.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	done   bool
	// waiting marks a proc parked on a Cond (used for deadlock reporting).
	waiting string
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process that will start executing body at the current
// virtual time (once Run is processing events). Spawn may be called before
// Run or from within kernel context while running.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume
		body(p)
		p.done = true
		k.live--
		// The finished process is the current loop driver: keep
		// draining events until control transfers or the heap empties,
		// then let the goroutine exit.
		k.advance(nil)
	}()
	k.dispatchAt(k.now, p)
	return p
}

// advance drives the event loop on the calling goroutine. It returns when
// an event resumes self (self's park is over). When an event dispatches a
// different process, control transfers there: with a non-nil self the
// caller blocks until resumed in turn, otherwise (a finished process or
// the initial Run drive) advance returns immediately so the goroutine can
// exit or wait on mainCh. When the heap drains, Run is woken.
//
//hierdb:hotpath
func (k *Kernel) advance(self *Proc) {
	for {
		if len(k.events) == 0 {
			// Simulation over (or deadlocked): hand control to Run.
			k.mainCh <- struct{}{}
			if self == nil {
				return
			}
			<-self.resume // deadlocked: parked forever
			continue
		}
		e := k.events.pop()
		if e.at < k.now {
			panic("simtime: time went backwards")
		}
		k.now = e.at
		if e.proc == nil {
			e.fn()
			continue
		}
		p := e.proc
		if p.done {
			continue
		}
		if p == self {
			return // self-resume: no goroutine switch
		}
		p.resume <- struct{}{}
		if self == nil {
			return
		}
		<-self.resume
		return
	}
}

// park suspends the calling process, driving the event loop until some
// event dispatches it again.
//
//hierdb:hotpath
func (p *Proc) park(why string) {
	p.waiting = why
	p.k.advance(p)
	p.waiting = ""
}

// Delay advances virtual time by d for the calling process, modelling d of
// sequential work. It panics on negative d. Delay(0) yields the processor,
// allowing same-time events to run.
//
//hierdb:hotpath
func (p *Proc) Delay(d Duration) {
	if d < 0 {
		panic("simtime: negative delay")
	}
	k := p.k
	k.dispatchAt(k.now+d, p)
	p.park("delay")
}

// Run processes events until none remain. It returns an error if live
// processes are still parked when the event heap drains (a simulated
// deadlock), naming the stuck processes.
func (k *Kernel) Run() error {
	if k.ran {
		return fmt.Errorf("simtime: kernel already ran")
	}
	k.ran = true
	if len(k.events) > 0 {
		// Drive until the first control transfer (advance returns after
		// handing off with self == nil), then wait for a driver to drain
		// the heap. If no event ever transfers control, advance itself
		// signals mainCh on the empty heap.
		k.advance(nil)
		<-k.mainCh
	}
	if k.live > 0 {
		var stuck []string
		for _, p := range k.procs {
			if !p.done {
				stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, p.waiting))
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("simtime: deadlock at %v: %d live process(es) parked: %v", k.now, k.live, stuck)
	}
	return nil
}

// Cond is a virtual-time condition variable. The zero value is not usable;
// create with NewCond. All methods must be called in kernel context (from a
// process body or a timed callback).
type Cond struct {
	k       *Kernel
	name    string
	label   string // precomputed park label; Wait must not allocate
	waiters []*Proc
}

// NewCond returns a condition variable attached to k. The name appears in
// deadlock reports.
func (k *Kernel) NewCond(name string) *Cond {
	return &Cond{k: k, name: name, label: "cond " + name}
}

// Wait parks p until another event calls Signal or Broadcast. As with
// sync.Cond, callers re-check their predicate in a loop.
//
//hierdb:hotpath
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park(c.label)
}

// Signal wakes the longest-waiting process, if any. The wakeup is delivered
// as a zero-delay event, preserving deterministic ordering.
//
//hierdb:hotpath
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters[len(c.waiters)-1] = nil
	c.waiters = c.waiters[:len(c.waiters)-1]
	c.k.dispatchAt(c.k.now, p)
}

// Broadcast wakes every waiting process.
//
//hierdb:hotpath
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		c.k.dispatchAt(c.k.now, p)
	}
}

// Waiting reports how many processes are parked on c.
func (c *Cond) Waiting() int { return len(c.waiters) }
