// Package simtime implements the discrete-event simulation kernel on which
// the whole reproduction runs.
//
// The paper implemented its execution model on real KSR1 threads and
// simulated operator work, disks and the network (§5.1). This package plays
// the role of the KSR1: each simulated processor-thread is a goroutine, but
// goroutines never run concurrently — the kernel resumes exactly one process
// at a time and advances a virtual clock, so all simulated shared state is
// race-free by construction and every run is bit-for-bit deterministic.
//
// Processes express the passage of simulated time with Proc.Delay (e.g. CPU
// instructions being executed) and coordination with Cond (e.g. waiting for
// an activation queue to drain). Timed callbacks (After/At) model message
// deliveries and I/O completions.
package simtime

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a point in virtual time, in nanoseconds.
type Time int64

// Duration aliases Time for readability when a length of time is meant.
type Duration = Time

// Convenient virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch abs := max64(t, -t); {
	case abs == 0:
		return "0s"
	case abs < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case abs < Millisecond:
		return fmt.Sprintf("%.3gus", float64(t)/float64(Microsecond))
	case abs < Second:
		return fmt.Sprintf("%.3gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

func max64(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc
	live   int
	ran    bool
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// After schedules fn to run in kernel context after d has elapsed.
// It panics if d is negative.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic("simtime: negative delay")
	}
	k.at(k.now+d, fn)
}

// At schedules fn to run in kernel context at absolute time t, which must
// not be in the past.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic("simtime: event scheduled in the past")
	}
	k.at(t, fn)
}

func (k *Kernel) at(t Time, fn func()) {
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// Proc is a simulated sequential process (one per simulated processor-thread
// in the reproduction). All Proc methods must be called from the process's
// own body function.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
	// waiting marks a proc parked on a Cond (used for deadlock reporting).
	waiting string
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process that will start executing body at the current
// virtual time (once Run is processing events). Spawn may be called before
// Run or from within kernel context while running.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume
		body(p)
		p.done = true
		k.live--
		p.yield <- struct{}{}
	}()
	k.After(0, func() { k.dispatch(p) })
	return p
}

// dispatch hands control to p until it parks or terminates. Must run in
// kernel context.
func (k *Kernel) dispatch(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// park suspends the calling process, returning control to the kernel. The
// process resumes when some event dispatches it again.
func (p *Proc) park(why string) {
	p.waiting = why
	p.yield <- struct{}{}
	<-p.resume
	p.waiting = ""
}

// Delay advances virtual time by d for the calling process, modelling d of
// sequential work. It panics on negative d. Delay(0) yields the processor,
// allowing same-time events to run.
func (p *Proc) Delay(d Duration) {
	if d < 0 {
		panic("simtime: negative delay")
	}
	k := p.k
	k.After(d, func() { k.dispatch(p) })
	p.park("delay")
}

// Run processes events until none remain. It returns an error if live
// processes are still parked when the event heap drains (a simulated
// deadlock), naming the stuck processes.
func (k *Kernel) Run() error {
	if k.ran {
		return fmt.Errorf("simtime: kernel already ran")
	}
	k.ran = true
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		if e.at < k.now {
			panic("simtime: time went backwards")
		}
		k.now = e.at
		e.fn()
	}
	if k.live > 0 {
		var stuck []string
		for _, p := range k.procs {
			if !p.done {
				stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, p.waiting))
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("simtime: deadlock at %v: %d live process(es) parked: %v", k.now, k.live, stuck)
	}
	return nil
}

// Cond is a virtual-time condition variable. The zero value is not usable;
// create with NewCond. All methods must be called in kernel context (from a
// process body or a timed callback).
type Cond struct {
	k       *Kernel
	name    string
	waiters []*Proc
}

// NewCond returns a condition variable attached to k. The name appears in
// deadlock reports.
func (k *Kernel) NewCond(name string) *Cond {
	return &Cond{k: k, name: name}
}

// Wait parks p until another event calls Signal or Broadcast. As with
// sync.Cond, callers re-check their predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park("cond " + c.name)
}

// Signal wakes the longest-waiting process, if any. The wakeup is delivered
// as a zero-delay event, preserving deterministic ordering.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.k.After(0, func() { c.k.dispatch(p) })
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		p := p
		c.k.After(0, func() { c.k.dispatch(p) })
	}
}

// Waiting reports how many processes are parked on c.
func (c *Cond) Waiting() int { return len(c.waiters) }
