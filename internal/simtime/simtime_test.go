package simtime

import (
	"testing"
	"testing/quick"
)

func TestDelayAdvancesClock(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("p", func(p *Proc) {
		p.Delay(5 * Millisecond)
		p.Delay(2 * Millisecond)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 7*Millisecond {
		t.Fatalf("end = %v, want 7ms", end)
	}
}

func TestEventsOrderedByTimeThenSeq(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(2*Second, func() { order = append(order, 3) })
	k.After(1*Second, func() { order = append(order, 1) })
	k.After(1*Second, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(10 * Microsecond)
				trace = append(trace, "a")
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(15 * Microsecond)
				trace = append(trace, "b")
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != 6 {
		t.Fatalf("trace length %d", len(t1))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("nondeterministic interleaving: %v vs %v", t1, t2)
		}
	}
	// a wakes at 10,20,30; b at 15,30,45. At t=30 b's event was scheduled
	// first (at t=15, before a's at t=20), so b precedes a there.
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if t1[i] != want[i] {
			t.Fatalf("trace = %v, want %v", t1, want)
		}
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	k := NewKernel()
	c := k.NewCond("q")
	var woke []string
	for _, name := range []string{"p1", "p2", "p3"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			c.Wait(p)
			woke = append(woke, name)
		})
	}
	k.After(1*Millisecond, func() { c.Signal() })
	k.After(2*Millisecond, func() { c.Signal() })
	k.After(3*Millisecond, func() { c.Signal() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "p1" || woke[1] != "p2" || woke[2] != "p3" {
		t.Fatalf("wake order = %v", woke)
	}
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel()
	c := k.NewCond("all")
	n := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			c.Wait(p)
			n++
		})
	}
	k.After(1*Second, func() {
		if c.Waiting() != 5 {
			t.Errorf("Waiting() = %d, want 5", c.Waiting())
		}
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("woke %d, want 5", n)
	}
}

func TestCondBroadcastPreservesWaitOrder(t *testing.T) {
	k := NewKernel()
	c := k.NewCond("all")
	var woke []string
	names := []string{"w1", "w2", "w3", "w4"}
	for i, name := range names {
		i, name := i, name
		k.Spawn(name, func(p *Proc) {
			// Stagger arrival so the wait order is w1..w4.
			p.Delay(Duration(i) * Microsecond)
			c.Wait(p)
			woke = append(woke, name)
		})
	}
	k.After(1*Millisecond, func() { c.Broadcast() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != len(names) {
		t.Fatalf("woke %d of %d", len(woke), len(names))
	}
	for i, name := range names {
		if woke[i] != name {
			t.Fatalf("broadcast wake order = %v, want %v", woke, names)
		}
	}
}

func TestCondWaitingCountsInterleaved(t *testing.T) {
	k := NewKernel()
	c := k.NewCond("gate")
	// Three waiters park one microsecond apart; signals are interleaved
	// with the arrivals. Waiting() must reflect parked-minus-signalled at
	// every step.
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Delay(Duration(10*i) * Microsecond)
			c.Wait(p)
		})
	}
	type obs struct {
		at        Time
		want, got int
	}
	var bad []obs
	check := func(at Time, want int) {
		k.At(at, func() {
			if c.Waiting() != want {
				bad = append(bad, obs{at, want, c.Waiting()})
			}
		})
	}
	check(5*Microsecond, 1)  // w0 parked
	check(15*Microsecond, 2) // w0, w1 parked
	k.At(16*Microsecond, func() { c.Signal() })
	check(17*Microsecond, 1) // w0 signalled out
	check(25*Microsecond, 2) // w2 parked
	k.At(26*Microsecond, func() { c.Signal() })
	k.At(27*Microsecond, func() { c.Signal() })
	check(28*Microsecond, 0) // drained
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, o := range bad {
		t.Errorf("Waiting() at %v = %d, want %d", o.at, o.got, o.want)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	c := k.NewCond("never")
	k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestProducerConsumerHandshake(t *testing.T) {
	k := NewKernel()
	notEmpty := k.NewCond("notEmpty")
	notFull := k.NewCond("notFull")
	const cap = 2
	var queue []int
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 10; i++ {
			for len(queue) >= cap {
				notFull.Wait(p)
			}
			queue = append(queue, i)
			notEmpty.Signal()
			p.Delay(1 * Microsecond)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for len(got) < 10 {
			for len(queue) == 0 {
				notEmpty.Wait(p)
			}
			got = append(got, queue[0])
			queue = queue[1:]
			notFull.Signal()
			p.Delay(3 * Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestSpawnFromWithinProc(t *testing.T) {
	k := NewKernel()
	var childRan bool
	k.Spawn("parent", func(p *Proc) {
		p.Delay(1 * Second)
		k.Spawn("child", func(c *Proc) {
			c.Delay(1 * Second)
			childRan = true
		})
		p.Delay(5 * Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
	if k.Now() != 6*Second {
		t.Fatalf("final time %v, want 6s", k.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative Delay did not panic")
			}
		}()
		p.Delay(-1)
	})
	// The proc body recovers, so Run completes normally.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTwiceErrors(t *testing.T) {
	k := NewKernel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err == nil {
		t.Fatal("second Run did not error")
	}
}

func TestClockMonotoneQuick(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		k := NewKernel()
		last := Time(-1)
		ok := true
		for _, d := range delaysRaw {
			d := Duration(d) * Microsecond
			k.After(d, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	if s := (1500 * Millisecond).String(); s != "1.500s" {
		t.Fatalf("String = %q", s)
	}
	if sec := (2 * Second).Seconds(); sec != 2 {
		t.Fatalf("Seconds = %v", sec)
	}
}
