package simtime

import "testing"

func TestAtPastPanics(t *testing.T) {
	k := NewKernel()
	k.After(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		k.At(0, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAfterNegativePanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestSignalWithoutWaitersIsNoop(t *testing.T) {
	k := NewKernel()
	c := k.NewCond("x")
	c.Signal()
	c.Broadcast()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayZeroYields(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Spawn("p", func(p *Proc) {
		k.After(0, func() { order = append(order, 1) })
		p.Delay(0)
		order = append(order, 2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v (Delay(0) must let queued events run)", order)
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel()
	k.Spawn("named", func(p *Proc) {
		if p.Name() != "named" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel mismatch")
		}
		p.Delay(Second)
		if p.Now() != Second || k.Now() != Second {
			t.Error("Now mismatch")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeStringUnits(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{500, "500ns"},
		{2500, "2.5us"},
		{Millisecond / 2, "500us"},
		{17 * Millisecond, "17ms"},
		{1500 * Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
