package optimizer

import (
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/simtime"
	"hierdb/internal/xrand"
)

func newOpt() *Optimizer {
	return New(plan.DefaultCosts(), cluster.DefaultConfig(1, 1))
}

func genQuery(seed uint64, rels int) *querygen.Query {
	p := querygen.DefaultParams(2)
	p.Relations = rels
	return querygen.Generate(xrand.New(seed), "q", p)
}

func TestBestTreesCoverAllRelations(t *testing.T) {
	o := newOpt()
	for seed := uint64(1); seed <= 10; seed++ {
		q := genQuery(seed, 8)
		trees := o.BestTrees(q, 2)
		if len(trees) == 0 {
			t.Fatalf("seed %d: no trees", seed)
		}
		for ti, jt := range trees {
			count := countLeaves(jt)
			if count != 8 {
				t.Fatalf("seed %d tree %d covers %d relations", seed, ti, count)
			}
		}
	}
}

func countLeaves(n *plan.JoinNode) int {
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

func TestTwoBestTreesDifferAtRoot(t *testing.T) {
	o := newOpt()
	q := genQuery(3, 10)
	trees := o.BestTrees(q, 2)
	if len(trees) != 2 {
		t.Fatalf("got %d trees", len(trees))
	}
	l1, l2 := leafSet(trees[0].Left), leafSet(trees[1].Left)
	if l1 == l2 {
		t.Fatal("both trees share the same root split")
	}
}

func leafSet(n *plan.JoinNode) string {
	if n.IsLeaf() {
		return n.Rel.Name + ";"
	}
	return leafSet(n.Left) + leafSet(n.Right)
}

func TestOptimalNotWorseThanLeftDeep(t *testing.T) {
	o := newOpt()
	for seed := uint64(20); seed < 30; seed++ {
		q := genQuery(seed, 7)
		trees := o.BestTrees(q, 1)
		best := intermediateSum(trees[0])
		// Any valid alternative must cost at least as much; construct a
		// greedy tree by joining edges in order.
		alt := chainTree(q)
		alt.EstimateCards()
		if got := intermediateSum(alt); got+1e-6 < best {
			t.Fatalf("seed %d: DP (%g) worse than greedy (%g)", seed, best, got)
		}
	}
}

func intermediateSum(n *plan.JoinNode) float64 {
	if n.IsLeaf() {
		return 0
	}
	return float64(n.Card) + intermediateSum(n.Left) + intermediateSum(n.Right)
}

// chainTree joins relations edge by edge (a valid but usually suboptimal
// plan).
func chainTree(q *querygen.Query) *plan.JoinNode {
	comp := make([]int, len(q.Relations))
	for i := range comp {
		comp[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if comp[x] != x {
			comp[x] = find(comp[x])
		}
		return comp[x]
	}
	tree := make(map[int]*plan.JoinNode)
	for i, rel := range q.Relations {
		tree[i] = &plan.JoinNode{Rel: rel}
	}
	var root *plan.JoinNode
	for _, e := range q.Edges {
		ca, cb := find(e.A), find(e.B)
		n := &plan.JoinNode{Left: tree[ca], Right: tree[cb], Selectivity: e.Selectivity}
		comp[cb] = ca
		tree[ca] = n
		root = n
	}
	return root
}

func TestPlansExpandAndValidate(t *testing.T) {
	o := newOpt()
	q := genQuery(5, 12)
	plans := o.Plans(q, 2, catalog.AllNodes(4))
	if len(plans) != 2 {
		t.Fatalf("%d plans", len(plans))
	}
	for _, pt := range plans {
		if err := pt.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(pt.Chains) != 12 {
			t.Fatalf("plan %s has %d chains", pt.Name, len(pt.Chains))
		}
	}
	if plans[0].Name == plans[1].Name {
		t.Fatal("plans share a name")
	}
}

func TestSequentialTimePositiveAndStable(t *testing.T) {
	o := newOpt()
	q := genQuery(6, 12)
	t1 := o.SequentialTime(q)
	t2 := o.SequentialTime(q)
	if t1 <= 0 {
		t.Fatalf("sequential time %v", t1)
	}
	if t1 != t2 {
		t.Fatalf("non-deterministic estimate: %v vs %v", t1, t2)
	}
}

func TestDistortedWorkZeroRateMatchesTruth(t *testing.T) {
	o := newOpt()
	q := genQuery(7, 8)
	pt := o.Plans(q, 1, catalog.AllNodes(2))[0]
	work := DistortedWork(pt, xrand.New(1), 0, o.Costs, o.Cfg)
	for _, op := range pt.Ops {
		truth := o.Costs.OpWork(op, o.Cfg)
		got := work[op.ID]
		diff := got - truth
		if diff < 0 {
			diff = -diff
		}
		// Rounding through float64 may shift a few instructions.
		if truth > 0 && float64(diff)/float64(truth) > 0.01 {
			t.Fatalf("%s: distorted %v vs truth %v", op.Name, got, truth)
		}
	}
}

func TestDistortedWorkChangesWithRate(t *testing.T) {
	o := newOpt()
	q := genQuery(8, 8)
	pt := o.Plans(q, 1, catalog.AllNodes(2))[0]
	w0 := DistortedWork(pt, xrand.New(2), 0, o.Costs, o.Cfg)
	w30 := DistortedWork(pt, xrand.New(2), 0.30, o.Costs, o.Cfg)
	diff := false
	for i := range w0 {
		if w0[i] != w30[i] {
			diff = true
		}
		if w30[i] < 0 {
			t.Fatalf("negative distorted work %v", w30[i])
		}
	}
	if !diff {
		t.Fatal("30% distortion changed nothing")
	}
}

func TestDistortionStaysBounded(t *testing.T) {
	// With rate r, a scan's distorted work must stay within (1±r) of
	// truth (joins may compound).
	o := newOpt()
	q := genQuery(9, 6)
	pt := o.Plans(q, 1, catalog.AllNodes(2))[0]
	rate := 0.2
	w := DistortedWork(pt, xrand.New(3), rate, o.Costs, o.Cfg)
	for _, op := range pt.Ops {
		if op.Kind != plan.Scan {
			continue
		}
		truth := o.Costs.OpWork(op, o.Cfg)
		lo := simtime.Duration(float64(truth) * (1 - rate - 0.01))
		hi := simtime.Duration(float64(truth) * (1 + rate + 0.01))
		// IO time is not distorted, so the bound is loose but must hold.
		if w[op.ID] < lo-truth || w[op.ID] > hi+truth {
			t.Fatalf("%s distorted work %v far outside [%v, %v]", op.Name, w[op.ID], lo, hi)
		}
	}
}
