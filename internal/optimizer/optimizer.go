// Package optimizer produces bushy join trees for the generated queries,
// standing in for the DBS3 optimizer the paper uses (§5.1.2: "Each query is
// then run through our DBS3 query optimizer ... For each query, the two
// best bushy operator trees are retained").
//
// The search is exact dynamic programming over connected sub-graphs of the
// acyclic predicate graph, minimizing the classic sum-of-intermediate-
// result-sizes objective ([Shekita93]). Because the predicate graph is a
// tree, every connected split has exactly one crossing join edge.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"

	"hierdb/internal/cluster"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/simtime"
	"hierdb/internal/xrand"
)

// Optimizer holds the cost model configuration.
type Optimizer struct {
	Costs plan.Costs
	Cfg   cluster.Config
}

// New returns an optimizer using the given cost constants and machine
// configuration (the machine matters only through disk/CPU speeds used for
// time estimates).
func New(costs plan.Costs, cfg cluster.Config) *Optimizer {
	return &Optimizer{Costs: costs, Cfg: cfg}
}

type mask = uint32

type dpEntry struct {
	cost  float64 // sum of intermediate result cardinalities
	card  float64 // output cardinality of the sub-plan
	split mask    // winning left part; 0 for single relations
	sel   float64 // selectivity of the crossing edge of the split
}

type searchState struct {
	q     *querygen.Query
	n     int
	adj   [][]int // adjacency: relation -> incident edge indices
	other []map[int]int
	conn  []bool
	best  []dpEntry
}

// search runs the DP and returns the state. It panics on queries with more
// than 20 relations (2^n table) or invalid structure.
func (o *Optimizer) search(q *querygen.Query) *searchState {
	if err := q.Validate(); err != nil {
		panic(err)
	}
	n := len(q.Relations)
	if n > 20 {
		panic(fmt.Sprintf("optimizer: %d relations exceeds DP capacity", n))
	}
	s := &searchState{q: q, n: n}
	s.adj = make([][]int, n)
	s.other = make([]map[int]int, n)
	for i := range s.other {
		s.other[i] = make(map[int]int)
	}
	for ei, e := range q.Edges {
		s.adj[e.A] = append(s.adj[e.A], ei)
		s.adj[e.B] = append(s.adj[e.B], ei)
		s.other[e.A][e.B] = ei
		s.other[e.B][e.A] = ei
	}
	size := 1 << n
	s.conn = make([]bool, size)
	s.best = make([]dpEntry, size)
	for i := range s.best {
		s.best[i] = dpEntry{cost: math.Inf(1)}
	}
	// Connectivity and single-relation base cases.
	for m := 1; m < size; m++ {
		s.conn[m] = s.connected(mask(m))
	}
	for i := 0; i < n; i++ {
		m := mask(1) << i
		s.best[m] = dpEntry{cost: 0, card: float64(q.Relations[i].Cardinality)}
	}
	// DP over subsets in increasing popcount (increasing numeric order
	// suffices because every proper submask is numerically smaller).
	for m := mask(1); int(m) < size; m++ {
		if !s.conn[m] || bits.OnesCount32(uint32(m)) < 2 {
			continue
		}
		lowest := m & (-m)
		for sub := (m - 1) & m; sub > 0; sub = (sub - 1) & m {
			if sub&lowest == 0 {
				continue // canonical form: left part holds the lowest bit
			}
			rest := m ^ sub
			if !s.conn[sub] || !s.conn[rest] {
				continue
			}
			ei, ok := s.crossingEdge(sub, rest)
			if !ok {
				continue
			}
			sel := s.q.Edges[ei].Selectivity
			card := sel * s.best[sub].card * s.best[rest].card
			if card < 1 {
				card = 1
			}
			cost := s.best[sub].cost + s.best[rest].cost + card
			if cost < s.best[m].cost {
				s.best[m] = dpEntry{cost: cost, card: card, split: sub, sel: sel}
			}
		}
		if math.IsInf(s.best[m].cost, 1) {
			panic("optimizer: connected subset with no plan")
		}
	}
	return s
}

// connected reports whether the relations in m induce a connected subgraph.
func (s *searchState) connected(m mask) bool {
	start := bits.TrailingZeros32(uint32(m))
	seen := mask(1) << start
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range s.adj[v] {
			e := s.q.Edges[ei]
			w := e.A + e.B - v
			wm := mask(1) << w
			if m&wm != 0 && seen&wm == 0 {
				seen |= wm
				stack = append(stack, w)
			}
		}
	}
	return seen == m
}

// crossingEdge returns the index of the (unique, since the predicate graph
// is a tree) edge joining the two parts, if any.
func (s *searchState) crossingEdge(a, b mask) (int, bool) {
	for v := 0; v < s.n; v++ {
		if a&(mask(1)<<v) == 0 {
			continue
		}
		for w, ei := range s.other[v] {
			if b&(mask(1)<<w) != 0 {
				return ei, true
			}
		}
	}
	return 0, false
}

// buildTree materializes the JoinNode tree for subset m.
func (s *searchState) buildTree(m mask) *plan.JoinNode {
	if bits.OnesCount32(uint32(m)) == 1 {
		i := bits.TrailingZeros32(uint32(m))
		return &plan.JoinNode{Rel: s.q.Relations[i]}
	}
	e := s.best[m]
	return &plan.JoinNode{
		Left:        s.buildTree(e.split),
		Right:       s.buildTree(m ^ e.split),
		Selectivity: e.sel,
	}
}

// BestTrees returns up to k join trees for q, ordered by estimated cost.
// The first is the DP optimum; subsequent trees are the best trees whose
// root split differs from all previously selected ones (the paper retains
// the two best bushy trees per query).
func (o *Optimizer) BestTrees(q *querygen.Query, k int) []*plan.JoinNode {
	s := o.search(q)
	full := mask(1)<<s.n - 1
	type rootSplit struct {
		split mask
		sel   float64
		cost  float64
	}
	var splits []rootSplit
	lowest := full & (-full)
	for sub := (full - 1) & full; sub > 0; sub = (sub - 1) & full {
		if sub&lowest == 0 {
			continue
		}
		rest := full ^ sub
		if !s.conn[sub] || !s.conn[rest] {
			continue
		}
		ei, ok := s.crossingEdge(sub, rest)
		if !ok {
			continue
		}
		sel := s.q.Edges[ei].Selectivity
		card := sel * s.best[sub].card * s.best[rest].card
		if card < 1 {
			card = 1
		}
		splits = append(splits, rootSplit{
			split: sub,
			sel:   sel,
			cost:  s.best[sub].cost + s.best[rest].cost + card,
		})
	}
	// Selection sort of the k cheapest distinct splits (k is tiny).
	var trees []*plan.JoinNode
	used := make(map[mask]bool)
	for len(trees) < k {
		bestIdx := -1
		for i, sp := range splits {
			if used[sp.split] {
				continue
			}
			if bestIdx == -1 || sp.cost < splits[bestIdx].cost {
				bestIdx = i
			}
		}
		if bestIdx == -1 {
			break
		}
		sp := splits[bestIdx]
		used[sp.split] = true
		tree := &plan.JoinNode{
			Left:        s.buildTree(sp.split),
			Right:       s.buildTree(full ^ sp.split),
			Selectivity: sp.sel,
		}
		tree.EstimateCards()
		trees = append(trees, tree)
	}
	return trees
}

// Plans optimizes q and macro-expands its k best trees into execution
// plans homed on home, with the paper's default scheduling. Plan names
// append a tree suffix (".t1", ".t2").
func (o *Optimizer) Plans(q *querygen.Query, k int, home []int) []*plan.Tree {
	return o.PlansSchedule(q, k, home, plan.DefaultSchedule())
}

// PlansSchedule is Plans with explicit scheduling heuristics (§2.2), e.g.
// the full-parallel strategy of §3.2 with both heuristics disabled.
func (o *Optimizer) PlansSchedule(q *querygen.Query, k int, home []int, sched plan.Schedule) []*plan.Tree {
	var out []*plan.Tree
	for i, jt := range o.BestTrees(q, k) {
		name := fmt.Sprintf("%s.t%d", q.Name, i+1)
		t := plan.ExpandSchedule(name, q, jt, home, sched)
		if err := t.Validate(); err != nil {
			panic(err)
		}
		out = append(out, t)
	}
	return out
}

// SequentialTime estimates the best plan's response time on one processor
// with one disk; used by the query-generation gate (§5.1.2: sequential
// response time between 30 minutes and one hour).
func (o *Optimizer) SequentialTime(q *querygen.Query) simtime.Duration {
	seq, _, _ := o.EstimateStats(q)
	return seq
}

// EstimateStats returns the best plan's estimated sequential response
// time, its base-relation volume and its intermediate-result volume (both
// in tuples). The generation gate bounds both: the paper's 40 plans total
// about 1.3 GB of base relations and about 4 GB of intermediate results
// (§5.1.2), i.e. intermediates a small multiple of the base data —
// without the second bound the response-time window selects degenerate
// queries whose last join dominates everything.
func (o *Optimizer) EstimateStats(q *querygen.Query) (seq simtime.Duration, baseTuples, intermediateTuples int64) {
	trees := o.BestTrees(q, 1)
	if len(trees) == 0 {
		return 0, 0, 0
	}
	t := plan.Expand(q.Name+".seq", q, trees[0], []int{0})
	for _, op := range t.Ops {
		switch op.Kind {
		case plan.Scan:
			baseTuples += op.InCard
		case plan.Probe:
			intermediateTuples += op.OutCard
		}
	}
	return o.Costs.TreeSequentialTime(t, o.Cfg), baseTuples, intermediateTuples
}

// DistortedWork computes per-operator work estimates under cost-model
// errors, following §5.2.1 exactly: "the cardinalities of base and
// intermediate relations are distorted by a value chosen in [-e,+e], which
// propagates errors in estimating the cost of operators and the number of
// allocated processors". Every relation — base or intermediate — draws an
// independent factor in [1-rate, 1+rate]; an operator's estimated work
// uses the distorted cardinality of the relation(s) it consumes and
// produces. Independent per-relation errors are what make the estimated
// work *ratios* inside a pipeline chain move, and with them FP's processor
// allocation.
//
// With rate 0 the result equals the true Costs.OpWork for every operator.
// The slice is indexed by operator ID.
func DistortedWork(t *plan.Tree, r *xrand.Rand, rate float64, costs plan.Costs, cfg cluster.Config) []simtime.Duration {
	if rate < 0 {
		panic("optimizer: negative distortion rate")
	}
	// distOut[id] is the distorted cardinality of the relation operator
	// id produces. Base relations draw an independent factor; every join
	// result multiplies the (already distorted) input estimates by the
	// selectivity and draws one more factor of its own. Relative errors
	// therefore *compound* with join depth, exactly the instability of
	// cost models the paper exploits (an 8-deep intermediate estimate
	// errs by (1±e)^k, not ±e).
	distOut := make([]float64, len(t.Ops))
	distIn := make([]float64, len(t.Ops))
	work := make([]simtime.Duration, len(t.Ops))
	// Operators were created children-first during macro-expansion, so a
	// single pass in ID order sees producers before consumers.
	for _, op := range t.Ops {
		switch op.Kind {
		case plan.Scan:
			distOut[op.ID] = float64(op.OutCard) * (1 + r.Range(-rate, rate))
			distIn[op.ID] = distOut[op.ID]
		case plan.Build:
			distOut[op.ID] = 0
		case plan.Probe:
			distOut[op.ID] = op.Selectivity * distIn[op.ID] * distIn[op.Partner.ID] *
				(1 + r.Range(-rate, rate))
		}
		if c := op.Consumer; c != nil {
			distIn[c.ID] = distOut[op.ID]
		}
		var instr float64
		switch op.Kind {
		case plan.Scan:
			instr = distOut[op.ID] * float64(costs.ScanTuple)
		case plan.Build:
			instr = distIn[op.ID] * float64(costs.BuildTuple)
		case plan.Probe:
			instr = distIn[op.ID]*float64(costs.ProbeTuple) + distOut[op.ID]*float64(costs.ResultTuple)
		}
		work[op.ID] = cfg.InstrTime(int64(instr)) + costs.OpIOTime(op, cfg)
	}
	return work
}
