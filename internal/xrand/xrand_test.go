package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("split substreams with different labels coincide")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(0).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRangeQuick(t *testing.T) {
	f := func(seed uint64, a, b uint32) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := New(seed).Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64RangeQuick(t *testing.T) {
	f := func(seed uint64, a int32, span uint16) bool {
		lo := int64(a)
		hi := lo + int64(span)
		v := New(seed).Int64Range(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for n := 1; n <= 50; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Share(i)-0.1) > 1e-12 {
			t.Fatalf("theta=0 share %d = %v, want 0.1", i, z.Share(i))
		}
	}
}

func TestZipfMonotoneShares(t *testing.T) {
	z := NewZipf(100, 0.8)
	for i := 1; i < 100; i++ {
		if z.Share(i) > z.Share(i-1)+1e-15 {
			t.Fatalf("shares not monotone at %d: %v > %v", i, z.Share(i), z.Share(i-1))
		}
	}
}

func TestZipfSharesSumToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.2, 0.5, 0.8, 1.0} {
		z := NewZipf(37, theta)
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Share(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("theta=%v shares sum to %v", theta, sum)
		}
	}
}

func TestZipfDrawInRange(t *testing.T) {
	z := NewZipf(23, 0.9)
	r := New(5)
	counts := make([]int, 23)
	for i := 0; i < 20000; i++ {
		v := z.Draw(r)
		if v < 0 || v >= 23 {
			t.Fatalf("Draw out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be clearly hottest under theta=0.9.
	if counts[0] <= counts[22] {
		t.Fatalf("Zipf draw not skewed: first=%d last=%d", counts[0], counts[22])
	}
}

func TestZipfApportionSums(t *testing.T) {
	f := func(seed uint64, nRaw uint8, totRaw uint32) bool {
		n := int(nRaw%64) + 1
		total := int64(totRaw % 1000000)
		z := NewZipf(n, 0.7)
		parts := z.Apportion(total)
		var sum int64
		for _, p := range parts {
			if p < 0 {
				return false
			}
			sum += p
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfApportionHeaviestFirst(t *testing.T) {
	z := NewZipf(8, 1.0)
	parts := z.Apportion(100000)
	for i := 1; i < len(parts); i++ {
		if parts[i] > parts[i-1] {
			t.Fatalf("apportion not monotone: %v", parts)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 0.5) },
		func() { NewZipf(5, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
