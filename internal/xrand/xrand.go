// Package xrand provides a small, deterministic random-number generator and
// the Zipf distribution used throughout the reproduction.
//
// The experiments in the paper average over randomly generated queries and
// skewed data placements. Reproducibility requires that every random draw be
// a pure function of an explicit seed, independent of map iteration order,
// scheduling, or the host; math/rand would be adequate, but a local
// SplitMix64 keeps the sequence stable across Go releases and lets us derive
// independent substreams cheaply.
package xrand

import "math"

// Rand is a deterministic pseudo-random generator (SplitMix64 core).
// The zero value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent substream. Streams derived with different
// labels (or from different parents) are statistically independent for our
// purposes.
func (r *Rand) Split(label uint64) *Rand {
	return New(r.Uint64() ^ (label*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Int64Range returns a uniform int64 in [lo, hi] inclusive.
func (r *Rand) Int64Range(lo, hi int64) int64 {
	if hi < lo {
		panic("xrand: Int64Range with hi < lo")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Perm returns a random permutation of [0, n), as in rand.Perm.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf describes a Zipf distribution over n ranks with parameter theta in
// [0, 1], following the formulation the paper cites (Zipf49): the weight of
// rank i (1-based) is proportional to 1/i^theta. theta = 0 yields the uniform
// distribution, theta = 1 the classic highly skewed Zipf.
type Zipf struct {
	n      int
	theta  float64
	cdf    []float64 // cumulative probabilities, cdf[n-1] == 1
	shares []float64 // individual probabilities
}

// NewZipf builds the distribution over n ranks. It panics if n <= 0 or
// theta < 0.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if theta < 0 {
		panic("xrand: NewZipf with negative theta")
	}
	z := &Zipf{n: n, theta: theta}
	z.shares = make([]float64, n)
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(i+1), theta)
		z.shares[i] = w
		sum += w
	}
	acc := 0.0
	for i := 0; i < n; i++ {
		z.shares[i] /= sum
		acc += z.shares[i]
		z.cdf[i] = acc
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Share returns the probability mass of rank i (0-based).
func (z *Zipf) Share(i int) float64 { return z.shares[i] }

// Draw samples a rank in [0, n) using r.
func (z *Zipf) Draw(r *Rand) int {
	u := r.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Apportion splits total units across the n ranks proportionally to the
// Zipf shares, using largest-remainder rounding so that the parts sum to
// total exactly. Rank order is preserved (rank 0 is the heaviest).
func (z *Zipf) Apportion(total int64) []int64 {
	parts := make([]int64, z.n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, z.n)
	var assigned int64
	for i := 0; i < z.n; i++ {
		exact := float64(total) * z.shares[i]
		fl := math.Floor(exact)
		parts[i] = int64(fl)
		assigned += parts[i]
		rems[i] = rem{idx: i, frac: exact - fl}
	}
	// Distribute the leftover to the largest remainders; stable order for
	// determinism (sort by frac desc, then index asc).
	left := total - assigned
	for left > 0 {
		best := -1
		for i := range rems {
			if best == -1 || rems[i].frac > rems[best].frac {
				best = i
			}
		}
		parts[rems[best].idx]++
		rems[best].frac = -1
		left--
	}
	return parts
}
