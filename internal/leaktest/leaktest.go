// Package leaktest is the shared goroutine-hygiene helper of the
// engine's test suites. Every test that spawns a query — on a raw
// exec.Pool, a multi-node exec.Nodes engine, or the hierdb.DB facade —
// registers Check first, so worker goroutines, context watchers,
// flushers and steal rounds are all proven to wind down with whatever
// the test tears down (pools close asynchronously, hence the polling).
//
// The complementary "pool-idle" discipline — after an abort, a fresh
// query on the same pool must complete — stays with the test packages,
// since running a query is surface-specific; this package owns the
// goroutine accounting both share.
package leaktest

import (
	"runtime"
	"testing"
	"time"
)

// settleTimeout bounds how long Settle polls for goroutines to wind
// down before declaring a leak.
const settleTimeout = 5 * time.Second

// Check snapshots the goroutine count and registers a cleanup that
// fails the test unless the count settles back to within slack of the
// snapshot. Register it before creating pools/engines/DBs: cleanups run
// last-in-first-out, so the leak check then runs after the test's own
// Close cleanups, and slack only needs to cover runtime background
// goroutines (2 is the suites' convention), not resident workers.
func Check(t testing.TB, slack int) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() { Settle(t, base, slack) })
}

// Settle polls until the goroutine count returns to within slack of
// base (worker pools wind down asynchronously after Close), failing the
// test at the timeout. Exposed for tests that need the check mid-test
// rather than at cleanup.
func Settle(t testing.TB, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(settleTimeout)
	for {
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before (slack %d)", runtime.NumGoroutine(), base, slack)
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
