package experiments

import "testing"

func TestShapesExtension(t *testing.T) {
	s := BenchScale()
	s.Queries = 2
	fig := Shapes(s, nil)
	if len(fig.Series) != 1 || len(fig.Series[0].Y) != 3 {
		t.Fatalf("bad shapes figure: %+v", fig)
	}
	for i, y := range fig.Series[0].Y {
		// Deep shapes should not dramatically beat the bushy optimum.
		if y < 0.5 {
			t.Fatalf("shape %d beat bushy by >2x: %v", i, fig.Series[0].Y)
		}
	}
}

func TestPlacementSkewExtension(t *testing.T) {
	s := BenchScale()
	s.Queries = 2
	fig := PlacementSkew(s, nil)
	y := fig.Series[0].Y
	if y[0] != 1 {
		t.Fatalf("reference not 1: %v", y)
	}
	for _, v := range y {
		if v <= 0 || v > 5 {
			t.Fatalf("implausible placement-skew ratio: %v", y)
		}
	}
}

func TestConcurrentChainsExtension(t *testing.T) {
	s := BenchScale()
	s.Queries = 2
	fig := ConcurrentChains(s, nil)
	y := fig.Series[0].Y
	if len(y) != 2 || y[0] != 1 {
		t.Fatalf("bad chains figure: %v", y)
	}
	if y[1] <= 0 || y[1] > 3 {
		t.Fatalf("implausible full-parallel ratio: %v", y[1])
	}
}
