package experiments

import (
	"os"
	"testing"

	"hierdb/internal/cluster"
	"hierdb/internal/core"
)

// TestDebugTransfer is a diagnostic for Transfer hangs; enable with
// HIERDB_DEBUG=1.
func TestDebugTransfer(t *testing.T) {
	if os.Getenv("HIERDB_DEBUG") == "" {
		t.Skip("set HIERDB_DEBUG=1")
	}
	cfg := cluster.DefaultConfig(4, 2)
	tree := ChainPlan(5, 4, 10)
	t.Log(tree.String())
	opt := core.DefaultOptions(core.DP)
	opt.RedistributionSkew = 0.8
	r, err := core.Run(tree, cfg, opt)
	t.Logf("dp: %v err=%v", r, err)
}
