package experiments

import (
	"os"
	"testing"

	"hierdb/internal/cluster"
	"hierdb/internal/core"
)

// TestDebugTransferStats prints full run records for the transfer
// experiment. Enable with HIERDB_DEBUG=1.
func TestDebugTransferStats(t *testing.T) {
	if os.Getenv("HIERDB_DEBUG") == "" {
		t.Skip("set HIERDB_DEBUG=1")
	}
	cfg := cluster.DefaultConfig(4, 2)
	tree := ChainPlan(5, 4, 10)
	dp := mustDP(tree, cfg, func(o *core.Options) { o.RedistributionSkew = 0.8 })
	fp := mustFP(tree, cfg, 0, 1, func(o *core.Options) { o.RedistributionSkew = 0.8 })
	for _, r := range []interface{ String() string }{dp, fp} {
		t.Log(r.String())
	}
	t.Logf("DP rounds=%d ok=%d stolenActs=%d balBytes=%d balMsgs=%d idle=%v rt=%v",
		dp.StealRounds, dp.StealsSucceeded, dp.StolenActivations, dp.BalanceBytes, dp.BalanceMsgs, dp.Idle, dp.ResponseTime)
	t.Logf("FP rounds=%d ok=%d stolenActs=%d balBytes=%d balMsgs=%d idle=%v rt=%v",
		fp.StealRounds, fp.StealsSucceeded, fp.StolenActivations, fp.BalanceBytes, fp.BalanceMsgs, fp.Idle, fp.ResponseTime)
}
