package experiments

// The parallel run-matrix driver. Every figure of §5 is an embarrassingly
// parallel grid of independent simulations: each cell builds its own
// virtual-time kernel, cluster and engine, and is deterministic in its
// inputs. RunMatrix fans those cells across a bounded worker pool while
// keeping the figure output bit-for-bit identical at any parallelism
// level:
//
//   - every run's RNG seed is a pure function of its grid coordinates
//     (plan index, draw index, ...), never of worker identity or
//     completion order;
//   - results land in an index-addressed slice, one slot per cell, so
//     aggregation always walks the grid in a fixed order regardless of
//     which worker finished first.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the Scale's Parallelism knob: 0 (the default) uses one
// worker per available processor.
func (s Scale) workers() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RunMatrix executes jobs 0..n-1 on a pool of the given number of workers.
// do(i) must write its result only to storage addressed by i (or derived
// grid coordinates); it must not depend on the progress of other jobs.
// Jobs are claimed in index order but may complete in any order; RunMatrix
// returns once every job has finished. A panic inside a job is captured
// and re-raised from the caller's goroutine after the pool drains — when
// several jobs panic, the lowest-indexed panic wins so the failure is
// deterministic too.
func RunMatrix(workers, n int, do func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			do(i)
		}
		return
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		failed bool
		fIdx   int
		fVal   interface{}
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if !failed || i < fIdx {
								failed, fIdx, fVal = true, i, r
							}
							mu.Unlock()
						}
					}()
					do(i)
				}()
			}
		}()
	}
	wg.Wait()
	if failed {
		panic(fmt.Sprintf("experiments: run %d of matrix: %v", fIdx, fVal))
	}
}

// tracker makes Progress reporting safe under RunMatrix: it serializes
// concurrent progress lines and prefixes each with an aggregated
// completed/total run count (the per-line counts a driver prints, like
// plan=3/8, describe the cell's grid coordinates, not global progress).
type tracker struct {
	mu    sync.Mutex
	p     Progress
	done  int
	total int
}

// newTracker wraps p for total expected runs; a nil p yields a tracker
// whose step is a cheap no-op.
func newTracker(p Progress, total int) *tracker {
	return &tracker{p: p, total: total}
}

// step records one completed run and emits its progress line.
func (t *tracker) step(format string, args ...interface{}) {
	if t.p == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	t.p("[%d/%d] "+format, append([]interface{}{t.done, t.total}, args...)...)
}
