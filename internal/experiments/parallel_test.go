package experiments

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// tinyScale trims BenchScale further so the determinism table (which runs
// every driver several times) stays fast.
func tinyScale() Scale {
	s := BenchScale()
	s.Queries = 2
	s.Fig6Procs = []int{2, 4}
	s.Fig7Procs = []int{2}
	s.Fig7Rates = []float64{0, 0.3}
	s.Fig7Plans = 2
	s.Fig7Draws = 2
	s.Fig8Procs = []int{1, 4}
	s.Fig9Skews = []float64{0, 1}
	s.Fig9Procs = 4
	s.Fig10PPN = []int{2}
	return s
}

// TestFigureDeterminismAcrossParallelism asserts the core guarantee of the
// run-matrix driver: every figure renders byte-identically at parallelism
// 1, 2, 8 and GOMAXPROCS. Running the 8-worker case under -race also
// serves as the race check for the drivers and the Progress tracker.
func TestFigureDeterminismAcrossParallelism(t *testing.T) {
	drivers := []struct {
		name string
		run  func(Scale, Progress) *Figure
	}{
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"transfer", Transfer},
		{"shapes", Shapes},
		{"placement", PlacementSkew},
		{"chains", ConcurrentChains},
	}
	levels := []int{1, 2, 8, runtime.GOMAXPROCS(0)}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			var ref string
			for _, par := range levels {
				s := tinyScale()
				s.Parallelism = par
				var lines atomic.Int64
				got := d.run(s, func(string, ...interface{}) { lines.Add(1) }).String()
				if ref == "" {
					ref = got
					continue
				}
				if got != ref {
					t.Errorf("parallelism %d rendered a different figure:\n--- parallelism 1 ---\n%s--- parallelism %d ---\n%s",
						par, ref, par, got)
				}
				if lines.Load() == 0 {
					t.Errorf("parallelism %d: no progress lines", par)
				}
			}
		})
	}
}

// TestProgressAggregatedCounts checks the tracker prefixes every line with
// a monotonically complete [done/total] count.
func TestProgressAggregatedCounts(t *testing.T) {
	s := tinyScale()
	s.Parallelism = 4
	var mu sync.Mutex
	var lines []string
	Fig6(s, func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, format)
	})
	want := len(s.Fig6Procs) * s.Queries * s.TreesPerQuery
	if len(lines) != want {
		t.Fatalf("got %d progress lines, want %d", len(lines), want)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "[%d/%d] ") {
			t.Fatalf("line without aggregated count prefix: %q", l)
		}
	}
}

// TestSeedsDependOnGridCoordinatesOnly pins the seed derivation: a run's
// distortion seed is a pure function of its draw index, never of worker
// identity or completion order.
func TestSeedsDependOnGridCoordinatesOnly(t *testing.T) {
	want := map[int]uint64{0: 7919, 1: 2 * 7919, 2: 3 * 7919}
	// Concurrent calls from many goroutines must agree with the pure
	// per-coordinate value.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d, exp := range want {
				if got := fpDrawSeed(d); got != exp {
					t.Errorf("fpDrawSeed(%d) = %d, want %d", d, got, exp)
				}
			}
		}()
	}
	wg.Wait()
}

// TestRunMatrix checks the pool runs every job exactly once, honors the
// worker bound, and reports the lowest-indexed panic deterministically.
func TestRunMatrix(t *testing.T) {
	const n = 100
	var ran [n]atomic.Int64
	var active, peak atomic.Int64
	RunMatrix(4, n, func(i int) {
		a := active.Add(1)
		for {
			p := peak.Load()
			if a <= p || peak.CompareAndSwap(p, a) {
				break
			}
		}
		ran[i].Add(1)
		active.Add(-1)
	})
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("job %d ran %d times", i, got)
		}
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("worker bound violated: %d concurrent jobs", p)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "run 3 of matrix") {
			t.Fatalf("expected the lowest-indexed panic (job 3), got %v", r)
		}
	}()
	RunMatrix(8, 32, func(i int) {
		if i >= 3 && i%2 == 1 {
			panic("boom")
		}
	})
}
