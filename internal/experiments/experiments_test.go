package experiments

import (
	"strings"
	"testing"
)

func TestBuildWorkloadDeterministic(t *testing.T) {
	s := BenchScale()
	w1 := BuildWorkload(s, 1)
	w2 := BuildWorkload(s, 1)
	if len(w1.Plans) != len(w2.Plans) || len(w1.Plans) != s.Queries*s.TreesPerQuery {
		t.Fatalf("plan counts: %d vs %d", len(w1.Plans), len(w2.Plans))
	}
	for i := range w1.Plans {
		if w1.Plans[i].TotalInputTuples() != w2.Plans[i].TotalInputTuples() {
			t.Fatalf("plan %d differs across builds", i)
		}
	}
}

func TestBuildWorkloadValidPlans(t *testing.T) {
	s := BenchScale()
	for _, nodes := range []int{1, 4} {
		w := BuildWorkload(s, nodes)
		for _, p := range w.Plans {
			if err := p.Validate(); err != nil {
				t.Fatalf("nodes=%d: %v", nodes, err)
			}
		}
	}
}

func TestPaperScaleGate(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation is slow")
	}
	s := PaperScale()
	s.Queries = 2 // keep the test fast; the gate logic is what matters
	w := BuildWorkload(s, 1)
	if len(w.Plans) != 2*s.TreesPerQuery {
		t.Fatalf("%d plans", len(w.Plans))
	}
}

func TestChainPlanShape(t *testing.T) {
	tree := ChainPlan(5, 4, 10)
	last := tree.Chains[len(tree.Chains)-1]
	if len(last) != 5 {
		t.Fatalf("final chain has %d operators", len(last))
	}
	if tree.Joins != 4 {
		t.Fatalf("joins = %d", tree.Joins)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig6Bench(t *testing.T) {
	s := BenchScale()
	s.Queries = 2
	s.Fig6Procs = []int{2, 4}
	fig := Fig6(s, nil)
	if len(fig.Series) != 3 {
		t.Fatalf("%d series", len(fig.Series))
	}
	for _, pt := range fig.Series[1].Y { // DP relative to SP
		if pt < 0.8 || pt > 2.5 {
			t.Fatalf("DP relative performance out of plausible band: %v", fig.Series[1].Y)
		}
	}
	for i := range fig.Series[2].Y { // FP at least as slow as DP on average
		if fig.Series[2].Y[i]+0.05 < fig.Series[1].Y[i] {
			t.Fatalf("FP (%v) better than DP (%v)", fig.Series[2].Y, fig.Series[1].Y)
		}
	}
}

func TestFig9BenchSkewInsensitive(t *testing.T) {
	s := BenchScale()
	s.Queries = 2
	s.Fig9Skews = []float64{0, 1}
	s.Fig9Procs = 4
	fig := Fig9(s, nil)
	y := fig.Series[0].Y
	if y[0] != 1 {
		t.Fatalf("no-skew reference not 1: %v", y)
	}
	// Paper: insignificant; allow generous slack at bench scale.
	if y[len(y)-1] > 1.6 {
		t.Fatalf("DP skew degradation too large: %v", y)
	}
}

func TestTransferBench(t *testing.T) {
	s := BenchScale()
	fig := Transfer(s, nil)
	dpBytes := fig.Series[0].Y[0]
	fpBytes := fig.Series[0].Y[1]
	if fpBytes > 0 && dpBytes > fpBytes {
		t.Fatalf("DP moved more LB bytes (%v) than FP (%v)", dpBytes, fpBytes)
	}
	if fig.String() == "" {
		t.Fatal("empty render")
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		ID: "x", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
		Notes:  []string{"n"},
	}
	out := fig.String()
	for _, want := range []string{"== x: t ==", "a", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestParamTables(t *testing.T) {
	out := ParamTables()
	for _, want := range []string{"500us", "10000 instr", "17ms", "5ms", "6 MB/s", "8 pages"} {
		if !strings.Contains(out, want) {
			t.Fatalf("param tables missing %q:\n%s", want, out)
		}
	}
}
