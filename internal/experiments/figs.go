package experiments

// Drivers for the shared-memory experiments (§5.2): Figures 6, 7, 8, 9.
// Each driver enumerates its (plan, config, option) grid as independent
// run specs and fans them across RunMatrix; see matrix.go for the
// determinism contract.

import (
	"fmt"

	"hierdb/internal/baseline"
	"hierdb/internal/cluster"
	"hierdb/internal/core"
	"hierdb/internal/metrics"
	"hierdb/internal/plan"
)

func mustSP(tree *plan.Tree, cfg cluster.Config) *metrics.Run {
	r, err := baseline.RunSP(tree, cfg, baseline.DefaultSPOptions())
	if err != nil {
		panic(err)
	}
	return r
}

func mustDP(tree *plan.Tree, cfg cluster.Config, mutate func(*core.Options)) *metrics.Run {
	r, err := baseline.RunDP(tree, cfg, mutate)
	if err != nil {
		panic(err)
	}
	return r
}

func mustFP(tree *plan.Tree, cfg cluster.Config, rate float64, seed uint64, mutate func(*core.Options)) *metrics.Run {
	r, err := baseline.RunFP(tree, cfg, rate, seed, mutate)
	if err != nil {
		panic(err)
	}
	return r
}

// fpDrawSeed derives the FP distortion seed for a draw index — a pure
// function of the grid coordinate, so Fig7's draws are reproducible at any
// parallelism level.
func fpDrawSeed(draw int) uint64 { return uint64(draw+1) * 7919 }

// Fig6 regenerates Figure 6: relative performance of SP, DP and FP on a
// single SM-node for several processor counts, no skew, SP as reference.
func Fig6(s Scale, prog Progress) *Figure {
	w := BuildWorkload(s, 1)
	fig := &Figure{
		ID:     "fig6",
		Title:  "Relative performance of SP, DP and FP (shared memory, no skew)",
		XLabel: "processors",
		YLabel: "avg response time / SP response time",
	}
	// Grid: (processor count) x (plan); each cell runs SP, DP and FP on
	// the same tree and records the two relatives against SP.
	type cell struct{ dp, fp float64 }
	np := len(w.Plans)
	grid := make([]cell, len(s.Fig6Procs)*np)
	tr := newTracker(prog, len(grid))
	RunMatrix(s.workers(), len(grid), func(i int) {
		ci, pi := i/np, i%np
		procs := s.Fig6Procs[ci]
		cfg := cluster.DefaultConfig(1, procs)
		tree := w.Plans[pi]
		sp := mustSP(tree, cfg)
		dp := mustDP(tree, cfg, nil)
		fp := mustFP(tree, cfg, 0, 1, nil)
		grid[i] = cell{dp: dp.Relative(sp), fp: fp.Relative(sp)}
		tr.step("fig6 procs=%d plan=%d/%d sp=%v dp=%v fp=%v",
			procs, pi+1, np, sp.ResponseTime, dp.ResponseTime, fp.ResponseTime)
	})
	var xs, spY, dpY, fpY []float64
	for ci, procs := range s.Fig6Procs {
		var dpSum, fpSum float64
		for pi := 0; pi < np; pi++ {
			c := grid[ci*np+pi]
			dpSum += c.dp
			fpSum += c.fp
		}
		n := float64(np)
		xs = append(xs, float64(procs))
		spY = append(spY, 1)
		dpY = append(dpY, dpSum/n)
		fpY = append(fpY, fpSum/n)
	}
	fig.Series = []Series{
		{Label: "SP", X: xs, Y: spY},
		{Label: "DP", X: xs, Y: dpY},
		{Label: "FP", X: xs, Y: fpY},
	}
	fig.Notes = append(fig.Notes,
		"paper: SP always best; DP within a few percent of SP; FP always worse, worst at low processor counts")
	return fig
}

// Fig7 regenerates Figure 7: relative performance degradation of FP as the
// cost-model error rate grows, for several degrees of parallelism; SP is
// the reference response time, a restricted plan set with several random
// distortions per plan per rate (§5.2.1).
func Fig7(s Scale, prog Progress) *Figure {
	w := BuildWorkload(s, 1)
	plans := w.Plans
	if len(plans) > s.Fig7Plans {
		plans = plans[:s.Fig7Plans]
	}
	fig := &Figure{
		ID:     "fig7",
		Title:  "Impact of cost model errors on FP",
		XLabel: "error rate",
		YLabel: "avg FP response time / SP response time",
	}
	// Grid: (processor count) x (plan); each cell runs the SP reference
	// once and every (rate, draw) distortion of FP against it, recording
	// one draw-summed partial per rate. Distortion seeds depend only on
	// the draw index (fpDrawSeed).
	np, npl, nr := len(s.Fig7Procs), len(plans), len(s.Fig7Rates)
	part := make([]float64, np*npl*nr)
	tr := newTracker(prog, np*npl)
	RunMatrix(s.workers(), np*npl, func(i int) {
		ci, pi := i/npl, i%npl
		procs := s.Fig7Procs[ci]
		cfg := cluster.DefaultConfig(1, procs)
		tree := plans[pi]
		sp := mustSP(tree, cfg)
		for ri, rate := range s.Fig7Rates {
			var sum float64
			for d := 0; d < s.Fig7Draws; d++ {
				fp := mustFP(tree, cfg, rate, fpDrawSeed(d), nil)
				sum += fp.Relative(sp)
			}
			part[(ci*npl+pi)*nr+ri] = sum
		}
		tr.step("fig7 procs=%d plan=%d/%d (%d rates x %d draws)",
			procs, pi+1, npl, nr, s.Fig7Draws)
	})
	for ci, procs := range s.Fig7Procs {
		var xs, ys []float64
		for ri, rate := range s.Fig7Rates {
			var sum float64
			for pi := 0; pi < npl; pi++ {
				sum += part[(ci*npl+pi)*nr+ri]
			}
			xs = append(xs, rate)
			ys = append(ys, sum/float64(npl*s.Fig7Draws))
		}
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("%d procs", procs), X: xs, Y: ys})
	}
	fig.Notes = append(fig.Notes,
		"paper: degradation grows with the error rate; few processors degrade hardest (threshold near 20% at 8 procs)")
	return fig
}

// Fig8 regenerates Figure 8: average speedup of SP, DP and FP versus the
// number of processors (speedup = same-strategy 1-processor response time
// over p-processor response time).
func Fig8(s Scale, prog Progress) *Figure {
	w := BuildWorkload(s, 1)
	fig := &Figure{
		ID:     "fig8",
		Title:  "Speedup of SP, DP and FP (shared memory, no skew)",
		XLabel: "processors",
		YLabel: "avg speedup vs 1 processor",
	}
	type runner struct {
		label string
		run   func(tree *plan.Tree, cfg cluster.Config) *metrics.Run
	}
	runners := []runner{
		{"SP", func(tr *plan.Tree, cfg cluster.Config) *metrics.Run { return mustSP(tr, cfg) }},
		{"DP", func(tr *plan.Tree, cfg cluster.Config) *metrics.Run { return mustDP(tr, cfg, nil) }},
		{"FP", func(tr *plan.Tree, cfg cluster.Config) *metrics.Run { return mustFP(tr, cfg, 0, 1, nil) }},
	}
	// Grid: (strategy) x (plan); each cell runs the 1-processor base and
	// then the whole processor sweep of that plan under that strategy.
	np := len(w.Plans)
	speedups := make([][]float64, len(runners)*np)
	tr := newTracker(prog, len(speedups))
	RunMatrix(s.workers(), len(speedups), func(i int) {
		ri, pi := i/np, i%np
		rn := runners[ri]
		tree := w.Plans[pi]
		base := rn.run(tree, cluster.DefaultConfig(1, 1))
		row := make([]float64, len(s.Fig8Procs))
		for ci, procs := range s.Fig8Procs {
			r := base
			if procs != 1 {
				r = rn.run(tree, cluster.DefaultConfig(1, procs))
			}
			row[ci] = r.Speedup(base)
		}
		speedups[i] = row
		tr.step("fig8 %s plan=%d/%d base rt=%v (%d processor counts)",
			rn.label, pi+1, np, base.ResponseTime, len(s.Fig8Procs))
	})
	for ri, rn := range runners {
		var xs, ys []float64
		for ci, procs := range s.Fig8Procs {
			var sum float64
			for pi := 0; pi < np; pi++ {
				sum += speedups[ri*np+pi][ci]
			}
			xs = append(xs, float64(procs))
			ys = append(ys, sum/float64(np))
		}
		fig.Series = append(fig.Series, Series{Label: rn.label, X: xs, Y: ys})
	}
	fig.Notes = append(fig.Notes,
		"paper: near-linear speedup for SP and DP up to 32 processors; FP below both")
	return fig
}

// Fig9 regenerates Figure 9: relative performance degradation of DP as the
// redistribution skew (Zipf factor) grows, at the paper's 64 processors;
// the no-skew run of the same plan is the reference.
func Fig9(s Scale, prog Progress) *Figure {
	w := BuildWorkload(s, 1)
	cfg := cluster.DefaultConfig(1, s.Fig9Procs)
	fig := &Figure{
		ID:     "fig9",
		Title:  fmt.Sprintf("Impact of redistribution skew on DP (%d processors)", s.Fig9Procs),
		XLabel: "skew (Zipf)",
		YLabel: "avg response time / no-skew response time",
	}
	// Grid: one cell per plan; each cell runs the no-skew reference and
	// the whole skew sweep of that plan.
	ratios := make([][]float64, len(w.Plans))
	tr := newTracker(prog, len(ratios))
	RunMatrix(s.workers(), len(ratios), func(pi int) {
		tree := w.Plans[pi]
		base := mustDP(tree, cfg, func(o *core.Options) { o.RedistributionSkew = 0 })
		row := make([]float64, len(s.Fig9Skews))
		for si, skew := range s.Fig9Skews {
			r := base
			if skew != 0 {
				r = mustDP(tree, cfg, func(o *core.Options) { o.RedistributionSkew = skew })
			}
			row[si] = r.Relative(base)
		}
		ratios[pi] = row
		tr.step("fig9 plan=%d/%d base rt=%v (%d skews)", pi+1, len(w.Plans), base.ResponseTime, len(s.Fig9Skews))
	})
	var xs, ys []float64
	for si, skew := range s.Fig9Skews {
		var sum float64
		for pi := range ratios {
			sum += ratios[pi][si]
		}
		xs = append(xs, skew)
		ys = append(ys, sum/float64(len(w.Plans)))
	}
	fig.Series = []Series{{Label: "DP", X: xs, Y: ys}}
	fig.Notes = append(fig.Notes,
		"paper: the impact of skew on DP is insignificant (within a few percent up to Zipf 1)")
	return fig
}
