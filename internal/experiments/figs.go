package experiments

// Drivers for the shared-memory experiments (§5.2): Figures 6, 7, 8, 9.

import (
	"fmt"

	"hierdb/internal/baseline"
	"hierdb/internal/cluster"
	"hierdb/internal/core"
	"hierdb/internal/metrics"
	"hierdb/internal/plan"
)

func mustSP(tree *plan.Tree, cfg cluster.Config) *metrics.Run {
	r, err := baseline.RunSP(tree, cfg, baseline.DefaultSPOptions())
	if err != nil {
		panic(err)
	}
	return r
}

func mustDP(tree *plan.Tree, cfg cluster.Config, mutate func(*core.Options)) *metrics.Run {
	r, err := baseline.RunDP(tree, cfg, mutate)
	if err != nil {
		panic(err)
	}
	return r
}

func mustFP(tree *plan.Tree, cfg cluster.Config, rate float64, seed uint64, mutate func(*core.Options)) *metrics.Run {
	r, err := baseline.RunFP(tree, cfg, rate, seed, mutate)
	if err != nil {
		panic(err)
	}
	return r
}

// Fig6 regenerates Figure 6: relative performance of SP, DP and FP on a
// single SM-node for several processor counts, no skew, SP as reference.
func Fig6(s Scale, prog Progress) *Figure {
	w := BuildWorkload(s, 1)
	fig := &Figure{
		ID:     "fig6",
		Title:  "Relative performance of SP, DP and FP (shared memory, no skew)",
		XLabel: "processors",
		YLabel: "avg response time / SP response time",
	}
	var xs []float64
	spY := make([]float64, 0, len(s.Fig6Procs))
	dpY := make([]float64, 0, len(s.Fig6Procs))
	fpY := make([]float64, 0, len(s.Fig6Procs))
	for _, procs := range s.Fig6Procs {
		cfg := cluster.DefaultConfig(1, procs)
		var dpSum, fpSum float64
		for pi, tree := range w.Plans {
			sp := mustSP(tree, cfg)
			dp := mustDP(tree, cfg, nil)
			fp := mustFP(tree, cfg, 0, 1, nil)
			dpSum += dp.Relative(sp)
			fpSum += fp.Relative(sp)
			progress(prog, "fig6 procs=%d plan=%d/%d sp=%v dp=%v fp=%v",
				procs, pi+1, len(w.Plans), sp.ResponseTime, dp.ResponseTime, fp.ResponseTime)
		}
		n := float64(len(w.Plans))
		xs = append(xs, float64(procs))
		spY = append(spY, 1)
		dpY = append(dpY, dpSum/n)
		fpY = append(fpY, fpSum/n)
	}
	fig.Series = []Series{
		{Label: "SP", X: xs, Y: spY},
		{Label: "DP", X: xs, Y: dpY},
		{Label: "FP", X: xs, Y: fpY},
	}
	fig.Notes = append(fig.Notes,
		"paper: SP always best; DP within a few percent of SP; FP always worse, worst at low processor counts")
	return fig
}

// Fig7 regenerates Figure 7: relative performance degradation of FP as the
// cost-model error rate grows, for several degrees of parallelism; SP is
// the reference response time, a restricted plan set with several random
// distortions per plan per rate (§5.2.1).
func Fig7(s Scale, prog Progress) *Figure {
	w := BuildWorkload(s, 1)
	plans := w.Plans
	if len(plans) > s.Fig7Plans {
		plans = plans[:s.Fig7Plans]
	}
	fig := &Figure{
		ID:     "fig7",
		Title:  "Impact of cost model errors on FP",
		XLabel: "error rate",
		YLabel: "avg FP response time / SP response time",
	}
	for _, procs := range s.Fig7Procs {
		cfg := cluster.DefaultConfig(1, procs)
		var xs, ys []float64
		for _, rate := range s.Fig7Rates {
			var sum float64
			n := 0
			for pi, tree := range plans {
				sp := mustSP(tree, cfg)
				for d := 0; d < s.Fig7Draws; d++ {
					fp := mustFP(tree, cfg, rate, uint64(d+1)*7919, nil)
					sum += fp.Relative(sp)
					n++
				}
				progress(prog, "fig7 procs=%d rate=%.0f%% plan=%d/%d", procs, rate*100, pi+1, len(plans))
			}
			xs = append(xs, rate)
			ys = append(ys, sum/float64(n))
		}
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("%d procs", procs), X: xs, Y: ys})
	}
	fig.Notes = append(fig.Notes,
		"paper: degradation grows with the error rate; few processors degrade hardest (threshold near 20% at 8 procs)")
	return fig
}

// Fig8 regenerates Figure 8: average speedup of SP, DP and FP versus the
// number of processors (speedup = same-strategy 1-processor response time
// over p-processor response time).
func Fig8(s Scale, prog Progress) *Figure {
	w := BuildWorkload(s, 1)
	fig := &Figure{
		ID:     "fig8",
		Title:  "Speedup of SP, DP and FP (shared memory, no skew)",
		XLabel: "processors",
		YLabel: "avg speedup vs 1 processor",
	}
	type runner struct {
		label string
		run   func(tree *plan.Tree, cfg cluster.Config) *metrics.Run
	}
	runners := []runner{
		{"SP", func(tr *plan.Tree, cfg cluster.Config) *metrics.Run { return mustSP(tr, cfg) }},
		{"DP", func(tr *plan.Tree, cfg cluster.Config) *metrics.Run { return mustDP(tr, cfg, nil) }},
		{"FP", func(tr *plan.Tree, cfg cluster.Config) *metrics.Run { return mustFP(tr, cfg, 0, 1, nil) }},
	}
	for _, rn := range runners {
		base := make([]*metrics.Run, len(w.Plans))
		baseCfg := cluster.DefaultConfig(1, 1)
		for pi, tree := range w.Plans {
			base[pi] = rn.run(tree, baseCfg)
			progress(prog, "fig8 %s base plan=%d/%d rt=%v", rn.label, pi+1, len(w.Plans), base[pi].ResponseTime)
		}
		var xs, ys []float64
		for _, procs := range s.Fig8Procs {
			cfg := cluster.DefaultConfig(1, procs)
			var sum float64
			for pi, tree := range w.Plans {
				var r *metrics.Run
				if procs == 1 {
					r = base[pi]
				} else {
					r = rn.run(tree, cfg)
				}
				sum += r.Speedup(base[pi])
				progress(prog, "fig8 %s procs=%d plan=%d/%d speedup=%.2f",
					rn.label, procs, pi+1, len(w.Plans), r.Speedup(base[pi]))
			}
			xs = append(xs, float64(procs))
			ys = append(ys, sum/float64(len(w.Plans)))
		}
		fig.Series = append(fig.Series, Series{Label: rn.label, X: xs, Y: ys})
	}
	fig.Notes = append(fig.Notes,
		"paper: near-linear speedup for SP and DP up to 32 processors; FP below both")
	return fig
}

// Fig9 regenerates Figure 9: relative performance degradation of DP as the
// redistribution skew (Zipf factor) grows, at the paper's 64 processors;
// the no-skew run of the same plan is the reference.
func Fig9(s Scale, prog Progress) *Figure {
	w := BuildWorkload(s, 1)
	cfg := cluster.DefaultConfig(1, s.Fig9Procs)
	fig := &Figure{
		ID:     "fig9",
		Title:  fmt.Sprintf("Impact of redistribution skew on DP (%d processors)", s.Fig9Procs),
		XLabel: "skew (Zipf)",
		YLabel: "avg response time / no-skew response time",
	}
	base := make([]*metrics.Run, len(w.Plans))
	for pi, tree := range w.Plans {
		base[pi] = mustDP(tree, cfg, func(o *core.Options) { o.RedistributionSkew = 0 })
	}
	var xs, ys []float64
	for _, skew := range s.Fig9Skews {
		skew := skew
		var sum float64
		for pi, tree := range w.Plans {
			var r *metrics.Run
			if skew == 0 {
				r = base[pi]
			} else {
				r = mustDP(tree, cfg, func(o *core.Options) { o.RedistributionSkew = skew })
			}
			sum += r.Relative(base[pi])
			progress(prog, "fig9 skew=%.1f plan=%d/%d ratio=%.3f", skew, pi+1, len(w.Plans), r.Relative(base[pi]))
		}
		xs = append(xs, skew)
		ys = append(ys, sum/float64(len(w.Plans)))
	}
	fig.Series = []Series{{Label: "DP", X: xs, Y: ys}}
	fig.Notes = append(fig.Notes,
		"paper: the impact of skew on DP is insignificant (within a few percent up to Zipf 1)")
	return fig
}
