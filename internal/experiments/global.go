package experiments

// Drivers for the hierarchical (multi-node) experiments of §5.3: the
// in-text data-transfer comparison and Figure 10.

import (
	"fmt"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/core"
	"hierdb/internal/metrics"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/simdisk"
	"hierdb/internal/simnet"
)

// ChainPlan builds the §5.3 micro-benchmark: a single pipeline chain of
// `ops` operators (one scan plus ops-1 probes). The probing relation is
// large and the building relations small, so macro-expansion yields a
// right-deep cascade whose builds complete in the early chains and whose
// final chain is the long probe pipeline.
func ChainPlan(ops int, nodes int, cardDiv int64) *plan.Tree {
	if ops < 2 {
		panic("experiments: chain needs at least 2 operators")
	}
	home := catalog.AllNodes(nodes)
	big := &catalog.Relation{
		Name:        "DRIVER",
		Cardinality: 1_000_000 / cardDiv,
		TupleBytes:  catalog.DefaultTupleBytes,
		Home:        home,
	}
	rels := []*catalog.Relation{big}
	var edges []querygen.Edge
	joins := ops - 1
	for i := 0; i < joins; i++ {
		// Medium-sized building relations: shipped hash-table buckets,
		// not activation payloads, dominate load-balancing traffic, as
		// in the paper's workloads.
		small := &catalog.Relation{
			Name:        fmt.Sprintf("DIM%d", i+1),
			Cardinality: 200_000 / cardDiv,
			TupleBytes:  catalog.DefaultTupleBytes,
			Home:        home,
		}
		rels = append(rels, small)
		// Selectivity keeps the stream cardinality constant along the
		// chain: |out| = |probe side|.
		edges = append(edges, querygen.Edge{
			A: 0, B: i + 1,
			Selectivity: 1 / float64(small.Cardinality),
		})
	}
	q := &querygen.Query{Name: fmt.Sprintf("chain%d", ops), Relations: rels, Edges: edges}
	if err := q.Validate(); err != nil {
		panic(err)
	}
	// Left-deep join tree: (((DRIVER x DIM1) x DIM2) ...). The smaller
	// side (DIMi) becomes the build everywhere, so the final pipeline
	// chain is Scan(DRIVER) -> Probe1 -> ... -> ProbeN.
	node := &plan.JoinNode{Rel: big}
	for i := 0; i < joins; i++ {
		node = &plan.JoinNode{
			Left:        node,
			Right:       &plan.JoinNode{Rel: rels[i+1]},
			Selectivity: edges[i].Selectivity,
		}
	}
	t := plan.Expand(q.Name, q, node, home)
	if err := t.Validate(); err != nil {
		panic(err)
	}
	// The last chain must be the ops-long probe pipeline.
	last := t.Chains[len(t.Chains)-1]
	if len(last) != ops {
		panic(fmt.Sprintf("experiments: final chain has %d operators, want %d", len(last), ops))
	}
	return t
}

// Transfer regenerates the §5.3 in-text comparison: the volume of data
// exchanged between nodes for global load balancing when executing a
// 5-operator pipeline chain with redistribution skew 0.8 on 4 SM-nodes of
// 8 processors (paper: FP moves ~9 MB, DP ~2.5 MB, a 2-4x difference).
func Transfer(s Scale, prog Progress) *Figure {
	nodes, ppn := 4, 8
	if s.Name == "bench" {
		ppn = 2
	}
	cfg := cluster.DefaultConfig(nodes, ppn)
	tree := ChainPlan(5, nodes, s.CardDivisor)
	skew := 0.8

	// Grid: one cell per strategy.
	runs := make([]*metrics.Run, 2)
	tr := newTracker(prog, len(runs))
	RunMatrix(s.workers(), len(runs), func(i int) {
		if i == 0 {
			runs[0] = mustDP(tree, cfg, func(o *core.Options) { o.RedistributionSkew = skew })
			tr.step("transfer dp rt=%v lbBytes=%d", runs[0].ResponseTime, runs[0].BalanceBytes)
		} else {
			runs[1] = mustFP(tree, cfg, 0, 1, func(o *core.Options) { o.RedistributionSkew = skew })
			tr.step("transfer fp rt=%v lbBytes=%d", runs[1].ResponseTime, runs[1].BalanceBytes)
		}
	})
	dp, fp := runs[0], runs[1]

	fig := &Figure{
		ID:     "transfer",
		Title:  "Load-balancing data volume, 5-operator pipeline chain, skew 0.8, " + cfg.String(),
		XLabel: "strategy (0=DP,1=FP)",
		YLabel: "bytes shipped for load sharing",
		Series: []Series{{
			Label: "LB bytes",
			X:     []float64{0, 1},
			Y:     []float64{float64(dp.BalanceBytes), float64(fp.BalanceBytes)},
		}},
	}
	ratio := 0.0
	if dp.BalanceBytes > 0 {
		ratio = float64(fp.BalanceBytes) / float64(dp.BalanceBytes)
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("DP shipped %d bytes in %d steal rounds (%d succeeded); FP shipped %d bytes in %d rounds (%d succeeded); FP/DP ratio %.2f",
			dp.BalanceBytes, dp.StealRounds, dp.StealsSucceeded,
			fp.BalanceBytes, fp.StealRounds, fp.StealsSucceeded, ratio),
		"paper: FP about 9 MB versus DP about 2.5 MB (FP 2-4x more)")
	return fig
}

// Fig10 regenerates Figure 10: relative performance of FP and DP on
// hierarchical configurations (4 nodes of 8/12/16 processors), with
// redistribution skew; DP is the reference.
func Fig10(s Scale, prog Progress) *Figure {
	fig := &Figure{
		ID:     "fig10",
		Title:  fmt.Sprintf("Relative performance of FP and DP (hierarchical, skew %.1f)", s.Fig10Skew),
		XLabel: "procs per node",
		YLabel: "avg response time / DP response time",
	}
	// The workload depends only on (scale, nodes), so it is shared by
	// every processors-per-node sweep point.
	w := BuildWorkload(s, s.Fig10Nodes)
	// Grid: (processors per node) x (plan); each cell runs DP and FP on
	// the same tree.
	type cell struct {
		rel            float64
		dpIdle, fpIdle float64
		dpLB, fpLB     float64
	}
	np := len(w.Plans)
	grid := make([]cell, len(s.Fig10PPN)*np)
	tr := newTracker(prog, len(grid))
	RunMatrix(s.workers(), len(grid), func(i int) {
		ci, pi := i/np, i%np
		cfg := cluster.DefaultConfig(s.Fig10Nodes, s.Fig10PPN[ci])
		tree := w.Plans[pi]
		dp := mustDP(tree, cfg, func(o *core.Options) { o.RedistributionSkew = s.Fig10Skew })
		fp := mustFP(tree, cfg, 0, 1, func(o *core.Options) { o.RedistributionSkew = s.Fig10Skew })
		grid[i] = cell{
			rel:    fp.Relative(dp),
			dpIdle: dp.Idle.Seconds(), fpIdle: fp.Idle.Seconds(),
			dpLB: float64(dp.BalanceBytes), fpLB: float64(fp.BalanceBytes),
		}
		tr.step("fig10 %s plan=%d/%d dp=%v fp=%v fp/dp=%.3f",
			cfg, pi+1, np, dp.ResponseTime, fp.ResponseTime, fp.Relative(dp))
	})
	var xs, dpY, fpY []float64
	var notes []string
	for ci, ppn := range s.Fig10PPN {
		cfg := cluster.DefaultConfig(s.Fig10Nodes, ppn)
		var fpSum, dpIdle, fpIdle, dpLB, fpLB float64
		for pi := 0; pi < np; pi++ {
			c := grid[ci*np+pi]
			fpSum += c.rel
			dpIdle += c.dpIdle
			fpIdle += c.fpIdle
			dpLB += c.dpLB
			fpLB += c.fpLB
		}
		n := float64(np)
		xs = append(xs, float64(ppn))
		dpY = append(dpY, 1)
		fpY = append(fpY, fpSum/n)
		lbRatio := 0.0
		if dpLB > 0 {
			lbRatio = fpLB / dpLB
		}
		notes = append(notes, fmt.Sprintf(
			"%s: FP/DP=%.3f, LB bytes FP/DP=%.2f, idle per plan DP=%.2fs FP=%.2fs",
			cfg, fpSum/n, lbRatio, dpIdle/n, fpIdle/n))
	}
	fig.Series = []Series{
		{Label: "DP", X: xs, Y: dpY},
		{Label: "FP", X: xs, Y: fpY},
	}
	fig.Notes = append(fig.Notes, notes...)
	fig.Notes = append(fig.Notes,
		"paper: DP outperforms FP by 14-39%; load-balancing traffic 2-4x smaller for DP; DP idle time almost null")
	return fig
}

// ParamTables renders the network and disk parameter tables of §5.1.1
// (tables T1 and T2 of DESIGN.md).
func ParamTables() string {
	n := simnet.DefaultParams()
	d := simdisk.DefaultParams()
	return fmt.Sprintf(`== T1: network parameters (§5.1.1) ==
Bandwidth                      infinite (as in the paper, based on [Mehta95])
End-to-end transmission delay  %v
CPU cost for sending 8K bytes  %d instr
CPU cost for receiving 8K      %d instr

== T2: disk parameters (§5.1.1) ==
Disks                          1 per processor
Disk latency                   %v
Seek time                      %v
Transfer rate                  %d MB/s
CPU cost for async I/O init    %d instr
I/O cache size                 %d pages
`,
		n.Delay, n.SendInstrPer8KB, n.RecvInstrPer8KB,
		d.Latency, d.Seek, d.TransferRate>>20, d.InitInstr, d.CachePages)
}
