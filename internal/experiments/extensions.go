package experiments

// Extension experiments beyond the paper's figures: the tree-shape
// comparison §2.2 motivates (bushy versus the deep shapes), the
// [Walton91] placement-skew dimension §5.2.2 mentions, and the
// concurrent-chain schedule of §3.2. EXPERIMENTS.md records them as
// extensions, clearly separated from the reproduced artifacts.

import (
	"fmt"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/core"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/xrand"
)

// Shapes compares DP response time across join-tree shapes (bushy = the
// optimizer's tree, reference) on one SM-node.
func Shapes(s Scale, prog Progress) *Figure {
	procs := 8
	cfg := cluster.DefaultConfig(1, procs)
	opt := optimizer.New(plan.DefaultCosts(), cfg)
	rng := xrand.New(s.Seed).Split(77)
	home := catalog.AllNodes(1)
	gp := querygen.Params{Relations: s.Relations, Nodes: 1, ClassWeights: s.ClassWeights}

	shapes := []plan.Shape{plan.LeftDeep, plan.RightDeep, plan.Zigzag}

	// Query generation consumes a single rng stream, so it stays
	// sequential; only the simulations fan out.
	type variant struct {
		bushy *plan.Tree
		deep  []*plan.Tree
	}
	variants := make([]variant, s.Queries)
	for qi := 0; qi < s.Queries; qi++ {
		q := querygen.Generate(rng, fmt.Sprintf("S%02d", qi+1), gp)
		scaleQuery(q, s.CardDivisor)
		v := variant{bushy: opt.Plans(q, 1, home)[0]}
		for _, shape := range shapes {
			jt, err := plan.DeepTree(q, shape)
			if err != nil {
				panic(err)
			}
			v.deep = append(v.deep, plan.Expand(fmt.Sprintf("%s.%v", q.Name, shape), q, jt, home))
		}
		variants[qi] = v
	}

	// Grid: one cell per query; each cell runs the bushy reference and
	// the three deep shapes of that query.
	rels := make([][]float64, s.Queries)
	tr := newTracker(prog, s.Queries)
	RunMatrix(s.workers(), s.Queries, func(qi int) {
		v := variants[qi]
		ref := mustDP(v.bushy, cfg, nil)
		row := make([]float64, len(shapes))
		for si, pt := range v.deep {
			r := mustDP(pt, cfg, nil)
			row[si] = r.Relative(ref)
		}
		rels[qi] = row
		tr.step("shapes q=%d/%d bushy rt=%v", qi+1, s.Queries, ref.ResponseTime)
	})

	sums := make([]float64, len(shapes))
	for qi := range rels {
		for si := range shapes {
			sums[si] += rels[qi][si]
		}
	}
	fig := &Figure{
		ID:     "shapes",
		Title:  fmt.Sprintf("DP across join-tree shapes (%d processors, bushy = 1)", procs),
		XLabel: "shape (0=left-deep,1=right-deep,2=zigzag)",
		YLabel: "avg response time / bushy response time",
	}
	var xs, ys []float64
	for si := range shapes {
		xs = append(xs, float64(si))
		ys = append(ys, sums[si]/float64(s.Queries))
	}
	fig.Series = []Series{{Label: "DP", X: xs, Y: ys}}
	fig.Notes = append(fig.Notes,
		"extension (not a paper artifact): §2.2 argues bushy trees minimize intermediate results; deep shapes should not beat the optimizer's bushy tree on average")
	return fig
}

// PlacementSkew measures DP sensitivity to tuple-placement skew
// ([Walton91]): base-relation partitions concentrated on the first nodes
// unbalance the trigger activations of scans across the hierarchy.
func PlacementSkew(s Scale, prog Progress) *Figure {
	nodes, ppn := 4, 4
	if s.Name == "bench" {
		ppn = 2
	}
	cfg := cluster.DefaultConfig(nodes, ppn)
	factors := []float64{0, 0.4, 0.8}
	w := BuildWorkload(s, nodes)
	fig := &Figure{
		ID:     "placement",
		Title:  fmt.Sprintf("Impact of tuple-placement skew on DP (%s)", cfg),
		XLabel: "placement skew (Zipf)",
		YLabel: "avg response time / no-skew response time",
	}
	// The skew factor lives on catalog.Relation objects shared by every
	// plan of a query, so factors run one after another: set the factor
	// on all relations, then fan the plans out (concurrent runs only
	// read it), then move to the next factor.
	base := make([]float64, len(w.Plans))
	tr := newTracker(prog, len(factors)*len(w.Plans))
	var xs, ys []float64
	for fi, f := range factors {
		for _, tree := range w.Plans {
			for _, rel := range tree.Query.Relations {
				rel.PlacementSkew = f
			}
		}
		rts := make([]float64, len(w.Plans))
		RunMatrix(s.workers(), len(w.Plans), func(pi int) {
			r := mustDP(w.Plans[pi], cfg, nil)
			rts[pi] = float64(r.ResponseTime)
			tr.step("placement f=%.1f plan=%d/%d rt=%v", f, pi+1, len(w.Plans), r.ResponseTime)
		})
		var sum float64
		for pi := range rts {
			if fi == 0 {
				base[pi] = rts[pi]
			}
			sum += rts[pi] / base[pi]
		}
		xs = append(xs, f)
		ys = append(ys, sum/float64(len(w.Plans)))
	}
	// Restore the shared workload relations.
	for _, tree := range w.Plans {
		for _, rel := range tree.Query.Relations {
			rel.PlacementSkew = 0
		}
	}
	fig.Series = []Series{{Label: "DP", X: xs, Y: ys}}
	fig.Notes = append(fig.Notes,
		"extension (not a paper artifact): unbalanced partitions skew scan work across nodes; global load balancing cannot move scans (condition iv), so some degradation is expected, bounded by the pipeline stages that can move")
	return fig
}

// ConcurrentChains compares the paper's one-chain-at-a-time schedule with
// the full-parallel strategy of §3.2 under DP.
func ConcurrentChains(s Scale, prog Progress) *Figure {
	procs := 8
	cfg := cluster.DefaultConfig(1, procs)
	seq := BuildWorkload(s, 1)
	par := BuildWorkloadSchedule(s, 1, plan.Schedule{})
	// Grid: one cell per plan; each cell runs both schedules.
	rels := make([]float64, len(seq.Plans))
	tr := newTracker(prog, len(rels))
	RunMatrix(s.workers(), len(rels), func(pi int) {
		a := mustDP(seq.Plans[pi], cfg, nil)
		b := mustDP(par.Plans[pi], cfg, func(o *core.Options) { o.QueueCapacity = 64 })
		rels[pi] = b.Relative(a)
		tr.step("chains plan=%d/%d seq=%v par=%v", pi+1, len(rels), a.ResponseTime, b.ResponseTime)
	})
	var sum float64
	for _, r := range rels {
		sum += r
	}
	avg := sum / float64(len(seq.Plans))
	fig := &Figure{
		ID:     "chains",
		Title:  fmt.Sprintf("Full-parallel chains vs one-at-a-time under DP (%d processors)", procs),
		XLabel: "schedule (0=one-at-a-time,1=full-parallel)",
		YLabel: "avg response time / one-at-a-time",
		Series: []Series{{Label: "DP", X: []float64{0, 1}, Y: []float64{1, avg}}},
	}
	fig.Notes = append(fig.Notes,
		"extension (not a paper artifact): §3.2 — more concurrent operators give load balancing more options at the price of memory; static scheduling is there to avoid memory overflow")
	return fig
}
