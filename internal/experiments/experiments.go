// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each driver returns a Figure whose series mirror the
// paper's axes; EXPERIMENTS.md records the measured values next to the
// paper's.
//
// All results follow the methodology of §5.1.3: a point is never an
// average of absolute response times across different queries — it is the
// average over plans of a per-plan ratio against a reference execution of
// the same plan.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/simtime"
	"hierdb/internal/xrand"
)

// Scale selects the experiment magnitude: PaperScale reproduces §5.1.2
// (20 queries x 2 trees over 12 relations, sequential gate); BenchScale is
// a reduced set for unit tests and testing.B benchmarks.
type Scale struct {
	Name          string
	Queries       int
	TreesPerQuery int
	Relations     int
	// ClassWeights biases the small/medium/large mix; the default
	// approximates the paper's ~1.3 GB of base data over 240 relations.
	ClassWeights [3]float64
	// CardDivisor scales relation cardinalities down (1 = paper scale).
	CardDivisor int64
	// GateLo/GateHi bound the estimated sequential response time
	// (§5.1.2 uses 30-60 minutes); GateAttempts caps regeneration.
	GateLo, GateHi simtime.Duration
	GateAttempts   int
	Seed           uint64

	// Parallelism bounds the worker pool the figure drivers fan their
	// independent simulation runs across; 0 means one worker per
	// available processor (runtime.GOMAXPROCS). Figure output is
	// bit-for-bit identical at any setting: run seeds derive from grid
	// coordinates and results are aggregated in grid order.
	Parallelism int

	// Per-figure sweeps.
	Fig6Procs  []int
	Fig7Procs  []int
	Fig7Rates  []float64
	Fig7Plans  int // restricted plan count (§5.2.1)
	Fig7Draws  int // distortions per plan per rate
	Fig8Procs  []int
	Fig9Skews  []float64
	Fig9Procs  int
	Fig10Nodes int
	Fig10PPN   []int
	Fig10Skew  float64
}

// PaperScale is the full configuration of §5.
func PaperScale() Scale {
	return Scale{
		Name:          "paper",
		Queries:       20,
		TreesPerQuery: 2,
		Relations:     12,
		ClassWeights:  [3]float64{0.75, 0.20, 0.05},
		CardDivisor:   1,
		GateLo:        30 * simtime.Minute,
		GateHi:        60 * simtime.Minute,
		GateAttempts:  60,
		Seed:          1996,
		Fig6Procs:     []int{16, 32, 64},
		Fig7Procs:     []int{8, 16, 32, 64},
		Fig7Rates:     []float64{0, 0.05, 0.10, 0.20, 0.30},
		Fig7Plans:     8,
		Fig7Draws:     3,
		Fig8Procs:     []int{1, 8, 16, 32, 48, 64},
		Fig9Skews:     []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		Fig9Procs:     64,
		Fig10Nodes:    4,
		Fig10PPN:      []int{8, 12, 16},
		Fig10Skew:     0.6,
	}
}

// BenchScale is a reduced configuration that keeps every experiment shape
// while running in seconds.
func BenchScale() Scale {
	return Scale{
		Name:          "bench",
		Queries:       4,
		TreesPerQuery: 1,
		Relations:     8,
		ClassWeights:  [3]float64{1, 0, 0},
		CardDivisor:   3,
		GateAttempts:  0, // no gate
		Seed:          1996,
		Fig6Procs:     []int{4, 8, 16},
		Fig7Procs:     []int{4, 8, 16},
		Fig7Rates:     []float64{0, 0.10, 0.30},
		Fig7Plans:     2,
		Fig7Draws:     2,
		Fig8Procs:     []int{1, 4, 8, 16},
		Fig9Skews:     []float64{0, 0.5, 1.0},
		Fig9Procs:     8,
		Fig10Nodes:    4,
		Fig10PPN:      []int{2, 4},
		Fig10Skew:     0.6,
	}
}

// Series is one labelled line of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a regenerated table or figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		fmt.Fprintf(w, "%-14s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(w, "%14s", s.Label)
		}
		fmt.Fprintln(w)
		for i := range f.Series[0].X {
			fmt.Fprintf(w, "%-14.3g", f.Series[0].X[i])
			for _, s := range f.Series {
				if i < len(s.Y) {
					fmt.Fprintf(w, "%14.3f", s.Y[i])
				} else {
					fmt.Fprintf(w, "%14s", "-")
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "(y: %s)\n", f.YLabel)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (f *Figure) String() string {
	var sb strings.Builder
	f.Render(&sb)
	return sb.String()
}

// Workload is the generated plan set for one topology.
type Workload struct {
	Scale Scale
	Nodes int
	Plans []*plan.Tree
}

// BuildWorkload generates the query/plan set of §5.1.2 for a topology with
// the given number of SM-nodes. Generation is deterministic in
// (scale.Seed, nodes).
func BuildWorkload(s Scale, nodes int) *Workload {
	return BuildWorkloadSchedule(s, nodes, plan.DefaultSchedule())
}

// BuildWorkloadSchedule is BuildWorkload with explicit scheduling
// heuristics, e.g. the full-parallel strategy of §3.2 (both heuristics
// off) for the concurrent-chains ablation.
func BuildWorkloadSchedule(s Scale, nodes int, sched plan.Schedule) *Workload {
	cfg := cluster.DefaultConfig(1, 1)
	opt := optimizer.New(plan.DefaultCosts(), cfg)
	rng := xrand.New(s.Seed).Split(uint64(nodes))
	home := catalog.AllNodes(nodes)
	w := &Workload{Scale: s, Nodes: nodes}
	gp := querygen.Params{Relations: s.Relations, Nodes: nodes, ClassWeights: s.ClassWeights}
	for qi := 0; qi < s.Queries; qi++ {
		name := fmt.Sprintf("Q%02d", qi+1)
		var q *querygen.Query
		if s.GateAttempts > 0 {
			mid := (s.GateLo + s.GateHi) / 2
			q = querygen.GenerateGated(rng, name, gp, s.GateAttempts, func(cand *querygen.Query) (bool, float64) {
				scaleQuery(cand, s.CardDivisor)
				seq, base, inter := opt.EstimateStats(cand)
				// Response-time window plus the intermediate-volume
				// bound (§5.1.2 reports ~3x base data in intermediates
				// across the 40 plans; a query whose product blows up
				// past 8x is degenerate — one final join dominates the
				// whole execution).
				if seq >= s.GateLo && seq <= s.GateHi && inter <= 8*base {
					return true, 0
				}
				d := float64(seq - mid)
				if d < 0 {
					d = -d
				}
				if base > 0 && inter > 8*base {
					d += float64(inter-8*base) * 1000
				}
				return false, d
			})
		} else {
			q = querygen.Generate(rng, name, gp)
			scaleQuery(q, s.CardDivisor)
		}
		w.Plans = append(w.Plans, opt.PlansSchedule(q, s.TreesPerQuery, home, sched)...)
	}
	return w
}

// scaleQuery divides cardinalities by div, rescaling selectivities so join
// growth keeps the generated 0.5-1.5x shape. Idempotent only when div > 1
// is applied once; callers apply it right after generation.
func scaleQuery(q *querygen.Query, div int64) {
	if div <= 1 {
		return
	}
	for _, r := range q.Relations {
		r.Cardinality /= div
		if r.Cardinality < 100 {
			r.Cardinality = 100
		}
	}
	for i := range q.Edges {
		q.Edges[i].Selectivity *= float64(div)
	}
}

// Progress receives one line per completed run; nil discards. Under the
// parallel run-matrix driver, lines are serialized and prefixed with an
// aggregated [completed/total] count; their order follows run completion,
// not grid order (the figure itself is unaffected — see matrix.go).
type Progress func(format string, args ...interface{})
