// Package hotpath flags allocation-introducing constructs in functions
// annotated with a `//hierdb:hotpath` doc-comment line — the same
// functions whose allocation budgets the AllocsPerRun gates in
// internal/simtime, internal/core and internal/exec enforce at runtime.
// The static gate catches a regression at vet time and names the
// construct; the runtime gate catches whatever escapes analysis.
//
// Flagged constructs:
//
//   - function literals capturing variables from the enclosing function
//     (the capture forces closure and variable to the heap);
//     capture-free literals are fine
//   - map composite literals (a literal allocates at the annotation
//     site; hoist it or use a presized make)
//   - implicit conversion of a scalar (bool/int/uint/float/complex/
//     string) to an interface type — boxing allocates; panic arguments
//     are exempt, failure paths may allocate
//   - append to a plain local slice with no preallocation evidence
//     (3-arg make or a reslice) in the function; appends to fields,
//     parameters, named results and indexed/dereferenced targets are
//     exempt — those grow amortized output buffers by design
//   - any call into package fmt (formatting allocates; hot paths use
//     precomputed strings or integer fast paths)
//
// False positives are suppressed per line with
// `//hierdb:ignore hotpath <reason>`.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"hierdb/internal/analysis"
)

// Analyzer flags allocation-introducing constructs in //hierdb:hotpath
// functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "flag allocation-introducing constructs in //hierdb:hotpath functions",
	Run:  run,
}

const marker = "//hierdb:hotpath"

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			c := &checker{
				pass:     pass,
				decl:     fd,
				presized: map[types.Object]bool{},
				growable: map[types.Object]bool{},
			}
			c.check()
		}
	}
	return nil, nil
}

// annotated reports whether the function's doc comment contains a
// //hierdb:hotpath line.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

type checker struct {
	pass *analysis.Pass
	decl *ast.FuncDecl
	// presized marks local slice vars with preallocation evidence.
	presized map[types.Object]bool
	// growable marks local slice vars whose definitions all grow from
	// empty (zero var decl, nil, empty literal, 2-arg make).
	growable map[types.Object]bool
}

func (c *checker) check() {
	c.collectSliceOrigins(c.decl.Body)
	sig, _ := c.typeOf(c.decl.Name).(*types.Signature)
	c.scan(c.decl.Body, sig)
}

// scan walks one function body; a nested FuncLit recurses with its own
// signature so return-boxing is checked against the right result types.
func (c *checker) scan(body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			c.checkFuncLit(nn)
			litSig, _ := c.typeOf(nn).(*types.Signature)
			c.scan(nn.Body, litSig)
			return false
		case *ast.CompositeLit:
			c.checkCompositeLit(nn)
		case *ast.CallExpr:
			c.checkCall(nn)
		case *ast.AssignStmt:
			c.checkAssignBoxing(nn)
		case *ast.ValueSpec:
			for i, name := range nn.Names {
				if i < len(nn.Values) {
					if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
						c.checkBox(nn.Values[i], obj.Type())
					}
				}
			}
		case *ast.ReturnStmt:
			c.checkReturnBoxing(nn, sig)
		case *ast.SendStmt:
			if ch, ok := c.typeOf(nn.Chan).(*types.Chan); ok {
				c.checkBox(nn.Value, ch.Elem())
			}
		case *ast.IndexExpr:
			if m, ok := underlying(c.typeOf(nn.X)).(*types.Map); ok {
				c.checkBox(nn.Index, m.Key())
			}
		}
		return true
	})
}

// --- closures ---

// checkFuncLit reports literals that capture enclosing locals.
func (c *checker) checkFuncLit(lit *ast.FuncLit) {
	var captured *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function (incl.
		// params/receiver) but outside the literal itself.
		if v.Pos() >= c.decl.Pos() && v.Pos() < c.decl.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured = id
			return false
		}
		return true
	})
	if captured != nil {
		c.pass.Reportf(lit.Pos(), "closure captures %s: capturing closures allocate in hot paths", captured.Name)
	}
}

// --- map literals ---

func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	t := c.typeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal allocates in hot path: hoist it or use a presized make")
	case *types.Slice:
		for _, el := range lit.Elts {
			c.checkBox(el, u.Elem())
		}
	case *types.Array:
		for _, el := range lit.Elts {
			c.checkBox(el, u.Elem())
		}
	}
}

// --- calls: fmt, boxing of arguments, append discipline ---

func (c *checker) checkCall(call *ast.CallExpr) {
	// Builtins: append gets the capacity check, panic is exempt from
	// boxing (failure paths may allocate), the rest never box.
	if id := calleeIdent(call); id != nil {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" {
				c.checkAppend(call)
			}
			return
		}
		if fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.pass.Reportf(call.Pos(), "call to fmt.%s allocates in hot path", fn.Name())
			return
		}
	}
	sig, ok := underlying(c.typeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.checkBox(arg, pt)
		}
	}
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// checkAppend flags appends that grow a local slice with no
// preallocation evidence anywhere in the function.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // fields, *h, s[i]: amortized growth targets by design
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil || !c.growable[obj] || c.presized[obj] {
		return
	}
	c.pass.Reportf(call.Pos(), "append to %s grows without preallocated capacity in hot path: presize with make(T, 0, n)", id.Name)
}

// collectSliceOrigins classifies every definition of a local slice var
// as growable (starts empty) or presized (capacity evidence).
func (c *checker) collectSliceOrigins(body *ast.BlockStmt) {
	classify := func(lhs ast.Expr, rhs ast.Expr, def bool) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var obj types.Object
		if def {
			obj = c.pass.TypesInfo.Defs[id]
		} else {
			obj = c.pass.TypesInfo.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return
		}
		if _, isSlice := underlying(v.Type()).(*types.Slice); !isSlice {
			return
		}
		switch r := rhs.(type) {
		case nil:
			c.growable[obj] = true // var s []T
		case *ast.Ident:
			if r.Name == "nil" {
				c.growable[obj] = true
			} else {
				c.presized[obj] = true // aliases another slice
			}
		case *ast.CompositeLit:
			if len(r.Elts) == 0 {
				c.growable[obj] = true // []T{}
			} else {
				c.presized[obj] = true
			}
		case *ast.CallExpr:
			if bid := calleeIdent(r); bid != nil {
				if b, ok := c.pass.TypesInfo.Uses[bid].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						if len(r.Args) >= 3 {
							c.presized[obj] = true // make(T, n, cap)
						} else {
							c.growable[obj] = true // make(T, n) still grows
						}
					case "append":
						// self-growth; classification unchanged
					default:
						c.presized[obj] = true
					}
					return
				}
			}
			c.presized[obj] = true // unknown provenance: benefit of the doubt
		default:
			c.presized[obj] = true // reslices, selectors, indexes, calls
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.AssignStmt:
			if len(nn.Lhs) == len(nn.Rhs) {
				for i := range nn.Lhs {
					classify(nn.Lhs[i], nn.Rhs[i], nn.Tok.String() == ":=")
				}
			}
		case *ast.ValueSpec:
			for i, name := range nn.Names {
				var rhs ast.Expr
				if i < len(nn.Values) {
					rhs = nn.Values[i]
				}
				classify(name, rhs, true)
			}
		}
		return true
	})
}

// --- interface boxing ---

func (c *checker) checkAssignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value unpacking cannot convert
	}
	for i := range as.Lhs {
		var target types.Type
		if as.Tok.String() == ":=" {
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					target = obj.Type()
				}
			}
		} else {
			target = c.typeOf(as.Lhs[i])
		}
		c.checkBox(as.Rhs[i], target)
	}
}

func (c *checker) checkReturnBoxing(ret *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		c.checkBox(res, sig.Results().At(i).Type())
	}
}

// checkBox reports expr flowing into target when that implies boxing a
// scalar into an interface.
func (c *checker) checkBox(expr ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	b, ok := underlying(c.typeOf(expr)).(*types.Basic)
	if !ok {
		return
	}
	if b.Info()&(types.IsBoolean|types.IsNumeric|types.IsString) == 0 {
		return
	}
	c.pass.Reportf(expr.Pos(), "implicit conversion of %s to %s boxes a scalar and allocates in hot path", b.Name(), target.String())
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func underlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
