package hotpath_test

import (
	"testing"

	"hierdb/internal/analysis/analysistest"
	"hierdb/internal/analysis/hotpath"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpath.Analyzer, "a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpath.Analyzer, "b")
}
