// Package a exercises every hotpath diagnostic.
package a

import "fmt"

func sink(v any) { _ = v }

//hierdb:hotpath
func capturingClosure(xs []int) int {
	total := 0
	add := func(x int) { total += x } // want `closure captures total`
	for _, x := range xs {
		add(x)
	}
	return total
}

//hierdb:hotpath
func mapLiteral(k int) string {
	m := map[int]string{} // want `map literal allocates in hot path`
	return m[k]
}

//hierdb:hotpath
func boxesArgument(xs []int) {
	sink(xs[0]) // want `implicit conversion of int to any boxes a scalar`
}

//hierdb:hotpath
func boxesAssignment(n int) any {
	var v any = n // want `implicit conversion of int to any boxes a scalar`
	return v
}

//hierdb:hotpath
func growingAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to out grows without preallocated capacity`
	}
	return out
}

//hierdb:hotpath
func callsFmt() {
	fmt.Println() // want `call to fmt.Println allocates in hot path`
}

// unannotated may do all of the above without complaint.
func unannotated(xs []int) {
	m := map[int]string{}
	_ = m
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	sink(out)
	fmt.Println()
}

// A zone-map prune check that boxes each chunk minimum to compare it
// through an interface: the per-chunk loop must compare typed zone
// fields, not boxed values.
//
//hierdb:hotpath
func boxingZoneCheck(mins []int64, want any) bool {
	for _, m := range mins {
		var v any = m // want `implicit conversion of int64 to any boxes a scalar`
		if v == want {
			return true
		}
	}
	return false
}

// Chunk pruning that accumulates survivors into an unsized local: the
// survivor list is bounded by the chunk directory, so presize it.
//
//hierdb:hotpath
func collectSurvivors(maxs []int64, lo int64) []int {
	var keep []int
	for i, m := range maxs {
		if m >= lo {
			keep = append(keep, i) // want `append to keep grows without preallocated capacity`
		}
	}
	return keep
}

// A columnar kernel that boxes per row: writing scalars from a typed
// column into boxed storage inside the per-row loop defeats the typed
// representation — boxing belongs only at the vec->Row boundary.
//
//hierdb:hotpath
func boxingColumnarGather(vals []int64, sel []int32) []any {
	out := make([]any, len(sel))
	for j, li := range sel {
		out[j] = vals[li] // want `implicit conversion of int64 to any boxes a scalar`
	}
	return out
}
