// Package b holds allocation-disciplined hot-path code the analyzer
// must accept.
package b

import "fmt"

type emitter struct {
	batch []int
}

//hierdb:hotpath
func presizedAppend(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x) // capacity evidence: 3-arg make
	}
	return out
}

//hierdb:hotpath
func fieldAppend(e *emitter, x int) {
	e.batch = append(e.batch, x) // amortized output buffer by design
}

//hierdb:hotpath
func namedResultAppend(xs []int) (out []int) {
	for _, x := range xs {
		out = append(out, x) // named results accumulate output by design
	}
	return out
}

//hierdb:hotpath
func nonCapturingClosure() func(int) int {
	return func(x int) int { return x * 2 }
}

//hierdb:hotpath
func presizedMap(n int) map[int]int {
	return make(map[int]int, n) // make is fine; only literals are flagged
}

//hierdb:hotpath
func interfaceThrough(v any) any {
	return v // already boxed at the caller: no conversion here
}

//hierdb:hotpath
func panicIsExempt(n int) {
	if n < 0 {
		panic("negative") // failure paths may allocate
	}
}

//hierdb:hotpath
func suppressedFallback(v any) {
	//hierdb:ignore hotpath cold fallback for exotic values, never on the fast path
	fmt.Sprint(v)
}

// A columnar filter kernel: a tight per-column loop that only shrinks
// the caller's selection vector — no materialization, no boxing.
//
//hierdb:hotpath
func filterGtColumnar(vals []int64, sel []int32, limit int64, out []int32) []int32 {
	out = out[:0]
	for _, li := range sel {
		if vals[li] > limit {
			out = append(out, li) // caller-provided scratch: amortized by design
		}
	}
	return out
}

type zone struct {
	hasRange   bool
	minI, maxI int64
}

// A zone-map prune check in the sanctioned shape: straight typed field
// comparisons over the footer-resident zones — no boxing, no growth,
// nothing allocated per chunk consulted.
//
//hierdb:hotpath
func chunkSkippable(zs []zone, lo, hi int64) bool {
	for i := range zs {
		z := &zs[i]
		if !z.hasRange {
			continue
		}
		if z.maxI < lo || z.minI > hi {
			return true
		}
	}
	return false
}

// Chunk-decode fan-out in the sanctioned shape: the decoded batch
// references are written into a caller-presized scratch slice.
//
//hierdb:hotpath
func fanOutChunks(decoded []*emitter, outs []*emitter) []*emitter {
	outs = outs[:0]
	for _, d := range decoded {
		outs = append(outs, d) // caller-provided scratch: amortized by design
	}
	return outs
}

// The row boundary: materializing a row copies already-boxed interface
// words out of a column — the one sanctioned boxing site, and it does
// not box (the words were boxed when the column was built).
//
//hierdb:hotpath
func materializeBoundary(box []any, sel []int32) [][]any {
	rows := make([][]any, 0, len(sel))
	for _, li := range sel {
		rows = append(rows, box[li:li+1])
	}
	return rows
}
