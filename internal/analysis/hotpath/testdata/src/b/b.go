// Package b holds allocation-disciplined hot-path code the analyzer
// must accept.
package b

import "fmt"

type emitter struct {
	batch []int
}

//hierdb:hotpath
func presizedAppend(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x) // capacity evidence: 3-arg make
	}
	return out
}

//hierdb:hotpath
func fieldAppend(e *emitter, x int) {
	e.batch = append(e.batch, x) // amortized output buffer by design
}

//hierdb:hotpath
func namedResultAppend(xs []int) (out []int) {
	for _, x := range xs {
		out = append(out, x) // named results accumulate output by design
	}
	return out
}

//hierdb:hotpath
func nonCapturingClosure() func(int) int {
	return func(x int) int { return x * 2 }
}

//hierdb:hotpath
func presizedMap(n int) map[int]int {
	return make(map[int]int, n) // make is fine; only literals are flagged
}

//hierdb:hotpath
func interfaceThrough(v any) any {
	return v // already boxed at the caller: no conversion here
}

//hierdb:hotpath
func panicIsExempt(n int) {
	if n < 0 {
		panic("negative") // failure paths may allocate
	}
}

//hierdb:hotpath
func suppressedFallback(v any) {
	//hierdb:ignore hotpath cold fallback for exotic values, never on the fast path
	fmt.Sprint(v)
}
