// Package a exercises every lockorder diagnostic.
package a

import "sync"

type coord struct {
	mu sync.Mutex //hierdb:lock mq
}

type sched struct {
	mu sync.Mutex //hierdb:lock pool
}

type table struct {
	locks []sync.Mutex //hierdb:lock stripe
}

type mislabeled struct {
	mu sync.Mutex //hierdb:lock nosuch // want `unknown lock level "nosuch"`
}

type notamutex struct {
	n int //hierdb:lock pool // want `//hierdb:lock on a non-mutex field`
}

func inversion(c *coord, s *sched) {
	s.mu.Lock()
	c.mu.Lock() // want `acquires "mq" lock while holding "pool" lock`
	c.mu.Unlock()
	s.mu.Unlock()
}

func reacquire(s1, s2 *sched) {
	s1.mu.Lock()
	s2.mu.Lock() // want `acquires "pool" lock while holding "pool" lock`
	s2.mu.Unlock()
	s1.mu.Unlock()
}

func stripeThenPool(t *table, s *sched, i int) {
	t.locks[i].Lock()
	s.mu.Lock() // want `acquires "pool" lock while holding "stripe" lock`
	s.mu.Unlock()
	t.locks[i].Unlock()
}

func sendWhileHeld(s *sched, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send while holding "pool" lock`
	s.mu.Unlock()
}

func selectSendWhileHeld(s *sched, ch chan int) {
	s.mu.Lock()
	select {
	case ch <- 1: // want `channel send while holding "pool" lock`
	default:
	}
	s.mu.Unlock()
}

func lockPool(s *sched) {
	s.mu.Lock()
	s.mu.Unlock()
}

func viaCall(t *table, s *sched) {
	t.locks[0].Lock()
	lockPool(s) // want `call to lockPool acquires "pool" lock while holding "stripe" lock`
	t.locks[0].Unlock()
}

func middle(s *sched) {
	lockPool(s)
}

func viaTransitiveCall(t *table, s *sched) {
	t.locks[0].Lock()
	middle(s) // want `call to middle acquires "pool" lock while holding "stripe" lock`
	t.locks[0].Unlock()
}

func deferHeldSend(s *sched, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 2 // want `channel send while holding "pool" lock`
}

func mergedBranches(c *coord, s *sched, cond bool) {
	if cond {
		s.mu.Lock()
	} else {
		s.mu.Lock()
	}
	c.mu.Lock() // want `acquires "mq" lock while holding "pool" lock`
	c.mu.Unlock()
	s.mu.Unlock()
}
