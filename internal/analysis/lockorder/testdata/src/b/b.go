// Package b holds hierarchy-respecting code the analyzer must accept.
package b

import "sync"

type coord struct {
	mu sync.Mutex //hierdb:lock mq
}

type sched struct {
	mu   sync.Mutex //hierdb:lock pool
	cond *sync.Cond
}

type table struct {
	locks []sync.Mutex //hierdb:lock stripe
}

// catalog's mutex is outside the hierarchy and never tracked.
type catalog struct {
	mu sync.RWMutex
}

func orderedNesting(c *coord, s *sched, t *table) {
	c.mu.Lock()
	s.mu.Lock()
	t.locks[0].Lock()
	t.locks[0].Unlock()
	s.mu.Unlock()
	c.mu.Unlock()
}

func earlyReturn(s *sched, done bool) int {
	s.mu.Lock()
	if done {
		s.mu.Unlock()
		return 0
	}
	n := 1
	s.mu.Unlock()
	return n
}

func deferUnlock(s *sched) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func sendAfterUnlock(s *sched, ch chan int) {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	ch <- v
}

func sequentialPools(s1, s2 *sched) {
	s1.mu.Lock()
	s1.mu.Unlock()
	s2.mu.Lock()
	s2.mu.Unlock()
}

func lockPool(s *sched) {
	s.mu.Lock()
	s.mu.Unlock()
}

func callDownHierarchy(c *coord, s *sched) {
	c.mu.Lock()
	lockPool(s) // mq → pool: allowed direction
	c.mu.Unlock()
}

func detachedGoroutine(s *sched, ch chan int) {
	s.mu.Lock()
	go func() {
		// Fresh goroutine: holds nothing, may send and lock freely.
		ch <- 1
		s.mu.Lock()
		s.mu.Unlock()
	}()
	s.mu.Unlock()
}

func untracked(cat *catalog, ch chan int) {
	cat.mu.Lock()
	ch <- 1 // catalog lock is not in the hierarchy
	cat.mu.Unlock()
}

func condWait(s *sched) {
	s.mu.Lock()
	for {
		s.cond.Wait()
		break
	}
	s.mu.Unlock()
}
