package lockorder_test

import (
	"testing"

	"hierdb/internal/analysis/analysistest"
	"hierdb/internal/analysis/lockorder"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "b")
}
