// Package lockorder statically checks mutex acquisitions against the
// engine's documented lock hierarchy.
//
// Mutex fields join the hierarchy with a trailing comment naming their
// level:
//
//	mu sync.Mutex //hierdb:lock pool
//
// The levels, outermost first, mirror the ordering documented in
// internal/exec (nodes.go, memgov.go):
//
//	admit → mq → pool → jspill → broker → stripe → spillmu → spillfile → storefile
//
// The analyzer walks each function with a symbolic "held" set: a Lock
// or RLock on an annotated mutex while already holding one at the same
// or a later level is an inversion; so is calling, directly or through
// same-package calls, a function that performs such an acquisition; and
// a channel send with any annotated mutex held is flagged, because the
// engine's sinks apply backpressure and a blocked send would carry the
// lock with it. Balanced Lock/Unlock pairs, early-unlock returns and
// `defer mu.Unlock()` are all understood; branches merge conservatively
// (a lock held on any non-terminating path is considered held after).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hierdb/internal/analysis"
)

// Analyzer flags acquisitions that violate the engine lock hierarchy.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check engine mutex acquisitions against the admit→mq→pool→jspill→broker→stripe→spillmu→spillfile→storefile hierarchy",
	Run:  run,
}

// hierarchy lists the lock levels outermost-first; the index+1 is the
// numeric level used for ordering checks.
var hierarchy = []string{"admit", "mq", "pool", "jspill", "broker", "stripe", "spillmu", "spillfile", "storefile"}

const numLevels = 9

func levelOf(name string) int {
	for i, n := range hierarchy {
		if n == name {
			return i + 1
		}
	}
	return 0
}

func hierarchyString() string { return strings.Join(hierarchy, " → ") }

// held is the multiset of hierarchy levels currently locked.
type held struct {
	counts [numLevels + 1]int
}

func (h *held) add(level int) { h.counts[level]++ }
func (h *held) remove(level int) {
	if h.counts[level] > 0 {
		h.counts[level]--
	}
}

func (h *held) any() bool {
	for _, c := range h.counts {
		if c > 0 {
			return true
		}
	}
	return false
}

// levels returns the held levels, innermost (highest) first.
func (h *held) levels() []int {
	var out []int
	for l := numLevels; l >= 1; l-- {
		if h.counts[l] > 0 {
			out = append(out, l)
		}
	}
	return out
}

// merge widens h to the element-wise max of both branches.
func (h *held) merge(o *held) {
	for i := range h.counts {
		if o.counts[i] > h.counts[i] {
			h.counts[i] = o.counts[i]
		}
	}
}

// funcInfo is the per-function summary used for interprocedural checks.
type funcInfo struct {
	decl *ast.FuncDecl
	// acquires[level] is true if the function (transitively) performs a
	// Lock at that level, regardless of whether it releases it.
	acquires [numLevels + 1]bool
	callees  []types.Object
}

func run(pass *analysis.Pass) (any, error) {
	s := &scanner{pass: pass, tracked: map[types.Object]int{}}
	s.collectTracked()
	if len(s.tracked) == 0 {
		return nil, nil
	}

	// Pass A: per-function direct acquisitions and call edges.
	s.funcs = map[types.Object]*funcInfo{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fi := &funcInfo{decl: fd}
			s.funcs[obj] = fi
			s.summarize(fd.Body, fi)
		}
	}
	// Fixpoint: propagate acquisitions through same-package calls.
	for changed := true; changed; {
		changed = false
		for _, fi := range s.funcs {
			for _, callee := range fi.callees {
				cfi := s.funcs[callee]
				if cfi == nil {
					continue
				}
				for l := 1; l <= numLevels; l++ {
					if cfi.acquires[l] && !fi.acquires[l] {
						fi.acquires[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass B: re-walk each function with the held set, reporting.
	s.report = true
	for _, fi := range s.funcs {
		s.checkBody(fi.decl.Body)
	}
	return nil, nil
}

type scanner struct {
	pass    *analysis.Pass
	tracked map[types.Object]int // annotated mutex field/var → level
	funcs   map[types.Object]*funcInfo
	report  bool
	// cur accumulates the summary during pass A.
	cur *funcInfo
	// pending queues function literals (go/defer/callbacks) to walk
	// with an empty held set once the enclosing scan finishes.
	pending []*ast.FuncLit
}

// collectTracked finds struct fields whose trailing comment is
// //hierdb:lock <level> and records their level.
func (s *scanner) collectTracked() {
	for _, f := range s.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				name, pos, ok := lockAnnotation(field.Comment)
				if !ok {
					continue
				}
				level := levelOf(name)
				if level == 0 {
					s.pass.Reportf(pos, "unknown lock level %q (hierarchy: %s)", name, hierarchyString())
					continue
				}
				if !isMutexType(s.fieldType(field)) {
					s.pass.Reportf(pos, "//hierdb:lock on a non-mutex field")
					continue
				}
				for _, id := range field.Names {
					if obj := s.pass.TypesInfo.Defs[id]; obj != nil {
						s.tracked[obj] = level
					}
				}
			}
			return true
		})
	}
}

// lockAnnotation extracts the level name from a //hierdb:lock comment
// group, if present.
func lockAnnotation(cg *ast.CommentGroup) (name string, pos token.Pos, ok bool) {
	if cg == nil {
		return "", token.NoPos, false
	}
	for _, c := range cg.List {
		rest, found := strings.CutPrefix(c.Text, "//hierdb:lock")
		if !found {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "", c.Pos(), true // empty name: reported as unknown
		}
		return fields[0], c.Pos(), true
	}
	return "", token.NoPos, false
}

func (s *scanner) fieldType(field *ast.Field) types.Type {
	if tv, ok := s.pass.TypesInfo.Types[field.Type]; ok {
		return tv.Type
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex/RWMutex or a slice/array
// of them (stripe lock arrays).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch tt := t.Underlying().(type) {
	case *types.Slice:
		return isMutexType(tt.Elem())
	case *types.Array:
		return isMutexType(tt.Elem())
	case *types.Pointer:
		return isMutexType(tt.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// summarize records direct acquisitions and call edges for pass A.
func (s *scanner) summarize(body *ast.BlockStmt, fi *funcInfo) {
	s.cur = fi
	h := &held{}
	s.scanStmt(body, h)
	s.drainPending()
	s.cur = nil
}

// checkBody re-walks a function for pass B diagnostics.
func (s *scanner) checkBody(body *ast.BlockStmt) {
	h := &held{}
	s.scanStmt(body, h)
	s.drainPending()
}

// drainPending walks queued function literals with a fresh held set:
// a goroutine or deferred closure starts with no locks of its own.
func (s *scanner) drainPending() {
	for len(s.pending) > 0 {
		lit := s.pending[0]
		s.pending = s.pending[1:]
		h := &held{}
		s.scanStmt(lit.Body, h)
	}
}

// terminates reports whether a statement list definitely transfers
// control away (return / break / continue / goto / panic as last stmt).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// scanBranches scans each alternative from a copy of the entry state
// and leaves h at the element-wise max of the entry (the not-taken
// path) and every non-terminating branch's exit.
func (s *scanner) scanBranches(h *held, branches ...[]ast.Stmt) {
	entry := *h
	merged := entry
	for _, list := range branches {
		b := entry
		for _, st := range list {
			s.scanStmt(st, &b)
		}
		if !terminates(list) {
			merged.merge(&b)
		}
	}
	*h = merged
}

func (s *scanner) scanStmt(stmt ast.Stmt, h *held) {
	switch st := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range st.List {
			s.scanStmt(inner, h)
		}
	case *ast.ExprStmt:
		s.scanExpr(st.X, h)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.scanExpr(e, h)
		}
		for _, e := range st.Lhs {
			s.scanExpr(e, h)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.scanExpr(e, h)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.scanExpr(e, h)
		}
	case *ast.IncDecStmt:
		s.scanExpr(st.X, h)
	case *ast.SendStmt:
		s.scanExpr(st.Chan, h)
		s.scanExpr(st.Value, h)
		s.reportSend(st.Arrow, h)
	case *ast.GoStmt:
		s.scanCallDetached(st.Call)
	case *ast.DeferStmt:
		s.scanDefer(st.Call, h)
	case *ast.IfStmt:
		s.scanStmt(st.Init, h)
		s.scanExpr(st.Cond, h)
		branches := [][]ast.Stmt{st.Body.List}
		if st.Else != nil {
			branches = append(branches, []ast.Stmt{st.Else})
		}
		s.scanBranches(h, branches...)
	case *ast.ForStmt:
		s.scanStmt(st.Init, h)
		if st.Cond != nil {
			s.scanExpr(st.Cond, h)
		}
		body := st.Body.List
		if st.Post != nil {
			body = append(append([]ast.Stmt{}, body...), st.Post)
		}
		s.scanBranches(h, body)
	case *ast.RangeStmt:
		s.scanExpr(st.X, h)
		s.scanBranches(h, st.Body.List)
	case *ast.SwitchStmt:
		s.scanStmt(st.Init, h)
		if st.Tag != nil {
			s.scanExpr(st.Tag, h)
		}
		var branches [][]ast.Stmt
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.scanExpr(e, h)
				}
				branches = append(branches, cc.Body)
			}
		}
		s.scanBranches(h, branches...)
	case *ast.TypeSwitchStmt:
		s.scanStmt(st.Init, h)
		s.scanStmt(st.Assign, h)
		var branches [][]ast.Stmt
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branches = append(branches, cc.Body)
			}
		}
		s.scanBranches(h, branches...)
	case *ast.SelectStmt:
		var branches [][]ast.Stmt
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := append([]ast.Stmt{}, cc.Body...)
			if cc.Comm != nil {
				branch = append([]ast.Stmt{cc.Comm}, branch...)
			}
			branches = append(branches, branch)
		}
		s.scanBranches(h, branches...)
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, h)
	}
}

// scanDefer handles `defer f(...)`: a deferred Unlock keeps the lock
// held to the end of the function (which is exactly how the source
// means it), a deferred closure is walked detached, and any other
// deferred call is ignored for ordering (it runs during unwinding).
func (s *scanner) scanDefer(call *ast.CallExpr, h *held) {
	for _, arg := range call.Args {
		s.scanExpr(arg, h)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		s.pending = append(s.pending, lit)
		return
	}
	// Deliberately not classifying: defer mu.Unlock() must NOT clear
	// the held entry, and defer mu.Lock() does not exist in practice.
}

// scanCallDetached walks `go f(...)`: the spawned body owns no locks.
func (s *scanner) scanCallDetached(call *ast.CallExpr) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		s.pending = append(s.pending, lit)
		return
	}
}

// scanExpr walks an expression, classifying every call and queueing
// function literals for detached analysis.
func (s *scanner) scanExpr(e ast.Expr, h *held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			s.pending = append(s.pending, nn)
			return false
		case *ast.CallExpr:
			// Walk arguments first (inner calls execute first), then
			// classify this call.
			for _, arg := range nn.Args {
				s.scanExpr(arg, h)
			}
			s.scanExpr(nn.Fun, h) // receiver sub-expressions, index exprs
			s.classifyCall(nn, h)
			return false
		}
		return true
	})
}

// classifyCall updates h for Lock/Unlock on tracked mutexes and checks
// ordinary calls against callee summaries.
func (s *scanner) classifyCall(call *ast.CallExpr, h *held) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if level := s.mutexLevel(sel.X); level > 0 {
				s.acquire(call, h, level)
				return
			}
		case "Unlock", "RUnlock":
			if level := s.mutexLevel(sel.X); level > 0 {
				h.remove(level)
				return
			}
		}
	}
	// Ordinary call: check the callee's transitive acquisitions against
	// what we hold right now.
	callee := s.calleeObj(call)
	if callee == nil {
		return
	}
	if s.cur != nil {
		s.cur.callees = append(s.cur.callees, callee)
	}
	if !s.report || !h.any() {
		return
	}
	fi := s.funcs[callee]
	if fi == nil {
		return
	}
	for _, hl := range h.levels() {
		for l := 1; l <= hl; l++ {
			if fi.acquires[l] {
				s.pass.Reportf(call.Pos(),
					"call to %s acquires %q lock while holding %q lock (hierarchy: %s)",
					callee.Name(), hierarchy[l-1], hierarchy[hl-1], hierarchyString())
				return
			}
		}
	}
}

// acquire records a Lock at the given level, reporting an inversion if
// an equal-or-later level is already held.
func (s *scanner) acquire(call *ast.CallExpr, h *held, level int) {
	if s.cur != nil {
		s.cur.acquires[level] = true
	}
	if s.report {
		for _, hl := range h.levels() {
			if hl >= level {
				s.pass.Reportf(call.Pos(),
					"acquires %q lock while holding %q lock (hierarchy: %s)",
					hierarchy[level-1], hierarchy[hl-1], hierarchyString())
				break
			}
		}
	}
	h.add(level)
}

func (s *scanner) reportSend(pos token.Pos, h *held) {
	if !s.report || !h.any() {
		return
	}
	l := h.levels()[0]
	s.pass.Reportf(pos, "channel send while holding %q lock", hierarchy[l-1])
}

// mutexLevel resolves the receiver expression of a Lock/Unlock call to
// an annotated mutex's level (0 if untracked). Indexing into annotated
// stripe arrays (or.locks[i]) and pointer/paren wrappers are peeled.
func (s *scanner) mutexLevel(recv ast.Expr) int {
	for {
		switch r := recv.(type) {
		case *ast.ParenExpr:
			recv = r.X
			continue
		case *ast.StarExpr:
			recv = r.X
			continue
		case *ast.IndexExpr:
			recv = r.X
			continue
		}
		break
	}
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := s.pass.TypesInfo.Selections[r]; ok {
			return s.tracked[selInfo.Obj()]
		}
		if obj := s.pass.TypesInfo.Uses[r.Sel]; obj != nil {
			return s.tracked[obj]
		}
	case *ast.Ident:
		if obj := s.pass.TypesInfo.Uses[r]; obj != nil {
			return s.tracked[obj]
		}
	}
	return 0
}

// calleeObj resolves a call to a same-package function or method
// object, if statically known.
func (s *scanner) calleeObj(call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := s.pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() == s.pass.Pkg {
		return fn
	}
	return nil
}
