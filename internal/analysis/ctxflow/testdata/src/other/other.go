// Package other sits outside the scoped packages: the facade and the
// examples may mint roots and store contexts freely.
package other

import "context"

var root = context.Background()

type app struct {
	ctx context.Context
}

func boot(a *app) {
	a.ctx = context.TODO()
}
