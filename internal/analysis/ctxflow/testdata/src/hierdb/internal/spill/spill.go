// Package spill shadows the real engine path with compliant code the
// analyzer must accept: ctx flows parameter→call everywhere.
package spill

import "context"

type governor struct {
	ctx context.Context //hierdb:ctx-in-struct coordinator lifetime: cancelled when the query retires
}

func run(ctx context.Context, g *governor) error {
	if err := step(ctx); err != nil {
		return err
	}
	sub, cancel := context.WithCancel(ctx) // deriving is fine; minting roots is not
	defer cancel()
	g.ctx = sub
	return step(sub)
}

func step(ctx context.Context) error { return ctx.Err() }
