// Package exec shadows the real engine path to exercise every ctxflow
// diagnostic inside a scoped package.
package exec

import "context"

var rootCtx = context.Background() // want `package-level context.Context` `context.Background below the facade`

type runner struct {
	ctx context.Context // want `context stored in struct field`
}

type query struct {
	ctx context.Context //hierdb:ctx-in-struct query lifetime: the struct is the cancellation scope
}

func start(r *runner) {
	r.ctx = context.Background() // want `context.Background below the facade`
	go watch(r.ctx)
}

func todoToo() context.Context {
	return context.TODO() // want `context.TODO below the facade`
}

func watch(ctx context.Context) { <-ctx.Done() }
