// Package ctxflow enforces the engine's context discipline below the
// facade: in the scoped packages (internal/exec, internal/spill,
// internal/difftest) a context.Context must flow parameter→call.
// Minting a fresh root with context.Background or context.TODO there
// detaches engine work from the caller's cancellation, and storing a
// ctx in a struct hides its lifetime — both have caused real leaks in
// engines shaped like this one.
//
// Flagged in scoped packages (test files excluded):
//
//   - calls to context.Background or context.TODO
//   - struct fields of type context.Context without a sanctioning
//     `//hierdb:ctx-in-struct <reason>` trailing comment (the two
//     sanctioned sites are the query and coordinator lifetimes, whose
//     structs *are* the cancellation scope)
//   - package-level variables of type context.Context
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"hierdb/internal/analysis"
)

// Analyzer enforces parameter→call context flow below the facade.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "context must flow parameter→call in exec/spill/difftest: no context.Background below the facade, no ctx in structs outside sanctioned sites",
	Run:  run,
}

// Scoped lists the package paths the discipline applies to.
var Scoped = []string{
	"hierdb/internal/exec",
	"hierdb/internal/spill",
	"hierdb/internal/difftest",
}

const structMarker = "//hierdb:ctx-in-struct"

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests are callers: they may mint roots
		}
		checkFile(pass, f)
	}
	return nil, nil
}

func inScope(path string) bool {
	for _, s := range Scoped {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	for _, d := range f.Decls {
		if gd, ok := d.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					checkPackageVar(pass, vs)
				}
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.StructType:
			checkStruct(pass, nn)
		case *ast.CallExpr:
			checkCall(pass, nn)
		}
		return true
	})
}

// checkPackageVar flags package-level context variables.
func checkPackageVar(pass *analysis.Pass, vs *ast.ValueSpec) {
	for _, name := range vs.Names {
		obj := pass.TypesInfo.Defs[name]
		if obj == nil || obj.Parent() != pass.Pkg.Scope() {
			continue
		}
		if isContextType(obj.Type()) {
			pass.Reportf(name.Pos(), "package-level context.Context: context must flow parameter→call below the facade")
		}
	}
}

// checkStruct flags unsanctioned context fields.
func checkStruct(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if sanctioned(field.Comment) {
			continue
		}
		pos := field.Type.Pos()
		if len(field.Names) > 0 {
			pos = field.Names[0].Pos()
		}
		pass.Reportf(pos, "context stored in struct field: contexts flow parameter→call below the facade (sanction deliberate lifetime owners with %s <reason>)", structMarker)
	}
}

// sanctioned reports a //hierdb:ctx-in-struct trailing comment with a
// reason.
func sanctioned(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, structMarker)
		if ok && strings.TrimSpace(rest) != "" {
			return true
		}
	}
	return false
}

// checkCall flags context.Background() and context.TODO().
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	pass.Reportf(call.Pos(), "context.%s below the facade: engine code must thread the caller's ctx parameter→call", sel.Sel.Name)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
