package ctxflow_test

import (
	"testing"

	"hierdb/internal/analysis/analysistest"
	"hierdb/internal/analysis/ctxflow"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "hierdb/internal/exec")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer,
		"hierdb/internal/spill", // compliant code in scope
		"other",                 // violations out of scope stay silent
	)
}
