// Package unitchecker implements the `go vet -vettool` protocol for the
// project's analyzers, mirroring x/tools' package of the same name.
//
// cmd/go drives the tool in three modes: `-V=full` prints an identity
// line cmd/go hashes into its action cache; `-flags` prints the tool's
// flag schema (none); otherwise the sole argument is the path of a JSON
// config describing one already-compiled package — file lists plus an
// import→export-data map, so types for dependencies come from the build
// cache via go/importer rather than from source. Diagnostics go to
// stderr as file:line:col lines and any finding exits nonzero, which
// `go vet` reports per package.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"hierdb/internal/analysis"
)

// Config is the JSON schema cmd/go writes for each vetted package
// (a subset of the fields; unused ones are ignored by encoding/json).
type Config struct {
	ID                        string // package ID, e.g. "hierdb/internal/exec"
	Compiler                  string // "gc"
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string // import path → canonical package path
	PackageFile               map[string]string // canonical package path → export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // dependency facts (unused: no fact analyzers)
	VetxOnly                  bool              // only facts are needed; skip diagnostics
	VetxOutput                string            // where to write this package's facts
	SucceedOnTypecheckFailure bool
}

// Main runs the unitchecker protocol over the given analyzers and does
// not return. It is the entire main function of cmd/hdbvet.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			// The build ID must vary with the executable's contents so
			// editing an analyzer invalidates cmd/go's vet cache.
			fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, selfID())
			os.Exit(0)
		case "-flags", "--flags":
			fmt.Println("[]")
			os.Exit(0)
		case "help", "-help", "--help", "-h":
			usage(progname, analyzers)
			os.Exit(0)
		}
	}
	if len(os.Args) != 2 || !filepath.IsAbs(os.Args[1]) {
		usage(progname, analyzers)
		os.Exit(1)
	}
	findings, err := runConfig(os.Args[1], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	os.Exit(findings)
}

func usage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: static analysis for the hierdb engine; run via `go vet -vettool`.\n\nAnalyzers:\n", progname)
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
	}
	fmt.Fprintf(os.Stderr, "\nUsage: go vet -vettool=$(command -v %s) ./...\n", progname)
}

// selfID hashes the running executable into a short build ID.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// runConfig analyzes the one package described by the config file and
// returns the process exit code (0 clean, 2 findings).
func runConfig(cfgPath string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// This tool exports no facts, but cmd/go requires the vetx file to
	// consider the action successful and cache it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	// Dependencies resolve through the build cache: map the import path
	// through ImportMap to its canonical path, then through PackageFile
	// to the compiled package's export data.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	unit := &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
	finds, err := analysis.Run(unit, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range finds {
		pos := fset.Position(f.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pos, f.Message, f.Analyzer.Name)
	}
	if len(finds) > 0 {
		return 2, nil
	}
	return 0, nil
}
