// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package through a Pass and reports Diagnostics.
//
// The subset exists because the repository builds offline — x/tools is
// not vendored — yet the engine's concurrency and hot-path invariants
// (lock ordering, allocation discipline, Rows lifecycle, context flow)
// deserve machine checking on every push. Analyzers written against
// this package keep the upstream shape (Name/Doc/Run, Pass.Reportf), so
// porting them onto the real x/tools framework is a mechanical import
// swap.
//
// Two drivers execute analyzers: analysistest (fixture-based unit
// tests, loading packages from source via the load package) and
// unitchecker (the `go vet -vettool` protocol used by cmd/hdbvet).
//
// Suppression: a diagnostic is dropped when the offending line — or the
// line directly above it — carries a comment of the form
//
//	//hierdb:ignore <analyzer> <reason>
//
// The analyzer name must match exactly and a reason is mandatory, so
// every suppression documents why the finding is a false positive.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one static check. It mirrors the x/tools type of the
// same name (minus facts, flags and suggested fixes, which nothing in
// this repository needs).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hierdb:ignore comments. By convention it is a single lowercase
	// word.
	Name string
	// Doc is the help text; the first line is a one-sentence summary.
	Doc string
	// Requires lists analyzers whose results this one consumes via
	// Pass.ResultOf. They run first.
	Requires []*Analyzer
	// Run executes the check on one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional
	Message  string
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	ResultOf  map[*Analyzer]any
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Unit is one package ready for analysis: the parsed files and the
// completed type information both drivers hand to analyzers.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Finding is a Diagnostic attributed to the Analyzer that produced
// it, ready for a driver to print or match against expectations.
type Finding struct {
	Analyzer *Analyzer
	Diagnostic
}

// Run executes the analyzers (and their Requires closure, in dependency
// order) over one package and returns the surviving findings sorted by
// position. //hierdb:ignore suppressions have already been applied.
func Run(u *Unit, analyzers []*Analyzer) ([]Finding, error) {
	order, err := topoSort(analyzers)
	if err != nil {
		return nil, err
	}
	results := make(map[*Analyzer]any)
	var finds []Finding
	for _, a := range order {
		if a.Run == nil {
			return nil, fmt.Errorf("analysis: analyzer %q has no Run", a.Name)
		}
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			ResultOf:  results,
			Report: func(d Diagnostic) {
				finds = append(finds, Finding{Analyzer: a, Diagnostic: d})
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
		results[a] = res
	}
	finds = suppress(u, finds)
	sort.SliceStable(finds, func(i, j int) bool {
		if finds[i].Pos != finds[j].Pos {
			return finds[i].Pos < finds[j].Pos
		}
		return finds[i].Message < finds[j].Message
	})
	return finds, nil
}

// topoSort flattens the Requires graph into execution order, failing on
// cycles.
func topoSort(roots []*Analyzer) ([]*Analyzer, error) {
	var order []*Analyzer
	state := make(map[*Analyzer]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analysis: Requires cycle through %q", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, dep := range a.Requires {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range roots {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// ignoreRE matches targeted suppression comments. The reason group is
// mandatory: an undocumented suppression is itself suspect.
var ignoreRE = regexp.MustCompile(`^//hierdb:ignore\s+([a-z0-9_]+)\s+\S`)

// suppress drops findings whose line, or the line directly above, has a
// //hierdb:ignore comment naming the finding's analyzer.
func suppress(u *Unit, finds []Finding) []Finding {
	type key struct {
		file string
		line int
	}
	ignores := make(map[key]map[string]bool)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				if ignores[k] == nil {
					ignores[k] = make(map[string]bool)
				}
				for _, name := range strings.Split(m[1], ",") {
					ignores[k][name] = true
				}
			}
		}
	}
	if len(ignores) == 0 {
		return finds
	}
	kept := finds[:0]
	for _, f := range finds {
		pos := u.Fset.Position(f.Pos)
		name := f.Analyzer.Name
		if ignores[key{pos.Filename, pos.Line}][name] ||
			ignores[key{pos.Filename, pos.Line - 1}][name] {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
