// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against "// want" expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout: <dir>/src/<importpath>/*.go, where dir is usually
// TestData(). A line expecting diagnostics carries a trailing comment
//
//	// want `regexp` `another regexp`
//
// (double-quoted Go strings also work). Every diagnostic must match an
// expectation on its line and every expectation must be matched by a
// diagnostic, else the test fails. A fixture package whose files have
// no want comments asserts the analyzer is silent on it.
package analysistest

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hierdb/internal/analysis"
	"hierdb/internal/analysis/load"
)

// TestData returns the abs path of the calling test's testdata dir.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	dir, err := filepath.Abs(filepath.Join(wd, "testdata"))
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package under dir/src and applies the
// analyzer, reporting expectation mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	fset := token.NewFileSet()
	modRoot, modPath, err := load.FindModule(dir)
	if err != nil {
		// Fixtures that don't import the enclosing module still work.
		modRoot, modPath = "", ""
	}
	loader := load.New(fset, filepath.Join(dir, "src"), modRoot, modPath)
	for _, pattern := range patterns {
		pkg, err := loader.Load(pattern)
		if err != nil {
			t.Errorf("loading fixture %q: %v", pattern, err)
			continue
		}
		if len(pkg.Files) == 0 {
			t.Errorf("fixture %q resolved outside the fixture tree", pattern)
			continue
		}
		unit := &analysis.Unit{Fset: fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
		finds, err := analysis.Run(unit, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("analyzer %s on %q: %v", a.Name, pattern, err)
			continue
		}
		check(t, fset, pkg.Files, finds)
	}
}

// An expectation is one want regexp awaiting a diagnostic on its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	used bool
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, finds []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may trail other comment text (for example
				// an annotation under test), so search, don't anchor.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				text := c.Text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				patterns, err := parseWants(strings.TrimSpace(text))
				if err != nil {
					t.Errorf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, src: p})
				}
			}
		}
	}
	for _, f := range finds {
		pos := fset.Position(f.Pos)
		matched := false
		for _, w := range wants {
			if w.used || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", pos.Filename, pos.Line, f.Message, f.Analyzer.Name)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.src)
		}
	}
}

// parseWants splits a want payload into its quoted regexps. Both
// backquoted and double-quoted forms are accepted.
func parseWants(s string) ([]string, error) {
	var out []string
	for s != "" {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, strconv.ErrSyntax
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote of a Go string literal.
			i := 1
			for i < len(s) {
				if s[i] == '\\' {
					i += 2
					continue
				}
				if s[i] == '"' {
					break
				}
				i++
			}
			if i >= len(s) {
				return nil, strconv.ErrSyntax
			}
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = s[i+1:]
		default:
			return nil, strconv.ErrSyntax
		}
	}
	return out, nil
}
