package rowslifecycle_test

import (
	"testing"

	"hierdb/internal/analysis/analysistest"
	"hierdb/internal/analysis/rowslifecycle"
)

func TestViolations(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rowslifecycle.Analyzer, "a")
}

func TestClean(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), rowslifecycle.Analyzer, "b")
}
