// Package b holds compliant Rows lifecycles the analyzer must accept.
package b

import (
	"context"

	"hierdb"
)

func deferClose(ctx context.Context, db *hierdb.DB) error {
	rows, err := db.Scan("t").Run(ctx)
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
		_ = rows.Row()
	}
	return rows.Err()
}

func collect(ctx context.Context, db *hierdb.DB) ([]hierdb.Row, error) {
	rows, err := db.Scan("t").Run(ctx)
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}

func returned(ctx context.Context, db *hierdb.DB) (*hierdb.Rows, error) {
	return db.Scan("t").Run(ctx) // caller owns the lifecycle
}

func returnedVar(ctx context.Context, db *hierdb.DB) (*hierdb.Rows, error) {
	rows, err := db.Scan("t").Run(ctx)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func drain(rows *hierdb.Rows) error { return rows.Close() }

func passedToHelper(ctx context.Context, db *hierdb.DB) error {
	rows, err := db.Scan("t").Run(ctx)
	if err != nil {
		return err
	}
	return drain(rows) // helper owns the lifecycle
}

type session struct {
	rows *hierdb.Rows
}

func storedInField(ctx context.Context, db *hierdb.DB, s *session) error {
	var err error
	s.rows, err = db.Scan("t").Run(ctx) // lifetime owned by the session
	return err
}

func closeInClosure(ctx context.Context, db *hierdb.DB, cleanup *[]func()) error {
	rows, err := db.Scan("t").Run(ctx)
	if err != nil {
		return err
	}
	*cleanup = append(*cleanup, func() { rows.Close() })
	return nil
}
