// Package a exercises every rowslifecycle diagnostic.
package a

import (
	"context"

	"hierdb"
)

func discarded(ctx context.Context, db *hierdb.DB) {
	db.Scan("t").Run(ctx) // want `result of \(\*hierdb.Query\).Run discarded`
}

func blank(ctx context.Context, db *hierdb.DB) {
	_, _ = db.Scan("t").Run(ctx) // want `result of \(\*hierdb.Query\).Run discarded`
}

func neverReleased(ctx context.Context, db *hierdb.DB) error {
	rows, err := db.Scan("t").Run(ctx) // want `Rows from \(\*hierdb.Query\).Run does not reach Close or Collect`
	if err != nil {
		return err
	}
	for rows.Next() {
		_ = rows.Row()
	}
	return rows.Err()
}

func statsOnly(ctx context.Context, db *hierdb.DB) *hierdb.EngineStats {
	rows, _ := db.Scan("t").Run(ctx) // want `Rows from \(\*hierdb.Query\).Run does not reach Close or Collect`
	return rows.Stats()
}
