// Package rowslifecycle checks that every Rows obtained from
// (*hierdb.Query).Run reaches Close or Collect. An abandoned Rows
// leaves pool workers blocked on the query's bounded sink — the leak
// class internal/leaktest catches dynamically; this analyzer catches
// the obvious static cases at vet time.
//
// A Run result is compliant when the receiving variable is used, on
// some path, as the receiver of Close or Collect (including deferred),
// or when it escapes local reasoning: returned, sent, passed to another
// function, assigned to a field or captured by a closure. Discarding
// the result (expression statement or blank identifier) is always
// flagged; so is a variable whose only uses are Next/Row/Err/Stats,
// which consume the stream but never release the workers.
//
// Test files are excluded: they probe expected-failure Runs whose Rows
// never exists, and internal/leaktest checks them dynamically.
package rowslifecycle

import (
	"go/ast"
	"go/types"
	"strings"

	"hierdb/internal/analysis"
)

// Analyzer flags Query.Run results that cannot reach Close or Collect.
var Analyzer = &analysis.Analyzer{
	Name: "rowslifecycle",
	Doc:  "check that every (*hierdb.Query).Run result reaches Close or Collect",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Test files are callers probing the facade — including
		// expected-failure Runs whose Rows never exists — and run under
		// internal/leaktest's dynamic leak checks already.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isQueryRun reports whether call is (*hierdb.Query).Run.
func isQueryRun(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Run" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isHierdbType(sig.Recv().Type(), "Query")
}

// isHierdbType reports whether t (possibly a pointer) is the named type
// hierdb.<name>.
func isHierdbType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "hierdb"
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Walk with an explicit parent stack so each Run call can be judged
	// by the construct that consumes its result.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isQueryRun(pass, call) {
			return true
		}
		var parent ast.Node
		if len(stack) >= 2 {
			parent = stack[len(stack)-2]
		}
		switch p := parent.(type) {
		case *ast.AssignStmt:
			obj, blank := resultBinding(pass, p, call)
			switch {
			case blank:
				pass.Reportf(call.Pos(), "result of (*hierdb.Query).Run discarded: the Rows must reach Close or Collect")
			case obj == nil:
				// Bound to a field or element: escapes local reasoning.
			case !released(pass, fd, obj):
				pass.Reportf(call.Pos(), "Rows from (*hierdb.Query).Run does not reach Close or Collect: workers stay blocked on the sink")
			}
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of (*hierdb.Query).Run discarded: the Rows must reach Close or Collect")
		default:
			// Return result, call argument, send value, composite-lit
			// element, …: ownership transfers with the value.
		}
		return true
	})
}

// resultBinding inspects the assignment consuming call, returning the
// bound variable object (nil when the Rows goes to a non-identifier
// target) and whether the Rows landed in the blank identifier.
func resultBinding(pass *analysis.Pass, a *ast.AssignStmt, call *ast.CallExpr) (types.Object, bool) {
	if len(a.Rhs) != 1 || a.Rhs[0] != call || len(a.Lhs) == 0 {
		return nil, false
	}
	id, ok := a.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false // field or element target: escape
	}
	if id.Name == "_" {
		return nil, true
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o, false
	}
	return pass.TypesInfo.Uses[id], false
}

// released reports whether some use of obj can release the stream:
// a Close/Collect call (including from a deferred closure), or an
// escape of the value itself — returned, passed as an argument, sent,
// stored via assignment, placed in a composite literal or address-
// taken. Consuming methods (Next/Row/Err/Stats) do not count: they
// read the stream but never unblock the workers.
func released(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	ok := false
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		if ok {
			return true // keep stack balanced, skip the work
		}
		id, isID := n.(*ast.Ident)
		if !isID || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if useReleases(stack, id) {
			ok = true
		}
		return true
	})
	return ok
}

// useReleases classifies one identifier use of the Rows variable by its
// syntactic parent.
func useReleases(stack []ast.Node, id *ast.Ident) bool {
	i := len(stack) - 2
	for i >= 0 {
		if _, paren := stack[i].(*ast.ParenExpr); !paren {
			break
		}
		i--
	}
	if i < 0 {
		return false
	}
	switch p := stack[i].(type) {
	case *ast.SelectorExpr:
		// Receiver of a method call or method value: only Close and
		// Collect release the stream.
		return p.X == id && (p.Sel.Name == "Close" || p.Sel.Name == "Collect")
	case *ast.CallExpr:
		// Argument position: the callee owns the lifecycle now.
		for _, a := range p.Args {
			if a == id {
				return true
			}
		}
		return false
	case *ast.ReturnStmt:
		return true // caller owns the lifecycle
	case *ast.SendStmt:
		return p.Value == id
	case *ast.CompositeLit:
		return true
	case *ast.KeyValueExpr:
		return p.Value == id
	case *ast.UnaryExpr:
		return p.Op.String() == "&"
	case *ast.AssignStmt:
		// The Rows value flowing out through an assignment (alias,
		// field store) escapes; appearing on the LHS (the binding
		// itself, or rebinding) does not.
		for _, r := range p.Rhs {
			if r == id {
				return true
			}
		}
		return false
	}
	return false
}
