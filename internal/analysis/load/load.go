// Package load type-checks packages from source for the analysistest
// driver. It resolves an import path against, in order: a fixture
// source root (testdata/src, so fixtures can shadow real module paths),
// the standard library (via the compiler-independent source importer),
// and the enclosing module's own tree. Nothing here touches the network
// or the module cache — the repository has no dependencies and analysis
// fixtures may only import the stdlib and the module itself.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// A Package is one source-loaded, type-checked package. Packages
// resolved from the standard library carry only Types (their syntax is
// never analyzed).
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader loads and memoizes packages. Create with New.
type Loader struct {
	Fset    *token.FileSet
	srcRoot string // fixture roots, searched first; "" to disable
	modRoot string // module root directory; "" to disable
	modPath string // module path, e.g. "hierdb"
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// New returns a Loader resolving against the given fixture source root
// and module. Either may be empty to disable that resolution step.
func New(fset *token.FileSet, srcRoot, modRoot, modPath string) *Loader {
	return &Loader{
		Fset:    fset,
		srcRoot: srcRoot,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load resolves, parses and type-checks the package at the given import
// path (and, transitively, its imports).
func (l *Loader) Load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Types: types.Unsafe}, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	if l.srcRoot != "" {
		dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return l.loadDir(path, dir)
		}
	}
	if dir := filepath.Join(build.Default.GOROOT, "src", filepath.FromSlash(path)); hasGoFiles(dir) {
		pkg, err := l.std.Import(path)
		if err != nil {
			return nil, fmt.Errorf("load: stdlib %q: %w", path, err)
		}
		p := &Package{Path: path, Dir: dir, Types: pkg}
		l.pkgs[path] = p
		return p, nil
	}
	if l.modRoot != "" {
		if path == l.modPath {
			return l.loadDir(path, l.modRoot)
		}
		if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
			return l.loadDir(path, filepath.Join(l.modRoot, filepath.FromSlash(rest)))
		}
	}
	return nil, fmt.Errorf("load: cannot resolve import %q", path)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the single package in dir under the
// given import path. File selection (build tags, _test exclusion)
// follows go/build; comments are kept so analyzers see annotations.
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		p, err := l.Load(ipath)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	})}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
