package exec

// A resident DP worker pool shared by concurrent queries. This is the
// paper's central mechanism — self-contained activations in per-operator
// queues, any worker may run any activation — extended across query
// boundaries: the pool's workers serve the operator queues of every
// in-flight query, so load balances itself both within a query and
// between queries at execution time. A rotating fair cursor round-robins
// the cross-query pick and a fair-share cap bounds per-query worker
// anchoring, so one heavy join cannot starve lighter queries; within a
// query the original order is kept (downstream operators first, the
// worker's primary queue before stealing). Slow consumers backpressure
// their own query — full sinks park batches and pause that query's
// production — without capturing the pool: blocking sends are done by
// dedicated flusher workers, capped pool-wide so runnable queries always
// keep at least one worker.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hierdb/internal/vec"
)

// ErrClosed is returned by Submit on a closed pool and reported by
// queries a Close aborted.
var ErrClosed = errors.New("exec: pool closed")

// Pool is a long-lived set of worker goroutines executing activations
// from all in-flight queries. Create one with NewPool, submit queries
// with Submit/SubmitGroupBy, release the workers with Close.
type Pool struct {
	workers int
	admit   *admitter  // admission controller; nil = unlimited
	broker  *memBroker // shared node memory pool; nil = fixed per-fragment split

	mu       sync.Mutex //hierdb:lock pool
	cond     *sync.Cond
	queries  []*query // in-flight, scheduling order
	fair     int      // rotating cross-query pick cursor
	waiting  int      // workers parked in cond.Wait
	captured int      // workers blocked flushing parked output to a slow consumer
	closed   bool
	nextID   int64
	wg       sync.WaitGroup
}

// NewPool starts a resident pool. workers == 0 defaults to 4; negative
// values are rejected. maxConcurrent bounds the number of in-flight
// queries (0 = unlimited): excess Submits park in a bounded FIFO
// admission queue (8 waiters per slot) until a slot frees, the engine
// closes, or the caller's context fires. Use NewNodesConfig for an
// explicit queue cap, tenant-fair dequeue or a broker budget.
func NewPool(workers, maxConcurrent int) (*Pool, error) {
	if maxConcurrent < 0 {
		return nil, fmt.Errorf("exec: negative MaxConcurrentQueries (%d)", maxConcurrent)
	}
	var admit *admitter
	if maxConcurrent > 0 {
		admit = newAdmitter(maxConcurrent, 0)
	}
	return newPool(workers, admit, nil)
}

// newPool starts a resident pool with an optional admission controller
// and node memory broker (both may be nil).
func newPool(workers int, admit *admitter, broker *memBroker) (*Pool, error) {
	if workers < 0 {
		return nil, fmt.Errorf("exec: negative Workers (%d)", workers)
	}
	if workers == 0 {
		workers = 4
	}
	p := &Pool{workers: workers, admit: admit, broker: broker}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p, nil
}

// admitRelease returns the caller's admission slot, if the pool has
// admission control at all. nil-safe by the admit check.
func (p *Pool) admitRelease() {
	if p.admit != nil {
		p.admit.release()
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Submit compiles and starts a query on the pool. The returned Handle's
// Out channel streams result batches with backpressure; the caller must
// drain it (or Cancel) for the query's workers to release. opt.Workers
// is ignored — the pool's worker count applies.
func (p *Pool) Submit(ctx context.Context, root Node, opt Options) (*Handle, error) {
	return p.submit(ctx, root, nil, opt)
}

// SubmitGroupBy is Submit with a grouped aggregation folded over the
// plan's output: workers fold result batches into private partials, and
// the merged groups stream out at completion, ordered deterministically
// by formatted key.
func (p *Pool) SubmitGroupBy(ctx context.Context, root Node, gb *GroupBy, opt Options) (*Handle, error) {
	if err := validateGroupBy(gb); err != nil {
		return nil, err
	}
	return p.submit(ctx, root, gb, opt)
}

func (p *Pool) submit(ctx context.Context, root Node, gb *GroupBy, opt Options) (*Handle, error) {
	opt, err := opt.validateFor(p.workers)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("exec: nil plan")
	}
	// Admission precedes compilation: a parked Submit holds no compiled
	// physical plan (or any other per-query state) while it waits, and
	// Close fails it promptly even on a context.Background() caller.
	var wait time.Duration
	if p.admit != nil {
		if wait, err = p.admit.acquire(ctx, opt.Tenant); err != nil {
			return nil, err
		}
	}
	phys, err := compile(root)
	if err != nil {
		p.admitRelease()
		return nil, err
	}
	annotateVec(phys)
	qctx, qcancel := context.WithCancel(ctx)
	q := newQuery(p, phys, gb, opt, qctx, qcancel, 1, nil)
	q.stats.AdmissionWait = wait

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		qcancel()
		p.admitRelease()
		return nil, ErrClosed
	}
	q.id = p.nextID
	p.nextID++
	q.stats.QueryID = q.id
	p.queries = append(p.queries, q)
	q.startChainLocked(0)
	retired := p.retireIfDoneLocked(q)
	p.cond.Broadcast()
	p.mu.Unlock()

	if retired {
		q.finalize()
	}
	go q.watch()
	return &Handle{q: q}, nil
}

// abort fails a query from outside the worker loop (context watcher).
func (p *Pool) abort(q *query, err error) {
	p.mu.Lock()
	q.failLocked(err)
	retired := p.retireIfDoneLocked(q)
	p.cond.Broadcast()
	p.mu.Unlock()
	if retired {
		q.finalize()
	}
}

// retireIfDoneLocked removes a terminal query with no in-flight
// activations from the scheduling list. The caller that observes true
// must call q.finalize() after releasing the mutex — exactly one caller
// sees the transition. Callers hold mu.
func (p *Pool) retireIfDoneLocked(q *query) bool {
	if q.retired || q.inflight > 0 || !q.terminalLocked() {
		return false
	}
	// A completed query holds its retirement until its output is fully
	// delivered: the group-by merge must have run and the flusher must
	// have drained any parked batches (aborted queries drop theirs).
	if !q.aborted {
		if q.gb != nil && !q.mergeDone {
			return false
		}
		if len(q.parked) > 0 {
			return false
		}
	}
	q.retired = true
	for i, x := range p.queries {
		if x == q {
			p.queries = append(p.queries[:i], p.queries[i+1:]...)
			break
		}
	}
	return true
}

// wakeLocked signals up to n parked workers — enough for the work just
// enqueued, without the thundering herd of a Broadcast. Callers hold mu.
func (p *Pool) wakeLocked(n int) {
	if n > p.waiting {
		n = p.waiting
	}
	for ; n > 0; n-- {
		p.cond.Signal()
	}
}

// flushCap is the maximum number of workers that may simultaneously be
// captured in blocking flushes to slow consumers: always at least one
// worker stays available for runnable queries (on a one-worker pool the
// single worker must be allowed to flush).
func (p *Pool) flushCap() int {
	if p.workers > 1 {
		return p.workers - 1
	}
	return 1
}

// Job kinds returned by pickLocked alongside a query.
type jobKind int

const (
	jobRun   jobKind = iota // execute an activation
	jobFlush                // blocking-send parked output batches
	jobMerge                // merge group-by partials into final batches
)

// pickLocked finds the next job for worker w: an activation to run, a
// flush of parked output, or a group-by merge. The worker is anchored to
// the query it last served (cross-query affinity keeps a worker's cache
// on one hash table), but a query may hold at most its fair share
// ceil(workers/queries) of anchored workers: beyond that the worker
// rotates to the fair cursor's next query, so one heavy join cannot
// starve lighter queries of workers. A query with parked output gets no
// production picks until the flush drains it, and at most flushCap
// workers may block on slow consumers pool-wide. Callers hold mu; a
// returned jobFlush/jobMerge has been claimed (flushing/merging set) and
// the caller must run it.
//
//hierdb:hotpath
func (p *Pool) pickLocked(w int, anchor **query) (q *query, a *activation, job jobKind) {
	n := len(p.queries)
	if n == 0 {
		p.releaseAnchorLocked(anchor)
		return nil, nil, jobRun
	}
	share := (p.workers + n - 1) / n
	if aq := *anchor; aq != nil {
		if aq.terminalLocked() || aq.anchored > share || len(aq.parked) > 0 {
			p.releaseAnchorLocked(anchor)
		} else if a := aq.pickLocked(w); a != nil {
			return aq, a, jobRun
		}
	}
	for i := 0; i < n; i++ {
		q := p.queries[(p.fair+i)%n]
		if q.aborted {
			continue
		}
		if len(q.parked) > 0 {
			// Production paused: only a flush may serve this query (it
			// can be done but not yet retired — flushing must continue).
			if !q.flushing && p.captured < p.flushCap() {
				q.flushing = true
				p.captured++
				p.fair = (p.fair + i + 1) % n
				return q, nil, jobFlush
			}
			continue
		}
		if q.done {
			if q.gb != nil && !q.mergeDone && !q.merging {
				q.merging = true
				p.fair = (p.fair + i + 1) % n
				return q, nil, jobMerge
			}
			continue
		}
		if a := q.pickLocked(w); a != nil {
			p.fair = (p.fair + i + 1) % n
			if *anchor != q {
				p.releaseAnchorLocked(anchor)
				*anchor = q
				q.anchored++
			}
			return q, a, jobRun
		}
	}
	p.releaseAnchorLocked(anchor)
	return nil, nil, jobRun
}

// flushHold bounds how long a flusher blocks on one send before giving
// its flush slot back: slots are a shared, capped resource (flushCap),
// so a stalled consumer must not pin one forever — the slot rotates via
// the fair cursor to other backpressured queries and this query's flush
// is re-claimed later. Stalled consumers therefore cost a slot only
// flushHold at a time instead of permanently.
const flushHold = 10 * time.Millisecond

// runFlush sends a query's parked batches to its sink, blocking at most
// flushHold per batch before surrendering the flush slot (parked output
// simply stays parked for the next claim). Returns false if the query
// was cancelled while flushing. Called without mu by the worker that
// claimed q.flushing; timer is the worker's reusable park timer.
//
//hierdb:hotpath
func (p *Pool) runFlush(q *query, timer **time.Timer) bool {
	for {
		p.mu.Lock()
		if q.aborted || len(q.parked) == 0 {
			p.mu.Unlock()
			return true
		}
		batch := q.parked[0]
		q.parked = q.parked[1:]
		p.mu.Unlock()
		t := *timer
		if t == nil {
			t = time.NewTimer(flushHold)
			*timer = t
		} else {
			t.Reset(flushHold)
		}
		select {
		case q.sink <- batch:
			stopParkTimer(t)
			atomic.AddInt64(&q.stats.ResultRows, int64(batch.N))
		case <-q.ctx.Done():
			stopParkTimer(t)
			return false
		case <-t.C:
			// Surrender the slot: re-park the batch (unless an abort
			// dropped the queue meanwhile) for the next flush claim.
			p.mu.Lock()
			if !q.aborted {
				q.parked = append([]*vec.Batch{batch}, q.parked...)
			}
			p.mu.Unlock()
			return true
		}
	}
}

func (p *Pool) releaseAnchorLocked(anchor **query) {
	if *anchor != nil {
		(*anchor).anchored--
		*anchor = nil
	}
}

//hierdb:hotpath
func (p *Pool) worker(w int) {
	defer p.wg.Done()
	var (
		anchor    *query
		parkTimer *time.Timer
	)
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return
		}
		q, a, job := p.pickLocked(w, &anchor)
		if q == nil {
			// Node-level starvation: before parking, try acquiring a
			// remote probe queue for a starving multi-node fragment.
			if sq := p.stealClaimLocked(); sq != nil {
				p.mu.Unlock()
				stole := sq.mq.stealRound(sq)
				parked := false
				p.mu.Lock()
				sq.stealBusy = false
				if !stole && !sq.stealIdle {
					// Park further rounds until a producer refills a
					// peer queue (wakeThieves clears the mark).
					sq.stealIdle = true
					sq.mq.idleThieves.Add(1)
					parked = true
				}
				if parked {
					// Close the lost-wakeup window: a producer crossing
					// the wake threshold between our failed round and the
					// idle mark saw idleThieves == 0 and sent no wake.
					// Re-probe the peers now that the mark is visible;
					// on backlog, clear it and retry the round.
					p.mu.Unlock()
					backlog := sq.mq.peerBacklog(sq)
					p.mu.Lock()
					if backlog && sq.stealIdle {
						sq.stealIdle = false
						sq.mq.idleThieves.Add(-1)
					}
				}
				continue
			}
			p.waiting++
			p.cond.Wait()
			p.waiting--
			continue
		}
		q.inflight++
		switch job {
		case jobFlush:
			p.mu.Unlock()
			ok := p.runFlush(q, &parkTimer)
			p.mu.Lock()
			q.flushing = false
			p.captured--
			q.inflight--
			if !ok {
				q.failLocked(q.ctx.Err())
			}
			// Production resumes; waiting workers don't see the state
			// change, so wake them.
			p.cond.Broadcast()
			if p.retireIfDoneLocked(q) {
				p.mu.Unlock()
				q.finalize()
				p.mu.Lock()
			}
			continue
		case jobMerge:
			p.mu.Unlock()
			// All folds finished before done was set (pending counts hit
			// zero under the mutex), so reading the partials is safe.
			var batches []*vec.Batch
			var mergeErr error
			if q.mq != nil {
				// Per-node merge; the last node also merges the
				// per-node partials and parks the final batches here.
				batches = q.mq.mergeFragment(q)
			} else {
				groups, err := q.mergedGroups()
				if err != nil {
					mergeErr = err
				} else {
					batches = batchRowsVec(groupsToRows(groups, q.gb), q.opt.Batch)
				}
			}
			p.mu.Lock()
			q.merging = false
			q.mergeDone = true
			q.inflight--
			if mergeErr != nil {
				q.failLocked(mergeErr)
			} else if !q.aborted {
				// Deliver through the parked/flusher machinery: same
				// backpressure, cancellation and Close guarantees as the
				// streaming path.
				q.parked = append(q.parked, batches...)
			}
			p.cond.Broadcast()
			if p.retireIfDoneLocked(q) {
				p.mu.Unlock()
				q.finalize()
				p.mu.Lock()
			}
			continue
		}
		p.mu.Unlock()

		outs, results := q.process(a, w)
		q.countOpRows(a, outs, results)
		// Chunk-memory refcounting: downstream activations share the
		// decoded chunk's column storage, so they inherit references
		// before this activation's own is released (post-deliver: a
		// root-scan result batch is refunded at the sink handoff).
		a.retainFor(outs)
		atomic.AddInt64(&q.stats.PerWorker[w], 1)
		delivered := q.deliver(w, results, &parkTimer)
		a.res.release()

		if mq := q.mq; mq != nil {
			// Multi-node fragment: routing and operator/chain accounting
			// are global, handled by the coordinator without our mutex.
			mq.epilogue(q, a, outs, delivered)
			p.mu.Lock()
			q.inflight--
			q.acts++
			if p.retireIfDoneLocked(q) {
				p.mu.Unlock()
				q.finalize()
				p.mu.Lock()
			}
			continue
		}

		p.mu.Lock()
		q.inflight--
		q.acts++
		if !delivered {
			q.failLocked(q.ctx.Err())
		}
		if !q.terminalLocked() {
			or := q.ops[a.op.id]
			if len(outs) > 0 {
				// Each out addresses its own operator: consumer batches in
				// the ordinary case, the producing operator itself for the
				// spill-phase probes a partition load fans out.
				for _, out := range outs {
					q.enqueueLocked(q.ops[out.op.id], out)
				}
				if q.allowed != nil {
					// Static (FP) mode: only specific workers may run the
					// consumer operator, and a targeted Signal could wake
					// the wrong ones — wake everyone.
					p.cond.Broadcast()
				} else {
					p.wakeLocked(len(outs))
				}
			}
			or.pending--
			if or.prodEnd && or.pending == 0 && !or.done {
				q.opFinishedLocked(or)
			}
		}
		if p.retireIfDoneLocked(q) {
			p.mu.Unlock()
			q.finalize()
			p.mu.Lock()
		}
	}
}

// Close aborts every in-flight query with ErrClosed and stops the
// workers. It blocks until all worker goroutines have exited; it is
// idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var fin []*query
	for _, q := range append([]*query(nil), p.queries...) {
		q.failLocked(ErrClosed)
		if p.retireIfDoneLocked(q) {
			fin = append(fin, q)
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	// Fail parked admission waiters before anything that can block:
	// a Submit waiting on a slot must get ErrClosed promptly, not after
	// the in-flight queries drain.
	if p.admit != nil {
		p.admit.close()
	}
	for _, q := range fin {
		q.finalize()
	}
	p.wg.Wait()
}

// Handle is a running (or finished) query on a Pool or a multi-node
// Nodes engine (exactly one of q/mq is set).
type Handle struct {
	q  *query
	mq *mquery
}

// Out is the stream of result batches (columnar; use Batch.AppendRows
// or Batch.ReadRow to materialize rows). It is closed when the query
// retires (completion, cancellation, or pool close); check Err after.
// The channel is bounded: an undrained handle eventually blocks the
// workers feeding it, so consume it fully or Cancel.
func (h *Handle) Out() <-chan *vec.Batch {
	if h.mq != nil {
		return h.mq.sink
	}
	return h.q.sink
}

// Done is closed when the query has fully retired (Err and Stats final).
func (h *Handle) Done() <-chan struct{} {
	if h.mq != nil {
		return h.mq.finished
	}
	return h.q.finished
}

// Err blocks until the query retires and returns its terminal error
// (nil on success). A query only retires once its output is delivered:
// drain Out (or Cancel) first, or Err can block forever behind the
// bounded sink.
func (h *Handle) Err() error {
	if h.mq != nil {
		<-h.mq.finished
		return h.mq.err
	}
	<-h.q.finished
	return h.q.err
}

// Stats blocks until the query retires and returns its per-query
// counters, including per-worker activation counts on the shared pool
// and, for multi-node queries, per-node breakdowns and steal counters.
// Like Err, call it only after draining Out (or after Cancel).
func (h *Handle) Stats() *Stats {
	if h.mq != nil {
		<-h.mq.finished
		s := h.mq.stats
		s.PerWorker = append([]int64(nil), s.PerWorker...)
		s.Nodes = append([]NodeStats(nil), s.Nodes...)
		for i := range s.Nodes {
			s.Nodes[i].PerWorker = append([]int64(nil), s.Nodes[i].PerWorker...)
		}
		return &s
	}
	<-h.q.finished
	s := h.q.stats
	s.PerWorker = append([]int64(nil), h.q.stats.PerWorker...)
	return &s
}

// Cancel aborts the query; Out closes promptly and Err reports the
// cancellation. Idempotent, safe after completion.
func (h *Handle) Cancel() {
	if h.mq != nil {
		h.mq.cancel()
		return
	}
	h.q.cancel()
}
