package exec

import (
	"context"
	"testing"
	"testing/quick"
)

func aggPlan(n, mod int) Node {
	build := tbl("b", mod, func(i int) any { return i }, func(i int) any { return i })
	probe := tbl("p", n, func(i int) any { return i % mod }, func(i int) any { return i })
	return &Join{Build: &Scan{Table: build}, Probe: &Scan{Table: probe},
		BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
}

func TestGroupByCount(t *testing.T) {
	checkQueryHygiene(t)
	plan := aggPlan(100, 4)
	gb := &GroupBy{Key: KeyCol(0), Aggs: []Aggregation{{Func: Count}}}
	rows, _, err := ExecuteGroupBy(context.Background(), plan, gb, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d groups, want 4", len(rows))
	}
	var total int64
	for _, r := range rows {
		total += r[1].(int64)
	}
	if total != 100 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestGroupBySumMinMax(t *testing.T) {
	checkQueryHygiene(t)
	plan := aggPlan(40, 2)
	arg := func(r Row) float64 { return float64(r[1].(int)) } // probe value column
	gb := &GroupBy{Key: KeyCol(0), Aggs: []Aggregation{
		{Func: Sum, Arg: arg},
		{Func: Min, Arg: arg},
		{Func: Max, Arg: arg},
	}}
	rows, _, err := ExecuteGroupBy(context.Background(), plan, gb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d groups", len(rows))
	}
	// Group 0: probe values 0,2,...,38 -> sum 380, min 0, max 38.
	g0 := rows[0]
	if g0[0].(int) != 0 || g0[1].(float64) != 380 || g0[2].(float64) != 0 || g0[3].(float64) != 38 {
		t.Fatalf("group 0 = %v", g0)
	}
	// Group 1: 1,3,...,39 -> sum 400, min 1, max 39.
	g1 := rows[1]
	if g1[1].(float64) != 400 || g1[2].(float64) != 1 || g1[3].(float64) != 39 {
		t.Fatalf("group 1 = %v", g1)
	}
}

func TestGroupByDeterministicOrder(t *testing.T) {
	checkQueryHygiene(t)
	plan := aggPlan(200, 7)
	gb := &GroupBy{Key: KeyCol(0), Aggs: []Aggregation{{Func: Count}}}
	a, _, err := ExecuteGroupBy(context.Background(), plan, gb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ExecuteGroupBy(context.Background(), plan, gb, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("group counts differ across worker counts")
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGroupByErrors(t *testing.T) {
	plan := aggPlan(10, 2)
	if _, _, err := ExecuteGroupBy(context.Background(), plan, nil, Options{}); err == nil {
		t.Fatal("nil group-by accepted")
	}
	if _, _, err := ExecuteGroupBy(context.Background(), plan,
		&GroupBy{Key: KeyCol(0), Aggs: []Aggregation{{Func: Sum}}}, Options{}); err == nil {
		t.Fatal("sum without Arg accepted")
	}
}

func TestGroupByQuickCountsConserved(t *testing.T) {
	checkQueryHygiene(t)
	f := func(nRaw, modRaw uint8) bool {
		n := int(nRaw%100) + 1
		mod := int(modRaw%9) + 1
		gb := &GroupBy{Key: KeyCol(0), Aggs: []Aggregation{{Func: Count}}}
		rows, _, err := ExecuteGroupBy(context.Background(), aggPlan(n, mod), gb, Options{Workers: 3})
		if err != nil {
			return false
		}
		var total int64
		for _, r := range rows {
			total += r[1].(int64)
		}
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAggFuncString(t *testing.T) {
	if Count.String() != "count" || Sum.String() != "sum" || Min.String() != "min" || Max.String() != "max" {
		t.Error("bad agg names")
	}
}
