package exec

import (
	"context"
	"fmt"
	"testing"
)

// TestStaticMoreOpsThanWorkers exercises the LPT packing path: a chain of
// several operators on fewer workers must still cover every operator.
func TestStaticMoreOpsThanWorkers(t *testing.T) {
	checkQueryHygiene(t)
	fact := tbl("f", 2000, func(i int) any { return i % 50 }, func(i int) any { return i })
	plan := Node(&Scan{Table: fact})
	for d := 0; d < 4; d++ {
		dim := tbl(fmt.Sprintf("d%d", d), 50, func(i int) any { return i }, func(i int) any { return i })
		plan = &Join{
			Build:    &Scan{Table: dim},
			Probe:    plan,
			BuildKey: KeyCol(0),
			ProbeKey: KeyCol(0),
		}
	}
	// Final chain: scan + 4 probes = 5 operators; 2 workers force
	// multi-operator packing.
	rows, _, err := Execute(context.Background(), plan, Options{Workers: 2, Static: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2000 {
		t.Fatalf("%d rows, want 2000", len(rows))
	}
	dyn, _, err := Execute(context.Background(), plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != len(rows) {
		t.Fatalf("static %d vs dynamic %d rows", len(rows), len(dyn))
	}
}

// TestSingleWorker runs the whole pipeline on one worker (degenerate but
// legal).
func TestSingleWorker(t *testing.T) {
	checkQueryHygiene(t)
	b := tbl("b", 100, func(i int) any { return i % 10 }, func(i int) any { return i })
	p := tbl("p", 100, func(i int) any { return i % 10 }, func(i int) any { return i })
	plan := &Join{Build: &Scan{Table: b}, Probe: &Scan{Table: p}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	rows, stats, err := Execute(context.Background(), plan, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1000 {
		t.Fatalf("%d rows", len(rows))
	}
	if len(stats.PerWorker) != 1 || stats.PerWorker[0] != stats.Activations {
		t.Fatalf("per-worker accounting wrong: %+v", stats)
	}
}

// TestManyWorkersFewRows checks over-provisioned executions terminate.
func TestManyWorkersFewRows(t *testing.T) {
	checkQueryHygiene(t)
	b := tbl("b", 3, func(i int) any { return i }, func(i int) any { return i })
	p := tbl("p", 3, func(i int) any { return i }, func(i int) any { return i })
	plan := &Join{Build: &Scan{Table: b}, Probe: &Scan{Table: p}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	rows, _, err := Execute(context.Background(), plan, Options{Workers: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
}
