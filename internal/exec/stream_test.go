package exec

import (
	"context"
	"errors"
	"testing"
	"time"
)

// cancelPlan is a join with a large build side, so cancellation lands
// mid-build: the heaviest, most activation-dense part of an execution.
func cancelPlan(rows int) Node {
	big := tbl("big", rows, func(i int) any { return i }, func(i int) any { return i })
	return &Join{
		Build:    &Scan{Table: big},
		Probe:    &Scan{Table: big},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	}
}

// TestPromptCancellation cancels mid-join and requires Execute to return
// within a bounded wall-clock time with ctx.Err(), workers fully drained,
// for both the DP and Static modes.
func TestPromptCancellation(t *testing.T) {
	plan := cancelPlan(1_000_000) // built outside the timed window
	for _, mode := range []struct {
		name   string
		static bool
	}{{"DP", false}, {"Static", true}} {
		t.Run(mode.name, func(t *testing.T) {
			checkQueryHygiene(t)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond) // land mid-build
				cancel()
			}()
			start := time.Now()
			_, _, err := Execute(ctx, plan, Options{Workers: 4, Static: mode.static})
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled Execute returned %v", err)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("cancellation took %v", elapsed)
			}
		})
	}
}

// TestStreamCancelMidIteration cancels while the consumer is mid-stream
// on a resident pool: the stream must close promptly with ctx.Err() and
// the pool must stay healthy for the next query.
func TestStreamCancelMidIteration(t *testing.T) {
	for _, mode := range []struct {
		name   string
		static bool
	}{{"DP", false}, {"Static", true}} {
		t.Run(mode.name, func(t *testing.T) {
			checkQueryHygiene(t)
			pool, err := NewPool(4, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			ctx, cancel := context.WithCancel(context.Background())
			h, err := pool.Submit(ctx, cancelPlan(500_000), Options{Static: mode.static})
			if err != nil {
				t.Fatal(err)
			}
			// Read one batch, then cancel mid-stream.
			<-h.Out()
			cancel()
			start := time.Now()
			for range h.Out() {
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("stream drain after cancel took %v", elapsed)
			}
			if err := h.Err(); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled stream reported %v", err)
			}
			verifyIdle(t, pool.Submit)
		})
	}
}

// TestStreamsBeforeCompletion proves Rows streams rather than
// materializes: with a bounded sink far smaller than the result, the
// first batch must arrive while the query is still in flight.
func TestStreamsBeforeCompletion(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// ~200k result rows -> ~800 batches of 256, far beyond the sink's
	// 2*workers bound: the producer cannot run ahead of the consumer.
	h, err := pool.Submit(context.Background(), cancelPlan(200_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, ok := <-h.Out()
	if !ok || first.N == 0 {
		t.Fatal("no first batch")
	}
	select {
	case <-h.Done():
		t.Fatal("query already retired when the first batch arrived: result was materialized, not streamed")
	default:
	}
	n := first.N
	for batch := range h.Out() {
		n += batch.N
	}
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 200_000 {
		t.Fatalf("streamed %d rows, want 200000", n)
	}
}

// TestStreamingSinkAllocBound is the streaming-sink alloc gate (run by
// CI): delivering a row through the bounded sink must stay cheap —
// arena-carved rows, batch-granular channel traffic, no per-row boxing
// and no full-result materialization on the engine side.
func TestStreamingSinkAllocBound(t *testing.T) {
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Small build side, large probe: the run is dominated by streaming
	// result rows, not by hash-table construction.
	const rows = 100_000
	build := tbl("b", 1000, func(i int) any { return i }, func(i int) any { return i })
	probe := tbl("p", rows, func(i int) any { return i % 1000 }, func(i int) any { return i })
	plan := Node(&Join{
		Build:    &Scan{Table: build},
		Probe:    &Scan{Table: probe},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	})
	avg := testing.AllocsPerRun(3, func() {
		h, err := pool.Submit(context.Background(), plan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for batch := range h.Out() {
			n += batch.N
		}
		if err := h.Err(); err != nil {
			t.Fatal(err)
		}
		if n != rows {
			t.Fatalf("streamed %d rows", n)
		}
	})
	if perRow := avg / rows; perRow > 0.5 {
		t.Fatalf("sink path allocates %.2f allocs/row (avg %.0f total), want <= 0.5", perRow, avg)
	}
}

// TestVectorBatchAllocBound is the columnar streaming alloc gate (run
// by CI): a consumer that stays on the batch currency — counting rows
// without ever materializing them — must see steady-state costs of the
// vectorized pipeline only: arena-carved selection/gather storage and
// batch-granular channel traffic, no per-row work at all. The bound is
// an order tighter than the row-boundary sink gate above.
func TestVectorBatchAllocBound(t *testing.T) {
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	const rows = 200_000
	build := tbl("b", 1000, func(i int) any { return i }, func(i int) any { return i })
	probe := tbl("p", rows, func(i int) any { return i % 1000 }, func(i int) any { return i })
	plan := Node(&Join{
		Build:    &Scan{Table: build},
		Probe:    &Scan{Table: probe},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	})
	avg := testing.AllocsPerRun(3, func() {
		h, err := pool.Submit(context.Background(), plan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for batch := range h.Out() {
			n += batch.N
		}
		if err := h.Err(); err != nil {
			t.Fatal(err)
		}
		if n != rows {
			t.Fatalf("streamed %d rows", n)
		}
	})
	if perRow := avg / rows; perRow > 0.05 {
		t.Fatalf("vec streaming allocates %.3f allocs/row (avg %.0f total), want <= 0.05", perRow, avg)
	}
}
