// Package exec is a real-data, in-memory parallel hash-join executor built
// on the paper's DP execution model: query work is decomposed into
// self-contained activations (scan morsels and tuple batches) held in
// per-operator queues, and any worker goroutine may execute any activation
// — there is no static association between workers and operators. Workers
// prefer their primary queues, drain downstream operators first (the
// role the paper's flow control plays), and pipeline chains execute
// one-at-a-time in dependency order, mirroring §2.2's scheduling.
//
// A Static mode reproduces the FP baseline on real data: each worker is
// bound to one operator per chain, sized by estimated cost.
package exec

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync/atomic"
	"time"

	"hierdb/internal/spill"
	"hierdb/internal/store"
	"hierdb/internal/vec"
)

// Row is one tuple. Columns are positional. It is an alias of the spill
// package's row type, so batches move between the executor and spill
// files without conversion.
type Row = spill.Row

// Table is a named relation: either in-memory (Rows) or disk-backed
// (File, a chunked columnar table file opened with store.Open). Exactly
// one of the two is the data source — a file-backed table leaves Rows
// nil, and scans over it stream chunks from disk lazily instead of
// columnizing a resident row slice.
type Table struct {
	Name string
	Cols []string
	Rows []Row

	// File, when non-nil, makes the table disk-backed: scans read its
	// row-group chunks on demand (consulting per-chunk zone maps to skip
	// chunks no predicate can match), and on a multi-node engine chunks
	// are assigned to node fragments positionally, like RegisterTable's
	// hash partitioning of resident rows.
	File *store.TableFile

	// vcache caches the table's columnized form (see columnize). Tables
	// are registered once and treated as immutable thereafter; callers
	// that do mutate Rows get a rebuilt cache on the next scan.
	vcache atomic.Pointer[tableVec]
}

// NumRows returns the table's cardinality.
func (t *Table) NumRows() int {
	if t.File != nil {
		return int(t.File.NumRows())
	}
	return len(t.Rows)
}

// Col returns the index of a named column, or -1.
func (t *Table) Col(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// KeyFunc extracts a join key from a row. Keys must be comparable.
//
// Purity contract: a KeyFunc must be a pure projection or computation
// over its input row — same row in, same key out, no reads of external
// mutable state, and no behavior conditional on the *values* in the row
// (indexing by position is fine). The executor probes each KeyFunc once
// with a sentinel row to detect plain column projections (`r[i]`) and
// then runs the typed columnar fast path for them; a KeyFunc that
// returns different columns for different inputs would be mis-resolved.
// Anything that computes (type-asserts, hashes, concatenates) safely
// falls back to the per-row closure path.
type KeyFunc func(Row) any

// KeyCol returns a KeyFunc selecting column i.
func KeyCol(i int) KeyFunc {
	return func(r Row) any { return r[i] }
}

// Node is a logical plan node: *Scan or *Join.
type Node interface {
	estimate() float64
}

// Scan reads a table, optionally filtering rows.
//
// Preds are vectorized column predicates evaluated before Filter as
// typed per-column loops over the columnar scan — prefer them over an
// equivalent Filter closure on hot paths. Filter (when non-nil) then
// runs per surviving row; both must pass for a row to flow.
type Scan struct {
	Table  *Table
	Preds  []vec.Pred
	Filter func(Row) bool
	// RowsHint, when positive, pins the scan's estimated output
	// cardinality (rows surviving Preds/Filter) for scheduling and
	// optimization; 0 means unhinted. The optimizer's hint pass fills it
	// on cloned nodes from catalog statistics.
	RowsHint int64
}

func (s *Scan) estimate() float64 {
	if s.RowsHint > 0 {
		return float64(s.RowsHint)
	}
	return float64(s.Table.NumRows())
}

// Join is a hash equi-join. Build is materialized into a hash table;
// Probe streams against it. Combine merges a matched pair into an output
// row; nil concatenates probe then build columns.
type Join struct {
	Build, Probe       Node
	BuildKey, ProbeKey KeyFunc
	Combine            func(probe, build Row) Row
	// Selectivity hints the output-to-input ratio for scheduling
	// estimates (default 1).
	Selectivity float64
	// RowsHint, when positive, pins the join's estimated output
	// cardinality, taking precedence over Selectivity; 0 means unhinted.
	RowsHint int64
	// NoReorder pins this join (and everything below it) to the literal
	// builder order: the full optimizer mode leaves plans containing a
	// NoReorder join untouched.
	NoReorder bool
}

func (j *Join) estimate() float64 {
	if j.RowsHint > 0 {
		return float64(j.RowsHint)
	}
	s := j.Selectivity
	if s <= 0 {
		s = 1
	}
	return j.Probe.estimate() * s
}

// Options tunes an execution.
type Options struct {
	// Workers is the number of worker goroutines (one per processor in
	// the paper's model). Defaults to 4.
	Workers int
	// Morsel is the scan granularity in rows (trigger-activation
	// granularity). Defaults to 1024.
	Morsel int
	// Batch is the pipeline granularity in rows (data-activation
	// granularity). Defaults to 256.
	Batch int
	// Stripes is the number of hash-table lock stripes per join (the
	// degree of fragmentation). Defaults to 8x Workers.
	Stripes int
	// Static binds each worker to one operator per pipeline chain (the
	// FP baseline) instead of the dynamic any-worker-any-operator model.
	Static bool
	// DisableStealing turns off the global activation-stealing layer on a
	// multi-node engine (Nodes opened with more than one node): a
	// starving node then idles instead of acquiring a remote probe queue.
	// It has no effect on a single-node engine.
	DisableStealing bool
	// MemoryPerNode is the memory budget in bytes each node's fragment of
	// the query may hold in hash-join tables and group-by partials. 0
	// (the default) means unlimited — the hot path is then byte-identical
	// to an ungoverned engine. When a join's build side would exceed the
	// budget, the join switches to Grace-style partitioned execution:
	// build and probe inputs are hash-partitioned to spill files and the
	// partitions joined one at a time within the budget (recursing on
	// still-oversized partitions). Spilling encodes rows to disk, so
	// governed queries are limited to spill-encodable column types (nil,
	// bool, int, int32, int64, uint64, float64, string).
	MemoryPerNode int64
	// SpillDir is the directory spill files are created under (one temp
	// subdirectory per query, removed at retirement). Empty means the
	// system temp directory. Only consulted when MemoryPerNode > 0.
	SpillDir string
	// Tenant labels the query for admission fairness: when Submits
	// queue for an admission slot (the engine was opened with a
	// MaxConcurrentQueries bound), the controller dequeues round-robin
	// across tenant labels, FIFO within one, so one tenant's backlog
	// cannot starve another's. Empty is a valid label (the default
	// tenant); with a single tenant the queue is plain FIFO.
	Tenant string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Morsel <= 0 {
		o.Morsel = 1024
	}
	if o.Batch <= 0 {
		o.Batch = 256
	}
	if o.Stripes <= 0 {
		o.Stripes = 8 * o.Workers
	}
	return o
}

// validateFor rejects nonsensical option values with descriptive errors
// (zero still means "default"), pins Workers to the executing pool's
// worker count, and fills the remaining defaults.
func (o Options) validateFor(workers int) (Options, error) {
	if o.Workers < 0 {
		return o, fmt.Errorf("exec: negative Workers (%d)", o.Workers)
	}
	if o.Stripes < 0 {
		return o, fmt.Errorf("exec: negative Stripes (%d)", o.Stripes)
	}
	if o.Morsel < 0 {
		return o, fmt.Errorf("exec: negative Morsel (%d)", o.Morsel)
	}
	if o.Batch < 0 {
		return o, fmt.Errorf("exec: negative Batch (%d)", o.Batch)
	}
	if o.MemoryPerNode < 0 {
		return o, fmt.Errorf("exec: negative MemoryPerNode (%d)", o.MemoryPerNode)
	}
	o.Workers = workers
	return o.withDefaults(), nil
}

// Stats reports per-query execution counters. On a shared Pool every
// in-flight query keeps its own Stats, so accounting stays isolated
// under concurrent execution.
type Stats struct {
	// QueryID identifies the query on its pool (assigned at Submit).
	QueryID     int64
	Activations int64
	// AdmissionWait is how long Submit parked in the admission queue
	// before the query was admitted (zero when a slot was free
	// immediately or the engine has no MaxConcurrentQueries bound).
	AdmissionWait time.Duration
	// ResultRows counts rows delivered as the query's result. For
	// group-by queries that is one row per group (the aggregation's
	// output, not the join rows feeding it).
	ResultRows int64
	// PerWorker counts activations processed by each worker; the spread
	// shows load balance. On a multi-node engine it is the concatenation
	// of every node's workers in node order, so Imbalance() still reports
	// the engine-wide spread.
	PerWorker []int64
	// OpRows counts rows produced by each physical operator, indexed by
	// operator id in compile order: a scan's filtered output, a probe's
	// join output (build operators produce no rows). Spill-phase replays
	// of already-counted input are not re-counted, and on a multi-node
	// engine rows are attributed at production, before redistribution.
	// Explain's Actualize reads it to pair actual cardinalities with the
	// planner's estimates.
	OpRows []int64

	// Multi-node fields, populated only when the query ran on a Nodes
	// engine with more than one node (nil/zero otherwise).

	// Nodes breaks the counters down per SM-node.
	Nodes []NodeStats
	// StealRounds counts starving episodes (solicitations of offers);
	// Steals counts the rounds that acquired a remote queue.
	StealRounds int64
	Steals      int64
	// StolenActivations counts probe activations shipped between nodes.
	StolenActivations int64
	// StolenBuckets / StolenBucketBytes count hash-table buckets copied
	// into thieves' node-local caches (a bucket already cached is never
	// re-shipped, per the stolen-queue cache of §4).
	StolenBuckets     int64
	StolenBucketBytes int64
	// RowsRedistributed counts rows that crossed nodes during normal
	// pipeline routing (build/probe input redistribution, not steals).
	RowsRedistributed int64

	// Memory-governance fields, populated only when the query ran with a
	// MemoryPerNode budget and at least one operator spilled.

	// SpilledPartitions counts spill partitions created (per spilled
	// join: the initial fan-out plus any recursive re-partitioning; per
	// governed group-by: one per spilled worker partial).
	SpilledPartitions int64
	// SpilledBytes counts bytes written to spill files.
	SpilledBytes int64
	// SpillPhases counts partition-wise join phases executed (build
	// partitions loaded into an in-memory table and probed).
	SpillPhases int64

	// Disk-scan fields, populated only when the plan scanned file-backed
	// tables (RegisterTableFile).

	// ChunksScanned counts table-file chunks read and decoded;
	// ChunksSkipped counts chunks pruned by their zone maps before any
	// I/O (a Where predicate provably matched none of the chunk's rows).
	ChunksScanned int64
	ChunksSkipped int64
	// DiskBytesRead counts encoded chunk bytes read from table files.
	DiskBytesRead int64
}

// NodeStats is one SM-node's share of a multi-node query's counters.
type NodeStats struct {
	// Node is the node index on its engine.
	Node int
	// Activations counts activations processed by this node's workers.
	Activations int64
	// ResultRows counts result rows this node delivered to the sink.
	ResultRows int64
	// PerWorker counts activations per worker of this node's pool.
	PerWorker []int64
	// RowsShippedIn/RowsShippedOut count pipeline rows this node
	// received from / routed to other nodes (redistribution traffic).
	RowsShippedIn  int64
	RowsShippedOut int64
	// Steals counts steal rounds this node completed as the thief;
	// StolenActivations the activations it acquired; StolenBuckets the
	// hash-table buckets it copied into its local cache doing so.
	Steals            int64
	StolenActivations int64
	StolenBuckets     int64
	// SpilledPartitions/SpilledBytes/SpillPhases are this node's share of
	// the memory-governance counters (see Stats).
	SpilledPartitions int64
	SpilledBytes      int64
	SpillPhases       int64
	// ChunksScanned/ChunksSkipped/DiskBytesRead are this node's share of
	// the disk-scan counters (see Stats).
	ChunksScanned int64
	ChunksSkipped int64
	DiskBytesRead int64
}

// Imbalance returns max/mean of PerWorker (1 = perfectly balanced).
func (s *Stats) Imbalance() float64 {
	if len(s.PerWorker) == 0 {
		return 1
	}
	var sum, maxv float64
	for _, v := range s.PerWorker {
		f := float64(v)
		sum += f
		if f > maxv {
			maxv = f
		}
	}
	mean := sum / float64(len(s.PerWorker))
	if mean == 0 {
		return 1
	}
	return maxv / mean
}

// Execute runs the plan rooted at root on a throwaway single-query pool
// and returns the materialized result rows. It is a thin compatibility
// wrapper over Pool/Submit; long-lived callers should hold a Pool (or
// the hierdb.DB facade) and stream instead.
func Execute(ctx context.Context, root Node, opt Options) ([]Row, *Stats, error) {
	return runOneShot(opt.Workers, func(p *Pool) (*Handle, error) {
		return p.Submit(ctx, root, opt)
	})
}

// runOneShot spins up a throwaway pool, runs one submitted query to
// completion, and materializes its stream — the shared machinery behind
// the legacy Execute/ExecuteGroupBy surface.
func runOneShot(workers int, submit func(*Pool) (*Handle, error)) ([]Row, *Stats, error) {
	pool, err := NewPool(workers, 0)
	if err != nil {
		return nil, nil, err
	}
	defer pool.Close()
	h, err := submit(pool)
	if err != nil {
		return nil, nil, err
	}
	// Buffer the batches first (they are already materialized), then
	// carve the row slice once at the exact total — a one-shot caller
	// pays no growslice churn on large results.
	var batches []*vec.Batch
	total := 0
	for batch := range h.Out() {
		batches = append(batches, batch)
		total += batch.N
	}
	if err := h.Err(); err != nil {
		return nil, nil, err
	}
	out := make([]Row, 0, total)
	var arena vec.Arena
	for _, batch := range batches {
		out = batch.AppendRows(out, &arena)
	}
	return out, h.Stats(), nil
}

// OwnerNode reports which node of a (nodes, stripes-per-node) engine
// owns join key k — the routing rule of the multi-node engine, exposed
// so tests and benchmarks can construct workloads of known skew.
//
//hierdb:hotpath
func OwnerNode(k any, nodes, stripes int) int {
	return hashKey(k, nodes*stripes) % nodes
}

// hashKey hashes a comparable key to a stripe index.
//
//hierdb:hotpath
func hashKey(k any, stripes int) int {
	return int(keyHash64(k) % uint64(stripes))
}

// keyHash64 hashes a comparable key to 64 bits (the shared base of
// stripe, node-ownership and spill-partition indexing).
//
//hierdb:hotpath
func keyHash64(k any) uint64 {
	var h uint64
	switch v := k.(type) {
	case int:
		h = mix64(uint64(v))
	case int32:
		h = mix64(uint64(v))
	case int64:
		h = mix64(uint64(v))
	case uint64:
		h = mix64(v)
	case string:
		f := fnv.New64a()
		f.Write([]byte(v))
		h = f.Sum64()
	case float64:
		h = mix64(math.Float64bits(v))
	default:
		f := fnv.New64a()
		//hierdb:ignore hotpath cold fallback for exotic key types; the common scalar kinds are handled above
		fmt.Fprintf(f, "%v", v)
		h = f.Sum64()
	}
	return h
}

//hierdb:hotpath
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
