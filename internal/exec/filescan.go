package exec

// Chunk-streamed scans over file-backed tables (store.TableFile). A
// scan activation is one row-group chunk: the worker consults the
// chunk's zone maps against the scan predicates first — a chunk no
// predicate can match is skipped before any I/O — then reads and
// decodes the chunk and runs the same predicate/filter/emit tail as
// the resident scan kernel. Under a MemoryPerNode budget the decoded
// chunk's footprint is charged against the fragment and refunded once
// every activation sharing the chunk's column storage has been
// processed (chunkRes refcounting in the worker loop), so streaming a
// table much larger than the budget holds only the in-flight chunks.

import (
	"sync/atomic"

	"hierdb/internal/vec"
)

// chunkRes is the refcounted memory charge of one decoded chunk. The
// scan activation holds one reference; every downstream activation
// whose batch shares the chunk's column storage inherits one (the
// worker loop propagates refs to the outs of a res-carrying
// activation), and the last release refunds the charge. Root-scan
// result batches are refunded at delivery — the consumer owns them
// from there, an accepted approximation mirroring how join outputs
// leave governance once delivered. An abort can drop queued
// activations without releasing their refs; the fragment's memUsed is
// never read again after an abort, so the leak is of accounting the
// query no longer does, not of memory.
type chunkRes struct {
	q     *query
	bytes int64
	refs  atomic.Int32
}

// release drops one reference, refunding the chunk's charge at zero.
// nil-safe: ungoverned queries carry no chunkRes.
//
//hierdb:hotpath
func (r *chunkRes) release() {
	if r != nil && r.refs.Add(-1) == 0 {
		r.q.unchargeMem(r.bytes)
	}
}

// retainFor gives each downstream activation of a res-carrying one its
// own reference. Called by the worker loop between process and the
// release of a's own reference, so the count never touches zero early.
//
//hierdb:hotpath
func (a *activation) retainFor(outs []*activation) {
	if a.res == nil {
		return
	}
	for _, out := range outs {
		out.res = a.res
	}
	a.res.refs.Add(int32(len(outs)))
}

// processScanFile runs one chunk-streamed scan activation (a.lo is the
// chunk index): zone-map pruning, read + decode, budget charge, then
// the shared predicate/filter/emit tail.
//
//hierdb:hotpath
func (q *query) processScanFile(a *activation, w int) (outs []*activation, results *vec.Batch) {
	s := a.op.scan
	ft := s.Table.File
	ci := a.lo
	if len(s.Preds) > 0 && ft.Skippable(ci, s.Preds) {
		q.chunksSkipped.Add(1)
		return nil, nil
	}
	b, err := ft.ReadChunk(ci)
	if err != nil {
		q.spillFail(err)
		return nil, nil
	}
	q.chunksScanned.Add(1)
	q.diskBytes.Add(ft.Chunk(ci).Len)
	if q.memBudget > 0 {
		var bytes int64
		for i := 0; i < b.N; i++ {
			bytes += batchRowBytes(b, i)
		}
		// Scans never block on the budget: the charge shrinks the join
		// headroom (pushing builds to spill earlier) instead — streamed
		// input must keep flowing for the chain to drain. Correctness
		// over governance, like the depth-capped partition load.
		q.chargeMem(bytes)
		a.res = &chunkRes{q: q, bytes: bytes}
		a.res.refs.Store(1)
	}
	vs := &q.vscratch[w]
	arena := &q.varenas[w]
	b = q.filterScan(s, b, vs, arena)
	if b == nil {
		return nil, nil
	}
	if a.op.consumer == nil {
		return nil, b
	}
	q.emitBatch(a.op.consumer, b, &outs, vs, arena)
	return outs, nil
}
