package exec

// Memory governance: the paper's memory-constrained execution model
// (internal/core/opstate.go charges every hash-table bucket against
// MemoryPerNode) brought to the real-data engine. Each per-node query
// fragment gets a byte budget (Options.MemoryPerNode); hash-join builds
// charge striped-bucket bytes against it, and a build that would exceed
// the budget switches the join to Grace-style partitioned execution:
//
//   - the in-memory stripes are drained into hash-partitioned spill
//     files (internal/spill) and all further build input is partitioned
//     straight to disk;
//   - the probe input, arriving in the next chain, is partitioned to a
//     parallel set of probe spill files instead of probing;
//   - once the probe input is exhausted, the partitions are joined one
//     at a time within the budget — a load activation builds partition
//     p's hash table, one probe activation per spilled batch probes it
//     in parallel, and a partition whose build side still exceeds the
//     budget is re-partitioned with a fresh hash salt (bounded depth);
//   - group-by partials respect the same budget: a worker partial that
//     grows past it is spilled to the worker's spill file and folded
//     back in at merge time.
//
// With MemoryPerNode == 0 (the default) none of this state exists and
// the hot path is untouched. Spill-phase advancement rides the existing
// operator lifecycle: a spilled probe operator whose pending count hits
// zero is not finished but advanced to its next partition by
// spillNextLocked, so the chain barrier, multi-node coordinator and
// group-by merge all see a perfectly ordinary (if long-lived) operator.
//
// Lock order: pool.mu (or mq.mu -> pool.mu) -> joinSpill.mu ->
// memBroker.mu -> query.spillMu -> spill.File's internal mutex.

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"hierdb/internal/spill"
	"hierdb/internal/vec"
)

const (
	// spillFanout is the number of partitions a spilling join (or a
	// re-partitioned oversized partition) fans out to.
	spillFanout = 8
	// maxSpillDepth bounds re-partitioning recursion; a partition still
	// oversized at the cap (e.g. one giant key) is joined anyway —
	// correctness over governance.
	maxSpillDepth = 6
	// hashEntryBytes prices one hash-table entry beyond its row storage
	// (map bucket share + bucket-slice header amortized).
	hashEntryBytes = 48
	// groupOverheadBytes prices one group-by partial entry beyond its
	// key (groupState + map bucket share).
	groupOverheadBytes = 96
)

// spillKind discriminates spill-phase activations.
type spillKind int8

const (
	spillLoad  spillKind = iota + 1 // build one partition's hash table
	spillProbe                      // probe one spilled batch against it
)

// spillAct is the payload of a spill-phase activation.
type spillAct struct {
	kind  spillKind
	part  spillPart   // load: the partition to open
	ref   spill.Ref   // probe: the batch to decode
	file  *spill.File // probe: the partition's probe file
	phase *spillPhase // probe: the loaded partition table
}

// spillPart is one pending partition pair of a spilled join.
type spillPart struct {
	build, probe *spill.File
	salt         uint64
	depth        int
}

// spillPhase is the in-flight partition join: partition part's build
// side loaded into an in-memory columnar store, charged bytes against
// the fragment budget until the partition's probes complete.
type spillPhase struct {
	part  spillPart
	store *stripeStore
	bytes int64
}

// joinSpill is the spill state of one governed hash join on one
// fragment, hung off the build operator's opRun. active flips once,
// from the build worker that overflowed the budget; everything under mu
// is touched by at most one load/advance at a time after that.
type joinSpill struct {
	active atomic.Bool

	mu      sync.Mutex //hierdb:lock jspill
	nparts  int
	seq     int // partition-file name sequencer
	build   []*spill.File
	probe   []*spill.File
	phased  bool // top-level partitions converted to pending
	pending []spillPart
	cur     *spillPhase
	// toClose collects finished partitions' files: spillNextLocked runs
	// under the scheduler locks, so the close/unlink syscalls are
	// deferred to the next partition load (and, as backstop, to
	// releaseSpill at retirement).
	toClose []*spill.File
}

// drainCloses closes (and thereby unlinks) partition files queued by
// spillNextLocked. Called from load processing with no scheduler locks
// held.
func (sp *joinSpill) drainCloses() {
	sp.mu.Lock()
	files := sp.toClose
	sp.toClose = nil
	sp.mu.Unlock()
	for _, f := range files {
		f.Close()
	}
}

// chargeMem adds n bytes to the fragment's memory account and reports
// whether the budget is now exceeded. No-op (never over) when
// ungoverned. Under a broker engine the fragment's usage is covered by
// a lease from the node's shared pool instead of the private budget:
// "over budget" then means the broker denied a top-up, and the caller
// spills exactly as it would on a private budget.
func (q *query) chargeMem(n int64) bool {
	if q.memBudget <= 0 || n == 0 {
		return false
	}
	used := q.memUsed.Add(n)
	if q.broker != nil {
		return !q.broker.topUp(&q.lease, used)
	}
	return used > q.memBudget
}

// unchargeMem releases bytes charged by chargeMem, returning surplus
// lease to the broker pool on a broker engine.
func (q *query) unchargeMem(n int64) {
	if q.memBudget <= 0 || n == 0 {
		return
	}
	used := q.memUsed.Add(-n)
	if q.broker != nil {
		q.broker.trim(&q.lease, used)
	}
}

// memHeadroom estimates how many more bytes the fragment could charge
// without going over: the unused remainder of the private budget, or —
// on a broker engine — the unused lease plus the broker pool's
// unleased remainder (another fragment may claim that remainder first;
// the estimate is advisory, exactly like the fixed-split one, which
// other workers' concurrent charges also invalidate).
func (q *query) memHeadroom() int64 {
	used := q.memUsed.Load()
	if q.broker != nil {
		return q.lease.granted.Load() - used + q.broker.available()
	}
	return q.memBudget - used
}

// approxRowBytes estimates a row's resident size: slice header plus one
// interface word pair per column plus string payloads.
func approxRowBytes(r Row) int64 {
	b := int64(24 + 16*len(r))
	for _, v := range r {
		if s, ok := v.(string); ok {
			b += int64(len(s))
		}
	}
	return b
}

// spillPartIndex maps a key to its partition at the given recursion
// salt. Every salt level uses an independent mix of the base key hash,
// so an oversized partition genuinely splits when re-partitioned.
func spillPartIndex(k any, salt uint64, nparts int) int {
	return spillPartIndexH(keyHash64(k), salt, nparts)
}

// spillPartIndexH is spillPartIndex over a precomputed keyHash64 — the
// vectorized kernels hash a key column once and reuse the hashes for
// stripe routing and partition indexing.
//
//hierdb:hotpath
func spillPartIndexH(h, salt uint64, nparts int) int {
	return int(mix64(h^(salt+1)*0x9e3779b97f4a7c15) % uint64(nparts))
}

// spillFail aborts the query with a spill I/O or encoding error. Called
// from activation processing with no locks held.
func (q *query) spillFail(err error) {
	if q.mq != nil {
		q.mq.fail(err)
		return
	}
	q.pool.abort(q, err)
}

// ensureSpillDir creates the query's private spill directory on first
// use (under Options.SpillDir, default the system temp dir). It is
// removed wholesale at retirement.
func (q *query) ensureSpillDir() (string, error) {
	q.spillMu.Lock()
	defer q.spillMu.Unlock()
	if q.spillDir != "" {
		return q.spillDir, nil
	}
	base := q.opt.SpillDir
	if base == "" {
		base = os.TempDir()
	}
	dir, err := os.MkdirTemp(base, "hierdb-spill-")
	if err != nil {
		return "", fmt.Errorf("exec: spill dir: %w", err)
	}
	q.spillDir = dir
	return dir, nil
}

// newSpillFile creates a spill file in the query's spill directory and
// registers it for retirement cleanup.
func (q *query) newSpillFile(name string) (*spill.File, error) {
	dir, err := q.ensureSpillDir()
	if err != nil {
		return nil, err
	}
	f, err := spill.Create(dir, name)
	if err != nil {
		return nil, err
	}
	q.spillMu.Lock()
	q.spillFiles = append(q.spillFiles, f)
	q.spillMu.Unlock()
	return f, nil
}

// spillAppend writes one row batch to a spill file (row codec; used by
// the group-by partial spill), keeping the query's spilled-bytes
// counter.
func (q *query) spillAppend(f *spill.File, rows []Row) error {
	ref, err := f.Append(rows)
	if err != nil {
		return err
	}
	q.spilledBytes.Add(ref.Len)
	return nil
}

// spillAppendCols writes one columnar batch to a spill file (columnar
// codec; the join spill path), keeping the query's spilled-bytes
// counter.
func (q *query) spillAppendCols(f *spill.File, b *vec.Batch) error {
	ref, err := f.AppendCols(b)
	if err != nil {
		return err
	}
	q.spilledBytes.Add(ref.Len)
	return nil
}

// releaseSpill closes (and thereby deletes) every spill file and
// removes the query's spill directory. Called exactly once per query at
// finalize, when no worker can touch the query again; double closes
// from eager per-partition cleanup are idempotent.
func (q *query) releaseSpill() {
	q.spillMu.Lock()
	files := q.spillFiles
	dir := q.spillDir
	q.spillFiles, q.spillDir = nil, ""
	q.spillMu.Unlock()
	for _, f := range files {
		f.Close()
	}
	if dir != "" {
		os.RemoveAll(dir)
	}
}

// spilled reports whether the join owning this probe operator has
// switched to partitioned execution on fragment q. The flag is fixed
// before the first probe activation runs (builds precede probes across
// the chain barrier), so probe-side reads need no lock.
func (q *query) spilled(probeOp *pop) bool {
	sp := q.ops[probeOp.partner.id].spill
	return sp != nil && sp.active.Load()
}

// spillBatch hash-partitions one batch into the given partition files:
// key hashes are computed vectorized (typed loop when the key column
// resolved) and each partition's selection view is encoded with the
// columnar codec.
func (q *query) spillBatch(files []*spill.File, keyCol int, key KeyFunc, salt uint64, b *vec.Batch, vs *vecScratch) error {
	hs := keyHashes(b, keyCol, key, vs)
	return q.spillBatchSel(files, b, nil, hs, salt)
}

// spillBatchSel is spillBatch over a subset of b's logical rows (sel
// nil = all) with precomputed key hashes.
func (q *query) spillBatchSel(files []*spill.File, b *vec.Batch, sel []int32, hs []uint64, salt uint64) error {
	n := len(files)
	parts := make([][]int32, n)
	if sel == nil {
		for i := 0; i < b.N; i++ {
			d := spillPartIndexH(hs[i], salt, n)
			parts[d] = append(parts[d], int32(i))
		}
	} else {
		for _, li := range sel {
			d := spillPartIndexH(hs[li], salt, n)
			parts[d] = append(parts[d], li)
		}
	}
	var arena vec.Arena
	for d, psel := range parts {
		if len(psel) == 0 {
			continue
		}
		if err := q.spillAppendCols(files[d], vec.Select(b, psel, &arena)); err != nil {
			return err
		}
	}
	return nil
}

// buildGoverned is the budget-charging build path (MemoryPerNode > 0).
// Before the spill transition it inserts into the stripes exactly like
// the ungoverned path, accumulating the batch's byte charge; the worker
// whose charge crosses the budget performs the transition. Workers
// racing the transition divert rows whose stripe was already drained
// (stripeSpilled, read under the stripe lock) to the partition files,
// so no row is lost between draining and the active flag flipping.
func (q *query) buildGoverned(or *opRun, b *vec.Batch, w int) error {
	sp := or.spill
	op := or.op
	key := op.join.BuildKey
	vs := &q.vscratch[w]
	if sp.active.Load() {
		return q.spillBatch(sp.build, op.keyCol, key, 0, b, vs)
	}
	hs := keyHashes(b, op.keyCol, key, vs)
	var keys []any
	if op.keyCol < 0 {
		keys = vs.keys
	}
	stripes := len(or.stripes)
	if cap(vs.perDest) < stripes {
		vs.perDest = make([][]int32, stripes)
	}
	per := vs.perDest[:stripes]
	for s := range per {
		per[s] = per[s][:0]
	}
	if q.mq != nil {
		nb, n := uint64(q.mq.buckets), q.mq.n
		for i := 0; i < b.N; i++ {
			s := int(hs[i]%nb) / n
			per[s] = append(per[s], int32(i))
		}
	} else {
		st := uint64(q.opt.Stripes)
		for i := 0; i < b.N; i++ {
			per[hs[i]%st] = append(per[hs[i]%st], int32(i))
		}
	}
	var add int64
	var diverted []int32
	for s := range per {
		sel := per[s]
		if len(sel) == 0 {
			continue
		}
		or.locks[s].Lock()
		if or.stripeSpilled[s] {
			or.locks[s].Unlock()
			diverted = append(diverted, sel...)
			continue
		}
		or.stripes[s].insertSel(b, sel, keys)
		or.stripeRows[s] += len(sel)
		or.locks[s].Unlock()
		for _, li := range sel {
			add += batchRowBytes(b, int(li)) + hashEntryBytes
		}
	}
	if len(diverted) > 0 {
		// The transition published the partition files before marking any
		// stripe spilled, and we saw the mark under the stripe lock.
		if err := q.spillBatchSel(sp.build, b, diverted, hs, 0); err != nil {
			return err
		}
	}
	if q.chargeMem(add) {
		return q.spillTransition(or)
	}
	return nil
}

// spillTransition switches a governed join to partitioned execution:
// create the partition files, drain the in-memory stripe stores into
// them, refund their charge, and flip active. Single-flight via sp.mu.
func (q *query) spillTransition(or *opRun) error {
	sp := or.spill
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.active.Load() {
		return nil
	}
	sp.nparts = spillFanout
	var err error
	if sp.build, sp.probe, err = q.newSpillPartFiles(sp, or.op.id); err != nil {
		return err
	}
	key := or.op.join.BuildKey
	var vs vecScratch
	var freed int64
	for s := range or.stripes {
		or.locks[s].Lock()
		ss := or.stripes[s]
		or.stripes[s] = nil
		or.stripeRows[s] = 0
		or.stripeSpilled[s] = true
		or.locks[s].Unlock()
		// Encoding runs outside the stripe lock: the spilled mark diverts
		// any later insert for this stripe to the partition files.
		if ss == nil || ss.rows == 0 {
			continue
		}
		sealed := ss.app.Batch()
		hs := keyHashes(sealed, ss.keyCol, key, &vs)
		for lo := 0; lo < sealed.N; lo += q.opt.Batch {
			hi := lo + q.opt.Batch
			if hi > sealed.N {
				hi = sealed.N
			}
			if err := q.spillBatchSel(sp.build, sealed, vec.Ident(hi)[lo:hi], hs, 0); err != nil {
				return err
			}
		}
		for i := 0; i < sealed.N; i++ {
			freed += batchRowBytes(sealed, i) + hashEntryBytes
		}
	}
	q.unchargeMem(freed)
	sp.active.Store(true)
	return nil
}

// newSpillPartFiles creates one fan-out of partition file pairs for the
// join op, named by operator and round so recursive rounds never
// collide.
func (q *query) newSpillPartFiles(sp *joinSpill, opID int) (build, probe []*spill.File, err error) {
	seq := sp.seq
	sp.seq++
	q.spilledParts.Add(int64(sp.nparts))
	for i := 0; i < sp.nparts; i++ {
		b, err := q.newSpillFile(fmt.Sprintf("j%d-r%d-b%d", opID, seq, i))
		if err != nil {
			return nil, nil, err
		}
		p, err := q.newSpillFile(fmt.Sprintf("j%d-r%d-p%d", opID, seq, i))
		if err != nil {
			return nil, nil, err
		}
		build, probe = append(build, b), append(probe, p)
	}
	return build, probe, nil
}

// spillNextLocked advances a spilled probe operator when its pending
// count hits zero: finish the current partition phase (refund its
// charge, delete its files), then hand back a load activation for the
// next non-empty partition — or nil when all partitions are joined and
// the operator may truly finish. Callers hold the fragment's pool
// mutex (and, multi-node, mq.mu).
func (q *query) spillNextLocked(or *opRun) *activation {
	if or.op.kind != opProbe || q.aborted {
		return nil
	}
	sp := q.ops[or.op.partner.id].spill
	if sp == nil || !sp.active.Load() {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.cur != nil {
		q.unchargeMem(sp.cur.bytes)
		sp.toClose = append(sp.toClose, sp.cur.part.build, sp.cur.part.probe)
		sp.cur = nil
	}
	if !sp.phased {
		sp.phased = true
		for i := range sp.build {
			sp.pending = append(sp.pending, spillPart{build: sp.build[i], probe: sp.probe[i], salt: 0})
		}
		sp.build, sp.probe = nil, nil
	}
	for len(sp.pending) > 0 {
		part := sp.pending[0]
		sp.pending = sp.pending[1:]
		if part.build.Rows() == 0 || part.probe.Rows() == 0 {
			// An inner join with an empty side yields nothing.
			sp.toClose = append(sp.toClose, part.build, part.probe)
			continue
		}
		return &activation{op: or.op, dest: q.node, spill: &spillAct{kind: spillLoad, part: part}}
	}
	return nil
}

// processSpillLoad opens one partition: re-partition it at the next
// salt if its build side still exceeds the budget (bounded depth), or
// build its hash table and fan out one probe activation per spilled
// probe batch. Runs outside all scheduler locks.
func (q *query) processSpillLoad(a *activation) (outs []*activation) {
	sp := q.ops[a.op.partner.id].spill
	sp.drainCloses()
	part := a.spill.part
	// Estimate the partition's resident size: encoded bytes plus per-row
	// and per-entry overhead. It must fit the budget *headroom* — what
	// other residents (earlier joins' tables, stolen bucket caches,
	// group-by partials) have charged counts against the fragment — but
	// never re-partition below a quarter of the budget: with pathological
	// little headroom that would recurse every partition to the depth
	// cap, exploding the file fan-out for no achievable fit.
	headroom := q.memHeadroom()
	if floor := q.memBudget / 4; headroom < floor {
		headroom = floor
	}
	resident := part.build.Bytes() + part.build.Rows()*(hashEntryBytes+24)
	if resident > headroom && part.depth < maxSpillDepth {
		if err := q.repartition(sp, a.op, part); err != nil {
			q.spillFail(err)
		}
		return nil // pending grew; the next pend==0 advance picks it up
	}
	key := a.op.join.BuildKey
	keyCol := a.op.partner.keyCol
	// Decoded batches may carry per-batch kinds (an all-null column
	// decodes as Any), so the partition store indexes boxed — the
	// semantic reference — with schema discovery left to the appender.
	store := newStripeStore(nil, idxBoxed, keyCol, int(part.build.Rows()))
	var vs vecScratch
	var bytes int64
	for _, ref := range part.build.Refs() {
		db, err := part.build.ReadCols(ref)
		if err != nil {
			q.spillFail(err)
			return nil
		}
		var keys []any
		if keyCol < 0 {
			keyHashes(db, keyCol, key, &vs) // fills the boxed key scratch
			keys = vs.keys
		}
		store.insertSel(db, vec.Ident(db.N)[:db.N], keys)
		for i := 0; i < db.N; i++ {
			bytes += batchRowBytes(db, i) + hashEntryBytes
		}
	}
	q.chargeMem(bytes) // may exceed at the depth cap; accepted
	q.spillPhases.Add(1)
	phase := &spillPhase{part: part, store: store, bytes: bytes}
	sp.mu.Lock()
	sp.cur = phase
	sp.mu.Unlock()
	for _, ref := range part.probe.Refs() {
		outs = append(outs, &activation{op: a.op, dest: q.node,
			spill: &spillAct{kind: spillProbe, ref: ref, file: part.probe, phase: phase}})
	}
	return outs
}

// repartition splits one oversized partition into a fresh fan-out at
// the next hash salt, deleting the old pair. Loads are single-flight
// per fragment join, so only sp.pending mutation needs sp.mu.
func (q *query) repartition(sp *joinSpill, probeOp *pop, part spillPart) error {
	salt := part.salt + 1
	sp.mu.Lock()
	builds, probes, err := q.newSpillPartFiles(sp, probeOp.partner.id)
	sp.mu.Unlock()
	if err != nil {
		return err
	}
	var vs vecScratch
	split := func(src *spill.File, dst []*spill.File, keyCol int, key KeyFunc) error {
		for _, ref := range src.Refs() {
			db, err := src.ReadCols(ref)
			if err != nil {
				return err
			}
			if err := q.spillBatch(dst, keyCol, key, salt, db, &vs); err != nil {
				return err
			}
		}
		return nil
	}
	if err := split(part.build, builds, probeOp.partner.keyCol, probeOp.join.BuildKey); err != nil {
		return err
	}
	if err := split(part.probe, probes, probeOp.keyCol, probeOp.join.ProbeKey); err != nil {
		return err
	}
	part.build.Close()
	part.probe.Close()
	next := make([]spillPart, 0, len(builds))
	for i := range builds {
		next = append(next, spillPart{build: builds[i], probe: probes[i], salt: salt, depth: part.depth + 1})
	}
	sp.mu.Lock()
	sp.pending = append(sp.pending, next...)
	sp.mu.Unlock()
	return nil
}

// processSpillProbe decodes one spilled probe batch and probes it
// against the loaded partition store, emitting downstream batches (or
// a result batch at the root) exactly like the in-memory probe path.
func (q *query) processSpillProbe(a *activation, w int) (outs []*activation, results *vec.Batch) {
	pb, err := a.spill.file.ReadCols(a.spill.ref)
	if err != nil {
		q.spillFail(err)
		return nil, nil
	}
	ss := a.spill.phase.store
	vs := &q.vscratch[w]
	keyCol := a.op.keyCol
	var keys []any
	if keyCol < 0 {
		keyHashes(pb, keyCol, a.op.join.ProbeKey, vs)
		keys = vs.keys
	}
	var kc *vec.Col
	if keyCol >= 0 && keyCol < len(pb.Cols) {
		kc = &pb.Cols[keyCol]
	}
	vs.probeRows = vs.probeRows[:0]
	vs.bstores = vs.bstores[:0]
	vs.bpos = vs.bpos[:0]
	for i := 0; i < pb.N; i++ {
		for _, pos := range ss.lookup(kc, keys, i) {
			vs.probeRows = append(vs.probeRows, int32(i))
			vs.bstores = append(vs.bstores, ss)
			vs.bpos = append(vs.bpos, pos)
		}
	}
	return q.finishProbe(a, pb, w)
}

// governGroupPartial charges worker w's group-by partial growth and
// spills the partial to the worker's spill file when it crosses the
// budget. Only worker w touches its partial and counters, so the only
// shared state is the byte account.
func (q *query) governGroupPartial(w int) error {
	m := q.partials[w]
	grown := len(m) - q.gbGroups[w]
	if grown <= 0 {
		return nil
	}
	q.gbGroups[w] = len(m)
	add := int64(grown) * (groupOverheadBytes + 8*int64(len(q.gb.Aggs)))
	q.gbCharged[w] += add
	if !q.chargeMem(add) {
		return nil
	}
	// Over budget: spill the whole partial and reset.
	f := q.gbFiles[w]
	if f == nil {
		var err error
		if f, err = q.newSpillFile(fmt.Sprintf("gb-w%d", w)); err != nil {
			return err
		}
		q.gbFiles[w] = f
		q.spilledParts.Add(1)
	}
	for _, chunk := range batchRows(groupSpillRows(m, q.gb), q.opt.Batch) {
		if err := q.spillAppend(f, chunk); err != nil {
			return err
		}
	}
	q.unchargeMem(q.gbCharged[w])
	q.gbCharged[w] = 0
	q.gbGroups[w] = 0
	q.partials[w] = make(map[any]*groupState)
	return nil
}

// mergedGroups merges the in-memory worker partials and folds any
// spilled partials back in — the governed replacement for
// mergePartials(q.partials, ...).
func (q *query) mergedGroups() (map[any]*groupState, error) {
	merged := mergePartials(q.partials, q.gb)
	for _, f := range q.gbFiles {
		if f == nil {
			continue
		}
		for _, ref := range f.Refs() {
			rows, err := f.ReadBatch(ref)
			if err != nil {
				return nil, err
			}
			mergeSpilledGroups(merged, q.gb, rows)
		}
	}
	return merged, nil
}
