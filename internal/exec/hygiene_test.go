package exec

// Shared post-incident hygiene helpers for the exec test suite: the
// goroutine-leak check (internal/leaktest, also used by the facade
// tests) plus the pool-idle check — after a cancel/abort, a fresh query
// on the same pool or engine must still complete. Register
// checkQueryHygiene at the top of every test that spawns a query.

import (
	"context"
	"testing"

	"hierdb/internal/leaktest"
	"hierdb/internal/vec"
)

// drainRows consumes a handle's columnar output stream and materializes
// it as rows — the test-side equivalent of the facade's Collect.
func drainRows(h *Handle) []Row {
	var out []Row
	var arena vec.Arena
	for b := range h.Out() {
		out = b.AppendRows(out, &arena)
	}
	return out
}

// checkQueryHygiene registers the suite's goroutine-leak check. Call it
// before creating pools or engines: cleanups run LIFO, so the check
// runs after the test's Close cleanups have released the workers.
func checkQueryHygiene(t *testing.T) {
	t.Helper()
	leaktest.Check(t, 2)
}

// submitFunc is the Submit surface shared by Pool and Nodes.
type submitFunc func(context.Context, Node, Options) (*Handle, error)

// verifyIdle proves a pool or engine still serves queries (the
// "pool-idle" check): a small fresh join must complete with the right
// cardinality. Pass p.Submit or ns.Submit.
func verifyIdle(t *testing.T, submit submitFunc) {
	t.Helper()
	h, err := submit(context.Background(), cancelPlan(1000), Options{})
	if err != nil {
		t.Fatalf("post-incident query failed to submit: %v", err)
	}
	n := 0
	for batch := range h.Out() {
		n += batch.N
	}
	if err := h.Err(); err != nil || n != 1000 {
		t.Fatalf("post-incident query: %d rows, err %v", n, err)
	}
}
