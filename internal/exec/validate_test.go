package exec

import (
	"context"
	"strings"
	"testing"
)

// TestInputValidation is the table-driven check that malformed engine
// inputs return descriptive errors instead of panicking.
func TestInputValidation(t *testing.T) {
	valid := tbl("v", 10, func(i int) any { return i }, func(i int) any { return i })
	cases := []struct {
		name string
		root Node
		opt  Options
		want string // substring of the error
	}{
		{"nil root", nil, Options{}, "nil plan"},
		{"scan without table", &Scan{}, Options{}, "scan without table"},
		{"nil join input", &Join{Build: &Scan{Table: valid}, Probe: nil,
			BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}, Options{}, "nil plan node"},
		{"nil BuildKey", &Join{Build: &Scan{Table: valid}, Probe: &Scan{Table: valid},
			ProbeKey: KeyCol(0)}, Options{}, "nil BuildKey"},
		{"nil ProbeKey", &Join{Build: &Scan{Table: valid}, Probe: &Scan{Table: valid},
			BuildKey: KeyCol(0)}, Options{}, "nil ProbeKey"},
		{"negative Workers", &Scan{Table: valid}, Options{Workers: -2}, "negative Workers (-2)"},
		{"negative Stripes", &Scan{Table: valid}, Options{Stripes: -1}, "negative Stripes (-1)"},
		{"negative Morsel", &Scan{Table: valid}, Options{Morsel: -8}, "negative Morsel (-8)"},
		{"negative Batch", &Scan{Table: valid}, Options{Batch: -3}, "negative Batch (-3)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Execute(context.Background(), tc.root, tc.opt)
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidationOnPoolSubmit checks the same contract on the resident
// surface, plus group-by validation and pool construction errors.
func TestValidationOnPoolSubmit(t *testing.T) {
	if _, err := NewPool(-1, 0); err == nil || !strings.Contains(err.Error(), "negative Workers") {
		t.Fatalf("NewPool(-1) = %v", err)
	}
	if _, err := NewPool(2, -4); err == nil || !strings.Contains(err.Error(), "negative MaxConcurrentQueries") {
		t.Fatalf("NewPool(_, -4) = %v", err)
	}
	pool, err := NewPool(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	valid := tbl("v", 10, func(i int) any { return i }, func(i int) any { return i })
	if _, err := pool.Submit(context.Background(), nil, Options{}); err == nil {
		t.Fatal("nil root accepted by Submit")
	}
	if _, err := pool.Submit(context.Background(), &Scan{Table: valid}, Options{Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted by Submit")
	}
	if _, err := pool.SubmitGroupBy(context.Background(), &Scan{Table: valid}, nil, Options{}); err == nil ||
		!strings.Contains(err.Error(), "group-by without key") {
		t.Fatalf("nil group-by: %v", err)
	}
	if _, err := pool.SubmitGroupBy(context.Background(), &Scan{Table: valid},
		&GroupBy{Key: KeyCol(0), Aggs: []Aggregation{{Func: Sum}}}, Options{}); err == nil ||
		!strings.Contains(err.Error(), "without Arg") {
		t.Fatalf("sum without Arg: %v", err)
	}
	// Zero still means default, not an error.
	h, err := pool.Submit(context.Background(), &Scan{Table: valid}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for range h.Out() {
	}
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
}
