package exec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// govPlan is a fact-dim join whose build side is large enough to blow
// any small budget.
func govPlan(buildRows, probeRows int) Node {
	build := tbl("gb", buildRows, func(i int) any { return i }, func(i int) any { return fmt.Sprintf("b%d", i) })
	probe := tbl("gp", probeRows, func(i int) any { return i % buildRows }, func(i int) any { return i })
	return &Join{
		Build:    &Scan{Table: build},
		Probe:    &Scan{Table: probe},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	}
}

// runGoverned submits the plan on a fresh pool with the given budget and
// returns rows plus stats.
func runGoverned(t *testing.T, plan Node, opt Options) ([]Row, *Stats) {
	t.Helper()
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	h, err := pool.Submit(context.Background(), plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	out := drainRows(h)
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
	return out, h.Stats()
}

// TestSpillJoinMatchesUnlimited is the core governance contract: a join
// whose build side exceeds MemoryPerNode completes, spills, and returns
// exactly the unlimited-memory result.
func TestSpillJoinMatchesUnlimited(t *testing.T) {
	checkQueryHygiene(t)
	plan := govPlan(5_000, 20_000)
	want, _, err := Execute(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, st := runGoverned(t, plan, Options{MemoryPerNode: 16 << 10, SpillDir: t.TempDir()})
	sameRows(t, got, want)
	if st.SpillPhases == 0 || st.SpilledPartitions == 0 || st.SpilledBytes == 0 {
		t.Fatalf("build of ~5000 rows under a 16KiB budget did not spill: %+v", st)
	}
}

// TestSpillRecursesOnOversizedPartitions forces re-partitioning: the
// budget is far below one top-level partition's size, so loads must
// recurse (more partitions than one fan-out) and still match.
func TestSpillRecursesOnOversizedPartitions(t *testing.T) {
	checkQueryHygiene(t)
	plan := govPlan(8_000, 8_000)
	want, _, err := Execute(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, st := runGoverned(t, plan, Options{MemoryPerNode: 4 << 10, SpillDir: t.TempDir()})
	sameRows(t, got, want)
	if st.SpilledPartitions <= spillFanout {
		t.Fatalf("no recursive re-partitioning under a 4KiB budget: %d partitions", st.SpilledPartitions)
	}
}

// TestSpillChainedJoins: a spilled join feeding another join (whose own
// build may also spill) must still match the unlimited plan.
func TestSpillChainedJoins(t *testing.T) {
	checkQueryHygiene(t)
	dim := tbl("dim", 3_000, func(i int) any { return i }, func(i int) any { return i % 11 })
	mid := tbl("mid", 6_000, func(i int) any { return i % 3_000 }, func(i int) any { return i * 3 })
	fact := tbl("fact", 4_000, func(i int) any { return (i * 3) % 18_000 }, func(i int) any { return i })
	mk := func() Node {
		inner := &Join{Build: &Scan{Table: dim}, Probe: &Scan{Table: mid},
			BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
		return &Join{Build: &Scan{Table: fact}, Probe: inner,
			BuildKey: KeyCol(0), ProbeKey: KeyCol(1)}
	}
	want, _, err := Execute(context.Background(), mk(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, st := runGoverned(t, mk(), Options{MemoryPerNode: 24 << 10, SpillDir: t.TempDir()})
	sameRows(t, got, want)
	if st.SpillPhases == 0 {
		t.Fatalf("chained plan did not spill under budget: %+v", st)
	}
}

// TestSpillGroupByMatchesUnlimited: group-by partials over a spilled
// join respect the budget by spilling partial maps, and the merged
// output is identical to the unlimited run.
func TestSpillGroupByMatchesUnlimited(t *testing.T) {
	checkQueryHygiene(t)
	plan := govPlan(4_000, 16_000)
	gb := &GroupBy{
		Key: KeyCol(0), // probe key: 4000 groups — enough to overflow a small budget
		Aggs: []Aggregation{
			{Func: Count},
			{Func: Sum, Arg: func(r Row) float64 { return float64(r[1].(int)) }},
			{Func: Min, Arg: func(r Row) float64 { return float64(r[1].(int)) }},
			{Func: Max, Arg: func(r Row) float64 { return float64(r[1].(int)) }},
		},
	}
	want, _, err := ExecuteGroupBy(context.Background(), plan, gb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	h, err := pool.SubmitGroupBy(context.Background(), plan, gb, Options{MemoryPerNode: 16 << 10, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	got := collectHandle(t, h)
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for i := range got {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
		}
	}
	if st := h.Stats(); st.SpilledBytes == 0 {
		t.Fatalf("governed group-by spilled nothing: %+v", st)
	}
}

// TestMultiNodeSpillMatchesUnlimited: every fragment governs its own
// budget; a 2- and 4-node engine under a tiny budget must match the
// flat unlimited run, with and without stealing enabled.
func TestMultiNodeSpillMatchesUnlimited(t *testing.T) {
	checkQueryHygiene(t)
	plan := govPlan(5_000, 20_000)
	want, _, err := Execute(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		for _, steal := range []bool{true, false} {
			t.Run(fmt.Sprintf("nodes=%d/steal=%v", n, steal), func(t *testing.T) {
				ns := newNodesT(t, n, 2)
				h, err := ns.Submit(context.Background(), plan, Options{
					MemoryPerNode:   8 << 10,
					SpillDir:        t.TempDir(),
					DisableStealing: !steal,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := collectHandle(t, h)
				sameRows(t, got, want)
				st := h.Stats()
				if st.SpillPhases == 0 {
					t.Fatalf("no fragment spilled under an 8KiB per-node budget: %+v", st)
				}
				var parts int64
				for _, nst := range st.Nodes {
					parts += nst.SpilledPartitions
				}
				if parts != st.SpilledPartitions {
					t.Fatalf("per-node spill partitions do not sum: %d vs %d", parts, st.SpilledPartitions)
				}
			})
		}
	}
}

// TestSpillStaticMode: spill-phase activations schedule correctly under
// the static (FP) worker-operator binding too.
func TestSpillStaticMode(t *testing.T) {
	checkQueryHygiene(t)
	plan := govPlan(5_000, 20_000)
	want, _, err := Execute(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, st := runGoverned(t, plan, Options{MemoryPerNode: 16 << 10, SpillDir: t.TempDir(), Static: true})
	sameRows(t, got, want)
	if st.SpillPhases == 0 {
		t.Fatalf("static governed run did not spill: %+v", st)
	}
}

// TestSpillCancellationRemovesTempFiles cancels mid-spill (and
// separately closes the pool mid-spill) and requires prompt abort with
// the spill directory left empty.
func TestSpillCancellationRemovesTempFiles(t *testing.T) {
	checkQueryHygiene(t)
	dir := t.TempDir()
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	h, err := pool.Submit(ctx, govPlan(60_000, 240_000), Options{MemoryPerNode: 32 << 10, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	<-h.Out() // wait for first output, well into spill-phase execution
	cancel()
	start := time.Now()
	for range h.Out() {
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain after mid-spill cancel took %v", elapsed)
	}
	if err := h.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled spilling query reported %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill temp files leaked after cancel: %v", names(ents))
	}
	// Pool-idle check: a fresh governed query on the same pool completes.
	got, st := func() ([]Row, *Stats) {
		h2, err := pool.Submit(context.Background(), govPlan(3_000, 3_000), Options{MemoryPerNode: 8 << 10, SpillDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return collectHandle(t, h2), h2.Stats()
	}()
	if len(got) != 3_000 || st.SpillPhases == 0 {
		t.Fatalf("post-cancel governed query: %d rows, stats %+v", len(got), st)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("spill temp files leaked after clean completion: %v", names(ents))
	}
}

func names(ents []os.DirEntry) []string {
	out := make([]string, len(ents))
	for i, e := range ents {
		out[i] = e.Name()
	}
	return out
}

// TestSpillUnsupportedTypeFails: a governed query that must spill rows
// with a non-encodable column reports a descriptive error instead of
// wrong results.
func TestSpillUnsupportedTypeFails(t *testing.T) {
	checkQueryHygiene(t)
	type opaque struct{ x int }
	build := &Table{Name: "b", Cols: []string{"k", "v"}}
	for i := 0; i < 5_000; i++ {
		build.Rows = append(build.Rows, Row{i, opaque{i}})
	}
	probe := tbl("p", 100, func(i int) any { return i }, func(i int) any { return i })
	plan := &Join{Build: &Scan{Table: build}, Probe: &Scan{Table: probe},
		BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	h, err := pool.Submit(context.Background(), plan, Options{MemoryPerNode: 8 << 10, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for range h.Out() {
	}
	if err := h.Err(); err == nil || !strings.Contains(err.Error(), "unsupported column type") {
		t.Fatalf("governed query over non-encodable rows reported %v", err)
	}
}

// TestNegativeMemoryRejected: option validation.
func TestNegativeMemoryRejected(t *testing.T) {
	pool, err := NewPool(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	_, err = pool.Submit(context.Background(), govPlan(10, 10), Options{MemoryPerNode: -1})
	if err == nil || !strings.Contains(err.Error(), "MemoryPerNode") {
		t.Fatalf("negative MemoryPerNode: %v", err)
	}
}

// TestUngovernedHasNoSpillState: the default path must not even
// allocate governance state, and reports zero spill counters.
func TestUngovernedHasNoSpillState(t *testing.T) {
	checkQueryHygiene(t)
	got, st := runGoverned(t, govPlan(500, 500), Options{})
	if len(got) != 500 {
		t.Fatalf("%d rows", len(got))
	}
	if st.SpilledPartitions != 0 || st.SpilledBytes != 0 || st.SpillPhases != 0 {
		t.Fatalf("ungoverned run reports spill counters: %+v", st)
	}
}
