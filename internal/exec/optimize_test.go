package exec

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/store"
	"hierdb/internal/vec"
)

// statTable builds a 3-column table: id (all distinct), k (i % keys),
// s (i % 10 strings, nil every 7th row when withNulls).
func statTable(name string, n, keys int, withNulls bool) *Table {
	t := &Table{Name: name, Cols: []string{"id", "k", "s"}}
	for i := 0; i < n; i++ {
		var s any = "s" + string(rune('a'+i%10))
		if withNulls && i%7 == 0 {
			s = nil
		}
		t.Rows = append(t.Rows, Row{i, i % keys, s})
	}
	return t
}

func TestAnalyzeResident(t *testing.T) {
	tb := statTable("a", 1000, 100, true)
	st, err := Analyze(tb)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 1000 {
		t.Fatalf("Rows = %d, want 1000", st.Rows)
	}
	if st.AvgRowBytes <= 0 {
		t.Fatalf("AvgRowBytes = %v, want > 0", st.AvgRowBytes)
	}
	if len(st.Cols) != 3 {
		t.Fatalf("Cols = %d, want 3", len(st.Cols))
	}
	// Linear counting is approximate; allow 5% on the dense column.
	if d := st.Cols[0].Distinct; d < 950 || d > 1050 {
		t.Fatalf("id distinct = %d, want ~1000", d)
	}
	if d := st.Cols[1].Distinct; d < 95 || d > 105 {
		t.Fatalf("k distinct = %d, want ~100", d)
	}
	wantNulls := int64(0)
	for i := 0; i < 1000; i += 7 {
		wantNulls++
	}
	if st.Cols[2].Nulls != wantNulls {
		t.Fatalf("s nulls = %d, want %d", st.Cols[2].Nulls, wantNulls)
	}
}

func TestAnalyzeFileMatchesResident(t *testing.T) {
	tb := statTable("f", 500, 25, false)
	path := filepath.Join(t.TempDir(), "f.hdb")
	if err := store.WriteTable(path, tb.Cols, 64, tb.Rows); err != nil {
		t.Fatal(err)
	}
	f, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ft := &Table{Name: "f", Cols: tb.Cols, File: f}

	mem, err := Analyze(tb)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := Analyze(ft)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Rows != disk.Rows {
		t.Fatalf("rows: mem %d vs disk %d", mem.Rows, disk.Rows)
	}
	for i := range mem.Cols {
		if mem.Cols[i].Distinct != disk.Cols[i].Distinct {
			t.Fatalf("col %d distinct: mem %d vs disk %d", i, mem.Cols[i].Distinct, disk.Cols[i].Distinct)
		}
		if mem.Cols[i].Nulls != disk.Cols[i].Nulls {
			t.Fatalf("col %d nulls: mem %d vs disk %d", i, mem.Cols[i].Nulls, disk.Cols[i].Nulls)
		}
	}
}

func TestAnalyzeNilTable(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("Analyze(nil) succeeded")
	}
}

// optStats adapts a fixed map to the planner's StatsFunc.
func optStats(m map[string]*catalog.TableStats) StatsFunc {
	return func(t *Table) *catalog.TableStats { return m[t.Name] }
}

func analyzeAll(t *testing.T, tables ...*Table) StatsFunc {
	t.Helper()
	m := make(map[string]*catalog.TableStats)
	for _, tb := range tables {
		st, err := Analyze(tb)
		if err != nil {
			t.Fatal(err)
		}
		m[tb.Name] = st
	}
	return optStats(m)
}

func TestOptimizeOffPassthrough(t *testing.T) {
	a := tbl("a", 10, func(i int) any { return i }, func(i int) any { return i })
	b := tbl("b", 10, func(i int) any { return i }, func(i int) any { return i })
	root := &Join{Probe: &Scan{Table: a}, Build: &Scan{Table: b}, ProbeKey: KeyCol(0), BuildKey: KeyCol(0)}
	pc := Optimize(root, OptimizeOff, nil)
	if pc.Root != Node(root) {
		t.Fatal("off mode did not return the literal plan")
	}
	if pc.Reordered || pc.Reason != "" {
		t.Fatalf("off mode: %+v", pc)
	}
}

func TestOptimizeHintsFillsClonesOnly(t *testing.T) {
	a := statTable("a", 400, 40, false)
	b := statTable("b", 50, 50, false)
	sa, sb := &Scan{Table: a, Preds: []vec.Pred{{Col: 1, Op: vec.Eq, Val: 3}}}, &Scan{Table: b}
	root := &Join{Probe: sa, Build: sb, ProbeKey: KeyCol(1), BuildKey: KeyCol(1)}
	pc := Optimize(root, OptimizeHints, analyzeAll(t, a, b))
	if pc.Reordered {
		t.Fatal("hints mode reordered")
	}
	nj, ok := pc.Root.(*Join)
	if !ok || nj == root {
		t.Fatalf("hints mode must clone the tree, got %T same=%v", pc.Root, nj == root)
	}
	ns := nj.Probe.(*Scan)
	if ns == sa || ns.RowsHint <= 0 {
		t.Fatalf("probe scan not hinted on a clone: same=%v hint=%d", ns == sa, ns.RowsHint)
	}
	// ~400/40 rows pass the Eq predicate.
	if ns.RowsHint < 5 || ns.RowsHint > 20 {
		t.Fatalf("Eq selectivity estimate off: hint=%d, want ~10", ns.RowsHint)
	}
	if sa.RowsHint != 0 || sb.RowsHint != 0 || root.RowsHint != 0 {
		t.Fatal("hint pass mutated the literal plan")
	}
	if nj.RowsHint <= 0 {
		t.Fatal("join not hinted")
	}
}

// badChain builds (big ⋈ mid) ⋈ small — the worst left-deep order for
// relations where small is tiny and filters everything downstream.
func badChain() (root *Join, big, mid, small *Table) {
	big = statTable("big", 2000, 100, false)
	mid = statTable("mid", 400, 100, false)
	small = statTable("small", 20, 20, false)
	j1 := &Join{Probe: &Scan{Table: big}, Build: &Scan{Table: mid}, ProbeKey: KeyCol(1), BuildKey: KeyCol(1)}
	// small's key domain is 0..19, so the final join drops most rows.
	root = &Join{Probe: j1, Build: &Scan{Table: small}, ProbeKey: KeyCol(1), BuildKey: KeyCol(1)}
	return root, big, mid, small
}

func TestOptimizeFullReordersIdentically(t *testing.T) {
	root, big, mid, small := badChain()
	stats := analyzeAll(t, big, mid, small)
	pc := Optimize(root, OptimizeFull, stats)
	if !pc.Reordered {
		t.Fatalf("full mode kept the bad order: %q", pc.Reason)
	}
	ctx := context.Background()
	opt := Options{Workers: 2}
	want, _, err := Execute(ctx, root, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Execute(ctx, pc.Root, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Identical rows including column order (the permutation Combine).
	sameRows(t, got, want)
	if len(st.OpRows) == 0 {
		t.Fatalf("no per-operator counters: %+v", st)
	}
}

func TestOptimizeBlockedReasons(t *testing.T) {
	a := tbl("a", 10, func(i int) any { return i }, func(i int) any { return i })
	b := tbl("b", 10, func(i int) any { return i }, func(i int) any { return i })
	c := tbl("c", 10, func(i int) any { return i }, func(i int) any { return i })
	mk := func(mut func(j1, j2 *Join)) Node {
		j1 := &Join{Probe: &Scan{Table: a}, Build: &Scan{Table: b}, ProbeKey: KeyCol(0), BuildKey: KeyCol(0)}
		j2 := &Join{Probe: j1, Build: &Scan{Table: c}, ProbeKey: KeyCol(0), BuildKey: KeyCol(0)}
		mut(j1, j2)
		return j2
	}
	cases := []struct {
		name string
		root Node
		want string
	}{
		{"combine", mk(func(j1, _ *Join) { j1.Combine = func(p, b Row) Row { return p } }), "Combine"},
		{"noreorder", mk(func(_, j2 *Join) { j2.NoReorder = true }), "NoReorder"},
		// A computed key (not a bare projection — resolveKeyCol detects
		// those even inside closures) cannot be mapped to a graph edge.
		{"computed-key", mk(func(j1, _ *Join) { j1.ProbeKey = func(r Row) any { return r[0].(int) * 2 } }), "plain column"},
		{"single-scan", &Scan{Table: a}, "single-relation"},
	}
	for _, tc := range cases {
		pc := Optimize(tc.root, OptimizeFull, nil)
		if pc.Reordered {
			t.Fatalf("%s: reordered despite blocking condition", tc.name)
		}
		if !strings.Contains(pc.Reason, tc.want) {
			t.Fatalf("%s: Reason = %q, want substring %q", tc.name, pc.Reason, tc.want)
		}
	}
}

func TestOptimizeRaggedTableBlocked(t *testing.T) {
	a := &Table{Name: "ragged", Cols: []string{"k", "v"}}
	a.Rows = append(a.Rows, Row{1, "x"}, Row{2})
	b := tbl("b", 4, func(i int) any { return i }, func(i int) any { return i })
	root := &Join{Probe: &Scan{Table: a}, Build: &Scan{Table: b}, ProbeKey: KeyCol(0), BuildKey: KeyCol(0)}
	pc := Optimize(root, OptimizeFull, nil)
	if pc.Reordered {
		t.Fatal("reordered a plan over a ragged table")
	}
	if !strings.Contains(pc.Reason, "ragged") && !strings.Contains(pc.Reason, "mixed-type") {
		t.Fatalf("Reason = %q", pc.Reason)
	}
}

func TestDescribeAndActualize(t *testing.T) {
	root, big, mid, small := badChain()
	stats := analyzeAll(t, big, mid, small)
	pc := Optimize(root, OptimizeFull, stats)
	en, err := pc.Describe(nil, Options{Workers: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if en.Kind != "join" || len(en.Children) != 2 {
		t.Fatalf("root: %+v", en)
	}
	if en.ActRows != -1 {
		t.Fatalf("ActRows before run = %d, want -1", en.ActRows)
	}
	rows, st, err := Execute(context.Background(), pc.Root, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	en.Actualize(st)
	if en.ActRows != int64(len(rows)) {
		t.Fatalf("root ActRows = %d, want %d", en.ActRows, len(rows))
	}
	var checkScan func(n *ExplainNode)
	checkScan = func(n *ExplainNode) {
		if n.Kind == "scan" && n.ActRows < 0 {
			t.Fatalf("scan %s not actualized", n.Table)
		}
		for _, c := range n.Children {
			checkScan(c)
		}
	}
	checkScan(en)
	if en.EstimateCostNs() <= 0 {
		t.Fatal("non-positive cost estimate")
	}
	if s := en.String(); !strings.Contains(s, "probe: ") || !strings.Contains(s, "build: ") {
		t.Fatalf("rendering lost probe/build labels:\n%s", s)
	}
}

func TestDistinctCounterEstimate(t *testing.T) {
	var d catalog.DistinctCounter
	if d.Estimate() != 0 {
		t.Fatal("empty counter must estimate 0")
	}
	for i := 0; i < 5000; i++ {
		d.Add(mix64(uint64(i)))
	}
	// Duplicates must not inflate the estimate.
	for i := 0; i < 5000; i++ {
		d.Add(mix64(uint64(i)))
	}
	if e := d.Estimate(); e < 4700 || e > 5300 {
		t.Fatalf("estimate %d, want ~5000", e)
	}
}

func TestOpRowsCounters(t *testing.T) {
	a := tbl("a", 100, func(i int) any { return i % 10 }, func(i int) any { return i })
	b := tbl("b", 10, func(i int) any { return i }, func(i int) any { return i })
	root := &Join{Probe: &Scan{Table: a}, Build: &Scan{Table: b}, ProbeKey: KeyCol(0), BuildKey: KeyCol(0)}
	pc := Optimize(root, OptimizeHints, nil)
	en, err := pc.Describe(nil, Options{Workers: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, st, err := Execute(context.Background(), pc.Root, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	en.Actualize(st)
	if en.ActRows != int64(len(rows)) {
		t.Fatalf("join ActRows = %d, want %d", en.ActRows, len(rows))
	}
	probe, build := en.Children[0], en.Children[1]
	if probe.ActRows != 100 {
		t.Fatalf("probe scan ActRows = %d, want 100", probe.ActRows)
	}
	if build.ActRows != 10 {
		t.Fatalf("build scan ActRows = %d, want 10", build.ActRows)
	}
}
