package exec

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// starPlan builds a distinct two-join star query whose shape and
// selectivity vary with seed, so concurrent queries are distinguishable.
func starPlan(seed, factRows int) Node {
	mod := 17 + seed%7
	fact := tbl(fmt.Sprintf("fact%d", seed), factRows,
		func(i int) any { return (i + seed) % mod },
		func(i int) any { return i })
	d1 := tbl(fmt.Sprintf("d1_%d", seed), mod, func(i int) any { return i },
		func(i int) any { return fmt.Sprintf("a%d-%d", seed, i) })
	d2 := tbl(fmt.Sprintf("d2_%d", seed), mod, func(i int) any { return i },
		func(i int) any { return fmt.Sprintf("b%d-%d", seed, i) })
	return &Join{
		Build: &Scan{Table: d2},
		Probe: &Join{
			Build:    &Scan{Table: d1},
			Probe:    &Scan{Table: fact},
			BuildKey: KeyCol(0),
			ProbeKey: KeyCol(0),
		},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	}
}

// TestPoolConcurrentQueries runs N distinct queries on one resident pool
// from N goroutines and checks each result against its single-query
// reference run, with per-query stats isolated. Run under -race this is
// the engine's concurrency check.
func TestPoolConcurrentQueries(t *testing.T) {
	checkQueryHygiene(t)
	const n = 8
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	plans := make([]Node, n)
	want := make([][]Row, n)
	for i := range plans {
		plans[i] = starPlan(i, 3000+500*i)
		ref, _, err := Execute(context.Background(), plans[i], Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref
	}

	got := make([][]Row, n)
	stats := make([]*Stats, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := pool.Submit(context.Background(), plans[i], Options{})
			if err != nil {
				t.Error(err)
				return
			}
			rows := drainRows(h)
			if err := h.Err(); err != nil {
				t.Error(err)
				return
			}
			got[i], stats[i] = rows, h.Stats()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	ids := map[int64]bool{}
	for i := 0; i < n; i++ {
		sameRows(t, got[i], want[i])
		s := stats[i]
		if s.ResultRows != int64(len(got[i])) {
			t.Fatalf("query %d: stats.ResultRows=%d, streamed %d", i, s.ResultRows, len(got[i]))
		}
		var perWorker int64
		for _, v := range s.PerWorker {
			perWorker += v
		}
		if perWorker != s.Activations || s.Activations == 0 {
			t.Fatalf("query %d: per-worker sum %d vs activations %d", i, perWorker, s.Activations)
		}
		if len(s.PerWorker) != pool.Workers() {
			t.Fatalf("query %d: PerWorker sized %d, pool has %d workers", i, len(s.PerWorker), pool.Workers())
		}
		if ids[s.QueryID] {
			t.Fatalf("duplicate QueryID %d", s.QueryID)
		}
		ids[s.QueryID] = true
	}
}

// TestPoolFairness submits a heavy query first and a light one second;
// with the fair cross-query pick the light query must complete while the
// heavy one is still running.
func TestPoolFairness(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	heavy := starPlan(1, 400_000)
	light := starPlan(2, 2_000)

	hh, err := pool.Submit(context.Background(), heavy, Options{})
	if err != nil {
		t.Fatal(err)
	}
	go func() { // drain the heavy stream so its workers never stall
		for range hh.Out() {
		}
	}()

	hl, err := pool.Submit(context.Background(), light, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for range hl.Out() {
	}
	if err := hl.Err(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-hh.Done():
		t.Log("heavy query finished before light one; fairness not observable on this host")
	default:
		// The light query finished while the heavy one was still in
		// flight: a shared pool serving a heavy join did not starve it.
	}
	if err := hh.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStalledConsumerDoesNotCapturePool stalls one query's consumer
// completely and checks another query still completes: workers blocked
// on the stalled sink are capped at the query's fair share.
func TestStalledConsumerDoesNotCapturePool(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// A large-result query whose consumer never reads: its sink fills
	// and stays full.
	stalled, err := pool.Submit(context.Background(), starPlan(8, 300_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Give workers time to fill the stalled sink and block on it.
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() {
		h, err := pool.Submit(context.Background(), starPlan(9, 20_000), Options{})
		if err != nil {
			done <- err
			return
		}
		for range h.Out() {
		}
		done <- h.Err()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query starved behind a stalled consumer")
	}
	stalled.Cancel()
	for range stalled.Out() {
	}
}

// TestFlushSlotsRotateAmongStalledConsumers exhausts every flush slot
// with stalled consumers (workers-1 of them) and checks a query with a
// live consumer still completes: flushers surrender their slot after a
// bounded hold, so slots rotate instead of being pinned forever.
func TestFlushSlotsRotateAmongStalledConsumers(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(4, 0) // flushCap = 3
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var stalled []*Handle
	for i := 0; i < 3; i++ {
		h, err := pool.Submit(context.Background(), starPlan(20+i, 200_000), Options{})
		if err != nil {
			t.Fatal(err)
		}
		stalled = append(stalled, h) // never read
	}
	time.Sleep(100 * time.Millisecond) // let their sinks fill and flushes claim slots

	done := make(chan error, 1)
	go func() {
		h, err := pool.Submit(context.Background(), starPlan(30, 100_000), Options{})
		if err != nil {
			done <- err
			return
		}
		for range h.Out() {
		}
		done <- h.Err()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("live consumer starved: flush slots pinned by stalled consumers")
	}
	for _, h := range stalled {
		h.Cancel()
		for range h.Out() {
		}
	}
}

// TestUndrainedGroupByDoesNotWedgePool: a completed GroupBy query whose
// consumer never reads must not capture workers outside the flusher cap,
// and Pool.Close must still return (regression: the merge's sink sends
// used to block a retired worker that Close could no longer abort).
func TestUndrainedGroupByDoesNotWedgePool(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// ~5000 groups -> ~20 batches, far beyond the sink bound; never read.
	gb := &GroupBy{Key: KeyCol(0), Aggs: []Aggregation{{Func: Count}}}
	if _, err := pool.SubmitGroupBy(context.Background(), aggPlan(20_000, 5000), gb, Options{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let it complete, merge, and stall on delivery
	// Another query must still complete on the remaining workers.
	h, err := pool.Submit(context.Background(), starPlan(10, 5_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for range h.Out() {
	}
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
	// And Close must abort the undrained group-by instead of hanging.
	done := make(chan struct{})
	go func() {
		pool.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Pool.Close hung on an undrained group-by query")
	}
}

// TestPoolCloseAbortsInflight closes the pool mid-query and checks the
// query's stream terminates promptly with ErrClosed.
func TestPoolCloseAbortsInflight(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := pool.Submit(context.Background(), starPlan(3, 500_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for range h.Out() {
		}
		done <- h.Err()
	}()
	pool.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("aborted query reported %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query did not terminate after pool Close")
	}
	if _, err := pool.Submit(context.Background(), starPlan(4, 10), Options{}); err != ErrClosed {
		t.Fatalf("Submit on closed pool returned %v, want ErrClosed", err)
	}
}

// TestMaxConcurrentQueries checks the admission bound: with one slot, a
// second Submit blocks until the first query retires.
func TestMaxConcurrentQueries(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	h1, err := pool.Submit(context.Background(), starPlan(5, 50_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// While query 1 holds the only slot, a second Submit must respect
	// its context deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := pool.Submit(ctx, starPlan(6, 10), Options{}); err != context.DeadlineExceeded {
		t.Fatalf("admission-blocked Submit returned %v, want DeadlineExceeded", err)
	}
	for range h1.Out() {
	}
	if err := h1.Err(); err != nil {
		t.Fatal(err)
	}
	// Slot released: the next query is admitted and completes.
	h2, err := pool.Submit(context.Background(), starPlan(7, 1000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for range h2.Out() {
	}
	if err := h2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolGroupByStreams runs a grouped aggregation through the resident
// pool and compares against the one-shot ExecuteGroupBy.
func TestPoolGroupByStreams(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	plan := aggPlan(5000, 7)
	gb := &GroupBy{Key: KeyCol(0), Aggs: []Aggregation{
		{Func: Count},
		{Func: Sum, Arg: func(r Row) float64 { return float64(r[1].(int)) }},
	}}
	want, _, err := ExecuteGroupBy(context.Background(), plan, gb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	h, err := pool.SubmitGroupBy(context.Background(), plan, gb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := drainRows(h)
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for i := range got {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("group %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestRootScanStreams checks that a scan-only query streams its
// (filtered) rows — the resident API must serve more than joins.
func TestRootScanStreams(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	table := tbl("t", 10_000, func(i int) any { return i }, func(i int) any { return i })
	h, err := pool.Submit(context.Background(),
		&Scan{Table: table, Filter: func(r Row) bool { return r[0].(int)%4 == 0 }}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for batch := range h.Out() {
		n += batch.N
	}
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2500 {
		t.Fatalf("root scan streamed %d rows, want 2500", n)
	}
}
