package exec

// Vectorized execution kernels: the columnar hot path of the engine.
// Scans carve windows from columnized tables and evaluate predicates
// as per-column loops, builds hash whole key columns and accumulate
// typed per-stripe column stores, probes hash the probe key column,
// walk typed indexes and gather matches by position instead of
// constructing boxed rows. All row materialization funnels through
// vec's AppendRows/ReadRow boundary (the one sanctioned boxing site —
// and even there, values are copied interface words, never re-boxed).
//
// Hash parity: every kernel reproduces keyHash64 bit-for-bit (mix64
// for the int family and float bits, FNV-1a for strings, and the
// precomputed fmt-fallback hashes for nil/bool), so stripe routing,
// node ownership and spill partitioning are identical to the row
// engine's.

import (
	"math"

	"hierdb/internal/vec"
)

// Precomputed key hashes for values the row engine hashes through the
// fmt fallback of keyHash64 — computing them once keeps the vectorized
// loops free of fmt.
var (
	hNil   = keyHash64(nil)
	hTrue  = keyHash64(true)
	hFalse = keyHash64(false)
)

// fnvString is FNV-1a over a string, matching hash/fnv (and therefore
// keyHash64's string case) exactly.
//
//hierdb:hotpath
func fnvString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// ---------------------------------------------------------------------
// Key-column resolution
// ---------------------------------------------------------------------

// keyProbe is the sentinel planted in every column of a probe row to
// discover which column a KeyFunc projects (see KeyFunc's purity
// contract in exec.go).
type keyProbe struct{ col int }

// resolveKeyCol reports the column a KeyFunc selects, or -1 when the
// function is not a plain column projection (it then runs as a per-row
// closure over materialized scratch rows).
func resolveKeyCol(key KeyFunc, width int) (col int) {
	if key == nil || width <= 0 {
		return -1
	}
	col = -1
	defer func() {
		// A key func that computes on its input (type asserts,
		// arithmetic) panics on the sentinel: closure fallback.
		_ = recover()
	}()
	row := make(Row, width)
	for i := range row {
		row[i] = keyProbe{i}
	}
	if kp, ok := key(row).(keyProbe); ok {
		col = kp.col
	}
	return col
}

// Index representations of a build operator's hash table.
const (
	idxBoxed = iota // map[any] — exact Go map semantics for every key type
	idxI64          // int-family keys, both sides the identical kind
	idxStr          // string keys both sides
)

// annotateVec derives the columnar schema of every operator: output
// kinds (nil when unknown — everything downstream then uses the boxed
// fallbacks), resolved key columns, and the index representation of
// each build. Runs once per submit, after compile.
func annotateVec(p *physical) {
	for _, op := range p.ops {
		op.keyCol = -1
	}
	// Scans know their schema from the columnized table; walk ops in id
	// order (inputs are created before their consumers).
	for _, op := range p.ops {
		switch op.kind {
		case opScan:
			if ft := op.scan.Table.File; ft != nil {
				// File-backed: the footer's schema kinds are exactly what
				// a resident FromRows over the table would have resolved.
				op.outKinds = append([]vec.Kind(nil), ft.Kinds()...)
				break
			}
			tb := columnize(op.scan.Table)
			op.outKinds = make([]vec.Kind, len(tb.Cols))
			for i := range tb.Cols {
				op.outKinds[i] = tb.Cols[i].Kind
			}
		case opBuild, opProbe:
			in := producerOf(p, op)
			var inKinds []vec.Kind
			if in != nil {
				inKinds = in.outKinds
			}
			var kf KeyFunc
			if op.kind == opBuild {
				kf = op.join.BuildKey
			} else {
				kf = op.join.ProbeKey
			}
			op.keyCol = resolveKeyCol(kf, len(inKinds))
			if op.kind == opProbe {
				// Probe output: probe columns keep their kinds; gathered
				// build columns are boxed. Unknown when Combine rewrites
				// rows or either input schema is unknown.
				bld := op.partner
				bin := producerOf(p, bld)
				if op.join.Combine == nil && inKinds != nil && bin != nil && bin.outKinds != nil {
					op.outKinds = make([]vec.Kind, 0, len(inKinds)+len(bin.outKinds))
					op.outKinds = append(op.outKinds, inKinds...)
					for range bin.outKinds {
						op.outKinds = append(op.outKinds, vec.Any)
					}
				}
			} else {
				op.outKinds = inKinds
			}
		}
	}
	// Index representation: typed only when both sides' key columns are
	// resolved to the identical int-family kind or both String — the
	// boxed map is the semantic reference (cross-type inequality, NaN,
	// ±0.0, nil keys), so anything else stays boxed.
	for _, op := range p.ops {
		if op.kind != opBuild {
			continue
		}
		op.idxKind = idxBoxed
		prb := op.partner
		bk := keyColKind(p, op)
		pk := keyColKind(p, prb)
		if op.keyCol < 0 || prb.keyCol < 0 {
			continue
		}
		if bk == pk {
			switch {
			case bk == vec.String:
				op.idxKind = idxStr
			case bk.IntFamily():
				op.idxKind = idxI64
			}
		}
	}
}

// producerOf finds the operator feeding op (nil for scans).
func producerOf(p *physical, op *pop) *pop {
	for _, o := range p.ops {
		if o.consumer == op {
			return o
		}
	}
	return nil
}

// keyColKind is the kind of op's resolved key column in its input
// schema (Any when unresolved or unknown).
func keyColKind(p *physical, op *pop) vec.Kind {
	if op.keyCol < 0 {
		return vec.Any
	}
	in := producerOf(p, op)
	if in == nil || in.outKinds == nil || op.keyCol >= len(in.outKinds) {
		return vec.Any
	}
	return in.outKinds[op.keyCol]
}

// ---------------------------------------------------------------------
// Table columnization
// ---------------------------------------------------------------------

// tableVec caches a table's columnized form alongside a fingerprint of
// the row slice it was built from.
type tableVec struct {
	n     int
	first *Row
	b     *vec.Batch
}

// columnize returns the table's columnar form, cached on the table.
// The cache is invalidated when the row slice changes identity or
// length (tables are registered once and then immutable in practice).
func columnize(t *Table) *vec.Batch {
	var first *Row
	if len(t.Rows) > 0 {
		first = &t.Rows[0]
	}
	if tv := t.vcache.Load(); tv != nil && tv.n == len(t.Rows) && tv.first == first {
		return tv.b
	}
	b := vec.FromRows(t.Rows)
	t.vcache.Store(&tableVec{n: len(t.Rows), first: first, b: b})
	return b
}

// ---------------------------------------------------------------------
// Per-worker scratch
// ---------------------------------------------------------------------

// vecScratch is one worker's reusable kernel state for one query —
// grown to the high-water mark once, then allocation-free.
type vecScratch struct {
	hs        []uint64 // key hashes per logical row
	keys      []any    // closure-extracted keys per logical row
	sel       []int32  // predicate/filter survivors
	row       Row      // ReadRow scratch (filters, keys, aggregates)
	probeRows []int32  // probe match: logical probe row per match
	bstores   []*stripeStore
	bpos      []int32 // probe match: position in the matched store
	outRows   []Row   // Combine outputs
	perDest   [][]int32
	destRows  []int32 // emit routing: dest per logical row
}

func (vs *vecScratch) hashes(n int) []uint64 {
	if cap(vs.hs) < n {
		vs.hs = make([]uint64, n)
	}
	vs.hs = vs.hs[:n]
	return vs.hs
}

func (vs *vecScratch) keySlots(n int) []any {
	if cap(vs.keys) < n {
		vs.keys = make([]any, n)
	}
	vs.keys = vs.keys[:n]
	return vs.keys
}

func (vs *vecScratch) rowScratch(w int) Row {
	if cap(vs.row) < w {
		vs.row = make(Row, w)
	}
	return vs.row[:0]
}

// ---------------------------------------------------------------------
// Vectorized key hashing
// ---------------------------------------------------------------------

// keyHashes fills the scratch hash vector with keyHash64 of each
// logical row's join key. With a resolved key column the loop is typed
// and fmt-free; otherwise the key closure runs over a reused scratch
// row and the boxed keys are retained in scratch for index lookups.
//
//hierdb:hotpath
func keyHashes(b *vec.Batch, keyCol int, key KeyFunc, vs *vecScratch) []uint64 {
	n := b.N
	hs := vs.hashes(n)
	if keyCol < 0 || keyCol >= len(b.Cols) {
		ks := vs.keySlots(n)
		scratch := vs.rowScratch(len(b.Cols) + 1)
		for i := 0; i < n; i++ {
			k := key(b.ReadRow(i, scratch))
			ks[i] = k
			hs[i] = keyHash64(k)
		}
		return hs
	}
	c := &b.Cols[keyCol]
	switch {
	case c.Kind.IntFamily():
		for i := 0; i < n; i++ {
			pos := c.Pos(i)
			if c.NullAt(pos) {
				hs[i] = hNil
			} else {
				hs[i] = mix64(uint64(c.I64[pos]))
			}
		}
	case c.Kind == vec.String:
		for i := 0; i < n; i++ {
			pos := c.Pos(i)
			if c.NullAt(pos) {
				hs[i] = hNil
			} else {
				hs[i] = fnvString(c.Str[pos])
			}
		}
	case c.Kind == vec.Float64:
		for i := 0; i < n; i++ {
			pos := c.Pos(i)
			if c.NullAt(pos) {
				hs[i] = hNil
			} else {
				hs[i] = mix64(math.Float64bits(c.F64[pos]))
			}
		}
	case c.Kind == vec.Bool:
		for i := 0; i < n; i++ {
			pos := c.Pos(i)
			if c.NullAt(pos) {
				hs[i] = hNil
			} else if c.B[pos] {
				hs[i] = hTrue
			} else {
				hs[i] = hFalse
			}
		}
	default:
		for i := 0; i < n; i++ {
			hs[i] = keyHash64(c.Box[c.Pos(i)])
		}
	}
	return hs
}

// ---------------------------------------------------------------------
// Stripe stores (the build side's hash table)
// ---------------------------------------------------------------------

// stripeStore is one lock stripe of a join's hash table: an appender
// accumulating the stored build rows as dense columns, plus an index
// from key to storage positions. The index is typed (map[int64] or
// map[string]) when both sides' key columns resolved to the identical
// kind, boxed (map[any], the semantic reference) otherwise; null keys
// live in a side list so nil==nil matching is preserved under typed
// indexing.
type stripeStore struct {
	app     *vec.Appender
	idxKind int
	keyCol  int // key column in the stored schema; -1 = closure keys
	m64     map[int64][]int32
	mstr    map[string][]int32
	many    map[any][]int32
	nulls   []int32
	rows    int
}

func newStripeStore(kinds []vec.Kind, idxKind, keyCol, hint int) *stripeStore {
	ss := &stripeStore{
		app:     vec.NewAppender(kinds, hint),
		idxKind: idxKind,
		keyCol:  keyCol,
	}
	if keyCol < 0 {
		ss.idxKind = idxBoxed
	}
	switch ss.idxKind {
	case idxI64:
		ss.m64 = make(map[int64][]int32, hint)
	case idxStr:
		ss.mstr = make(map[string][]int32, hint)
	default:
		ss.many = make(map[any][]int32, hint)
	}
	return ss
}

// insertSel appends the logical rows of b listed in sel and indexes
// their keys. keys holds closure-extracted keys per logical row (nil
// when the key column is resolved). Caller holds the stripe lock.
//
//hierdb:hotpath
func (ss *stripeStore) insertSel(b *vec.Batch, sel []int32, keys []any) {
	base := int32(ss.app.Len())
	ss.app.AppendRowsSel(b, sel)
	ss.rows += len(sel)
	var c *vec.Col
	if ss.keyCol >= 0 && ss.keyCol < len(b.Cols) {
		c = &b.Cols[ss.keyCol]
	}
	for j, li := range sel {
		pos := base + int32(j)
		switch {
		case c != nil && ss.idxKind == idxI64:
			cp := c.Pos(int(li))
			if c.NullAt(cp) {
				ss.nulls = append(ss.nulls, pos)
			} else {
				ss.m64[c.I64[cp]] = append(ss.m64[c.I64[cp]], pos)
			}
		case c != nil && ss.idxKind == idxStr:
			cp := c.Pos(int(li))
			if c.NullAt(cp) {
				ss.nulls = append(ss.nulls, pos)
			} else {
				ss.mstr[c.Str[cp]] = append(ss.mstr[c.Str[cp]], pos)
			}
		case c != nil:
			ss.many[c.Box[c.Pos(int(li))]] = append(ss.many[c.Box[c.Pos(int(li))]], pos)
		default:
			ss.many[keys[li]] = append(ss.many[keys[li]], pos)
		}
	}
}

// lookup returns the storage positions matching logical probe row li
// of b, whose key column (or closure keys) mirror insertSel's.
//
//hierdb:hotpath
func (ss *stripeStore) lookup(c *vec.Col, keys []any, li int) []int32 {
	switch {
	case c != nil && ss.idxKind == idxI64:
		pos := c.Pos(li)
		if c.NullAt(pos) {
			return ss.nulls
		}
		return ss.m64[c.I64[pos]]
	case c != nil && ss.idxKind == idxStr:
		pos := c.Pos(li)
		if c.NullAt(pos) {
			return ss.nulls
		}
		return ss.mstr[c.Str[pos]]
	case c != nil:
		return ss.many[c.Box[c.Pos(li)]]
	default:
		return ss.many[keys[li]]
	}
}

// rowAt materializes stored row pos from the store's columns, carving
// from a (fresh storage: Combine callers may retain the row).
func (ss *stripeStore) rowAt(pos int, a *vec.Arena) Row {
	w := ss.app.Width()
	row := a.Anys(w)[:0]
	for ci := 0; ci < w; ci++ {
		v := ss.app.Col(ci).Box[pos]
		if vec.IsAbsent(v) {
			break
		}
		row = append(row, v)
	}
	return row
}

// ---------------------------------------------------------------------
// Batch windows and emission
// ---------------------------------------------------------------------

// window views logical rows [lo,hi) of b. Storage is never re-sliced;
// dense columns get an identity-index window, indexed columns slice
// their index (index slices, unlike storage, are position-free).
//
//hierdb:hotpath
func window(b *vec.Batch, lo, hi int) *vec.Batch {
	if lo == 0 && hi == b.N {
		return b
	}
	out := &vec.Batch{Cols: make([]vec.Col, len(b.Cols)), N: hi - lo}
	for ci := range b.Cols {
		c := b.Cols[ci]
		if c.Idx == nil {
			c.Idx = vec.Ident(hi)[lo:hi]
		} else {
			c.Idx = c.Idx[lo:hi]
		}
		out.Cols[ci] = c
	}
	return out
}

// emitBatch hands a produced batch to consumer, chunked to the
// pipeline granularity. A multi-node fragment first routes each row to
// the node owning its partition key (the consumer's key over this
// batch's schema), one batch stream per destination.
//
//hierdb:hotpath
func (q *query) emitBatch(consumer *pop, b *vec.Batch, outs *[]*activation, vs *vecScratch, arena *vec.Arena) {
	if b == nil || b.N == 0 {
		return
	}
	if q.mq == nil {
		for lo := 0; lo < b.N; lo += q.opt.Batch {
			hi := lo + q.opt.Batch
			if hi > b.N {
				hi = b.N
			}
			*outs = append(*outs, &activation{op: consumer, b: window(b, lo, hi)})
		}
		return
	}
	nb, n := q.mq.buckets, q.mq.n
	hs := keyHashes(b, consumer.keyCol, consumerKey(consumer), vs)
	if cap(vs.perDest) < n {
		vs.perDest = make([][]int32, n)
	}
	perDest := vs.perDest[:n]
	for d := range perDest {
		perDest[d] = perDest[d][:0]
	}
	for i := 0; i < b.N; i++ {
		d := int(hs[i]%uint64(nb)) % n
		perDest[d] = append(perDest[d], int32(i))
	}
	for d := 0; d < n; d++ {
		sel := perDest[d]
		if len(sel) == 0 {
			continue
		}
		db := vec.Select(b, sel, arena)
		for lo := 0; lo < db.N; lo += q.opt.Batch {
			hi := lo + q.opt.Batch
			if hi > db.N {
				hi = db.N
			}
			*outs = append(*outs, &activation{op: consumer, b: window(db, lo, hi), dest: d})
		}
	}
}

// ---------------------------------------------------------------------
// Operator kernels
// ---------------------------------------------------------------------

// processScanVec runs one scan morsel: window the columnized source,
// shrink the selection with the per-column predicates, then the row
// filter closure over a reused scratch row, and emit (or return as
// results for a root scan).
//
//hierdb:hotpath
func (q *query) processScanVec(a *activation, w int) (outs []*activation, results *vec.Batch) {
	s := a.op.scan
	src := q.scanSrc(a.op)
	b := window(src, a.lo, a.hi)
	vs := &q.vscratch[w]
	arena := &q.varenas[w]
	b = q.filterScan(s, b, vs, arena)
	if b == nil {
		return nil, nil
	}
	if a.op.consumer == nil {
		return nil, b
	}
	q.emitBatch(a.op.consumer, b, &outs, vs, arena)
	return outs, nil
}

// filterScan applies a scan's column predicates and row-filter closure
// to b, returning the surviving batch (nil when no row passes) —
// shared by the resident and chunk-streamed scan kernels.
//
//hierdb:hotpath
func (q *query) filterScan(s *Scan, b *vec.Batch, vs *vecScratch, arena *vec.Arena) *vec.Batch {
	if len(s.Preds) == 0 && s.Filter == nil {
		return b
	}
	if cap(vs.sel) < b.N {
		vs.sel = make([]int32, 0, b.N)
	}
	sel := vec.ApplyPreds(b, s.Preds, nil, vs.sel[:0])
	if s.Filter != nil {
		scratch := vs.rowScratch(len(b.Cols) + 1)
		kept := sel[:0]
		for _, li := range sel {
			if s.Filter(b.ReadRow(int(li), scratch)) {
				kept = append(kept, li)
			}
		}
		sel = kept
	}
	vs.sel = sel[:0]
	if len(sel) == 0 {
		return nil
	}
	if len(sel) < b.N {
		b = vec.Select(b, sel, arena)
	}
	return b
}

// processBuildVec inserts one routed batch into the join's striped
// hash table: hash the key column once, group rows by stripe, then one
// lock round per touched stripe.
//
//hierdb:hotpath
func (q *query) processBuildVec(a *activation, w int) {
	or := q.ops[a.op.id]
	b := a.b
	vs := &q.vscratch[w]
	hs := keyHashes(b, a.op.keyCol, a.op.join.BuildKey, vs)
	var keys []any
	if a.op.keyCol < 0 {
		keys = vs.keys
	}
	stripes := len(or.stripes)
	if cap(vs.perDest) < stripes {
		vs.perDest = make([][]int32, stripes)
	}
	per := vs.perDest[:stripes]
	for s := range per {
		per[s] = per[s][:0]
	}
	if q.mq != nil {
		nb, n := uint64(q.mq.buckets), q.mq.n
		for i := 0; i < b.N; i++ {
			s := int(hs[i]%nb) / n
			per[s] = append(per[s], int32(i))
		}
	} else {
		st := uint64(q.opt.Stripes)
		for i := 0; i < b.N; i++ {
			per[hs[i]%st] = append(per[hs[i]%st], int32(i))
		}
	}
	for s := range per {
		sel := per[s]
		if len(sel) == 0 {
			continue
		}
		or.locks[s].Lock()
		or.stripes[s].insertSel(b, sel, keys)
		or.stripeRows[s] += len(sel)
		or.locks[s].Unlock()
	}
}

// processProbeVec streams one routed batch against the build side:
// hash the key column, walk each row's stripe index (local stripe or
// the steal cache's acquired store), and gather the matches — probe
// columns as a composed selection over the probe batch, build columns
// as boxed dense gathers.
//
//hierdb:hotpath
func (q *query) processProbeVec(a *activation, w int) (outs []*activation, results *vec.Batch) {
	bo := q.ops[a.op.partner.id]
	b := a.b
	vs := &q.vscratch[w]
	hs := keyHashes(b, a.op.keyCol, a.op.join.ProbeKey, vs)
	var keys []any
	if a.op.keyCol < 0 {
		keys = vs.keys
	}
	var keyCol *vec.Col
	if a.op.keyCol >= 0 && a.op.keyCol < len(b.Cols) {
		keyCol = &b.Cols[a.op.keyCol]
	}
	multi := q.mq != nil
	var cache bucketCache
	po := q.ops[a.op.id]
	vs.probeRows = vs.probeRows[:0]
	vs.bstores = vs.bstores[:0]
	vs.bpos = vs.bpos[:0]
	var nb uint64
	var nn int
	if multi {
		nb, nn = uint64(q.mq.buckets), q.mq.n
	}
	stripes := uint64(q.opt.Stripes)
	for i := 0; i < b.N; i++ {
		var ss *stripeStore
		if multi {
			g := int(hs[i] % nb)
			if g%nn == q.node {
				ss = bo.stripes[g/nn]
			} else {
				// A stolen row: its bucket's store was acquired into
				// this node's cache with the activation.
				if cache == nil {
					if c := po.cache.Load(); c != nil {
						cache = *c
					}
				}
				ss = cache[g]
			}
		} else {
			ss = bo.stripes[hs[i]%stripes]
		}
		if ss == nil {
			continue
		}
		for _, pos := range ss.lookup(keyCol, keys, i) {
			vs.probeRows = append(vs.probeRows, int32(i))
			vs.bstores = append(vs.bstores, ss)
			vs.bpos = append(vs.bpos, pos)
		}
	}
	return q.finishProbe(a, b, w)
}

// finishProbe turns the match triples accumulated in worker w's scratch
// (probe row, build store, build position) into the join's output batch
// and hands it downstream — shared by the in-memory and spill-phase
// probe kernels.
//
//hierdb:hotpath
func (q *query) finishProbe(a *activation, b *vec.Batch, w int) (outs []*activation, results *vec.Batch) {
	vs := &q.vscratch[w]
	arena := &q.varenas[w]
	m := len(vs.probeRows)
	if m == 0 {
		return nil, nil
	}
	isRoot := a.op == q.p.root
	var out *vec.Batch
	if combine := a.op.join.Combine; combine != nil {
		// User combine: materialize fresh probe/build rows (the combine
		// may retain either) and re-columnize its outputs boxed.
		if cap(vs.outRows) < m {
			vs.outRows = make([]Row, 0, m)
		}
		rows := vs.outRows[:0]
		for j := 0; j < m; j++ {
			pr := materializeRow(b, int(vs.probeRows[j]), arena)
			br := vs.bstores[j].rowAt(int(vs.bpos[j]), arena)
			rows = append(rows, combine(pr, br))
		}
		out = vec.FromRowsAny(rows)
		vs.outRows = rows[:0]
	} else {
		out = gatherJoin(b, vs, arena)
	}
	if isRoot {
		return nil, out
	}
	q.emitBatch(a.op.consumer, out, &outs, vs, arena)
	return outs, nil
}

// gatherJoin assembles the concatenated probe++build output batch of a
// default-combine join from the match triples in scratch.
//
//hierdb:hotpath
func gatherJoin(b *vec.Batch, vs *vecScratch, arena *vec.Arena) *vec.Batch {
	m := len(vs.probeRows)
	bw := vs.bstores[0].app.Width()
	out := &vec.Batch{Cols: make([]vec.Col, len(b.Cols)+bw), N: m}
	// Probe columns: compose each distinct index window once.
	type group struct {
		idx      []int32
		composed []int32
	}
	groups := make([]group, 0, len(b.Cols))
	for ci := range b.Cols {
		c := &b.Cols[ci]
		var composed []int32
		for gi := range groups {
			if sameWindow(groups[gi].idx, c.Idx) {
				composed = groups[gi].composed
				break
			}
		}
		if composed == nil {
			composed = arena.I32(m)
			if c.Idx == nil {
				copy(composed, vs.probeRows)
			} else {
				for j, li := range vs.probeRows {
					composed[j] = c.Idx[li]
				}
			}
			groups = append(groups, group{c.Idx, composed})
		}
		oc := *c
		oc.Idx = composed
		out.Cols[ci] = oc
	}
	// Build columns: boxed dense gathers (copied interface words).
	for ci := 0; ci < bw; ci++ {
		box := arena.Anys(m)
		for j := 0; j < m; j++ {
			box[j] = vs.bstores[j].app.Col(ci).Box[vs.bpos[j]]
		}
		out.Cols[len(b.Cols)+ci] = vec.Col{Kind: vec.Any, Box: box}
	}
	return out
}

// sameWindow reports whether two index slices are the same window
// (both nil, or same backing position and length).
//
//hierdb:hotpath
func sameWindow(a, b []int32) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return len(a) == len(b) && &a[0] == &b[0]
}

// materializeRow carves one fresh boxed row from the arena (callers
// may retain it; arena chunks are never reused).
func materializeRow(b *vec.Batch, i int, a *vec.Arena) Row {
	row := a.Anys(len(b.Cols))[:0]
	for ci := range b.Cols {
		c := &b.Cols[ci]
		v := c.Box[c.Pos(i)]
		if vec.IsAbsent(v) {
			break
		}
		row = append(row, v)
	}
	return row
}

// batchRowsVec columnizes rows and slices the result into Batch-sized
// result batches (windows over one shared columnization).
func batchRowsVec(rows []Row, size int) []*vec.Batch {
	if len(rows) == 0 {
		return nil
	}
	b := vec.FromRows(rows)
	out := make([]*vec.Batch, 0, (b.N+size-1)/size)
	for lo := 0; lo < b.N; lo += size {
		hi := lo + size
		if hi > b.N {
			hi = b.N
		}
		out = append(out, window(b, lo, hi))
	}
	return out
}

// batchRowBytes approximates the in-memory footprint of logical row i
// (parity with approxRowBytes on the materialized row).
func batchRowBytes(b *vec.Batch, i int) int64 {
	n := int64(24)
	for ci := range b.Cols {
		c := &b.Cols[ci]
		v := c.Box[c.Pos(i)]
		if vec.IsAbsent(v) {
			break
		}
		n += 16
		if c.Kind == vec.String {
			pos := c.Pos(i)
			if !c.NullAt(pos) {
				n += int64(len(c.Str[pos]))
			}
		} else if s, ok := v.(string); ok {
			n += int64(len(s))
		}
	}
	return n
}
