package exec

// Multi-node execution: the paper's hierarchical architecture brought to
// the real-data engine. A Nodes engine owns N node-local worker Pools —
// each the shared-memory DP scheduler of pool.go — and hash-partitions
// every table across them. A query fans out as one plan fragment per
// node: scans read the node's partition, build/probe input batches are
// routed to the node owning their join key (global bucket
// g = hash(key) mod nodes*Stripes, owner g mod nodes), and each node
// schedules its fragment DP-style exactly as a single-node query. The
// inter-node layer — starving nodes acquiring remote probe queues with
// their hash-table buckets — lives in globallb.go.
//
// Locking: an mquery coordinator carries the query-global operator
// accounting (pending counts, chain barrier) under its own mutex.
// Coordinator work may take pool mutexes (mq.mu -> pool.mu), never the
// reverse; at most one pool mutex is held at a time.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hierdb/internal/vec"
)

// Nodes is a multi-node engine: n node-local worker pools behind one
// Submit surface. With n == 1 it is exactly a single Pool (every call
// delegates), so the multi-node machinery costs nothing until a second
// node exists.
type Nodes struct {
	n       int
	workers int // per node
	pools   []*Pool
	// admit is the engine-wide admission controller (nil = unlimited).
	// With n == 1 it lives on the single pool instead, so the delegated
	// Submit path owns admission end to end.
	admit *admitter

	mu     sync.Mutex
	parts  map[*Table][]*vec.Batch
	live   map[*mquery]struct{}
	nextID int64
	closed bool
}

// EngineConfig configures a Nodes engine at creation — the explicit
// form of the NewNodes positional arguments, plus the admission and
// memory-broker knobs.
type EngineConfig struct {
	// Nodes is the SM-node count (0 = 1); Workers the per-node worker
	// count (0 = 4).
	Nodes   int
	Workers int
	// MaxConcurrentQueries bounds in-flight queries across the engine
	// (0 = unlimited). Excess Submits park in a bounded FIFO admission
	// queue, dequeued round-robin across Options.Tenant labels.
	MaxConcurrentQueries int
	// AdmissionQueue caps how many Submits may park waiting for a slot
	// (0 = 8 per slot); one more is rejected with ErrAdmissionQueueFull.
	// Only meaningful with MaxConcurrentQueries > 0.
	AdmissionQueue int
	// BrokerMemory, when > 0, puts each node's memory governance behind
	// a shared broker of this many bytes: in-flight fragments lease
	// bytes from the node's pool instead of owning a fixed
	// Options.MemoryPerNode split, and a fragment denied a top-up
	// spills exactly as a fixed-split fragment would. Queries submitted
	// with MemoryPerNode == 0 stay ungoverned either way.
	BrokerMemory int64
}

// NewNodes starts a multi-node engine: nodes pools of workers goroutines
// each (both 0 means the default: 1 node, 4 workers). maxConcurrent
// bounds in-flight queries across the engine (0 = unlimited).
func NewNodes(nodes, workers, maxConcurrent int) (*Nodes, error) {
	return NewNodesConfig(EngineConfig{Nodes: nodes, Workers: workers, MaxConcurrentQueries: maxConcurrent})
}

// NewNodesConfig starts an engine from an explicit configuration; see
// EngineConfig.
func NewNodesConfig(cfg EngineConfig) (*Nodes, error) {
	nodes := cfg.Nodes
	if nodes < 0 {
		return nil, fmt.Errorf("exec: negative Nodes (%d)", nodes)
	}
	if nodes == 0 {
		nodes = 1
	}
	if cfg.MaxConcurrentQueries < 0 {
		return nil, fmt.Errorf("exec: negative MaxConcurrentQueries (%d)", cfg.MaxConcurrentQueries)
	}
	if cfg.AdmissionQueue < 0 {
		return nil, fmt.Errorf("exec: negative AdmissionQueue (%d)", cfg.AdmissionQueue)
	}
	if cfg.BrokerMemory < 0 {
		return nil, fmt.Errorf("exec: negative BrokerMemory (%d)", cfg.BrokerMemory)
	}
	var admit *admitter
	if cfg.MaxConcurrentQueries > 0 {
		admit = newAdmitter(cfg.MaxConcurrentQueries, cfg.AdmissionQueue)
	}
	broker := func() *memBroker {
		if cfg.BrokerMemory > 0 {
			return &memBroker{budget: cfg.BrokerMemory}
		}
		return nil
	}
	ns := &Nodes{n: nodes}
	if nodes == 1 {
		p, err := newPool(cfg.Workers, admit, broker())
		if err != nil {
			return nil, err
		}
		ns.pools = []*Pool{p}
		ns.workers = p.Workers()
		return ns, nil
	}
	workers := cfg.Workers
	if workers < 0 {
		return nil, fmt.Errorf("exec: negative Workers (%d)", workers)
	}
	if workers == 0 {
		workers = 4
	}
	ns.workers = workers
	ns.parts = make(map[*Table][]*vec.Batch)
	ns.live = make(map[*mquery]struct{})
	ns.admit = admit
	for i := 0; i < nodes; i++ {
		p, err := newPool(workers, nil, broker())
		if err != nil {
			for _, q := range ns.pools {
				q.Close()
			}
			return nil, err
		}
		ns.pools = append(ns.pools, p)
	}
	return ns, nil
}

// NodeCount returns the number of SM-nodes.
func (ns *Nodes) NodeCount() int { return ns.n }

// Workers returns the per-node worker count.
func (ns *Nodes) Workers() int { return ns.workers }

// Partition returns (computing and caching on first use) the engine's
// hash partition of a table: n columnar views over the table's shared
// columnization, row i assigned by a hash of its position, so
// partitions are balanced regardless of key distribution. The table's
// rows must not be mutated once partitioned. The cache lives for the
// engine's lifetime — only registration-time tables (the DB catalog)
// should go through Partition; query-time partitioning of other tables
// uses partitionFor, which does not cache.
func (ns *Nodes) Partition(t *Table) []*vec.Batch {
	if t.File != nil {
		// File-backed tables are never resident-partitioned: chunks are
		// assigned to node fragments positionally at chain start.
		return nil
	}
	if ns.n == 1 {
		return []*vec.Batch{columnize(t)}
	}
	ns.mu.Lock()
	if p, ok := ns.parts[t]; ok {
		ns.mu.Unlock()
		return p
	}
	ns.mu.Unlock()
	// Partition outside the engine mutex — a large table must not stall
	// concurrent submits. Two racers compute twice; first store wins.
	p := hashPartition(t, ns.n)
	ns.mu.Lock()
	if prev, ok := ns.parts[t]; ok {
		p = prev
	} else {
		ns.parts[t] = p
	}
	ns.mu.Unlock()
	return p
}

// partitionFor is the query-time lookup: registered tables hit the
// cache, transient ones are partitioned per query without caching (an
// engine-lifetime cache keyed by *Table would otherwise grow without
// bound for callers submitting plans over throwaway tables).
func (ns *Nodes) partitionFor(t *Table) []*vec.Batch {
	ns.mu.Lock()
	if p, ok := ns.parts[t]; ok {
		ns.mu.Unlock()
		return p
	}
	ns.mu.Unlock()
	return hashPartition(t, ns.n)
}

// hashPartition builds n index views over the table's columnization —
// no row is copied, each partition shares the table's column storage.
func hashPartition(t *Table, n int) []*vec.Batch {
	b := columnize(t)
	idx := make([][]int32, n)
	per := b.N/n + 1
	for d := range idx {
		idx[d] = make([]int32, 0, per)
	}
	for i := 0; i < b.N; i++ {
		d := int(mix64(uint64(i)) % uint64(n))
		idx[d] = append(idx[d], int32(i))
	}
	var a vec.Arena
	p := make([]*vec.Batch, n)
	for d := range p {
		p[d] = vec.Select(b, idx[d], &a)
	}
	return p
}

// Submit compiles and starts a query on the engine; see Pool.Submit.
// With more than one node the query executes as per-node fragments with
// key-routed redistribution between operators; results are identical to
// single-node execution (stream order aside).
func (ns *Nodes) Submit(ctx context.Context, root Node, opt Options) (*Handle, error) {
	return ns.submit(ctx, root, nil, opt)
}

// SubmitGroupBy is Submit with a grouped aggregation folded over the
// plan's output; see Pool.SubmitGroupBy. On a multi-node engine workers
// fold node-local partials, each node merges its workers' partials when
// the plan completes, and the per-node results merge at retirement.
func (ns *Nodes) SubmitGroupBy(ctx context.Context, root Node, gb *GroupBy, opt Options) (*Handle, error) {
	if err := validateGroupBy(gb); err != nil {
		return nil, err
	}
	return ns.submit(ctx, root, gb, opt)
}

func (ns *Nodes) submit(ctx context.Context, root Node, gb *GroupBy, opt Options) (*Handle, error) {
	if ns.n == 1 {
		return ns.pools[0].submit(ctx, root, gb, opt)
	}
	opt, err := opt.validateFor(ns.workers)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("exec: nil plan")
	}
	// Admission precedes compilation — see Pool.submit.
	var wait time.Duration
	if ns.admit != nil {
		if wait, err = ns.admit.acquire(ctx, opt.Tenant); err != nil {
			return nil, err
		}
	}
	phys, err := compile(root)
	if err != nil {
		if ns.admit != nil {
			ns.admit.release()
		}
		return nil, err
	}
	annotateVec(phys)
	qctx, qcancel := context.WithCancel(ctx)
	mq := &mquery{
		nodes:     ns,
		phys:      phys,
		gb:        gb,
		opt:       opt,
		n:         ns.n,
		buckets:   ns.n * opt.Stripes,
		ctx:       qctx,
		cancel:    qcancel,
		sink:      make(chan *vec.Batch, 2*opt.Workers*ns.n),
		finished:  make(chan struct{}),
		scanParts: make(map[int][]*vec.Batch),
		ops:       make([]mop, len(phys.ops)),
	}
	for _, op := range phys.ops {
		if op.kind == opScan && op.scan.Table.File == nil {
			mq.scanParts[op.id] = ns.partitionFor(op.scan.Table)
		}
	}
	if gb != nil {
		mq.nodeParts = make([]map[any]*groupState, ns.n)
	}
	mq.remaining.Store(int64(ns.n))
	// Fragments are fully built before the query becomes visible in
	// live: a concurrent Close walks mq.frags without a lock.
	for i := 0; i < ns.n; i++ {
		fq := newQuery(ns.pools[i], phys, gb, opt, qctx, qcancel, ns.n, mq.sink)
		fq.mq = mq
		fq.node = i
		mq.frags = append(mq.frags, fq)
	}

	mq.stats.AdmissionWait = wait
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		qcancel()
		if ns.admit != nil {
			ns.admit.release()
		}
		return nil, ErrClosed
	}
	mq.id = ns.nextID
	ns.nextID++
	mq.stats.QueryID = mq.id
	ns.live[mq] = struct{}{}
	ns.mu.Unlock()

	for _, fq := range mq.frags {
		fq.id = mq.id
		fq.stats.QueryID = mq.id
	}
	// Attach fragments to their pools. A concurrent Close either sees the
	// query in live (and fails it) or has already closed the pool, in
	// which case the fragment fails right here.
	var fin []*query
	for i, fq := range mq.frags {
		p := ns.pools[i]
		p.mu.Lock()
		if p.closed {
			fq.failLocked(ErrClosed)
		} else if !fq.retired {
			p.queries = append(p.queries, fq)
		}
		if p.retireIfDoneLocked(fq) {
			fin = append(fin, fq)
		}
		p.mu.Unlock()
	}
	for _, fq := range fin {
		fq.finalize()
	}
	mq.start()
	go mq.watch()
	return &Handle{mq: mq}, nil
}

// release returns a retired query's admission slot and live entry.
func (ns *Nodes) release(mq *mquery) {
	ns.mu.Lock()
	delete(ns.live, mq)
	ns.mu.Unlock()
	if ns.admit != nil {
		ns.admit.release()
	}
}

// Close aborts in-flight queries with ErrClosed and stops every pool's
// workers. Idempotent; blocks until all workers exit.
func (ns *Nodes) Close() {
	if ns.n == 1 {
		ns.pools[0].Close()
		return
	}
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		return
	}
	ns.closed = true
	live := make([]*mquery, 0, len(ns.live))
	for mq := range ns.live {
		live = append(live, mq)
	}
	ns.mu.Unlock()
	// Parked admission waiters first: they must fail with ErrClosed
	// promptly, before the in-flight queries drain.
	if ns.admit != nil {
		ns.admit.close()
	}
	for _, mq := range live {
		mq.fail(ErrClosed)
	}
	for _, p := range ns.pools {
		p.Close()
	}
}

// mop is the coordinator's per-operator accounting: pend counts queued
// plus in-process activations across all nodes.
type mop struct {
	pend    int64
	prodEnd bool
	done    bool
}

// mquery coordinates one multi-node query: per-node fragments, global
// operator/chain state, the shared result sink, steal bookkeeping and
// sealed stats. See the package comment at the top of this file for the
// locking rules.
type mquery struct {
	nodes *Nodes
	id    int64
	phys  *physical
	gb    *GroupBy
	opt   Options
	n     int
	// buckets is the global hash-bucket count n*Stripes; a key's owner
	// node is hashKey(k, buckets) mod n.
	buckets   int
	scanParts map[int][]*vec.Batch // scan opID -> per-node partition

	ctx      context.Context //hierdb:ctx-in-struct coordinator lifetime: cancelled when the multi-node query retires
	cancel   context.CancelFunc
	sink     chan *vec.Batch
	finished chan struct{}
	frags    []*query

	remaining   atomic.Int64 // fragments not yet retired
	idleThieves atomic.Int64 // fragments parked in stealIdle

	mu      sync.Mutex //hierdb:lock mq
	ops     []mop
	chain   int
	done    bool
	aborted bool
	err     error
	merged  int // fragments whose per-node group-by partial is merged
	// nodeParts holds the per-node merged partial aggregation states.
	nodeParts []map[any]*groupState

	stats Stats
}

// start seeds the first chain. Separate from submit so the empty-input
// cascade (a plan of empty tables completes immediately) is handled.
func (mq *mquery) start() {
	var completed bool
	mq.mu.Lock()
	if !mq.aborted {
		completed = mq.startChain(0)
	}
	mq.mu.Unlock()
	if completed {
		mq.completeFrags()
	}
}

// startChain seeds every fragment's driver-scan morsels over its table
// partition and resets per-chain steal state. Returns true when the
// cascade completed the whole query (all chains empty). Callers hold
// mq.mu.
func (mq *mquery) startChain(c int) bool {
	mq.chain = c
	chain := mq.phys.chains[c]
	driver := chain[0]
	total := 0
	for i, fq := range mq.frags {
		p := mq.nodes.pools[i]
		p.mu.Lock()
		fq.chain = c
		if fq.stealIdle {
			fq.stealIdle = false
			mq.idleThieves.Add(-1)
		}
		if !fq.aborted {
			or := fq.ops[driver.id]
			if ft := driver.scan.Table.File; ft != nil {
				// File-backed driver: chunks are assigned to fragments
				// positionally — mix64 of the chunk index, mirroring
				// hashPartition's row rule — so every node streams a
				// balanced share regardless of data distribution.
				for ci := 0; ci < ft.NumChunks(); ci++ {
					if int(mix64(uint64(ci))%uint64(mq.n)) != i {
						continue
					}
					fq.enqueueLocked(or, &activation{op: driver, lo: ci, hi: ci + 1})
					total++
				}
			} else {
				part := mq.scanParts[driver.id][i]
				for lo := 0; lo < part.N; lo += mq.opt.Morsel {
					hi := lo + mq.opt.Morsel
					if hi > part.N {
						hi = part.N
					}
					fq.enqueueLocked(or, &activation{op: driver, lo: lo, hi: hi})
					total++
				}
			}
			if fq.allowed != nil {
				fq.assignStatic(chain)
			}
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	mo := &mq.ops[driver.id]
	mo.pend += int64(total)
	mo.prodEnd = true
	if total == 0 && !mo.done {
		return mq.opFinished(driver)
	}
	return false
}

// epilogue is the post-processing bookkeeping of one fragment
// activation: route output batches to their owner nodes, settle global
// pending counts, and advance operators/chains. Called by the worker
// loop without any lock held; the caller still decrements q.inflight
// and runs the retirement check on its own pool afterwards.
//
//hierdb:hotpath
func (mq *mquery) epilogue(q *query, a *activation, outs []*activation, delivered bool) {
	if !delivered {
		mq.fail(q.ctx.Err())
	}
	if len(outs) > 0 {
		consumer := outs[0].op
		mq.mu.Lock()
		aborted := mq.aborted
		if !aborted {
			mq.ops[consumer.id].pend += int64(len(outs))
		}
		mq.mu.Unlock()
		if !aborted {
			mq.deliverOuts(q, outs)
		}
	}
	var completed bool
	mq.mu.Lock()
	mo := &mq.ops[a.op.id]
	mo.pend--
	if !mq.aborted && mo.pend == 0 && mo.prodEnd && !mo.done {
		completed = mq.opFinished(a.op)
	}
	mq.mu.Unlock()
	if completed {
		mq.completeFrags()
	}
}

// deliverOuts enqueues routed batches on their destination fragments
// (the redistribution "network" of the hierarchy), waking destination
// workers and any steal-idle thief whose peers refilled past the wake
// threshold. Called without locks; pending counts were settled first.
//
//hierdb:hotpath
func (mq *mquery) deliverOuts(src *query, outs []*activation) {
	op := outs[0].op
	for d := 0; d < mq.n; d++ {
		count, rows := 0, 0
		for _, a := range outs {
			if a.dest == d {
				count++
				if a.b != nil { // spill activations carry refs, not batches
					rows += a.b.N
				}
			}
		}
		if count == 0 {
			continue
		}
		dst := mq.frags[d]
		p := mq.nodes.pools[d]
		queued := 0
		p.mu.Lock()
		if !dst.aborted {
			or := dst.ops[op.id]
			for _, a := range outs {
				if a.dest == d {
					dst.enqueueLocked(or, a)
				}
			}
			queued = or.queued
			if dst.allowed != nil {
				// Static (FP) mode: targeted signals could wake workers
				// not allowed to run the consumer — wake everyone.
				p.cond.Broadcast()
			} else {
				p.wakeLocked(count)
			}
		}
		p.mu.Unlock()
		if d != src.node {
			atomic.AddInt64(&src.shipOut, int64(rows))
			atomic.AddInt64(&dst.shipIn, int64(rows))
		}
		if queued >= stealWakeThreshold && mq.idleThieves.Load() > 0 {
			mq.wakeThieves(d)
		}
	}
}

// wakeThieves clears steal-idle marks (set after a failed round) so
// starving nodes re-solicit offers — the real-engine analogue of the
// paper's paced starving retries, driven by producers instead of a
// timer. except is the node whose queue just refilled.
func (mq *mquery) wakeThieves(except int) {
	for i, fq := range mq.frags {
		if i == except {
			continue
		}
		p := mq.nodes.pools[i]
		p.mu.Lock()
		if fq.stealIdle {
			fq.stealIdle = false
			mq.idleThieves.Add(-1)
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// opFinished marks an operator globally done, cascades end-of-producer
// to its consumer, and advances the chain barrier; returns true once
// the last chain completes. A probe operator whose join spilled on some
// fragments is advanced instead: every such fragment gets its next
// partition-load activation, and the operator only finishes once every
// fragment's partitions are joined. Callers hold mq.mu (taking pool
// mutexes here follows the mq -> pool lock order).
func (mq *mquery) opFinished(op *pop) bool {
	if op.kind == opProbe && !mq.aborted {
		loads := 0
		for i, fq := range mq.frags {
			p := mq.nodes.pools[i]
			p.mu.Lock()
			if a := fq.spillNextLocked(fq.ops[op.id]); a != nil {
				fq.enqueueLocked(fq.ops[op.id], a)
				loads++
				p.cond.Broadcast()
			}
			p.mu.Unlock()
		}
		if loads > 0 {
			mq.ops[op.id].pend += int64(loads)
			return false
		}
	}
	mq.ops[op.id].done = true
	if c := op.consumer; c != nil {
		co := &mq.ops[c.id]
		co.prodEnd = true
		if co.pend == 0 && !co.done {
			return mq.opFinished(c)
		}
	}
	chain := mq.phys.chains[mq.chain]
	for _, o := range chain {
		if !mq.ops[o.id].done {
			return false
		}
	}
	if mq.chain+1 < len(mq.phys.chains) {
		return mq.startChain(mq.chain + 1)
	}
	mq.done = true
	return true
}

// completeFrags marks every fragment done and retires the idle ones
// (fragments still flushing, merging or processing retire from their own
// pools' worker loops). Called without locks after the last chain
// completes.
func (mq *mquery) completeFrags() {
	for i, fq := range mq.frags {
		p := mq.nodes.pools[i]
		p.mu.Lock()
		fq.done = true
		fin := p.retireIfDoneLocked(fq)
		p.cond.Broadcast()
		p.mu.Unlock()
		if fin {
			fq.finalize()
		}
	}
}

// mergeFragment folds one node's worker partials into the node's
// partial (including any spilled partials of a memory-governed query);
// the last node to finish additionally merges the per-node partials
// into the final output batches (returned non-nil), which the worker
// parks on its fragment for the flusher machinery to stream. Called
// from the worker loop without locks.
func (mq *mquery) mergeFragment(q *query) []*vec.Batch {
	part, err := q.mergedGroups()
	if err != nil {
		mq.fail(err)
		part = make(map[any]*groupState)
	}
	mq.mu.Lock()
	mq.nodeParts[q.node] = part
	mq.merged++
	last := mq.merged == mq.n
	var parts []map[any]*groupState
	if last {
		parts = mq.nodeParts
	}
	mq.mu.Unlock()
	if !last {
		return nil
	}
	rows := groupsToRows(mergePartials(parts, mq.gb), mq.gb)
	return batchRowsVec(rows, mq.opt.Batch)
}

// fail aborts the whole query: every fragment drops its queues and
// parked output, and the shared context is cancelled so blocked sends
// release. Idempotent. Called without locks.
func (mq *mquery) fail(err error) {
	mq.mu.Lock()
	// Fully retired queries are immune (mirrors the single-node retired
	// guard): retirement cancels the shared context, and the watcher's
	// select may pick ctx.Done over finished.
	if mq.aborted || mq.remaining.Load() == 0 {
		mq.mu.Unlock()
		return
	}
	mq.aborted = true
	if err == nil {
		err = context.Canceled
	}
	mq.err = err
	mq.mu.Unlock()
	mq.cancel()
	for i, fq := range mq.frags {
		p := mq.nodes.pools[i]
		p.mu.Lock()
		fq.failLocked(err)
		fin := p.retireIfDoneLocked(fq)
		p.cond.Broadcast()
		p.mu.Unlock()
		if fin {
			fq.finalize()
		}
	}
}

// watch aborts the query when its context is cancelled (caller cancel or
// Rows.Close) before it retires on its own.
func (mq *mquery) watch() {
	select {
	case <-mq.ctx.Done():
		mq.fail(mq.ctx.Err())
	case <-mq.finished:
	}
}

// fragRetired records one fragment's retirement; the last one seals the
// query: global stats, sink and finished close, slot release. Called
// without pool locks (the finalize path).
func (mq *mquery) fragRetired() {
	if mq.remaining.Add(-1) > 0 {
		return
	}
	mq.mu.Lock()
	mq.sealStatsLocked()
	mq.mu.Unlock()
	close(mq.sink)
	close(mq.finished)
	mq.cancel()
	mq.nodes.release(mq)
}

// sealStatsLocked aggregates per-fragment counters into the query's
// final Stats with per-node breakdowns. All fragments have retired, so
// their counters are quiescent (steal counters stay atomic: a stale
// steal round may still be unwinding). Callers hold mq.mu.
func (mq *mquery) sealStatsLocked() {
	s := &mq.stats
	s.Nodes = make([]NodeStats, mq.n)
	if len(mq.frags) > 0 {
		s.OpRows = make([]int64, len(mq.frags[0].opRows))
	}
	for i, fq := range mq.frags {
		for oi := range fq.opRows {
			s.OpRows[oi] += atomic.LoadInt64(&fq.opRows[oi])
		}
		nst := &s.Nodes[i]
		nst.Node = i
		nst.Activations = fq.acts
		nst.ResultRows = atomic.LoadInt64(&fq.stats.ResultRows)
		nst.PerWorker = append([]int64(nil), fq.stats.PerWorker...)
		nst.RowsShippedIn = atomic.LoadInt64(&fq.shipIn)
		nst.RowsShippedOut = atomic.LoadInt64(&fq.shipOut)
		nst.Steals = atomic.LoadInt64(&fq.steals)
		nst.StolenActivations = atomic.LoadInt64(&fq.stolenActs)
		nst.StolenBuckets = atomic.LoadInt64(&fq.stolenBuckets)
		nst.SpilledPartitions = fq.spilledParts.Load()
		nst.SpilledBytes = fq.spilledBytes.Load()
		nst.SpillPhases = fq.spillPhases.Load()
		nst.ChunksScanned = fq.chunksScanned.Load()
		nst.ChunksSkipped = fq.chunksSkipped.Load()
		nst.DiskBytesRead = fq.diskBytes.Load()
		s.SpilledPartitions += nst.SpilledPartitions
		s.SpilledBytes += nst.SpilledBytes
		s.SpillPhases += nst.SpillPhases
		s.ChunksScanned += nst.ChunksScanned
		s.ChunksSkipped += nst.ChunksSkipped
		s.DiskBytesRead += nst.DiskBytesRead
		s.Activations += nst.Activations
		s.ResultRows += nst.ResultRows
		s.PerWorker = append(s.PerWorker, nst.PerWorker...)
		s.StealRounds += atomic.LoadInt64(&fq.stealRounds)
		s.Steals += nst.Steals
		s.StolenActivations += nst.StolenActivations
		s.StolenBuckets += nst.StolenBuckets
		s.StolenBucketBytes += atomic.LoadInt64(&fq.stolenBucketByte)
		s.RowsRedistributed += nst.RowsShippedOut
	}
}

// batchRows slices rows into Batch-sized result batches.
func batchRows(rows []Row, size int) [][]Row {
	var batches [][]Row
	for lo := 0; lo < len(rows); lo += size {
		hi := lo + size
		if hi > len(rows) {
			hi = len(rows)
		}
		batches = append(batches, rows[lo:hi])
	}
	return batches
}
