package exec

// The per-node memory broker: the paper's §3.2 condition (i) applied
// across queries instead of within one. With the fixed split
// (Options.MemoryPerNode, broker off) every fragment owns a private
// byte budget regardless of what its neighbours use; with the broker
// on, all in-flight fragments of a node lease bytes from one shared
// pool — idle memory flows to whoever can use it, and a fragment
// denied a top-up takes exactly the spill path it would have taken on
// a private budget, so results are identical by construction. The
// charge accounting stays where it always was (memgov.go charges
// memUsed atomically); only the over-budget decision changes: fixed
// mode compares memUsed against memBudget, broker mode tops the
// fragment's lease up from the shared pool and spills on denial.
//
// Lock order: broker.mu sits between jspill and stripe —
// spillNextLocked refunds a finished partition's charge while holding
// pool (and mq) + jspill mutexes, and nothing holding broker.mu takes
// any other lock.

import (
	"sync"
	"sync/atomic"
)

// leaseChunk is the broker's grant granularity: top-ups round up by one
// chunk of slack so a steadily growing build does not take the broker
// mutex per batch, and trims leave one chunk of slack behind.
const leaseChunk int64 = 64 << 10

// memBroker arbitrates one node's memory budget across that node's
// in-flight query fragments. budget is fixed at engine start; granted
// is the sum of all outstanding leases and never exceeds budget.
type memBroker struct {
	budget int64

	mu      sync.Mutex //hierdb:lock broker
	granted int64
}

// memLease is one fragment's slice of its node's broker budget.
// granted is written only under the broker mutex but read lock-free on
// the charge fast path (a stale read under-estimates the lease and at
// worst takes the slow path).
type memLease struct {
	granted atomic.Int64
}

// topUp ensures the lease covers used bytes, growing it from the
// broker pool (plus a chunk of slack) when it does not. Returns false
// when the pool cannot cover the shortfall — the fragment is over
// budget and must spill, exactly as a fixed-split fragment crossing
// its private budget would.
//
//hierdb:hotpath
func (b *memBroker) topUp(l *memLease, used int64) bool {
	if used <= l.granted.Load() {
		return true
	}
	b.mu.Lock()
	g := l.granted.Load()
	if used <= g {
		b.mu.Unlock()
		return true
	}
	need := used - g
	avail := b.budget - b.granted
	if need > avail {
		b.mu.Unlock()
		return false
	}
	grant := need + leaseChunk
	if grant > avail {
		grant = avail
	}
	b.granted += grant
	l.granted.Store(g + grant)
	b.mu.Unlock()
	return true
}

// trim returns surplus lease to the pool once the fragment's usage has
// shrunk well below it (two chunks of slack), leaving one chunk behind
// so charge/uncharge oscillation does not thrash the broker mutex.
//
//hierdb:hotpath
func (b *memBroker) trim(l *memLease, used int64) {
	if used < 0 {
		used = 0
	}
	if l.granted.Load()-used < 2*leaseChunk {
		return
	}
	b.mu.Lock()
	g := l.granted.Load()
	if target := used + leaseChunk; g > target {
		b.granted -= g - target
		l.granted.Store(target)
	}
	b.mu.Unlock()
}

// releaseAll returns the fragment's entire lease to the pool. Called
// exactly once, at query finalize.
func (b *memBroker) releaseAll(l *memLease) {
	b.mu.Lock()
	b.granted -= l.granted.Load()
	l.granted.Store(0)
	b.mu.Unlock()
}

// available reports the unleased remainder of the pool (the spill-load
// headroom estimate; see query.memHeadroom).
func (b *memBroker) available() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.budget - b.granted
}
