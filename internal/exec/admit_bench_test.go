package exec

// Benchmarks for the admission controller and memory broker hot paths,
// gated by cmd/benchdiff against BENCH_engine.json. /grant is the
// uncontended Submit fast path (one mutex acquire per side);/park is
// the full park-and-handoff cycle a queued Submit pays: goroutine
// parks, release transfers the slot, done channel wakes it.
// BenchmarkBrokerLease is the chargeMem fast/slow mix: lease top-ups
// every batch, a broker-mutex grant only when usage crosses a chunk
// boundary, one trim per collapse.

import (
	"context"
	"runtime"
	"testing"
)

func BenchmarkAdmission(b *testing.B) {
	ctx := context.Background()
	b.Run("grant", func(b *testing.B) {
		ad := newAdmitter(1, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ad.acquire(ctx, ""); err != nil {
				b.Fatal(err)
			}
			ad.release()
		}
	})
	b.Run("park", func(b *testing.B) {
		ad := newAdmitter(1, 0)
		if _, err := ad.acquire(ctx, ""); err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			go func() {
				if _, err := ad.acquire(ctx, "t"); err != nil {
					b.Error(err)
				}
				done <- struct{}{}
			}()
			for ad.queued() != 1 {
				runtime.Gosched()
			}
			// The waiter inherits the slot; inflight never dips, so the
			// next iteration's waiter parks behind it again.
			ad.release()
			<-done
		}
	})
}

func BenchmarkBrokerLease(b *testing.B) {
	const step = 4 << 10    // one batch-sized charge
	const ceiling = 8 << 20 // fragment working set before collapse
	bk := &memBroker{budget: 1 << 30}
	var l memLease
	b.ReportAllocs()
	var used int64
	for i := 0; i < b.N; i++ {
		used += step
		if used > ceiling {
			used = step
			bk.trim(&l, used)
		}
		if !bk.topUp(&l, used) {
			b.Fatal("topUp denied under a 1GiB budget")
		}
	}
	bk.releaseAll(&l)
}
