package exec

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func tbl(name string, n int, key func(i int) any, payload func(i int) any) *Table {
	t := &Table{Name: name, Cols: []string{"k", "v"}}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, Row{key(i), payload(i)})
	}
	return t
}

// nestedJoin is the reference implementation.
func nestedJoin(probe, build *Table, pk, bk int) []Row {
	var out []Row
	for _, p := range probe.Rows {
		for _, b := range build.Rows {
			if p[pk] == b[bk] {
				r := append(append(Row{}, p...), b...)
				out = append(out, r)
			}
		}
	}
	return out
}

func canon(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint([]any(r))
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, got, want []Row) {
	t.Helper()
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("row counts: got %d want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d: got %s want %s", i, g[i], w[i])
		}
	}
}

func TestSingleJoinMatchesNestedLoop(t *testing.T) {
	checkQueryHygiene(t)
	build := tbl("b", 100, func(i int) any { return i % 37 }, func(i int) any { return fmt.Sprintf("b%d", i) })
	probe := tbl("p", 300, func(i int) any { return i % 53 }, func(i int) any { return fmt.Sprintf("p%d", i) })
	plan := &Join{
		Build:    &Scan{Table: build},
		Probe:    &Scan{Table: probe},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	}
	got, stats, err := Execute(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, nestedJoin(probe, build, 0, 0))
	if stats.Activations == 0 {
		t.Fatal("no activations counted")
	}
}

func TestFilterApplied(t *testing.T) {
	checkQueryHygiene(t)
	build := tbl("b", 50, func(i int) any { return i }, func(i int) any { return i })
	probe := tbl("p", 50, func(i int) any { return i }, func(i int) any { return i })
	plan := &Join{
		Build:    &Scan{Table: build},
		Probe:    &Scan{Table: probe, Filter: func(r Row) bool { return r[0].(int) < 10 }},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	}
	got, _, err := Execute(context.Background(), plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d rows, want 10", len(got))
	}
}

func TestMultiJoinChain(t *testing.T) {
	checkQueryHygiene(t)
	fact := tbl("f", 500, func(i int) any { return i % 40 }, func(i int) any { return i })
	d1 := tbl("d1", 40, func(i int) any { return i }, func(i int) any { return fmt.Sprintf("x%d", i) })
	d2 := tbl("d2", 40, func(i int) any { return i }, func(i int) any { return fmt.Sprintf("y%d", i) })
	// (fact JOIN d1 on fact.k) JOIN d2 on fact.k (column 0 survives as
	// the first output column of the default combiner).
	plan := &Join{
		Build: &Scan{Table: d2},
		Probe: &Join{
			Build:    &Scan{Table: d1},
			Probe:    &Scan{Table: fact},
			BuildKey: KeyCol(0),
			ProbeKey: KeyCol(0),
		},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	}
	got, _, err := Execute(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every fact row matches exactly one d1 and one d2 row.
	if len(got) != 500 {
		t.Fatalf("got %d rows, want 500", len(got))
	}
	for _, r := range got {
		if len(r) != 6 {
			t.Fatalf("row width %d, want 6", len(r))
		}
	}
}

func TestBushyTree(t *testing.T) {
	checkQueryHygiene(t)
	a := tbl("a", 60, func(i int) any { return i % 20 }, func(i int) any { return i })
	b := tbl("b", 20, func(i int) any { return i }, func(i int) any { return i })
	c := tbl("c", 80, func(i int) any { return i % 20 }, func(i int) any { return i })
	d := tbl("d", 20, func(i int) any { return i }, func(i int) any { return i })
	// (a JOIN b) JOIN (c JOIN d), joined on the shared key in column 0.
	left := &Join{Build: &Scan{Table: b}, Probe: &Scan{Table: a}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	right := &Join{Build: &Scan{Table: d}, Probe: &Scan{Table: c}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	plan := &Join{Build: right, Probe: left, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	got, _, err := Execute(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// a x b: 60 rows (each a matches one b). c x d: 80 rows. Final: each
	// (a,b) row with key k matches the (c,d) rows with key k: a keys are
	// i%20 uniform 3 each; c keys i%20 uniform 4 each -> 60*4 = 240.
	if len(got) != 240 {
		t.Fatalf("got %d rows, want 240", len(got))
	}
}

func TestStaticMatchesDynamic(t *testing.T) {
	checkQueryHygiene(t)
	build := tbl("b", 200, func(i int) any { return i % 31 }, func(i int) any { return i })
	probe := tbl("p", 400, func(i int) any { return i % 31 }, func(i int) any { return i })
	plan := &Join{Build: &Scan{Table: build}, Probe: &Scan{Table: probe}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	dyn, _, err := Execute(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := Execute(context.Background(), plan, Options{Workers: 4, Static: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, st, dyn)
}

func TestEmptyInputs(t *testing.T) {
	checkQueryHygiene(t)
	empty := &Table{Name: "e", Cols: []string{"k"}}
	full := tbl("f", 10, func(i int) any { return i }, func(i int) any { return i })
	for _, plan := range []*Join{
		{Build: &Scan{Table: empty}, Probe: &Scan{Table: full}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)},
		{Build: &Scan{Table: full}, Probe: &Scan{Table: empty}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)},
	} {
		got, _, err := Execute(context.Background(), plan, Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("join with empty input returned %d rows", len(got))
		}
	}
}

func TestStringAndMixedKeys(t *testing.T) {
	checkQueryHygiene(t)
	build := tbl("b", 30, func(i int) any { return fmt.Sprintf("k%d", i%10) }, func(i int) any { return i })
	probe := tbl("p", 50, func(i int) any { return fmt.Sprintf("k%d", i%10) }, func(i int) any { return i })
	plan := &Join{Build: &Scan{Table: build}, Probe: &Scan{Table: probe}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	got, _, err := Execute(context.Background(), plan, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, nestedJoin(probe, build, 0, 0))
}

func TestCustomCombine(t *testing.T) {
	checkQueryHygiene(t)
	build := tbl("b", 5, func(i int) any { return i }, func(i int) any { return i * 10 })
	probe := tbl("p", 5, func(i int) any { return i }, func(i int) any { return i })
	plan := &Join{
		Build:    &Scan{Table: build},
		Probe:    &Scan{Table: probe},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
		Combine:  func(p, b Row) Row { return Row{p[0], b[1]} },
	}
	got, _, err := Execute(context.Background(), plan, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if len(r) != 2 || r[1].(int) != r[0].(int)*10 {
			t.Fatalf("combine output wrong: %v", r)
		}
	}
}

func TestContextCancel(t *testing.T) {
	checkQueryHygiene(t)
	big := tbl("b", 200000, func(i int) any { return i }, func(i int) any { return i })
	plan := &Join{Build: &Scan{Table: big}, Probe: &Scan{Table: big}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Execute(ctx, plan, Options{Workers: 2}); err == nil {
		t.Fatal("cancelled context did not error")
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := Execute(context.Background(), nil, Options{}); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, _, err := Execute(context.Background(), &Scan{}, Options{}); err == nil {
		t.Fatal("scan without table accepted")
	}
	if _, _, err := Execute(context.Background(), &Join{Build: &Scan{Table: &Table{}}, Probe: &Scan{Table: &Table{}}}, Options{}); err == nil {
		t.Fatal("join without keys accepted")
	}
}

func TestQuickJoinEquivalence(t *testing.T) {
	checkQueryHygiene(t)
	f := func(seedB, seedP uint16, nb, np uint8, mod uint8) bool {
		m := int(mod%13) + 1
		build := tbl("b", int(nb%40)+1, func(i int) any { return (i + int(seedB)) % m }, func(i int) any { return i })
		probe := tbl("p", int(np%60)+1, func(i int) any { return (i + int(seedP)) % m }, func(i int) any { return i })
		plan := &Join{Build: &Scan{Table: build}, Probe: &Scan{Table: probe}, BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
		got, _, err := Execute(context.Background(), plan, Options{Workers: 3, Morsel: 7, Batch: 5})
		if err != nil {
			return false
		}
		want := nestedJoin(probe, build, 0, 0)
		g, w := canon(got), canon(want)
		if len(g) != len(w) {
			return false
		}
		for i := range g {
			if g[i] != w[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTableHelpers(t *testing.T) {
	tb := &Table{Name: "t", Cols: []string{"a", "b"}, Rows: []Row{{1, 2}}}
	if tb.NumRows() != 1 {
		t.Fatal("NumRows")
	}
	if tb.Col("b") != 1 || tb.Col("z") != -1 {
		t.Fatal("Col")
	}
}

func TestImbalanceStat(t *testing.T) {
	s := &Stats{PerWorker: []int64{10, 10, 10, 10}}
	if s.Imbalance() != 1 {
		t.Fatalf("balanced imbalance = %v", s.Imbalance())
	}
	s = &Stats{PerWorker: []int64{40, 0, 0, 0}}
	if s.Imbalance() != 4 {
		t.Fatalf("imbalance = %v", s.Imbalance())
	}
}
