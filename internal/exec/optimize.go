package exec

// The cost-based planning bridge: translate a literal builder plan into
// the optimizer's query-graph form, cost it from ANALYZE statistics,
// run the DP search (internal/optimizer — the paper's §5.1.2 stand-in
// for the DBS3 optimizer), and rebuild the chosen tree as an exec plan.
//
// The bridge never changes results. A reordered tree emits the same row
// multiset, and when the new leaf order would permute output columns the
// root join gets a Combine that restores the literal column order.
// Plans the graph extraction cannot prove safe to reorder — a Combine
// that rewrites rows, a computed join key, a NoReorder hint, mixed-type
// or ragged leaf columns — fall back to the literal order with
// statistics-derived RowsHints (exactly the hints-only mode), and the
// blocking condition is reported as the PlanChoice's Reason.

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hierdb/internal/catalog"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/vec"
)

// OptimizeMode selects how much planning Optimize applies.
type OptimizeMode int

const (
	// OptimizeOff returns the literal plan untouched.
	OptimizeOff OptimizeMode = iota
	// OptimizeHints keeps the literal tree shape but fills scheduling
	// estimates (RowsHint) from catalog statistics on cloned nodes.
	OptimizeHints
	// OptimizeFull reorders joins with the DP search (and applies the
	// hint pass when the plan cannot be safely reordered).
	OptimizeFull
)

// StatsFunc resolves a table's ANALYZE statistics; nil results mean the
// table was not analyzed and default selectivities apply.
type StatsFunc func(*Table) *catalog.TableStats

// PlanChoice is Optimize's outcome: the plan to execute plus how it was
// chosen. The input plan is never mutated — hints and reorderings apply
// to cloned nodes.
type PlanChoice struct {
	// Root is the plan to execute.
	Root Node
	// Reordered reports that the full mode replaced the literal join
	// order with the DP optimum.
	Reordered bool
	// Reason, in full mode, says why the literal order was kept ("" when
	// the plan was reordered or the mode stops at hints).
	Reason string

	info *treeInfo
}

// dpMaxRelations mirrors the optimizer's DP capacity (2^n subset table).
const dpMaxRelations = 20

// Default selectivities when statistics cannot answer ([Selinger79]'s
// magic numbers, unchanged in spirit since).
const (
	filterSelectivity    = 1.0 / 3
	rangeSelectivity     = 1.0 / 3
	defaultEqSelectivity = 0.1
)

// hashTableOverhead scales raw build bytes to hash-table residency for
// the spill-expectation heuristic (stripe stores keep boxed mirrors and
// index slots alongside the values).
const hashTableOverhead = 2.0

// Optimize plans the query rooted at root under the given mode. It
// always returns a choice — planning never fails; conditions that block
// reordering keep the literal order and surface as Reason.
func Optimize(root Node, mode OptimizeMode, stats StatsFunc) *PlanChoice {
	pc := &PlanChoice{Root: root}
	if mode == OptimizeOff || root == nil {
		return pc
	}
	ti := analyzeTree(root, stats)
	pc.info = ti
	if mode == OptimizeFull && ti.reason == "" {
		if nr, ok := ti.reorder(); ok {
			pc.Root = nr
			pc.Reordered = true
			return pc
		}
	}
	if mode == OptimizeFull {
		pc.Reason = ti.reason
	}
	pc.Root = ti.annotate(root)
	return pc
}

// ---------------------------------------------------------------------
// Tree analysis: leaves, predicate edges, cardinality estimates
// ---------------------------------------------------------------------

// leafInfo is one base-relation scan of the analyzed plan.
type leafInfo struct {
	scan     *Scan
	width    int
	est      float64 // estimated post-filter output rows (>= 1)
	rowBytes float64
	st       *catalog.TableStats
}

// qedge is one join predicate mapped onto leaf key columns.
type qedge struct {
	a, b       int // leaf indices
	acol, bcol int // key column local to each leaf's schema
	sel        float64
}

// treeInfo is the analyzed logical tree: its leaves, the predicate
// graph over them (when extractable), and per-node output estimates.
type treeInfo struct {
	stats    StatsFunc
	leaves   []leafInfo
	edges    []qedge
	order    []int // leaf index sequence in the literal output column order
	est      map[Node]float64
	rowBytes map[Node]float64
	// reason is the first condition blocking reordering ("" = clean).
	reason string
}

// analyzeTree walks the plan bottom-up, estimating every node's output
// cardinality and extracting the predicate graph for the DP search.
func analyzeTree(root Node, stats StatsFunc) *treeInfo {
	ti := &treeInfo{
		stats:    stats,
		est:      make(map[Node]float64),
		rowBytes: make(map[Node]float64),
	}
	ti.order, _ = ti.walk(root)
	if ti.reason == "" {
		switch n := len(ti.leaves); {
		case n < 2:
			ti.reason = "single-relation plan"
		case n > dpMaxRelations:
			ti.reason = fmt.Sprintf("%d relations exceed the DP capacity (%d)", n, dpMaxRelations)
		}
	}
	return ti
}

// walk analyzes one subtree, returning its leaf order and column width.
func (ti *treeInfo) walk(n Node) (order []int, width int) {
	switch v := n.(type) {
	case *Scan:
		if v.Table == nil {
			ti.block("scan without a table")
			return nil, 0
		}
		li := len(ti.leaves)
		var st *catalog.TableStats
		if ti.stats != nil {
			st = ti.stats(v.Table)
		}
		base := float64(v.Table.NumRows())
		est := estimateScan(v, st, base)
		rb := float64(catalog.DefaultTupleBytes)
		if st != nil && st.AvgRowBytes > 0 {
			rb = st.AvgRowBytes
		}
		if ti.reason == "" {
			if issue := leafReorderIssue(v.Table); issue != "" {
				ti.block(fmt.Sprintf("table %q has %s", v.Table.Name, issue))
			}
		}
		ti.leaves = append(ti.leaves, leafInfo{scan: v, width: len(v.Table.Cols), est: est, rowBytes: rb, st: st})
		ti.est[v] = est
		ti.rowBytes[v] = rb
		return []int{li}, len(v.Table.Cols)
	case *Join:
		po, pw := ti.walk(v.Probe)
		bo, bw := ti.walk(v.Build)
		order = append(append(make([]int, 0, len(po)+len(bo)), po...), bo...)
		width = pw + bw
		var e *qedge
		if ti.reason == "" {
			switch {
			case v.Combine != nil:
				ti.block("a Combine rewrites join output rows")
			case v.NoReorder:
				ti.block("a NoReorder hint pins the literal order")
			default:
				pc := resolveKeyCol(v.ProbeKey, pw)
				bc := resolveKeyCol(v.BuildKey, bw)
				if pc < 0 || bc < 0 {
					ti.block("a join key is not a plain column projection")
				} else {
					la, ca := ti.locate(po, pc)
					lb, cb := ti.locate(bo, bc)
					ti.edges = append(ti.edges, qedge{a: la, acol: ca, b: lb, bcol: cb})
					e = &ti.edges[len(ti.edges)-1]
				}
			}
		}
		pEst, bEst := ti.est[v.Probe], ti.est[v.Build]
		est := pEst // the legacy scheduling default (selectivity 1)
		var sel float64
		switch {
		case v.RowsHint > 0:
			est = float64(v.RowsHint)
			sel = est / (pEst * bEst)
		case v.Selectivity > 0:
			est = v.Selectivity * pEst
			sel = v.Selectivity / bEst
		case e != nil:
			// [Selinger79] equi-join estimate: |P ⋈ B| = |P|·|B| / max(V(a), V(b)).
			da := ti.keyDistinct(e.a, e.acol)
			db := ti.keyDistinct(e.b, e.bcol)
			d := da
			if db > d {
				d = db
			}
			sel = 1 / d
			est = pEst * bEst * sel
		default:
			sel = est / (pEst * bEst)
		}
		if est < 1 {
			est = 1
		}
		if e != nil {
			if !(sel > 0) || math.IsInf(sel, 0) || math.IsNaN(sel) {
				sel = 1e-12
			}
			e.sel = sel
		}
		ti.est[v] = est
		ti.rowBytes[v] = ti.rowBytes[v.Probe] + ti.rowBytes[v.Build]
		return order, width
	default:
		ti.block(fmt.Sprintf("unknown plan node %T", n))
		return nil, 0
	}
}

// block records the first reorder-blocking condition.
func (ti *treeInfo) block(reason string) {
	if ti.reason == "" {
		ti.reason = reason
	}
}

// locate maps a column of a subtree's concatenated schema back to the
// leaf it projects and the column index local to that leaf.
//
//hierdb:hotpath
func (ti *treeInfo) locate(order []int, col int) (leaf, local int) {
	for _, li := range order {
		w := ti.leaves[li].width
		if col < w {
			return li, col
		}
		col -= w
	}
	return -1, -1
}

// keyDistinct is the distinct-count estimate of a leaf's key column,
// clamped to the leaf's estimated (post-filter) cardinality. Without
// statistics the key is assumed unique — the classic FK->PK guess.
//
//hierdb:hotpath
func (ti *treeInfo) keyDistinct(leaf, col int) float64 {
	l := &ti.leaves[leaf]
	d := l.est
	if ds := l.st.DistinctOf(col); ds > 0 {
		d = float64(ds)
	}
	if d > l.est {
		d = l.est
	}
	if d < 1 {
		d = 1
	}
	return d
}

// estimateScan estimates a scan's post-filter output rows.
//
//hierdb:hotpath
func estimateScan(s *Scan, st *catalog.TableStats, base float64) float64 {
	if s.RowsHint > 0 {
		return float64(s.RowsHint)
	}
	est := base
	for i := range s.Preds {
		est *= predSelectivity(&s.Preds[i], st, base)
	}
	if s.Filter != nil {
		est *= filterSelectivity
	}
	if est > base {
		est = base
	}
	if est < 1 {
		est = 1
	}
	return est
}

// predSelectivity estimates the fraction of rows one column predicate
// passes, consulting distinct/null statistics when available.
//
//hierdb:hotpath
func predSelectivity(p *vec.Pred, st *catalog.TableStats, rows float64) float64 {
	switch p.Op {
	case vec.Eq:
		if d := st.DistinctOf(p.Col); d > 0 {
			return 1 / float64(d)
		}
		return defaultEqSelectivity
	case vec.Ne:
		if d := st.DistinctOf(p.Col); d > 0 {
			return 1 - 1/float64(d)
		}
		return 1 - defaultEqSelectivity
	case vec.Lt, vec.Le, vec.Gt, vec.Ge:
		return rangeSelectivity
	case vec.IsNull:
		if st != nil && p.Col >= 0 && p.Col < len(st.Cols) && rows > 0 {
			return float64(st.Cols[p.Col].Nulls) / rows
		}
		return 0.01
	case vec.NotNull:
		if st != nil && p.Col >= 0 && p.Col < len(st.Cols) && rows > 0 {
			return 1 - float64(st.Cols[p.Col].Nulls)/rows
		}
		return 0.99
	}
	return 1
}

// leafReorderIssue reports why a table's rows cannot survive the output
// permutation a reordered plan may need ("" = safe). Mixed-type and
// ragged columns resolve to the Any kind, whose rows may materialize
// short; permuting them would shift values across columns.
func leafReorderIssue(t *Table) string {
	if f := t.File; f != nil {
		for _, k := range f.Kinds() {
			if k == vec.Any {
				return "a mixed-type column"
			}
		}
		return ""
	}
	b := columnize(t)
	if b.N > 0 && len(b.Cols) != len(t.Cols) {
		return "rows wider than the declared schema"
	}
	for i := range b.Cols {
		if b.Cols[i].Kind == vec.Any {
			return "a mixed-type or ragged column"
		}
	}
	return ""
}

// roundEst converts a cardinality estimate to the int64 hint form.
//
//hierdb:hotpath
func roundEst(est float64) int64 {
	if est <= 1 {
		return 1
	}
	if est > 1e15 {
		return int64(1e15)
	}
	return int64(est + 0.5)
}

// ---------------------------------------------------------------------
// Hints-only pass
// ---------------------------------------------------------------------

// annotate clones the literal tree with statistics-derived RowsHints,
// improving scheduling estimates (static allocation, hash-table
// presizing) without touching shape, order, or results. Explicit user
// hints win over derived ones.
func (ti *treeInfo) annotate(n Node) Node {
	switch v := n.(type) {
	case *Scan:
		ns := *v
		if ns.RowsHint <= 0 {
			ns.RowsHint = roundEst(ti.est[v])
		}
		ti.est[&ns] = ti.est[v]
		ti.rowBytes[&ns] = ti.rowBytes[v]
		return &ns
	case *Join:
		nj := *v
		nj.Probe = ti.annotate(v.Probe)
		nj.Build = ti.annotate(v.Build)
		if nj.RowsHint <= 0 {
			nj.RowsHint = roundEst(ti.est[v])
		}
		ti.est[&nj] = ti.est[v]
		ti.rowBytes[&nj] = ti.rowBytes[v]
		return &nj
	default:
		return n
	}
}

// ---------------------------------------------------------------------
// Full reordering: DP search + exec-tree rebuild
// ---------------------------------------------------------------------

// reorder runs the DP over the extracted predicate graph and rebuilds
// the winning tree as an exec plan. ok = false (with reason set) when
// the graph fails optimizer validation.
func (ti *treeInfo) reorder() (Node, bool) {
	n := len(ti.leaves)
	rels := make([]*catalog.Relation, n)
	for i := range ti.leaves {
		l := &ti.leaves[i]
		tb := int64(l.rowBytes)
		if tb < 1 {
			tb = 1
		}
		rels[i] = &catalog.Relation{
			Name:        "r" + strconv.Itoa(i),
			Cardinality: roundEst(l.est),
			TupleBytes:  tb,
			Home:        []int{0},
		}
	}
	edges := make([]querygen.Edge, len(ti.edges))
	for i, e := range ti.edges {
		edges[i] = querygen.Edge{A: e.a, B: e.b, Selectivity: e.sel}
	}
	qq := &querygen.Query{Name: "bridge", Relations: rels, Edges: edges}
	if err := qq.Validate(); err != nil {
		ti.block(fmt.Sprintf("predicate graph rejected: %v", err))
		return nil, false
	}
	trees := (&optimizer.Optimizer{}).BestTrees(qq, 1)
	if len(trees) == 0 {
		ti.block("DP search produced no plan")
		return nil, false
	}
	relIdx := make(map[*catalog.Relation]int, n)
	for i, r := range rels {
		relIdx[r] = i
	}
	node, order, _, _ := ti.rebuild(trees[0], relIdx)
	root, isJoin := node.(*Join)
	if !isJoin {
		ti.block("DP search produced a leaf plan")
		return nil, false
	}
	if !equalInts(order, ti.order) {
		return ti.permuteRoot(root, order), true
	}
	return root, true
}

// rebuild turns one plan.JoinNode subtree into an exec subtree,
// returning the node, its leaf order, estimated cardinality, and leaf
// bitmask. Leaves reuse the literal scans (cloned, with hints); build
// sides follow plan.BuildAuto's smaller-input rule.
func (ti *treeInfo) rebuild(jn *plan.JoinNode, relIdx map[*catalog.Relation]int) (Node, []int, float64, uint32) {
	if jn.IsLeaf() {
		i := relIdx[jn.Rel]
		l := &ti.leaves[i]
		ns := *l.scan
		if ns.RowsHint <= 0 {
			ns.RowsHint = roundEst(l.est)
		}
		ti.est[&ns] = l.est
		ti.rowBytes[&ns] = l.rowBytes
		return &ns, []int{i}, l.est, 1 << uint(i)
	}
	ln, lorder, lcard, lmask := ti.rebuild(jn.Left, relIdx)
	rn, rorder, rcard, rmask := ti.rebuild(jn.Right, relIdx)
	// The predicate graph is a tree, so exactly one edge crosses the
	// split the DP chose.
	var e *qedge
	for i := range ti.edges {
		am := uint32(1) << uint(ti.edges[i].a)
		bm := uint32(1) << uint(ti.edges[i].b)
		if (lmask&am != 0 && rmask&bm != 0) || (lmask&bm != 0 && rmask&am != 0) {
			e = &ti.edges[i]
			break
		}
	}
	probeN, probeOrder, probeMask := ln, lorder, lmask
	buildN, buildOrder := rn, rorder
	if lcard < rcard {
		probeN, probeOrder, probeMask = rn, rorder, rmask
		buildN, buildOrder = ln, lorder
	}
	out := e.sel * lcard * rcard
	if out < 1 {
		out = 1
	}
	pLeaf, pCol, bLeaf, bCol := e.a, e.acol, e.b, e.bcol
	if probeMask&(uint32(1)<<uint(e.a)) == 0 {
		pLeaf, pCol, bLeaf, bCol = e.b, e.bcol, e.a, e.acol
	}
	pk := ti.offsetOf(probeOrder, pLeaf) + pCol
	bk := ti.offsetOf(buildOrder, bLeaf) + bCol
	j := &Join{
		Build:    buildN,
		Probe:    probeN,
		BuildKey: KeyCol(bk),
		ProbeKey: KeyCol(pk),
		RowsHint: roundEst(out),
	}
	ti.est[j] = out
	ti.rowBytes[j] = ti.rowBytes[probeN] + ti.rowBytes[buildN]
	order := append(append(make([]int, 0, len(probeOrder)+len(buildOrder)), probeOrder...), buildOrder...)
	return j, order, out, lmask | rmask
}

// offsetOf is the column offset of a leaf within a subtree's
// concatenated schema.
//
//hierdb:hotpath
func (ti *treeInfo) offsetOf(order []int, leaf int) int {
	off := 0
	for _, li := range order {
		if li == leaf {
			return off
		}
		off += ti.leaves[li].width
	}
	return off
}

// permuteRoot wraps the reordered tree's root join with a Combine that
// restores the literal builder's output column order, so callers (and
// any GroupBy key over column positions) observe identical rows.
func (ti *treeInfo) permuteRoot(root *Join, newOrder []int) Node {
	newOff := make([]int, len(ti.leaves))
	off := 0
	for _, li := range newOrder {
		newOff[li] = off
		off += ti.leaves[li].width
	}
	perm := make([]int, 0, off)
	for _, li := range ti.order {
		base := newOff[li]
		for c := 0; c < ti.leaves[li].width; c++ {
			perm = append(perm, base+c)
		}
	}
	pw := ti.nodeWidth(root.Probe)
	j := *root
	j.Combine = permCombine(perm, pw)
	ti.est[&j] = ti.est[root]
	ti.rowBytes[&j] = ti.rowBytes[root]
	return &j
}

// permCombine builds the column-permuting row merger of a reordered
// root join: output position i takes concatenated (probe ++ build)
// position perm[i].
func permCombine(perm []int, pw int) func(Row, Row) Row {
	return func(p, b Row) Row {
		out := make(Row, len(perm))
		for i, src := range perm {
			if src < pw {
				out[i] = p[src]
			} else {
				out[i] = b[src-pw]
			}
		}
		return out
	}
}

// nodeWidth is the output column count of a subtree.
func (ti *treeInfo) nodeWidth(n Node) int {
	switch v := n.(type) {
	case *Scan:
		return len(v.Table.Cols)
	case *Join:
		return ti.nodeWidth(v.Probe) + ti.nodeWidth(v.Build)
	}
	return 0
}

//hierdb:hotpath
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Plan description (Explain)
// ---------------------------------------------------------------------

// ExplainNode is one operator of a described plan. Estimated rows come
// from the planner; actual rows are -1 until Actualize pairs the node
// with a finished run's Stats.
type ExplainNode struct {
	// Kind is "scan", "join", or "groupby".
	Kind string
	// Table is the scanned table's name (scans only).
	Table string
	// Preds counts the scan's column predicates; Filtered reports a row
	// Filter closure.
	Preds    int
	Filtered bool
	// EstRows is the planner's output-cardinality estimate (-1 when the
	// planner has none, e.g. group-by output).
	EstRows int64
	// ActRows is the operator's actual output rows, -1 until Actualize.
	ActRows int64
	// Strategy describes the chosen physical strategy (joins: "hash", or
	// "hash, grace spill expected" when the estimated per-node build
	// exceeds the memory budget).
	Strategy string
	// OpID is the producing physical operator's id (scan op for scans,
	// probe op for joins; -1 for groupby). BuildOpID is the join's build
	// operator id (-1 otherwise).
	OpID      int
	BuildOpID int
	// Children: joins list [probe, build]; groupby lists its input.
	Children []*ExplainNode
}

// Describe compiles the chosen plan and returns its structured
// description, with operator ids matching what a Run of the same choice
// executes (compilation is deterministic). gb, when non-nil, wraps the
// tree in a groupby node; nodes is the engine's SM-node count (the
// spill heuristic divides build bytes across nodes).
func (pc *PlanChoice) Describe(gb *GroupBy, opt Options, nodes int) (*ExplainNode, error) {
	if pc.info == nil {
		pc.info = analyzeTree(pc.Root, nil)
	}
	phys, err := compile(pc.Root)
	if err != nil {
		return nil, err
	}
	if nodes < 1 {
		nodes = 1
	}
	root := pc.info.describeOp(phys, phys.root, opt, nodes)
	if gb != nil {
		root = &ExplainNode{Kind: "groupby", EstRows: -1, ActRows: -1, OpID: -1, BuildOpID: -1, Children: []*ExplainNode{root}}
	}
	return root, nil
}

func (ti *treeInfo) describeOp(p *physical, op *pop, opt Options, nodes int) *ExplainNode {
	switch op.kind {
	case opScan:
		s := op.scan
		return &ExplainNode{
			Kind:      "scan",
			Table:     s.Table.Name,
			Preds:     len(s.Preds),
			Filtered:  s.Filter != nil,
			EstRows:   roundEst(ti.est[s]),
			ActRows:   -1,
			OpID:      op.id,
			BuildOpID: -1,
		}
	case opProbe:
		bld := op.partner
		j := op.join
		strat := "hash"
		if opt.MemoryPerNode > 0 {
			buildBytes := ti.est[j.Build] * ti.rowBytes[j.Build] * hashTableOverhead / float64(nodes)
			if buildBytes > float64(opt.MemoryPerNode) {
				strat = "hash, grace spill expected"
			}
		}
		return &ExplainNode{
			Kind:      "join",
			EstRows:   roundEst(ti.est[j]),
			ActRows:   -1,
			Strategy:  strat,
			OpID:      op.id,
			BuildOpID: bld.id,
			Children: []*ExplainNode{
				ti.describeOp(p, producerOf(p, op), opt, nodes),
				ti.describeOp(p, producerOf(p, bld), opt, nodes),
			},
		}
	}
	return nil
}

// Actualize fills ActRows throughout the subtree from a finished run's
// Stats: per-operator production counters for scans and joins, the
// delivered result rows for groupby (its output, per ResultRows
// semantics).
func (n *ExplainNode) Actualize(st *Stats) {
	if n == nil || st == nil {
		return
	}
	switch {
	case n.Kind == "groupby":
		n.ActRows = st.ResultRows
	case n.OpID >= 0 && n.OpID < len(st.OpRows):
		n.ActRows = st.OpRows[n.OpID]
	}
	for _, c := range n.Children {
		c.Actualize(st)
	}
}

// Cost constants (ns per row, single-threaded) calibrated from the
// BENCH_engine.json era of BenchmarkEngineJoinDP — ~23ms for a
// 100k-probe / 10k-build / 100k-result join — spread over the model's
// per-phase touches. They price Explain's plan-cost estimate; the DP
// search itself keeps the paper's sum-of-intermediates objective.
const (
	costScanNs   = 25
	costBuildNs  = 80
	costProbeNs  = 60
	costResultNs = 50
)

// EstimateCostNs returns the subtree's calibrated single-threaded cost
// estimate in nanoseconds.
func (n *ExplainNode) EstimateCostNs() int64 {
	if n == nil {
		return 0
	}
	switch n.Kind {
	case "scan":
		return n.EstRows * costScanNs
	case "join":
		probe, build := n.Children[0], n.Children[1]
		cost := probe.EstimateCostNs() + build.EstimateCostNs()
		return cost + build.EstRows*costBuildNs + probe.EstRows*costProbeNs + n.EstRows*costResultNs
	case "groupby":
		in := n.Children[0]
		return in.EstimateCostNs() + in.EstRows*costBuildNs
	}
	return 0
}

// String renders the subtree as a stable indented text tree — the
// Explain grammar golden tests assert on.
func (n *ExplainNode) String() string {
	var sb strings.Builder
	n.render(&sb, "", "", "")
	return strings.TrimRight(sb.String(), "\n")
}

func (n *ExplainNode) render(sb *strings.Builder, prefix, childPrefix, label string) {
	sb.WriteString(prefix)
	if label != "" {
		sb.WriteString(label)
		sb.WriteString(": ")
	}
	sb.WriteString(n.line())
	sb.WriteByte('\n')
	for i, c := range n.Children {
		var l string
		if n.Kind == "join" {
			if i == 0 {
				l = "probe"
			} else {
				l = "build"
			}
		}
		if i == len(n.Children)-1 {
			c.render(sb, childPrefix+"└─ ", childPrefix+"   ", l)
		} else {
			c.render(sb, childPrefix+"├─ ", childPrefix+"│  ", l)
		}
	}
}

func (n *ExplainNode) line() string {
	act := "-"
	if n.ActRows >= 0 {
		act = strconv.FormatInt(n.ActRows, 10)
	}
	switch n.Kind {
	case "scan":
		s := "scan " + n.Table
		if n.Preds > 0 {
			s += " preds=" + strconv.Itoa(n.Preds)
		}
		if n.Filtered {
			s += " filter"
		}
		return s + " est=" + strconv.FormatInt(n.EstRows, 10) + " act=" + act
	case "join":
		s := "join est=" + strconv.FormatInt(n.EstRows, 10) + " act=" + act
		if n.Strategy != "" {
			s += " [" + n.Strategy + "]"
		}
		return s
	case "groupby":
		return "groupby act=" + act
	}
	return n.Kind
}
