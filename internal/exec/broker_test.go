package exec

// Tests for the per-node memory broker: deterministic grant/deny/trim
// arithmetic plus the race-stressed invariant that the sum of all
// outstanding leases always equals the broker's granted total and never
// exceeds its budget.

import (
	"fmt"
	"sync"
	"testing"

	"hierdb/internal/xrand"
)

// TestBrokerGrantDenyTrim walks one lease through the broker's
// arithmetic: chunk-padded grants, denial on shortfall (with nothing
// leaked), trim hysteresis, and releaseAll returning everything.
func TestBrokerGrantDenyTrim(t *testing.T) {
	b := &memBroker{budget: 4 * leaseChunk}
	var l memLease

	if !b.topUp(&l, 10) {
		t.Fatal("topUp(10) denied with an empty pool")
	}
	if g := l.granted.Load(); g != 10+leaseChunk {
		t.Fatalf("lease after topUp(10) = %d, want need+chunk = %d", g, 10+leaseChunk)
	}
	// Within the lease: no broker traffic, still granted.
	if !b.topUp(&l, leaseChunk) {
		t.Fatal("topUp within lease denied")
	}
	// Beyond the budget: denied, and the denial must leak nothing.
	before := b.available()
	if b.topUp(&l, 5*leaseChunk) {
		t.Fatal("topUp beyond budget granted")
	}
	if after := b.available(); after != before {
		t.Fatalf("denied topUp moved available from %d to %d", before, after)
	}
	// Growing to exactly the budget succeeds (grant capped at avail).
	if !b.topUp(&l, 4*leaseChunk) {
		t.Fatal("topUp to exactly the budget denied")
	}
	if avail := b.available(); avail != 0 {
		t.Fatalf("available after full grant = %d, want 0", avail)
	}
	// Usage collapses: trim keeps one chunk of slack, frees the rest.
	b.trim(&l, 10)
	if g := l.granted.Load(); g != 10+leaseChunk {
		t.Fatalf("lease after trim(10) = %d, want used+chunk = %d", g, 10+leaseChunk)
	}
	// Within the hysteresis band trim is a no-op.
	g := l.granted.Load()
	b.trim(&l, g-leaseChunk)
	if l.granted.Load() != g {
		t.Fatal("trim inside the hysteresis band shrank the lease")
	}
	b.releaseAll(&l)
	if g := l.granted.Load(); g != 0 {
		t.Fatalf("lease after releaseAll = %d, want 0", g)
	}
	if avail := b.available(); avail != b.budget {
		t.Fatalf("available after releaseAll = %d, want full budget %d", avail, b.budget)
	}
}

// TestBrokerLeaseInvariant race-stresses the broker with concurrent
// fragments growing, shrinking, spilling (denied top-ups) and retiring,
// while a checker repeatedly asserts the conservation invariant: the
// sum of all leases equals granted, and granted never exceeds the
// budget. Run under -race this is the broker's concurrency check.
func TestBrokerLeaseInvariant(t *testing.T) {
	const fragments = 8
	const iters = 2000
	budget := int64(fragments) * 3 * leaseChunk // contended: ~3 chunks each
	b := &memBroker{budget: budget}
	leases := make([]memLease, fragments)

	stop := make(chan struct{})
	checkErr := make(chan error, 1)
	go func() {
		defer close(checkErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Lease stores happen under b.mu, so holding it snapshots
			// the whole system consistently.
			b.mu.Lock()
			var sum int64
			for i := range leases {
				sum += leases[i].granted.Load()
			}
			granted := b.granted
			b.mu.Unlock()
			if sum != granted || granted < 0 || granted > budget {
				checkErr <- &brokerInvariantError{sum: sum, granted: granted, budget: budget}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for f := 0; f < fragments; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			r := xrand.New(uint64(f) + 1)
			l := &leases[f]
			var used int64
			for i := 0; i < iters; i++ {
				switch r.Intn(4) {
				case 0, 1: // grow, possibly denied (the spill decision)
					used += r.Int63n(leaseChunk) + 1
					if !b.topUp(l, used) {
						// Denied: the fragment spills, usage collapses.
						used = used / 4
						b.trim(l, used)
					}
				case 2: // shrink and trim
					used = used / 2
					b.trim(l, used)
				case 3: // fragment retires and a new one reuses the slot
					b.releaseAll(l)
					used = 0
				}
			}
			b.releaseAll(l)
		}(f)
	}
	wg.Wait()
	close(stop)
	if err, ok := <-checkErr; ok && err != nil {
		t.Fatal(err)
	}
	if avail := b.available(); avail != budget {
		t.Fatalf("available after all fragments retired = %d, want %d", avail, budget)
	}
}

// brokerInvariantError reports a conservation violation snapshot.
type brokerInvariantError struct {
	sum, granted, budget int64
}

func (e *brokerInvariantError) Error() string {
	return fmt.Sprintf("broker invariant violated: sum(leases)=%d granted=%d budget=%d",
		e.sum, e.granted, e.budget)
}
