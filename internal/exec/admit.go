package exec

// Admission control: the engine-level half of the paper's §3.2 load
// control. Condition (i) — never acquire work the node cannot hold —
// is enforced per-fragment by the memory broker (broker.go); this file
// bounds how many queries are in flight at all. MaxConcurrentQueries
// used to be a bare channel semaphore with a real bug: a Submit parked
// on the channel selected only on the semaphore and the caller's
// context, so Close never woke it — a context.Background() caller hung
// forever. The admitter replaces the semaphore with an explicit
// controller: a bounded FIFO wait queue dequeued round-robin across
// tenant labels (so one tenant's backlog cannot starve another's),
// fast rejection with ErrAdmissionQueueFull once the queue cap is hit,
// and prompt failure of every parked waiter with ErrClosed on close.
//
// Waiters park on a per-waiter done channel. Grants transfer the slot
// (inflight never dips while the queue is non-empty), the grant error
// is written before done is closed, and closes happen after the
// admitter mutex is released. The admit mutex is the outermost level
// of the lock hierarchy: acquire/release run with no scheduler locks
// held, and nothing is locked under it.

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrAdmissionQueueFull is returned by Submit when MaxConcurrentQueries
// slots are all taken and the admission wait queue is at capacity: the
// query is rejected immediately instead of parked. Callers doing load
// shedding match it with errors.Is.
var ErrAdmissionQueueFull = errors.New("exec: admission queue full")

// defaultQueuePerSlot sizes the admission wait queue when the engine
// does not set one explicitly: 8 parked queries per admission slot.
const defaultQueuePerSlot = 8

// admitWaiter is one parked Submit. settled and err are written under
// the admit mutex (a grant leaves err nil, close sets ErrClosed) before
// done is closed; done is always closed after the mutex is released.
type admitWaiter struct {
	settled bool
	err     error
	done    chan struct{}
}

// tenantQueue is one tenant's FIFO of parked waiters. Only tenants
// with at least one waiter appear in the admitter's ring.
type tenantQueue struct {
	id string
	q  []*admitWaiter
}

// admitter is the admission controller shared by an engine's Submit
// paths: slots concurrent queries, at most queueCap parked waiters.
type admitter struct {
	slots    int
	queueCap int

	mu       sync.Mutex //hierdb:lock admit
	inflight int
	waiting  int
	closed   bool
	tenants  map[string]*tenantQueue // tenants with parked waiters
	ring     []*tenantQueue          // round-robin dequeue order
	rr       int                     // next ring index to dequeue
}

// newAdmitter builds a controller with the given slot count and parked
// cap (queueCap <= 0 means the default 8 per slot).
func newAdmitter(slots, queueCap int) *admitter {
	if queueCap <= 0 {
		queueCap = defaultQueuePerSlot * slots
	}
	return &admitter{slots: slots, queueCap: queueCap, tenants: make(map[string]*tenantQueue)}
}

// acquire takes one admission slot for tenant, parking FIFO behind
// earlier waiters when none is free, and returns how long it parked.
// It fails with ErrAdmissionQueueFull when the wait queue is at
// capacity, with ErrClosed when the engine closes (promptly, even for
// waiters parked on a context.Background() Submit), and with ctx.Err()
// when the caller's context fires first.
//
//hierdb:hotpath
func (ad *admitter) acquire(ctx context.Context, tenant string) (time.Duration, error) {
	ad.mu.Lock()
	if ad.closed {
		ad.mu.Unlock()
		return 0, ErrClosed
	}
	if ad.inflight < ad.slots && ad.waiting == 0 {
		// Fast path: a slot is free and nobody queued ahead of us.
		ad.inflight++
		ad.mu.Unlock()
		return 0, nil
	}
	if ad.waiting >= ad.queueCap {
		ad.mu.Unlock()
		return 0, ErrAdmissionQueueFull
	}
	w := &admitWaiter{done: make(chan struct{})}
	tq := ad.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{id: tenant}
		ad.tenants[tenant] = tq
	}
	if len(tq.q) == 0 {
		ad.ring = append(ad.ring, tq)
	}
	tq.q = append(tq.q, w)
	ad.waiting++
	ad.mu.Unlock()

	start := time.Now()
	select {
	case <-w.done:
		return time.Since(start), w.err
	case <-ctx.Done():
	}
	// The caller's context fired while we were parked. A grant (or a
	// close) may have raced it — w.settled, under the mutex, decides:
	// a raced grant's slot is handed to the next waiter, since the
	// caller is leaving either way.
	ad.mu.Lock()
	settled, err := w.settled, w.err
	var wake *admitWaiter
	if settled {
		if err == nil {
			wake = ad.releaseLocked()
		}
	} else {
		tq = ad.tenants[tenant]
		for i, x := range tq.q {
			if x == w {
				copy(tq.q[i:], tq.q[i+1:])
				tq.q[len(tq.q)-1] = nil
				tq.q = tq.q[:len(tq.q)-1]
				break
			}
		}
		if len(tq.q) == 0 {
			ad.dropTenantLocked(tq)
		}
		ad.waiting--
	}
	ad.mu.Unlock()
	if wake != nil {
		close(wake.done)
	}
	if settled && err != nil {
		return time.Since(start), err
	}
	return time.Since(start), ctx.Err()
}

// release returns the caller's slot, handing it to the next parked
// waiter (round-robin across tenants, FIFO within one) if any.
//
//hierdb:hotpath
func (ad *admitter) release() {
	ad.mu.Lock()
	w := ad.releaseLocked()
	ad.mu.Unlock()
	if w != nil {
		close(w.done)
	}
}

// releaseLocked hands the caller's slot to the next waiter or frees it.
// The returned waiter (nil when the queue is empty) must have its done
// channel closed by the caller after the mutex is released. Callers
// hold ad.mu.
func (ad *admitter) releaseLocked() *admitWaiter {
	if len(ad.ring) == 0 {
		ad.inflight--
		return nil
	}
	if ad.rr >= len(ad.ring) {
		ad.rr = 0
	}
	tq := ad.ring[ad.rr]
	w := tq.q[0]
	w.settled = true
	copy(tq.q, tq.q[1:])
	tq.q[len(tq.q)-1] = nil
	tq.q = tq.q[:len(tq.q)-1]
	ad.waiting--
	if len(tq.q) == 0 {
		// dropTenantLocked removes ring[rr]; rr then already points at
		// the next tenant.
		ad.dropTenantLocked(tq)
	} else {
		ad.rr++
		if ad.rr >= len(ad.ring) {
			ad.rr = 0
		}
	}
	return w
}

// dropTenantLocked removes an emptied tenant queue from the ring and
// map, keeping the round-robin cursor on the same next tenant. Callers
// hold ad.mu.
func (ad *admitter) dropTenantLocked(tq *tenantQueue) {
	for i, x := range ad.ring {
		if x == tq {
			copy(ad.ring[i:], ad.ring[i+1:])
			ad.ring[len(ad.ring)-1] = nil
			ad.ring = ad.ring[:len(ad.ring)-1]
			if i < ad.rr {
				ad.rr--
			}
			break
		}
	}
	if ad.rr >= len(ad.ring) {
		ad.rr = 0
	}
	delete(ad.tenants, tq.id)
}

// close fails every parked waiter with ErrClosed and rejects all
// future acquires. Idempotent; called without scheduler locks.
func (ad *admitter) close() {
	ad.mu.Lock()
	ad.closed = true
	var wake []*admitWaiter
	for _, tq := range ad.ring {
		for _, w := range tq.q {
			w.settled = true
			w.err = ErrClosed
			wake = append(wake, w)
		}
		tq.q = nil
	}
	ad.ring = nil
	ad.rr = 0
	ad.waiting = 0
	ad.tenants = make(map[string]*tenantQueue)
	ad.mu.Unlock()
	for _, w := range wake {
		close(w.done)
	}
}

// queued reports the number of parked waiters (test/introspection
// helper).
func (ad *admitter) queued() int {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	return ad.waiting
}
