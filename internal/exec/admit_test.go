package exec

// Tests for the admission controller: the Close-wakes-parked-Submit
// regression (the bug that motivated replacing the channel semaphores),
// round-robin fairness across tenants, context cancellation while
// parked, queue-full rejection, and admission-before-compile ordering.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitQueued spins until the admitter reports n parked waiters.
func waitQueued(t *testing.T, ad *admitter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for ad.queued() != n {
		if time.Now().After(deadline) {
			t.Fatalf("admitter never reached %d queued waiters (have %d)", n, ad.queued())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestAdmitterRoundRobinFairness parks a1, b1, a2, a3 behind one busy
// slot and checks grants interleave tenants round-robin (FIFO within
// one): a1, b1, a2, a3 — tenant b's single waiter is not starved behind
// tenant a's backlog despite arriving second.
func TestAdmitterRoundRobinFairness(t *testing.T) {
	ad := newAdmitter(1, 0)
	if _, err := ad.acquire(context.Background(), "main"); err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 4)
	var wg sync.WaitGroup
	park := func(label, tenant string, queued int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ad.acquire(context.Background(), tenant); err != nil {
				t.Errorf("%s: %v", label, err)
				return
			}
			order <- label
			ad.release()
		}()
		waitQueued(t, ad, queued)
	}
	park("a1", "a", 1)
	park("b1", "b", 2)
	park("a2", "a", 3)
	park("a3", "a", 4)

	ad.release() // hand the slot down the queue
	wg.Wait()
	close(order)
	var got []string
	for l := range order {
		got = append(got, l)
	}
	want := "a1 b1 a2 a3"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("grant order %q, want %q", s, want)
	}
	// Everything released: the fast path is free again.
	if wait, err := ad.acquire(context.Background(), ""); err != nil || wait != 0 {
		t.Fatalf("post-drain acquire = (%v, %v), want immediate grant", wait, err)
	}
}

// TestAdmitterCtxCancelWhileParked cancels a parked waiter's context
// and checks it unparks with ctx.Err() and leaves no queue residue.
func TestAdmitterCtxCancelWhileParked(t *testing.T) {
	ad := newAdmitter(1, 0)
	if _, err := ad.acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := ad.acquire(ctx, "x")
		errc <- err
	}()
	waitQueued(t, ad, 1)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never unparked")
	}
	if n := ad.queued(); n != 0 {
		t.Fatalf("%d waiters still queued after cancel", n)
	}
	// The abandoned waiter must not have consumed the slot handed back.
	ad.release()
	if _, err := ad.acquire(context.Background(), ""); err != nil {
		t.Fatalf("acquire after cancel+release: %v", err)
	}
}

// TestAdmitterQueueFull checks fast rejection once the wait queue is at
// capacity: with one slot and a one-deep queue, the third acquire fails
// immediately with ErrAdmissionQueueFull.
func TestAdmitterQueueFull(t *testing.T) {
	ad := newAdmitter(1, 1)
	if _, err := ad.acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	go func() {
		if _, err := ad.acquire(context.Background(), ""); err != nil {
			t.Errorf("parked waiter: %v", err)
			return
		}
		ad.release()
	}()
	waitQueued(t, ad, 1)
	if _, err := ad.acquire(context.Background(), ""); !errors.Is(err, ErrAdmissionQueueFull) {
		t.Fatalf("over-capacity acquire = %v, want ErrAdmissionQueueFull", err)
	}
	ad.release()
}

// TestAdmitterCloseSettlesWaiters closes the admitter with parked
// waiters and checks every one fails with ErrClosed, as do future
// acquires.
func TestAdmitterCloseSettlesWaiters(t *testing.T) {
	ad := newAdmitter(1, 0)
	if _, err := ad.acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		tenant := string(rune('a' + i))
		go func() {
			_, err := ad.acquire(context.Background(), tenant)
			errc <- err
		}()
	}
	waitQueued(t, ad, 2)
	ad.close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("parked waiter got %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("parked waiter never unparked after close")
		}
	}
	if _, err := ad.acquire(context.Background(), ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close = %v, want ErrClosed", err)
	}
}

// TestPoolCloseFailsParkedSubmit is the regression test for the
// admission hang this controller replaced: a Submit parked behind a
// full semaphore on a context.Background() call used to select only on
// the semaphore channel, so Close never woke it. Now Close must fail
// the parked Submit with ErrClosed within 100ms, with no goroutine
// leaked.
func TestPoolCloseFailsParkedSubmit(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := NewPool(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// h1 holds the only slot; its sink backpressure keeps it in flight
	// until Close aborts it.
	h1, err := pool.Submit(context.Background(), starPlan(40, 300_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	type parked struct {
		err error
		at  time.Time
	}
	done := make(chan parked, 1)
	go func() {
		_, err := pool.Submit(context.Background(), starPlan(41, 10), Options{Tenant: "parked"})
		done <- parked{err: err, at: time.Now()}
	}()
	waitQueued(t, pool.admit, 1)

	closedAt := time.Now()
	go pool.Close() // Close also drains h1; run it alongside the assert
	select {
	case p := <-done:
		if !errors.Is(p.err, ErrClosed) {
			t.Fatalf("parked Submit returned %v, want ErrClosed", p.err)
		}
		if d := p.at.Sub(closedAt); d > 100*time.Millisecond {
			t.Fatalf("parked Submit took %v after Close, want <= 100ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked Submit still blocked 5s after Close — the hang this test guards against")
	}
	for range h1.Out() {
	}
	if err := h1.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("aborted in-flight query reported %v, want ErrClosed", err)
	}
}

// TestNodesCloseFailsParkedSubmit is the same regression on the
// multi-node engine path, where the semaphore used to live on Nodes.
func TestNodesCloseFailsParkedSubmit(t *testing.T) {
	checkQueryHygiene(t)
	ns, err := NewNodes(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := ns.Submit(context.Background(), starPlan(42, 300_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	type parked struct {
		err error
		at  time.Time
	}
	done := make(chan parked, 1)
	go func() {
		_, err := ns.Submit(context.Background(), starPlan(43, 10), Options{Tenant: "parked"})
		done <- parked{err: err, at: time.Now()}
	}()
	waitQueued(t, ns.admit, 1)

	closedAt := time.Now()
	go ns.Close()
	select {
	case p := <-done:
		if !errors.Is(p.err, ErrClosed) {
			t.Fatalf("parked Submit returned %v, want ErrClosed", p.err)
		}
		if d := p.at.Sub(closedAt); d > 100*time.Millisecond {
			t.Fatalf("parked Submit took %v after Close, want <= 100ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked Submit still blocked 5s after Close — the hang this test guards against")
	}
	for range h1.Out() {
	}
	if err := h1.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("aborted in-flight query reported %v, want ErrClosed", err)
	}
}

// TestAdmissionPrecedesCompile checks Submit takes its admission slot
// before compiling the plan, so parked queries pin no compiled state:
// with the queue at capacity, even a plan that cannot compile (a Scan
// with no table — past the cheap nil-argument check, failed only by
// compile) is rejected with ErrAdmissionQueueFull (admission saw it
// first); once a slot frees, the same bad plan fails compile and
// releases its slot.
func TestAdmissionPrecedesCompile(t *testing.T) {
	checkQueryHygiene(t)
	pool, err := newPool(2, newAdmitter(1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	h1, err := pool.Submit(context.Background(), starPlan(44, 300_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillerErr := make(chan error, 1)
	go func() {
		h, err := pool.Submit(context.Background(), starPlan(45, 10), Options{})
		if err == nil {
			for range h.Out() {
			}
			err = h.Err()
		}
		fillerErr <- err
	}()
	waitQueued(t, pool.admit, 1)

	// Queue full: the uncompilable plan is turned away by admission,
	// not compile.
	if _, err := pool.Submit(context.Background(), &Scan{}, Options{}); !errors.Is(err, ErrAdmissionQueueFull) {
		t.Fatalf("Submit(bad plan) with full queue = %v, want ErrAdmissionQueueFull", err)
	}

	// Free the slot; the filler runs, then compile failures surface —
	// and must release their slot for the next valid Submit.
	for range h1.Out() {
	}
	if err := h1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := <-fillerErr; err != nil {
		t.Fatalf("filler query: %v", err)
	}
	if _, err := pool.Submit(context.Background(), &Scan{}, Options{}); err == nil || !strings.Contains(err.Error(), "scan without table") {
		t.Fatalf("Submit(bad plan) with free slot = %v, want compile error", err)
	}
	h3, err := pool.Submit(context.Background(), starPlan(46, 1000), Options{})
	if err != nil {
		t.Fatalf("Submit after compile failure did not get the slot back: %v", err)
	}
	for range h3.Out() {
	}
	if err := h3.Err(); err != nil {
		t.Fatal(err)
	}
}
