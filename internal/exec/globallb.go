package exec

// Global activation stealing for the multi-node engine — the real-data
// port of the simulation's protocol (internal/core/globallb.go, §3.2 and
// §4 of the paper).
//
// When a node's pool starves on a multi-node query (no activation in any
// queue of the fragment's current chain), a worker claims a steal round
// for the fragment and solicits offers from every peer node. Only probe
// activations qualify (condition iv of §3.2) and a queue must hold
// enough work to amortize the acquisition (condition ii); each candidate
// is scored by benefit/overhead — queued activations versus bytes to
// ship (the activations plus the hash-table buckets the thief has not
// already cached, per the stolen-queue cache of §4). The thief picks the
// most loaded provider among those offering a candidate, re-evaluates at
// request time, acquires half the queue (condition iii: do not overload
// the requester), copies the missing buckets into its node-local cache,
// and enqueues the activations on its own pool. The memory-fit condition
// (i) is vacuous in-process and dropped.
//
// A failed round parks the fragment (stealIdle) until a producer refills
// some peer queue past stealWakeThreshold — producer-driven retries in
// place of the simulation's timer pacing. Rounds are single-flight per
// fragment (stealBusy, claimed like a flush).

import "sync/atomic"

const (
	// minStealActs is the smallest acquisition worth a round trip;
	// condition (ii) admits a queue as a candidate only when half of it
	// (what a steal takes) reaches this.
	minStealActs = 2
	// stealSampleActs bounds how many queued activations an offer prices
	// (the paper's schedulers answer from summaries, not full scans).
	stealSampleActs = 4
	// stealWakeThreshold is the queue length at which a producer wakes
	// steal-idle peers.
	stealWakeThreshold = 2 * minStealActs
	// nominalTupleBytes prices a shipped tuple for the benefit/overhead
	// score, standing in for the simulation's cost-model TupleBytes.
	nominalTupleBytes = 48
)

// stealClaimLocked finds a fragment on this pool that should start a
// steal round: a multi-node query with stealing enabled whose current
// chain has probe work somewhere but no activation queued on this node.
// The claim is single-flight per fragment. Callers hold p.mu.
func (p *Pool) stealClaimLocked() *query {
	for _, q := range p.queries {
		mq := q.mq
		if mq == nil || mq.opt.DisableStealing || q.terminalLocked() ||
			q.stealBusy || q.stealIdle || len(q.parked) > 0 {
			continue
		}
		chain := mq.phys.chains[q.chain]
		queued, hasProbe := 0, false
		for _, op := range chain {
			queued += q.ops[op.id].queued
			if op.kind == opProbe {
				hasProbe = true
			}
		}
		if queued > 0 || !hasProbe {
			continue
		}
		q.stealBusy = true
		return q
	}
	return nil
}

// peerBacklog reports whether any peer fragment's current-chain probe
// queues hold at least stealWakeThreshold activations — the post-park
// re-probe that pairs with wakeThieves to make steal retries
// lost-wakeup-free: either the producer sees the thief's idle mark, or
// the thief sees the producer's backlog. Called without locks.
func (mq *mquery) peerBacklog(thief *query) bool {
	for j, fq := range mq.frags {
		if fq == thief {
			continue
		}
		p := mq.nodes.pools[j]
		p.mu.Lock()
		if !fq.terminalLocked() {
			chain := mq.phys.chains[fq.chain]
			for _, op := range chain {
				if op.kind == opProbe && fq.ops[op.id].queued >= stealWakeThreshold {
					p.mu.Unlock()
					return true
				}
			}
		}
		p.mu.Unlock()
	}
	return false
}

// stealOffer is one provider's answer to a starving solicitation.
type stealOffer struct {
	node  int
	op    *pop
	load  int // provider's total queued probe activations
	score float64
}

// stealRound drives one starving episode for the thief fragment:
// solicit, score, acquire. Returns true if activations were acquired.
// Called from the worker loop with no locks held.
func (mq *mquery) stealRound(thief *query) bool {
	atomic.AddInt64(&thief.stealRounds, 1)
	var best *stealOffer
	for j, fq := range mq.frags {
		if fq == thief {
			continue
		}
		if off := mq.solicit(thief, fq, j); off != nil {
			// The requester picks the most loaded provider among those
			// that offered a candidate.
			if best == nil || off.load > best.load {
				best = off
			}
		}
	}
	if best == nil {
		return false
	}

	// Request phase: re-evaluate at acquisition time — the provider's
	// state has moved since the offer. Condition (iii): acquire at most
	// half the queue, and only when half still amortizes the round, so
	// the provider is never emptied out (which would just ping-pong the
	// workload's tail between nodes).
	provider := mq.frags[best.node]
	p := mq.nodes.pools[best.node]
	p.mu.Lock()
	or := provider.ops[best.op.id]
	if provider.terminalLocked() || or.queued < 2*minStealActs {
		p.mu.Unlock()
		return false
	}
	acts := popOldestLocked(or, or.queued/2)
	p.mu.Unlock()

	buckets, bytes := thief.acquireBuckets(best.op, acts)
	// Stolen buckets are resident on the thief for the rest of the
	// query: charge them to the thief's budget (cache entries are never
	// re-shipped, so the charge is held until retirement).
	thief.chargeMem(bytes)

	tp := mq.nodes.pools[thief.node]
	tp.mu.Lock()
	if thief.aborted {
		tp.mu.Unlock()
		return false
	}
	to := thief.ops[best.op.id]
	for _, a := range acts {
		thief.enqueueLocked(to, a)
	}
	if thief.allowed != nil {
		tp.cond.Broadcast()
	} else {
		tp.wakeLocked(len(acts))
	}
	tp.mu.Unlock()

	atomic.AddInt64(&thief.steals, 1)
	atomic.AddInt64(&thief.stolenActs, int64(len(acts)))
	atomic.AddInt64(&thief.stolenBuckets, int64(buckets))
	atomic.AddInt64(&thief.stolenBucketByte, bytes)
	return true
}

// solicit evaluates provider fq's probe queues for the thief and returns
// its best candidate offer (or nil). Queue lengths are read under the
// provider's pool mutex; byte pricing runs on snapshots outside it, so
// user key functions never execute under an engine lock.
func (mq *mquery) solicit(thief, fq *query, node int) *stealOffer {
	type sampled struct {
		op     *pop
		queued int
		acts   []*activation
	}
	var cands []sampled
	load := 0
	p := mq.nodes.pools[node]
	p.mu.Lock()
	if fq.terminalLocked() {
		p.mu.Unlock()
		return nil
	}
	chain := mq.phys.chains[fq.chain]
	for _, op := range chain {
		if op.kind != opProbe {
			continue
		}
		// A spilled join is not stealable: the provider's (or thief's)
		// hash table lives in partition files, not in shippable buckets —
		// its probe activations only partition rows to provider-local
		// spill files. Spill state is fixed before the probe chain
		// starts, so the check is stable for the whole round.
		if fq.spilled(op) || thief.spilled(op) {
			continue
		}
		or := fq.ops[op.id]
		load += or.queued
		// Condition (ii): half the queue (what a steal takes) must still
		// amortize the round.
		if or.queued < 2*minStealActs {
			continue
		}
		s := sampled{op: op, queued: or.queued}
		for _, qq := range or.queues {
			for i := len(qq) - 1; i >= 0 && len(s.acts) < stealSampleActs; i-- {
				s.acts = append(s.acts, qq[i])
			}
			if len(s.acts) >= stealSampleActs {
				break
			}
		}
		cands = append(cands, s)
	}
	p.mu.Unlock()

	var best *stealOffer
	for _, s := range cands {
		bytes := mq.shipEstimate(thief, s.op, s.acts)
		// Memory governance: a thief does not acquire buckets its budget
		// cannot hold (the real-engine form of §3.2's memory-fit
		// condition (i), vacuous only when ungoverned). On a broker
		// engine the headroom is the thief's lease slack plus the
		// unleased pool remainder.
		if thief.memBudget > 0 && bytes > thief.memHeadroom() {
			continue
		}
		score := float64(s.queued) / (1 + float64(bytes)/1024)
		if best == nil || score > best.score {
			best = &stealOffer{node: node, op: s.op, score: score}
		}
	}
	if best != nil {
		best.load = load
	}
	return best
}

// shipEstimate prices acquiring the sampled activations: the rows
// themselves plus the hash-table buckets their keys touch that the thief
// has not already cached. Activation batches are immutable once
// emitted, and build hash tables are complete before any probe runs, so
// no locks are needed. Key hashing runs vectorized over each sampled
// batch with a throwaway scratch (this is the cold steal path).
func (mq *mquery) shipEstimate(thief *query, op *pop, acts []*activation) int64 {
	var cache bucketCache
	if c := thief.ops[op.id].cache.Load(); c != nil {
		cache = *c
	}
	key := op.join.ProbeKey
	var vs vecScratch
	var bytes int64
	var seen map[int]bool
	for _, a := range acts {
		bytes += int64(a.b.N) * nominalTupleBytes
		hs := keyHashes(a.b, op.keyCol, key, &vs)
		for i := 0; i < a.b.N; i++ {
			g := int(hs[i] % uint64(mq.buckets))
			owner := g % mq.n
			if owner == thief.node || seen[g] || cache[g] != nil {
				continue
			}
			if seen == nil {
				seen = make(map[int]bool)
			}
			seen[g] = true
			src := mq.frags[owner].ops[op.partner.id]
			bytes += int64(src.stripeRows[g/mq.n]) * nominalTupleBytes
		}
	}
	return bytes
}

// popOldestLocked removes up to n of the operator's oldest queued
// activations, round-robin across worker queues (workers pop newest
// first, so stealing from the front minimizes contention with the
// provider's own picks). Callers hold the provider's pool mutex.
func popOldestLocked(or *opRun, n int) []*activation {
	acts := make([]*activation, 0, n)
	for len(acts) < n && or.queued > 0 {
		for i := range or.queues {
			qq := or.queues[i]
			if len(qq) == 0 {
				continue
			}
			acts = append(acts, qq[0])
			or.queues[i] = qq[1:]
			or.queued--
			if len(acts) >= n || or.queued == 0 {
				break
			}
		}
	}
	return acts
}

// acquireBuckets maps into the thief's node-local cache every remote
// hash-table bucket the stolen rows will probe, pricing the transfers
// as shipped bytes. Buckets already cached by an earlier steal cost
// nothing (§4's stolen-queue cache). A cached bucket shares the owner's
// stripe store — stores are immutable once the build barrier passes and
// probes begin, so sharing is safe in-process, while the
// benefit/overhead score still charges the bytes a real network ship
// would move. Single writer per fragment (rounds are single-flight),
// readers go through the atomic pointer.
func (q *query) acquireBuckets(op *pop, acts []*activation) (copied int, bytes int64) {
	mq := q.mq
	po := q.ops[op.id]
	var old bucketCache
	if c := po.cache.Load(); c != nil {
		old = *c
	}
	var fresh bucketCache
	key := op.join.ProbeKey
	var vs vecScratch
	for _, a := range acts {
		hs := keyHashes(a.b, op.keyCol, key, &vs)
		for i := 0; i < a.b.N; i++ {
			g := int(hs[i] % uint64(mq.buckets))
			owner := g % mq.n
			if owner == q.node || old[g] != nil || fresh[g] != nil {
				continue
			}
			src := mq.frags[owner].ops[op.partner.id]
			stripe := src.stripes[g/mq.n]
			if fresh == nil {
				fresh = make(bucketCache, len(old)+4)
				for g2, m := range old {
					fresh[g2] = m
				}
			}
			fresh[g] = stripe
			copied++
			bytes += int64(src.stripeRows[g/mq.n]) * nominalTupleBytes
		}
	}
	if fresh != nil {
		po.cache.Store(&fresh)
	}
	return copied, bytes
}
