package exec

// Aggregation on top of the join pipeline: the decision-support queries
// that motivate the paper (§1, data-warehouse workloads) end in a group-by
// over the join result. Aggregation runs as parallel partial aggregation:
// each pool worker folds the root-output batches it produced into a
// private hash table as they stream (no materialized intermediate result,
// no synchronization on the hot path), and the partials merge once at
// query retirement.

import (
	"context"
	"fmt"
	"sort"

	"hierdb/internal/vec"
)

// AggFunc identifies an aggregate function.
type AggFunc int

const (
	// Count counts rows per group.
	Count AggFunc = iota
	// Sum sums a numeric column per group.
	Sum
	// Min keeps the per-group minimum of a numeric column.
	Min
	// Max keeps the per-group maximum.
	Max
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// Aggregation is one aggregate over the input rows.
type Aggregation struct {
	Func AggFunc
	// Arg extracts the numeric argument (ignored for Count). The value
	// must be an int, int64 or float64.
	Arg func(Row) float64
}

// GroupBy describes a grouped aggregation over a plan's output.
type GroupBy struct {
	// Key extracts the (comparable) group key.
	Key KeyFunc
	// Aggs lists the aggregates; output rows are [key, agg0, agg1, ...].
	Aggs []Aggregation
}

type groupState struct {
	key  any
	vals []float64
	n    int64
}

// validateGroupBy checks a group-by description before execution.
func validateGroupBy(gb *GroupBy) error {
	if gb == nil || gb.Key == nil {
		return fmt.Errorf("exec: group-by without key")
	}
	for i, a := range gb.Aggs {
		if a.Func != Count && a.Arg == nil {
			return fmt.Errorf("exec: aggregate %d (%v) without Arg", i, a.Func)
		}
	}
	return nil
}

// foldGroups folds rows into one worker's private partial.
func foldGroups(m map[any]*groupState, gb *GroupBy, rows []Row) {
	for _, row := range rows {
		k := gb.Key(row)
		g := m[k]
		if g == nil {
			g = &groupState{key: k, vals: make([]float64, len(gb.Aggs))}
			for i, a := range gb.Aggs {
				switch a.Func {
				case Min:
					g.vals[i] = 1e308
				case Max:
					g.vals[i] = -1e308
				}
			}
			m[k] = g
		}
		g.n++
		for i, a := range gb.Aggs {
			switch a.Func {
			case Count:
			case Sum:
				g.vals[i] += a.Arg(row)
			case Min:
				if v := a.Arg(row); v < g.vals[i] {
					g.vals[i] = v
				}
			case Max:
				if v := a.Arg(row); v > g.vals[i] {
					g.vals[i] = v
				}
			}
		}
	}
}

// foldGroupsBatch folds one columnar result batch into worker w's
// private partial. With a resolved group-key column the key is the
// column's boxed value (already an interface word — no re-boxing);
// otherwise the key closure runs over a reused scratch row. Arg
// closures also see the scratch row: they return scalars, so reuse is
// safe.
//
//hierdb:hotpath
func (q *query) foldGroupsBatch(m map[any]*groupState, w int, b *vec.Batch) {
	gb := q.gb
	vs := &q.vscratch[w]
	var keyCol *vec.Col
	if q.gbKeyCol >= 0 && q.gbKeyCol < len(b.Cols) {
		keyCol = &b.Cols[q.gbKeyCol]
	}
	needRow := keyCol == nil
	for _, a := range gb.Aggs {
		if a.Func != Count {
			needRow = true
		}
	}
	scratch := vs.rowScratch(len(b.Cols) + 1)
	for i := 0; i < b.N; i++ {
		var row Row
		if needRow {
			row = b.ReadRow(i, scratch)
		}
		var k any
		if keyCol != nil {
			k = keyCol.Box[keyCol.Pos(i)]
		} else {
			k = gb.Key(row)
		}
		g := m[k]
		if g == nil {
			g = &groupState{key: k, vals: make([]float64, len(gb.Aggs))}
			for gi, a := range gb.Aggs {
				switch a.Func {
				case Min:
					g.vals[gi] = 1e308
				case Max:
					g.vals[gi] = -1e308
				}
			}
			m[k] = g
		}
		g.n++
		for gi, a := range gb.Aggs {
			switch a.Func {
			case Count:
			case Sum:
				g.vals[gi] += a.Arg(row)
			case Min:
				if v := a.Arg(row); v < g.vals[gi] {
					g.vals[gi] = v
				}
			case Max:
				if v := a.Arg(row); v > g.vals[gi] {
					g.vals[gi] = v
				}
			}
		}
	}
}

// mergePartials folds any number of partial aggregation states into one.
// The multi-node engine uses it twice: once per node over the node's
// worker partials, then once at retirement over the per-node results.
func mergePartials(partials []map[any]*groupState, gb *GroupBy) map[any]*groupState {
	merged := make(map[any]*groupState)
	for _, m := range partials {
		for k, g := range m {
			t := merged[k]
			if t == nil {
				merged[k] = g
				continue
			}
			t.n += g.n
			for i, a := range gb.Aggs {
				switch a.Func {
				case Count:
				case Sum:
					t.vals[i] += g.vals[i]
				case Min:
					if g.vals[i] < t.vals[i] {
						t.vals[i] = g.vals[i]
					}
				case Max:
					if g.vals[i] > t.vals[i] {
						t.vals[i] = g.vals[i]
					}
				}
			}
		}
	}
	return merged
}

// groupSpillRows renders a partial's group states as spill rows
// [key, n, val0, val1, ...] — the disk form of a memory-governed
// partial that outgrew its budget.
func groupSpillRows(m map[any]*groupState, gb *GroupBy) []Row {
	out := make([]Row, 0, len(m))
	for _, g := range m {
		row := make(Row, 0, 2+len(gb.Aggs))
		row = append(row, g.key, g.n)
		for _, v := range g.vals {
			row = append(row, v)
		}
		out = append(out, row)
	}
	return out
}

// mergeSpilledGroups folds decoded spill rows (groupSpillRows form)
// back into a merged partial, combining with the same semantics as
// mergePartials.
func mergeSpilledGroups(m map[any]*groupState, gb *GroupBy, rows []Row) {
	for _, row := range rows {
		k := row[0]
		n := row[1].(int64)
		g := m[k]
		if g == nil {
			g = &groupState{key: k, n: n, vals: make([]float64, len(gb.Aggs))}
			for i := range gb.Aggs {
				g.vals[i] = row[2+i].(float64)
			}
			m[k] = g
			continue
		}
		g.n += n
		for i, a := range gb.Aggs {
			v := row[2+i].(float64)
			switch a.Func {
			case Count:
			case Sum:
				g.vals[i] += v
			case Min:
				if v < g.vals[i] {
					g.vals[i] = v
				}
			case Max:
				if v > g.vals[i] {
					g.vals[i] = v
				}
			}
		}
	}
}

// groupsToRows renders merged group states as output rows, ordered
// deterministically by formatted key.
func groupsToRows(merged map[any]*groupState, gb *GroupBy) []Row {
	out := make([]Row, 0, len(merged))
	for _, g := range merged {
		row := Row{g.key}
		for i, a := range gb.Aggs {
			if a.Func == Count {
				row = append(row, g.n)
			} else {
				row = append(row, g.vals[i])
			}
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i][0]) < fmt.Sprint(out[j][0])
	})
	return out
}

// ExecuteGroupBy runs the plan and folds its output through the group-by,
// returning one row per group ordered deterministically by formatted key.
// Like Execute, it is a thin wrapper over a throwaway single-query pool.
func ExecuteGroupBy(ctx context.Context, root Node, gb *GroupBy, opt Options) ([]Row, *Stats, error) {
	return runOneShot(opt.Workers, func(p *Pool) (*Handle, error) {
		return p.SubmitGroupBy(ctx, root, gb, opt)
	})
}
