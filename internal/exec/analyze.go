package exec

// ANALYZE: one pass over a table computing the catalog statistics the
// cost-based planning bridge feeds the optimizer — exact cardinality,
// average decoded tuple width, and per-column linear-counting distinct
// estimates. Resident tables are walked through their cached columnar
// form; file-backed tables stream chunk by chunk, so a table much
// larger than memory is analyzed at one chunk of residency.
//
// Hashing reuses the engine's key-hash family (mix64 for the int
// family and float bits, FNV-1a for strings, the precomputed
// nil/bool fallbacks), so the distinct estimate of a join-key column
// is computed over exactly the hash distribution the join will see.

import (
	"fmt"
	"math"

	"hierdb/internal/catalog"
	"hierdb/internal/vec"
)

// Analyze scans the table once and returns its statistics. It does not
// mutate the table; callers (the DB facade) decide where the result is
// cached.
func Analyze(t *Table) (*catalog.TableStats, error) {
	if t == nil {
		return nil, fmt.Errorf("exec: analyze of nil table")
	}
	st := &catalog.TableStats{Table: t.Name, Cols: make([]catalog.ColStats, len(t.Cols))}
	for i, name := range t.Cols {
		st.Cols[i].Name = name
	}
	counters := make([]catalog.DistinctCounter, len(t.Cols))
	var bytes float64
	if f := t.File; f != nil {
		for ci := 0; ci < f.NumChunks(); ci++ {
			b, err := f.ReadChunk(ci)
			if err != nil {
				return nil, err
			}
			st.Rows += int64(b.N)
			bytes += analyzeBatch(b, counters, st.Cols)
		}
	} else {
		b := columnize(t)
		st.Rows = int64(b.N)
		bytes = analyzeBatch(b, counters, st.Cols)
	}
	for i := range counters {
		st.Cols[i].Distinct = counters[i].Estimate()
	}
	if st.Rows > 0 {
		st.AvgRowBytes = bytes / float64(st.Rows)
	}
	return st, nil
}

// analyzeBatch folds one columnar batch into the per-column counters
// and returns the decoded bytes it represents.
func analyzeBatch(b *vec.Batch, counters []catalog.DistinctCounter, cols []catalog.ColStats) float64 {
	var bytes float64
	nc := len(b.Cols)
	if nc > len(counters) {
		nc = len(counters)
	}
	for ci := 0; ci < nc; ci++ {
		c := &b.Cols[ci]
		d := &counters[ci]
		cs := &cols[ci]
		for i := 0; i < b.N; i++ {
			pos := c.Pos(i)
			if c.NullAt(pos) {
				cs.Nulls++
				bytes++
				continue
			}
			switch {
			case c.Kind.IntFamily():
				d.Add(mix64(uint64(c.I64[pos])))
				bytes += 8
			case c.Kind == vec.Float64:
				d.Add(mix64(math.Float64bits(c.F64[pos])))
				bytes += 8
			case c.Kind == vec.String:
				s := c.Str[pos]
				d.Add(fnvString(s))
				bytes += float64(len(s)) + 16
			case c.Kind == vec.Bool:
				if c.B[pos] {
					d.Add(hTrue)
				} else {
					d.Add(hFalse)
				}
				bytes++
			default:
				v := c.Box[pos]
				if vec.IsAbsent(v) {
					// Ragged-row padding: the position holds no value.
					cs.Nulls++
					continue
				}
				d.Add(keyHash64(v))
				bytes += boxedBytes(v)
			}
		}
	}
	return bytes
}

// boxedBytes estimates the decoded width of one boxed value of an
// Any-kind column.
func boxedBytes(v any) float64 {
	switch s := v.(type) {
	case string:
		return float64(len(s)) + 16
	case bool:
		return 1
	case nil:
		return 1
	default:
		return 16
	}
}
