package exec

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// keysOwnedBy returns count distinct int keys whose owner node under a
// (nodes, stripes) configuration is node — the recipe for skewed
// workloads where redistribution concentrates all probe work on one
// node.
func keysOwnedBy(node, nodes, stripes, count int) []int {
	keys := make([]int, 0, count)
	for k := 0; len(keys) < count; k++ {
		if OwnerNode(k, nodes, stripes) == node {
			keys = append(keys, k)
		}
	}
	return keys
}

// skewPlan builds a fact-dim join whose every key is owned by node 0:
// scans stay balanced (tables are partitioned by row position), but all
// build and probe activations route to node 0, starving the peers.
func skewPlan(nodes, stripes, factRows, dimRows int) Node {
	hot := keysOwnedBy(0, nodes, stripes, dimRows)
	dim := &Table{Name: "dim", Cols: []string{"k", "v"}}
	for i, k := range hot {
		dim.Rows = append(dim.Rows, Row{k, fmt.Sprintf("d%d", i)})
	}
	fact := &Table{Name: "fact", Cols: []string{"k", "v"}}
	for i := 0; i < factRows; i++ {
		fact.Rows = append(fact.Rows, Row{hot[i%dimRows], i})
	}
	return &Join{
		Build:    &Scan{Table: dim},
		Probe:    &Scan{Table: fact},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	}
}

// TestGlobalStealOnSkewedWorkload: under total key skew onto node 0,
// the starving peer must acquire remote probe queues (steal counters
// fire), the result must match single-node execution exactly, and the
// bucket cache must bound copies at the owner's stripe count. With
// stealing disabled the same workload reports zero steals.
func TestGlobalStealOnSkewedWorkload(t *testing.T) {
	checkQueryHygiene(t)
	const (
		nodes    = 2
		stripes  = 8
		factRows = 60_000
		dimRows  = 500
	)
	plan := skewPlan(nodes, stripes, factRows, dimRows)
	want, _, err := Execute(context.Background(), plan, Options{Workers: 4, Stripes: stripes})
	if err != nil {
		t.Fatal(err)
	}

	ns := newNodesT(t, nodes, 4)
	var st *Stats
	// The steal depends on scheduling (a peer must starve while the hot
	// node holds a queue); with ~200 probe activations funneled to node
	// 0 it fires essentially always — retry a few times to be safe.
	for attempt := 0; attempt < 5; attempt++ {
		h, err := ns.Submit(context.Background(), plan, Options{Stripes: stripes})
		if err != nil {
			t.Fatal(err)
		}
		got := collectHandle(t, h)
		sameRows(t, got, want)
		st = h.Stats()
		if st.Steals > 0 {
			break
		}
	}
	if st.Steals == 0 || st.StolenActivations == 0 {
		t.Fatalf("no steal fired on a fully skewed workload: %+v", st)
	}
	if st.StealRounds < st.Steals {
		t.Fatalf("rounds %d < successful steals %d", st.StealRounds, st.Steals)
	}
	// The starving peer must have stolen (node 0 can only re-steal work
	// node 1 acquired first), and per-node counters must sum to the
	// totals.
	if st.Nodes[1].Steals == 0 {
		t.Fatalf("starving peer never stole: %+v", st.Nodes)
	}
	var nodeSteals, nodeActs int64
	for _, nst := range st.Nodes {
		nodeSteals += nst.Steals
		nodeActs += nst.StolenActivations
	}
	if nodeSteals != st.Steals || nodeActs != st.StolenActivations {
		t.Fatalf("per-node steal counters do not sum: %d/%d vs %d/%d",
			nodeSteals, st.Steals, nodeActs, st.StolenActivations)
	}
	// The stolen-queue cache: a bucket is copied at most once, and node
	// 0 owns at most `stripes` buckets.
	if st.StolenBuckets == 0 || st.StolenBuckets > stripes {
		t.Fatalf("StolenBuckets = %d, want in [1, %d] (cache must prevent re-copies)",
			st.StolenBuckets, stripes)
	}
	if st.StolenBucketBytes <= 0 {
		t.Fatalf("StolenBucketBytes = %d", st.StolenBucketBytes)
	}

	// Steal-off: same engine, same plan, zero steals — and still the
	// right answer (the hot node does all probe work alone).
	h, err := ns.Submit(context.Background(), plan, Options{Stripes: stripes, DisableStealing: true})
	if err != nil {
		t.Fatal(err)
	}
	got := collectHandle(t, h)
	sameRows(t, got, want)
	if st := h.Stats(); st.Steals != 0 || st.StealRounds != 0 || st.StolenActivations != 0 {
		t.Fatalf("DisableStealing leaked steals: %+v", st)
	}
}

// TestStealStatsIsolatedPerQuery runs several skewed queries
// concurrently on one engine and checks each query's results and steal
// counters stay per-query (the -race leg of the steal path).
func TestStealStatsIsolatedPerQuery(t *testing.T) {
	checkQueryHygiene(t)
	const (
		nodes   = 2
		stripes = 8
		queries = 4
	)
	plan := skewPlan(nodes, stripes, 12_000, 200)
	want, _, err := Execute(context.Background(), plan, Options{Workers: 4, Stripes: stripes})
	if err != nil {
		t.Fatal(err)
	}
	ns := newNodesT(t, nodes, 2)
	var wg sync.WaitGroup
	stats := make([]*Stats, queries)
	errs := make([]error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := ns.Submit(context.Background(), plan, Options{Stripes: stripes})
			if err != nil {
				errs[i] = err
				return
			}
			var got []Row
			got = drainRows(h)
			if err := h.Err(); err != nil {
				errs[i] = err
				return
			}
			if len(got) != len(want) {
				errs[i] = fmt.Errorf("query %d: %d rows, want %d", i, len(got), len(want))
				return
			}
			stats[i] = h.Stats()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range stats {
		if st.ResultRows != int64(len(want)) {
			t.Fatalf("query %d: stats not isolated, ResultRows %d want %d", i, st.ResultRows, len(want))
		}
		var nodeSteals, nodeActs int64
		for _, nst := range st.Nodes {
			nodeSteals += nst.Steals
			nodeActs += nst.StolenActivations
		}
		if nodeSteals != st.Steals || nodeActs != st.StolenActivations {
			t.Fatalf("query %d: per-node steal counters do not sum: %d/%d vs %d/%d",
				i, nodeSteals, st.Steals, nodeActs, st.StolenActivations)
		}
		if st.Steals > 0 && st.StolenActivations == 0 {
			t.Fatalf("query %d: steals without stolen activations: %+v", i, st)
		}
	}
}
