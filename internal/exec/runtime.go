package exec

// Physical compilation and per-query runtime state. The worker loop that
// drives queries lives in pool.go: a resident Pool owns the worker
// goroutines, and every in-flight query contributes its operator queues
// to the shared scheduler.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hierdb/internal/spill"
	"hierdb/internal/vec"
)

type opKind int

const (
	opScan opKind = iota
	opBuild
	opProbe
)

// pop is a physical operator.
type pop struct {
	id       int
	kind     opKind
	scan     *Scan
	join     *Join
	partner  *pop
	consumer *pop
	chain    int
	est      float64

	// Columnar annotations (annotateVec): the operator's output column
	// kinds (nil = unknown, downstream uses boxed fallbacks), the
	// resolved key column in its input schema (-1 = closure fallback),
	// and, for builds, the hash-index representation.
	outKinds []vec.Kind
	keyCol   int
	idxKind  int
}

type physical struct {
	ops    []*pop
	chains [][]*pop
	root   *pop
}

// compile macro-expands the logical tree into scan/build/probe operators
// and pipeline chains in dependency order (§2.2).
func compile(root Node) (*physical, error) {
	p := &physical{}
	out, err := p.expand(root)
	if err != nil {
		return nil, err
	}
	p.root = out
	p.buildChains()
	return p, nil
}

func (p *physical) newOp(kind opKind) *pop {
	op := &pop{id: len(p.ops), kind: kind, chain: -1}
	p.ops = append(p.ops, op)
	return op
}

func (p *physical) expand(n Node) (*pop, error) {
	switch v := n.(type) {
	case *Scan:
		if v.Table == nil {
			return nil, fmt.Errorf("exec: scan without table")
		}
		op := p.newOp(opScan)
		op.scan = v
		op.est = v.estimate()
		return op, nil
	case *Join:
		if v.BuildKey == nil {
			return nil, fmt.Errorf("exec: join with nil BuildKey")
		}
		if v.ProbeKey == nil {
			return nil, fmt.Errorf("exec: join with nil ProbeKey")
		}
		b, err := p.expand(v.Build)
		if err != nil {
			return nil, err
		}
		pr, err := p.expand(v.Probe)
		if err != nil {
			return nil, err
		}
		bld := p.newOp(opBuild)
		prb := p.newOp(opProbe)
		bld.join, prb.join = v, v
		bld.partner, prb.partner = prb, bld
		b.consumer = bld
		pr.consumer = prb
		bld.est = v.Build.estimate()
		prb.est = v.estimate()
		return prb, nil
	case nil:
		return nil, fmt.Errorf("exec: nil plan node (missing join input?)")
	default:
		return nil, fmt.Errorf("exec: unknown node type %T", n)
	}
}

func (p *physical) buildChains() {
	for _, op := range p.ops {
		if op.kind != opScan {
			continue
		}
		chain := []*pop{op}
		cur := op
		for cur.consumer != nil {
			chain = append(chain, cur.consumer)
			if cur.consumer.kind == opBuild {
				break
			}
			cur = cur.consumer
		}
		id := len(p.chains)
		for _, c := range chain {
			c.chain = id
		}
		p.chains = append(p.chains, chain)
	}
	// Topological order: the chain building a hash table precedes the
	// chain probing it.
	n := len(p.chains)
	succ := make([][]int, n)
	indeg := make([]int, n)
	for _, op := range p.ops {
		if op.kind != opBuild {
			continue
		}
		succ[op.chain] = append(succ[op.chain], op.partner.chain)
		indeg[op.partner.chain]++
	}
	var order []int
	ready := []int{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		c := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, c)
		for _, s := range succ[c] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	reordered := make([][]*pop, n)
	for newID, oldID := range order {
		reordered[newID] = p.chains[oldID]
		for _, op := range reordered[newID] {
			op.chain = newID
		}
	}
	p.chains = reordered
}

// activation is a self-contained unit of work: a scan morsel, a batch
// of pipelined columns, or a spill-phase step of a memory-governed
// join.
type activation struct {
	op *pop
	b  *vec.Batch
	// morsel bounds for scans. For a scan over a file-backed table the
	// activation is one chunk: lo is the chunk index and hi = lo+1.
	lo, hi int
	// dest is the node a routed batch is bound for (multi-node queries
	// only; scan morsels and single-node batches leave it 0).
	dest int
	// spill carries the payload of a spill-phase activation (load a
	// partition / probe a spilled batch); nil for ordinary activations.
	spill *spillAct
	// res is the refcounted memory charge of the decoded chunk this
	// activation's batch shares storage with (governed file scans only;
	// the worker loop propagates it downstream and releases it).
	res *chunkRes
}

// opRun is the runtime state of one operator.
type opRun struct {
	op      *pop
	queues  [][]*activation // one per worker (primary-queue affinity)
	rr      int             // enqueue round-robin cursor
	queued  int             // activations across all queues (pick fast path)
	pending int64           // queued + in-process activations
	prodEnd bool            // no more input will arrive
	done    bool

	// hash table (build/probe pairs share via partner): one columnar
	// stripe store per lock stripe.
	stripes []*stripeStore
	locks   []sync.Mutex //hierdb:lock stripe
	// stripeRows counts tuples per stripe (guarded by the stripe lock);
	// the steal protocol prices bucket shipping with it.
	stripeRows []int

	// Memory governance (build operators of governed queries only).
	// spill is the join's partitioned-execution state; stripeSpilled
	// marks stripes drained by the spill transition (guarded by the
	// stripe lock), diverting racing inserts to the partition files.
	spill         *joinSpill
	stripeSpilled []bool

	// cache holds hash-table buckets acquired from other nodes by the
	// steal protocol, keyed by global bucket id (probe operators of
	// multi-node queries only). Copy-on-write: rounds are single-flight
	// per node, so the only writer swaps the whole map.
	cache atomic.Pointer[bucketCache]
}

// bucketCache maps global bucket ids to hash-table stripe stores
// acquired from their owner node. The stores are immutable by the time
// a steal can observe them (probing starts after the build barrier),
// so acquisition shares them and accounts the shipped bytes.
type bucketCache = map[int]*stripeStore

// query is one in-flight execution on a Pool: a compiled plan, its
// operator queues and chain cursor, a bounded sink channel streaming
// result batches, and per-query accounting. All fields below the sync
// markers are guarded by the pool mutex unless noted.
type query struct {
	id   int64
	pool *Pool
	p    *physical
	opt  Options
	gb   *GroupBy

	// ctx is done when the caller's context is cancelled, the consumer
	// closes the result stream, or the query retires.
	ctx    context.Context //hierdb:ctx-in-struct query lifetime: the struct is the cancellation scope
	cancel context.CancelFunc

	// sink carries result batches to the consumer; its bound provides
	// backpressure instead of materializing the full result set. Closed
	// at retirement.
	sink chan *vec.Batch
	// finished is closed when the query is fully retired: no worker will
	// touch it again, err and stats are final.
	finished chan struct{}

	ops      []*opRun
	chain    int  // current pipeline chain
	inflight int  // activations being processed by workers right now
	anchored int  // workers whose affinity anchor is this query
	done     bool // all chains completed
	aborted  bool // cancelled or failed; queues cleared
	retired  bool // removed from the pool; finalize pending or done
	err      error

	// parked holds result batches that could not be sent because the
	// sink was full. While parked is non-empty the pool pauses this
	// query's production (bounding parked at ~workers batches) and lets
	// a single flusher worker do the blocking sends, so a stalled
	// consumer captures at most one worker instead of the whole pool.
	parked   []*vec.Batch
	flushing bool // a flusher worker is (or is about to be) draining parked

	// Group-by delivery: once all chains are done, a worker claims the
	// merge job (merging), folds the partials into final batches, and
	// parks them — the same flusher machinery then streams them out, so
	// group-by output gets the identical backpressure/cancellation/Close
	// guarantees as the streaming path. mergeDone gates retirement.
	merging   bool
	mergeDone bool

	// static (FP) assignment: allowed[w] is the operator set of worker w
	// for the current chain; nil in dynamic mode.
	allowed []map[*pop]bool

	// Multi-node fragment state. mq links the fragment to its query's
	// coordinator (nil for single-node queries) and node is the fragment's
	// node index. done/chain are driven by the coordinator for fragments;
	// sink/ctx/cancel are shared across the query's fragments.
	mq   *mquery
	node int
	// stealBusy marks a steal round in flight for this fragment (claimed
	// like flushing); stealIdle parks further rounds after a failed one
	// until a producer refills a peer queue past the wake threshold. Both
	// are guarded by the fragment's pool mutex.
	stealBusy bool
	stealIdle bool
	// Per-fragment traffic and steal counters, accessed atomically (a
	// steal round can race retirement).
	shipIn, shipOut                                                  int64
	stealRounds, steals, stolenActs, stolenBuckets, stolenBucketByte int64

	// varenas holds one columnar arena per worker: selection vectors,
	// gather targets and materialized rows are carved from large chunks
	// instead of allocated per batch; vscratch the matching reusable
	// kernel state (hash vectors, match triples, routing lists).
	varenas  []vec.Arena
	vscratch []vecScratch
	// gbKeyCol is the group-by key's resolved column in the root
	// operator's output schema (-1 = closure fallback).
	gbKeyCol int
	// partials holds per-worker aggregation state when gb != nil; worker
	// w touches only partials[w].
	partials []map[any]*groupState

	// Memory governance (all zero/nil when Options.MemoryPerNode == 0 —
	// the governed state simply does not exist on the default hot path).
	// memBudget is this fragment's byte budget; memUsed its current
	// charge (hash-table entries, loaded spill partitions, group-by
	// partials, stolen bucket caches). On a broker engine memBudget is
	// the node's shared pool size and the fragment's usage must instead
	// stay covered by lease, topped up from (and trimmed back to) the
	// node's broker.
	memBudget int64
	memUsed   atomic.Int64
	broker    *memBroker
	lease     memLease
	// spillMu guards the spill directory and file registry (innermost
	// after joinSpill.mu; never held while taking scheduler locks).
	spillMu    sync.Mutex //hierdb:lock spillmu
	spillDir   string
	spillFiles []*spill.File
	// Per-worker group-by spill state: worker w touches only index w.
	gbFiles   []*spill.File
	gbCharged []int64
	gbGroups  []int
	// Spill counters (sealed into Stats at retirement).
	spilledParts atomic.Int64
	spilledBytes atomic.Int64
	spillPhases  atomic.Int64
	// Disk-scan counters (file-backed tables; sealed like the spill
	// counters).
	chunksScanned atomic.Int64
	chunksSkipped atomic.Int64
	diskBytes     atomic.Int64

	stats Stats
	acts  int64
	// opRows counts rows produced per operator id (atomic adds from the
	// worker loop; sealed into Stats.OpRows at retirement).
	opRows []int64
}

// newQuery builds per-query runtime state. nodes is the engine's node
// count (key routing spreads a build table across nodes, so fragment
// hash-table presizing divides by it); sink, when non-nil, is a
// multi-node query's shared result channel — fragments then skip the
// private sink and finished channels entirely (the coordinator's
// finished is the one that closes).
func newQuery(p *Pool, phys *physical, gb *GroupBy, opt Options, ctx context.Context, cancel context.CancelFunc, nodes int, sink chan *vec.Batch) *query {
	q := &query{
		pool:   p,
		p:      phys,
		gb:     gb,
		opt:    opt,
		ctx:    ctx,
		cancel: cancel,
		sink:   sink,
	}
	if sink == nil {
		q.sink = make(chan *vec.Batch, 2*opt.Workers)
		q.finished = make(chan struct{})
	}
	for _, op := range phys.ops {
		or := &opRun{op: op, queues: make([][]*activation, opt.Workers)}
		if op.kind == opBuild {
			or.stripes = make([]*stripeStore, opt.Stripes)
			hint := int(op.est)/(opt.Stripes*nodes) + 1
			for i := range or.stripes {
				or.stripes[i] = newStripeStore(op.outKinds, op.idxKind, op.keyCol, hint)
			}
			or.locks = make([]sync.Mutex, opt.Stripes)
			or.stripeRows = make([]int, opt.Stripes)
			if opt.MemoryPerNode > 0 {
				or.spill = &joinSpill{}
				or.stripeSpilled = make([]bool, opt.Stripes)
			}
		}
		q.ops = append(q.ops, or)
	}
	q.varenas = make([]vec.Arena, opt.Workers)
	q.vscratch = make([]vecScratch, opt.Workers)
	q.gbKeyCol = -1
	if gb != nil && phys.root.outKinds != nil {
		q.gbKeyCol = resolveKeyCol(gb.Key, len(phys.root.outKinds))
	}
	q.stats.PerWorker = make([]int64, opt.Workers)
	q.opRows = make([]int64, len(phys.ops))
	if opt.Static {
		q.allowed = make([]map[*pop]bool, opt.Workers)
	}
	if gb != nil {
		q.partials = make([]map[any]*groupState, opt.Workers)
	}
	if opt.MemoryPerNode > 0 {
		q.memBudget = opt.MemoryPerNode
		if p.broker != nil {
			// Broker engine: the shared pool is the capacity reference
			// (spill-load floors, repartition decisions); charges are
			// covered by leases instead of the private split.
			q.broker = p.broker
			q.memBudget = p.broker.budget
		}
		if gb != nil {
			q.gbFiles = make([]*spill.File, opt.Workers)
			q.gbCharged = make([]int64, opt.Workers)
			q.gbGroups = make([]int, opt.Workers)
		}
	}
	return q
}

// terminalLocked reports whether the query no longer accepts scheduling.
func (q *query) terminalLocked() bool { return q.done || q.aborted }

// failLocked aborts the query: queued activations and parked output are
// dropped so no worker picks from it again, and the query context is
// cancelled so workers blocked on sink sends release promptly. A done
// query that has not yet retired (its output still undelivered) can
// still be failed — only retirement makes the outcome final. Callers
// hold the pool mutex.
func (q *query) failLocked(err error) {
	if q.aborted || q.retired {
		return
	}
	q.aborted = true
	if err == nil {
		err = context.Canceled
	}
	q.err = err
	for _, or := range q.ops {
		for i := range or.queues {
			or.queues[i] = nil
		}
		or.queued = 0
	}
	q.parked = nil
	q.cancel()
}

// startChainLocked seeds the driver scan's morsels and, in static mode,
// allocates workers to the chain's operators by estimated cost. Callers
// hold the pool mutex.
func (q *query) startChainLocked(c int) {
	q.chain = c
	chain := q.p.chains[c]
	driver := chain[0]
	or := q.ops[driver.id]
	seeded := 0
	if ft := driver.scan.Table.File; ft != nil {
		// File-backed driver: one activation per chunk (the chunk is the
		// morsel — decode cost, not row count, is the work unit).
		for ci := 0; ci < ft.NumChunks(); ci++ {
			q.enqueueLocked(or, &activation{op: driver, lo: ci, hi: ci + 1})
			seeded++
		}
	} else {
		total := q.scanSrc(driver).N
		for lo := 0; lo < total; lo += q.opt.Morsel {
			hi := lo + q.opt.Morsel
			if hi > total {
				hi = total
			}
			q.enqueueLocked(or, &activation{op: driver, lo: lo, hi: hi})
			seeded++
		}
	}
	if seeded == 0 {
		// Degenerate input: the scan is born finished.
		or.prodEnd = true
		q.opFinishedLocked(or)
		return
	}
	or.prodEnd = true
	if q.opt.Static {
		q.assignStatic(chain)
	}
	q.pool.cond.Broadcast()
}

// assignStatic distributes workers over the chain's operators
// proportionally to estimated cost — the FP baseline. Callers hold the
// pool mutex.
func (q *query) assignStatic(chain []*pop) {
	w := q.opt.Workers
	for i := range q.allowed {
		q.allowed[i] = make(map[*pop]bool)
	}
	if len(chain) <= w {
		counts := make([]int, len(chain))
		for i := range chain {
			counts[i] = 1
		}
		assigned := len(chain)
		for assigned < w {
			best, bestRatio := 0, -1.0
			for i, op := range chain {
				r := op.est / float64(counts[i])
				if r > bestRatio {
					bestRatio, best = r, i
				}
			}
			counts[best]++
			assigned++
		}
		wi := 0
		for i, op := range chain {
			for j := 0; j < counts[i]; j++ {
				q.allowed[wi][op] = true
				wi++
			}
		}
		return
	}
	loads := make([]float64, w)
	order := make([]int, len(chain))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if chain[order[j]].est > chain[order[i]].est {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, oi := range order {
		best := 0
		for wi := 1; wi < w; wi++ {
			if loads[wi] < loads[best] {
				best = wi
			}
		}
		loads[best] += chain[oi].est
		q.allowed[best][chain[oi]] = true
	}
}

// enqueueLocked adds an activation to the operator's next queue
// round-robin. Callers hold the pool mutex.
//
//hierdb:hotpath
func (q *query) enqueueLocked(or *opRun, a *activation) {
	or.queues[or.rr] = append(or.queues[or.rr], a)
	or.rr = (or.rr + 1) % len(or.queues)
	or.queued++
	or.pending++
}

// pickLocked selects the next activation of this query for worker w:
// downstream operators of the current chain first (draining pipelines
// bounds memory, playing the role of the paper's flow control), the
// worker's primary queue before other queues of the same operator.
// Callers hold the pool mutex.
//
//hierdb:hotpath
func (q *query) pickLocked(w int) *activation {
	chain := q.p.chains[q.chain]
	for i := len(chain) - 1; i >= 0; i-- {
		op := chain[i]
		if q.allowed != nil && !q.allowed[w][op] {
			continue
		}
		or := q.ops[op.id]
		if a := q.popQueue(or, w); a != nil {
			return a
		}
	}
	return nil
}

//hierdb:hotpath
func (q *query) popQueue(or *opRun, w int) *activation {
	if or.queued == 0 {
		return nil
	}
	if qq := or.queues[w]; len(qq) > 0 {
		a := qq[len(qq)-1]
		or.queues[w] = qq[:len(qq)-1]
		or.queued--
		return a
	}
	for i := range or.queues {
		if qq := or.queues[i]; len(qq) > 0 {
			a := qq[len(qq)-1]
			or.queues[i] = qq[:len(qq)-1]
			or.queued--
			return a
		}
	}
	return nil
}

// opFinishedLocked marks an operator done, propagates end-of-producer to
// its consumer, and advances to the next pipeline chain when the current
// one completes. A spilled probe operator is not finished but advanced:
// each time its pending count drains, the next spill partition's load
// activation is enqueued, until every partition is joined. Callers hold
// the pool mutex.
func (q *query) opFinishedLocked(or *opRun) {
	if a := q.spillNextLocked(or); a != nil {
		q.enqueueLocked(or, a)
		q.pool.cond.Broadcast()
		return
	}
	or.done = true
	if cns := or.op.consumer; cns != nil {
		co := q.ops[cns.id]
		co.prodEnd = true
		if co.pending == 0 && !co.done {
			q.opFinishedLocked(co)
			return
		}
	}
	// Advance the chain barrier when every operator of the current chain
	// is done.
	chain := q.p.chains[q.chain]
	for _, op := range chain {
		if !q.ops[op.id].done {
			q.pool.cond.Broadcast()
			return
		}
	}
	if q.chain+1 < len(q.p.chains) {
		q.startChainLocked(q.chain + 1)
		return
	}
	q.done = true
	q.pool.cond.Broadcast()
}

// sinkParkDelay is how long a worker waits on a full sink before parking
// the batch and moving on: long enough that an actively-draining
// consumer gets the cheap direct channel handoff, short enough that a
// stalled consumer cannot hold the worker.
const sinkParkDelay = time.Millisecond

// deliver hands an activation's result rows to the consumer: folded into
// the worker's private aggregation partial when the query has a group-by,
// streamed to the bounded sink otherwise. A full sink blocks for at most
// sinkParkDelay — then the batch is parked on the query, which pauses
// the query's production at pick time (backpressure) and hands the
// blocking send to a flusher, freeing this worker for other queries.
// timer is the calling worker's reusable park timer. Returns false if
// the query was cancelled before the batch could be delivered. Called
// without the pool mutex.
//
//hierdb:hotpath
func (q *query) deliver(w int, results *vec.Batch, timer **time.Timer) bool {
	if results == nil || results.N == 0 {
		return true
	}
	if q.gb != nil {
		m := q.partials[w]
		if m == nil {
			m = make(map[any]*groupState)
			q.partials[w] = m
		}
		q.foldGroupsBatch(m, w, results)
		if q.memBudget > 0 {
			if err := q.governGroupPartial(w); err != nil {
				q.spillFail(err)
				return false
			}
		}
		return true
	}
	select {
	case q.sink <- results:
		atomic.AddInt64(&q.stats.ResultRows, int64(results.N))
		return true
	case <-q.ctx.Done():
		return false
	default:
	}
	t := *timer
	if t == nil {
		t = time.NewTimer(sinkParkDelay)
		*timer = t
	} else {
		t.Reset(sinkParkDelay)
	}
	select {
	case q.sink <- results:
		stopParkTimer(t)
		atomic.AddInt64(&q.stats.ResultRows, int64(results.N))
		return true
	case <-q.ctx.Done():
		stopParkTimer(t)
		return false
	case <-t.C:
		p := q.pool
		p.mu.Lock()
		q.parked = append(q.parked, results)
		p.mu.Unlock()
		return true
	}
}

// stopParkTimer stops a park timer, draining its channel if it already
// fired, so the next Reset starts clean.
func stopParkTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// finalize completes retirement: seals stats, closes the sink and the
// finished channel, and releases the admission slot. All output —
// including merged group-by batches — has already been delivered (or
// dropped by an abort) before retirement, so finalize never blocks.
// Called exactly once, by whoever retired the query, without the pool
// mutex. A multi-node fragment instead reports to its coordinator,
// which closes the shared sink when the last fragment retires.
func (q *query) finalize() {
	q.releaseSpill()
	if q.broker != nil {
		q.broker.releaseAll(&q.lease)
	}
	if q.mq != nil {
		q.mq.fragRetired()
		return
	}
	q.stats.Activations = q.acts
	q.stats.OpRows = make([]int64, len(q.opRows))
	for i := range q.opRows {
		q.stats.OpRows[i] = atomic.LoadInt64(&q.opRows[i])
	}
	q.stats.SpilledPartitions = q.spilledParts.Load()
	q.stats.SpilledBytes = q.spilledBytes.Load()
	q.stats.SpillPhases = q.spillPhases.Load()
	q.stats.ChunksScanned = q.chunksScanned.Load()
	q.stats.ChunksSkipped = q.chunksSkipped.Load()
	q.stats.DiskBytesRead = q.diskBytes.Load()
	close(q.sink)
	close(q.finished)
	q.cancel()
	if q.pool.admit != nil {
		q.pool.admit.release()
	}
}

// watch aborts the query when its context is cancelled (caller cancel or
// Rows.Close) before it retires on its own. This is what makes
// cancellation prompt even when every worker is parked.
func (q *query) watch() {
	select {
	case <-q.ctx.Done():
		q.pool.abort(q, q.ctx.Err())
	case <-q.finished:
	}
}

// consumerKey is the partition key of rows flowing into an operator: a
// build op receives build-side rows, a probe op probe-side rows. The
// multi-node router sends each row to the node owning its key.
func consumerKey(c *pop) KeyFunc {
	if c.kind == opBuild {
		return c.join.BuildKey
	}
	return c.join.ProbeKey
}

// scanSrc is the columnar source of a scan operator: the node's table
// partition for a multi-node fragment, the whole table otherwise.
func (q *query) scanSrc(op *pop) *vec.Batch {
	if q.mq != nil {
		return q.mq.scanParts[op.id][q.node]
	}
	return columnize(op.scan.Table)
}

// countOpRows attributes one processed activation's produced rows to
// its operator: batches addressed to the operator's consumer, plus the
// root operator's result batch. Spill-phase fan-out (activations a
// partition load addresses to the producing operator itself) replays
// input that was already counted at production, so it is excluded.
//
//hierdb:hotpath
func (q *query) countOpRows(a *activation, outs []*activation, results *vec.Batch) {
	var n int64
	if results != nil {
		n = int64(results.N)
	}
	cons := a.op.consumer
	for _, out := range outs {
		if out.op == cons {
			n += int64(out.b.N)
		}
	}
	if n != 0 {
		atomic.AddInt64(&q.opRows[a.op.id], n)
	}
}

// process executes one activation outside the scheduler lock. It returns
// downstream batches and, for the root operator, a result batch.
//
//hierdb:hotpath
func (q *query) process(a *activation, w int) (outs []*activation, results *vec.Batch) {
	if a.spill != nil {
		switch a.spill.kind {
		case spillLoad:
			return q.processSpillLoad(a), nil
		case spillProbe:
			return q.processSpillProbe(a, w)
		}
	}
	switch a.op.kind {
	case opScan:
		if a.op.scan.Table.File != nil {
			return q.processScanFile(a, w)
		}
		return q.processScanVec(a, w)
	case opBuild:
		or := q.ops[a.op.id]
		if q.memBudget > 0 {
			if err := q.buildGoverned(or, a.b, w); err != nil {
				q.spillFail(err)
			}
			break
		}
		q.processBuildVec(a, w)
	case opProbe:
		bo := q.ops[a.op.partner.id]
		if sp := bo.spill; sp != nil && sp.active.Load() {
			// The build side spilled: probe input is partitioned to the
			// join's probe spill files and joined partition-wise once the
			// probe input is exhausted (spillNextLocked).
			if err := q.spillBatch(sp.probe, a.op.keyCol, a.op.join.ProbeKey, 0, a.b, &q.vscratch[w]); err != nil {
				q.spillFail(err)
			}
			break
		}
		return q.processProbeVec(a, w)
	}
	return outs, results
}
