package exec

// Physical compilation and the worker runtime.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

type opKind int

const (
	opScan opKind = iota
	opBuild
	opProbe
)

// pop is a physical operator.
type pop struct {
	id       int
	kind     opKind
	scan     *Scan
	join     *Join
	partner  *pop
	consumer *pop
	chain    int
	est      float64
}

type physical struct {
	ops    []*pop
	chains [][]*pop
	root   *pop
}

// compile macro-expands the logical tree into scan/build/probe operators
// and pipeline chains in dependency order (§2.2).
func compile(root Node) (*physical, error) {
	p := &physical{}
	out, err := p.expand(root)
	if err != nil {
		return nil, err
	}
	p.root = out
	p.buildChains()
	return p, nil
}

func (p *physical) newOp(kind opKind) *pop {
	op := &pop{id: len(p.ops), kind: kind, chain: -1}
	p.ops = append(p.ops, op)
	return op
}

func (p *physical) expand(n Node) (*pop, error) {
	switch v := n.(type) {
	case *Scan:
		if v.Table == nil {
			return nil, fmt.Errorf("exec: scan without table")
		}
		op := p.newOp(opScan)
		op.scan = v
		op.est = v.estimate()
		return op, nil
	case *Join:
		if v.BuildKey == nil || v.ProbeKey == nil {
			return nil, fmt.Errorf("exec: join without key functions")
		}
		b, err := p.expand(v.Build)
		if err != nil {
			return nil, err
		}
		pr, err := p.expand(v.Probe)
		if err != nil {
			return nil, err
		}
		bld := p.newOp(opBuild)
		prb := p.newOp(opProbe)
		bld.join, prb.join = v, v
		bld.partner, prb.partner = prb, bld
		b.consumer = bld
		pr.consumer = prb
		bld.est = v.Build.estimate()
		prb.est = v.estimate()
		return prb, nil
	case nil:
		return nil, fmt.Errorf("exec: nil node")
	default:
		return nil, fmt.Errorf("exec: unknown node type %T", n)
	}
}

func (p *physical) buildChains() {
	for _, op := range p.ops {
		if op.kind != opScan {
			continue
		}
		chain := []*pop{op}
		cur := op
		for cur.consumer != nil {
			chain = append(chain, cur.consumer)
			if cur.consumer.kind == opBuild {
				break
			}
			cur = cur.consumer
		}
		id := len(p.chains)
		for _, c := range chain {
			c.chain = id
		}
		p.chains = append(p.chains, chain)
	}
	// Topological order: the chain building a hash table precedes the
	// chain probing it.
	n := len(p.chains)
	succ := make([][]int, n)
	indeg := make([]int, n)
	for _, op := range p.ops {
		if op.kind != opBuild {
			continue
		}
		succ[op.chain] = append(succ[op.chain], op.partner.chain)
		indeg[op.partner.chain]++
	}
	var order []int
	ready := []int{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		c := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, c)
		for _, s := range succ[c] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	reordered := make([][]*pop, n)
	for newID, oldID := range order {
		reordered[newID] = p.chains[oldID]
		for _, op := range reordered[newID] {
			op.chain = newID
		}
	}
	p.chains = reordered
}

// activation is a self-contained unit of work: a scan morsel or a batch of
// pipelined rows.
type activation struct {
	op   *pop
	rows []Row
	// morsel bounds for scans
	lo, hi int
}

// opRun is the runtime state of one operator.
type opRun struct {
	op      *pop
	queues  [][]*activation // one per worker (primary-queue affinity)
	rr      int             // enqueue round-robin cursor
	pending int64           // queued + in-process activations
	prodEnd bool            // no more input will arrive
	done    bool

	// hash table (build/probe pairs share via partner).
	stripes []map[any][]Row
	locks   []sync.Mutex
}

type runState struct {
	p   *physical
	opt Options

	mu      sync.Mutex
	cond    *sync.Cond
	ops     []*opRun
	chain   int // current pipeline chain
	err     error
	done    bool
	waiting int

	// static (FP) assignment: allowed[w] is the operator set of worker w
	// for the current chain; nil in dynamic mode.
	allowed []map[*pop]bool

	results [][]Row
	// arenas holds one row arena per worker: result rows of the default
	// combine are carved out of large chunks instead of allocated one by
	// one (the dominant allocation of a probe-heavy plan).
	arenas []rowArena
	stats  Stats
	acts   int64
}

// rowArena bump-allocates row storage from fixed-size chunks. Carved rows
// are capacity-capped, so a later append by the caller copies out instead
// of clobbering a neighbour.
type rowArena struct {
	chunk []any
}

// arenaChunk is the arena chunk size in row slots (16 bytes each).
const arenaChunk = 16 * 1024

// concat returns a new row holding a then b, carved from the arena.
func (ar *rowArena) concat(a, b Row) Row {
	need := len(a) + len(b)
	if len(ar.chunk)+need > cap(ar.chunk) {
		size := arenaChunk
		if need > size {
			size = need
		}
		ar.chunk = make([]any, 0, size)
	}
	n := len(ar.chunk)
	ar.chunk = append(ar.chunk, a...)
	ar.chunk = append(ar.chunk, b...)
	return Row(ar.chunk[n:len(ar.chunk):len(ar.chunk)])
}

func (p *physical) run(ctx context.Context, opt Options) ([]Row, *Stats, error) {
	rs := &runState{p: p, opt: opt}
	rs.cond = sync.NewCond(&rs.mu)
	for _, op := range p.ops {
		or := &opRun{op: op, queues: make([][]*activation, opt.Workers)}
		if op.kind == opBuild {
			or.stripes = make([]map[any][]Row, opt.Stripes)
			hint := int(op.est)/opt.Stripes + 1
			for i := range or.stripes {
				or.stripes[i] = make(map[any][]Row, hint)
			}
			or.locks = make([]sync.Mutex, opt.Stripes)
		}
		rs.ops = append(rs.ops, or)
	}
	rs.results = make([][]Row, opt.Workers)
	rs.arenas = make([]rowArena, opt.Workers)
	rs.stats.PerWorker = make([]int64, opt.Workers)
	if opt.Static {
		rs.allowed = make([]map[*pop]bool, opt.Workers)
	}

	rs.mu.Lock()
	rs.startChain(0)
	rs.mu.Unlock()

	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rs.worker(ctx, w)
		}(w)
	}
	wg.Wait()
	if rs.err != nil {
		return nil, nil, rs.err
	}
	var out []Row
	for _, rws := range rs.results {
		out = append(out, rws...)
	}
	rs.stats.Activations = rs.acts
	rs.stats.ResultRows = int64(len(out))
	return out, &rs.stats, nil
}

// startChain seeds the driver scan's morsels and, in static mode,
// allocates workers to the chain's operators by estimated cost. Callers
// hold mu.
func (rs *runState) startChain(c int) {
	rs.chain = c
	chain := rs.p.chains[c]
	driver := chain[0]
	or := rs.ops[driver.id]
	rows := driver.scan.Table.Rows
	for lo := 0; lo < len(rows); lo += rs.opt.Morsel {
		hi := lo + rs.opt.Morsel
		if hi > len(rows) {
			hi = len(rows)
		}
		rs.enqueueLocked(or, &activation{op: driver, lo: lo, hi: hi})
	}
	if len(rows) == 0 {
		// Degenerate input: the scan is born finished.
		or.prodEnd = true
		rs.opFinishedLocked(or)
		return
	}
	or.prodEnd = true
	if rs.opt.Static {
		rs.assignStatic(chain)
	}
	rs.cond.Broadcast()
}

// assignStatic distributes workers over the chain's operators
// proportionally to estimated cost — the FP baseline. Callers hold mu.
func (rs *runState) assignStatic(chain []*pop) {
	w := rs.opt.Workers
	for i := range rs.allowed {
		rs.allowed[i] = make(map[*pop]bool)
	}
	if len(chain) <= w {
		counts := make([]int, len(chain))
		for i := range chain {
			counts[i] = 1
		}
		assigned := len(chain)
		for assigned < w {
			best, bestRatio := 0, -1.0
			for i, op := range chain {
				r := op.est / float64(counts[i])
				if r > bestRatio {
					bestRatio, best = r, i
				}
			}
			counts[best]++
			assigned++
		}
		wi := 0
		for i, op := range chain {
			for j := 0; j < counts[i]; j++ {
				rs.allowed[wi][op] = true
				wi++
			}
		}
		return
	}
	loads := make([]float64, w)
	order := make([]int, len(chain))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if chain[order[j]].est > chain[order[i]].est {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, oi := range order {
		best := 0
		for wi := 1; wi < w; wi++ {
			if loads[wi] < loads[best] {
				best = wi
			}
		}
		loads[best] += chain[oi].est
		rs.allowed[best][chain[oi]] = true
	}
}

// enqueueLocked adds an activation to the operator's next queue
// round-robin. Callers hold mu.
func (rs *runState) enqueueLocked(or *opRun, a *activation) {
	or.queues[or.rr] = append(or.queues[or.rr], a)
	or.rr = (or.rr + 1) % len(or.queues)
	or.pending++
}

// pick selects the next activation for worker w: downstream operators of
// the current chain first (draining pipelines bounds memory, playing the
// role of the paper's flow control), the worker's primary queue before
// other queues of the same operator. Callers hold mu.
func (rs *runState) pick(w int) *activation {
	chain := rs.p.chains[rs.chain]
	for i := len(chain) - 1; i >= 0; i-- {
		op := chain[i]
		if rs.allowed != nil && !rs.allowed[w][op] {
			continue
		}
		or := rs.ops[op.id]
		if a := rs.popQueue(or, w); a != nil {
			return a
		}
	}
	return nil
}

func (rs *runState) popQueue(or *opRun, w int) *activation {
	if q := or.queues[w]; len(q) > 0 {
		a := q[len(q)-1]
		or.queues[w] = q[:len(q)-1]
		return a
	}
	for i := range or.queues {
		if q := or.queues[i]; len(q) > 0 {
			a := q[len(q)-1]
			or.queues[i] = q[:len(q)-1]
			return a
		}
	}
	return nil
}

func (rs *runState) worker(ctx context.Context, w int) {
	rs.mu.Lock()
	for {
		if rs.done || rs.err != nil {
			rs.mu.Unlock()
			return
		}
		if ctx.Err() != nil {
			rs.err = ctx.Err()
			rs.done = true
			rs.cond.Broadcast()
			rs.mu.Unlock()
			return
		}
		a := rs.pick(w)
		if a == nil {
			rs.waiting++
			rs.cond.Wait()
			rs.waiting--
			continue
		}
		rs.mu.Unlock()

		outs, results := rs.process(a, w)
		atomic.AddInt64(&rs.stats.PerWorker[w], 1)
		if len(results) > 0 {
			rs.results[w] = append(rs.results[w], results...)
		}

		rs.mu.Lock()
		rs.acts++
		c := rs.ops[a.op.id]
		if a.op.consumer != nil {
			co := rs.ops[a.op.consumer.id]
			for _, out := range outs {
				rs.enqueueLocked(co, out)
			}
			if len(outs) > 0 {
				rs.cond.Broadcast()
			}
		}
		c.pending--
		if c.prodEnd && c.pending == 0 && !c.done {
			rs.opFinishedLocked(c)
		}
	}
}

// opFinishedLocked marks an operator done, propagates end-of-producer to
// its consumer, and advances to the next pipeline chain when the current
// one completes. Callers hold mu.
func (rs *runState) opFinishedLocked(or *opRun) {
	or.done = true
	if cns := or.op.consumer; cns != nil {
		co := rs.ops[cns.id]
		co.prodEnd = true
		if co.pending == 0 && !co.done {
			rs.opFinishedLocked(co)
			return
		}
	}
	// Advance the chain barrier when every operator of the current chain
	// is done.
	chain := rs.p.chains[rs.chain]
	for _, op := range chain {
		if !rs.ops[op.id].done {
			rs.cond.Broadcast()
			return
		}
	}
	if rs.chain+1 < len(rs.p.chains) {
		rs.startChain(rs.chain + 1)
		return
	}
	rs.done = true
	rs.cond.Broadcast()
}

// process executes one activation outside the scheduler lock. It returns
// downstream batches and, for the root operator, result rows.
func (rs *runState) process(a *activation, w int) (outs []*activation, results []Row) {
	emit := func(consumer *pop, batch []Row) {
		outs = append(outs, &activation{op: consumer, rows: batch})
	}
	switch a.op.kind {
	case opScan:
		s := a.op.scan
		var batch []Row
		for _, row := range s.Table.Rows[a.lo:a.hi] {
			if s.Filter != nil && !s.Filter(row) {
				continue
			}
			if batch == nil {
				batch = make([]Row, 0, rs.opt.Batch)
			}
			batch = append(batch, row)
			if len(batch) >= rs.opt.Batch {
				emit(a.op.consumer, batch)
				batch = nil
			}
		}
		if len(batch) > 0 {
			emit(a.op.consumer, batch)
		}
	case opBuild:
		or := rs.ops[a.op.id]
		key := a.op.join.BuildKey
		for _, row := range a.rows {
			k := key(row)
			s := hashKey(k, rs.opt.Stripes)
			or.locks[s].Lock()
			or.stripes[s][k] = append(or.stripes[s][k], row)
			or.locks[s].Unlock()
		}
	case opProbe:
		bo := rs.ops[a.op.partner.id]
		key := a.op.join.ProbeKey
		combine := a.op.join.Combine
		arena := &rs.arenas[w]
		isRoot := a.op == rs.p.root
		var batch []Row
		for _, row := range a.rows {
			k := key(row)
			s := hashKey(k, rs.opt.Stripes)
			for _, b := range bo.stripes[s][k] {
				var out Row
				if combine != nil {
					out = combine(row, b)
				} else {
					out = arena.concat(row, b)
				}
				if isRoot {
					results = append(results, out)
					continue
				}
				if batch == nil {
					batch = make([]Row, 0, rs.opt.Batch)
				}
				batch = append(batch, out)
				if len(batch) >= rs.opt.Batch {
					emit(a.op.consumer, batch)
					batch = nil
				}
			}
		}
		if len(batch) > 0 {
			emit(a.op.consumer, batch)
		}
	}
	return outs, results
}
