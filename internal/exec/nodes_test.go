package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// newNodesT builds a Nodes engine and closes it with the test.
func newNodesT(t *testing.T, nodes, workers int) *Nodes {
	t.Helper()
	ns, err := NewNodes(nodes, workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ns.Close)
	return ns
}

func collectHandle(t *testing.T, h *Handle) []Row {
	t.Helper()
	out := drainRows(h)
	if err := h.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMultiNodeMatchesSingleNode: the same plans on 1, 2 and 4 nodes
// must produce identical result sets (stream order aside), including a
// chained two-join plan whose intermediate rows re-partition on a
// different key.
func TestMultiNodeMatchesSingleNode(t *testing.T) {
	checkQueryHygiene(t)
	dim := tbl("dim", 700, func(i int) any { return i }, func(i int) any { return fmt.Sprintf("d%d", i) })
	mid := tbl("mid", 900, func(i int) any { return i % 700 }, func(i int) any { return i * 3 })
	fact := tbl("fact", 9000, func(i int) any { return i % 700 }, func(i int) any { return i })
	plans := map[string]func() Node{
		"join": func() Node {
			return &Join{Build: &Scan{Table: dim}, Probe: &Scan{Table: fact},
				BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
		},
		"chained": func() Node {
			inner := &Join{Build: &Scan{Table: dim}, Probe: &Scan{Table: mid},
				BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
			// The second join keys on the payload column of mid (i*3),
			// so intermediate rows route differently than their first
			// partitioning.
			return &Join{Build: &Scan{Table: fact, Filter: func(r Row) bool { return r[1].(int)%3 == 0 }},
				Probe: inner, BuildKey: KeyCol(1), ProbeKey: KeyCol(1)}
		},
		"filtered-scan": func() Node {
			return &Scan{Table: fact, Filter: func(r Row) bool { return r[1].(int)%7 == 0 }}
		},
	}
	for name, mk := range plans {
		t.Run(name, func(t *testing.T) {
			want, _, err := Execute(context.Background(), mk(), Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{2, 4} {
				ns := newNodesT(t, n, 2)
				h, err := ns.Submit(context.Background(), mk(), Options{})
				if err != nil {
					t.Fatal(err)
				}
				got := collectHandle(t, h)
				sameRows(t, got, want)
				st := h.Stats()
				if len(st.Nodes) != n {
					t.Fatalf("Stats.Nodes has %d entries, want %d", len(st.Nodes), n)
				}
				var acts, rows int64
				for _, nst := range st.Nodes {
					acts += nst.Activations
					rows += nst.ResultRows
				}
				if acts != st.Activations || rows != st.ResultRows {
					t.Fatalf("per-node stats do not sum: %d/%d acts, %d/%d rows",
						acts, st.Activations, rows, st.ResultRows)
				}
				if int(st.ResultRows) != len(want) {
					t.Fatalf("ResultRows %d, want %d", st.ResultRows, len(want))
				}
			}
		})
	}
}

// TestMultiNodeGroupBy: per-node partial merge then global merge must
// equal the single-node aggregation, deterministically ordered.
func TestMultiNodeGroupBy(t *testing.T) {
	checkQueryHygiene(t)
	dim := tbl("dim", 40, func(i int) any { return i }, func(i int) any { return fmt.Sprintf("g%d", i%6) })
	fact := tbl("fact", 8000, func(i int) any { return i % 40 }, func(i int) any { return i })
	mk := func() Node {
		return &Join{Build: &Scan{Table: dim}, Probe: &Scan{Table: fact},
			BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}
	}
	gb := &GroupBy{
		Key: KeyCol(3), // dim payload g0..g5
		Aggs: []Aggregation{
			{Func: Count},
			{Func: Sum, Arg: func(r Row) float64 { return float64(r[1].(int)) }},
			{Func: Min, Arg: func(r Row) float64 { return float64(r[1].(int)) }},
			{Func: Max, Arg: func(r Row) float64 { return float64(r[1].(int)) }},
		},
	}
	want, _, err := ExecuteGroupBy(context.Background(), mk(), gb, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3} {
		ns := newNodesT(t, n, 2)
		h, err := ns.SubmitGroupBy(context.Background(), mk(), gb, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := collectHandle(t, h)
		if len(got) != len(want) {
			t.Fatalf("%d nodes: %d groups, want %d", n, len(got), len(want))
		}
		for i := range got {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("%d nodes: group %d = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestMultiNodeEmptyInputs: empty and sub-node-count tables complete
// (the empty-chain cascade) with correct results.
func TestMultiNodeEmptyInputs(t *testing.T) {
	checkQueryHygiene(t)
	empty := &Table{Name: "e", Cols: []string{"k"}}
	tiny := tbl("t", 2, func(i int) any { return i }, func(i int) any { return i })
	ns := newNodesT(t, 4, 2)
	h, err := ns.Submit(context.Background(), &Join{
		Build: &Scan{Table: empty}, Probe: &Scan{Table: tiny},
		BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectHandle(t, h); len(got) != 0 {
		t.Fatalf("join against empty build returned %d rows", len(got))
	}
	h, err = ns.Submit(context.Background(), &Join{
		Build: &Scan{Table: tiny}, Probe: &Scan{Table: tiny},
		BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectHandle(t, h); len(got) != 2 {
		t.Fatalf("tiny self-join returned %d rows, want 2", len(got))
	}
}

// TestMultiNodeCancellation: cancelling mid-stream aborts promptly on
// every node and the engine serves the next query.
func TestMultiNodeCancellation(t *testing.T) {
	checkQueryHygiene(t)
	ns := newNodesT(t, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	h, err := ns.Submit(ctx, cancelPlan(300_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	<-h.Out() // first batch, then cancel mid-stream
	cancel()
	start := time.Now()
	for range h.Out() {
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("multi-node drain after cancel took %v", elapsed)
	}
	if err := h.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled multi-node query reported %v", err)
	}
	verifyIdle(t, ns.Submit)
}

// TestMultiNodeConcurrentQueries: distinct queries in flight on one
// multi-node engine stay isolated in results and stats (-race leg).
func TestMultiNodeConcurrentQueries(t *testing.T) {
	checkQueryHygiene(t)
	dim := tbl("dim", 200, func(i int) any { return i }, func(i int) any { return i })
	fact := tbl("fact", 12_000, func(i int) any { return i % 200 }, func(i int) any { return i })
	ns := newNodesT(t, 2, 2)
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := ns.Submit(context.Background(), &Join{
				Build:    &Scan{Table: dim},
				Probe:    &Scan{Table: fact, Filter: func(r Row) bool { return r[1].(int)%n == i }},
				BuildKey: KeyCol(0), ProbeKey: KeyCol(0)}, Options{})
			if err != nil {
				errs[i] = err
				return
			}
			var rows int
			for b := range h.Out() {
				rows += b.N
			}
			if err := h.Err(); err != nil {
				errs[i] = err
				return
			}
			st := h.Stats()
			if rows != 12_000/n || int(st.ResultRows) != rows {
				errs[i] = fmt.Errorf("query %d: %d rows, stats %d", i, rows, st.ResultRows)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestMultiNodeClosePromptly: Close with a query in flight aborts it
// with ErrClosed and releases all pools' workers.
func TestMultiNodeClosePromptly(t *testing.T) {
	checkQueryHygiene(t)
	ns, err := NewNodes(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ns.Submit(context.Background(), cancelPlan(300_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ns.Close()
	for range h.Out() {
	}
	if err := h.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed engine reported %v", err)
	}
	if _, err := ns.Submit(context.Background(), cancelPlan(10), Options{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit on closed engine = %v", err)
	}
}

// TestMultiNodeStreamingAllocBound is the multi-node leg of the
// streaming-sink alloc gate (run by CI): steal-free local execution
// with key-routed redistribution must stay within the single-node
// bound of <= 0.5 allocs per streamed row.
func TestMultiNodeStreamingAllocBound(t *testing.T) {
	ns, err := NewNodes(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	const rows = 100_000
	build := tbl("b", 1000, func(i int) any { return i }, func(i int) any { return i })
	probe := tbl("p", rows, func(i int) any { return i % 1000 }, func(i int) any { return i })
	plan := Node(&Join{
		Build:    &Scan{Table: build},
		Probe:    &Scan{Table: probe},
		BuildKey: KeyCol(0),
		ProbeKey: KeyCol(0),
	})
	avg := testing.AllocsPerRun(3, func() {
		h, err := ns.Submit(context.Background(), plan, Options{DisableStealing: true})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for batch := range h.Out() {
			n += batch.N
		}
		if err := h.Err(); err != nil {
			t.Fatal(err)
		}
		if n != rows {
			t.Fatalf("streamed %d rows", n)
		}
	})
	if perRow := avg / rows; perRow > 0.5 {
		t.Fatalf("multi-node sink path allocates %.2f allocs/row (avg %.0f total), want <= 0.5", perRow, avg)
	}
}
