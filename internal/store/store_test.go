package store

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"hierdb/internal/vec"
)

func tmpTable(t *testing.T, cols []string, chunkRows int, rows []vec.Row) *TableFile {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.hdbt")
	if err := WriteTable(path, cols, chunkRows, rows); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// scanAll decodes every chunk and materializes all rows.
func scanAll(t *testing.T, f *TableFile) []vec.Row {
	t.Helper()
	var a vec.Arena
	var out []vec.Row
	for i := 0; i < f.NumChunks(); i++ {
		b, err := f.ReadChunk(i)
		if err != nil {
			t.Fatalf("ReadChunk(%d): %v", i, err)
		}
		out = b.AppendRows(out, &a)
	}
	return out
}

func TestRoundTripTypedAndMixed(t *testing.T) {
	rows := []vec.Row{
		{int64(1), "alpha", 1.5, uint64(7), true, nil},
		{int64(2), "beta", math.NaN(), uint64(8), false, "x"},
		{nil, "gamma", -2.25, nil, nil, int32(9)},
		{int64(4), nil, 0.0, uint64(0), true, 3.5},
	}
	f := tmpTable(t, []string{"a", "b", "c", "d", "e", "f"}, 2, rows)
	if f.NumRows() != 4 || f.NumChunks() != 2 {
		t.Fatalf("rows=%d chunks=%d, want 4/2", f.NumRows(), f.NumChunks())
	}
	wantKinds := []vec.Kind{vec.Int64, vec.String, vec.Float64, vec.Uint64, vec.Bool, vec.Any}
	if !reflect.DeepEqual(f.Kinds(), wantKinds) {
		t.Fatalf("kinds = %v, want %v", f.Kinds(), wantKinds)
	}
	got := scanAll(t, f)
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		for j := range rows[i] {
			gv, wv := got[i][j], rows[i][j]
			if fv, ok := wv.(float64); ok && math.IsNaN(fv) {
				if gf, ok := gv.(float64); !ok || !math.IsNaN(gf) {
					t.Fatalf("row %d col %d: got %v, want NaN", i, j, gv)
				}
				continue
			}
			if !reflect.DeepEqual(gv, wv) {
				t.Fatalf("row %d col %d: got %#v, want %#v", i, j, gv, wv)
			}
		}
	}
}

// An all-null chunk of a typed column must decode as a typed all-null
// column (kind promotion), and an all-null column across every chunk
// must stay Any — matching what vec.FromRows over the whole table
// resolves.
func TestKindCoercion(t *testing.T) {
	rows := []vec.Row{
		// chunk 0: col a typed, col b all null
		{int64(1), nil},
		{int64(2), nil},
		// chunk 1: col a all null, col b all null
		{nil, nil},
		{nil, nil},
	}
	f := tmpTable(t, []string{"a", "b"}, 2, rows)
	wantKinds := []vec.Kind{vec.Int64, vec.Any}
	if !reflect.DeepEqual(f.Kinds(), wantKinds) {
		t.Fatalf("kinds = %v, want %v", f.Kinds(), wantKinds)
	}
	b, err := f.ReadChunk(1)
	if err != nil {
		t.Fatal(err)
	}
	c := &b.Cols[0]
	if c.Kind != vec.Int64 || c.I64 == nil {
		t.Fatalf("all-null chunk of typed column: kind=%v I64=%v, want promoted Int64 mirror", c.Kind, c.I64)
	}
	for i := 0; i < b.N; i++ {
		if !c.NullAt(i) {
			t.Fatalf("promoted row %d not null", i)
		}
	}
	// Mixed kinds across chunks degrade the schema to Any, and typed
	// chunks degrade on read.
	rows2 := []vec.Row{{int64(1)}, {int64(2)}, {"x"}, {"y"}}
	f2 := tmpTable(t, []string{"a"}, 2, rows2)
	if f2.Kinds()[0] != vec.Any {
		t.Fatalf("mixed-chunk column kind = %v, want Any", f2.Kinds()[0])
	}
	b0, err := f2.ReadChunk(0)
	if err != nil {
		t.Fatal(err)
	}
	if b0.Cols[0].Kind != vec.Any || b0.Cols[0].I64 != nil {
		t.Fatalf("typed chunk under Any schema: kind=%v, want degraded Any", b0.Cols[0].Kind)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.hdbt")
	rows := []vec.Row{{int64(1), "a"}, {int64(2), "b"}, {int64(3), "c"}}
	if err := WriteTable(path, []string{"x", "y"}, 2, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func([]byte) []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, f(append([]byte(nil), data...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p); err == nil {
			t.Fatalf("%s: Open accepted a corrupt file", name)
		} else {
			t.Logf("%s: %v", name, err)
		}
	}
	mutate("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("badmagic", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	mutate("badcrc", func(b []byte) []byte { b[len(b)-24] ^= 0xff; return b }) // inside the footer
	mutate("badflen", func(b []byte) []byte { b[len(b)-12] = 0xee; return b })
	mutate("empty", func(b []byte) []byte { return nil })
	// A writer that never Closed leaves no trailer at all.
	w, err := Create(filepath.Join(dir, "unclosed"), []string{"x"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(vec.Row{int64(1)}); err != nil {
		t.Fatal(err)
	}
	w.f.Close() // abandon without footer
	if _, err := Open(filepath.Join(dir, "unclosed")); err == nil {
		t.Fatal("Open accepted a footerless file")
	}
}

func TestWriterRejectsRaggedRows(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "t"), []string{"a", "b"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(vec.Row{int64(1)}); err == nil {
		t.Fatal("Append accepted a narrow row")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after a sticky error should report it")
	}
}

func TestZoneMapSkippable(t *testing.T) {
	// One chunk per scenario (chunkRows 2).
	rows := []vec.Row{
		// chunk 0: ints 10..20
		{int64(10), "m", 1.0},
		{int64(20), "p", 2.0},
		// chunk 1: ints 100..200, strings q..z
		{int64(100), "q", 3.0},
		{int64(200), "z", 4.5},
		// chunk 2: all nulls in every column
		{nil, nil, nil},
		{nil, nil, nil},
		// chunk 3: constant int 42, NaN floats
		{int64(42), "q", math.NaN()},
		{int64(42), "q", math.NaN()},
	}
	f := tmpTable(t, []string{"i", "s", "f"}, 2, rows)
	if f.NumChunks() != 4 {
		t.Fatalf("chunks = %d, want 4", f.NumChunks())
	}
	cases := []struct {
		name string
		pred vec.Pred
		want [4]bool // skippable per chunk
	}{
		{"eq-15", vec.Pred{Col: 0, Op: vec.Eq, Val: int64(15)}, [4]bool{false, true, true, true}},
		{"eq-42", vec.Pred{Col: 0, Op: vec.Eq, Val: 42}, [4]bool{true, true, true, false}},
		{"ne-42", vec.Pred{Col: 0, Op: vec.Ne, Val: int64(42)}, [4]bool{false, false, true, true}},
		{"lt-10", vec.Pred{Col: 0, Op: vec.Lt, Val: int64(10)}, [4]bool{true, true, true, true}},
		{"le-10", vec.Pred{Col: 0, Op: vec.Le, Val: int64(10)}, [4]bool{false, true, true, true}},
		{"gt-200", vec.Pred{Col: 0, Op: vec.Gt, Val: int64(200)}, [4]bool{true, true, true, true}},
		{"ge-200", vec.Pred{Col: 0, Op: vec.Ge, Val: int64(200)}, [4]bool{true, false, true, true}},
		{"isnull", vec.Pred{Col: 0, Op: vec.IsNull}, [4]bool{true, true, false, true}},
		{"notnull", vec.Pred{Col: 0, Op: vec.NotNull}, [4]bool{false, false, true, false}},
		{"str-eq", vec.Pred{Col: 1, Op: vec.Eq, Val: "q"}, [4]bool{true, false, true, false}},
		{"str-gt-z", vec.Pred{Col: 1, Op: vec.Gt, Val: "z"}, [4]bool{true, true, true, true}},
		{"wrong-family", vec.Pred{Col: 0, Op: vec.Eq, Val: "15"}, [4]bool{true, true, true, true}},
		{"col-oob", vec.Pred{Col: 9, Op: vec.Eq, Val: int64(1)}, [4]bool{true, true, true, true}},
		// NaN rows satisfy Eq/Le/Ge against any constant, never Ne/Lt/Gt.
		{"f-eq-99", vec.Pred{Col: 2, Op: vec.Eq, Val: 99.0}, [4]bool{true, true, true, false}},
		{"f-gt-99", vec.Pred{Col: 2, Op: vec.Gt, Val: 99.0}, [4]bool{true, true, true, true}},
		// A NaN constant matches all non-null floats under Eq/Le/Ge.
		{"f-eq-nan", vec.Pred{Col: 2, Op: vec.Eq, Val: math.NaN()}, [4]bool{false, false, true, false}},
		{"f-lt-nan", vec.Pred{Col: 2, Op: vec.Lt, Val: math.NaN()}, [4]bool{true, true, true, true}},
	}
	for _, tc := range cases {
		for ci := 0; ci < 4; ci++ {
			if got := f.Skippable(ci, []vec.Pred{tc.pred}); got != tc.want[ci] {
				t.Errorf("%s chunk %d: Skippable = %v, want %v", tc.name, ci, got, tc.want[ci])
			}
		}
	}
	// AND semantics: any one unmatchable predicate skips.
	and := []vec.Pred{
		{Col: 0, Op: vec.Ge, Val: int64(0)},
		{Col: 1, Op: vec.Eq, Val: "zzz"}, // above every chunk's string max
	}
	for ci := 0; ci < 4; ci++ {
		if !f.Skippable(ci, and) {
			t.Errorf("AND with unmatchable leg: chunk %d not skipped", ci)
		}
	}
	if f.Skippable(0, nil) {
		t.Error("empty predicate list must never skip")
	}
}

// Soundness property: a skipped chunk must be one ApplyPreds selects
// zero rows from — checked over random data and random predicates,
// including null-heavy, constant and NaN-laced columns.
func TestSkippableNeverSkipsMatches(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	var a vec.Arena
	for iter := 0; iter < 200; iter++ {
		nrows := 1 + rnd.Intn(40)
		rows := make([]vec.Row, nrows)
		mode := rnd.Intn(5)
		for i := range rows {
			var v any
			switch {
			case rnd.Intn(4) == 0:
				v = nil
			case mode == 0:
				v = int64(rnd.Intn(20) - 10)
			case mode == 1:
				v = rnd.Float64()*20 - 10
				if rnd.Intn(5) == 0 {
					v = math.NaN()
				}
			case mode == 2:
				v = fmt.Sprintf("s%02d", rnd.Intn(20))
			case mode == 3:
				v = rnd.Intn(2) == 0
			default:
				v = uint64(rnd.Intn(20))
			}
			rows[i] = vec.Row{v}
		}
		f := tmpTable(t, []string{"c"}, 8, rows)
		ops := []vec.CmpOp{vec.Eq, vec.Ne, vec.Lt, vec.Le, vec.Gt, vec.Ge, vec.IsNull, vec.NotNull}
		for trial := 0; trial < 30; trial++ {
			var val any
			switch rnd.Intn(5) {
			case 0:
				val = int64(rnd.Intn(24) - 12)
			case 1:
				val = rnd.Float64()*24 - 12
			case 2:
				val = fmt.Sprintf("s%02d", rnd.Intn(24))
			case 3:
				val = rnd.Intn(2) == 0
			default:
				val = uint64(rnd.Intn(24))
			}
			p := vec.Pred{Col: 0, Op: ops[rnd.Intn(len(ops))], Val: val}
			for ci := 0; ci < f.NumChunks(); ci++ {
				if !f.Skippable(ci, []vec.Pred{p}) {
					continue
				}
				b, err := f.ReadChunk(ci)
				if err != nil {
					t.Fatal(err)
				}
				sel := vec.ApplyPreds(b, []vec.Pred{p}, nil, a.I32(b.N))
				if len(sel) != 0 {
					t.Fatalf("iter %d mode %d: skipped chunk %d but pred %+v matches %d rows", iter, mode, ci, p, len(sel))
				}
			}
		}
	}
}

func TestConcurrentReadChunk(t *testing.T) {
	rows := make([]vec.Row, 3000)
	for i := range rows {
		rows[i] = vec.Row{int64(i), fmt.Sprintf("r%d", i)}
	}
	f := tmpTable(t, []string{"id", "name"}, 128, rows)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a vec.Arena
			total := 0
			for i := 0; i < f.NumChunks(); i++ {
				b, err := f.ReadChunk(i)
				if err != nil {
					t.Error(err)
					return
				}
				total += b.N
			}
			_ = a
			if total != len(rows) {
				t.Errorf("scanned %d rows, want %d", total, len(rows))
			}
		}()
	}
	wg.Wait()
}

func TestReadChunkAfterClose(t *testing.T) {
	rows := []vec.Row{{int64(1)}, {int64(2)}}
	f := tmpTable(t, []string{"a"}, 2, rows)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := f.ReadChunk(0); err == nil {
		t.Fatal("ReadChunk after Close should fail")
	}
}
