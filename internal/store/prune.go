// Zone-map pruning: prove a chunk matches no row of an ANDed predicate
// set from the footer alone, before paying the chunk's ReadAt and
// decode. The can-match logic must be a sound over-approximation of
// vec.applyPred — a chunk is only skipped when the predicate kernel
// would have selected zero of its rows — including the kernel's two
// deliberate quirks: a predicate constant outside a typed column's
// type family matches nothing, and float comparisons treat NaN pairs
// as equal (so a NaN *value* satisfies Eq/Le/Ge against any constant,
// and a NaN *constant* satisfies Eq/Le/Ge against any non-null float).
package store

import "hierdb/internal/vec"

// Skippable reports whether chunk i provably matches none of preds
// (evaluated as an AND, like vec.ApplyPreds): one predicate that
// cannot match any row skips the chunk. An empty preds never skips.
//
//hierdb:hotpath
func (t *TableFile) Skippable(i int, preds []vec.Pred) bool {
	zones := t.ft.chunks[i].Zones
	for pi := range preds {
		p := &preds[pi]
		if p.Col < 0 || p.Col >= len(zones) {
			// ApplyPreds empties the selection for out-of-range columns.
			return true
		}
		if !zoneCanMatch(&zones[p.Col], p) {
			return true
		}
	}
	return false
}

// zoneCanMatch reports whether any row summarized by z could satisfy
// p. False positives cost one decoded chunk; false negatives would be
// wrong answers, so every branch errs toward true.
//
//hierdb:hotpath
func zoneCanMatch(z *ZoneMap, p *vec.Pred) bool {
	switch p.Op {
	case vec.IsNull:
		return z.HasNulls
	case vec.NotNull:
		return z.HasNonNull
	}
	if !z.HasNonNull {
		return false // comparisons never match null rows
	}
	switch z.Kind {
	case vec.Int, vec.Int32, vec.Int64:
		v, ok := intFamilyVal(p.Val)
		if !ok {
			return false // constant outside the type family matches nothing
		}
		return rangeCanMatch(p.Op, cmpI64(v, z.MinI64), cmpI64(v, z.MaxI64))
	case vec.Uint64:
		v, ok := p.Val.(uint64)
		if !ok {
			return false
		}
		return rangeCanMatch(p.Op, cmpU64(v, uint64(z.MinI64)), cmpU64(v, uint64(z.MaxI64)))
	case vec.Float64:
		v, ok := p.Val.(float64)
		if !ok {
			return false
		}
		if z.HasNaN && (p.Op == vec.Eq || p.Op == vec.Le || p.Op == vec.Ge) {
			return true // a NaN value compares "equal" to every constant
		}
		if !z.HasRange {
			return false // all rows null or NaN, and NaN rows never match Ne/Lt/Gt
		}
		if v != v {
			// NaN constant: every non-null row compares "equal" to it.
			return p.Op == vec.Eq || p.Op == vec.Le || p.Op == vec.Ge
		}
		return rangeCanMatch(p.Op, cmpF64(v, z.MinF64), cmpF64(v, z.MaxF64))
	case vec.Bool:
		v, ok := p.Val.(bool)
		if !ok || (p.Op != vec.Eq && p.Op != vec.Ne) {
			return false // bools are unordered: the kernel matches nothing
		}
		var b int64
		if v {
			b = 1
		}
		return rangeCanMatch(p.Op, cmpI64(b, z.MinI64), cmpI64(b, z.MaxI64))
	case vec.String:
		v, ok := p.Val.(string)
		if !ok {
			return false
		}
		return rangeCanMatch(p.Op, cmpStr(v, z.MinStr), cmpStr(v, z.MaxStr))
	}
	// Any: mixed or exotic values — no range to reason with.
	return true
}

// rangeCanMatch decides whether a value can satisfy op against the
// closed range [min, max], given the three-way comparisons of the
// constant against min (cmin) and max (cmax).
//
//hierdb:hotpath
func rangeCanMatch(op vec.CmpOp, cmin, cmax int) bool {
	switch op {
	case vec.Eq:
		return cmin >= 0 && cmax <= 0 // min <= v <= max
	case vec.Ne:
		return cmin != 0 || cmax != 0 // some row differs unless min == v == max
	case vec.Lt:
		return cmin > 0 // a row below v exists iff min < v
	case vec.Le:
		return cmin >= 0
	case vec.Gt:
		return cmax < 0 // a row above v exists iff max > v
	case vec.Ge:
		return cmax <= 0
	}
	return true
}

//hierdb:hotpath
func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

//hierdb:hotpath
func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

//hierdb:hotpath
func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

//hierdb:hotpath
func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// intFamilyVal widens an int/int32/int64 predicate constant to int64,
// matching the kernel's cross-width int comparisons.
func intFamilyVal(v any) (int64, bool) {
	switch t := v.(type) {
	case int:
		return int64(t), true
	case int32:
		return int64(t), true
	case int64:
		return t, true
	}
	return 0, false
}
