// Table-file writer: buffers rows, seals them into fixed-size chunks
// (columnized per chunk with vec.FromRows, encoded with the spill
// columnar codec), and writes the footer on Close. The writer is
// single-goroutine — table files are built offline by cmd/hdbtable or
// test fixtures, never on the query path — so it carries no locks.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"hierdb/internal/spill"
	"hierdb/internal/vec"
)

// Writer builds one table file. Create it with Create, feed rows with
// Append/AppendRows, and seal it with Close — a file without a footer
// (writer crashed or abandoned) never opens.
type Writer struct {
	f         *os.File
	path      string
	cols      []string
	chunkRows int
	buf       []byte    // chunk encode scratch, reused
	pend      []vec.Row // rows buffered toward the next chunk
	ft        footer
	resolved  []bool // schema kind resolved per column
	off       int64
	err       error // first error; sticky
}

// Create opens a new table file at path with the given column names.
// chunkRows is the row-group size (<= 0 means DefaultChunkRows). An
// existing file at path is an error, not an overwrite.
func Create(path string, cols []string, chunkRows int) (*Writer, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("store: create %s: no columns", filepath.Base(path))
	}
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create: %w", err)
	}
	w := &Writer{
		f:         f,
		path:      path,
		cols:      append([]string(nil), cols...),
		chunkRows: chunkRows,
		pend:      make([]vec.Row, 0, chunkRows),
		resolved:  make([]bool, len(cols)),
	}
	w.ft.cols = w.cols
	w.ft.kinds = make([]vec.Kind, len(cols))
	return w, nil
}

// Append buffers one row. The row must be exactly as wide as the
// schema (table files are rectangular; ragged rows are a spill-codec
// concern, not a table one) and is copied, so the caller may reuse it.
func (w *Writer) Append(row vec.Row) error {
	if w.err != nil {
		return w.err
	}
	if len(row) != len(w.cols) {
		w.err = fmt.Errorf("store: %s: row width %d, schema width %d", filepath.Base(w.path), len(row), len(w.cols))
		return w.err
	}
	w.pend = append(w.pend, append(vec.Row(nil), row...))
	if len(w.pend) >= w.chunkRows {
		return w.flush()
	}
	return nil
}

// AppendRows buffers rows (see Append).
func (w *Writer) AppendRows(rows []vec.Row) error {
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// flush seals the buffered rows as one chunk: columnize, zone-map,
// encode, write.
func (w *Writer) flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.pend) == 0 {
		return nil
	}
	b := vec.FromRows(w.pend)
	buf, err := spill.EncodeCols(w.buf[:0], b)
	if err != nil {
		w.err = fmt.Errorf("store: %s: %w", filepath.Base(w.path), err)
		return w.err
	}
	w.buf = buf
	if _, err := w.f.Write(buf); err != nil {
		w.err = fmt.Errorf("store: write %s: %w", filepath.Base(w.path), err)
		return w.err
	}
	info := ChunkInfo{
		Off:   w.off,
		Len:   int64(len(buf)),
		Rows:  b.N,
		Zones: make([]ZoneMap, len(b.Cols)),
	}
	for ci := range b.Cols {
		info.Zones[ci] = zoneFor(&b.Cols[ci], b.N)
		w.combineKind(ci, &b.Cols[ci], &info.Zones[ci])
	}
	w.ft.chunks = append(w.ft.chunks, info)
	w.ft.rows += int64(b.N)
	w.off += info.Len
	w.pend = w.pend[:0]
	return nil
}

// combineKind folds one chunk column's kind into the footer schema: a
// typed chunk sets (or, on disagreement, degrades) the column kind; an
// all-null chunk encodes as Any and constrains nothing; an Any chunk
// with real values pins the column to Any. This mirrors what
// vec.FromRows over the whole table would have resolved, so a
// chunk-streamed scan presents the same kinds as a resident one.
func (w *Writer) combineKind(ci int, c *vec.Col, z *ZoneMap) {
	if c.Kind == vec.Any {
		if !z.HasNonNull {
			return // all-null chunk: no evidence either way
		}
		w.ft.kinds[ci] = vec.Any
		w.resolved[ci] = true
		return
	}
	if !w.resolved[ci] {
		w.ft.kinds[ci] = c.Kind
		w.resolved[ci] = true
	} else if w.ft.kinds[ci] != c.Kind {
		w.ft.kinds[ci] = vec.Any
	}
}

// Close flushes the final partial chunk, writes the footer + trailer,
// and closes the file. The writer is unusable afterwards; Close after
// an Append error returns that error and leaves the partial file on
// disk (footerless, so it will never Open).
func (w *Writer) Close() error {
	if w.f == nil {
		return w.err
	}
	err := w.flush()
	if err == nil {
		fbuf := appendFooter(w.buf[:0], &w.ft)
		flen := len(fbuf)
		fbuf = binary.LittleEndian.AppendUint32(fbuf, crc32.ChecksumIEEE(fbuf[:flen]))
		fbuf = binary.LittleEndian.AppendUint64(fbuf, uint64(flen))
		fbuf = append(fbuf, magic[:]...)
		if _, werr := w.f.Write(fbuf); werr != nil {
			err = fmt.Errorf("store: write footer %s: %w", filepath.Base(w.path), werr)
		}
	}
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	w.f = nil
	if w.err == nil {
		w.err = fmt.Errorf("store: %s: writer closed", filepath.Base(w.path))
	}
	return err
}

// WriteTable writes a complete table file in one call — the fixture
// path used by tests, difftest legs and cmd/hdbtable.
func WriteTable(path string, cols []string, chunkRows int, rows []vec.Row) error {
	w, err := Create(path, cols, chunkRows)
	if err != nil {
		return err
	}
	if err := w.AppendRows(rows); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
