// Table-file reader. Open validates the trailer (magic, footer length,
// checksum) and decodes the footer with at most two ReadAts — one for
// the tail, a second only when the footer outgrows the speculative
// tail read. After that every chunk is independent: ReadChunk issues
// its own ReadAt and decode, so concurrent scan activations stream
// disjoint chunks with no shared cursor or cache.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"hierdb/internal/spill"
	"hierdb/internal/vec"
)

// tailProbe is how much of the file tail Open reads speculatively; a
// footer that fits (the common case: footers are a few hundred bytes
// per chunk) costs a single ReadAt.
const tailProbe = 64 << 10

// TableFile is one opened table file. All methods except Close are
// read-only and safe for concurrent use; Close is idempotent and the
// engine guarantees no ReadChunk races it (the facade closes files
// only after every query over them has drained).
type TableFile struct {
	mu   sync.Mutex //hierdb:lock storefile
	f    *os.File
	path string
	ft   *footer
}

// Open opens and validates a table file.
func Open(path string) (*TableFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	t, err := open(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

func open(f *os.File, path string) (*TableFile, error) {
	name := filepath.Base(path)
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", name, err)
	}
	size := st.Size()
	if size < trailerLen {
		return nil, fmt.Errorf("store: %s: too short (%d bytes) to be a table file", name, size)
	}
	probe := int64(tailProbe)
	if probe > size {
		probe = size
	}
	tail := make([]byte, probe)
	if _, err := f.ReadAt(tail, size-probe); err != nil {
		return nil, fmt.Errorf("store: %s: read trailer: %w", name, err)
	}
	if [8]byte(tail[len(tail)-8:]) != magic {
		return nil, fmt.Errorf("store: %s: bad magic (not a table file, or writer never Closed)", name)
	}
	flen := int64(binary.LittleEndian.Uint64(tail[len(tail)-16 : len(tail)-8]))
	if flen <= 0 || flen+trailerLen > size {
		return nil, fmt.Errorf("store: %s: corrupt footer length %d", name, flen)
	}
	var fbuf []byte
	if flen+trailerLen <= probe {
		fbuf = tail[probe-flen-trailerLen : probe-trailerLen]
	} else {
		fbuf = make([]byte, flen)
		if _, err := f.ReadAt(fbuf, size-flen-trailerLen); err != nil {
			return nil, fmt.Errorf("store: %s: read footer: %w", name, err)
		}
	}
	wantCRC := binary.LittleEndian.Uint32(tail[len(tail)-20 : len(tail)-16])
	if got := crc32.ChecksumIEEE(fbuf); got != wantCRC {
		return nil, fmt.Errorf("store: %s: footer checksum mismatch (file %08x, computed %08x)", name, wantCRC, got)
	}
	ft, err := decodeFooter(fbuf)
	if err != nil {
		return nil, fmt.Errorf("store: %s: footer: %w", name, err)
	}
	dataEnd := size - flen - trailerLen
	var rows int64
	for ci := range ft.chunks {
		ch := &ft.chunks[ci]
		if ch.Rows <= 0 || ch.Len <= 0 || ch.Off < 0 || ch.Off+ch.Len > dataEnd {
			return nil, fmt.Errorf("store: %s: chunk %d directory entry out of bounds", name, ci)
		}
		rows += int64(ch.Rows)
	}
	if rows != ft.rows {
		return nil, fmt.Errorf("store: %s: footer rows %d != chunk directory sum %d", name, ft.rows, rows)
	}
	return &TableFile{f: f, path: path, ft: ft}, nil
}

// Path returns the file's path.
func (t *TableFile) Path() string { return t.path }

// Cols returns the column names. Callers must not mutate.
func (t *TableFile) Cols() []string { return t.ft.cols }

// Kinds returns the schema kind per column — the kind a resident
// vec.FromRows over the full table would have resolved. Callers must
// not mutate.
func (t *TableFile) Kinds() []vec.Kind { return t.ft.kinds }

// NumRows returns the total row count.
func (t *TableFile) NumRows() int64 { return t.ft.rows }

// NumChunks returns the chunk count.
func (t *TableFile) NumChunks() int { return len(t.ft.chunks) }

// Chunk returns chunk i's directory entry (offset, encoded length,
// rows, zone maps). Callers must not mutate the zone maps.
func (t *TableFile) Chunk(i int) *ChunkInfo { return &t.ft.chunks[i] }

// ReadChunk reads and decodes chunk i as a dense batch with every
// column coerced to the schema kind, so chunk-streamed scans present
// exactly the kinds a resident table would. Safe for concurrent
// callers.
func (t *TableFile) ReadChunk(i int) (*vec.Batch, error) {
	ch := &t.ft.chunks[i]
	t.mu.Lock()
	f := t.f
	t.mu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("store: %s: read chunk %d: file closed", filepath.Base(t.path), i)
	}
	buf := make([]byte, ch.Len)
	if _, err := f.ReadAt(buf, ch.Off); err != nil {
		return nil, fmt.Errorf("store: %s: read chunk %d: %w", filepath.Base(t.path), i, err)
	}
	b, err := spill.DecodeCols(buf, ch.Rows)
	if err != nil {
		return nil, fmt.Errorf("store: %s: chunk %d: %w", filepath.Base(t.path), i, err)
	}
	if len(b.Cols) != len(t.ft.kinds) {
		return nil, fmt.Errorf("store: %s: chunk %d has %d columns, schema has %d", filepath.Base(t.path), i, len(b.Cols), len(t.ft.kinds))
	}
	for ci := range b.Cols {
		if err := coerceKind(&b.Cols[ci], t.ft.kinds[ci], b.N); err != nil {
			return nil, fmt.Errorf("store: %s: chunk %d column %d: %w", filepath.Base(t.path), i, ci, err)
		}
	}
	return b, nil
}

// coerceKind reconciles a chunk-local column kind with the schema
// kind. Two legitimate mismatches exist: a typed chunk in an Any
// column (another chunk mixed the types) degrades to boxed, and an
// all-null chunk (encoded Any) in a typed column promotes to a fully
// null typed column. A typed-vs-other-typed mismatch cannot come from
// the writer and reports corruption.
func coerceKind(c *vec.Col, want vec.Kind, n int) error {
	if c.Kind == want {
		return nil
	}
	if want == vec.Any {
		// Box is authoritative (nulls are nil there), so degrading just
		// forgets the mirror and bitmap.
		c.Kind = vec.Any
		c.I64, c.F64, c.Str, c.B, c.Null = nil, nil, nil, nil, nil
		return nil
	}
	if c.Kind != vec.Any {
		return fmt.Errorf("kind %s under schema kind %s", c.Kind, want)
	}
	for i := 0; i < n; i++ {
		if c.Box[i] != nil {
			return fmt.Errorf("non-null value in an all-null-encoded chunk of schema kind %s", want)
		}
	}
	c.Kind = want
	switch want {
	case vec.Int, vec.Int32, vec.Int64, vec.Uint64:
		c.I64 = make([]int64, n)
	case vec.Float64:
		c.F64 = make([]float64, n)
	case vec.Bool:
		c.B = make([]bool, n)
	case vec.String:
		c.Str = make([]string, n)
	}
	c.Null = make([]uint64, (n+63)/64)
	for w := range c.Null {
		c.Null[w] = ^uint64(0) // bits past n are never queried
	}
	return nil
}

// Close closes the file handle. Idempotent; the file stays on disk.
func (t *TableFile) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
