// Package store is the engine's persistent columnar table format: one
// file per table, laid out as fixed-size row-group chunks followed by
// a self-describing footer. Each chunk is one batch in the spill
// package's columnar encoding (kind byte + packed null bitmap + typed
// payload per column — see internal/spill/colcodec.go), so table files
// and spill partitions share a single codec. The footer carries the
// schema, the chunk directory (offset/length/rows), per-chunk min/max
// zone maps for every column, total row count, a format version and a
// checksum, so Open needs one ReadAt of the file tail and every chunk
// decodes independently — concurrent scans issue ReadAt per chunk with
// no shared cursor.
//
// File layout:
//
//	[chunk 0][chunk 1]...[chunk k-1][footer][crc32 4B LE][footer len 8B LE][magic 8B]
//
// The footer (uvarint-based, version byte first) holds:
//
//	version byte (currently 1)
//	uvarint ncols; per column: uvarint name length + name bytes, kind byte
//	uvarint total rows
//	uvarint nchunks; per chunk:
//	  uvarint offset, uvarint encoded length, uvarint rows
//	  per column: zone map (flags byte, kind byte, min/max payload)
//
// Zone maps record, per chunk per column, whether nulls and non-nulls
// are present and — for typed columns — the min/max of the non-null
// values (floats: of the non-NaN values, with a separate has-NaN flag,
// because the predicate kernel's NaN comparisons are non-standard).
// Scans consult them through Skippable to prove a chunk matches no row
// of an ANDed predicate set before paying any I/O or decode.
package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"hierdb/internal/vec"
)

// magic trails every table file. The trailing byte doubles as a format
// generation: a layout change that can't hide behind the footer version
// byte bumps it.
var magic = [8]byte{'h', 'd', 'b', 't', 'b', 'l', '0', '1'}

const (
	footerVersion = 1
	// trailerLen is the fixed-size tail after the footer bytes: crc32,
	// footer length, magic.
	trailerLen = 4 + 8 + 8
	// DefaultChunkRows is the writer's default row-group size: small
	// enough that a decoded chunk fits comfortably inside even the tiny
	// test memory budgets, large enough to amortize per-chunk framing.
	DefaultChunkRows = 4096
)

// ZoneMap summarizes one column within one chunk. The Kind is the
// chunk-local encoded kind (an all-null chunk of an int column encodes
// as Any), and the min/max fields are valid per HasRange:
// MinI64/MaxI64 for the int family (uint64 as bit patterns compared
// unsigned, bool as 0/1), MinF64/MaxF64 for floats (over the non-NaN
// values only), MinStr/MaxStr for strings. Any columns never carry a
// range and are only prunable through the null-presence flags.
type ZoneMap struct {
	Kind       vec.Kind
	HasNulls   bool // at least one null row
	HasNonNull bool // at least one non-null row
	HasRange   bool // min/max valid: ≥1 non-null (and, for floats, non-NaN) value
	HasNaN     bool // float columns: at least one NaN value present
	MinI64     int64
	MaxI64     int64
	MinF64     float64
	MaxF64     float64
	MinStr     string
	MaxStr     string
}

// ChunkInfo locates one chunk and carries its per-column zone maps.
type ChunkInfo struct {
	// Off is the chunk's byte offset in the file.
	Off int64
	// Len is the encoded chunk length in bytes — the I/O cost of
	// scanning the chunk, surfaced as DiskBytesRead.
	Len int64
	// Rows is the chunk's row count.
	Rows int
	// Zones holds one zone map per table column.
	Zones []ZoneMap
}

// footer is the decoded file tail.
type footer struct {
	cols   []string
	kinds  []vec.Kind
	rows   int64
	chunks []ChunkInfo
}

// zone map flag bits (part of the on-disk format).
const (
	zfNulls   = 1 << 0
	zfNonNull = 1 << 1
	zfRange   = 1 << 2
	zfNaN     = 1 << 3
)

func appendFooter(buf []byte, ft *footer) []byte {
	buf = append(buf, footerVersion)
	buf = binary.AppendUvarint(buf, uint64(len(ft.cols)))
	for i, name := range ft.cols {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = append(buf, byte(ft.kinds[i]))
	}
	buf = binary.AppendUvarint(buf, uint64(ft.rows))
	buf = binary.AppendUvarint(buf, uint64(len(ft.chunks)))
	for ci := range ft.chunks {
		ch := &ft.chunks[ci]
		buf = binary.AppendUvarint(buf, uint64(ch.Off))
		buf = binary.AppendUvarint(buf, uint64(ch.Len))
		buf = binary.AppendUvarint(buf, uint64(ch.Rows))
		for zi := range ch.Zones {
			buf = appendZone(buf, &ch.Zones[zi])
		}
	}
	return buf
}

func appendZone(buf []byte, z *ZoneMap) []byte {
	var flags byte
	if z.HasNulls {
		flags |= zfNulls
	}
	if z.HasNonNull {
		flags |= zfNonNull
	}
	if z.HasRange {
		flags |= zfRange
	}
	if z.HasNaN {
		flags |= zfNaN
	}
	buf = append(buf, flags, byte(z.Kind))
	if !z.HasRange {
		return buf
	}
	switch z.Kind {
	case vec.Int, vec.Int32, vec.Int64, vec.Bool:
		buf = binary.AppendVarint(buf, z.MinI64)
		buf = binary.AppendVarint(buf, z.MaxI64)
	case vec.Uint64:
		buf = binary.AppendUvarint(buf, uint64(z.MinI64))
		buf = binary.AppendUvarint(buf, uint64(z.MaxI64))
	case vec.Float64:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(z.MinF64))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(z.MaxF64))
	case vec.String:
		buf = binary.AppendUvarint(buf, uint64(len(z.MinStr)))
		buf = append(buf, z.MinStr...)
		buf = binary.AppendUvarint(buf, uint64(len(z.MaxStr)))
		buf = append(buf, z.MaxStr...)
	}
	return buf
}

func decodeFooter(buf []byte) (*footer, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("empty footer")
	}
	if buf[0] != footerVersion {
		return nil, fmt.Errorf("unsupported footer version %d (want %d)", buf[0], footerVersion)
	}
	buf = buf[1:]
	ncols, buf, err := readUvarint(buf)
	if err != nil {
		return nil, fmt.Errorf("column count: %w", err)
	}
	if ncols > uint64(len(buf)) {
		return nil, fmt.Errorf("corrupt column count %d", ncols)
	}
	ft := &footer{
		cols:  make([]string, ncols),
		kinds: make([]vec.Kind, ncols),
	}
	for i := range ft.cols {
		var nl uint64
		if nl, buf, err = readUvarint(buf); err != nil {
			return nil, fmt.Errorf("column name: %w", err)
		}
		if uint64(len(buf)) < nl+1 {
			return nil, fmt.Errorf("truncated column name")
		}
		ft.cols[i] = string(buf[:nl])
		ft.kinds[i] = vec.Kind(buf[nl])
		if ft.kinds[i] > vec.String {
			return nil, fmt.Errorf("unknown column kind %d", buf[nl])
		}
		buf = buf[nl+1:]
	}
	rows, buf, err := readUvarint(buf)
	if err != nil {
		return nil, fmt.Errorf("row count: %w", err)
	}
	ft.rows = int64(rows)
	nchunks, buf, err := readUvarint(buf)
	if err != nil {
		return nil, fmt.Errorf("chunk count: %w", err)
	}
	if nchunks > uint64(len(buf))+1 { // ≥1 byte per chunk entry (except a lone zero-col chunk)
		return nil, fmt.Errorf("corrupt chunk count %d", nchunks)
	}
	ft.chunks = make([]ChunkInfo, nchunks)
	for ci := range ft.chunks {
		ch := &ft.chunks[ci]
		var off, ln, rows uint64
		if off, buf, err = readUvarint(buf); err != nil {
			return nil, fmt.Errorf("chunk %d offset: %w", ci, err)
		}
		if ln, buf, err = readUvarint(buf); err != nil {
			return nil, fmt.Errorf("chunk %d length: %w", ci, err)
		}
		if rows, buf, err = readUvarint(buf); err != nil {
			return nil, fmt.Errorf("chunk %d rows: %w", ci, err)
		}
		ch.Off, ch.Len, ch.Rows = int64(off), int64(ln), int(rows)
		ch.Zones = make([]ZoneMap, ncols)
		for zi := range ch.Zones {
			if buf, err = decodeZone(buf, &ch.Zones[zi]); err != nil {
				return nil, fmt.Errorf("chunk %d zone %d: %w", ci, zi, err)
			}
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%d trailing footer bytes", len(buf))
	}
	return ft, nil
}

func decodeZone(buf []byte, z *ZoneMap) ([]byte, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("truncated zone map")
	}
	flags := buf[0]
	z.Kind = vec.Kind(buf[1])
	if z.Kind > vec.String {
		return nil, fmt.Errorf("unknown zone kind %d", buf[1])
	}
	z.HasNulls = flags&zfNulls != 0
	z.HasNonNull = flags&zfNonNull != 0
	z.HasRange = flags&zfRange != 0
	z.HasNaN = flags&zfNaN != 0
	buf = buf[2:]
	if !z.HasRange {
		return buf, nil
	}
	var err error
	switch z.Kind {
	case vec.Int, vec.Int32, vec.Int64, vec.Bool:
		if z.MinI64, buf, err = readVarint(buf); err != nil {
			return nil, err
		}
		if z.MaxI64, buf, err = readVarint(buf); err != nil {
			return nil, err
		}
	case vec.Uint64:
		var u uint64
		if u, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		z.MinI64 = int64(u)
		if u, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		z.MaxI64 = int64(u)
	case vec.Float64:
		if len(buf) < 16 {
			return nil, fmt.Errorf("truncated float range")
		}
		z.MinF64 = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		z.MaxF64 = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		buf = buf[16:]
	case vec.String:
		var nl uint64
		if nl, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		if nl > uint64(len(buf)) {
			return nil, fmt.Errorf("truncated string range")
		}
		z.MinStr = string(buf[:nl])
		buf = buf[nl:]
		if nl, buf, err = readUvarint(buf); err != nil {
			return nil, err
		}
		if nl > uint64(len(buf)) {
			return nil, fmt.Errorf("truncated string range")
		}
		z.MaxStr = string(buf[:nl])
		buf = buf[nl:]
	default:
		return nil, fmt.Errorf("zone range on kind %s", z.Kind)
	}
	return buf, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, nil, fmt.Errorf("truncated uvarint")
	}
	return v, buf[w:], nil
}

func readVarint(buf []byte) (int64, []byte, error) {
	v, w := binary.Varint(buf)
	if w <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, buf[w:], nil
}

// zoneFor computes the zone map of one dense chunk column (storage
// position == logical row, as FromRows produces).
func zoneFor(c *vec.Col, n int) ZoneMap {
	z := ZoneMap{Kind: c.Kind}
	switch c.Kind {
	case vec.Int, vec.Int32, vec.Int64:
		for i := 0; i < n; i++ {
			if c.NullAt(i) {
				z.HasNulls = true
				continue
			}
			v := c.I64[i]
			if !z.HasRange || v < z.MinI64 {
				z.MinI64 = v
			}
			if !z.HasRange || v > z.MaxI64 {
				z.MaxI64 = v
			}
			z.HasRange, z.HasNonNull = true, true
		}
	case vec.Uint64:
		for i := 0; i < n; i++ {
			if c.NullAt(i) {
				z.HasNulls = true
				continue
			}
			v := uint64(c.I64[i])
			if !z.HasRange || v < uint64(z.MinI64) {
				z.MinI64 = int64(v)
			}
			if !z.HasRange || v > uint64(z.MaxI64) {
				z.MaxI64 = int64(v)
			}
			z.HasRange, z.HasNonNull = true, true
		}
	case vec.Float64:
		for i := 0; i < n; i++ {
			if c.NullAt(i) {
				z.HasNulls = true
				continue
			}
			z.HasNonNull = true
			v := c.F64[i]
			if v != v {
				z.HasNaN = true
				continue
			}
			if !z.HasRange || v < z.MinF64 {
				z.MinF64 = v
			}
			if !z.HasRange || v > z.MaxF64 {
				z.MaxF64 = v
			}
			z.HasRange = true
		}
	case vec.Bool:
		for i := 0; i < n; i++ {
			if c.NullAt(i) {
				z.HasNulls = true
				continue
			}
			var v int64
			if c.B[i] {
				v = 1
			}
			if !z.HasRange || v < z.MinI64 {
				z.MinI64 = v
			}
			if !z.HasRange || v > z.MaxI64 {
				z.MaxI64 = v
			}
			z.HasRange, z.HasNonNull = true, true
		}
	case vec.String:
		for i := 0; i < n; i++ {
			if c.NullAt(i) {
				z.HasNulls = true
				continue
			}
			v := c.Str[i]
			if !z.HasRange || v < z.MinStr {
				z.MinStr = v
			}
			if !z.HasRange || v > z.MaxStr {
				z.MaxStr = v
			}
			z.HasRange, z.HasNonNull = true, true
		}
	default: // Any: null presence only, never a range
		for i := 0; i < n; i++ {
			if c.Box[i] == nil {
				z.HasNulls = true
			} else {
				z.HasNonNull = true
			}
		}
	}
	return z
}
