package core

import (
	"os"
	"testing"

	"hierdb/internal/cluster"
	"hierdb/internal/plan"
)

// TestDebugFPSensitivity probes whether FP response time reacts to
// allocation quality at all. Enable with HIERDB_DEBUG=1.
func TestDebugFPSensitivity(t *testing.T) {
	if os.Getenv("HIERDB_DEBUG") == "" {
		t.Skip("set HIERDB_DEBUG=1")
	}
	cfg := cluster.DefaultConfig(1, 8)
	tree := chainPlanForDebug(5, 1, 10)

	run := func(work func(i int) float64) *struct {
		rt, idle float64
	} {
		opt := DefaultOptions(FP)
		opt.FPWork = make([]float64, len(tree.Ops))
		for i := range opt.FPWork {
			opt.FPWork[i] = work(i)
		}
		r, err := Run(tree, cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		return &struct{ rt, idle float64 }{r.ResponseTime.Seconds(), r.Idle.Seconds()}
	}

	// True-ish weights: probes heavy.
	good := run(func(i int) float64 {
		if tree.Ops[i].Kind == plan.Probe {
			return 100
		}
		return 10
	})
	// Inverted weights: scans heavy, probes starved.
	bad := run(func(i int) float64 {
		if tree.Ops[i].Kind == plan.Probe {
			return 1
		}
		return 100
	})
	uniform := run(func(i int) float64 { return 1 })
	t.Logf("good rt=%.1fs idle=%.1fs | bad rt=%.1fs idle=%.1fs | uniform rt=%.1fs idle=%.1fs",
		good.rt, good.idle, bad.rt, bad.idle, uniform.rt, uniform.idle)
}
