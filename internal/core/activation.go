package core

// This file defines activations, the paper's self-contained units of
// sequential work (§3.1). A trigger activation carries a (scan operator,
// page range, disk) reference; a data activation carries an (operator,
// tuple batch, bucket) reference. Activations are resumable: their
// execution state lives in the struct so a thread can suspend one (output
// queue full, disk page not ready) and pick other work, which is the
// role procedure-call suspension plays in the paper.
//
// Activations are pooled on the Engine: completing one returns it to a
// free list, so steady-state execution creates no garbage on the
// activation path.

import "hierdb/internal/simdisk"

type actKind int

const (
	// trigger starts a leaf (scan) operator on a page range.
	trigger actKind = iota
	// data carries a batch of pipelined tuples for a build or probe.
	data
)

// activation is one unit of sequential work.
type activation struct {
	op   *opState
	kind actKind
	// node is the SM-node currently holding the activation.
	node int

	// Trigger state: pages to read from disk diskIdx, covering tuples
	// base-relation tuples.
	pages     int
	tuples    int64
	diskIdx   int
	req       *simdisk.Request
	pagesDone int

	// Data state: dataTuples input tuples destined to bucket.
	bucket     int
	dataTuples int64
	cpuCharged bool

	// Emission state: output tuples not yet packed into a batch, and the
	// batch currently awaiting queue space or network credit (valid while
	// hasPending; stored by value so emission never allocates).
	emitRemaining int64
	pending       batch
	hasPending    bool

	// recvInstr is CPU to charge to the dequeuing thread when the
	// activation arrived over the network (§5.1.1 receive cost).
	recvInstr int64
	// srcNode is the producing node for credit-return purposes; -1 when
	// produced locally.
	srcNode int
	// stolen marks activations acquired through global load balancing.
	stolen bool
}

// newActivation takes an activation from the engine pool (or allocates on
// first use). Fields are zeroed except srcNode, which defaults to -1
// (produced locally).
//
//hierdb:hotpath
func (e *Engine) newActivation() *activation {
	var a *activation
	if n := len(e.actFree); n > 0 {
		a = e.actFree[n-1]
		e.actFree = e.actFree[:n-1]
	} else {
		a = &activation{}
	}
	a.srcNode = -1
	return a
}

// freeActivation recycles a fully consumed activation into the pool.
//
//hierdb:hotpath
func (e *Engine) freeActivation(a *activation) {
	*a = activation{}
	e.actFree = append(e.actFree, a)
}

// batch is a group of output tuples bound for one bucket of the consumer
// operator.
type batch struct {
	consumer *opState
	bucket   int
	tuples   int64
	dstNode  int
}

// activationHeaderBytes is the on-wire size of an activation descriptor.
const activationHeaderBytes = 32

// bytes returns the activation's transfer size.
func (a *activation) bytes() int64 {
	switch a.kind {
	case trigger:
		return activationHeaderBytes
	default:
		return activationHeaderBytes + a.dataTuples*a.op.op.TupleBytes
	}
}

func batchBytes(tuples, tupleBytes int64) int64 {
	return activationHeaderBytes + tuples*tupleBytes
}

// queue is a bounded FIFO of activations. One queue exists per (operator,
// thread) on every home node of the operator (§3.1); capacity bounds
// memory growth and provides the flow control synchronizing producers and
// consumers in a pipeline chain. Storage is a growable power-of-two ring
// buffer, so steady-state push/pop never allocate or copy.
type queue struct {
	op   *opState
	node int
	idx  int

	items []*activation // ring storage; len(items) is a power of two
	head  int
	count int
}

func (q *queue) len() int { return q.count }

func (q *queue) empty() bool { return q.count == 0 }

// full reports whether the queue is at capacity for producer flow control.
func (q *queue) full(capacity int) bool { return q.count >= capacity }

// at returns the i-th queued activation (0 = front) without removing it.
//
//hierdb:hotpath
func (q *queue) at(i int) *activation {
	return q.items[(q.head+i)&(len(q.items)-1)]
}

//hierdb:hotpath
func (q *queue) push(a *activation) {
	if q.count == len(q.items) {
		q.grow()
	}
	q.items[(q.head+q.count)&(len(q.items)-1)] = a
	q.count++
}

// grow doubles the ring, unwrapping the live window to the front.
//
//hierdb:hotpath
func (q *queue) grow() {
	size := len(q.items) * 2
	if size == 0 {
		size = 8
	}
	items := make([]*activation, size)
	for i := 0; i < q.count; i++ {
		items[i] = q.at(i)
	}
	q.items = items
	q.head = 0
}

//hierdb:hotpath
func (q *queue) pop() *activation {
	if q.count == 0 {
		return nil
	}
	a := q.items[q.head]
	q.items[q.head] = nil
	q.head = (q.head + 1) & (len(q.items) - 1)
	q.count--
	return a
}

// popAll removes and returns every queued activation (used by load
// sharing when a queue is stolen).
func (q *queue) popAll() []*activation {
	return q.popN(q.len())
}

// popN removes and returns up to n activations from the front.
//
//hierdb:hotpath
func (q *queue) popN(n int) []*activation {
	if n > q.count {
		n = q.count
	}
	out := make([]*activation, 0, n)
	for len(out) < n {
		out = append(out, q.pop())
	}
	return out
}

// consumable reports whether threads may consume from the queue: the
// operator must have started (scheduling constraints satisfied, §3.1
// "blocked queues") and not yet terminated.
func (q *queue) consumable() bool {
	return q.op.started && !q.op.terminating && !q.empty()
}
