package core

// Unit tests of internal building blocks: the queue FIFO, activation
// sizing, bucket-to-node declustering, scan seeding and steal-candidate
// selection conditions.

import (
	"testing"
	"testing/quick"

	"hierdb/internal/cluster"
	"hierdb/internal/plan"
	"hierdb/internal/simtime"
)

func TestQueueFIFO(t *testing.T) {
	q := &queue{}
	for i := 0; i < 5; i++ {
		q.push(&activation{bucket: i})
	}
	if q.len() != 5 {
		t.Fatalf("len = %d", q.len())
	}
	for i := 0; i < 5; i++ {
		a := q.pop()
		if a == nil || a.bucket != i {
			t.Fatalf("pop %d returned %+v", i, a)
		}
	}
	if !q.empty() || q.pop() != nil {
		t.Fatal("empty queue misbehaves")
	}
}

func TestQueueCompaction(t *testing.T) {
	q := &queue{}
	// Interleave pushes and pops past the compaction threshold.
	for i := 0; i < 500; i++ {
		q.push(&activation{bucket: i})
		if i%2 == 1 {
			q.pop()
		}
	}
	want := 250
	if q.len() != want {
		t.Fatalf("len = %d, want %d", q.len(), want)
	}
	// Remaining items must still come out in order.
	last := -1
	for !q.empty() {
		a := q.pop()
		if a.bucket <= last {
			t.Fatalf("order broken after compaction: %d after %d", a.bucket, last)
		}
		last = a.bucket
	}
}

func TestQueuePopN(t *testing.T) {
	q := &queue{}
	for i := 0; i < 10; i++ {
		q.push(&activation{bucket: i})
	}
	got := q.popN(4)
	if len(got) != 4 || got[0].bucket != 0 || got[3].bucket != 3 {
		t.Fatalf("popN(4) = %v", got)
	}
	rest := q.popN(100)
	if len(rest) != 6 {
		t.Fatalf("popN(100) returned %d", len(rest))
	}
}

func TestQueueFullFlag(t *testing.T) {
	q := &queue{}
	for i := 0; i < 3; i++ {
		q.push(&activation{})
	}
	if !q.full(3) || q.full(4) {
		t.Fatal("full() wrong")
	}
}

func TestActivationBytes(t *testing.T) {
	o := &opState{op: &plan.Operator{TupleBytes: 100}}
	trig := &activation{op: o, kind: trigger, pages: 4}
	if trig.bytes() != activationHeaderBytes {
		t.Fatalf("trigger bytes = %d", trig.bytes())
	}
	dat := &activation{op: o, kind: data, dataTuples: 10}
	if dat.bytes() != activationHeaderBytes+1000 {
		t.Fatalf("data bytes = %d", dat.bytes())
	}
	if batchBytes(5, 100) != activationHeaderBytes+500 {
		t.Fatal("batchBytes")
	}
}

func TestBucketDeclustering(t *testing.T) {
	o := &opState{
		home:    []int{0, 1, 2},
		homePos: newHomePos(3, []int{0, 1, 2}),
	}
	o.perNode = []*opNode{
		{node: 0, queues: make([]*queue, 4)},
		{node: 1, queues: make([]*queue, 4)},
		{node: 2, queues: make([]*queue, 4)},
	}
	// Buckets round-robin across the home; queue index spreads
	// same-node buckets over queues.
	counts := map[int]int{}
	for b := 0; b < 120; b++ {
		n := o.nodeOfBucket(b)
		counts[n]++
		qi := o.queueOfBucket(b)
		if qi < 0 || qi >= 4 {
			t.Fatalf("queueOfBucket(%d) = %d", b, qi)
		}
	}
	for n, c := range counts {
		if c != 40 {
			t.Fatalf("node %d got %d buckets", n, c)
		}
	}
}

func TestTakeOutputResidue(t *testing.T) {
	on := &opNode{}
	// 10 inputs at ratio 0.25 -> exactly 25 outputs over 10 calls.
	var total int64
	for i := 0; i < 10; i++ {
		total += on.takeOutput(10, 0.25)
	}
	if total != 25 {
		t.Fatalf("residue accumulation lost tuples: %d", total)
	}
}

func TestTakeOutputQuickConservation(t *testing.T) {
	f := func(nRaw uint8, ratioRaw uint16, calls uint8) bool {
		on := &opNode{}
		n := int64(nRaw%50) + 1
		ratio := float64(ratioRaw%1000) / 100 // up to 10x growth
		k := int(calls%20) + 1
		var total int64
		for i := 0; i < k; i++ {
			total += on.takeOutput(n, ratio)
		}
		exact := float64(n) * float64(k) * ratio
		diff := float64(total) - exact
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedScanDistribution(t *testing.T) {
	cfg := cluster.DefaultConfig(2, 2)
	tree := smallPlan(t, 41, 3, 2)
	opt := DefaultOptions(DP)
	k := simtime.NewKernel()
	cl := cluster.New(k, cfg)
	e, err := newEngine(k, cl, tree, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Chain 0's driver scan was seeded on both nodes, round-robin over
	// queues, and its outstanding count equals the queued triggers.
	driver := e.ops[tree.Chains[0][0].ID]
	var queued int64
	for _, on := range driver.perNode {
		nodeQueued := 0
		for _, q := range on.queues {
			nodeQueued += q.len()
		}
		if nodeQueued == 0 {
			t.Fatalf("node %d has no triggers", on.node)
		}
		queued += int64(nodeQueued)
	}
	if queued != driver.outstanding {
		t.Fatalf("outstanding %d != queued %d", driver.outstanding, queued)
	}
	if !driver.producerDone {
		t.Fatal("scan producerDone not set after seeding")
	}
}

func TestBestCandidateConditions(t *testing.T) {
	cfg := cluster.DefaultConfig(2, 2)
	tree := chainPlanForDebug(3, 2, 100)
	opt := DefaultOptions(DP)
	k := simtime.NewKernel()
	cl := cluster.New(k, cfg)
	e, err := newEngine(k, cl, tree, opt)
	if err != nil {
		t.Fatal(err)
	}
	pv, req := e.nodes[0], e.nodes[1]

	// Find a probe op and stuff one of the provider's queues.
	var probe *opState
	for _, o := range e.ops {
		if o.isProbe() {
			probe = o
			break
		}
	}
	probe.started = true
	on := probe.at(0)
	for i := 0; i < 10; i++ {
		on.queues[0].push(&activation{op: probe, kind: data, bucket: 0, dataTuples: 5, srcNode: -1})
	}

	c := e.bestCandidate(pv, req, nil, 1<<30)
	if c == nil || c.q != on.queues[0] {
		t.Fatal("candidate not found for a full probe queue")
	}

	// Condition (ii): below MinStealActivations no candidate.
	on.queues[0].popN(10 - opt.MinStealActivations + 1)
	if e.bestCandidate(pv, req, nil, 1<<30) != nil {
		t.Fatal("queue below MinSteal offered")
	}

	// Condition (i): must fit in requester memory.
	for i := 0; i < 10; i++ {
		on.queues[0].push(&activation{op: probe, kind: data, bucket: 0, dataTuples: 5, srcNode: -1})
	}
	if e.bestCandidate(pv, req, nil, 1) != nil {
		t.Fatal("candidate offered beyond requester memory")
	}

	// Condition (v): blocked (not started) operators are not candidates.
	probe.started = false
	if e.bestCandidate(pv, req, nil, 1<<30) != nil {
		t.Fatal("blocked operator offered")
	}
	probe.started = true

	// Condition (iv): builds and scans are never candidates.
	for _, o := range e.ops {
		if o.op.Kind == plan.Build && o.started {
			bon := o.at(0)
			for i := 0; i < 10; i++ {
				bon.queues[0].push(&activation{op: o, kind: data, bucket: 0, dataTuples: 5, srcNode: -1})
			}
			probe.at(0).queues[0].popN(1 << 20) // drain the probe queue
			if c := e.bestCandidate(pv, req, nil, 1<<30); c != nil && !c.q.op.isProbe() {
				t.Fatal("non-probe operator offered")
			}
			break
		}
	}
}
