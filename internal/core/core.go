package core
