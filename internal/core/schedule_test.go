package core

import (
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
)

// fullParallelPlan expands the same query with both scheduling heuristics
// disabled (§3.2's full-parallel strategy).
func fullParallelPlan(t *testing.T, seed uint64, rels, nodes int) *plan.Tree {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes, 2)
	q := smallQuery(seed, rels, nodes)
	o := optimizer.New(plan.DefaultCosts(), cfg)
	return o.PlansSchedule(q, 1, catalog.AllNodes(nodes), plan.Schedule{})[0]
}

func TestFullParallelCompletesWithSameResults(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	seq := smallPlan(t, 31, 5, 1)
	par := fullParallelPlan(t, 31, 5, 1)
	rSeq := runDP(t, seq, cfg, nil)
	rPar := runDP(t, par, cfg, nil)
	diff := rSeq.ResultTuples - rPar.ResultTuples
	if diff < 0 {
		diff = -diff
	}
	if rSeq.ResultTuples == 0 || float64(diff)/float64(rSeq.ResultTuples) > 0.01 {
		t.Fatalf("results differ: one-at-a-time %d vs full-parallel %d", rSeq.ResultTuples, rPar.ResultTuples)
	}
	t.Logf("one-at-a-time rt=%v, full-parallel rt=%v", rSeq.ResponseTime, rPar.ResponseTime)
}

func TestFullParallelMultiNode(t *testing.T) {
	cfg := cluster.DefaultConfig(2, 2)
	par := fullParallelPlan(t, 32, 4, 2)
	r := runDP(t, par, cfg, nil)
	if r.ResultTuples <= 0 {
		t.Fatal("no results")
	}
}

func TestFullParallelOnlyHashConstraints(t *testing.T) {
	par := fullParallelPlan(t, 33, 5, 1)
	for _, op := range par.Ops {
		switch op.Kind {
		case plan.Scan:
			if len(op.Blockers) != 0 {
				t.Fatalf("%s has blockers under full-parallel schedule", op.Name)
			}
		case plan.Probe:
			if len(op.Blockers) != 1 || op.Blockers[0] != op.Partner {
				t.Fatalf("%s blockers != [partner build]", op.Name)
			}
		}
	}
}

func TestTablesReadyOnlySchedule(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	q := smallQuery(34, 4, 1)
	o := optimizer.New(plan.DefaultCosts(), cfg)
	tree := o.PlansSchedule(q, 1, catalog.AllNodes(1), plan.Schedule{TablesReady: true})[0]
	r := runDP(t, tree, cfg, nil)
	if r.ResultTuples <= 0 {
		t.Fatal("no results")
	}
}
