package core

// Runtime state of operators and SM-nodes.

import (
	"hierdb/internal/plan"
	"hierdb/internal/simtime"
	"hierdb/internal/xrand"
)

// opState is the engine-wide runtime state of one operator.
type opState struct {
	eng *Engine
	op  *plan.Operator

	// home lists the SM-nodes executing the operator; homePos maps a
	// node id to its position in home (-1 when the node is not in the
	// home). A flat slice indexed by node id keeps the per-activation
	// lookups off the map path.
	home    []int
	homePos []int

	// buckets is the degree of fragmentation of the join this operator
	// belongs to (build/probe); 0 for scans.
	buckets int
	// bucketZipf distributes incoming tuples over buckets (redistribution
	// skew, §5.2.2); nil for scans.
	bucketZipf *xrand.Zipf
	// rng drives this operator's random draws.
	rng *xrand.Rand

	// matchesPerTuple is, for probes, the expected result tuples per
	// probing tuple: selectivity x build-input cardinality.
	matchesPerTuple float64

	// Scheduling state.
	blockersLeft int
	dependents   []*opState
	started      bool
	// terminating is set while the end-of-operator protocol runs;
	// terminated once every node knows.
	terminating bool
	terminated  bool
	// producerDone reports that no more activations will ever be
	// produced for this operator (scan: seeding finished; build/probe:
	// the producing operator terminated).
	producerDone bool
	// outstanding counts activations created but not fully processed
	// (queued, suspended, in flight). Termination requires zero.
	outstanding int64

	perNode []*opNode // indexed by position in home

	// results counts output tuples of the root operator.
	results int64
}

// newHomePos builds the node-id -> home-position index for home.
func newHomePos(nodes int, home []int) []int {
	pos := make([]int, nodes)
	for i := range pos {
		pos[i] = -1
	}
	for i, n := range home {
		pos[n] = i
	}
	return pos
}

// opNode is the per-SM-node state of an operator.
type opNode struct {
	node   int
	queues []*queue
	// residue carries fractional output tuples between activations so
	// totals match the estimates exactly up to rounding.
	residue float64
	// tables counts tuples per bucket for the hash tables built at this
	// node (build operators; probes share via partner). Indexed by
	// bucket, grown on demand.
	tables     []int64
	tableBytes int64
}

// tableTuples returns the built tuple count for bucket b (0 when the
// bucket has no table here).
func (on *opNode) tableTuples(b int) int64 {
	if b < len(on.tables) {
		return on.tables[b]
	}
	return 0
}

// addTable adds n built tuples to bucket b.
func (on *opNode) addTable(b int, n int64) {
	if b >= len(on.tables) {
		grown := make([]int64, b+1)
		copy(grown, on.tables)
		on.tables = grown
	}
	on.tables[b] += n
}

// nodeOfBucket maps a bucket to the home node storing it: buckets are
// declustered round-robin across the operator home.
func (o *opState) nodeOfBucket(b int) int {
	return o.home[b%len(o.home)]
}

// queueOfBucket maps a bucket to a queue index on its node, spreading
// consecutive same-node buckets over the node's queues.
func (o *opState) queueOfBucket(b int) int {
	q := len(o.home)
	return (b / q) % len(o.perNode[0].queues)
}

// at returns the per-node state for node id n (which must be in the home).
func (o *opState) at(n int) *opNode {
	return o.perNode[o.homePos[n]]
}

// isProbe reports whether the operator is a probe (the only kind whose
// activations global load balancing may acquire, condition (iv) of §3.2).
func (o *opState) isProbe() bool { return o.op.Kind == plan.Probe }

// consumer returns the opState receiving this operator's output, or nil.
func (o *opState) consumer() *opState {
	if o.op.Consumer == nil {
		return nil
	}
	return o.eng.ops[o.op.Consumer.ID]
}

// takeOutput converts n input-side tuples into output tuples using ratio,
// carrying fractional parts in the node residue.
func (on *opNode) takeOutput(n int64, ratio float64) int64 {
	exact := on.residue + float64(n)*ratio
	out := int64(exact)
	on.residue = exact - float64(out)
	if out < 0 {
		out = 0
	}
	return out
}

// opBitset is a set of operators indexed by operator ID (the FP
// thread-to-operator allocation). A nil bitset means "all operators".
type opBitset []uint64

func newOpBitset(ops int) opBitset {
	return make(opBitset, (ops+63)/64)
}

func (b opBitset) set(id int) { b[id/64] |= 1 << (uint(id) % 64) }

func (b opBitset) has(id int) bool {
	return b[id/64]&(1<<(uint(id)%64)) != 0
}

// engNode is the runtime state of one SM-node.
type engNode struct {
	eng *Engine
	id  int

	threads []*thread

	// active is the circular list of §4 (Local Activation Selection):
	// references to all queues of started, non-terminated operators on
	// this node.
	active []*queue

	// credits is the remaining send window per (operator, destination
	// node); creditDebt counts consumed remote activations per
	// (operator, source node) awaiting a credit-return message. Both are
	// flat slices indexed by opID*nodes+peer (see credIdx), keeping the
	// flow-control fast path free of map operations.
	credits    []int
	creditDebt []int

	// memUsed approximates shared-memory consumption (hash tables plus
	// stolen data), bounding load-sharing acquisitions (condition (i)).
	memUsed int64

	// stealOutstanding serializes DP starving rounds: when a whole node
	// starves, one request is issued at a time (§5.3: with DP "there
	// cannot be repeated or mutual starving situations").
	stealOutstanding bool
	// nextStealTime paces retries after a failed round.
	nextStealTime simtime.Time

	// shipped is the provider-side stolen-queue cache: hash-table
	// buckets already copied to a requester, per (operator, bucket,
	// requester) (§4 optimization).
	shipped map[shipKey]bool
}

type shipKey struct {
	opID      int
	bucket    int
	requester int
}

// credIdx flattens an (operator, peer node) credit key.
func (n *engNode) credIdx(opID, peer int) int {
	return opID*len(n.eng.nodes) + peer
}

// creditsFor returns the node's remaining send window for (opID, peer).
func (n *engNode) creditsFor(opID, peer int) int {
	return n.credits[n.credIdx(opID, peer)]
}

// initCredits sizes the flow-control windows once the operator count is
// known, filling every window to the initial credit grant.
func (n *engNode) initCredits(ops, nodes int) {
	n.credits = make([]int, ops*nodes)
	full := n.eng.initialCredits()
	for i := range n.credits {
		n.credits[i] = full
	}
	n.creditDebt = make([]int, ops*nodes)
}

// freeMem returns the node's remaining memory budget.
func (n *engNode) freeMem() int64 {
	free := n.eng.cl.Cfg.MemoryPerNode - n.memUsed
	if free < 0 {
		free = 0
	}
	return free
}

// rebuildActive reconstructs the circular queue list after an operator
// starts or terminates (§4: "This list is ... updated at the end of each
// operator").
func (n *engNode) rebuildActive() {
	n.active = n.active[:0]
	for _, o := range n.eng.ops {
		if !o.started || o.terminating {
			continue
		}
		pos := o.homePos[n.id]
		if pos < 0 {
			continue
		}
		n.active = append(n.active, o.perNode[pos].queues...)
	}
}

// queuedActivations counts consumable activations on the node (the load
// reported in starving-protocol offers).
func (n *engNode) queuedActivations() int {
	total := 0
	for _, q := range n.active {
		if q.consumable() {
			total += q.len()
		}
	}
	return total
}

// wake signals every sleeping thread on the node.
func (n *engNode) wake() {
	for _, t := range n.threads {
		t.wake()
	}
}

// wakeFor signals only the threads allowed to consume o's activations —
// under FP most threads are bound to other operators and waking them per
// enqueue would only make them rescan and re-park.
func (n *engNode) wakeFor(o *opState) {
	for _, t := range n.threads {
		if t.allowed == nil || t.allowed.has(o.op.ID) {
			t.wake()
		}
	}
}
