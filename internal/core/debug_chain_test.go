package core

import (
	"fmt"
	"os"
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/simtime"
)

// chainPlanForDebug mirrors experiments.ChainPlan without the import.
func chainPlanForDebug(ops, nodes int, div int64) *plan.Tree {
	home := catalog.AllNodes(nodes)
	big := &catalog.Relation{Name: "DRIVER", Cardinality: 1_000_000 / div, TupleBytes: 100, Home: home}
	rels := []*catalog.Relation{big}
	var edges []querygen.Edge
	for i := 0; i < ops-1; i++ {
		small := &catalog.Relation{Name: fmt.Sprintf("DIM%d", i+1), Cardinality: 20_000 / div, TupleBytes: 100, Home: home}
		rels = append(rels, small)
		edges = append(edges, querygen.Edge{A: 0, B: i + 1, Selectivity: 1 / float64(small.Cardinality)})
	}
	q := &querygen.Query{Name: "chain", Relations: rels, Edges: edges}
	node := &plan.JoinNode{Rel: big}
	for i := 0; i < ops-1; i++ {
		node = &plan.JoinNode{Left: node, Right: &plan.JoinNode{Rel: rels[i+1]}, Selectivity: edges[i].Selectivity}
	}
	return plan.Expand("chain", q, node, home)
}

// TestDebugChainTrace dumps engine state periodically for the §5.3
// transfer scenario. Enable with HIERDB_DEBUG=1.
func TestDebugChainTrace(t *testing.T) {
	if os.Getenv("HIERDB_DEBUG") == "" {
		t.Skip("set HIERDB_DEBUG=1")
	}
	cfg := cluster.DefaultConfig(4, 2)
	tree := chainPlanForDebug(5, 4, 10)
	t.Log(tree.String())
	opt := DefaultOptions(DP)
	opt.RedistributionSkew = 0.8
	k := simtime.NewKernel()
	cl := cluster.New(k, cfg)
	e, err := newEngine(k, cl, tree, opt)
	if err != nil {
		t.Fatal(err)
	}
	var dump func()
	dump = func() {
		if e.done {
			return
		}
		for _, op := range e.ops {
			if op.terminated {
				continue
			}
			queued := 0
			for _, on := range op.perNode {
				for _, qq := range on.queues {
					queued += qq.len()
				}
			}
			t.Logf("t=%v op=%s started=%v terminating=%v prodDone=%v outstanding=%d queued=%d",
				k.Now(), op.op.Name, op.started, op.terminating, op.producerDone, op.outstanding, queued)
		}
		t.Logf("  stealRounds=%d ok=%d stolen=%d", e.run.StealRounds, e.run.StealsSucceeded, e.run.StolenActivations)
		for _, n := range e.nodes {
			var susp int
			for _, th := range n.threads {
				susp += len(th.suspended)
			}
			t.Logf("  node %d: queued=%d suspended=%d stealOutstanding=%v", n.id, n.queuedActivations(), susp, n.stealOutstanding)
		}
		k.After(2*simtime.Second, dump)
	}
	k.After(2*simtime.Second, dump)
	k.After(20*simtime.Second, func() { panic("abort") })
	func() {
		defer func() { recover() }()
		_ = k.Run()
	}()
	if e.done {
		t.Logf("completed at %v", e.doneTime)
	}
}
