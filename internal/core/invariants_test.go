package core

// White-box tests of the engine's internal invariants: conservation of
// tuples through the pipeline, end-of-operator protocol costs, flow
// control, and FP allocation.

import (
	"testing"
	"testing/quick"

	"hierdb/internal/cluster"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
	"hierdb/internal/simtime"
)

func newOptForTest(cfg cluster.Config) *optimizer.Optimizer {
	return optimizer.New(plan.DefaultCosts(), cfg)
}

func TestEndDetectionProtocolCost(t *testing.T) {
	// On N nodes, every operator end costs 4(N-1) control messages
	// (§4); credits and steal traffic add more, so the control count
	// must be at least ops x 4(N-1).
	nodes := 3
	cfg := cluster.DefaultConfig(nodes, 2)
	tree := smallPlan(t, 21, 4, nodes)
	r := runDP(t, tree, cfg, nil)
	min := int64(len(tree.Ops) * 4 * (nodes - 1))
	if r.ControlMsgs < min {
		t.Fatalf("control messages %d below protocol floor %d", r.ControlMsgs, min)
	}
}

func TestSingleNodeTerminationHasNoProtocolCost(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 2)
	tree := smallPlan(t, 22, 3, 1)
	r := runDP(t, tree, cfg, nil)
	if r.ControlMsgs != 0 {
		t.Fatalf("single node sent %d control messages", r.ControlMsgs)
	}
}

func TestFlowControlBoundsQueues(t *testing.T) {
	// With a tiny queue capacity the run must still complete (flow
	// control suspends producers instead of losing work) and record
	// suspensions.
	cfg := cluster.DefaultConfig(1, 2)
	tree := smallPlan(t, 23, 4, 1)
	r := runDP(t, tree, cfg, func(o *Options) { o.QueueCapacity = 2 })
	if r.ResultTuples <= 0 {
		t.Fatal("no results with tight flow control")
	}
	if r.Suspensions == 0 {
		t.Fatal("tight flow control caused no suspensions")
	}
	full := runDP(t, tree, cfg, func(o *Options) { o.QueueCapacity = 1024 })
	diff := r.ResultTuples - full.ResultTuples
	if diff < 0 {
		diff = -diff
	}
	if full.ResultTuples == 0 || float64(diff)/float64(full.ResultTuples) > 0.01 {
		t.Fatalf("flow control changed results: %d vs %d", r.ResultTuples, full.ResultTuples)
	}
}

func TestResultConservationQuick(t *testing.T) {
	// Property: for random small workloads, the simulated result
	// cardinality tracks the optimizer's estimate within rounding
	// tolerance, under random engine option combinations.
	f := func(seed uint64, procsRaw, capRaw, fragRaw uint8) bool {
		procs := int(procsRaw%4) + 1
		capQ := int(capRaw%30) + 3
		frag := int(fragRaw%12) + 1
		cfg := cluster.DefaultConfig(1, procs)
		tree := smallPlanQuick(seed%50+1, 3)
		opt := DefaultOptions(DP)
		opt.QueueCapacity = capQ
		opt.FragmentationFactor = frag
		r, err := Run(tree, cfg, opt)
		if err != nil {
			return false
		}
		est := tree.Root.OutCard
		diff := r.ResultTuples - est
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= float64(est)*0.02+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// smallPlanQuick builds a plan without *testing.T for property checks.
func smallPlanQuick(seed uint64, rels int) *plan.Tree {
	cfg := cluster.DefaultConfig(1, 2)
	q := smallQuery(seed, rels, 1)
	o := newOptForTest(cfg)
	return o.Plans(q, 1, []int{0})[0]
}

func TestFPAllocationCoversAllOps(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := smallPlan(t, 24, 5, 1)
	opt := DefaultOptions(FP)
	opt.FPWork = make([]float64, len(tree.Ops))
	for i := range opt.FPWork {
		opt.FPWork[i] = float64(i + 1)
	}
	k := simtime.NewKernel()
	cl := cluster.New(k, cfg)
	e, err := newEngine(k, cl, tree, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Every chain must leave every operator covered by at least one
	// thread on every node.
	for c := range tree.Chains {
		e.allocateFP(c)
		for _, n := range e.nodes {
			for _, op := range tree.Chains[c] {
				covered := false
				for _, th := range n.threads {
					if th.allowed.has(op.ID) {
						covered = true
					}
				}
				if !covered {
					t.Fatalf("chain %d: %s uncovered on node %d", c, op.Name, n.id)
				}
			}
		}
	}
}

func TestFPAllocationMoreOpsThanThreads(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 2)
	// A chain plan has a long final chain; with 2 threads and 5 chain
	// operators the LPT path must cover everything.
	tree := chainPlanForDebug(5, 1, 100)
	opt := DefaultOptions(FP)
	opt.FPWork = make([]float64, len(tree.Ops))
	for i := range opt.FPWork {
		opt.FPWork[i] = 1
	}
	r, err := Run(tree, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.ResultTuples <= 0 {
		t.Fatal("no results")
	}
}

func TestSuspensionsAreCounted(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 2)
	tree := smallPlan(t, 25, 4, 1)
	r := runDP(t, tree, cfg, func(o *Options) { o.QueueCapacity = 2 })
	if r.Suspensions <= 0 || r.QueueOps <= 0 {
		t.Fatalf("missing overhead counters: %+v", r)
	}
}

func TestStealCacheReducesBytes(t *testing.T) {
	cfg := cluster.DefaultConfig(4, 2)
	tree := chainPlanForDebug(5, 4, 10)
	with := runDP(t, tree, cfg, func(o *Options) { o.RedistributionSkew = 0.8 })
	without := runDP(t, tree, cfg, func(o *Options) { o.RedistributionSkew = 0.8; o.StealCache = false })
	if with.StealsSucceeded > 0 && without.BalanceBytes < with.BalanceBytes {
		t.Fatalf("steal cache increased traffic: with=%d without=%d", with.BalanceBytes, without.BalanceBytes)
	}
}
