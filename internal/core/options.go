// Package core implements the paper's contribution: the DP (dynamic
// processing) parallel execution model of §3–§4, in which query work is
// decomposed into self-contained activations and any thread may execute any
// activation of its SM-node. The same runtime also executes the FP (fixed
// processing) baseline of §5.2.1 by restricting each thread to the
// operators it was statically allocated to — exactly how the paper built
// its FP implementation ("This was implemented by using our execution
// model, restricting each thread to process activations associated with
// only one operator").
//
// One deliberate implementation substitution: the paper suspends a blocked
// activation by procedure call and recursively processes another one.
// Here activations are resumable state machines — a thread that cannot
// proceed (output queue full, disk page not ready) parks the activation on
// its suspended list and returns to the selection loop. The behaviour and
// the charged cost (Costs.Suspend) are the same, without unbounded Go
// stacks; DESIGN.md discusses the substitution.
package core

import (
	"fmt"

	"hierdb/internal/plan"
)

// Mode selects the thread-to-operator association policy.
type Mode int

const (
	// DP lets any thread execute any activation of its SM-node (the
	// paper's model).
	DP Mode = iota
	// FP statically allocates threads to the operators of the current
	// pipeline chain proportionally to estimated cost (the shared-
	// nothing baseline of §5.2.1 adapted to shared memory).
	FP
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case DP:
		return "DP"
	case FP:
		return "FP"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options parameterizes an execution.
type Options struct {
	// Mode is DP or FP.
	Mode Mode
	// Costs are the CPU path lengths (plan.DefaultCosts by default).
	Costs plan.Costs

	// FragmentationFactor sets the degree of fragmentation: each join
	// uses FragmentationFactor x (threads in the operator home) buckets.
	// §3.1 recommends a degree of fragmentation much higher than the
	// degree of parallelism.
	FragmentationFactor int

	// PagesPerTrigger is the granularity of trigger activations: how
	// many pages of a base-relation bucket one activation covers (§3.1
	// reduces trigger granularity from a bucket to one or more pages).
	PagesPerTrigger int

	// BatchTuples is the granularity of data activations (§3.1
	// increases data-activation granularity by buffering). It defaults
	// to the number of tuples per page.
	BatchTuples int

	// QueueCapacity bounds each activation queue, providing the flow
	// control of §3.1.
	QueueCapacity int

	// RedistributionSkew is the Zipf factor applied to the distribution
	// of pipelined tuples over buckets, and of trigger activations over
	// scan queues (§5.2.2).
	RedistributionSkew float64

	// GlobalLB enables load sharing across SM-nodes (§3.2). Disabling
	// it is an ablation.
	GlobalLB bool

	// PrimaryQueues gives each thread priority access to its own set of
	// queues (§3.1). Disabling it is an ablation.
	PrimaryQueues bool

	// QueuePerThread creates one queue per (operator, thread); when
	// false a single queue per operator is used (the interference
	// ablation of §3.1).
	QueuePerThread bool

	// StealCache remembers which hash-table buckets were already copied
	// to a requester so repeated starving does not re-ship them (§4,
	// Global Activation Selection optimization).
	StealCache bool

	// MinStealActivations is condition (ii) of §3.2: enough work must
	// be acquired to amortize the acquisition overhead.
	MinStealActivations int

	// FPWork gives FP's per-operator work estimates (possibly distorted
	// by a cost-model error rate), indexed by operator ID. Required in
	// FP mode.
	FPWork []float64

	// Seed drives every random choice of the execution (bucket draws,
	// skew); two runs with equal options and seed are identical.
	Seed uint64
}

// DefaultOptions returns the paper-faithful defaults for the given mode.
func DefaultOptions(mode Mode) Options {
	return Options{
		Mode:                mode,
		Costs:               plan.DefaultCosts(),
		FragmentationFactor: 8,
		PagesPerTrigger:     4,
		BatchTuples:         0, // derived from the page size
		QueueCapacity:       32,
		GlobalLB:            true,
		PrimaryQueues:       true,
		QueuePerThread:      true,
		StealCache:          true,
		MinStealActivations: 4,
		Seed:                1,
	}
}

// Validate checks option consistency.
func (o *Options) Validate() error {
	switch {
	case o.FragmentationFactor <= 0:
		return fmt.Errorf("core: FragmentationFactor %d", o.FragmentationFactor)
	case o.PagesPerTrigger <= 0:
		return fmt.Errorf("core: PagesPerTrigger %d", o.PagesPerTrigger)
	case o.QueueCapacity <= 0:
		return fmt.Errorf("core: QueueCapacity %d", o.QueueCapacity)
	case o.RedistributionSkew < 0:
		return fmt.Errorf("core: negative skew")
	case o.MinStealActivations < 1:
		return fmt.Errorf("core: MinStealActivations %d", o.MinStealActivations)
	case o.Mode == FP && o.FPWork == nil:
		return fmt.Errorf("core: FP mode requires FPWork estimates")
	}
	return nil
}
