package core

// Global load balancing (§3.2 and §4, Global Activation Selection).
//
// When a DP SM-node starves (no activation in any unblocked queue), its
// scheduler broadcasts a starving message carrying its free memory. Every
// other scheduler answers with its best candidate queue — only probe
// activations qualify (condition iv), the operator must be unblocked
// (condition v) and owned by the requester (§3.2), the data must fit in the
// requester's memory (condition i), and the queue must hold enough work to
// amortize the acquisition (condition ii) — scored by benefit/overhead
// ratio: queued activations versus bytes to ship (activations plus the
// hash-table buckets not already copied, per the stolen-queue cache of §4).
// The requester picks the most loaded provider and asks for the queue; the
// provider ships the activations and the missing hash-table buckets.
//
// Under FP the same protocol runs per processor, restricted to the
// requesting thread's allocated operators — which is why FP suffers
// repeated and mutual starving (§5.3) while DP requests at node level.

import (
	"hierdb/internal/simnet"
)

// offer is a provider's answer to a starving message.
type offer struct {
	provider *engNode
	load     int
	hasCand  bool
	score    float64
}

// candidate describes the queue a provider would give away.
type candidate struct {
	q          *queue
	acts       int
	shipBytes  int64
	tableBytes int64
	score      float64
}

// startStealRound drives one starving episode for reqNode. opsFilter
// restricts candidates (FP); owner is the requesting thread in FP mode and
// nil for DP.
func (e *Engine) startStealRound(reqNode *engNode, opsFilter []*opState, owner *thread) {
	e.run.StealRounds++
	freeMem := reqNode.freeMem()
	peers := 0
	for _, n := range e.nodes {
		if n != reqNode {
			peers++
		}
	}
	offers := make([]offer, 0, peers)
	got := 0
	for _, pv := range e.nodes {
		if pv == reqNode {
			continue
		}
		pv := pv
		// Starving message to the provider, then the provider's answer.
		e.cl.Net.Send(simnet.Control, controlMsgBytes, func() {
			off := e.computeOffer(pv, reqNode, opsFilter, freeMem)
			e.cl.Net.Send(simnet.Control, controlMsgBytes, func() {
				offers = append(offers, off)
				got++
				if got == peers {
					e.resolveStealRound(reqNode, opsFilter, owner, offers, freeMem)
				}
			})
		})
	}
}

// computeOffer evaluates the provider's candidate queues at answer time.
func (e *Engine) computeOffer(pv, req *engNode, opsFilter []*opState, freeMem int64) offer {
	off := offer{provider: pv, load: pv.queuedActivations()}
	if c := e.bestCandidate(pv, req, opsFilter, freeMem); c != nil {
		off.hasCand = true
		off.score = c.score
	}
	return off
}

// bestCandidate selects the provider queue with the best benefit/overhead
// ratio under the conditions of §3.2, or nil.
func (e *Engine) bestCandidate(pv, req *engNode, opsFilter []*opState, freeMem int64) *candidate {
	var best *candidate
	consider := func(o *opState) {
		if !o.isProbe() || !o.started || o.terminating {
			return // conditions (iv) and (v)
		}
		if o.homePos[req.id] < 0 {
			return // requester must own the operator
		}
		pos := o.homePos[pv.id]
		if pos < 0 {
			return
		}
		for _, q := range o.perNode[pos].queues {
			n := q.len()
			if n < e.opt.MinStealActivations {
				continue // condition (ii)
			}
			var actBytes, tblBytes int64
			seen := make(map[int]bool)
			for i := 0; i < n; i++ {
				a := q.at(i)
				actBytes += a.bytes()
				if seen[a.bucket] {
					continue
				}
				seen[a.bucket] = true
				if e.opt.StealCache && pv.shipped[shipKey{opID: o.op.ID, bucket: a.bucket, requester: req.id}] {
					continue
				}
				tbl := e.ops[o.op.Partner.ID]
				if tpos := tbl.homePos[pv.id]; tpos >= 0 {
					tblBytes += e.costs.HashTableBytes(tbl.perNode[tpos].tableTuples(a.bucket), o.op.TupleBytes)
				}
			}
			ship := actBytes + tblBytes
			if ship > freeMem {
				continue // condition (i)
			}
			score := float64(n) / (1 + float64(ship)/1024)
			if best == nil || score > best.score {
				best = &candidate{q: q, acts: n, shipBytes: ship, tableBytes: tblBytes, score: score}
			}
		}
	}
	if opsFilter != nil {
		for _, o := range opsFilter {
			consider(o)
		}
	} else {
		for _, o := range e.ops {
			consider(o)
		}
	}
	return best
}

// resolveStealRound picks the most loaded provider that offered a
// candidate and requests the queue; without any offer the round fails and
// retries are paced.
func (e *Engine) resolveStealRound(reqNode *engNode, opsFilter []*opState, owner *thread, offers []offer, freeMem int64) {
	var chosen *offer
	for i := range offers {
		o := &offers[i]
		if !o.hasCand {
			continue
		}
		if chosen == nil || o.load > chosen.load {
			chosen = o
		}
	}
	if chosen == nil {
		e.failStealRound(reqNode, owner)
		return
	}
	pv := chosen.provider
	e.cl.Net.Send(simnet.Control, controlMsgBytes, func() {
		// Re-evaluate at request time: the provider's state has moved.
		c := e.bestCandidate(pv, reqNode, opsFilter, freeMem)
		if c == nil {
			e.cl.Net.Send(simnet.Control, controlMsgBytes, func() {
				e.failStealRound(reqNode, owner)
			})
			return
		}
		e.shipQueue(pv, reqNode, owner, c)
	})
}

func (e *Engine) failStealRound(reqNode *engNode, owner *thread) {
	now := e.k.Now()
	if owner != nil {
		owner.stealOutstanding = false
		owner.nextStealTime = now + stealRetryInterval
		owner.wake()
		return
	}
	reqNode.stealOutstanding = false
	reqNode.nextStealTime = now + stealRetryInterval
	reqNode.wake()
}

// shipQueue moves the candidate queue's activations (and missing
// hash-table buckets) from the provider to the requester.
func (e *Engine) shipQueue(pv, req *engNode, owner *thread, c *candidate) {
	o := c.q.op
	// Condition (iii) of §3.2: do not overload the requester — acquire
	// half the queue, but at least enough to amortize the round.
	n := c.q.len() / 2
	if n < e.opt.MinStealActivations {
		n = e.opt.MinStealActivations
	}
	acts := c.q.popN(n)
	// Shipped activations leave the provider's queues for good: settle
	// their flow-control credits with the original senders now, exactly
	// as if the provider had consumed them, so no sender waits on a
	// window that can never refill.
	for _, a := range acts {
		if a.srcNode >= 0 {
			e.creditConsumed(pv, a)
			a.srcNode = -1
		}
	}
	e.flushCredits(pv, o)
	// Producers suspended on this (previously full) queue can resume.
	pv.wake()
	var bytes int64
	seen := make(map[int]bool)
	for _, a := range acts {
		bytes += a.bytes()
		if !seen[a.bucket] {
			seen[a.bucket] = true
			key := shipKey{opID: o.op.ID, bucket: a.bucket, requester: req.id}
			if !e.opt.StealCache || !pv.shipped[key] {
				tbl := e.ops[o.op.Partner.ID]
				if tpos := tbl.homePos[pv.id]; tpos >= 0 {
					bytes += e.costs.HashTableBytes(tbl.perNode[tpos].tableTuples(a.bucket), o.op.TupleBytes)
				}
				pv.shipped[key] = true
			}
		}
	}
	if bytes <= 0 {
		bytes = controlMsgBytes
	}
	recvShare := e.cl.Net.RecvInstr(bytes) / int64(len(acts))
	e.cl.Net.Send(simnet.Balance, bytes, func() {
		req.memUsed += c.tableBytes
		for _, a := range acts {
			a.node = req.id
			a.stolen = true
			a.srcNode = -1
			a.recvInstr = recvShare
			on := o.residueNode(req.id)
			q := on.queues[o.queueOfBucket(a.bucket)]
			q.push(a)
		}
		e.run.StealsSucceeded++
		e.run.StolenActivations += int64(len(acts))
		if owner != nil {
			owner.stealOutstanding = false
		} else {
			req.stealOutstanding = false
		}
		req.wake()
	})
}
