package core

import (
	"os"
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
	"hierdb/internal/simtime"
)

// TestDebugTrace runs a 2-node configuration with periodic state dumps of
// every operator — a diagnostic harness for engine hangs. Enabled with
// HIERDB_DEBUG=1.
func TestDebugTrace(t *testing.T) {
	if os.Getenv("HIERDB_DEBUG") == "" {
		t.Skip("set HIERDB_DEBUG=1 to run the trace")
	}
	nodes := 2
	cfg := cluster.DefaultConfig(nodes, 2)
	q := smallQuery(6, 4, nodes)
	o := optimizer.New(plan.DefaultCosts(), cfg)
	tree := o.Plans(q, 1, catalog.AllNodes(nodes))[0]
	t.Log(tree.String())

	opt := DefaultOptions(DP)
	k := simtime.NewKernel()
	cl := cluster.New(k, cfg)
	e, err := newEngine(k, cl, tree, opt)
	if err != nil {
		t.Fatal(err)
	}
	var dump func()
	dump = func() {
		if e.done {
			return
		}
		for _, op := range e.ops {
			if op.terminated {
				continue
			}
			queued := 0
			for _, on := range op.perNode {
				for _, qq := range on.queues {
					queued += qq.len()
				}
			}
			t.Logf("t=%v op=%s started=%v terminating=%v prodDone=%v outstanding=%d queued=%d",
				k.Now(), op.op.Name, op.started, op.terminating, op.producerDone, op.outstanding, queued)
		}
		t.Logf("t=%v stealRounds=%d stealOK=%d", k.Now(), e.run.StealRounds, e.run.StealsSucceeded)
		var suspendedInfo string
		for _, n := range e.nodes {
			for _, th := range n.threads {
				for _, a := range th.suspended {
					suspendedInfo += a.op.op.Name + " "
				}
			}
		}
		t.Logf("  suspended: %s", suspendedInfo)
		k.After(200*simtime.Millisecond, dump)
	}
	k.After(200*simtime.Millisecond, dump)
	k.After(5*simtime.Second, func() {
		if !e.done {
			t.Log("aborting at 5 virtual seconds")
			panic("abort")
		}
	})
	func() {
		defer func() { recover() }()
		_ = k.Run()
	}()
}
