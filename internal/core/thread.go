package core

// The execution-thread loop of §3–§4: one thread per processor per query,
// consuming activations from its primary queues first, then any queue of
// its SM-node (DP) or of its allocated operators (FP), suspending blocked
// activations instead of blocking the processor.

import (
	"fmt"

	"hierdb/internal/plan"
	"hierdb/internal/simtime"
)

// stealRetryInterval paces starving retries after a failed round.
const stealRetryInterval = 2 * simtime.Millisecond

type thread struct {
	eng  *Engine
	node *engNode
	idx  int

	proc *simtime.Proc
	cond *simtime.Cond

	// wakeFn caches the wake method value handed to Kernel.At, so timed
	// wakeups do not allocate a new closure per sleep.
	wakeFn func()

	// suspended holds activations this thread started but could not
	// complete (the paper's suspended execution contexts).
	suspended []*activation

	// allowed restricts the thread to a set of operators (FP mode);
	// nil means any operator of the node (DP mode).
	allowed opBitset

	// FP per-processor global load balancing state.
	stealOutstanding bool
	nextStealTime    simtime.Time

	sleeping bool

	busy, ioWait, idle simtime.Duration
}

func newThread(e *Engine, n *engNode, idx int) *thread {
	t := &thread{eng: e, node: n, idx: idx}
	t.cond = e.k.NewCond(fmt.Sprintf("n%dt%d", n.id, idx))
	t.wakeFn = t.wake
	return t
}

func (t *thread) spawn() {
	t.eng.k.Spawn(fmt.Sprintf("n%dt%d", t.node.id, t.idx), t.run)
}

//hierdb:hotpath
func (t *thread) run(p *simtime.Proc) {
	t.proc = p
	e := t.eng
	for !e.done {
		if a := t.nextSuspended(); a != nil {
			t.step(a)
			continue
		}
		if a := t.nextQueued(); a != nil {
			t.step(a)
			continue
		}
		if e.opt.GlobalLB && len(e.nodes) > 1 {
			t.maybeRequestWork()
		}
		t.sleep()
	}
}

// charge advances virtual time by instr instructions of work.
//
//hierdb:hotpath
func (t *thread) charge(instr int64) {
	if instr <= 0 {
		return
	}
	d := t.eng.instrTime(instr)
	t.busy += d
	t.proc.Delay(d)
}

//hierdb:hotpath
func (t *thread) chargeQueueOp() {
	t.eng.run.QueueOps++
	t.charge(t.eng.costs.QueueOp)
}

func (t *thread) wake() { t.cond.Signal() }

// nextSuspended resumes the oldest suspended activation that can make
// progress now.
//
//hierdb:hotpath
func (t *thread) nextSuspended() *activation {
	now := t.eng.k.Now()
	for i, a := range t.suspended {
		if !t.canProceed(a, now) {
			continue
		}
		t.suspended = append(t.suspended[:i], t.suspended[i+1:]...)
		return a
	}
	return nil
}

// canProceed reports whether a suspended activation is unblocked.
//
//hierdb:hotpath
func (t *thread) canProceed(a *activation, now simtime.Time) bool {
	if a.hasPending {
		return t.deliverable(&a.pending)
	}
	if a.emitRemaining > 0 {
		return true
	}
	if a.kind == trigger && a.req != nil && a.pagesDone < a.pages {
		return a.req.NextReadyAt() <= now
	}
	return true
}

// deliverable reports whether a batch can be delivered without blocking.
//
//hierdb:hotpath
func (t *thread) deliverable(b *batch) bool {
	c := b.consumer
	if b.dstNode == t.node.id {
		q := c.at(b.dstNode).queues[c.queueOfBucket(b.bucket)]
		return !q.full(t.eng.opt.QueueCapacity)
	}
	return t.node.creditsFor(c.op.ID, b.dstNode) > 0
}

// mayConsume applies the FP restriction (nil allowed set = DP, any
// operator).
//
//hierdb:hotpath
func (t *thread) mayConsume(o *opState) bool {
	if t.allowed == nil {
		return true
	}
	return t.allowed.has(o.op.ID)
}

// nextQueued selects a new activation from the node's queues: primary
// queues first (the thread's own queue of each operator), then the
// circular list starting at a per-thread offset to limit interference
// (§4, Figure 5).
//
//hierdb:hotpath
func (t *thread) nextQueued() *activation {
	e := t.eng
	t.charge(e.costs.Select)
	active := t.node.active
	if len(active) == 0 {
		return nil
	}
	if e.opt.PrimaryQueues {
		for _, q := range active {
			if q.idx == t.idx && q.consumable() && t.mayConsume(q.op) {
				return t.dequeue(q)
			}
		}
	}
	offset := 0
	if p := len(t.node.threads); p > 0 {
		offset = t.idx * len(active) / p
	}
	for i := 0; i < len(active); i++ {
		q := active[(offset+i)%len(active)]
		if q.consumable() && t.mayConsume(q.op) {
			return t.dequeue(q)
		}
	}
	return nil
}

//hierdb:hotpath
func (t *thread) dequeue(q *queue) *activation {
	wasFull := q.full(t.eng.opt.QueueCapacity)
	a := q.pop()
	t.chargeQueueOp()
	if a.recvInstr > 0 {
		t.charge(a.recvInstr)
		a.recvInstr = 0
	}
	if a.srcNode >= 0 {
		t.eng.creditConsumed(t.node, a)
		a.srcNode = -1
	}
	if q.empty() && len(t.eng.nodes) > 1 {
		t.eng.flushCredits(t.node, q.op)
	}
	if wasFull {
		// Space freed: local producers suspended on this queue can
		// resume.
		t.node.wake()
	}
	return a
}

// step drives an activation until it completes or suspends.
//
//hierdb:hotpath
func (t *thread) step(a *activation) {
	var blocked bool
	if a.kind == trigger {
		blocked = t.stepTrigger(a)
	} else {
		blocked = t.stepData(a)
	}
	if blocked {
		t.suspend(a)
		return
	}
	o := a.op
	o.outstanding--
	t.eng.freeActivation(a)
	t.eng.checkTermination(o)
}

// suspend parks a blocked activation on the thread's suspended list
// (playing the part of the paper's procedure-call context save).
//
//hierdb:hotpath
func (t *thread) suspend(a *activation) {
	t.eng.run.Suspensions++
	t.charge(t.eng.costs.Suspend)
	t.suspended = append(t.suspended, a)
}

// stepTrigger advances a scan trigger activation: asynchronous page reads
// interleaved with per-page CPU work and downstream emission. It returns
// true when blocked (page not ready or output queue full).
//
//hierdb:hotpath
func (t *thread) stepTrigger(a *activation) bool {
	e := t.eng
	o := a.op
	rel := o.op.Rel
	if a.req == nil {
		t.charge(e.cl.Cfg.Disk.InitInstr)
		a.req = e.cl.Nodes[a.node].Disks[a.diskIdx].StartRead(a.pages)
	}
	tpp := rel.TuplesPerPage(e.cl.Cfg.Disk.PageSize)
	on := o.at(a.node)
	outRatio := float64(o.op.OutCard) / float64(o.op.InCard)
	for {
		if !t.drainEmission(a) {
			return true
		}
		if a.pagesDone >= a.pages {
			return false
		}
		if !a.req.TryRead() {
			return true
		}
		a.pagesDone++
		remaining := a.tuples - int64(a.pagesDone-1)*tpp
		tuples := tpp
		if remaining < tuples {
			tuples = remaining
		}
		if tuples < 0 {
			tuples = 0
		}
		t.charge(tuples * e.costs.ScanTuple)
		a.emitRemaining += on.takeOutput(tuples, outRatio)
	}
}

// stepData advances a build or probe data activation. It returns true when
// blocked on emission.
//
//hierdb:hotpath
func (t *thread) stepData(a *activation) bool {
	e := t.eng
	o := a.op
	if !a.cpuCharged {
		a.cpuCharged = true
		switch o.op.Kind {
		case plan.Build:
			t.charge(a.dataTuples * e.costs.BuildTuple)
			on := o.at(a.node)
			on.addTable(a.bucket, a.dataTuples)
			bytes := e.costs.HashTableBytes(a.dataTuples, o.op.TupleBytes)
			on.tableBytes += bytes
			t.node.memUsed += bytes
			return false
		case plan.Probe:
			t.charge(a.dataTuples * e.costs.ProbeTuple)
			on := o.residueNode(a.node)
			out := on.takeOutput(a.dataTuples, o.matchesPerTuple)
			t.charge(out * e.costs.ResultTuple)
			if o.op.Consumer == nil {
				o.results += out
				return false
			}
			a.emitRemaining = out
		default:
			panic("core: data activation for a scan")
		}
	}
	if o.op.Consumer == nil {
		return false
	}
	return !t.drainEmission(a)
}

// residueNode returns the per-node state used for output rounding; stolen
// activations processed off the bucket's home node use the local state
// when the node is in the home, else the first home node.
func (o *opState) residueNode(n int) *opNode {
	if pos := o.homePos[n]; pos >= 0 {
		return o.perNode[pos]
	}
	return o.perNode[0]
}

// drainEmission packs pending output tuples into batches and delivers
// them. It returns false when blocked by flow control.
//
//hierdb:hotpath
func (t *thread) drainEmission(a *activation) bool {
	if !a.hasPending && a.emitRemaining == 0 {
		return true
	}
	e := t.eng
	c := a.op.consumer()
	if c == nil {
		a.emitRemaining = 0
		a.hasPending = false
		return true
	}
	for {
		if !a.hasPending {
			if a.emitRemaining == 0 {
				return true
			}
			n := e.batchTuples
			if n > a.emitRemaining {
				n = a.emitRemaining
			}
			bucket := c.bucketZipf.Draw(c.rng)
			a.pending = batch{
				consumer: c,
				bucket:   bucket,
				tuples:   n,
				dstNode:  c.nodeOfBucket(bucket),
			}
			a.hasPending = true
			a.emitRemaining -= n
		}
		var ok bool
		if a.pending.dstNode == t.node.id {
			ok = e.deliverLocal(t, &a.pending)
		} else {
			ok = e.deliverRemote(t, &a.pending)
		}
		if !ok {
			return false
		}
		a.hasPending = false
	}
}

// maybeRequestWork initiates global load balancing when the thread finds
// no work: node-level for DP (§3.2 — a thread gets idle only when the
// whole SM-node is starving), per-processor restricted to the thread's
// operators for FP (§5.3).
func (t *thread) maybeRequestWork() {
	e := t.eng
	now := e.k.Now()
	if e.opt.Mode == DP {
		n := t.node
		if n.stealOutstanding || now < n.nextStealTime {
			return
		}
		if n.queuedActivations() > 0 {
			return
		}
		n.stealOutstanding = true
		e.startStealRound(n, nil, nil)
		return
	}
	// FP: the thread steals for the operators it is allocated to. The
	// bitset scan yields operator-ID order, which is deterministic.
	if t.stealOutstanding || now < t.nextStealTime {
		return
	}
	var ops []*opState
	for _, o := range e.ops {
		if t.allowed.has(o.op.ID) && o.isProbe() && o.started && !o.terminating {
			ops = append(ops, o)
		}
	}
	if len(ops) == 0 {
		return
	}
	t.stealOutstanding = true
	e.startStealRound(t.node, ops, t)
}

// sleep parks the thread until woken, arranging a timer for the earliest
// disk completion among its suspended activations. Time asleep is
// accounted as I/O wait when a disk page is pending, idle otherwise
// (the processor idle time of §5.3).
func (t *thread) sleep() {
	e := t.eng
	if e.done {
		// The query finished while this thread was charging work; the
		// final wake was a no-op, so do not park.
		return
	}
	now := e.k.Now()
	var wakeAt simtime.Time
	ioPending := false
	for _, a := range t.suspended {
		if a.kind == trigger && a.req != nil && a.pagesDone < a.pages && !a.hasPending && a.emitRemaining == 0 {
			ioPending = true
			r := a.req.NextReadyAt()
			if wakeAt == 0 || r < wakeAt {
				wakeAt = r
			}
		}
	}
	if e.opt.GlobalLB && len(e.nodes) > 1 {
		// Retry pacing for failed starving rounds.
		next := t.node.nextStealTime
		if e.opt.Mode == FP {
			next = t.nextStealTime
		}
		if next > now && (wakeAt == 0 || next < wakeAt) {
			wakeAt = next
		}
	}
	if wakeAt > now {
		e.k.At(wakeAt, t.wakeFn)
	}
	t.sleeping = true
	t.cond.Wait(t.proc)
	t.sleeping = false
	slept := e.k.Now() - now
	if ioPending {
		t.ioWait += slept
	} else {
		t.idle += slept
	}
}
