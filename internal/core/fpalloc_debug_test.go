package core

import (
	"os"
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/simtime"
	"hierdb/internal/xrand"
)

// TestDebugFPAllocation dumps FP's per-chain thread allocation with and
// without cost-model distortion. Enable with HIERDB_DEBUG=1.
func TestDebugFPAllocation(t *testing.T) {
	if os.Getenv("HIERDB_DEBUG") == "" {
		t.Skip("set HIERDB_DEBUG=1")
	}
	cfg := cluster.DefaultConfig(1, 8)
	o := optimizer.New(plan.DefaultCosts(), cfg)
	// Generate a gated query the way the experiment workload does:
	// sequential time in [30,60] minutes, intermediates <= 8x base.
	rng := xrand.New(12345)
	var q *querygen.Query
	p := querygen.DefaultParams(1)
	p.Relations = 12
	for i := 0; i < 100; i++ {
		cand := querygen.Generate(rng, "dbg", p)
		seq, base, inter := o.EstimateStats(cand)
		if seq >= 30*simtime.Minute && seq <= 60*simtime.Minute && inter <= 8*base {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no gated query found")
	}
	tree := o.Plans(q, 1, catalog.AllNodes(1))[0]

	for _, rate := range []float64{0, 0.3} {
		work := optimizer.DistortedWork(tree, xrand.New(7919), rate, plan.DefaultCosts(), cfg)
		opt := DefaultOptions(FP)
		opt.FPWork = make([]float64, len(work))
		for i, w := range work {
			opt.FPWork[i] = float64(w)
		}
		k := simtime.NewKernel()
		cl := cluster.New(k, cfg)
		e, err := newEngine(k, cl, tree, opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("=== rate %.1f ===", rate)
		for c := range tree.Chains {
			e.allocateFP(c)
			n := e.nodes[0]
			line := ""
			for _, op := range tree.Chains[c] {
				cnt := 0
				for _, th := range n.threads {
					if th.allowed[e.ops[op.ID]] {
						cnt++
					}
				}
				line += op.Name + ":"
				for i := 0; i < cnt; i++ {
					line += "#"
				}
				line += " "
			}
			t.Logf("chain %2d: %s", c, line)
		}
		r, err := Run(tree, cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("rt=%v idle=%v", r.ResponseTime, r.Idle)
	}
}
