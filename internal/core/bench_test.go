package core

// Microbenchmarks and allocation gates for the engine's per-activation
// plumbing: queue push/pop, activation pooling, credit bookkeeping and
// emission. BenchmarkActivationChurn drives a full pipeline chain through
// the simulated engine; the alloc gate bounds a run's allocations so the
// pooled hot path cannot regress into per-activation garbage.

import (
	"testing"

	"hierdb/internal/cluster"
)

// BenchmarkActivationChurn drives a one-node five-operator pipeline chain
// — every activation kind (trigger, build, probe) and the emission path.
func BenchmarkActivationChurn(b *testing.B) {
	tree := chainPlanForDebug(5, 1, 100)
	cfg := cluster.DefaultConfig(1, 8)
	opt := DefaultOptions(DP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tree, cfg, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineMultiNode exercises the remote path: credits, network
// delivery and global load balancing across four SM-nodes.
func BenchmarkEngineMultiNode(b *testing.B) {
	tree := chainPlanForDebug(5, 4, 100)
	cfg := cluster.DefaultConfig(4, 2)
	opt := DefaultOptions(DP)
	opt.RedistributionSkew = 0.8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tree, cfg, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestActivationChurnAllocBound gates the engine's allocation behaviour:
// a chain run processing thousands of activations must stay within the
// fixed setup cost (engine, cluster, threads, queues) plus pool growth —
// not one allocation per activation/event as before the refactor.
func TestActivationChurnAllocBound(t *testing.T) {
	tree := chainPlanForDebug(5, 1, 10)
	cfg := cluster.DefaultConfig(1, 8)
	opt := DefaultOptions(DP)
	// Warm up once so lazily initialized catalog state settles.
	r, err := Run(tree, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.QueueOps < 2000 {
		t.Fatalf("want a run with >= 2000 queue operations to make the gate meaningful, got %d", r.QueueOps)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(tree, cfg, opt); err != nil {
			t.Error(err)
		}
	})
	perQueueOp := allocs / float64(r.QueueOps)
	if perQueueOp > 0.5 {
		t.Fatalf("engine run allocates %.0f times for %d queue ops (%.2f per op); the pooled hot path should be well under 0.5",
			allocs, r.QueueOps, perQueueOp)
	}
}
