package core

import (
	"fmt"
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/metrics"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/simtime"
	"hierdb/internal/xrand"
)

// smallQuery builds a deterministic query with rels relations whose
// cardinalities are scaled down for fast tests.
func smallQuery(seed uint64, rels, nodes int) *querygen.Query {
	p := querygen.DefaultParams(nodes)
	p.Relations = rels
	p.ClassWeights = [3]float64{1, 0, 0} // small relations only
	q := querygen.Generate(xrand.New(seed), "tq", p)
	// Scale cardinalities down 10x so unit tests stay fast, and scale
	// selectivities up 10x so join results keep the generated
	// 0.5-1.5x-of-larger-operand shape at the new scale
	// (r' = 10*sel * (ca/10)(cb/10) = r/10).
	for _, r := range q.Relations {
		r.Cardinality /= 10
		if r.Cardinality < 100 {
			r.Cardinality = 100
		}
	}
	for i := range q.Edges {
		q.Edges[i].Selectivity *= 10
	}
	return q
}

// chainPlanForDebug mirrors experiments.ChainPlan without the import: a
// single pipeline chain of ops operators (one scan plus ops-1 probes) with
// cardinalities divided by div.
func chainPlanForDebug(ops, nodes int, div int64) *plan.Tree {
	home := catalog.AllNodes(nodes)
	big := &catalog.Relation{Name: "DRIVER", Cardinality: 1_000_000 / div, TupleBytes: 100, Home: home}
	rels := []*catalog.Relation{big}
	var edges []querygen.Edge
	for i := 0; i < ops-1; i++ {
		small := &catalog.Relation{Name: fmt.Sprintf("DIM%d", i+1), Cardinality: 20_000 / div, TupleBytes: 100, Home: home}
		rels = append(rels, small)
		edges = append(edges, querygen.Edge{A: 0, B: i + 1, Selectivity: 1 / float64(small.Cardinality)})
	}
	q := &querygen.Query{Name: "chain", Relations: rels, Edges: edges}
	node := &plan.JoinNode{Rel: big}
	for i := 0; i < ops-1; i++ {
		node = &plan.JoinNode{Left: node, Right: &plan.JoinNode{Rel: rels[i+1]}, Selectivity: edges[i].Selectivity}
	}
	return plan.Expand("chain", q, node, home)
}

func smallPlan(t *testing.T, seed uint64, rels, nodes int) *plan.Tree {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes, 2)
	q := smallQuery(seed, rels, nodes)
	opt := optimizer.New(plan.DefaultCosts(), cfg)
	plans := opt.Plans(q, 1, catalog.AllNodes(nodes))
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	return plans[0]
}

func runDP(t *testing.T, tree *plan.Tree, cfg cluster.Config, mutate func(*Options)) *metrics.Run {
	t.Helper()
	opt := DefaultOptions(DP)
	if mutate != nil {
		mutate(&opt)
	}
	r, err := Run(tree, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func runFP(t *testing.T, tree *plan.Tree, cfg cluster.Config, errRate float64, mutate func(*Options)) *metrics.Run {
	t.Helper()
	opt := DefaultOptions(FP)
	work := optimizer.DistortedWork(tree, xrand.New(99), errRate, plan.DefaultCosts(), cfg)
	opt.FPWork = make([]float64, len(work))
	for i, w := range work {
		opt.FPWork[i] = float64(w)
	}
	if mutate != nil {
		mutate(&opt)
	}
	r, err := Run(tree, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDPSingleNodeCompletes(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := smallPlan(t, 1, 4, 1)
	r := runDP(t, tree, cfg, nil)
	if r.ResponseTime <= 0 {
		t.Fatalf("response time %v", r.ResponseTime)
	}
	if r.ResultTuples <= 0 {
		t.Fatalf("no result tuples")
	}
	if r.Busy <= 0 {
		t.Fatalf("no busy time")
	}
	// Single node: no network traffic at all.
	if r.TotalBytes() != 0 {
		t.Fatalf("single-node run sent %d bytes", r.TotalBytes())
	}
}

func TestDPDeterministic(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := smallPlan(t, 2, 4, 1)
	r1 := runDP(t, tree, cfg, nil)
	r2 := runDP(t, tree, cfg, nil)
	if r1.ResponseTime != r2.ResponseTime {
		t.Fatalf("nondeterministic: %v vs %v", r1.ResponseTime, r2.ResponseTime)
	}
	if r1.ResultTuples != r2.ResultTuples || r1.QueueOps != r2.QueueOps {
		t.Fatalf("counters differ: %+v vs %+v", r1, r2)
	}
}

func TestDPResultMatchesEstimate(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := smallPlan(t, 3, 4, 1)
	r := runDP(t, tree, cfg, nil)
	est := tree.Root.OutCard
	// Counts-based simulation with residue carry: result within 1% of
	// the estimate (batching may clip the final fractions).
	lo, hi := est*99/100-2, est*101/100+2
	if r.ResultTuples < lo || r.ResultTuples > hi {
		t.Fatalf("results %d outside [%d, %d] (estimate %d)", r.ResultTuples, lo, hi, est)
	}
}

func TestDPMoreProcessorsFaster(t *testing.T) {
	tree := smallPlan(t, 4, 5, 1)
	r2 := runDP(t, tree, cluster.DefaultConfig(1, 2), nil)
	r8 := runDP(t, tree, cluster.DefaultConfig(1, 8), nil)
	if r8.ResponseTime >= r2.ResponseTime {
		t.Fatalf("8 procs (%v) not faster than 2 (%v)", r8.ResponseTime, r2.ResponseTime)
	}
}

func TestDPMultiNodeCompletes(t *testing.T) {
	cfg := cluster.DefaultConfig(2, 2)
	tree := smallPlan(t, 5, 4, 2)
	r := runDP(t, tree, cfg, nil)
	if r.ResultTuples <= 0 {
		t.Fatal("no results")
	}
	if r.PipelineBytes == 0 {
		t.Fatal("multi-node run produced no pipeline traffic")
	}
	if r.ControlMsgs == 0 {
		t.Fatal("no control messages (end-of-operator protocol missing)")
	}
}

func TestMultiNodeResultsMatchSingleNode(t *testing.T) {
	// The same plan must produce the same result cardinality regardless
	// of the topology.
	tree1 := smallPlan(t, 6, 4, 1)
	r1 := runDP(t, tree1, cluster.DefaultConfig(1, 4), nil)

	q := smallQuery(6, 4, 2)
	cfg2 := cluster.DefaultConfig(2, 2)
	opt := optimizer.New(plan.DefaultCosts(), cfg2)
	tree2 := opt.Plans(q, 1, catalog.AllNodes(2))[0]
	r2 := runDP(t, tree2, cfg2, nil)

	diff := r1.ResultTuples - r2.ResultTuples
	if diff < 0 {
		diff = -diff
	}
	if r1.ResultTuples == 0 || float64(diff)/float64(r1.ResultTuples) > 0.02 {
		t.Fatalf("result cardinality diverges: 1 node %d vs 2 nodes %d", r1.ResultTuples, r2.ResultTuples)
	}
}

func TestFPCompletesAndIsSlowerWithFewThreads(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := smallPlan(t, 7, 5, 1)
	dp := runDP(t, tree, cfg, nil)
	fp := runFP(t, tree, cfg, 0, nil)
	if fp.ResultTuples != dp.ResultTuples {
		t.Fatalf("FP results %d != DP results %d", fp.ResultTuples, dp.ResultTuples)
	}
	// FP suffers discretization: it must not beat DP, and typically has
	// more idle time.
	if fp.ResponseTime < dp.ResponseTime {
		t.Fatalf("FP (%v) beat DP (%v)", fp.ResponseTime, dp.ResponseTime)
	}
	if fp.Idle <= dp.Idle {
		t.Logf("note: FP idle %v vs DP idle %v", fp.Idle, dp.Idle)
	}
}

func TestSkewDoesNotBreakDP(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := smallPlan(t, 8, 4, 1)
	r0 := runDP(t, tree, cfg, func(o *Options) { o.RedistributionSkew = 0 })
	r1 := runDP(t, tree, cfg, func(o *Options) { o.RedistributionSkew = 1 })
	if r1.ResultTuples <= 0 {
		t.Fatal("skewed run lost tuples")
	}
	// Fig 9: DP degrades only mildly under skew (allow 40% here; small
	// test plans exaggerate granularity effects).
	if float64(r1.ResponseTime) > 1.4*float64(r0.ResponseTime) {
		t.Fatalf("skew degraded DP by %.2fx", float64(r1.ResponseTime)/float64(r0.ResponseTime))
	}
}

func TestGlobalLBMovesWorkUnderSkew(t *testing.T) {
	cfg := cluster.DefaultConfig(4, 2)
	tree := smallPlan(t, 9, 5, 4)
	on := runDP(t, tree, cfg, func(o *Options) { o.RedistributionSkew = 0.8 })
	off := runDP(t, tree, cfg, func(o *Options) { o.RedistributionSkew = 0.8; o.GlobalLB = false })
	// Stolen activations round their output through a different node's
	// residue accumulator, so allow sub-percent drift.
	diff := on.ResultTuples - off.ResultTuples
	if diff < 0 {
		diff = -diff
	}
	if off.ResultTuples == 0 || float64(diff)/float64(off.ResultTuples) > 0.005 {
		t.Fatalf("results differ with/without global LB: %d vs %d", on.ResultTuples, off.ResultTuples)
	}
	if on.StealRounds == 0 {
		t.Log("note: no starving rounds occurred on this workload")
	}
	if off.BalanceBytes != 0 {
		t.Fatalf("global LB disabled but %d balance bytes moved", off.BalanceBytes)
	}
}

func TestQueuePerThreadAblation(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := smallPlan(t, 10, 4, 1)
	multi := runDP(t, tree, cfg, nil)
	single := runDP(t, tree, cfg, func(o *Options) { o.QueuePerThread = false })
	if single.ResultTuples != multi.ResultTuples {
		t.Fatalf("results differ: %d vs %d", single.ResultTuples, multi.ResultTuples)
	}
}

func TestPrimaryQueuesAblation(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := smallPlan(t, 11, 4, 1)
	with := runDP(t, tree, cfg, nil)
	without := runDP(t, tree, cfg, func(o *Options) { o.PrimaryQueues = false })
	if with.ResultTuples != without.ResultTuples {
		t.Fatalf("results differ: %d vs %d", with.ResultTuples, without.ResultTuples)
	}
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions(DP)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	fp := DefaultOptions(FP)
	if err := fp.Validate(); err == nil {
		t.Fatal("FP without FPWork accepted")
	}
	bad := DefaultOptions(DP)
	bad.QueueCapacity = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero queue capacity accepted")
	}
}

func TestModeString(t *testing.T) {
	if DP.String() != "DP" || FP.String() != "FP" {
		t.Error("bad mode names")
	}
}

func TestBusyPlusIdleBounded(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := smallPlan(t, 12, 4, 1)
	r := runDP(t, tree, cfg, nil)
	// Total thread time cannot exceed procs x response time (plus the
	// tail of the last activation each thread was charging when the
	// query ended).
	total := r.Busy + r.Idle + r.IOWait
	limit := r.ResponseTime*simtime.Duration(cfg.TotalProcs()) + simtime.Duration(cfg.TotalProcs())*10*simtime.Millisecond
	if total > limit {
		t.Fatalf("busy+idle+iowait %v exceeds procs x response %v", total, limit)
	}
}
