package core

// Engine construction, operator lifecycle (start, unblock, end-of-operator
// detection) and the data-movement plumbing shared by threads.

import (
	"fmt"
	"sort"

	"hierdb/internal/cluster"
	"hierdb/internal/metrics"
	"hierdb/internal/plan"
	"hierdb/internal/simnet"
	"hierdb/internal/simtime"
	"hierdb/internal/xrand"
)

// controlMsgBytes is the size of protocol messages (starving, offers,
// end-of-operator coordination, credits).
const controlMsgBytes = 64

// Engine executes one parallel execution plan on one cluster under one
// option set. Engines are single-use.
type Engine struct {
	k     *simtime.Kernel
	cl    *cluster.Cluster
	tree  *plan.Tree
	opt   Options
	costs plan.Costs

	ops   []*opState
	nodes []*engNode

	// actFree is the activation free list: completed activations are
	// recycled here so the steady-state hot path allocates nothing.
	actFree []*activation

	batchTuples int64

	done     bool
	doneTime simtime.Time
	rootOp   *opState

	run metrics.Run
}

// Run executes tree on a fresh cluster built from cfg and returns the
// measurement record. The execution is deterministic in (tree, cfg, opt).
func Run(tree *plan.Tree, cfg cluster.Config, opt Options) (*metrics.Run, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	k := simtime.NewKernel()
	cl := cluster.New(k, cfg)
	e, err := newEngine(k, cl, tree, opt)
	if err != nil {
		return nil, err
	}
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("core: %s on %s: %w", tree.Name, cfg, err)
	}
	if !e.done {
		return nil, fmt.Errorf("core: %s on %s: kernel drained before query end", tree.Name, cfg)
	}
	e.finishMetrics()
	return &e.run, nil
}

func newEngine(k *simtime.Kernel, cl *cluster.Cluster, tree *plan.Tree, opt Options) (*Engine, error) {
	e := &Engine{k: k, cl: cl, tree: tree, opt: opt, costs: opt.Costs}
	if e.costs == (plan.Costs{}) {
		e.costs = plan.DefaultCosts()
	}
	e.batchTuples = int64(opt.BatchTuples)
	if e.batchTuples <= 0 {
		e.batchTuples = cl.Cfg.Disk.PageSize / tree.Ops[0].TupleBytes
		if e.batchTuples < 1 {
			e.batchTuples = 1
		}
	}
	e.run.Strategy = opt.Mode.String()
	e.run.Plan = tree.Name
	e.run.Config = cl.Cfg.String()

	rng := xrand.New(opt.Seed ^ 0x5ca1ab1e)

	// SM-node state.
	for n := 0; n < cl.Cfg.Nodes; n++ {
		e.nodes = append(e.nodes, &engNode{
			eng:     e,
			id:      n,
			shipped: make(map[shipKey]bool),
		})
	}

	// Operator state.
	for _, op := range tree.Ops {
		for _, n := range op.Home {
			if n < 0 || n >= cl.Cfg.Nodes {
				return nil, fmt.Errorf("core: %s homed on nonexistent node %d", op.Name, n)
			}
		}
		o := &opState{
			eng:     e,
			op:      op,
			home:    op.Home,
			homePos: newHomePos(cl.Cfg.Nodes, op.Home),
			rng:     rng.Split(uint64(op.ID)),
		}
		homeThreads := len(op.Home) * cl.Cfg.ProcsPerNode
		if op.Kind != plan.Scan {
			o.buckets = opt.FragmentationFactor * homeThreads
			o.bucketZipf = xrand.NewZipf(o.buckets, opt.RedistributionSkew)
		}
		if op.Kind == plan.Probe {
			o.matchesPerTuple = op.Selectivity * float64(op.Partner.InCard)
		}
		nq := cl.Cfg.ProcsPerNode
		if !opt.QueuePerThread {
			nq = 1
		}
		for _, n := range op.Home {
			on := &opNode{node: n}
			if op.Kind == plan.Build {
				on.tables = make([]int64, o.buckets)
			}
			for qi := 0; qi < nq; qi++ {
				on.queues = append(on.queues, &queue{op: o, node: n, idx: qi})
			}
			o.perNode = append(o.perNode, on)
		}
		e.ops = append(e.ops, o)
	}
	e.rootOp = e.ops[tree.Root.ID]

	// Flow-control windows (sized now that the operator count is known).
	for _, n := range e.nodes {
		n.initCredits(len(e.ops), cl.Cfg.Nodes)
	}

	// Scheduling graph.
	for _, op := range tree.Ops {
		o := e.ops[op.ID]
		o.blockersLeft = len(op.Blockers)
		for _, b := range op.Blockers {
			e.ops[b.ID].dependents = append(e.ops[b.ID].dependents, o)
		}
	}

	// Start unblocked operators (this seeds chain 0's scan) and build the
	// circular lists.
	for _, o := range e.ops {
		if o.blockersLeft == 0 {
			e.startOp(o)
		}
	}

	// FP: allocate threads for the first chain before spawning.
	for n := range e.nodes {
		e.nodes[n].rebuildActive()
	}

	// Worker threads: one per processor per query (§3.1).
	for _, n := range e.nodes {
		for i := 0; i < cl.Cfg.ProcsPerNode; i++ {
			t := newThread(e, n, i)
			n.threads = append(n.threads, t)
		}
	}
	if opt.Mode == FP {
		e.allocateFP(e.currentChain())
	}
	for _, n := range e.nodes {
		for _, t := range n.threads {
			t.spawn()
		}
	}
	return e, nil
}

// currentChain returns the chain of the most recently started driver scan.
func (e *Engine) currentChain() int {
	cur := 0
	for _, o := range e.ops {
		if o.started && o.op.IsDriver() && o.op.Chain > cur {
			cur = o.op.Chain
		}
	}
	return cur
}

// startOp marks the operator runnable: its queues join the circular
// lists, scans seed their trigger activations, FP reallocates threads when
// a new chain opens.
func (e *Engine) startOp(o *opState) {
	o.started = true
	if o.op.Kind == plan.Scan {
		e.seedScan(o)
		o.producerDone = true
	}
	for _, n := range e.nodes {
		n.rebuildActive()
	}
	if e.opt.Mode == FP && o.op.IsDriver() && len(e.nodes[0].threads) > 0 {
		e.allocateFP(o.op.Chain)
	}
	for _, n := range e.nodes {
		n.wake()
	}
	// Empty-input edge: the operator may already be finished.
	e.checkTermination(o)
}

// seedScan creates the trigger activations of a scan: each covers
// PagesPerTrigger pages of the node's relation partition on one disk.
// With redistribution skew, triggers land on queues Zipf-skewed, modelling
// unbalanced partitions (§5.2.2).
func (e *Engine) seedScan(o *opState) {
	rel := o.op.Rel
	pageSize := e.cl.Cfg.Disk.PageSize
	tpp := rel.TuplesPerPage(pageSize)
	parts := rel.PartitionCards()
	var queueZipf *xrand.Zipf
	for pos, n := range o.home {
		on := o.perNode[pos]
		card := parts[pos]
		disks := len(e.cl.Nodes[n].Disks)
		if queueZipf == nil && e.opt.RedistributionSkew > 0 {
			queueZipf = xrand.NewZipf(len(on.queues), e.opt.RedistributionSkew)
		}
		pages := (card + tpp - 1) / tpp
		seq := 0
		for pages > 0 {
			p := int64(e.opt.PagesPerTrigger)
			if p > pages {
				p = pages
			}
			tuples := p * tpp
			if tuples > card {
				tuples = card
			}
			card -= tuples
			pages -= p
			a := e.newActivation()
			a.op = o
			a.kind = trigger
			a.node = n
			a.pages = int(p)
			a.tuples = tuples
			a.diskIdx = seq % disks
			qi := seq % len(on.queues)
			if queueZipf != nil {
				qi = queueZipf.Draw(o.rng)
			}
			on.queues[qi].push(a)
			o.outstanding++
			seq++
		}
	}
}

// allocateFP statically distributes each node's threads over the operators
// of chain c proportionally to the (possibly distorted) work estimates
// (§5.2.1). With at least as many threads as operators every operator
// receives one thread plus a share of the remainder; otherwise operators
// are packed onto threads longest-processing-time-first.
func (e *Engine) allocateFP(c int) {
	chain := e.tree.Chains[c]
	work := make([]float64, len(chain))
	var total float64
	for i, op := range chain {
		w := e.opt.FPWork[op.ID]
		if w <= 0 {
			w = 1
		}
		work[i] = w
		total += w
	}
	for _, n := range e.nodes {
		p := len(n.threads)
		for _, t := range n.threads {
			t.allowed = newOpBitset(len(e.ops))
		}
		if len(chain) <= p {
			// One thread minimum per operator, remainder by share.
			counts := make([]int, len(chain))
			assigned := 0
			for i := range chain {
				counts[i] = 1
				assigned++
			}
			for assigned < p {
				// Give the next thread to the operator with the
				// highest work-per-thread.
				best := 0
				bestRatio := -1.0
				for i := range chain {
					r := work[i] / float64(counts[i])
					if r > bestRatio {
						bestRatio = r
						best = i
					}
				}
				counts[best]++
				assigned++
			}
			ti := 0
			for i, op := range chain {
				for j := 0; j < counts[i]; j++ {
					n.threads[ti].allowed.set(op.ID)
					ti++
				}
			}
		} else {
			// More operators than threads: pack operators onto
			// threads, heaviest first onto the least-loaded thread
			// (ties broken by chain position for determinism).
			loads := make([]float64, p)
			order := make([]int, len(chain))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				if work[order[a]] != work[order[b]] {
					return work[order[a]] > work[order[b]]
				}
				return order[a] < order[b]
			})
			for _, oi := range order {
				best := 0
				for ti := 1; ti < p; ti++ {
					if loads[ti] < loads[best] {
						best = ti
					}
				}
				loads[best] += work[oi]
				n.threads[best].allowed.set(chain[oi].ID)
			}
		}
		n.wake()
	}
}

// deliverLocal enqueues a batch into the consumer's queue on the local
// node. It returns false when the queue is full (flow control).
func (e *Engine) deliverLocal(t *thread, b *batch) bool {
	c := b.consumer
	on := c.at(b.dstNode)
	q := on.queues[c.queueOfBucket(b.bucket)]
	if q.full(e.opt.QueueCapacity) {
		return false
	}
	a := e.newActivation()
	a.op = c
	a.kind = data
	a.node = b.dstNode
	a.bucket = b.bucket
	a.dataTuples = b.tuples
	c.outstanding++
	q.push(a)
	t.chargeQueueOp()
	e.nodes[b.dstNode].wakeFor(c)
	return true
}

// deliverRemote ships a batch to the consumer's node over the network.
// It returns false when the sender is out of credits for that destination
// (remote flow control). The sending thread is charged the per-8KB send
// cost; the receive cost is charged to whichever thread dequeues the
// activation.
func (e *Engine) deliverRemote(t *thread, b *batch) bool {
	c := b.consumer
	src := t.node
	if src.creditsFor(c.op.ID, b.dstNode) <= 0 {
		return false
	}
	src.credits[src.credIdx(c.op.ID, b.dstNode)]--
	bytes := batchBytes(b.tuples, c.op.TupleBytes)
	t.charge(e.cl.Net.SendInstr(bytes))
	a := e.newActivation()
	a.op = c
	a.kind = data
	a.node = b.dstNode
	a.bucket = b.bucket
	a.dataTuples = b.tuples
	a.srcNode = src.id
	a.recvInstr = e.cl.Net.RecvInstr(bytes)
	c.outstanding++
	dstNode, bucket := b.dstNode, b.bucket
	e.cl.Net.Send(simnet.Pipeline, bytes, func() {
		on := c.at(dstNode)
		q := on.queues[c.queueOfBucket(bucket)]
		q.push(a)
		e.nodes[dstNode].wakeFor(c)
	})
	return true
}

// initialCredits is the per-(operator, destination) send window.
func (e *Engine) initialCredits() int {
	return e.opt.QueueCapacity
}

// creditConsumed records consumption of a remote-produced activation and
// returns half-window credit batches to the producer (§3.1 flow control,
// in the style of [Graefe93, Pirahesh90]).
func (e *Engine) creditConsumed(consumerNode *engNode, a *activation) {
	idx := consumerNode.credIdx(a.op.op.ID, a.srcNode)
	consumerNode.creditDebt[idx]++
	half := e.initialCredits() / 2
	if half < 1 {
		half = 1
	}
	if consumerNode.creditDebt[idx] < half {
		return
	}
	e.returnCredits(consumerNode, a.op.op.ID, a.srcNode)
}

// returnCredits sends the accumulated credit grant for (opID, peer) back
// to the producing node.
func (e *Engine) returnCredits(consumerNode *engNode, opID, peer int) {
	idx := consumerNode.credIdx(opID, peer)
	grant := consumerNode.creditDebt[idx]
	if grant <= 0 {
		return
	}
	consumerNode.creditDebt[idx] = 0
	src := e.nodes[peer]
	back := src.credIdx(opID, consumerNode.id)
	e.cl.Net.Send(simnet.Control, controlMsgBytes, func() {
		src.credits[back] += grant
		src.wake()
	})
}

// flushCredits returns every pending credit for an operator whose queues
// just drained, so remote producers holding the tail of a window are not
// stuck below the half-window return threshold.
func (e *Engine) flushCredits(consumerNode *engNode, o *opState) {
	for src := range e.nodes {
		if src == consumerNode.id {
			continue
		}
		e.returnCredits(consumerNode, o.op.ID, src)
	}
}

// checkTermination fires the end-of-operator protocol when the operator
// has started, its producers are finished, and no activation remains
// anywhere (queued, suspended, or in flight).
func (e *Engine) checkTermination(o *opState) {
	if e.done || o.terminating || !o.started || !o.producerDone || o.outstanding != 0 {
		return
	}
	o.terminating = true
	// Remove the operator's queues from the circular lists right away
	// (they are empty by definition).
	for _, n := range e.nodes {
		n.rebuildActive()
	}
	if len(e.nodes) == 1 {
		e.k.After(0, func() { e.finishOp(o) })
		return
	}
	// Coordinator protocol of §4 (Detection of Operator End): every
	// scheduler sends EndOfQueuesAtNode to the coordinator, the
	// coordinator runs a confirmation round with every scheduler (no
	// thread may still be processing), then broadcasts the update —
	// 4(N-1) messages and four network hops end to end.
	phase := func(cont func()) {
		remaining := len(e.nodes) - 1
		for i := 1; i < len(e.nodes); i++ {
			e.cl.Net.Send(simnet.Control, controlMsgBytes, func() {
				remaining--
				if remaining == 0 {
					cont()
				}
			})
		}
	}
	phase(func() { // EndOfQueuesAtNode -> coordinator
		phase(func() { // coordinator -> schedulers: confirm request
			phase(func() { // schedulers -> coordinator: confirmed
				phase(func() { // coordinator -> schedulers: operator end
					e.finishOp(o)
				})
			})
		})
	})
}

// finishOp completes termination: dependents unblock, consumers learn
// their producer is done, everyone wakes.
func (e *Engine) finishOp(o *opState) {
	o.terminated = true
	if c := o.consumer(); c != nil {
		c.producerDone = true
		e.checkTermination(c)
	}
	if o == e.rootOp {
		e.finish()
		return
	}
	for _, d := range o.dependents {
		d.blockersLeft--
		if d.blockersLeft == 0 && !d.started {
			e.startOp(d)
		}
	}
	for _, n := range e.nodes {
		n.rebuildActive()
		n.wake()
	}
}

// finish ends the query: response time is the instant the root operator's
// termination is known everywhere.
func (e *Engine) finish() {
	e.done = true
	e.doneTime = e.k.Now()
	for _, n := range e.nodes {
		n.wake()
	}
}

// finishMetrics folds thread and network counters into the run record.
func (e *Engine) finishMetrics() {
	e.run.ResponseTime = e.doneTime
	for _, n := range e.nodes {
		for _, t := range n.threads {
			e.run.Busy += t.busy
			e.run.IOWait += t.ioWait
			e.run.Idle += t.idle
		}
	}
	e.run.ResultTuples = e.rootOp.results
	pipe := e.cl.Net.TrafficFor(simnet.Pipeline)
	ctrl := e.cl.Net.TrafficFor(simnet.Control)
	bal := e.cl.Net.TrafficFor(simnet.Balance)
	e.run.PipelineMsgs, e.run.PipelineBytes = pipe.Messages, pipe.Bytes
	e.run.ControlMsgs, e.run.ControlBytes = ctrl.Messages, ctrl.Bytes
	e.run.BalanceMsgs, e.run.BalanceBytes = bal.Messages, bal.Bytes
}

// instrTime converts instructions to time at the configured MIPS.
func (e *Engine) instrTime(instr int64) simtime.Duration {
	return e.cl.Cfg.InstrTime(instr)
}
