// Column predicates: filters expressed against a single column, so a
// scan can evaluate them as tight per-column loops that only shrink
// the selection vector — no row materialization, no interface calls
// per row on typed columns.
package vec

// CmpOp is a predicate comparison operator.
type CmpOp uint8

// Comparison operators. IsNull/NotNull ignore Val.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
	IsNull
	NotNull
)

// Pred compares column Col against the constant Val.
//
// Semantics: a null column value satisfies only IsNull. For typed
// columns Val must belong to the column's type family (any of
// int/int32/int64 for the int kinds, uint64 for uint64 columns,
// float64, string; bool supports Eq/Ne only) — a Val outside the
// family matches no rows, mirroring Go's cross-type inequality. Any
// columns compare boxed values dynamically under the same rules.
type Pred struct {
	Col int
	Op  CmpOp
	Val any
}

// ApplyPreds evaluates preds over b's logical rows, ANDing them: sel
// is the incoming selection of logical row indices (nil means all
// rows) and the result is the surviving subset, written in place into
// scratch storage the caller provides via out (grown as needed).
//
//hierdb:hotpath
func ApplyPreds(b *Batch, preds []Pred, sel []int32, out []int32) []int32 {
	if sel == nil {
		sel = Ident(b.N)
	}
	for pi := range preds {
		p := &preds[pi]
		if p.Col < 0 || p.Col >= len(b.Cols) {
			return out[:0]
		}
		c := &b.Cols[p.Col]
		out = out[:0]
		out = applyPred(c, p, sel, out)
		sel = out
	}
	if len(preds) == 0 {
		out = append(out[:0], sel...)
		sel = out
	}
	return sel
}

//hierdb:hotpath
func applyPred(c *Col, p *Pred, sel []int32, out []int32) []int32 {
	switch p.Op {
	case IsNull:
		for _, li := range sel {
			pos := c.Pos(int(li))
			if c.NullAt(pos) {
				out = append(out, li)
			}
		}
		return out
	case NotNull:
		for _, li := range sel {
			pos := c.Pos(int(li))
			if !c.NullAt(pos) {
				out = append(out, li)
			}
		}
		return out
	}
	switch {
	case c.Kind.IntFamily() && c.Kind != Uint64:
		v, ok := intFamilyVal(p.Val)
		if !ok {
			return out
		}
		for _, li := range sel {
			pos := c.Pos(int(li))
			if !c.NullAt(pos) && cmpHolds(p.Op, cmpI64(c.I64[pos], v)) {
				out = append(out, li)
			}
		}
	case c.Kind == Uint64:
		v, ok := p.Val.(uint64)
		if !ok {
			return out
		}
		for _, li := range sel {
			pos := c.Pos(int(li))
			if !c.NullAt(pos) && cmpHolds(p.Op, cmpU64(uint64(c.I64[pos]), v)) {
				out = append(out, li)
			}
		}
	case c.Kind == Float64:
		v, ok := p.Val.(float64)
		if !ok {
			return out
		}
		for _, li := range sel {
			pos := c.Pos(int(li))
			if !c.NullAt(pos) && cmpHolds(p.Op, cmpF64(c.F64[pos], v)) {
				out = append(out, li)
			}
		}
	case c.Kind == String:
		v, ok := p.Val.(string)
		if !ok {
			return out
		}
		for _, li := range sel {
			pos := c.Pos(int(li))
			if !c.NullAt(pos) && cmpHolds(p.Op, cmpStr(c.Str[pos], v)) {
				out = append(out, li)
			}
		}
	case c.Kind == Bool:
		v, ok := p.Val.(bool)
		if !ok || (p.Op != Eq && p.Op != Ne) {
			return out
		}
		for _, li := range sel {
			pos := c.Pos(int(li))
			if !c.NullAt(pos) && (c.B[pos] == v) == (p.Op == Eq) {
				out = append(out, li)
			}
		}
	default: // Any: dynamic boxed comparison
		for _, li := range sel {
			pos := c.Pos(int(li))
			v := c.Box[pos]
			if v == nil || IsAbsent(v) {
				continue
			}
			if bv, ok := v.(bool); ok {
				// Bools are unordered: Eq/Ne only.
				if bw, ok := p.Val.(bool); ok && (p.Op == Eq || p.Op == Ne) && (bv == bw) == (p.Op == Eq) {
					out = append(out, li)
				}
				continue
			}
			if r, ok := dynCmp(v, p.Val); ok && cmpHolds(p.Op, r) {
				out = append(out, li)
			}
		}
	}
	return out
}

// cmpHolds reports whether a three-way comparison result satisfies op.
//
//hierdb:hotpath
func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

//hierdb:hotpath
func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

//hierdb:hotpath
func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

//hierdb:hotpath
func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

//hierdb:hotpath
func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// intFamilyVal widens an int/int32/int64 predicate constant to int64.
func intFamilyVal(v any) (int64, bool) {
	switch t := v.(type) {
	case int:
		return int64(t), true
	case int32:
		return int64(t), true
	case int64:
		return t, true
	}
	return 0, false
}

// dynCmp three-way-compares two boxed scalars of the same family; ok
// is false when the types are incomparable (which matches nothing).
func dynCmp(v, val any) (int, bool) {
	if a, ok := intFamilyVal(v); ok {
		if b, ok := intFamilyVal(val); ok {
			return cmpI64(a, b), true
		}
		return 0, false
	}
	switch a := v.(type) {
	case uint64:
		if b, ok := val.(uint64); ok {
			return cmpU64(a, b), true
		}
	case float64:
		if b, ok := val.(float64); ok {
			return cmpF64(a, b), true
		}
	case string:
		if b, ok := val.(string); ok {
			return cmpStr(a, b), true
		}
	}
	return 0, false
}
