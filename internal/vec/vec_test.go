package vec

import (
	"reflect"
	"testing"
)

func rowsEq(t *testing.T, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) == 0 && len(want[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestFromRowsRoundTrip(t *testing.T) {
	cases := [][]Row{
		{{1, "a", 1.5, true}, {2, "b", 2.5, false}, {3, "c", 3.5, true}},
		{{int64(7), nil}, {nil, "x"}, {int64(9), "y"}},
		{{1}, {2, "wide"}, {3}}, // ragged
		{{uint64(5), int32(-4)}, {uint64(6), int32(8)}},
		{{1, 2}, {"mixed", 3}}, // mixed kinds → Any
		{},
		{{nil, nil}},
	}
	for ci, rows := range cases {
		b := FromRows(rows)
		if b.N != len(rows) {
			t.Fatalf("case %d: N=%d want %d", ci, b.N, len(rows))
		}
		var a Arena
		got := b.AppendRows(nil, &a)
		rowsEq(t, got, rows)
		// Forced-Any round trip must agree too.
		got2 := FromRowsAny(rows).AppendRows(nil, &a)
		rowsEq(t, got2, rows)
	}
}

func TestFromRowsKinds(t *testing.T) {
	b := FromRows([]Row{{1, "a", 2.5, true, int64(4), nil}, {2, "b", 3.5, false, int64(5), uint64(6)}})
	want := []Kind{Int, String, Float64, Bool, Int64, Uint64}
	for i, k := range want {
		if b.Cols[i].Kind != k {
			t.Fatalf("col %d: kind %v want %v", i, b.Cols[i].Kind, k)
		}
	}
	if !b.Cols[5].NullAt(0) || b.Cols[5].NullAt(1) {
		t.Fatal("null bitmap wrong on col 5")
	}
}

func TestIdentGrowsAndAliases(t *testing.T) {
	a := Ident(10)
	b := Ident(100000)
	for i := 0; i < 10; i++ {
		if a[i] != int32(i) || b[i] != int32(i) {
			t.Fatalf("ident[%d] wrong", i)
		}
	}
	if b[99999] != 99999 {
		t.Fatal("ident tail wrong")
	}
}

func TestSelectComposes(t *testing.T) {
	rows := []Row{{0, "a"}, {1, "b"}, {2, "c"}, {3, "d"}}
	b := FromRows(rows)
	var a Arena
	// Window rows 1..3 via a shared Idx, then select within it.
	win := &Batch{Cols: make([]Col, 2), N: 3}
	idx := Ident(4)[1:4]
	for i := range win.Cols {
		win.Cols[i] = b.Cols[i]
		win.Cols[i].Idx = idx
	}
	sel := Select(win, []int32{0, 2}, &a)
	got := sel.AppendRows(nil, &a)
	rowsEq(t, got, []Row{{1, "b"}, {3, "d"}})
	// Cols shared one Idx, so the composed Idx must be shared too.
	if &sel.Cols[0].Idx[0] != &sel.Cols[1].Idx[0] {
		t.Fatal("composed Idx not shared across columns sharing a window")
	}
}

func TestAppenderAccumulates(t *testing.T) {
	b1 := FromRows([]Row{{1, "a"}, {2, "b"}})
	b2 := FromRows([]Row{{3, "c"}, {4, "d"}, {5, "e"}})
	ap := NewAppender(nil, 4)
	ap.AppendBatch(b1)
	ap.AppendRowsSel(b2, []int32{2, 0})
	if ap.Len() != 4 {
		t.Fatalf("len %d", ap.Len())
	}
	out := ap.Batch()
	var a Arena
	rowsEq(t, out.AppendRows(nil, &a), []Row{{1, "a"}, {2, "b"}, {5, "e"}, {3, "c"}})
	if out.Cols[0].Kind != Int || out.Cols[1].Kind != String {
		t.Fatalf("kinds %v %v", out.Cols[0].Kind, out.Cols[1].Kind)
	}
}

func TestAppenderDegradesOnKindMismatch(t *testing.T) {
	ap := NewAppender(nil, 0)
	ap.AppendBatch(FromRows([]Row{{1}}))
	ap.AppendBatch(FromRows([]Row{{"s"}}))
	ap.AppendBatch(FromRows([]Row{{2, true}})) // widen
	out := ap.Batch()
	if out.Cols[0].Kind != Any || out.Cols[1].Kind != Any {
		t.Fatalf("kinds %v %v", out.Cols[0].Kind, out.Cols[1].Kind)
	}
	var a Arena
	rowsEq(t, out.AppendRows(nil, &a), []Row{{1}, {"s"}, {2, true}})
}

func TestAppenderNullsSurvive(t *testing.T) {
	ap := NewAppender(nil, 0)
	ap.AppendBatch(FromRows([]Row{{1}, {nil}, {3}}))
	out := ap.Batch()
	if out.Cols[0].Kind != Int {
		t.Fatalf("kind %v", out.Cols[0].Kind)
	}
	if !out.Cols[0].NullAt(1) || out.Cols[0].NullAt(0) || out.Cols[0].NullAt(2) {
		t.Fatal("null bitmap wrong after append")
	}
	var a Arena
	rowsEq(t, out.AppendRows(nil, &a), []Row{{1}, {nil}, {3}})
}

func TestReadRowReusesScratch(t *testing.T) {
	b := FromRows([]Row{{1, "a"}, {2}})
	scratch := make(Row, 0, 8)
	r0 := b.ReadRow(0, scratch)
	if !reflect.DeepEqual(r0, Row{1, "a"}) {
		t.Fatalf("row0 %v", r0)
	}
	r1 := b.ReadRow(1, scratch)
	if !reflect.DeepEqual(r1, Row{2}) {
		t.Fatalf("row1 %v", r1)
	}
}

func TestArenaCapacityCapped(t *testing.T) {
	var a Arena
	s := a.I32(4)
	if cap(s) != 4 {
		t.Fatalf("cap %d", cap(s))
	}
	s2 := a.I32(4)
	s = append(s, 99) // must not bleed into s2
	_ = s
	if s2[0] != 0 {
		t.Fatal("append bled into the next carving")
	}
}
