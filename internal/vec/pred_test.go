package vec

import (
	"reflect"
	"testing"
)

func selOf(t *testing.T, rows []Row, preds ...Pred) []int32 {
	t.Helper()
	b := FromRows(rows)
	out := ApplyPreds(b, preds, nil, nil)
	return out
}

func TestPredsTyped(t *testing.T) {
	rows := []Row{{1, "a", 1.5}, {2, "b", 2.5}, {nil, "c", 3.5}, {4, "a", 4.5}}
	cases := []struct {
		preds []Pred
		want  []int32
	}{
		{[]Pred{{Col: 0, Op: Gt, Val: 1}}, []int32{1, 3}},
		{[]Pred{{Col: 0, Op: Le, Val: int64(2)}}, []int32{0, 1}},
		{[]Pred{{Col: 1, Op: Eq, Val: "a"}}, []int32{0, 3}},
		{[]Pred{{Col: 2, Op: Ge, Val: 2.5}, {Col: 1, Op: Ne, Val: "c"}}, []int32{1, 3}},
		{[]Pred{{Col: 0, Op: IsNull}}, []int32{2}},
		{[]Pred{{Col: 0, Op: NotNull}, {Col: 0, Op: Lt, Val: 4}}, []int32{0, 1}},
		{[]Pred{{Col: 0, Op: Eq, Val: "type-mismatch"}}, nil},
		{[]Pred{{Col: 9, Op: Eq, Val: 1}}, nil},
	}
	for i, c := range cases {
		got := selOf(t, rows, c.preds...)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestPredsAnyColumn(t *testing.T) {
	rows := []Row{{1}, {"x"}, {nil}, {2.5}, {int64(3)}, {true}}
	b := FromRows(rows)
	if b.Cols[0].Kind != Any {
		t.Fatalf("kind %v", b.Cols[0].Kind)
	}
	got := ApplyPreds(b, []Pred{{Col: 0, Op: Ge, Val: 2}}, nil, nil)
	// int-family values ≥ 2: int64(3). 2.5 is a float (different family).
	if !reflect.DeepEqual(got, []int32{4}) {
		t.Fatalf("got %v", got)
	}
	got = ApplyPreds(b, []Pred{{Col: 0, Op: Eq, Val: true}}, nil, nil)
	if !reflect.DeepEqual(got, []int32{5}) {
		t.Fatalf("bool eq got %v", got)
	}
	got = ApplyPreds(b, []Pred{{Col: 0, Op: Gt, Val: true}}, nil, nil)
	if len(got) != 0 {
		t.Fatalf("ordered bool compare must match nothing, got %v", got)
	}
	got = ApplyPreds(b, []Pred{{Col: 0, Op: IsNull}}, nil, nil)
	if !reflect.DeepEqual(got, []int32{2}) {
		t.Fatalf("isnull got %v", got)
	}
}

func TestPredsBoolUint(t *testing.T) {
	rows := []Row{{true, uint64(5)}, {false, uint64(9)}, {true, uint64(1)}}
	b := FromRows(rows)
	got := ApplyPreds(b, []Pred{{Col: 0, Op: Eq, Val: true}, {Col: 1, Op: Lt, Val: uint64(5)}}, nil, nil)
	if !reflect.DeepEqual(got, []int32{2}) {
		t.Fatalf("got %v", got)
	}
	if got := ApplyPreds(b, []Pred{{Col: 0, Op: Lt, Val: true}}, nil, nil); len(got) != 0 {
		t.Fatalf("bool Lt matched %v", got)
	}
}
