// Package vec is the engine's columnar batch representation: typed
// column vectors with null bitmaps and per-column selection vectors.
// A Batch is the hot-path currency of internal/exec — scans carve
// column windows from columnized tables, filters shrink selection
// vectors, and the join kernels hash and gather whole columns.
//
// Layout invariants:
//
//   - Box is always present and authoritative: Box[pos] holds the boxed
//     value at storage position pos (nil at SQL-null positions, Absent
//     at ragged-row padding). Materializing a row copies Box words, so
//     no value is ever boxed twice.
//   - A typed column (Kind != Any) additionally carries a typed mirror
//     (I64/F64/Str/B) with the zero value at null positions, and an
//     optional packed null bitmap over storage positions. Typed kernels
//     read the mirror; everything else falls back to Box.
//   - Columns are windowed exclusively through Idx (logical→storage).
//     Storage slices are never re-sliced: the null bitmap is packed at
//     word granularity over storage positions, so re-slicing storage
//     would break bitmap alignment. Idx == nil means the dense identity
//     window (len(Box) == N).
package vec

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Row is one boxed tuple, positional, matching exec.Row / spill.Row.
type Row = []any

// Kind is a column's resolved type.
type Kind uint8

// Column kinds. Any is the boxed fallback: mixed types, exotic types,
// or ragged-row padding.
const (
	Any Kind = iota
	Int
	Int32
	Int64
	Uint64
	Float64
	Bool
	String
)

func (k Kind) String() string {
	switch k {
	case Any:
		return "any"
	case Int:
		return "int"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Uint64:
		return "uint64"
	case Float64:
		return "float64"
	case Bool:
		return "bool"
	case String:
		return "string"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IntFamily reports whether k stores its values in the I64 mirror.
func (k Kind) IntFamily() bool {
	return k == Int || k == Int32 || k == Int64 || k == Uint64
}

type absentT struct{}

// Absent pads ragged rows: a row shorter than the batch width stores
// Absent in its missing tail columns. Materialization strips Absent,
// reproducing the original row widths. Absent only ever appears in
// Kind == Any columns.
var Absent any = absentT{}

// IsAbsent reports whether v is the ragged-row padding sentinel.
func IsAbsent(v any) bool {
	_, ok := v.(absentT)
	return ok
}

// KindOf classifies one boxed value. nil and Absent have no kind of
// their own and report Any; callers combining kinds across rows treat
// nil as "does not constrain the column".
func KindOf(v any) Kind {
	switch v.(type) {
	case int:
		return Int
	case int32:
		return Int32
	case int64:
		return Int64
	case uint64:
		return Uint64
	case float64:
		return Float64
	case bool:
		return Bool
	case string:
		return String
	}
	return Any
}

// Col is one column vector.
type Col struct {
	Kind Kind
	// Idx maps logical row i to storage position Idx[i]; nil means the
	// dense identity window over the whole storage (len(Box) rows).
	Idx []int32
	// Box holds the boxed values, one per storage position. Always
	// present; nil marks SQL null, Absent marks ragged-row padding.
	Box []any
	// Typed mirrors, valid per Kind (I64 backs the whole int family,
	// with uint64 values stored as their bit pattern).
	I64 []int64
	F64 []float64
	Str []string
	B   []bool
	// Null is a packed little-endian bitmap over storage positions (bit
	// set = null). nil means no nulls. Only maintained for typed
	// columns; Any columns mark nulls in Box directly.
	Null []uint64
}

// Pos maps logical row i to its storage position.
//
//hierdb:hotpath
func (c *Col) Pos(i int) int {
	if c.Idx == nil {
		return i
	}
	return int(c.Idx[i])
}

// NullAt reports whether storage position pos is null.
//
//hierdb:hotpath
func (c *Col) NullAt(pos int) bool {
	if c.Null == nil {
		return c.Kind == Any && c.Box[pos] == nil
	}
	return c.Null[pos>>6]&(1<<(uint(pos)&63)) != 0
}

// setNull marks storage position pos null in a bitmap sized for n
// storage positions, allocating it on first use.
func (c *Col) setNull(pos, n int) {
	if c.Null == nil {
		c.Null = make([]uint64, (n+63)/64)
	}
	c.Null[pos>>6] |= 1 << (uint(pos) & 63)
}

// Value returns the boxed value at storage position pos.
//
//hierdb:hotpath
func (c *Col) Value(pos int) any { return c.Box[pos] }

// Batch is a set of equal-length column vectors. Columns may carry
// different Idx windows (a join output keeps probe columns as a
// selection over the probe batch while build columns are dense
// gathers), but all describe the same N logical rows.
type Batch struct {
	Cols []Col
	N    int
}

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.Cols) }

// ---------------------------------------------------------------------
// Identity windows
// ---------------------------------------------------------------------

var (
	identMu sync.Mutex
	identP  atomic.Pointer[[]int32]
)

// Ident returns the shared identity table [0,n): Ident(n)[i] == i.
// Slices of earlier, shorter calls remain valid forever — the table
// only grows, and old prefixes alias the same immutable values, so
// scan windows can slice it without copying.
func Ident(n int) []int32 {
	if p := identP.Load(); p != nil && len(*p) >= n {
		return (*p)[:n]
	}
	identMu.Lock()
	defer identMu.Unlock()
	if p := identP.Load(); p != nil && len(*p) >= n {
		return (*p)[:n]
	}
	m := 1024
	for m < n {
		m *= 2
	}
	s := make([]int32, m)
	for i := range s {
		s[i] = int32(i)
	}
	identP.Store(&s)
	return s[:n]
}

// ---------------------------------------------------------------------
// Row → column conversion
// ---------------------------------------------------------------------

// FromRows columnizes boxed rows, detecting one Kind per column: a
// column whose non-null values all share one scalar type gets that
// typed representation (mirror + null bitmap); mixed or exotic columns
// stay boxed (Any). Ragged rows are padded with Absent, which forces
// the padded columns to Any.
func FromRows(rows []Row) *Batch {
	return fromRows(rows, false)
}

// FromRowsAny columnizes boxed rows with every column forced to the
// boxed Any representation — used for operator outputs (e.g. Combine
// results) whose types are not worth re-detecting per batch.
func FromRowsAny(rows []Row) *Batch {
	return fromRows(rows, true)
}

func fromRows(rows []Row, forceAny bool) *Batch {
	n := len(rows)
	w := 0
	for _, r := range rows {
		if len(r) > w {
			w = len(r)
		}
	}
	b := &Batch{Cols: make([]Col, w), N: n}
	for ci := range b.Cols {
		c := &b.Cols[ci]
		c.Box = make([]any, n)
		kind := Any
		resolved := forceAny
		for ri, r := range rows {
			var v any
			if ci < len(r) {
				v = r[ci]
			} else {
				v = Absent
			}
			c.Box[ri] = v
			if resolved && kind == Any {
				continue
			}
			if v == nil {
				continue // null constrains nothing
			}
			k := KindOf(v)
			if !resolved {
				kind, resolved = k, true
			} else if k != kind {
				kind = Any
			}
			if k == Any {
				kind = Any // Absent padding and exotic types stay boxed
			}
		}
		c.Kind = kind
		if kind != Any {
			fillMirror(c)
		}
	}
	return b
}

// fillMirror populates the typed mirror and null bitmap of a column
// whose Kind has been resolved, from its Box values.
func fillMirror(c *Col) {
	n := len(c.Box)
	switch c.Kind {
	case Int, Int32, Int64, Uint64:
		c.I64 = make([]int64, n)
		for i, v := range c.Box {
			switch t := v.(type) {
			case int:
				c.I64[i] = int64(t)
			case int32:
				c.I64[i] = int64(t)
			case int64:
				c.I64[i] = t
			case uint64:
				c.I64[i] = int64(t)
			default: // nil
				c.setNull(i, n)
			}
		}
	case Float64:
		c.F64 = make([]float64, n)
		for i, v := range c.Box {
			if t, ok := v.(float64); ok {
				c.F64[i] = t
			} else {
				c.setNull(i, n)
			}
		}
	case Bool:
		c.B = make([]bool, n)
		for i, v := range c.Box {
			if t, ok := v.(bool); ok {
				c.B[i] = t
			} else {
				c.setNull(i, n)
			}
		}
	case String:
		c.Str = make([]string, n)
		for i, v := range c.Box {
			if t, ok := v.(string); ok {
				c.Str[i] = t
			} else {
				c.setNull(i, n)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Column → row materialization (the one sanctioned vec→Row boundary)
// ---------------------------------------------------------------------

// AppendRows materializes the batch's logical rows onto dst, carving
// row storage from a (never reused, so callers may retain the rows).
// Absent padding is stripped, reproducing original ragged widths.
//
//hierdb:hotpath
func (b *Batch) AppendRows(dst []Row, a *Arena) []Row {
	w := len(b.Cols)
	if b.N == 0 || w == 0 {
		return dst
	}
	// One flat carve for the whole batch, filled column-major: each
	// column's storage is streamed once instead of strided per row, and
	// the per-row carve bookkeeping disappears.
	flat := a.Anys(b.N * w)
	for ci := range b.Cols {
		c := &b.Cols[ci]
		box := c.Box
		if c.Idx == nil {
			for i := 0; i < b.N; i++ {
				flat[i*w+ci] = box[i]
			}
		} else {
			idx := c.Idx
			for i := 0; i < b.N; i++ {
				flat[i*w+ci] = box[idx[i]]
			}
		}
	}
	for i := 0; i < b.N; i++ {
		row := flat[i*w : (i+1)*w : (i+1)*w]
		// Ragged rows carry tail-only Absent padding: trim from the end.
		end := w
		for end > 0 && IsAbsent(row[end-1]) {
			end--
		}
		dst = append(dst, row[:end:end])
	}
	return dst
}

// ReadRow materializes logical row i into scratch (reused by callers
// that only need the row transiently: filters, key extraction,
// aggregate arguments). The returned slice aliases scratch.
//
//hierdb:hotpath
func (b *Batch) ReadRow(i int, scratch Row) Row {
	row := scratch[:0]
	for ci := range b.Cols {
		c := &b.Cols[ci]
		v := c.Box[c.Pos(i)]
		if IsAbsent(v) {
			break
		}
		row = append(row, v)
	}
	return row
}

// ---------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------

// Select returns a view of b restricted to the given logical rows,
// composing selection vectors without touching storage. Columns that
// share an Idx slice share the composed result. Index storage is
// carved from a.
//
//hierdb:hotpath
func Select(b *Batch, sel []int32, a *Arena) *Batch {
	out := &Batch{Cols: make([]Col, len(b.Cols)), N: len(sel)}
	type group struct {
		idx      []int32 // original (nil = dense)
		composed []int32
	}
	groups := make([]group, 0, len(b.Cols))
	for ci := range b.Cols {
		c := &b.Cols[ci]
		oc := &out.Cols[ci]
		*oc = *c
		var composed []int32
		for gi := range groups {
			if sameIdx(groups[gi].idx, c.Idx) {
				composed = groups[gi].composed
				break
			}
		}
		if composed == nil {
			composed = a.I32(len(sel))
			if c.Idx == nil {
				copy(composed, sel)
			} else {
				for j, li := range sel {
					composed[j] = c.Idx[li]
				}
			}
			groups = append(groups, group{c.Idx, composed})
		}
		oc.Idx = composed
	}
	return out
}

// sameIdx reports whether two index slices are the identical window
// (same backing array, offset and length — or both dense).
func sameIdx(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return a == nil && b == nil || (a == nil) == (b == nil)
	}
	return &a[0] == &b[0]
}

// ---------------------------------------------------------------------
// Appender
// ---------------------------------------------------------------------

// Appender accumulates rows from batches into one growing dense
// columnar store — the build side of a hash-join stripe, or a spill
// drain buffer. The store's schema adapts: a column fed two different
// kinds, or ragged widths, degrades to Any (Box stays authoritative,
// so degrading is O(1) and never re-boxes).
type Appender struct {
	cols     []Col
	resolved []bool
	n        int
}

// NewAppender returns an appender pre-shaped for the given column
// kinds (nil means the schema is discovered from appended batches)
// with capacity for hint rows.
func NewAppender(kinds []Kind, hint int) *Appender {
	ap := &Appender{}
	if kinds != nil {
		ap.cols = make([]Col, len(kinds))
		ap.resolved = make([]bool, len(kinds))
		for i, k := range kinds {
			ap.cols[i].Kind = k
			ap.cols[i].Box = make([]any, 0, hint)
			ap.resolved[i] = true
		}
	}
	return ap
}

// Len returns the number of rows appended so far.
func (ap *Appender) Len() int { return ap.n }

// Width returns the number of columns accumulated so far.
func (ap *Appender) Width() int { return len(ap.cols) }

// Col exposes accumulated column i for direct positional reads (the
// appender's columns are dense: position == append order). The Box
// slice is always populated; typed mirrors only when the column stayed
// resolved. Callers must not mutate the column.
func (ap *Appender) Col(i int) *Col { return &ap.cols[i] }

// AppendBatch appends every logical row of b.
func (ap *Appender) AppendBatch(b *Batch) {
	ap.AppendRowsSel(b, nil)
}

// AppendRowsSel appends the logical rows of b listed in sel (nil means
// all rows) to the store.
//
//hierdb:hotpath
func (ap *Appender) AppendRowsSel(b *Batch, sel []int32) {
	k := b.N
	if sel != nil {
		k = len(sel)
	}
	if k == 0 {
		return
	}
	ap.widen(len(b.Cols))
	for ci := range ap.cols {
		dst := &ap.cols[ci]
		if ci >= len(b.Cols) {
			ap.padAbsent(dst, k)
			continue
		}
		src := &b.Cols[ci]
		ap.appendCol(dst, ci, src, sel, k)
	}
	ap.n += k
}

// widen grows the store to w columns, backfilling new columns with
// Absent for the rows already appended.
func (ap *Appender) widen(w int) {
	for len(ap.cols) < w {
		c := Col{Kind: Any, Box: make([]any, ap.n, ap.n+256)}
		for i := range c.Box {
			c.Box[i] = Absent
		}
		ap.cols = append(ap.cols, c)
		// A column backfilled with Absent is permanently Any; a column
		// opened before any rows landed adopts the first batch's kind.
		ap.resolved = append(ap.resolved, ap.n > 0)
	}
}

// padAbsent appends k Absent values to a column the incoming batch
// does not cover (incoming rows narrower than the store).
func (ap *Appender) padAbsent(dst *Col, k int) {
	ap.degrade(dst)
	for j := 0; j < k; j++ {
		dst.Box = append(dst.Box, Absent)
	}
}

// degrade drops a column to the boxed Any representation. Box is
// authoritative, so this only folds the null bitmap away and forgets
// the mirror.
func (ap *Appender) degrade(dst *Col) {
	if dst.Kind == Any {
		return
	}
	dst.Kind = Any
	dst.I64, dst.F64, dst.Str, dst.B, dst.Null = nil, nil, nil, nil, nil
}

//hierdb:hotpath
func (ap *Appender) appendCol(dst *Col, ci int, src *Col, sel []int32, k int) {
	if !ap.resolved[ci] {
		dst.Kind = src.Kind
		ap.resolved[ci] = true
	} else if dst.Kind != src.Kind {
		ap.degrade(dst)
	}
	// Box always copies.
	if sel == nil && src.Idx == nil {
		dst.Box = append(dst.Box, src.Box...)
	} else if sel == nil {
		for _, pos := range src.Idx {
			dst.Box = append(dst.Box, src.Box[pos])
		}
	} else {
		for _, li := range sel {
			dst.Box = append(dst.Box, src.Box[src.Pos(int(li))])
		}
	}
	if dst.Kind == Any {
		return
	}
	// Mirror and nulls for the still-typed column.
	if sel == nil && src.Idx == nil {
		for pos := range src.Box {
			appendOne(dst, src, pos)
		}
	} else if sel == nil {
		for _, pos := range src.Idx {
			appendOne(dst, src, int(pos))
		}
	} else {
		for _, li := range sel {
			appendOne(dst, src, src.Pos(int(li)))
		}
	}
}

// appendOne appends the typed mirror value (and null bit) at source
// storage position pos to dst, which is known to share src's kind.
//
//hierdb:hotpath
func appendOne(dst, src *Col, pos int) {
	var p int
	switch dst.Kind {
	case Int, Int32, Int64, Uint64:
		p = len(dst.I64)
		dst.I64 = append(dst.I64, src.I64[pos])
	case Float64:
		p = len(dst.F64)
		dst.F64 = append(dst.F64, src.F64[pos])
	case Bool:
		p = len(dst.B)
		dst.B = append(dst.B, src.B[pos])
	case String:
		p = len(dst.Str)
		dst.Str = append(dst.Str, src.Str[pos])
	}
	if src.NullAt(pos) {
		setNullGrow(dst, p)
	}
}

// setNullGrow marks storage position pos null, growing the bitmap as
// needed (the appender's store grows incrementally, unlike fixed-size
// batch columns).
func setNullGrow(c *Col, pos int) {
	for len(c.Null) <= pos>>6 {
		c.Null = append(c.Null, 0)
	}
	c.Null[pos>>6] |= 1 << (uint(pos) & 63)
}

// Batch seals the appended rows as one dense batch. The appender must
// not be appended to afterwards (the batch aliases its storage).
func (ap *Appender) Batch() *Batch {
	b := &Batch{Cols: make([]Col, len(ap.cols)), N: ap.n}
	copy(b.Cols, ap.cols)
	for ci := range b.Cols {
		c := &b.Cols[ci]
		if c.Null != nil {
			// Bitmaps grow lazily; pad to full words for the final size.
			want := (len(c.Box) + 63) / 64
			for len(c.Null) < want {
				c.Null = append(c.Null, 0)
			}
		}
	}
	return b
}
