// Chunked arenas for the hot path: selection vectors, gather targets
// and materialized row storage are carved from per-worker arenas so
// steady-state streaming performs O(1) allocations per batch, not per
// row. Chunks are never reused — a carved slice stays valid (and a
// materialized row safely retainable) for the life of the process.
package vec

const arenaChunk = 16 * 1024

// chunkArena hands out slices of T from large chunks.
type chunkArena[T any] struct {
	chunk []T
}

// carve returns a zeroed slice of n elements. The capacity is capped
// at n so appends by the caller cannot bleed into later carvings.
//
//hierdb:hotpath
func (a *chunkArena[T]) carve(n int) []T {
	if n > cap(a.chunk)-len(a.chunk) {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.chunk = make([]T, 0, size)
	}
	s := a.chunk[len(a.chunk) : len(a.chunk)+n : len(a.chunk)+n]
	a.chunk = a.chunk[:len(a.chunk)+n]
	return s
}

// Arena bundles the element types the executor carves.
type Arena struct {
	i32  chunkArena[int32]
	i64  chunkArena[int64]
	u64  chunkArena[uint64]
	f64  chunkArena[float64]
	str  chunkArena[string]
	bs   chunkArena[bool]
	anys chunkArena[any]
}

// I32 carves n int32s.
//
//hierdb:hotpath
func (a *Arena) I32(n int) []int32 { return a.i32.carve(n) }

// I64 carves n int64s.
//
//hierdb:hotpath
func (a *Arena) I64(n int) []int64 { return a.i64.carve(n) }

// U64 carves n uint64s.
//
//hierdb:hotpath
func (a *Arena) U64(n int) []uint64 { return a.u64.carve(n) }

// F64 carves n float64s.
//
//hierdb:hotpath
func (a *Arena) F64(n int) []float64 { return a.f64.carve(n) }

// Strs carves n strings.
//
//hierdb:hotpath
func (a *Arena) Strs(n int) []string { return a.str.carve(n) }

// Bools carves n bools.
//
//hierdb:hotpath
func (a *Arena) Bools(n int) []bool { return a.bs.carve(n) }

// Anys carves n interface words.
//
//hierdb:hotpath
func (a *Arena) Anys(n int) []any { return a.anys.carve(n) }
