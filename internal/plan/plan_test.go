package plan

import (
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/querygen"
	"hierdb/internal/xrand"
)

// fig2Query builds the 4-relation query of the paper's Figure 2:
// R join S join T join U with a bushy tree ((R⋈S)⋈(T⋈U)).
func fig2Query() (*querygen.Query, *JoinNode) {
	home := catalog.AllNodes(2)
	mk := func(name string, card int64) *catalog.Relation {
		return &catalog.Relation{Name: name, Cardinality: card, TupleBytes: 100, Home: home}
	}
	r, s, tt, u := mk("R", 10_000), mk("S", 40_000), mk("T", 20_000), mk("U", 80_000)
	q := &querygen.Query{
		Name:      "fig2",
		Relations: []*catalog.Relation{r, s, tt, u},
		Edges: []querygen.Edge{
			{A: 0, B: 1, Selectivity: 1.0 / 10_000},
			{A: 1, B: 2, Selectivity: 1.0 / 40_000},
			{A: 2, B: 3, Selectivity: 1.0 / 80_000},
		},
	}
	tree := &JoinNode{
		Left: &JoinNode{
			Left:        &JoinNode{Rel: r},
			Right:       &JoinNode{Rel: s},
			Selectivity: 1.0 / 10_000,
		},
		Right: &JoinNode{
			Left:        &JoinNode{Rel: tt},
			Right:       &JoinNode{Rel: u},
			Selectivity: 1.0 / 20_000,
		},
		Selectivity: 1.0 / 80_000,
	}
	return q, tree
}

func TestExpandFig2Shape(t *testing.T) {
	q, jt := fig2Query()
	pt := Expand("fig2.t1", q, jt, catalog.AllNodes(2))
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 scans + 3 builds + 3 probes = 10 operators, 3 joins, 4 chains.
	if len(pt.Ops) != 10 {
		t.Fatalf("ops = %d", len(pt.Ops))
	}
	if pt.Joins != 3 {
		t.Fatalf("joins = %d", pt.Joins)
	}
	if len(pt.Chains) != 4 {
		t.Fatalf("chains = %d: %s", len(pt.Chains), pt)
	}
	if pt.Root.Kind != Probe {
		t.Fatalf("root kind = %v", pt.Root.Kind)
	}
	if pt.Root.Consumer != nil {
		t.Fatal("root has a consumer")
	}
}

func TestExpandBuildsOnSmallerSide(t *testing.T) {
	q, jt := fig2Query()
	pt := Expand("fig2.t1", q, jt, catalog.AllNodes(2))
	for _, op := range pt.Ops {
		if op.Kind != Build {
			continue
		}
		// The build input cardinality must not exceed its partner
		// probe's input cardinality.
		if op.InCard > op.Partner.InCard {
			t.Errorf("%s builds larger side: %d > %d", op.Name, op.InCard, op.Partner.InCard)
		}
	}
}

func TestChainsPipelineStructure(t *testing.T) {
	q, jt := fig2Query()
	pt := Expand("fig2.t1", q, jt, catalog.AllNodes(2))
	for i, chain := range pt.Chains {
		if chain[0].Kind != Scan {
			t.Fatalf("chain %d not driven by a scan", i)
		}
		for j, op := range chain[1:] {
			if op.Kind == Scan {
				t.Fatalf("chain %d has interior scan at %d", i, j+1)
			}
		}
		last := chain[len(chain)-1]
		if last.Kind == Build {
			continue // terminated by blocking output
		}
		if last != pt.Root {
			t.Fatalf("chain %d ends at %s which is neither build nor root", i, last.Name)
		}
	}
}

func TestChainOrderRespectsHashDependencies(t *testing.T) {
	q, jt := fig2Query()
	pt := Expand("fig2.t1", q, jt, catalog.AllNodes(2))
	for _, op := range pt.Ops {
		if op.Kind == Build && op.Partner.Chain <= op.Chain {
			t.Fatalf("%s (chain %d) must precede %s (chain %d)",
				op.Name, op.Chain, op.Partner.Name, op.Partner.Chain)
		}
	}
}

func TestSchedulingHeuristics(t *testing.T) {
	q, jt := fig2Query()
	pt := Expand("fig2.t1", q, jt, catalog.AllNodes(2))
	// Every probe is blocked by its build (hash constraint).
	for _, op := range pt.Ops {
		if op.Kind != Probe {
			continue
		}
		found := false
		for _, b := range op.Blockers {
			if b == op.Partner {
				found = true
			}
		}
		if !found {
			t.Errorf("%s lacks hash constraint on %s", op.Name, op.Partner.Name)
		}
	}
	// Heuristic 2: each non-first chain's driver is blocked by all
	// operators of the previous chain.
	for i := 1; i < len(pt.Chains); i++ {
		driver := pt.Chains[i][0]
		for _, prev := range pt.Chains[i-1] {
			found := false
			for _, b := range driver.Blockers {
				if b == prev {
					found = true
				}
			}
			if !found {
				t.Errorf("chain %d driver %s not blocked by %s", i, driver.Name, prev.Name)
			}
		}
	}
	// Heuristic 1: drivers are blocked by the builds their chain probes.
	for _, chain := range pt.Chains {
		driver := chain[0]
		for _, op := range chain {
			if op.Kind != Probe {
				continue
			}
			found := false
			for _, b := range driver.Blockers {
				if b == op.Partner {
					found = true
				}
			}
			if !found {
				t.Errorf("driver %s not blocked by %s (heuristic 1)", driver.Name, op.Partner.Name)
			}
		}
	}
}

func TestEstimateCards(t *testing.T) {
	_, jt := fig2Query()
	card := jt.EstimateCards()
	if card <= 0 {
		t.Fatalf("root card = %d", card)
	}
	// R join S: sel 1/10000 * 10000 * 40000 = 40000.
	if jt.Left.Card != 40_000 {
		t.Fatalf("left join card = %d, want 40000", jt.Left.Card)
	}
}

func TestEstimateCardsFloor(t *testing.T) {
	home := catalog.AllNodes(1)
	a := &catalog.Relation{Name: "a", Cardinality: 10, TupleBytes: 100, Home: home}
	b := &catalog.Relation{Name: "b", Cardinality: 10, TupleBytes: 100, Home: home}
	n := &JoinNode{Left: &JoinNode{Rel: a}, Right: &JoinNode{Rel: b}, Selectivity: 1e-9}
	if c := n.EstimateCards(); c != 1 {
		t.Fatalf("card = %d, want floor 1", c)
	}
}

func TestExpandRandomQueriesValidate(t *testing.T) {
	r := xrand.New(77)
	for i := 0; i < 20; i++ {
		p := querygen.DefaultParams(4)
		p.Relations = 3 + r.Intn(10)
		q := querygen.Generate(r, "q", p)
		// Left-deep tree over edge order, just for structural testing.
		jt := leftDeep(q)
		pt := Expand("q.t", q, jt, catalog.AllNodes(4))
		if err := pt.Validate(); err != nil {
			t.Fatalf("query %d: %v\n%s", i, err, pt)
		}
		if len(pt.Chains) != p.Relations {
			t.Fatalf("query %d: %d chains for %d relations", i, len(pt.Chains), p.Relations)
		}
	}
}

// leftDeep builds some valid join tree by greedily connecting relations in
// the order edges reach them.
func leftDeep(q *querygen.Query) *JoinNode {
	nodes := make(map[int]*JoinNode)
	for i, rel := range q.Relations {
		nodes[i] = &JoinNode{Rel: rel}
	}
	// Union relations along edges; each edge merges two components.
	comp := make([]int, len(q.Relations))
	for i := range comp {
		comp[i] = i
	}
	find := func(x int) int {
		for comp[x] != x {
			x = comp[x]
		}
		return x
	}
	tree := make(map[int]*JoinNode)
	for i := range q.Relations {
		tree[i] = nodes[i]
	}
	var root *JoinNode
	for _, e := range q.Edges {
		ca, cb := find(e.A), find(e.B)
		n := &JoinNode{Left: tree[ca], Right: tree[cb], Selectivity: e.Selectivity}
		comp[cb] = ca
		tree[ca] = n
		root = n
	}
	return root
}

func TestOpKindString(t *testing.T) {
	if Scan.String() != "scan" || Build.String() != "build" || Probe.String() != "probe" {
		t.Error("bad kind names")
	}
}

func TestTreeString(t *testing.T) {
	q, jt := fig2Query()
	pt := Expand("fig2.t1", q, jt, catalog.AllNodes(2))
	s := pt.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	if pt.TotalInputTuples() <= 0 {
		t.Fatal("no input tuples")
	}
}
