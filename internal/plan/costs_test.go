package plan

import (
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
)

func TestOpCPUInstr(t *testing.T) {
	c := DefaultCosts()
	scan := &Operator{Kind: Scan, InCard: 100}
	if got := c.OpCPUInstr(scan); got != 100*c.ScanTuple {
		t.Errorf("scan instr = %d", got)
	}
	build := &Operator{Kind: Build, InCard: 50}
	if got := c.OpCPUInstr(build); got != 50*c.BuildTuple {
		t.Errorf("build instr = %d", got)
	}
	probe := &Operator{Kind: Probe, InCard: 50, OutCard: 20}
	if got := c.OpCPUInstr(probe); got != 50*c.ProbeTuple+20*c.ResultTuple {
		t.Errorf("probe instr = %d", got)
	}
}

func TestOpIOTimeOnlyScans(t *testing.T) {
	c := DefaultCosts()
	cfg := cluster.DefaultConfig(1, 1)
	rel := &catalog.Relation{Name: "r", Cardinality: 1000, TupleBytes: 100, Home: []int{0}}
	scan := &Operator{Kind: Scan, Rel: rel, InCard: 1000}
	if c.OpIOTime(scan, cfg) <= 0 {
		t.Error("scan has no IO time")
	}
	if c.OpIOTime(&Operator{Kind: Build}, cfg) != 0 {
		t.Error("build has IO time")
	}
	if c.OpIOTime(&Operator{Kind: Probe}, cfg) != 0 {
		t.Error("probe has IO time")
	}
}

func TestTreeSequentialTimePositive(t *testing.T) {
	q, jt := fig2Query()
	pt := Expand("fig2.t1", q, jt, catalog.AllNodes(2))
	c := DefaultCosts()
	cfg := cluster.DefaultConfig(1, 1)
	seq := c.TreeSequentialTime(pt, cfg)
	if seq <= 0 {
		t.Fatalf("sequential time = %v", seq)
	}
	// Must exceed the raw scan IO of all four relations.
	var io int64
	for _, op := range pt.Ops {
		if op.Kind == Scan {
			io += int64(c.OpIOTime(op, cfg))
		}
	}
	if int64(seq) <= io {
		t.Fatalf("sequential %v not above IO %v", seq, io)
	}
}

func TestHashTableBytes(t *testing.T) {
	c := DefaultCosts()
	if got := c.HashTableBytes(10, 100); got != 10*(100+c.HashTableOverheadBytes) {
		t.Errorf("HashTableBytes = %d", got)
	}
}
