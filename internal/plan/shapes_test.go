package plan

import (
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/querygen"
	"hierdb/internal/xrand"
)

func shapeQuery(seed uint64, rels int) *querygen.Query {
	p := querygen.DefaultParams(1)
	p.Relations = rels
	return querygen.Generate(xrand.New(seed), "sq", p)
}

func TestDeepTreeCoversAllRelations(t *testing.T) {
	q := shapeQuery(1, 8)
	for _, shape := range []Shape{LeftDeep, RightDeep, Zigzag} {
		jt, err := DeepTree(q, shape)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if got := countLeaves(jt); got != 8 {
			t.Fatalf("%v covers %d relations", shape, got)
		}
	}
}

func countLeaves(n *JoinNode) int {
	if n.IsLeaf() {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

func TestRightDeepIsOnePipeline(t *testing.T) {
	q := shapeQuery(2, 6)
	jt, err := DeepTree(q, RightDeep)
	if err != nil {
		t.Fatal(err)
	}
	pt := Expand("rd", q, jt, catalog.AllNodes(1))
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Right-deep: every build input is a scan, and the final chain holds
	// the driver scan plus every probe (6 operators for 5 joins).
	for _, op := range pt.Ops {
		if op.Kind != Scan || op.Consumer == nil {
			continue
		}
	}
	last := pt.Chains[len(pt.Chains)-1]
	if len(last) != 6 {
		t.Fatalf("final right-deep chain has %d operators, want 6: %s", len(last), pt)
	}
}

func TestLeftDeepHasShortChains(t *testing.T) {
	q := shapeQuery(3, 6)
	jt, err := DeepTree(q, LeftDeep)
	if err != nil {
		t.Fatal(err)
	}
	pt := Expand("ld", q, jt, catalog.AllNodes(1))
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Left-deep: every chain is at most scan+probe+build (3 operators) —
	// intermediates are always materialized into the next hash table.
	for i, chain := range pt.Chains {
		if len(chain) > 3 {
			t.Fatalf("left-deep chain %d has %d operators: %s", i, len(chain), pt)
		}
	}
}

func TestZigzagAlternates(t *testing.T) {
	q := shapeQuery(4, 7)
	jt, err := DeepTree(q, Zigzag)
	if err != nil {
		t.Fatal(err)
	}
	pt := Expand("zz", q, jt, catalog.AllNodes(1))
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zigzag chains are longer than left-deep but shorter than the full
	// right-deep pipeline.
	maxChain := 0
	for _, chain := range pt.Chains {
		if len(chain) > maxChain {
			maxChain = len(chain)
		}
	}
	if maxChain <= 2 || maxChain >= 7 {
		t.Fatalf("zigzag max chain %d out of expected band: %s", maxChain, pt)
	}
}

func TestForceBuildSides(t *testing.T) {
	home := catalog.AllNodes(1)
	small := &catalog.Relation{Name: "s", Cardinality: 100, TupleBytes: 100, Home: home}
	big := &catalog.Relation{Name: "b", Cardinality: 10_000, TupleBytes: 100, Home: home}
	q := &querygen.Query{
		Name:      "fb",
		Relations: []*catalog.Relation{small, big},
		Edges:     []querygen.Edge{{A: 0, B: 1, Selectivity: 0.001}},
	}
	// Force the build on the BIG side, against the auto heuristic.
	jt := &JoinNode{Left: &JoinNode{Rel: big}, Right: &JoinNode{Rel: small}, Selectivity: 0.001, Build: BuildLeft}
	pt := Expand("fb", q, jt, home)
	for _, op := range pt.Ops {
		if op.Kind == Build && op.InCard != 10_000 {
			t.Fatalf("forced build side ignored: build input %d", op.InCard)
		}
	}
}

func TestShapeString(t *testing.T) {
	if LeftDeep.String() != "left-deep" || RightDeep.String() != "right-deep" || Zigzag.String() != "zigzag" {
		t.Error("bad shape names")
	}
}

func TestDeepTreeCardsMonotoneAgainstEstimate(t *testing.T) {
	q := shapeQuery(5, 5)
	jt, err := DeepTree(q, RightDeep)
	if err != nil {
		t.Fatal(err)
	}
	if jt.Card <= 0 {
		t.Fatalf("root card %d", jt.Card)
	}
}
