// Package plan represents parallel execution plans as defined in §2.2 of
// the paper: an operator tree obtained by macro-expansion of a (bushy) join
// tree, adorned with operator scheduling (a partial order implementing the
// blocking constraints of the hash-join method plus the optimizer's
// heuristics) and operator homes.
//
// Three operators implement a hash join: scan reads a base relation, build
// inserts the building side into per-bucket hash tables (blocking output),
// probe streams the probing side against those tables (pipelinable output).
// An operator tree decomposes into maximal pipeline chains, each driven by a
// scan and flowing through probes until it hits a blocking edge (a build) or
// the query result.
package plan

import (
	"fmt"
	"strings"

	"hierdb/internal/catalog"
	"hierdb/internal/querygen"
)

// OpKind enumerates the three atomic operators of §2.2.
type OpKind int

const (
	// Scan reads a base relation bucket by bucket.
	Scan OpKind = iota
	// Build inserts tuples into the hash table of their bucket; its
	// output (the hash table) is blocking.
	Build
	// Probe probes tuples against the partner build's hash table and
	// emits result tuples in pipeline mode.
	Probe
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case Scan:
		return "scan"
	case Build:
		return "build"
	case Probe:
		return "probe"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Operator is a node of the operator tree.
type Operator struct {
	// ID indexes the operator in Tree.Ops.
	ID int
	// Kind is scan, build or probe.
	Kind OpKind
	// Name is a human-readable label (Scan1, Build2, ...).
	Name string

	// Rel is the scanned relation; scan operators only.
	Rel *catalog.Relation

	// Join identifies the hash join this build/probe implements (the
	// join's index in macro-expansion order); -1 for scans.
	Join int
	// Partner links build to probe and vice versa; nil for scans.
	Partner *Operator

	// Consumer receives this operator's output tuples: a build or probe
	// for scans and probes; nil for a build (its output is its hash
	// table) and for the root probe (its output is the query result).
	Consumer *Operator

	// Home is the set of SM-node IDs allowed to execute the operator
	// (§2.2). The scan home must equal the relation home; build and
	// probe of one join share a home.
	Home []int

	// Blockers lists the operators that must terminate before this one
	// may start consuming (operator scheduling, §2.2).
	Blockers []*Operator

	// Chain is the index of this operator's pipeline chain in
	// Tree.Chains.
	Chain int

	// Estimates (from optimizer statistics; exact because the simulation
	// is counts-based, distorted copies are used for FP's error study).
	// InCard is the number of input tuples the operator processes;
	// OutCard the number of tuples it emits downstream.
	InCard, OutCard int64
	// Selectivity is the join selectivity factor for probes, 1 for
	// scans/builds.
	Selectivity float64
	// TupleBytes is the width of the tuples flowing through.
	TupleBytes int64
}

// IsDriver reports whether the operator is the scan driving its pipeline
// chain.
func (o *Operator) IsDriver() bool { return o.Kind == Scan }

// Tree is a parallel execution plan.
type Tree struct {
	// Name identifies the plan (query name plus tree variant).
	Name string
	// Query is the originating query.
	Query *querygen.Query
	// Ops lists all operators; Ops[i].ID == i.
	Ops []*Operator
	// Root is the operator producing the final result.
	Root *Operator
	// Chains lists the pipeline chains in scheduled execution order
	// (chains are executed one-at-a-time, §5.1.2). Each chain lists its
	// operators from driver scan to terminal operator.
	Chains [][]*Operator
	// Joins is the number of hash joins.
	Joins int
}

// BuildSide forces the build side of a join during macro-expansion.
type BuildSide int8

const (
	// BuildAuto builds on the smaller estimated side (the default).
	BuildAuto BuildSide = iota
	// BuildLeft and BuildRight force the side, which is how the deep
	// tree shapes of §2.2 (left-deep, right-deep, zigzag [Ziane93])
	// control their pipeline structure.
	BuildLeft
	BuildRight
)

// JoinNode is a node of a (bushy) join tree prior to macro-expansion.
// Either Rel is set (leaf), or Left/Right/Selectivity are set (join).
type JoinNode struct {
	Rel         *catalog.Relation
	Left, Right *JoinNode
	Selectivity float64
	// Build forces the build side (BuildAuto picks the smaller child).
	Build BuildSide
	// Card is the estimated output cardinality of the subtree.
	Card int64
}

// IsLeaf reports whether n is a base relation.
func (n *JoinNode) IsLeaf() bool { return n.Rel != nil }

// EstimateCards fills in Card bottom-up: leaves take the relation
// cardinality, joins sel*|L|*|R| (at least 1).
func (n *JoinNode) EstimateCards() int64 {
	if n.IsLeaf() {
		n.Card = n.Rel.Cardinality
		return n.Card
	}
	l := n.Left.EstimateCards()
	r := n.Right.EstimateCards()
	c := n.Selectivity * float64(l) * float64(r)
	if c < 1 {
		c = 1
	}
	// Cap absurd estimates so the int64 conversion stays defined; real
	// optimizer-chosen trees never get near this.
	if c > 1e15 {
		c = 1e15
	}
	n.Card = int64(c)
	return n.Card
}

// Schedule selects which of the optimizer's scheduling heuristics (§2.2,
// Figure 2) the plan carries beyond the mandatory hash constraint
// Build_i < Probe_i.
type Schedule struct {
	// TablesReady is heuristic 1: a pipeline chain starts only when all
	// the hash tables it probes are ready.
	TablesReady bool
	// OneChainAtATime is heuristic 2: pipeline chains execute
	// sequentially. Disabling both yields the "full parallel strategy"
	// of [Wilshut95] discussed in §3.2 — more concurrent operators give
	// load balancing more options at the price of memory. The FP
	// baseline requires OneChainAtATime (its allocation is per chain).
	OneChainAtATime bool
}

// DefaultSchedule matches the paper's experiments (§5.1.2: "pipeline
// chains are executed one-at-a-time").
func DefaultSchedule() Schedule {
	return Schedule{TablesReady: true, OneChainAtATime: true}
}

// Expand macro-expands the join tree into an operator tree (§2.2) with the
// paper's default scheduling. The build side of each join is the child
// with the smaller estimated cardinality. Every operator is homed on home.
func Expand(name string, q *querygen.Query, root *JoinNode, home []int) *Tree {
	return ExpandSchedule(name, q, root, home, DefaultSchedule())
}

// ExpandSchedule is Expand with explicit scheduling heuristics.
func ExpandSchedule(name string, q *querygen.Query, root *JoinNode, home []int, sched Schedule) *Tree {
	root.EstimateCards()
	t := &Tree{Name: name, Query: q}
	b := &expander{tree: t, home: home, sched: sched}
	out := b.expand(root)
	t.Root = out
	t.Joins = b.joins
	b.buildChains()
	b.schedule()
	return t
}

type expander struct {
	tree  *Tree
	home  []int
	joins int
	sched Schedule
}

func (b *expander) newOp(kind OpKind, label string) *Operator {
	op := &Operator{
		ID:          len(b.tree.Ops),
		Kind:        kind,
		Name:        label,
		Join:        -1,
		Selectivity: 1,
		Home:        b.home,
		Chain:       -1,
		TupleBytes:  catalog.DefaultTupleBytes,
	}
	b.tree.Ops = append(b.tree.Ops, op)
	return op
}

// expand returns the operator producing the subtree's output stream.
func (b *expander) expand(n *JoinNode) *Operator {
	if n.IsLeaf() {
		op := b.newOp(Scan, fmt.Sprintf("Scan(%s)", n.Rel.Name))
		op.Rel = n.Rel
		op.Home = n.Rel.Home
		op.InCard = n.Rel.Cardinality
		op.OutCard = n.Rel.Cardinality
		op.TupleBytes = n.Rel.TupleBytes
		return op
	}
	// Build on the smaller side, probe with the larger, unless the tree
	// shape forces a side.
	buildChild, probeChild := n.Left, n.Right
	switch n.Build {
	case BuildAuto:
		if buildChild.Card > probeChild.Card {
			buildChild, probeChild = probeChild, buildChild
		}
	case BuildRight:
		buildChild, probeChild = n.Right, n.Left
	}
	buildIn := b.expand(buildChild)
	probeIn := b.expand(probeChild)

	j := b.joins
	b.joins++
	bld := b.newOp(Build, fmt.Sprintf("Build%d", j+1))
	prb := b.newOp(Probe, fmt.Sprintf("Probe%d", j+1))
	bld.Join, prb.Join = j, j
	bld.Partner, prb.Partner = prb, bld
	buildIn.Consumer = bld
	probeIn.Consumer = prb
	bld.InCard = buildIn.OutCard
	prb.InCard = probeIn.OutCard
	prb.OutCard = n.Card
	prb.Selectivity = n.Selectivity
	// Hash-join constraint: probe cannot start before its build ends.
	prb.Blockers = append(prb.Blockers, bld)
	return prb
}

// buildChains groups operators into maximal pipeline chains. A chain is
// driven by a scan; probes join the chain of their pipelined input; a build
// terminates the chain of its input (blocking output).
func (b *expander) buildChains() {
	t := b.tree
	// chainOf maps a producing operator to its chain id by following the
	// pipelined dataflow from each scan.
	for _, op := range t.Ops {
		if op.Kind != Scan {
			continue
		}
		chain := []*Operator{op}
		cur := op
		for cur.Consumer != nil {
			next := cur.Consumer
			chain = append(chain, next)
			if next.Kind == Build {
				break // blocking output terminates the chain
			}
			cur = next
		}
		id := len(t.Chains)
		for _, c := range chain {
			c.Chain = id
		}
		t.Chains = append(t.Chains, chain)
	}
	// Order chains so that the chain containing Build_j precedes the
	// chain containing Probe_j (hash-table availability), using a
	// deterministic topological sort (Kahn, smallest id first).
	n := len(t.Chains)
	succ := make([][]int, n)
	indeg := make([]int, n)
	for _, op := range t.Ops {
		if op.Kind != Build {
			continue
		}
		from, to := op.Chain, op.Partner.Chain
		if from == to {
			panic("plan: build and partner probe in one chain")
		}
		succ[from] = append(succ[from], to)
		indeg[to]++
	}
	order := make([]int, 0, n)
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		// Pick the smallest ready chain id for determinism.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		c := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, c)
		for _, s := range succ[c] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		panic("plan: cyclic chain dependencies")
	}
	reordered := make([][]*Operator, n)
	for newID, oldID := range order {
		reordered[newID] = t.Chains[oldID]
		for _, op := range reordered[newID] {
			op.Chain = newID
		}
	}
	t.Chains = reordered
}

// schedule installs the blocking constraints of §2.2/Figure 2:
// the hash constraint Build_i < Probe_i (already added during expansion),
// heuristic 1 (a chain starts only when the hash tables it probes are
// ready) and heuristic 2 (chains execute one-at-a-time).
func (b *expander) schedule() {
	t := b.tree
	for i, chain := range t.Chains {
		driver := chain[0]
		// Heuristic 1: all hash tables probed by this chain must be
		// built first.
		if b.sched.TablesReady {
			for _, op := range chain {
				if op.Kind == Probe {
					driver.Blockers = append(driver.Blockers, op.Partner)
				}
			}
		}
		// Heuristic 2: one chain at a time — the driver waits for every
		// operator of the previous chain.
		if b.sched.OneChainAtATime && i > 0 {
			driver.Blockers = append(driver.Blockers, t.Chains[i-1]...)
		}
	}
}

// Validate checks plan invariants.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("plan %s: no root", t.Name)
	}
	for i, op := range t.Ops {
		if op.ID != i {
			return fmt.Errorf("plan %s: op %d has ID %d", t.Name, i, op.ID)
		}
		switch op.Kind {
		case Scan:
			if op.Rel == nil {
				return fmt.Errorf("plan %s: %s has no relation", t.Name, op.Name)
			}
			if op.Consumer == nil {
				return fmt.Errorf("plan %s: %s has no consumer", t.Name, op.Name)
			}
		case Build:
			if op.Partner == nil || op.Partner.Kind != Probe {
				return fmt.Errorf("plan %s: %s has bad partner", t.Name, op.Name)
			}
			if op.Consumer != nil {
				return fmt.Errorf("plan %s: %s (build) has a consumer", t.Name, op.Name)
			}
		case Probe:
			if op.Partner == nil || op.Partner.Kind != Build {
				return fmt.Errorf("plan %s: %s has bad partner", t.Name, op.Name)
			}
			if op != t.Root && op.Consumer == nil {
				return fmt.Errorf("plan %s: non-root %s has no consumer", t.Name, op.Name)
			}
		}
		if op.Chain < 0 || op.Chain >= len(t.Chains) {
			return fmt.Errorf("plan %s: %s not in a chain", t.Name, op.Name)
		}
		if len(op.Home) == 0 {
			return fmt.Errorf("plan %s: %s has empty home", t.Name, op.Name)
		}
	}
	// Blockers must reference earlier-or-same chains, never later ones
	// (otherwise one-at-a-time execution deadlocks).
	for _, op := range t.Ops {
		for _, bl := range op.Blockers {
			if bl.Chain > op.Chain {
				return fmt.Errorf("plan %s: %s blocked by later-chain %s", t.Name, op.Name, bl.Name)
			}
		}
	}
	return nil
}

// String renders the chains for debugging.
func (t *Tree) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %s: %d ops, %d joins, %d chains\n", t.Name, len(t.Ops), t.Joins, len(t.Chains))
	for i, chain := range t.Chains {
		fmt.Fprintf(&sb, "  chain %d:", i)
		for _, op := range chain {
			fmt.Fprintf(&sb, " %s(in=%d,out=%d)", op.Name, op.InCard, op.OutCard)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TotalInputTuples sums InCard over all operators (a rough measure of plan
// work used in tests and reports).
func (t *Tree) TotalInputTuples() int64 {
	var n int64
	for _, op := range t.Ops {
		n += op.InCard
	}
	return n
}
