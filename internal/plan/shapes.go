package plan

// Join-tree shapes. §2.2 lists the shapes the literature considers —
// left-deep, right-deep, segmented right-deep, zigzag [Ziane93] and bushy —
// and the paper concentrates on bushy trees (the optimizer's output).
// These constructors build the deep shapes for a given query so the
// execution models can be compared across shapes: with hash joins the
// shape decides pipeline-chain structure. In a right-deep tree every hash
// table is built from a base relation and the query runs as one long probe
// pipeline; in a left-deep tree every intermediate result is materialized
// into the next hash table, so chains are short.

import (
	"fmt"

	"hierdb/internal/querygen"
)

// Shape names a join-tree shape.
type Shape int

const (
	// LeftDeep materializes each intermediate result into the next hash
	// table (builds on the left/intermediate side).
	LeftDeep Shape = iota
	// RightDeep builds every hash table from a base relation and probes
	// with the running intermediate (one maximal pipeline).
	RightDeep
	// Zigzag alternates build sides level by level [Ziane93].
	Zigzag
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case LeftDeep:
		return "left-deep"
	case RightDeep:
		return "right-deep"
	case Zigzag:
		return "zigzag"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// DeepTree builds a deep join tree of the given shape for q. Relations
// are joined in a deterministic connected order: starting from the
// largest relation, the adjacent (by join predicate) relation with the
// smallest cardinality is attached next, so hash tables stay as small as
// the shape permits. The returned tree covers every relation and only
// uses predicate-graph edges.
func DeepTree(q *querygen.Query, shape Shape) (*JoinNode, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := len(q.Relations)
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = make(map[int]float64)
	}
	for _, e := range q.Edges {
		adj[e.A][e.B] = e.Selectivity
		adj[e.B][e.A] = e.Selectivity
	}
	// Start from the largest relation: it anchors the probe pipeline.
	start := 0
	for i, r := range q.Relations {
		if r.Cardinality > q.Relations[start].Cardinality {
			start = i
		}
	}
	joined := map[int]bool{start: true}
	cur := &JoinNode{Rel: q.Relations[start]}
	level := 0
	for len(joined) < n {
		// The adjacent, unjoined relation with the smallest
		// cardinality (ties by index).
		next, bestCard := -1, int64(0)
		var sel float64
		for v := range joined {
			for w, s := range adj[v] {
				if joined[w] {
					continue
				}
				c := q.Relations[w].Cardinality
				if next == -1 || c < bestCard || (c == bestCard && w < next) {
					next, bestCard, sel = w, c, s
				}
			}
		}
		if next == -1 {
			return nil, fmt.Errorf("plan: predicate graph of %s is disconnected", q.Name)
		}
		leaf := &JoinNode{Rel: q.Relations[next]}
		node := &JoinNode{Left: cur, Right: leaf, Selectivity: sel}
		switch shape {
		case LeftDeep:
			node.Build = BuildLeft // materialize the intermediate
		case RightDeep:
			node.Build = BuildRight // build from the base relation
		case Zigzag:
			if level%2 == 0 {
				node.Build = BuildRight
			} else {
				node.Build = BuildLeft
			}
		default:
			return nil, fmt.Errorf("plan: unknown shape %v", shape)
		}
		cur = node
		joined[next] = true
		level++
	}
	cur.EstimateCards()
	return cur, nil
}
