package plan

import (
	"hierdb/internal/cluster"
	"hierdb/internal/simtime"
)

// Costs holds the per-tuple and per-activation CPU path lengths (in
// instructions) used by both the optimizer's cost model and the execution
// simulator. The paper does not list them; the values follow the
// contemporaneous literature it cites ([Mehta95], [Rahm95]) — a relational
// operator costs a few thousand instructions per tuple in a real DBMS —
// and are calibrated so that a 12-relation query runs tens of virtual
// minutes sequentially (the paper gates on 30–60 minutes, §5.1.2).
type Costs struct {
	// ScanTuple is the cost of reading, decoding and filtering one tuple
	// during a scan.
	ScanTuple int64
	// BuildTuple is the cost of hashing and inserting one tuple into a
	// hash table.
	BuildTuple int64
	// ProbeTuple is the cost of hashing one probing tuple and walking
	// the bucket's hash chain.
	ProbeTuple int64
	// ResultTuple is the cost of constructing one output tuple of a
	// probe.
	ResultTuple int64
	// QueueOp is the cost of one queue access (enqueue or dequeue of an
	// activation), modelling the interference/queue-management overhead
	// that §5.2.1 attributes to DP.
	QueueOp int64
	// Select is the cost of one pass of activation selection over the
	// circular queue list.
	Select int64
	// Suspend is the cost of suspending the current activation by
	// procedure call (§3.1: much cheaper than OS synchronization).
	Suspend int64
	// HashTableTupleBytes is the in-memory size of one hash-table entry
	// (tuple plus bucket-chain overhead); used to size shipped hash
	// tables for global load balancing.
	HashTableOverheadBytes int64
}

// DefaultCosts returns the calibrated constants (documented in DESIGN.md
// §3): with these path lengths a 12-relation query whose intermediate
// results stay within a few times its base data runs 30-60 virtual minutes
// sequentially at 40 MIPS, matching the paper's generation gate and its
// ~1.3 GB base / ~4 GB intermediate volumes for 40 plans.
func DefaultCosts() Costs {
	return Costs{
		ScanTuple:              9000,
		BuildTuple:             3000,
		ProbeTuple:             6000,
		ResultTuple:            3000,
		QueueOp:                300,
		Select:                 300,
		Suspend:                100,
		HashTableOverheadBytes: 16,
	}
}

// OpCPUInstr returns the estimated total CPU instructions the operator
// executes across all its tuples (excluding queue overheads, which depend
// on the execution model).
func (c Costs) OpCPUInstr(op *Operator) int64 {
	switch op.Kind {
	case Scan:
		return op.InCard * c.ScanTuple
	case Build:
		return op.InCard * c.BuildTuple
	case Probe:
		return op.InCard*c.ProbeTuple + op.OutCard*c.ResultTuple
	}
	return 0
}

// OpIOTime returns the estimated total disk time of the operator: scans
// read their relation partition; builds and probes run in memory (§2.2
// assumes each pipeline chain fits in memory).
func (c Costs) OpIOTime(op *Operator, cfg cluster.Config) simtime.Duration {
	if op.Kind != Scan {
		return 0
	}
	pages := op.Rel.Pages(cfg.Disk.PageSize)
	return simtime.Duration(pages) * cfg.Disk.PageTransfer()
}

// OpWork returns the operator's estimated sequential completion time
// (CPU plus I/O, not overlapped — a deliberate, simple upper bound used
// only for ranking by the optimizer and for FP's allocation ratios).
func (c Costs) OpWork(op *Operator, cfg cluster.Config) simtime.Duration {
	return cfg.InstrTime(c.OpCPUInstr(op)) + c.OpIOTime(op, cfg)
}

// TreeSequentialTime estimates the plan's response time on a single
// processor with a single disk: the sum of all operator work.
func (c Costs) TreeSequentialTime(t *Tree, cfg cluster.Config) simtime.Duration {
	var total simtime.Duration
	for _, op := range t.Ops {
		total += c.OpWork(op, cfg)
	}
	return total
}

// HashTableBytes returns the estimated memory footprint of a hash table
// holding n tuples of the given width.
func (c Costs) HashTableBytes(n, tupleBytes int64) int64 {
	return n * (tupleBytes + c.HashTableOverheadBytes)
}
