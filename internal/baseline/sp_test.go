package baseline

import (
	"testing"

	"hierdb/internal/catalog"
	"hierdb/internal/cluster"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
	"hierdb/internal/querygen"
	"hierdb/internal/xrand"
)

// testPlan builds a deterministic scaled-down plan on one node.
func testPlan(t *testing.T, seed uint64, rels, nodes int) *plan.Tree {
	t.Helper()
	p := querygen.DefaultParams(nodes)
	p.Relations = rels
	p.ClassWeights = [3]float64{1, 0, 0}
	q := querygen.Generate(xrand.New(seed), "bq", p)
	for _, r := range q.Relations {
		r.Cardinality /= 10
		if r.Cardinality < 100 {
			r.Cardinality = 100
		}
	}
	for i := range q.Edges {
		q.Edges[i].Selectivity *= 10
	}
	cfg := cluster.DefaultConfig(nodes, 2)
	o := optimizer.New(plan.DefaultCosts(), cfg)
	return o.Plans(q, 1, catalog.AllNodes(nodes))[0]
}

func TestSPCompletes(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := testPlan(t, 1, 4, 1)
	r, err := RunSP(tree, cfg, DefaultSPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.ResponseTime <= 0 || r.ResultTuples <= 0 {
		t.Fatalf("bad run: %+v", r)
	}
	if r.Strategy != "SP" {
		t.Fatalf("strategy %q", r.Strategy)
	}
}

func TestSPDeterministic(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := testPlan(t, 2, 4, 1)
	r1, err := RunSP(tree, cfg, DefaultSPOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSP(tree, cfg, DefaultSPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ResponseTime != r2.ResponseTime || r1.ResultTuples != r2.ResultTuples {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", r1.ResponseTime, r1.ResultTuples, r2.ResponseTime, r2.ResultTuples)
	}
}

func TestSPRejectsMultiNode(t *testing.T) {
	cfg := cluster.DefaultConfig(2, 2)
	tree := testPlan(t, 3, 4, 2)
	if _, err := RunSP(tree, cfg, DefaultSPOptions()); err == nil {
		t.Fatal("SP accepted a shared-nothing configuration")
	}
}

func TestSPResultsMatchDP(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := testPlan(t, 4, 5, 1)
	sp, err := RunSP(tree, cfg, DefaultSPOptions())
	if err != nil {
		t.Fatal(err)
	}
	dp, err := RunDP(tree, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	diff := sp.ResultTuples - dp.ResultTuples
	if diff < 0 {
		diff = -diff
	}
	if dp.ResultTuples == 0 || float64(diff)/float64(dp.ResultTuples) > 0.02 {
		t.Fatalf("SP results %d vs DP results %d", sp.ResultTuples, dp.ResultTuples)
	}
}

// TestStrategyOrdering checks the paper's Figure 6 relation on one sample:
// SP <= DP <= FP in shared memory.
func TestStrategyOrdering(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 8)
	tree := testPlan(t, 5, 6, 1)
	sp, err := RunSP(tree, cfg, DefaultSPOptions())
	if err != nil {
		t.Fatal(err)
	}
	dp, err := RunDP(tree, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := RunFP(tree, cfg, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp.ResponseTime > dp.ResponseTime {
		t.Errorf("SP (%v) slower than DP (%v)", sp.ResponseTime, dp.ResponseTime)
	}
	if dp.ResponseTime > fp.ResponseTime {
		t.Errorf("DP (%v) slower than FP (%v)", dp.ResponseTime, fp.ResponseTime)
	}
	t.Logf("SP=%v DP=%v FP=%v", sp.ResponseTime, dp.ResponseTime, fp.ResponseTime)
	t.Logf("SP busy=%v io=%v idle=%v | DP busy=%v io=%v idle=%v qops=%d",
		sp.Busy, sp.IOWait, sp.Idle, dp.Busy, dp.IOWait, dp.Idle, dp.QueueOps)
}

func TestFPDegradesWithCostErrors(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 8)
	tree := testPlan(t, 6, 6, 1)
	var exact, distorted float64
	for seed := uint64(1); seed <= 3; seed++ {
		r0, err := RunFP(tree, cfg, 0, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		r30, err := RunFP(tree, cfg, 0.30, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact += r0.ResponseTime.Seconds()
		distorted += r30.ResponseTime.Seconds()
	}
	// Averaged over distortion draws, a 30% cost-model error must not
	// make FP faster (Figure 7 shows it degrading).
	if distorted < exact*0.98 {
		t.Fatalf("FP with 30%% errors (%.3fs) beat exact FP (%.3fs)", distorted, exact)
	}
}

func TestSPSkewVariation(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 4)
	tree := testPlan(t, 7, 4, 1)
	opt := DefaultSPOptions()
	opt.SkewVariation = 0.5
	r, err := RunSP(tree, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.ResultTuples <= 0 {
		t.Fatal("no results under skew variation")
	}
}
