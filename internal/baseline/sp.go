// Package baseline implements the two load-balancing strategies the paper
// compares DP against in §5.2.1.
//
// SP (synchronous pipelining, [Shekita93], here) is the dedicated
// shared-memory model: every processor participates in every operator of a
// pipeline chain, reading base-relation pages and pushing each tuple
// through the whole chain of hash tables by procedure call — no
// inter-operator queues at all, hence no queue-management overhead, but
// also no way to run on shared-nothing (tuple redistribution would need
// remote synchronization).
//
// FP (fixed processing, [DeWitt90, Boral90]) is executed by the core
// engine in core.FP mode; RunFP below wires the (optionally distorted)
// cost estimates into it.
package baseline

import (
	"fmt"

	"hierdb/internal/cluster"
	"hierdb/internal/core"
	"hierdb/internal/metrics"
	"hierdb/internal/optimizer"
	"hierdb/internal/plan"
	"hierdb/internal/simdisk"
	"hierdb/internal/simtime"
	"hierdb/internal/xrand"
)

// SPOptions parameterizes a synchronous-pipelining execution.
type SPOptions struct {
	// Costs are the CPU path lengths (plan.DefaultCosts by default).
	Costs plan.Costs
	// PagesPerUnit is the work-unit granularity in pages.
	PagesPerUnit int
	// SkewVariation adds per-unit processing-time variation modelling
	// severe attribute-value skew (§5.2.1 notes SP balances perfectly
	// "unless there is severe data skew which yields high variations in
	// tuple processing time"). 0 disables it.
	SkewVariation float64
	// Seed drives the skew variation draws.
	Seed uint64
}

// DefaultSPOptions uses single-page work units: the paper's SP consumes
// tuples straight from the I/O buffers, so its effective grain is much
// finer than DP's multi-page trigger activations.
func DefaultSPOptions() SPOptions {
	return SPOptions{Costs: plan.DefaultCosts(), PagesPerUnit: 1, Seed: 1}
}

// spUnit is one work unit: a page range of the driver relation on a disk.
// Pages are consumed from the chain's per-disk streaming request (reqs),
// issued when the chain begins by the I/O threads.
type spUnit struct {
	pages   int
	tuples  int64
	diskIdx int
}

// spChainState is the shared execution state of one pipeline chain.
type spChainState struct {
	units []spUnit
	next  int
	// reqs[d] is the chain's streaming read on disk d: one sequential
	// request covering every page of the driver-relation partition on
	// that disk, so seek and latency are paid once per disk per chain.
	reqs []*simdisk.Request
	// diskPages[d] is how many pages disk d holds for this chain.
	diskPages []int
	// ratios[i] is output tuples per input tuple at stage i of the
	// chain (stage 0 is the scan).
	ratios []float64
	// residues carry fractional tuples per stage.
	residues []float64
	// perTupleInstr[i] is the CPU cost to push one stage-i input tuple
	// through stage i.
	stageIn  []*plan.Operator
	finished int // threads done with this chain
}

// RunSP executes the plan under synchronous pipelining on a single
// SM-node. It returns an error for multi-node configurations: the paper is
// explicit that SP "cannot be implemented in shared-nothing".
func RunSP(tree *plan.Tree, cfg cluster.Config, opt SPOptions) (*metrics.Run, error) {
	if cfg.Nodes != 1 {
		return nil, fmt.Errorf("baseline: SP requires a single SM-node, got %d", cfg.Nodes)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	costs := opt.Costs
	if costs == (plan.Costs{}) {
		costs = plan.DefaultCosts()
	}
	if opt.PagesPerUnit <= 0 {
		opt.PagesPerUnit = 4
	}

	k := simtime.NewKernel()
	cl := cluster.New(k, cfg)
	run := &metrics.Run{Strategy: "SP", Plan: tree.Name, Config: cfg.String()}
	rng := xrand.New(opt.Seed ^ 0x5b)

	// Precompute per-chain work units and stage ratios.
	chains := make([]*spChainState, len(tree.Chains))
	pageSize := cfg.Disk.PageSize
	for ci, chain := range tree.Chains {
		st := &spChainState{}
		driver := chain[0]
		rel := driver.Rel
		tpp := rel.TuplesPerPage(pageSize)
		card := rel.Cardinality
		pages := (card + tpp - 1) / tpp
		disks := len(cl.Nodes[0].Disks)
		st.diskPages = make([]int, disks)
		st.reqs = make([]*simdisk.Request, disks)
		seq := 0
		for pages > 0 {
			p := int64(opt.PagesPerUnit)
			if p > pages {
				p = pages
			}
			t := p * tpp
			if t > card {
				t = card
			}
			card -= t
			pages -= p
			d := seq % disks
			st.units = append(st.units, spUnit{pages: int(p), tuples: t, diskIdx: d})
			st.diskPages[d] += int(p)
			seq++
		}
		for _, op := range chain {
			st.stageIn = append(st.stageIn, op)
			ratio := 1.0
			if op.InCard > 0 {
				ratio = float64(op.OutCard) / float64(op.InCard)
			}
			st.ratios = append(st.ratios, ratio)
		}
		st.residues = make([]float64, len(chain))
		chains[ci] = st
		_ = ci
	}

	type threadStat struct {
		busy, ioWait, idle simtime.Duration
	}
	stats := make([]*threadStat, cfg.ProcsPerNode)
	var resultTuples int64
	var doneTime simtime.Time
	chainIdx := 0
	chainCond := k.NewCond("chain")

	// issueChainIO starts every disk read of a chain at once, playing the
	// paper's dedicated I/O threads ("I/O threads are used to read the
	// base relations into buffers"); their CPU cost rides on the I/O
	// threads, not the CPU threads, so it is not charged here.
	issueChainIO := func(c int) {
		cs := chains[c]
		for d, pages := range cs.diskPages {
			if pages > 0 {
				cs.reqs[d] = cl.Nodes[0].Disks[d].StartRead(pages)
			}
		}
	}
	issueChainIO(0)

	charge := func(p *simtime.Proc, s *threadStat, instr int64) {
		if instr <= 0 {
			return
		}
		d := cfg.InstrTime(instr)
		s.busy += d
		p.Delay(d)
	}

	for ti := 0; ti < cfg.ProcsPerNode; ti++ {
		ti := ti
		st := &threadStat{}
		stats[ti] = st
		k.Spawn(fmt.Sprintf("sp%d", ti), func(p *simtime.Proc) {
			myChain := 0
			for myChain < len(chains) {
				if myChain != chainIdx {
					// Wait for the chain barrier.
					start := p.Now()
					chainCond.Wait(p)
					st.idle += p.Now() - start
					continue
				}
				cs := chains[myChain]
				if cs.next >= len(cs.units) {
					// No units left: this thread is done with the
					// chain; the last finisher advances the barrier.
					cs.finished++
					if cs.finished == cfg.ProcsPerNode {
						chainIdx++
						if chainIdx == len(chains) {
							doneTime = p.Now()
						} else {
							issueChainIO(chainIdx)
						}
						chainCond.Broadcast()
					}
					myChain++
					continue
				}
				u := cs.units[cs.next]
				cs.next++
				req := cs.reqs[u.diskIdx]
				tpp := cs.stageIn[0].Rel.TuplesPerPage(pageSize)
				remaining := u.tuples
				for pg := 0; pg < u.pages; pg++ {
					for !req.TryRead() {
						wait := req.NextReadyAt() - p.Now()
						st.ioWait += wait
						p.Delay(wait)
					}
					in := tpp
					if in > remaining {
						in = remaining
					}
					remaining -= in
					// Push the page's tuples through the whole chain
					// synchronously.
					flow := float64(in)
					var instr int64
					for si, op := range cs.stageIn {
						exact := cs.residues[si] + flow*cs.ratios[si]
						out := int64(exact)
						cs.residues[si] = exact - float64(out)
						n := int64(flow)
						switch op.Kind {
						case plan.Scan:
							instr += n * costs.ScanTuple
						case plan.Probe:
							instr += n*costs.ProbeTuple + out*costs.ResultTuple
						case plan.Build:
							instr += n * costs.BuildTuple
						}
						if op == tree.Root {
							resultTuples += out
						}
						flow = float64(out)
					}
					if opt.SkewVariation > 0 {
						f := 1 + rng.Range(-opt.SkewVariation, opt.SkewVariation)
						instr = int64(float64(instr) * f)
					}
					charge(p, st, instr)
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("baseline: SP %s: %w", tree.Name, err)
	}
	run.ResponseTime = doneTime
	for _, s := range stats {
		run.Busy += s.busy
		run.IOWait += s.ioWait
		run.Idle += s.idle
	}
	run.ResultTuples = resultTuples
	return run, nil
}

// RunFP executes the plan under fixed processing: the core engine in FP
// mode, with per-operator work estimates distorted by errRate (§5.2.1's
// cost-model error experiments; errRate 0 gives FP the true costs).
// distortSeed selects the random distortion draw.
func RunFP(tree *plan.Tree, cfg cluster.Config, errRate float64, distortSeed uint64, mutate func(*core.Options)) (*metrics.Run, error) {
	costs := plan.DefaultCosts()
	work := optimizer.DistortedWork(tree, xrand.New(distortSeed), errRate, costs, cfg)
	opt := core.DefaultOptions(core.FP)
	opt.FPWork = make([]float64, len(work))
	for i, w := range work {
		opt.FPWork[i] = float64(w)
	}
	if mutate != nil {
		mutate(&opt)
	}
	return core.Run(tree, cfg, opt)
}

// RunDP executes the plan under the paper's dynamic-processing model.
func RunDP(tree *plan.Tree, cfg cluster.Config, mutate func(*core.Options)) (*metrics.Run, error) {
	opt := core.DefaultOptions(core.DP)
	if mutate != nil {
		mutate(&opt)
	}
	return core.Run(tree, cfg, opt)
}
